package db

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/faultfs"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// TestRecoveryDiscardsUncommittedTail is the pinned regression for
// transactional WAL replay: work left uncommitted at a crash must not
// survive recovery, while everything committed before it must. Before
// the WAL carried transaction boundaries, replay applied the tail
// records and resurrected the half-done transaction.
func TestRecoveryDiscardsUncommittedTail(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	doc, err := d.Make("Document", map[string]value.Value{"Title": value.Str("T")})
	if err != nil {
		t.Fatal(err)
	}
	// A committed transaction: its paragraph must survive the crash.
	var committed uid.UID
	if err := d.Run(func(tx *txn.Txn) error {
		p, err := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("kept")},
			core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
		if err != nil {
			return err
		}
		committed = p.UID()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// An uncommitted transaction: multiple writes, then the process dies.
	tx := d.Begin()
	lost1, err := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("lost")},
		core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteAttr(doc.UID(), "Title", value.Str("mutated")); err != nil {
		t.Fatal(err)
	}
	lost2, err := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("lost too")},
		core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get(committed); err != nil {
		t.Fatalf("committed paragraph lost: %v", err)
	}
	for _, id := range []uid.UID{lost1.UID(), lost2.UID()} {
		if _, err := r.Get(id); err == nil {
			t.Fatalf("uncommitted object %v survived recovery", id)
		}
		if r.Store().Has(id) {
			t.Fatalf("uncommitted object %v resurrected in the store", id)
		}
	}
	got, err := r.Get(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	// The uncommitted title write must not have been replayed.
	if s, ok := got.Get("Title").AsString(); !ok || s != "T" {
		t.Fatalf("doc title = %v, want the committed value", got.Get("Title"))
	}
	if v := r.Engine().Integrity(); len(v) != 0 {
		t.Fatalf("integrity violations after recovery: %v", v)
	}
}

// cascadeSchema: Part has a dependent-exclusive child (Cell, cascades on
// delete) and may be used by any number of independent-shared Assembly
// parents (which survive the delete but lose their forward reference).
func defineCascadeSchema(t *testing.T, d *DB) {
	t.Helper()
	if _, err := d.DefineClass(schema.ClassDef{Name: "Cell", Attributes: []schema.AttrSpec{
		schema.NewAttr("Tag", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewCompositeAttr("Core", "Cell"), // dependent exclusive
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Assembly", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Uses", "Part").WithExclusive(false).WithDependent(false),
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestCrashMidCascadeDeleteIsAtomic kills the durable image between two
// OpPut records of a single cascading delete's WAL group and asserts
// that recovery replays none of it: the Deletion Rule is all-or-nothing.
// Before transactional replay, the prefix of the cascade was applied —
// a surviving parent lost its forward reference while the child kept the
// reverse one, an integrity violation no API call can produce.
func TestCrashMidCascadeDeleteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineCascadeSchema(t, d)
	x, err := d.Make("Part", nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.Make("Cell", map[string]value.Value{"Tag": value.Str("c")},
		core.ParentSpec{Parent: x.UID(), Attr: "Core"})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := d.Make("Assembly", nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := d.Make("Assembly", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []uid.UID{p1.UID(), p2.UID()} {
		if err := d.Attach(p, "Uses", x.UID()); err != nil {
			t.Fatal(err)
		}
	}
	// Freeze the pre-delete state, then run the cascade in a transaction.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	tx := d.Begin()
	deleted, err := tx.Delete(x.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("cascade deleted %v, want part+cell", deleted)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}

	// The WAL now holds exactly one transactional group: Begin, the
	// surviving parents' rewrites (OpPut P1, OpPut P2), the cascade's
	// deletes, Commit. Cut the log after the FIRST OpPut — between the
	// two parent rewrites — simulating a crash mid-cascade.
	walPath := filepath.Join(dir, "wal.log")
	var ops []storage.WALOp
	cut := int64(-1)
	if err := storage.ReplayWALFrames(walPath, func(rec storage.WALRecord, _, end int64) error {
		ops = append(ops, rec.Op)
		if rec.Op == storage.OpPut && cut < 0 {
			cut = end
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []storage.WALOp{storage.OpBegin, storage.OpPut, storage.OpPut,
		storage.OpDelete, storage.OpDelete, storage.OpCommit}
	if len(ops) != len(want) {
		t.Fatalf("WAL group = %v, want %v", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("WAL group = %v, want %v", ops, want)
		}
	}
	if cut < 0 {
		t.Fatal("no OpPut found in the WAL")
	}
	if err := os.Truncate(walPath, cut); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if v := r.Engine().Integrity(); len(v) != 0 {
		t.Fatalf("partial cascade replayed; integrity violations: %v", v)
	}
	// Nothing of the delete may have applied: X and its cell are intact
	// and both assemblies still reference X.
	for _, id := range []uid.UID{x.UID(), c.UID(), p1.UID(), p2.UID()} {
		if _, err := r.Get(id); err != nil {
			t.Fatalf("object %v missing after mid-cascade crash: %v", id, err)
		}
	}
	for _, p := range []uid.UID{p1.UID(), p2.UID()} {
		po, _ := r.Get(p)
		if !po.Get("Uses").ContainsRef(x.UID()) {
			t.Fatalf("assembly %v lost its reference to the part: cascade prefix applied", p)
		}
	}
}

// TestAbortedTransactionDiscardedOnReplay: an abort's compensating
// writes carry the same transaction tag, so the whole group — forward
// writes and undo — vanishes on replay instead of being half-applied.
func TestAbortedTransactionDiscardedOnReplay(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	doc, err := d.Make("Document", map[string]value.Value{"Title": value.Str("T")})
	if err != nil {
		t.Fatal(err)
	}
	tx := d.Begin()
	aborted, err := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("rolled back")},
		core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get(aborted.UID()); err == nil {
		t.Fatal("aborted object survived recovery")
	}
	if _, err := r.Get(doc.UID()); err != nil {
		t.Fatalf("unrelated committed object lost: %v", err)
	}
	if v := r.Engine().Integrity(); len(v) != 0 {
		t.Fatalf("integrity violations after replaying an aborted txn: %v", v)
	}
}

// TestCloseReleasesResourcesOnCheckpointFailure: a failing final
// checkpoint must still close the WAL and the device (no leaked
// handles), report the error, and leave the WAL intact so a reopen
// recovers the committed state.
func TestCloseReleasesResourcesOnCheckpointFailure(t *testing.T) {
	dir := t.TempDir()
	inner, err := storage.OpenFileDevice(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	dev := faultfs.New(inner, 1)
	d, err := Open(Options{Dir: dir, Device: dev, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	doc, err := d.Make("Document", map[string]value.Value{"Title": value.Str("T")})
	if err != nil {
		t.Fatal(err)
	}
	// Every page write from here on fails: Close's checkpoint cannot
	// flush the pool.
	dev.Inject(faultfs.Fault{Kind: faultfs.WriteErr, Prob: 1})
	if err := d.Close(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Close = %v, want the injected checkpoint failure", err)
	}
	// The DB is closed for real — not stuck half-open.
	if err := d.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	// The WAL survived the failed checkpoint: a plain reopen recovers.
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Get(doc.UID()); err != nil {
		t.Fatalf("document lost after failed-checkpoint close: %v", err)
	}
}

// TestRecoverPrefersRecordSegment: replay must honor the segment stored
// in an OpPut record instead of rederiving it from the class assignment
// (which can differ — e.g. records written before a class was remapped).
func TestRecoverPrefersRecordSegment(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Alpha", Attributes: []schema.AttrSpec{
		schema.NewAttr("A", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Beta", Attributes: []schema.AttrSpec{
		schema.NewAttr("B", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	a, err := d.Make("Alpha", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Make("Beta", nil); err != nil {
		t.Fatal(err)
	}
	segBeta, ok := d.Store().SegmentByName("Beta")
	if !ok {
		t.Fatal("Beta segment missing")
	}
	alphaClass := a.UID().Class
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Append a raw auto-commit OpPut that places an Alpha object in the
	// Beta segment — the record's segment, not the class default.
	w, err := storage.OpenWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	odd := uid.UID{Class: alphaClass, Serial: 9999}
	if err := w.Append(storage.WALRecord{
		Op: storage.OpPut, UID: odd, Seg: segBeta,
		Data: encoding.EncodeObject(object.New(odd)),
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok := r.Store().SegmentOf(odd)
	if !ok {
		t.Fatal("replayed object missing from the store")
	}
	if got != segBeta {
		t.Fatalf("replayed into segment %d, want the record's segment %d", got, segBeta)
	}
}
