package db

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/query"
	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// TestSystemEndToEnd drives one database through every subsystem the
// paper touches — schema + instances, composite semantics, queries,
// versions, authorization, transactions, schema evolution — then closes,
// reopens, and verifies the whole state survived.
func TestSystemEndToEnd(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// --- schema: a CAD-ish shop ---
	mustDef := func(def schema.ClassDef) {
		t.Helper()
		if _, err := d.DefineClass(def); err != nil {
			t.Fatal(err)
		}
	}
	mustDef(schema.ClassDef{Name: "Fastener", Attributes: []schema.AttrSpec{
		schema.NewAttr("Size", schema.IntDomain),
	}})
	mustDef(schema.ClassDef{Name: "Bracket", Versionable: true, Attributes: []schema.AttrSpec{
		schema.NewAttr("Material", schema.StringDomain),
		schema.NewCompositeSetAttr("Fasteners", "Fastener").WithExclusive(false).WithDependent(false),
	}})
	mustDef(schema.ClassDef{Name: "Rig", Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeSetAttr("Brackets", "Bracket").WithExclusive(false).WithDependent(false),
	}})

	// --- instances built transactionally ---
	var rig uid.UID
	var brackets []uid.UID
	if err := d.Run(func(tx *txn.Txn) error {
		r, err := tx.New("Rig", map[string]value.Value{"Name": value.Str("rig-7")})
		if err != nil {
			return err
		}
		rig = r.UID()
		for i := 0; i < 3; i++ {
			b, err := tx.New("Bracket", map[string]value.Value{
				"Material": value.Str([]string{"steel", "alu", "steel"}[i]),
			}, core.ParentSpec{Parent: rig, Attr: "Brackets"})
			if err != nil {
				return err
			}
			brackets = append(brackets, b.UID())
			for j := 0; j <= i; j++ {
				if _, err := tx.New("Fastener", map[string]value.Value{
					"Size": value.Int(int64(4 + 2*j)),
				}, core.ParentSpec{Parent: b.UID(), Attr: "Fasteners"}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// --- queries over the part hierarchy ---
	steel, err := query.Select(d.Engine(), "Bracket", false,
		query.Attr("Material").Eq(value.Str("steel")))
	if err != nil {
		t.Fatal(err)
	}
	if len(steel) != 2 {
		t.Fatalf("steel brackets = %v", steel)
	}
	bigFastened, err := query.Select(d.Engine(), "Rig", false,
		query.Attr("Brackets", "Fasteners", "Size").Ge(value.Int(8)))
	if err != nil {
		t.Fatal(err)
	}
	if len(bigFastened) != 1 || bigFastened[0] != rig {
		t.Fatalf("rigs with size>=8 fasteners = %v", bigFastened)
	}

	// --- authorization on the composite object ---
	d.Authz().SetObjectOwner(rig, "lead")
	if err := d.Authz().GrantObjectAs("lead", "tech", rig, authz.SR); err != nil {
		t.Fatal(err)
	}
	comps, _ := d.ComponentsOf(rig, core.QueryOpts{})
	for _, c := range comps {
		if ok, _ := d.Authz().Check("tech", c, authz.Read); !ok {
			t.Fatalf("tech cannot read component %v", c)
		}
	}

	// --- versions on a bracket design ---
	gB, bv0, err := d.Versions().CreateVersionable("Bracket", map[string]value.Value{
		"Material": value.Str("titanium"),
	})
	if err != nil {
		t.Fatal(err)
	}
	bv1, err := d.Versions().Derive(bv0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Versions().SetDefault(gB, bv1); err != nil {
		t.Fatal(err)
	}

	// --- schema evolution: Rig.Brackets becomes dependent (I4), deferred ---
	if err := d.Engine().ChangeAttributeType("Rig", "Brackets", schema.ChangeToDependent, true); err != nil {
		t.Fatal(err)
	}

	// --- crash-free restart ---
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()

	// Queries still answer.
	steel2, err := query.Select(d2.Engine(), "Bracket", false,
		query.Attr("Material").Eq(value.Str("steel")))
	if err != nil || len(steel2) != 2 {
		t.Fatalf("steel after reopen = %v, %v", steel2, err)
	}
	// Versions still resolve (pinned default survived).
	if res, err := d2.Versions().Resolve(gB); err != nil || res != bv1 {
		t.Fatalf("resolve after reopen = %v, %v", res, err)
	}
	// Authorization still effective (grants persisted).
	if ok, _ := d2.Authz().Check("tech", brackets[0], authz.Read); !ok {
		t.Fatal("grant lost across reopen")
	}
	// The deferred I4 still applies: deleting the rig now cascades into
	// the brackets (dependent), whose pending flags are fixed lazily.
	deleted, err := d2.Delete(rig)
	if err != nil {
		t.Fatal(err)
	}
	// Fasteners are independent shared: they survive the cascade.
	// Deleted = rig + 3 brackets.
	want := 4
	if len(deleted) != want {
		t.Fatalf("deleted %d objects (%v), want %d", len(deleted), deleted, want)
	}
	if v := d2.Engine().Integrity(); len(v) != 0 {
		t.Fatalf("integrity after reopen+delete: %v", v)
	}
}

// TestDeferredEvolutionSurvivesReopen: operation logs and CC stamps are
// persisted, so a deferred change issued before a restart still applies
// to instances first accessed after it.
func TestDeferredEvolutionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir})
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", nil)
	para, _ := d.Make("Paragraph", nil, core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err := d.Engine().ChangeAttributeType("Document", "Paras", schema.ChangeToIndependent, true); err != nil {
		t.Fatal(err)
	}
	// Close WITHOUT accessing the paragraph: its flags are still stale on
	// disk, carrying the old CC stamp.
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	po, err := d2.Get(para.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(po.IX()) != 1 || len(po.DX()) != 0 {
		t.Fatalf("deferred change lost across restart: %+v", po.Reverse())
	}
	// Deletion semantics follow the migrated flags.
	deleted, err := d2.Delete(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || !d2.Engine().Exists(para.UID()) {
		t.Fatalf("deleted = %v; paragraph must survive after deferred I3", deleted)
	}
}

// TestLargeVolumePaging pushes enough objects through a small pool that
// eviction and re-fetch paths run with real data.
func TestLargeVolumePaging(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	const n = 500
	ids := make([]uid.UID, n)
	for i := 0; i < n; i++ {
		p, err := d.Make("Paragraph", map[string]value.Value{
			"Text": value.Str(fmt.Sprintf("paragraph %04d ", i) + strings.Repeat("x", 700)),
		})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = p.UID()
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(Options{Dir: dir, PoolPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	for i, id := range ids {
		o, err := d2.Get(id)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		want := fmt.Sprintf("paragraph %04d ", i) + strings.Repeat("x", 700)
		if s, _ := o.Get("Text").AsString(); s != want {
			t.Fatalf("object %d corrupted: %q", i, s)
		}
	}
	st := d2.Pool().Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions with %d objects in an 8-page pool: %+v", n, st)
	}
}

// TestRecoveryIdempotent: recovering twice (reopen, crash again without
// checkpoint, reopen) converges to the same state.
func TestRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir, SyncWAL: true})
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", map[string]value.Value{"Title": value.Str("X")})
	d.wal.Sync()
	d.dev.Close() // crash 1, nothing checkpointed since schema

	d2, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	// Touch nothing; crash again. The WAL was NOT truncated (no
	// checkpoint), so recovery must replay the same records again.
	d2.dev.Close()

	d3, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	defer d3.Close()
	o, err := d3.Get(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := o.Get("Title").AsString(); s != "X" {
		t.Fatalf("Title = %q", s)
	}
	if errs := d3.Engine().Integrity(); len(errs) != 0 {
		t.Fatalf("integrity: %v", errs)
	}
	if _, err := d3.Make("Paragraph", nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexesPersistAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir})
	defineDocSchema(t, d)
	if err := d.CreateIndex("Document", "Title"); err != nil {
		t.Fatal(err)
	}
	doc, _ := d.Make("Document", map[string]value.Value{"Title": value.Str("indexed")})
	got, err := d.Indexes().Lookup("Document", "Title", value.Str("indexed"))
	if err != nil || len(got) != 1 {
		t.Fatalf("lookup before close = %v, %v", got, err)
	}
	d.Close()

	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	got, err = d2.Indexes().Lookup("Document", "Title", value.Str("indexed"))
	if err != nil {
		t.Fatalf("index declaration lost: %v", err)
	}
	if len(got) != 1 || got[0] != doc.UID() {
		t.Fatalf("index contents wrong after rebuild: %v", got)
	}
	// Maintenance continues after reopen.
	doc2, _ := d2.Make("Document", map[string]value.Value{"Title": value.Str("indexed")})
	got, _ = d2.Indexes().Lookup("Document", "Title", value.Str("indexed"))
	if len(got) != 2 {
		t.Fatalf("post-reopen maintenance broken: %v", got)
	}
	_ = doc2
}
