package db

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

func defineDocSchema(t *testing.T, d *DB) {
	t.Helper()
	if _, err := d.DefineClass(schema.ClassDef{Name: "Paragraph", Attributes: []schema.AttrSpec{
		schema.NewAttr("Text", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Document", Versionable: true, Attributes: []schema.AttrSpec{
		schema.NewAttr("Title", schema.StringDomain),
		schema.NewCompositeSetAttr("Paras", "Paragraph"),
	}}); err != nil {
		t.Fatal(err)
	}
}

func TestInMemoryBasics(t *testing.T) {
	d, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defineDocSchema(t, d)
	doc, err := d.Make("Document", map[string]value.Value{"Title": value.Str("T")})
	if err != nil {
		t.Fatal(err)
	}
	para, err := d.Make("Paragraph", map[string]value.Value{"Text": value.Str("p")},
		core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err != nil {
		t.Fatal(err)
	}
	// The facade queries work.
	if ok, _ := d.ChildOf(para.UID(), doc.UID()); !ok {
		t.Fatal("ChildOf wrong")
	}
	comps, _ := d.ComponentsOf(doc.UID(), core.QueryOpts{})
	if len(comps) != 1 || comps[0] != para.UID() {
		t.Fatalf("components = %v", comps)
	}
	// Objects are mirrored into the page store.
	if !d.Store().Has(doc.UID()) || !d.Store().Has(para.UID()) {
		t.Fatal("write-through to the store failed")
	}
	// Clustering: the paragraph shares the document's page? Only if same
	// segment — classes default to distinct segments, so pages differ.
	dp, _ := d.Store().PageOf(doc.UID())
	pp, _ := d.Store().PageOf(para.UID())
	if dp == pp {
		t.Fatal("cross-segment clustering should not happen")
	}
	// Delete propagates to the store.
	if _, err := d.Delete(doc.UID()); err != nil {
		t.Fatal(err)
	}
	if d.Store().Has(doc.UID()) || d.Store().Has(para.UID()) {
		t.Fatal("store retains deleted objects")
	}
}

func TestClusteringWithinSharedSegment(t *testing.T) {
	d, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	// Both classes assigned to one segment: clustering with the first
	// parent applies (§2.3).
	if _, err := d.DefineClass(schema.ClassDef{Name: "Part", Segment: "cad"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Assembly", Segment: "cad", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Parts", "Part"),
	}}); err != nil {
		t.Fatal(err)
	}
	asm, _ := d.Make("Assembly", nil)
	part, err := d.Make("Part", nil, core.ParentSpec{Parent: asm.UID(), Attr: "Parts"})
	if err != nil {
		t.Fatal(err)
	}
	ap, _ := d.Store().PageOf(asm.UID())
	pp, _ := d.Store().PageOf(part.UID())
	if ap != pp {
		t.Fatalf("component not clustered with first parent: pages %d vs %d", ap, pp)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", map[string]value.Value{"Title": value.Str("persisted")})
	para, _ := d.Make("Paragraph", map[string]value.Value{"Text": value.Str("body")},
		core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	// Schema restored.
	if !d2.Catalog().Has("Document") {
		t.Fatal("catalog lost")
	}
	// Objects restored with attributes and reverse refs.
	o, err := d2.Get(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := o.Get("Title").AsString(); s != "persisted" {
		t.Fatalf("Title = %v", o.Get("Title"))
	}
	po, err := d2.Get(para.UID())
	if err != nil {
		t.Fatal(err)
	}
	if !po.HasReverse(doc.UID()) {
		t.Fatal("reverse ref lost")
	}
	// New objects do not collide with restored UIDs.
	n, err := d2.Make("Paragraph", nil)
	if err != nil {
		t.Fatal(err)
	}
	if n.UID() == para.UID() {
		t.Fatal("UID collision after reopen")
	}
	// Composite semantics still work.
	deleted, err := d2.Delete(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("deleted = %v", deleted)
	}
}

func TestCrashRecoveryFromWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", map[string]value.Value{"Title": value.Str("A")})
	// Checkpoint, then more work that lives only in the WAL.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	para, _ := d.Make("Paragraph", map[string]value.Value{"Text": value.Str("unflushed")},
		core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err := d.Set(doc.UID(), "Title", value.Str("B")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: drop everything without Close/Checkpoint.
	d.wal.Sync()
	d.dev.Close()

	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer d2.Close()
	o, err := d2.Get(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := o.Get("Title").AsString(); s != "B" {
		t.Fatalf("post-checkpoint write lost: Title = %v", o.Get("Title"))
	}
	po, err := d2.Get(para.UID())
	if err != nil {
		t.Fatalf("WAL-only object lost: %v", err)
	}
	if s, _ := po.Get("Text").AsString(); s != "unflushed" {
		t.Fatalf("Text = %v", po.Get("Text"))
	}
	if !po.HasReverse(doc.UID()) {
		t.Fatal("reverse ref lost in recovery")
	}
	if v := d2.Engine().Integrity(); len(v) != 0 {
		t.Fatalf("integrity after recovery: %v", v)
	}
}

func TestCrashRecoveryDelete(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir, SyncWAL: true})
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", nil)
	d.Checkpoint()
	if _, err := d.Delete(doc.UID()); err != nil {
		t.Fatal(err)
	}
	d.wal.Sync()
	d.dev.Close() // crash

	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.Get(doc.UID()); !errors.Is(err, core.ErrNoObject) {
		t.Fatalf("deleted object resurrected: %v", err)
	}
}

func TestVersionsThroughFacade(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir})
	defineDocSchema(t, d)
	g, v0, err := d.Versions().CreateVersionable("Document", map[string]value.Value{
		"Title": value.Str("v0"),
	})
	if err != nil {
		t.Fatal(err)
	}
	v1, err := d.Versions().Derive(v0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if !d2.Versions().IsGeneric(g) || !d2.Versions().IsVersion(v1) {
		t.Fatal("version bookkeeping lost across reopen")
	}
	def, err := d2.Versions().DefaultVersion(g)
	if err != nil || def != v1 {
		t.Fatalf("default = %v, %v", def, err)
	}
}

func TestAuthzThroughFacade(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir})
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", nil)
	para, _ := d.Make("Paragraph", nil, core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err := d.Authz().GrantObject("alice", doc.UID(), authz.SR); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	ok, err := d2.Authz().Check("alice", para.UID(), authz.Read)
	if err != nil || !ok {
		t.Fatalf("implicit auth lost across reopen: %v %v", ok, err)
	}
}

func TestTransactionsThroughFacade(t *testing.T) {
	d, _ := Open(Options{})
	defer d.Close()
	defineDocSchema(t, d)
	var doc uid.UID
	err := d.Run(func(tx *txn.Txn) error {
		o, err := tx.New("Document", map[string]value.Value{"Title": value.Str("tx")})
		if err != nil {
			return err
		}
		doc = o.UID()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(doc); err != nil {
		t.Fatal("committed object missing")
	}
}

func TestUseAfterClose(t *testing.T) {
	d, _ := Open(Options{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("checkpoint after close: %v", err)
	}
}

func TestWALGrowsAndCheckpointTruncates(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir})
	defineDocSchema(t, d)
	for i := 0; i < 50; i++ {
		if _, err := d.Make("Paragraph", map[string]value.Value{"Text": value.Str("x")}); err != nil {
			t.Fatal(err)
		}
	}
	d.wal.Sync()
	st, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("WAL empty despite writes")
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, _ = os.Stat(filepath.Join(dir, walFile))
	if st.Size() != 0 {
		t.Fatalf("WAL not truncated by checkpoint: %d bytes", st.Size())
	}
	d.Close()
}

func TestOpenRejectsCorruptMetadata(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir})
	defineDocSchema(t, d)
	d.Make("Document", nil)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the catalog: Open must fail loudly, not half-load.
	path := filepath.Join(dir, "catalog.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open with corrupt catalog succeeded")
	}
}

func TestOpenRejectsCorruptPages(t *testing.T) {
	dir := t.TempDir()
	d, _ := Open(Options{Dir: dir})
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", map[string]value.Value{"Title": value.Str("x")})
	d.Close()
	// Flip bytes in the page file where the object lives: decode must fail
	// at recovery.
	pb, err := os.ReadFile(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	for i := range pb {
		pb[i] ^= 0xFF
	}
	os.WriteFile(filepath.Join(dir, "pages.db"), pb, 0o644)
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("open with corrupt pages succeeded")
	}
	_ = doc
}

func TestOpenOnFileFails(t *testing.T) {
	// Dir pointing at an existing regular file must error.
	f := filepath.Join(t.TempDir(), "plain")
	os.WriteFile(f, []byte("x"), 0o644)
	if _, err := Open(Options{Dir: f}); err == nil {
		t.Fatal("open on a regular file succeeded")
	}
}

func TestCopyCompositeThroughFacade(t *testing.T) {
	d, _ := Open(Options{})
	defer d.Close()
	defineDocSchema(t, d)
	doc, _ := d.Make("Document", map[string]value.Value{"Title": value.Str("orig")})
	para, _ := d.Make("Paragraph", map[string]value.Value{"Text": value.Str("body")},
		core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	copyID, mapping, err := d.Engine().CopyComposite(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	// The deep copy is mirrored into the page store by the hook.
	if !d.Store().Has(copyID) || !d.Store().Has(mapping[para.UID()]) {
		t.Fatal("copy not persisted through the hook")
	}
	v, err := core.CopiedValue(d.Engine(), mapping, para.UID(), "Text")
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := v.AsString(); s != "body" {
		t.Fatalf("copied Text = %v", v)
	}
	if _, err := core.CopiedValue(d.Engine(), mapping, doc.UID(), "Title"); err != nil {
		t.Fatal(err)
	}
	ghost := uid.UID{Class: 9, Serial: 9}
	if _, err := core.CopiedValue(d.Engine(), mapping, ghost, "Title"); err == nil {
		t.Fatal("CopiedValue of uncopied object succeeded")
	}
}
