package db

import (
	"errors"

	"repro/internal/lock"
	"repro/internal/uid"
	"repro/internal/value"
)

// Auto-commit mutations (Make/Set/Attach/Detach/Delete outside an explicit
// transaction) go through the same §7 composite-unit lock admission that
// transactional writes use: each operation reserves a transaction identity,
// takes IX on the affected classes and X on the composite units it will
// touch, runs the engine operation, and releases. Writers on disjoint
// composite hierarchies therefore run in parallel while writers inside one
// hierarchy serialize on its root granule.
//
// Admission deadlocks are retried here because at that point the engine
// operation has not run yet — aborting the admission attempt has no state
// to undo. Errors from the operation itself are never retried.

const admissionRetries = 3

// withAdmission runs admit (lock acquisition only) and then op under a
// reserved transaction identity, releasing all locks on every path.
func (d *DB) withAdmission(admit func(tx lock.TxID) error, op func() error) error {
	lm := d.txm.Locks()
	for attempt := 0; ; attempt++ {
		tx := d.txm.Reserve()
		err := admit(tx)
		if err != nil {
			lm.ReleaseAll(tx)
			if errors.Is(err, lock.ErrDeadlock) && attempt+1 < admissionRetries {
				continue
			}
			return err
		}
		err = op()
		lm.ReleaseAll(tx)
		return err
	}
}

// admitUnitsWrite is withAdmission with write admission to the composite
// units containing ids (missing objects are locked directly, so racers on
// concurrently vanishing objects still serialize).
func (d *DB) admitUnitsWrite(op func() error, ids ...uid.UID) error {
	return d.withAdmission(func(tx lock.TxID) error {
		return d.txm.Protocol().LockUnitsWrite(tx, ids...)
	}, op)
}

// refUnits collects the objects referenced by the attribute values of a
// make call; each is mutated (reverse-reference insertion) when the
// attribute is composite, so each needs write admission.
func refUnits(attrs map[string]value.Value) []uid.UID {
	var out []uid.UID
	for _, v := range attrs {
		out = append(out, v.Refs(nil)...)
	}
	return out
}
