package db

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// twoShardDocs makes Documents until two land on different shards and
// returns one root per shard (shard 0 first). Serial numbers are
// assigned sequentially, so the hash routing reaches every shard within
// a few tries.
func twoShardDocs(t *testing.T, d *DB) (uid.UID, uid.UID) {
	t.Helper()
	byShard := map[int]uid.UID{}
	for i := 0; i < 64 && len(byShard) < 2; i++ {
		doc, err := d.Make("Document", map[string]value.Value{"Title": value.Str(fmt.Sprintf("d%d", i))})
		if err != nil {
			t.Fatal(err)
		}
		k, ok := d.Store().ShardOf(doc.UID())
		if !ok {
			t.Fatalf("fresh doc %v unrouted", doc.UID())
		}
		if _, dup := byShard[k]; !dup {
			byShard[k] = doc.UID()
		}
	}
	if len(byShard) < 2 {
		t.Fatal("could not place documents on two shards")
	}
	var ks []int
	for k := range byShard {
		ks = append(ks, k)
	}
	if ks[0] > ks[1] {
		ks[0], ks[1] = ks[1], ks[0]
	}
	return byShard[ks[0]], byShard[ks[1]]
}

// TestShardedBasicReopen: a 4-shard database keeps the full Store
// surface working, lays per-shard files on disk, survives a clean
// close/reopen, and the manifest pins the shard count against a
// conflicting Options.Shards on reopen.
func TestShardedBasicReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, Shards: 4, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", d.Shards())
	}
	defineDocSchema(t, d)
	var members []uid.UID
	for i := 0; i < 8; i++ {
		doc, ms := buildDoc(t, d, fmt.Sprintf("doc%d", i), 3)
		_ = doc
		members = append(members, ms...)
	}
	// Every member of a unit lives on its root's shard.
	for i := 0; i < len(members); i += 4 {
		root := members[i]
		rk, _ := d.Store().ShardOf(root)
		for _, id := range members[i : i+4] {
			if k, _ := d.Store().ShardOf(id); k != rk {
				t.Fatalf("member %v on shard %d, root %v on %d", id, k, root, rk)
			}
		}
	}
	if err := d.CheckShards(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	// Per-shard files exist: shard 0 keeps the classic names.
	for _, f := range []string{"pages.db", "wal.log", "store.json", "pages-1.db", "wal-1.log", "store-1.json", "pages-3.db", "wal-3.log", "store-3.json", "shards.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	// Reopen with a CONFLICTING shard count: the manifest wins.
	r, err := Open(Options{Dir: dir, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != 4 {
		t.Fatalf("reopened Shards() = %d, manifest says 4", r.Shards())
	}
	for _, id := range members {
		if _, err := r.Get(id); err != nil {
			t.Fatalf("object %v lost across reopen: %v", id, err)
		}
	}
	if err := r.CheckShards(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardTxnCommitsAndRecovers: a transaction spanning two shards
// commits through 2PC; after a crash (no checkpoint) parallel recovery
// resolves it as committed on every shard.
func TestCrossShardTxnCommitsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, Shards: 4, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	docA, docB := twoShardDocs(t, d)
	if err := d.Run(func(tx *txn.Txn) error {
		if err := tx.WriteAttr(docA, "Title", value.Str("cross-A")); err != nil {
			return err
		}
		return tx.WriteAttr(docB, "Title", value.Str("cross-B"))
	}); err != nil {
		t.Fatal(err)
	}
	if got := d.so.crossCommits.Load(); got != 1 {
		t.Fatalf("cross-shard commits = %d, want 1", got)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for id, want := range map[uid.UID]string{docA: "cross-A", docB: "cross-B"} {
		o, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := o.Get("Title").AsString(); got != want {
			t.Fatalf("%v Title = %q, want %q", id, got, want)
		}
	}
	if err := r.CheckShards(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardAbortLeavesNothing: an aborted cross-shard transaction
// rolls back on every shard, in memory and across a crash.
func TestCrossShardAbortLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, Shards: 4, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	docA, docB := twoShardDocs(t, d)
	tx := d.Begin()
	if err := tx.WriteAttr(docA, "Title", value.Str("boom-A")); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteAttr(docB, "Title", value.Str("boom-B")); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, id := range []uid.UID{docA, docB} {
		o, err := r.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if got, _ := o.Get("Title").AsString(); got == "boom-A" || got == "boom-B" {
			t.Fatalf("aborted write to %v survived: %q", id, got)
		}
	}
	if err := r.CheckShards(); err != nil {
		t.Fatal(err)
	}
}

// crossCutState describes one shard WAL's cut-relevant offsets for the
// 2PC crash matrix.
type crossCutState struct {
	path     string
	size     int64
	cuts     []int64 // candidate truncation points
	decision int64   // end of OpCommit (coord) / OpPrepare (participant); -1 if absent
	phase2   int64   // end of participant's phase-2 OpCommit; -1 if absent
}

func scanCrossWAL(t *testing.T, path string, tx uint64) crossCutState {
	t.Helper()
	st := crossCutState{path: path, decision: -1, phase2: -1}
	seenPrepare := false
	err := storage.ReplayWALFrames(path, func(rec storage.WALRecord, start, end int64) error {
		if start == 0 {
			st.cuts = append(st.cuts, 0)
		}
		st.cuts = append(st.cuts, end, end-3) // boundary + torn tail
		st.size = end
		if rec.Txn != tx {
			return nil
		}
		switch rec.Op {
		case storage.OpPrepare:
			seenPrepare = true
			st.decision = end
		case storage.OpCommit:
			if seenPrepare {
				st.phase2 = end
			} else {
				st.decision = end
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestCrossShardCommitCrashAtEveryOffset is the 2PC atomicity matrix,
// the sharded sibling of TestReclusterCrashAtEveryOffset: both shard
// WALs are truncated at EVERY pair of frame boundaries (plus torn
// mid-frame points) around a cross-shard commit, and each crash image
// must recover all-or-nothing. Pairs that violate the protocol's fsync
// ordering — the coordinator's commit point is durable only after every
// participant's prepare, and a participant's phase-2 commit only after
// the coordinator's — cannot arise from a crash and are skipped.
func TestCrossShardCommitCrashAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, Shards: 2, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	docA, docB := twoShardDocs(t, d)
	// Pin the baseline (docs, schema) into the checkpoint so every cut
	// point exercises only the cross-shard transaction's records.
	if err := d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	var pA, pB uid.UID
	if err := d.Run(func(tx *txn.Txn) error {
		if err := tx.WriteAttr(docA, "Title", value.Str("new-A")); err != nil {
			return err
		}
		if err := tx.WriteAttr(docB, "Title", value.Str("new-B")); err != nil {
			return err
		}
		a, err := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("pa")},
			core.ParentSpec{Parent: docA, Attr: "Paras"})
		if err != nil {
			return err
		}
		b, err := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("pb")},
			core.ParentSpec{Parent: docB, Attr: "Paras"})
		if err != nil {
			return err
		}
		pA, pB = a.UID(), b.UID()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	crossTxn := uint64(0)
	if err := storage.ReplayWALFrames(filepath.Join(dir, walFile), func(rec storage.WALRecord, _, _ int64) error {
		if rec.Op == storage.OpPrepare || (rec.Op == storage.OpCommit && rec.Txn > crossTxn) {
			crossTxn = rec.Txn
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if crossTxn == 0 {
		t.Fatal("cross-shard transaction not found in shard 0's WAL")
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}

	wal0 := scanCrossWAL(t, filepath.Join(dir, walFile), crossTxn)
	wal1 := scanCrossWAL(t, filepath.Join(dir, shardFile(walFile, 1)), crossTxn)
	// Coordinator is the lowest participating shard: shard 0. Its
	// decision record is OpCommit; shard 1 carries OpPrepare (+ a phase-2
	// OpCommit).
	if wal0.decision < 0 || wal1.decision < 0 {
		t.Fatalf("decision offsets not found: coord=%d part=%d", wal0.decision, wal1.decision)
	}
	if wal1.phase2 < 0 {
		t.Fatal("participant phase-2 commit not found")
	}

	files := map[string][]byte{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[e.Name()] = b
	}
	crash := func(t *testing.T, cut0, cut1 int64) string {
		t.Helper()
		dst := t.TempDir()
		for name, b := range files {
			if name == walFile && cut0 < int64(len(b)) {
				b = b[:cut0]
			}
			if name == shardFile(walFile, 1) && cut1 < int64(len(b)) {
				b = b[:cut1]
			}
			if err := os.WriteFile(filepath.Join(dst, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}

	tried := 0
	for _, cut0 := range wal0.cuts {
		for _, cut1 := range wal1.cuts {
			if cut0 < 0 || cut1 < 0 {
				continue
			}
			committed := cut0 >= wal0.decision
			// Fsync ordering: commit point durable ⇒ every prepare durable;
			// phase-2 commit durable ⇒ commit point durable.
			if committed && cut1 < wal1.decision {
				continue
			}
			if cut1 >= wal1.phase2 && !committed {
				continue
			}
			tried++
			crashed := crash(t, cut0, cut1)
			r, err := Open(Options{Dir: crashed})
			if err != nil {
				t.Fatalf("cut (%d,%d): reopen: %v", cut0, cut1, err)
			}
			if r.Shards() != 2 {
				t.Fatalf("cut (%d,%d): recovered %d shards", cut0, cut1, r.Shards())
			}
			oA, errA := r.Get(docA)
			oB, errB := r.Get(docB)
			if errA != nil || errB != nil {
				t.Fatalf("cut (%d,%d): baseline docs lost: %v %v", cut0, cut1, errA, errB)
			}
			gotA, _ := oA.Get("Title").AsString()
			gotB, _ := oB.Get("Title").AsString()
			if committed && (gotA != "new-A" || gotB != "new-B") {
				t.Fatalf("cut (%d,%d): committed txn not applied: %q %q", cut0, cut1, gotA, gotB)
			}
			if !committed && (gotA == "new-A" || gotB == "new-B") {
				t.Fatalf("cut (%d,%d): aborted txn partially applied: %q %q", cut0, cut1, gotA, gotB)
			}
			// The transaction's created objects follow the same fate.
			if hasA, hasB := r.Store().Has(pA), r.Store().Has(pB); hasA != committed || hasB != committed {
				t.Fatalf("cut (%d,%d): committed=%v but paragraphs present = %v,%v", cut0, cut1, committed, hasA, hasB)
			}
			if err := r.CheckShards(); err != nil {
				t.Fatalf("cut (%d,%d): %v", cut0, cut1, err)
			}
			if err := r.CheckPlacement(); err != nil {
				t.Fatalf("cut (%d,%d): %v", cut0, cut1, err)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("cut (%d,%d): close: %v", cut0, cut1, err)
			}
		}
	}
	if tried < 20 {
		t.Fatalf("crash matrix exercised only %d points", tried)
	}
}
