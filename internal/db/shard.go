package db

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Sharding by composite unit (DESIGN.md §16). The store is partitioned
// into N shards keyed by core.PlacementRootOf: each shard owns a page
// device, a buffer pool, a WAL, and a group committer, so disjoint
// composite hierarchies commit through disjoint fsync pipelines and
// recovery replays the logs in parallel. Routing is sticky (see
// storage.ShardedStore); a transaction that writes several shards commits
// with a presumed-abort 2PC layered on the existing WAL markers:
//
//	participant logs:  OpBegin ... records ... OpPrepare(coord) | fsync
//	coordinator log:   OpBegin ... records ... OpCommit         | fsync  ← commit point
//	participant logs:  OpCommit (no fsync; recovery can resolve without it)
//
// The coordinator is the lowest participating shard index. Recovery pass 1
// replays every shard's WAL concurrently, applying locally-decided
// transactions and collecting prepared-but-undecided ones; pass 2 resolves
// each in-doubt transaction by asking whether the coordinator's log
// committed it (presumed abort otherwise).

// dbShard is one store partition's I/O stack.
type dbShard struct {
	dev  storage.Device
	pool *storage.BufferPool
	st   *storage.Store
	wal  *storage.WAL // nil for in-memory databases
	gc   *storage.GroupCommitter

	// appends/synced implement the auto-commit fsync watermark: appends
	// counts WAL records logged to this shard, synced is the append count
	// known covered by a completed fsync. SyncAutoCommit skips shards
	// whose watermark is current — with many shards, an auto-commit write
	// to one shard must not pay one fsync per shard.
	appends atomic.Uint64
	synced  atomic.Uint64
}

// noteSynced raises the fsync watermark to n (appends observed before the
// sync that just completed).
func (s *dbShard) noteSynced(n uint64) {
	for {
		cur := s.synced.Load()
		if cur >= n || s.synced.CompareAndSwap(cur, n) {
			return
		}
	}
}

// maxShards bounds Options.Shards: the hook tracks a transaction's
// written-shard set as a uint64 bitmask.
const maxShards = 64

const shardsFile = "shards.json"

// shardFile derives shard k's file name from the legacy single-store
// name: shard 0 keeps the original ("pages.db", "wal.log", "store.json")
// so 1-shard databases are byte-compatible with pre-sharding layouts;
// shard k>0 gets a -k suffix before the extension ("pages-2.db").
func shardFile(base string, k int) string {
	if k == 0 {
		return base
	}
	ext := filepath.Ext(base)
	return fmt.Sprintf("%s-%d%s", strings.TrimSuffix(base, ext), k, ext)
}

// shardManifest persists the shard count in the database directory. The
// manifest is written once at creation and wins over Options.Shards on
// reopen: a 4-shard database reopened with default options must not
// silently strand shards 1–3.
type shardManifest struct {
	Shards int `json:"shards"`
}

// resolveShards decides the shard count for a database at dir (possibly
// "" = in-memory): the manifest if one exists, else opts (default 1),
// writing the manifest for durable databases so the count is pinned.
func resolveShards(dir string, want int) (int, error) {
	if want <= 0 {
		want = 1
	}
	if want > maxShards {
		return 0, fmt.Errorf("db: Shards %d exceeds the maximum %d", want, maxShards)
	}
	if dir == "" {
		return want, nil
	}
	path := filepath.Join(dir, shardsFile)
	if b, err := os.ReadFile(path); err == nil {
		var m shardManifest
		if err := json.Unmarshal(b, &m); err != nil {
			return 0, fmt.Errorf("db: parse %s: %w", shardsFile, err)
		}
		if m.Shards < 1 || m.Shards > maxShards {
			return 0, fmt.Errorf("db: %s declares %d shards", shardsFile, m.Shards)
		}
		return m.Shards, nil
	} else if !errors.Is(err, os.ErrNotExist) {
		return 0, err
	}
	b, err := json.Marshal(shardManifest{Shards: want})
	if err != nil {
		return 0, err
	}
	// tmp+rename so a crash mid-creation leaves either no manifest (the
	// directory has no shard files yet either) or a complete one.
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	return want, nil
}

// shardObs is the storage_shard_* metric family.
type shardObs struct {
	count          *obs.Gauge   // configured shard count
	localCommits   *obs.Counter // transactions that committed on one shard
	crossCommits   *obs.Counter // transactions that committed via 2PC
	prepares       *obs.Counter // OpPrepare records written
	replays        *obs.Counter // shard WALs replayed at recovery
	indoubt        *obs.Gauge   // in-doubt transactions awaiting resolution
	resolvedCommit *obs.Counter // in-doubt transactions resolved to commit
	resolvedAbort  *obs.Counter // in-doubt transactions resolved to abort
}

func (d *DB) bindShardObs() {
	d.so = shardObs{
		count:          d.reg.Gauge("storage_shard_count"),
		localCommits:   d.reg.Counter("storage_shard_local_commit_total"),
		crossCommits:   d.reg.Counter("storage_shard_cross_commit_total"),
		prepares:       d.reg.Counter("storage_shard_prepare_total"),
		replays:        d.reg.Counter("storage_shard_recovery_replays_total"),
		indoubt:        d.reg.Gauge("storage_shard_recovery_indoubt"),
		resolvedCommit: d.reg.Counter("storage_shard_recovery_resolved_commit_total"),
		resolvedAbort:  d.reg.Counter("storage_shard_recovery_resolved_abort_total"),
	}
}

// shardBits expands a written-shard bitmask into sorted shard indexes.
func shardBits(mask uint64) []int {
	var out []int
	for k := 0; mask != 0; k++ {
		if mask&1 != 0 {
			out = append(out, k)
		}
		mask >>= 1
	}
	return out
}

// commitCrossShard runs the 2PC commit for a transaction that logged
// records on more than one shard. Phase 1 appends a prepare record to
// every participant (all written shards except the coordinator, the
// lowest index) and fsyncs them in parallel; the coordinator's fsynced
// OpCommit is then the commit point; phase 2's participant OpCommits are
// not synced — if they are lost, recovery resolves the prepared
// transactions against the coordinator's log. Cross-shard commits fsync
// even when SyncWAL is off: without the prepare barrier the commit point
// would not be a point, and a crash could apply the transaction on one
// shard but not another.
func (d *DB) commitCrossShard(tx uint64, shards []int) error {
	coord, parts := shards[0], shards[1:]
	prepData := storage.EncodePrepareData(coord)
	for _, p := range parts {
		if err := d.shards[p].wal.Append(storage.WALRecord{
			Op: storage.OpPrepare, Txn: tx, Data: prepData,
		}); err != nil {
			return err
		}
	}
	errs := make([]error, len(parts))
	var wg sync.WaitGroup
	for i, p := range parts {
		wg.Add(1)
		go func(i, p int) {
			defer wg.Done()
			n := d.shards[p].appends.Load()
			if errs[i] = d.shards[p].gc.Sync(); errs[i] == nil {
				d.shards[p].noteSynced(n)
			}
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	c := d.shards[coord]
	if err := c.wal.Append(storage.WALRecord{Op: storage.OpCommit, Txn: tx}); err != nil {
		return err
	}
	n := c.appends.Load()
	if err := c.gc.Sync(); err != nil {
		return err
	}
	c.noteSynced(n)
	for _, p := range parts {
		if err := d.shards[p].wal.Append(storage.WALRecord{Op: storage.OpCommit, Txn: tx}); err != nil {
			return err
		}
	}
	d.so.crossCommits.Inc()
	d.so.prepares.Add(uint64(len(parts)))
	return nil
}

// indoubtTxn is a transaction found prepared but undecided in one shard's
// log: its buffered records plus the coordinator shard that knows its fate.
type indoubtTxn struct {
	coord int
	recs  []storage.WALRecord
}

// shardReplay is the outcome of replaying one shard's WAL (recovery
// pass 1).
type shardReplay struct {
	maxTxn    uint64
	ckptSegs  storage.SegmentID // pre-replay segment boundary (checkpoint-stable IDs)
	committed map[uint64]bool
	indoubt   map[uint64]*indoubtTxn
}

// replayShard replays shard k's WAL into its store: auto-commit records
// apply immediately, transactional groups apply at their local OpCommit,
// prepared-but-undecided groups are returned for pass-2 resolution, and
// everything else is an uncommitted tail, discarded. Safe to run
// concurrently for different shards — each touches only its own store
// (the shared routing table is mutex-guarded).
func (d *DB) replayShard(k int) (*shardReplay, error) {
	r := &shardReplay{committed: make(map[uint64]bool), indoubt: make(map[uint64]*indoubtTxn)}
	r.ckptSegs = d.shards[k].st.NextSegment()
	ckptSegs := r.ckptSegs
	pending := make(map[uint64][]storage.WALRecord)
	prepared := make(map[uint64]int)
	err := storage.ReplayWAL(filepath.Join(d.opts.Dir, shardFile(walFile, k)), func(rec storage.WALRecord) error {
		if rec.Txn > r.maxTxn {
			r.maxTxn = rec.Txn
		}
		switch rec.Op {
		case storage.OpBegin:
			// Pre-seeding logs could reuse an ID after a discarded tail;
			// a fresh Begin resets whatever the old incarnation left.
			pending[rec.Txn] = []storage.WALRecord{}
			delete(prepared, rec.Txn)
			return nil
		case storage.OpPrepare:
			coord, err := storage.DecodePrepareData(rec.Data)
			if err != nil {
				return fmt.Errorf("shard %d: prepare for txn %d: %w", k, rec.Txn, err)
			}
			prepared[rec.Txn] = coord
			return nil
		case storage.OpCommit:
			for _, buffered := range pending[rec.Txn] {
				if err := d.applyRecord(k, ckptSegs, buffered); err != nil {
					return err
				}
			}
			r.committed[rec.Txn] = true
			delete(pending, rec.Txn)
			delete(prepared, rec.Txn)
			return nil
		case storage.OpAbort:
			delete(pending, rec.Txn)
			delete(prepared, rec.Txn)
			return nil
		default:
			if rec.Txn != 0 {
				pending[rec.Txn] = append(pending[rec.Txn], rec)
				return nil
			}
			return d.applyRecord(k, ckptSegs, rec)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("db: shard %d WAL replay: %w", k, err)
	}
	for tx, coord := range prepared {
		r.indoubt[tx] = &indoubtTxn{coord: coord, recs: pending[tx]}
	}
	d.so.replays.Inc()
	return r, nil
}

// applyRecord applies one WAL record to shard k's store (shard-scoped
// twin of the pre-sharding recovery apply).
func (d *DB) applyRecord(k int, ckptSegs storage.SegmentID, rec storage.WALRecord) error {
	st := d.shards[k].st
	switch rec.Op {
	case storage.OpPut:
		// Prefer the segment persisted with the record; fall back to the
		// class assignment when the record predates segment logging or
		// references a post-checkpoint segment (their IDs are replay-order-
		// dependent).
		seg := rec.Seg
		if seg == 0 || seg >= ckptSegs || !st.HasSegment(seg) {
			var err error
			if seg, err = d.segmentForClassIn(k, rec.UID.Class); err != nil {
				return err
			}
		}
		return d.store.Put(k, seg, rec.UID, rec.Data, rec.Near)
	case storage.OpDelete:
		if err := d.store.Delete(rec.UID); err != nil && !errors.Is(err, storage.ErrNotFound) {
			return err
		}
		return nil
	case storage.OpMove:
		// A reclusterer migration within this shard. The target segment
		// travels by NAME; skip moves of objects that don't exist at this
		// log position (their creating transaction was discarded).
		if !st.Has(rec.UID) {
			return nil
		}
		name := string(rec.Data)
		if name == "" {
			return fmt.Errorf("db: OpMove for %v without a segment name", rec.UID)
		}
		seg, ok := st.SegmentByName(name)
		if !ok {
			var err error
			if seg, err = st.CreateSegment(name); err != nil {
				return err
			}
		}
		return d.store.Move(k, seg, rec.UID, rec.Near)
	default:
		return fmt.Errorf("db: unknown WAL op %d", rec.Op)
	}
}

// recoverShards is the sharded recovery core: load per-shard checkpoint
// metas, rebuild the routing table, replay every shard's WAL in parallel
// (pass 1), then resolve in-doubt 2PC transactions against their
// coordinator's verdict (pass 2). Returns the highest transaction ID seen
// in any log, for seeding the transaction-ID counter.
func (d *DB) recoverShards(loadMeta func(name string, fn func(*bytes.Reader) error) error) (uint64, error) {
	for k := range d.shards {
		st := d.shards[k].st
		if err := loadMeta(shardFile(storeFile, k), func(r *bytes.Reader) error { return st.LoadMeta(r) }); err != nil {
			return 0, err
		}
	}
	if err := d.store.Reindex(); err != nil {
		return 0, err
	}
	replays := make([]*shardReplay, len(d.shards))
	errs := make([]error, len(d.shards))
	var wg sync.WaitGroup
	for k := range d.shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			replays[k], errs[k] = d.replayShard(k)
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	var maxTxn uint64
	for _, r := range replays {
		if r.maxTxn > maxTxn {
			maxTxn = r.maxTxn
		}
	}
	// Pass 2: every prepared-but-undecided transaction commits iff its
	// coordinator's log committed it; otherwise presumed abort. The
	// participant's buffered records then apply (or drop) exactly as a
	// local commit/abort would have.
	for k, r := range replays {
		for tx, ind := range r.indoubt {
			d.so.indoubt.Add(1)
			if ind.coord < 0 || ind.coord >= len(d.shards) {
				return 0, fmt.Errorf("db: shard %d: txn %d prepared with coordinator %d of %d shards",
					k, tx, ind.coord, len(d.shards))
			}
			if replays[ind.coord].committed[tx] {
				for _, rec := range ind.recs {
					if err := d.applyRecord(k, r.ckptSegs, rec); err != nil {
						return 0, fmt.Errorf("db: shard %d: resolve txn %d: %w", k, tx, err)
					}
				}
				d.so.resolvedCommit.Inc()
			} else {
				d.so.resolvedAbort.Inc()
			}
			d.so.indoubt.Add(-1)
		}
	}
	return maxTxn, nil
}

// CheckShards verifies the cross-shard invariants under d.mu: every
// object is stored by exactly the shard the routing table names (and by
// no other), and no in-doubt 2PC transaction is outstanding — recovery
// resolves every prepared transaction before Open returns, and at
// quiescence (no open transactions) the hook's written-shard table must
// be empty as well.
func (d *DB) CheckShards() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if err := d.store.CheckShards(); err != nil {
		return err
	}
	if n := d.so.indoubt.Load(); n != 0 {
		return fmt.Errorf("db: %d in-doubt 2PC transactions outstanding", n)
	}
	return nil
}

// Shards returns the configured shard count.
func (d *DB) Shards() int { return len(d.shards) }
