package db

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// shardFuzzSeed builds one durable 2-shard database with local and
// cross-shard transactions (committed, aborted, and reclustered work)
// and returns a snapshot of its directory. Built once per process: the
// fuzz iterations only vary how the two shard WALs get truncated.
var shardFuzzSeed struct {
	once  sync.Once
	files map[string][]byte
	err   error
}

func shardFuzzFiles() (map[string][]byte, error) {
	s := &shardFuzzSeed
	s.once.Do(func() {
		dir, err := os.MkdirTemp("", "shardfuzz")
		if err != nil {
			s.err = err
			return
		}
		defer os.RemoveAll(dir)
		d, err := Open(Options{Dir: dir, Shards: 2, SyncWAL: true, ReclusterHotMisses: 2})
		if err != nil {
			s.err = err
			return
		}
		if err := defineDocSchemaErr(d); err != nil {
			s.err = err
			return
		}
		var docs []uid.UID
		for i := 0; i < 6; i++ {
			doc, err := d.Make("Document", map[string]value.Value{"Title": value.Str(fmt.Sprintf("d%d", i))})
			if err != nil {
				s.err = err
				return
			}
			docs = append(docs, doc.UID())
		}
		// Pin schema + docs under the checkpoint, leave the rest in the WALs.
		if err := d.Checkpoint(); err != nil {
			s.err = err
			return
		}
		for i, doc := range docs {
			if err := d.Set(doc, "Title", value.Str(fmt.Sprintf("v%d", i))); err != nil {
				s.err = err
				return
			}
		}
		// Cross-shard and local transactions, one abort among them.
		for i := 0; i+1 < len(docs); i += 2 {
			a, b := docs[i], docs[i+1]
			err := d.Run(func(tx *txn.Txn) error {
				if err := tx.WriteAttr(a, "Title", value.Str(fmt.Sprintf("x%d", i))); err != nil {
					return err
				}
				return tx.WriteAttr(b, "Title", value.Str(fmt.Sprintf("y%d", i)))
			})
			if err != nil {
				s.err = err
				return
			}
		}
		tx := d.Begin()
		if err := tx.WriteAttr(docs[0], "Title", value.Str("aborted")); err != nil {
			s.err = err
			return
		}
		if err := tx.WriteAttr(docs[1], "Title", value.Str("aborted")); err != nil {
			s.err = err
			return
		}
		if err := tx.Abort(); err != nil {
			s.err = err
			return
		}
		if _, err := d.ReclusterNow(); err != nil {
			s.err = err
			return
		}
		if err := d.Abandon(); err != nil {
			s.err = err
			return
		}
		files := map[string][]byte{}
		ents, err := os.ReadDir(dir)
		if err != nil {
			s.err = err
			return
		}
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				s.err = err
				return
			}
			files[e.Name()] = b
		}
		s.files = files
	})
	return s.files, s.err
}

// defineDocSchemaErr is defineDocSchema without the *testing.T
// plumbing, callable from the once-guarded fuzz seed builder.
func defineDocSchemaErr(d *DB) error {
	if _, err := d.DefineClass(schema.ClassDef{Name: "Paragraph", Attributes: []schema.AttrSpec{
		schema.NewAttr("Text", schema.StringDomain),
	}}); err != nil {
		return err
	}
	_, err := d.DefineClass(schema.ClassDef{Name: "Document", Attributes: []schema.AttrSpec{
		schema.NewAttr("Title", schema.StringDomain),
		schema.NewCompositeSetAttr("Paras", "Paragraph"),
	}})
	return err
}

// shardImage flattens a recovered database to a comparable string:
// every object's UID, owning shard, and raw record bytes.
func shardImage(d *DB) string {
	var lines []string
	for _, id := range d.Store().UIDs() {
		k, _ := d.Store().ShardOf(id)
		rec, err := d.Store().Get(id)
		if err != nil {
			lines = append(lines, fmt.Sprintf("%v shard=%d ERR=%v", id, k, err))
			continue
		}
		lines = append(lines, fmt.Sprintf("%v shard=%d rec=%x", id, k, rec))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// FuzzShardWALInterleave replays the two shard WALs of a crashed 2-shard
// database with fuzzer-chosen truncation points, twice per input. The
// shards recover in parallel goroutines, so the two runs exercise
// different replay interleavings; recovery must converge to the SAME
// image regardless, keep the routing table consistent with shard
// contents (every object readable from exactly one shard), and leave no
// in-doubt transaction behind.
func FuzzShardWALInterleave(f *testing.F) {
	if _, err := shardFuzzFiles(); err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(64), uint16(64))
	f.Add(uint16(9999), uint16(9999))
	f.Add(uint16(9999), uint16(17))
	f.Add(uint16(33), uint16(9999))
	f.Fuzz(func(t *testing.T, cut0, cut1 uint16) {
		files, err := shardFuzzFiles()
		if err != nil {
			t.Fatal(err)
		}
		open := func() *DB {
			t.Helper()
			dir := t.TempDir()
			for name, b := range files {
				if name == walFile && int(cut0) < len(b) {
					b = b[:cut0]
				}
				if name == shardFile(walFile, 1) && int(cut1) < len(b) {
					b = b[:cut1]
				}
				if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			d, err := Open(Options{Dir: dir})
			if err != nil {
				t.Fatalf("cuts (%d,%d): reopen: %v", cut0, cut1, err)
			}
			return d
		}
		d1 := open()
		img1 := shardImage(d1)
		if err := d1.CheckShards(); err != nil {
			t.Fatalf("cuts (%d,%d): %v", cut0, cut1, err)
		}
		if err := d1.CheckPlacement(); err != nil {
			t.Fatalf("cuts (%d,%d): %v", cut0, cut1, err)
		}
		// Every stored object must be engine-visible.
		for _, id := range d1.Store().UIDs() {
			if _, err := d1.Get(id); err != nil {
				t.Fatalf("cuts (%d,%d): %v stored but not loadable: %v", cut0, cut1, id, err)
			}
		}
		d1.Abandon()
		d2 := open()
		img2 := shardImage(d2)
		d2.Abandon()
		if img1 != img2 {
			t.Fatalf("cuts (%d,%d): recovery not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", cut0, cut1, img1, img2)
		}
	})
}
