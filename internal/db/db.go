// Package db is the public facade of the composite-object database: it
// wires the schema catalog, the composite-object engine, the paged
// storage layer with write-ahead logging, the version manager, the
// authorization store, and the transaction manager into one ORION-like
// system.
//
// A DB opened with an empty Dir runs fully in memory (still through the
// page store, so clustering and I/O accounting work); a DB opened on a
// directory persists pages, catalog, and metadata, and recovers committed
// work from the WAL after a crash.
package db

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/index"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/version"
)

// Options configures Open.
type Options struct {
	// Dir is the database directory; empty means in-memory.
	Dir string
	// PoolPages is the buffer-pool capacity in pages (default 256).
	PoolPages int
	// SyncWAL makes commits durable: the WAL is fsynced at every commit
	// boundary — Txn.Commit, and each auto-commit write issued outside a
	// transaction — before the operation returns. The fsync is issued
	// through a group-commit coordinator, so concurrent committers share
	// one fsync per batch rather than paying one each. Without SyncWAL
	// the log is synced only at checkpoints, and a crash may lose
	// recently committed work (it never produces a half-applied
	// transaction either way; replay is atomic per transaction).
	SyncWAL bool
	// GroupCommitWait bounds how long a group-commit leader waits for
	// concurrent committers to join its batch (default 200µs). The wait
	// is only taken when other committers are demonstrably in flight, so
	// a lone committer is never delayed.
	GroupCommitWait time.Duration
	// GroupCommitBatch caps how many committers one fsync may cover
	// (default 64).
	GroupCommitBatch int
	// Device overrides the page device, e.g. a fault-injecting wrapper
	// from internal/faultfs. When nil, Open uses a MemDevice for
	// in-memory databases and a FileDevice on Dir/pages.db otherwise.
	Device storage.Device
	// MVCCGCInterval is the cadence of the background version garbage
	// collector, which sweeps stale version-chain tails left behind
	// released snapshots (install-time pruning already bounds chains that
	// keep being written). Zero selects the 2s default; negative disables
	// the background sweep (Engine.VersionGC remains callable).
	MVCCGCInterval time.Duration
	// SlowOpThreshold arms the slow-op log from the start: operations at
	// or above this duration are recorded in the ring and trigger a
	// throttled flight-recorder dump. Zero leaves the log disabled (it
	// can still be armed later via Observability().Slow().SetThreshold,
	// which the shell's `slow DUR` command does).
	SlowOpThreshold time.Duration
	// Placement selects the clustering policy applied to every creating
	// write: "first-parent" (the paper's §2.3 choice, the default),
	// "class" (plain class-segment append, the clustering-study baseline),
	// or "usage" (DSTC/OPCF spirit: cluster members of units the buffer
	// pool demonstrably misses on). See storage.NewPlacement.
	Placement string
	// ReclusterInterval is the cadence of the background reclusterer,
	// which migrates hot composite units onto contiguous pages under the
	// §7 unit-root lock. Zero or negative disables the background loop
	// (DB.ReclusterNow remains callable).
	ReclusterInterval time.Duration
	// ReclusterHotMisses is the per-unit heat (pool misses + write
	// activity attributed to the unit root) at which a unit qualifies for
	// migration — and, under the usage policy, for eager clustering of
	// new members. Zero selects storage.DefaultHotMisses.
	ReclusterHotMisses int
	// ReclusterBatch caps how many units one reclustering pass migrates
	// (default 8): the pass holds no global locks, but bounding it keeps
	// any single pass's WAL volume and lock footprint small.
	ReclusterBatch int
	// Shards partitions the store by composite unit (DESIGN.md §16): N
	// independent page device + buffer pool + WAL + group committer
	// stacks, with objects routed to the shard of their placement root,
	// so single-hierarchy transactions fsync one log and recovery replays
	// the logs in parallel. Cross-shard transactions commit via 2PC.
	// Zero or one selects the classic single-shard layout (byte-
	// compatible with pre-sharding directories); max 64. For durable
	// databases the count is pinned in a shards.json manifest at
	// creation, and the manifest wins on reopen.
	Shards int
}

// ErrClosed is returned when a closed DB is used.
var ErrClosed = errors.New("db: closed")

// DB is an open database.
type DB struct {
	mu     sync.Mutex
	opts   Options
	cat    *schema.Catalog
	engine *core.Engine

	// The sharded store: shards[k] owns device, pool, store partition,
	// WAL, and group committer k (see shard.go); store routes objects
	// across them by composite unit. dev/pool/wal/gc alias shard 0's
	// stack — the legacy single-shard surface (Pool(), AttachProf) and
	// the package's crash tests reach the default shard through them.
	shards []*dbShard
	store  *storage.ShardedStore
	so     shardObs
	dev    storage.Device
	pool   *storage.BufferPool
	wal    *storage.WAL
	gc     *storage.GroupCommitter
	hk     *hook

	vers *version.Manager
	auth   *authz.Store
	txm    *txn.Manager
	idx    *index.Manager
	idxDef [][2]string // persisted (class, attr) index definitions
	reg    *obs.Registry
	gcStop chan struct{} // closed to stop the background version GC
	closed bool

	// Clustering policy state (see recluster.go for the background loop).
	place   storage.Placement
	heat    *obs.UnitHeat
	rec     reclusterObs
	recStop chan struct{} // closed to stop the background reclusterer

	// Profiling instruments, bound at Open so the query_profile_* family
	// is present in the exposition before the first (profile ...) runs.
	profRuns *obs.Counter
	profWall *obs.Histogram
}

const (
	pagesFile    = "pages.db"
	walFile      = "wal.log"
	catalogFile  = "catalog.json"
	indexFile    = "indexes.json"
	storeFile    = "store.json"
	versionsFile = "versions.json"
	authFile     = "auth.json"
)

// Open opens (creating or recovering) a database.
func Open(opts Options) (*DB, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 256
	}
	d := &DB{opts: opts, cat: schema.NewCatalog(), reg: obs.NewRegistry()}
	d.profRuns = d.reg.Counter("query_profile_runs_total")
	d.profWall = d.reg.Histogram("query_profile_wall_ns", nil)
	if opts.SlowOpThreshold > 0 {
		d.reg.Slow().SetThreshold(opts.SlowOpThreshold)
	}
	d.engine = core.NewEngine(d.cat)
	// One registry for every subsystem, installed before anything runs
	// concurrently: the /metrics endpoint then exposes core, storage,
	// lock, and txn families side by side.
	d.engine.SetObservability(d.reg)
	d.bindReclusterObs()
	d.heat = obs.NewUnitHeat(d.rec.heatTouches, d.rec.unitsTracked)
	var perr error
	if d.place, perr = storage.NewPlacement(opts.Placement, d.heat, uint64(opts.ReclusterHotMisses)); perr != nil {
		return nil, perr
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("db: create dir: %w", err)
		}
	}
	d.bindShardObs()
	nShards, err := resolveShards(opts.Dir, opts.Shards)
	if err != nil {
		return nil, err
	}
	d.so.count.Set(int64(nShards))
	// Each shard gets its own buffer pool over its own device; the
	// configured page budget is split across them (floored so tiny
	// budgets still leave every shard a working pool).
	perPool := opts.PoolPages / nShards
	if perPool < 8 {
		perPool = 8
	}
	stores := make([]*storage.Store, nShards)
	for k := 0; k < nShards; k++ {
		s := &dbShard{}
		switch {
		case k == 0 && opts.Device != nil:
			// A Device override (fault injection) applies to the default
			// shard; the remaining shards get ordinary devices.
			s.dev = opts.Device
		case opts.Dir == "":
			s.dev = storage.NewMemDevice()
		default:
			dev, derr := storage.OpenFileDevice(filepath.Join(opts.Dir, shardFile(pagesFile, k)))
			if derr != nil {
				d.closeShardFiles()
				return nil, derr
			}
			s.dev = dev
		}
		s.pool = storage.NewBufferPool(s.dev, perPool)
		s.pool.SetObservability(d.reg)
		s.st = storage.NewStore(s.pool)
		d.shards = append(d.shards, s)
		stores[k] = s.st
	}
	d.store = storage.NewShardedStore(stores)
	d.store.SetHeat(d.heat, d.engine.PlacementRootOf)
	d.dev, d.pool = d.shards[0].dev, d.shards[0].pool
	d.vers = version.NewManager(d.engine)
	d.auth = authz.NewStore(d.engine)
	d.txm = txn.NewManager(d.engine) // picks up d.reg via the engine
	d.idx = index.NewManager(d.engine)

	if opts.Dir != "" {
		if err := d.recover(); err != nil {
			d.closeShardFiles()
			return nil, err
		}
		for k, s := range d.shards {
			wal, werr := storage.OpenWAL(filepath.Join(opts.Dir, shardFile(walFile, k)))
			if werr != nil {
				d.closeShardFiles()
				return nil, werr
			}
			wal.SetObservability(d.reg)
			s.wal = wal
		}
		d.wal = d.shards[0].wal
	}
	// Group committers are constructed even for in-memory databases (a
	// nil WAL makes every Sync a no-op) so the metric family is always
	// registered. One committer per shard is the point of the exercise:
	// commits on disjoint hierarchies batch their fsyncs independently.
	for _, s := range d.shards {
		s.gc = storage.NewGroupCommitter(s.wal, opts.GroupCommitWait, opts.GroupCommitBatch)
		s.gc.SetObservability(d.reg)
	}
	d.gc = d.shards[0].gc
	h := &hook{d: d, logged: make(map[core.TxnID]uint64)}
	d.hk = h
	d.engine.SetHook(core.MultiHook{h, d.idx, d.vers})
	d.txm.SetBoundary(h)
	// Profiled transactions attach themselves as the ambient cost sink of
	// the layers that carry no per-operation context (pool, WAL, lock
	// manager); see Txn.Profile and DB.AttachProf.
	d.txm.SetProfHooks(d.AttachProf, func(*obs.ProfCtx) { d.AttachProf(nil) })
	if opts.MVCCGCInterval >= 0 {
		interval := opts.MVCCGCInterval
		if interval == 0 {
			interval = 2 * time.Second
		}
		d.gcStop = make(chan struct{})
		go d.versionGCLoop(interval, d.gcStop)
	}
	if opts.ReclusterInterval > 0 {
		d.recStop = make(chan struct{})
		go d.reclusterLoop(opts.ReclusterInterval, d.recStop)
	}
	return d, nil
}

// versionGCLoop drives the background version garbage collector until
// Close or Abandon. Each tick sweeps the version chains against the
// low-watermark of active snapshot sequences; with no long-lived
// snapshot the store converges to one version per live object.
// The stop channel is passed in rather than read from the struct: Close
// and Abandon nil the field under d.mu, which this goroutine doesn't hold.
func (d *DB) versionGCLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			d.engine.VersionGC()
		}
	}
}

// closeShardFiles releases every shard's WAL and device handles (best
// effort; used on Open's error paths).
func (d *DB) closeShardFiles() {
	for _, s := range d.shards {
		if s.wal != nil {
			s.wal.Close()
		}
		if s.dev != nil {
			s.dev.Close()
		}
	}
}

// recover loads checkpointed metadata and replays every shard's WAL.
// Replay semantics per shard are unchanged from the single-log design:
// auto-commit records (Txn == 0) apply immediately; a transaction's
// records are buffered and applied only when its OpCommit is reached, so
// an uncommitted tail — the log of a transaction interrupted by a crash,
// or one that logged an OpAbort — is discarded wholesale and can never
// leave a partial cascade behind. The shards replay in parallel (objects
// are sharded, so no record ordering constraint crosses logs), and
// prepared-but-undecided 2PC transactions resolve against their
// coordinator's log afterwards; see recoverShards.
func (d *DB) recover() error {
	load := func(name string, fn func(*bytes.Reader) error) error {
		b, err := os.ReadFile(filepath.Join(d.opts.Dir, name))
		if err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
		return fn(bytes.NewReader(b))
	}
	if err := load(catalogFile, func(r *bytes.Reader) error { return d.cat.Load(r) }); err != nil {
		return err
	}
	if err := load(versionsFile, func(r *bytes.Reader) error { return d.vers.Load(r) }); err != nil {
		return err
	}
	if err := load(authFile, func(r *bytes.Reader) error { return d.auth.Load(r) }); err != nil {
		return err
	}
	if err := load(indexFile, func(r *bytes.Reader) error {
		return json.NewDecoder(r).Decode(&d.idxDef)
	}); err != nil {
		return err
	}
	maxTxn, err := d.recoverShards(load)
	if err != nil {
		return err
	}
	// Rebuild the engine from the store.
	for _, id := range d.store.UIDs() {
		rec, err := d.store.Get(id)
		if err != nil {
			return err
		}
		o, err := encoding.DecodeObject(rec)
		if err != nil {
			return fmt.Errorf("db: decode %v: %w", id, err)
		}
		if err := d.engine.Load(o); err != nil {
			return err
		}
	}
	// Rebuild the declared indexes over the restored extents.
	for _, def := range d.idxDef {
		if err := d.idx.CreateIndex(def[0], def[1]); err != nil {
			return err
		}
	}
	// Seed the transaction-ID counter past every ID any shard's log has
	// seen: with per-shard logs, a reused ID could pair a stale prepare
	// record in one shard with a fresh same-ID commit on another shard's
	// log and mis-resolve a future in-doubt transaction.
	d.txm.SeedNext(maxTxn)
	return nil
}

// segmentForClassIn returns (creating if needed) shard k's segment for
// the class. Segment namespaces are per-shard: every shard storing
// objects of a class carries its own segment under the class's name.
func (d *DB) segmentForClassIn(k int, c uid.ClassID) (storage.SegmentID, error) {
	cl, err := d.cat.ClassByID(c)
	if err != nil {
		return 0, err
	}
	st := d.store.Shard(k)
	if seg, ok := st.SegmentByName(cl.Segment); ok {
		return seg, nil
	}
	seg, serr := st.CreateSegment(cl.Segment)
	if errors.Is(serr, storage.ErrDupSegment) {
		// Lost a creation race with a concurrent writer of the same class.
		if seg, ok := st.SegmentByName(cl.Segment); ok {
			return seg, nil
		}
	}
	return seg, serr
}

// hook mirrors engine mutations into the WAL and page store, and (as the
// transaction manager's Boundary) writes the commit/abort records that
// delimit each transaction's group in the log. logged tracks, per open
// transaction, the bitmask of shards it has written records to: read-only
// transactions commit without touching any log, each shard's OpBegin
// marker is written lazily with the transaction's first change on that
// shard, and a mask with more than one bit at commit selects the 2PC
// path (shard.go).
type hook struct {
	d      *DB
	mu     sync.Mutex
	logged map[core.TxnID]uint64
}

// logRecord appends rec to shard k's log, emitting the transaction's
// OpBegin on that shard first when this is its first logged change there.
// Auto-commit records (tx == 0) carry no Begin/Commit bracket: replay
// applies them immediately.
func (h *hook) logRecord(tx core.TxnID, k int, rec storage.WALRecord) error {
	s := h.d.shards[k]
	if tx != 0 {
		h.mu.Lock()
		mask := h.logged[tx]
		first := mask&(1<<k) == 0
		h.logged[tx] = mask | 1<<k
		h.mu.Unlock()
		if first {
			if err := s.wal.Append(storage.WALRecord{Op: storage.OpBegin, Txn: uint64(tx)}); err != nil {
				return err
			}
		}
	}
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	s.appends.Add(1)
	return nil
}

// OnWrite implements core.Hook for callers that carry no placement root
// (none in practice — the engine sees the hook as a PlacementHook through
// the MultiHook and always calls OnWritePlaced).
func (h *hook) OnWrite(tx core.TxnID, o *object.Object, near uid.UID) error {
	return h.OnWritePlaced(tx, o, near, uid.Nil)
}

// OnWritePlaced implements core.PlacementHook. The clustering policy maps
// the write's context (§2.3 first parent, placement root) to the neighbor
// hint actually applied — and the WAL records the TRANSFORMED hint, so
// replay reproduces every placement decision without consulting the
// policy. Write activity also feeds per-unit heat: a unit under active
// construction is a unit a cold traversal will soon read.
func (h *hook) OnWritePlaced(tx core.TxnID, o *object.Object, near, root uid.UID) error {
	d := h.d
	// Route by composite unit: the object's recorded shard if it has one,
	// else its placement root's. The choice becomes sticky with the Put.
	shard := d.store.ShardFor(o.UID(), root)
	seg, err := d.segmentForClassIn(shard, o.Class())
	if err != nil {
		return err
	}
	hint := d.place.Hint(o.UID(), near, root)
	if !root.IsNil() && root != o.UID() {
		d.heat.Touch(storage.UnitHeatKey(root))
	}
	rec := encoding.EncodeObject(o)
	if d.wal != nil {
		if err := h.logRecord(tx, shard, storage.WALRecord{
			Op: storage.OpPut, Txn: uint64(tx), UID: o.UID(), Seg: seg, Near: hint, Data: rec,
		}); err != nil {
			return err
		}
	}
	return d.store.Put(shard, seg, o.UID(), rec, hint)
}

// SyncAutoCommit implements core.AutoCommitSyncer: an auto-commit
// mutation is its own commit boundary, so under SyncWAL the engine calls
// this once per operation — after the write-through, outside the engine
// latch — and each shard's group committer batches the fsync with any
// concurrent committers. The append/synced watermark skips shards with
// nothing new: an auto-commit write to one hierarchy must not fsync
// every shard. The watermark read happens before the Sync, so any record
// appended before this call is covered either by our Sync or by the
// already-completed one that raised the watermark past it.
func (h *hook) SyncAutoCommit() error {
	d := h.d
	if d.wal == nil || !d.opts.SyncWAL {
		return nil
	}
	for _, s := range d.shards {
		n := s.appends.Load()
		if n <= s.synced.Load() {
			continue
		}
		if err := s.gc.Sync(); err != nil {
			return err
		}
		s.noteSynced(n)
	}
	return nil
}

func (h *hook) OnDelete(tx core.TxnID, id uid.UID) error {
	d := h.d
	shard, ok := d.store.ShardOf(id)
	if !ok {
		shard = d.store.ShardFor(id, uid.Nil)
	}
	if d.wal != nil {
		// Record the segment the object lived in (best effort: the class
		// assignment when the store no longer has it), so replay tooling
		// sees where the delete landed. Near is meaningless for deletes
		// and stays Nil.
		seg, ok := d.store.Shard(shard).SegmentOf(id)
		if !ok {
			seg, _ = d.segmentForClassIn(shard, id.Class)
		}
		if err := h.logRecord(tx, shard, storage.WALRecord{
			Op: storage.OpDelete, Txn: uint64(tx), UID: id, Seg: seg,
		}); err != nil {
			return err
		}
	}
	if err := d.store.Delete(id); err != nil && !errors.Is(err, storage.ErrNotFound) {
		return err
	}
	return nil
}

// OnCommit implements txn.Boundary: it seals the transaction's record
// group with OpCommit and, under SyncWAL, makes it durable before the
// transaction manager releases any lock (strict 2PL durability point).
// Read-only transactions (nothing logged) skip the log entirely. A
// transaction that wrote a single shard commits on that shard's log
// alone; one that wrote several commits through the 2PC in shard.go —
// prepare records fsynced on every participant, then the coordinator's
// fsynced OpCommit as the commit point — which holds even when SyncWAL
// is off (atomicity needs the barrier; durability of single-shard work
// remains the checkpoint's job).
func (h *hook) OnCommit(tx core.TxnID) error {
	d := h.d
	if d.wal == nil {
		return nil
	}
	h.mu.Lock()
	mask := h.logged[tx]
	delete(h.logged, tx)
	h.mu.Unlock()
	if mask == 0 {
		return nil
	}
	shards := shardBits(mask)
	if len(shards) > 1 {
		return d.commitCrossShard(uint64(tx), shards)
	}
	s := d.shards[shards[0]]
	if err := s.wal.Append(storage.WALRecord{Op: storage.OpCommit, Txn: uint64(tx)}); err != nil {
		return err
	}
	d.so.localCommits.Inc()
	if d.opts.SyncWAL {
		n := s.appends.Load()
		if err := s.gc.Sync(); err != nil {
			return err
		}
		s.noteSynced(n)
	}
	return nil
}

// OnAbort implements txn.Boundary: it seals the group with OpAbort on
// every shard the transaction wrote, so each shard's replay discards its
// records — including the compensating undo writes Abort issued, which
// carry the same transaction ID. No sync: an abort that never reaches a
// log is discarded as an uncommitted tail there, which is the same
// outcome.
func (h *hook) OnAbort(tx core.TxnID) error {
	d := h.d
	if d.wal == nil {
		return nil
	}
	h.mu.Lock()
	mask := h.logged[tx]
	delete(h.logged, tx)
	h.mu.Unlock()
	if mask == 0 {
		return nil
	}
	for _, k := range shardBits(mask) {
		if err := d.shards[k].wal.Append(storage.WALRecord{Op: storage.OpAbort, Txn: uint64(tx)}); err != nil {
			return err
		}
	}
	return nil
}

// Checkpoint flushes dirty pages and metadata to disk and truncates the
// WAL. It is a no-op for in-memory databases.
func (d *DB) Checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

// checkpointLocked runs the checkpoint and, on failure, dumps the
// flight recorder: a checkpoint that cannot complete is exactly the
// moment the recent-operation history is about to become unrecoverable.
func (d *DB) checkpointLocked() error {
	err := d.checkpointInner()
	if err != nil && !errors.Is(err, ErrClosed) {
		if f := d.reg.Flight(); f != nil {
			f.Record("db.checkpoint", d.opts.Dir, 0, "err", err.Error())
			f.Dump("checkpoint failure")
		}
	}
	return err
}

func (d *DB) checkpointInner() error {
	if d.closed {
		return ErrClosed
	}
	if d.opts.Dir == "" {
		return nil
	}
	// A checkpoint covers ALL shards or none: truncating one shard's log
	// while another still holds a cross-shard transaction's prepare (or
	// the coordinator's decision) would strand the in-doubt resolution.
	// Syncing every log first makes the decision records of any completed
	// 2PC durable before the metas that supersede them are written.
	for _, s := range d.shards {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	for _, s := range d.shards {
		if err := s.pool.FlushAll(); err != nil {
			return err
		}
	}
	save := func(name string, fn func(*bytes.Buffer) error) error {
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			return err
		}
		tmp := filepath.Join(d.opts.Dir, name+".tmp")
		if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, filepath.Join(d.opts.Dir, name))
	}
	if err := save(catalogFile, func(b *bytes.Buffer) error { return d.cat.Save(b) }); err != nil {
		return err
	}
	for k := range d.shards {
		st := d.store.Shard(k)
		if err := save(shardFile(storeFile, k), func(b *bytes.Buffer) error { return st.SaveMeta(b) }); err != nil {
			return err
		}
	}
	if err := save(versionsFile, func(b *bytes.Buffer) error { return d.vers.Save(b) }); err != nil {
		return err
	}
	if err := save(authFile, func(b *bytes.Buffer) error { return d.auth.Save(b) }); err != nil {
		return err
	}
	if err := save(indexFile, func(b *bytes.Buffer) error {
		return json.NewEncoder(b).Encode(d.idxDef)
	}); err != nil {
		return err
	}
	for _, s := range d.shards {
		if err := s.wal.Truncate(); err != nil {
			return err
		}
	}
	// With every shard log truncated no UID history remains on disk, so
	// deleted UIDs no longer need their shard pins.
	d.store.ClearGraves()
	return nil
}

// Close checkpoints (for durable databases) and releases resources. A
// failing checkpoint no longer leaks the WAL and device handles: every
// release step runs regardless, and the first error wins.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	var firstErr error
	if d.opts.Dir != "" {
		firstErr = d.checkpointLocked()
	}
	d.closed = true
	if d.gcStop != nil {
		close(d.gcStop)
		d.gcStop = nil
	}
	if d.recStop != nil {
		close(d.recStop)
		d.recStop = nil
	}
	for _, s := range d.shards {
		if s.wal != nil {
			if err := s.wal.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := s.dev.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Abandon closes the database's file handles without checkpointing or
// flushing anything — simulating a process crash for recovery tests.
// Buffered pages and in-memory state are discarded; whatever the WAL and
// the last checkpoint captured is what a subsequent Open recovers.
func (d *DB) Abandon() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	if d.gcStop != nil {
		close(d.gcStop)
		d.gcStop = nil
	}
	if d.recStop != nil {
		close(d.recStop)
		d.recStop = nil
	}
	var firstErr error
	for _, s := range d.shards {
		if s.wal != nil {
			if err := s.wal.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if err := s.dev.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Access to the subsystems. The facade re-exports the most common
// operations below; everything else is reachable through these.

// Catalog returns the schema catalog.
func (d *DB) Catalog() *schema.Catalog { return d.cat }

// Engine returns the composite-object engine.
func (d *DB) Engine() *core.Engine { return d.engine }

// Versions returns the version manager.
func (d *DB) Versions() *version.Manager { return d.vers }

// Authz returns the authorization store.
func (d *DB) Authz() *authz.Store { return d.auth }

// Txns returns the transaction manager.
func (d *DB) Txns() *txn.Manager { return d.txm }

// Store returns the (sharded) object store for clustering/IO inspection.
// With Options.Shards ≤ 1 it fronts a single shard and behaves exactly
// like the classic flat store.
func (d *DB) Store() *storage.ShardedStore { return d.store }

// CheckPlacement verifies the store's exactly-one-location invariant
// (every object readable, no stale duplicate slot) under d.mu, which
// excludes an in-flight reclusterer move phase and checkpoints — the
// store's own scan latches segments one at a time, so calling it raw
// while a migration is mid-unit can double-count a record that has
// landed in its target segment but not yet left its source.
func (d *DB) CheckPlacement() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.store.CheckPlacement()
}

// Pool returns the buffer pool (for I/O statistics).
func (d *DB) Pool() *storage.BufferPool { return d.pool }

// Indexes returns the secondary-index manager.
func (d *DB) Indexes() *index.Manager { return d.idx }

// Observability returns the registry shared by every subsystem — the
// source for the /metrics exposition, trace control, and the slow log.
func (d *DB) Observability() *obs.Registry { return d.reg }

// AttachProf installs p as the ambient cost sink of the layers that
// carry no per-operation context — the buffer pool, the WAL, and the
// lock manager's unregistered waiters — so page fetches, evictions, WAL
// frames, and lock waits are attributed to it. Attribution is exact
// when one profiled operation runs at a time (the (profile ...) surface
// and the sim checks run serially); concurrent profiled operations race
// for the slot and the last attach wins. Detach by attaching nil.
// Txn.Profile calls this automatically through the manager's hooks.
func (d *DB) AttachProf(p *obs.ProfCtx) {
	for _, s := range d.shards {
		s.pool.AttachProf(p)
		if s.wal != nil {
			s.wal.AttachProf(p)
		}
	}
	d.txm.Locks().AttachProf(p)
}

// ObserveProfile records one completed (profile ...) run in the
// query_profile_* metric family.
func (d *DB) ObserveProfile(wall time.Duration) {
	d.profRuns.Inc()
	d.profWall.Observe(int64(wall))
}

// CreateIndex declares and builds a secondary index on (class, attr); the
// declaration persists across reopen (the index itself is rebuilt from
// the extents at recovery, like ORION's memory-resident structures).
func (d *DB) CreateIndex(class, attr string) error {
	if err := d.idx.CreateIndex(class, attr); err != nil {
		return err
	}
	d.mu.Lock()
	d.idxDef = append(d.idxDef, [2]string{class, attr})
	d.mu.Unlock()
	if d.opts.Dir != "" {
		return d.Checkpoint()
	}
	return nil
}

// DropIndex removes a secondary index and its persisted declaration.
func (d *DB) DropIndex(class, attr string) error {
	if err := d.idx.DropIndex(class, attr); err != nil {
		return err
	}
	d.mu.Lock()
	for i, def := range d.idxDef {
		if def[0] == class && def[1] == attr {
			d.idxDef = append(d.idxDef[:i], d.idxDef[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
	if d.opts.Dir != "" {
		return d.Checkpoint()
	}
	return nil
}
