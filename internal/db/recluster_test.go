package db

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/uid"
	"repro/internal/value"
)

// buildDoc creates one Document with n Paragraphs and returns the root
// UID plus every member in creation order.
func buildDoc(t *testing.T, d *DB, title string, n int) (uid.UID, []uid.UID) {
	t.Helper()
	doc, err := d.Make("Document", map[string]value.Value{"Title": value.Str(title)})
	if err != nil {
		t.Fatal(err)
	}
	members := []uid.UID{doc.UID()}
	for i := 0; i < n; i++ {
		p, err := d.Make("Paragraph", map[string]value.Value{"Text": value.Str(title)},
			core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
		if err != nil {
			t.Fatal(err)
		}
		members = append(members, p.UID())
	}
	return doc.UID(), members
}

func TestOpenRejectsUnknownPlacement(t *testing.T) {
	if _, err := Open(Options{Placement: "bogus"}); err == nil {
		t.Fatal("Open accepted an unknown placement policy")
	}
	for _, p := range []string{"", storage.PlacementFirstParent, storage.PlacementClass, storage.PlacementUsage} {
		d, err := Open(Options{Placement: p})
		if err != nil {
			t.Fatalf("%q: %v", p, err)
		}
		want := p
		if want == "" {
			want = storage.PlacementFirstParent
		}
		if d.PlacementName() != want {
			t.Fatalf("PlacementName() = %q, want %q", d.PlacementName(), want)
		}
		d.Close()
	}
}

// TestReclusterMigratesHotUnit: write activity heats a unit; one pass
// migrates every member into the unit's own segment, chained
// contiguously, and the metrics record it.
func TestReclusterMigratesHotUnit(t *testing.T) {
	d, err := Open(Options{ReclusterHotMisses: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defineDocSchema(t, d)
	doc, members := buildDoc(t, d, "hot", 8)
	// A second, cold document must stay where it was born.
	coldDoc, coldMembers := buildDoc(t, d, "c", 1)
	_ = coldDoc

	n, err := d.ReclusterNow()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("migrated %d units, want 1", n)
	}
	seg, ok := d.Store().SegmentByName("unit:2.1")
	if !ok {
		t.Fatalf("unit segment missing; doc=%v", doc)
	}
	for _, id := range members {
		if got, _ := d.Store().SegmentOf(id); got != seg {
			t.Fatalf("member %v in segment %d, want %d", id, got, seg)
		}
		if _, err := d.Store().Get(id); err != nil {
			t.Fatalf("member %v unreadable after migration: %v", id, err)
		}
	}
	if got, _ := d.Store().SegmentOf(coldMembers[0]); got == seg {
		t.Fatal("cold unit was migrated too")
	}
	if err := d.Store().CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	st := d.ReclusterStatus()
	if st.Migrations != 1 || st.ObjectsMoved != uint64(len(members)) || st.Passes == 0 {
		t.Fatalf("status = %+v", st)
	}
	// The logical graph is untouched.
	comps, err := d.ComponentsOf(doc, core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(members)-1 {
		t.Fatalf("components after migration = %d, want %d", len(comps), len(members)-1)
	}
	// A second pass over the already-placed unit is a no-op (heat was
	// consumed; even re-heated it is skipped as already placed).
	for i := 0; i < 8; i++ {
		if _, err := d.Make("Paragraph", nil, core.ParentSpec{Parent: doc, Attr: "Paras"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ReclusterNow(); err != nil {
		t.Fatal(err)
	}
	if err := d.Store().CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

// TestReclusterBackgroundLoop: the ticker-driven loop migrates without
// an explicit ReclusterNow call, like the version GC.
func TestReclusterBackgroundLoop(t *testing.T) {
	d, err := Open(Options{ReclusterInterval: 2 * time.Millisecond, ReclusterHotMisses: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defineDocSchema(t, d)
	buildDoc(t, d, "bg", 8)
	deadline := time.Now().Add(5 * time.Second)
	for d.ReclusterStatus().Migrations == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop migrated nothing; status = %+v", d.ReclusterStatus())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := d.Store().CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

// TestReclusterSurvivesReopen: migrations are WAL-logged, so a crash
// right after a pass (no checkpoint) recovers the migrated layout.
func TestReclusterSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SyncWAL: true, ReclusterHotMisses: 4})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	doc, members := buildDoc(t, d, "dur", 6)
	if n, err := d.ReclusterNow(); err != nil || n != 1 {
		t.Fatalf("ReclusterNow = %d, %v", n, err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	seg, ok := r.Store().SegmentByName("unit:2.1")
	if !ok {
		t.Fatal("unit segment lost across recovery")
	}
	for _, id := range members {
		if got, _ := r.Store().SegmentOf(id); got != seg {
			t.Fatalf("member %v recovered into segment %d, want %d", id, got, seg)
		}
	}
	if err := r.Store().CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	comps, err := r.ComponentsOf(doc, core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != len(members)-1 {
		t.Fatalf("recovered components = %d, want %d", len(comps), len(members)-1)
	}
}

// TestReclusterCrashAtEveryOffset is the S2 regression: replay of a WAL
// truncated at EVERY frame boundary (and a few torn mid-frame points)
// across a half-migrated unit must leave every surviving object readable
// from exactly one location. The log here interleaves the unit's creating
// OpPuts with the pass's OpMoves, so prefixes cover: no moves yet, some
// members moved, and all members moved.
func TestReclusterCrashAtEveryOffset(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(Options{Dir: dir, SyncWAL: true, ReclusterHotMisses: 2})
	if err != nil {
		t.Fatal(err)
	}
	defineDocSchema(t, d)
	_, members := buildDoc(t, d, "crash", 5)
	if n, err := d.ReclusterNow(); err != nil || n != 1 {
		t.Fatalf("ReclusterNow = %d, %v", n, err)
	}
	// A write AFTER the migration: its replay must follow the object to
	// the migrated segment, not resurrect it in the class segment.
	if err := d.Set(members[1], "Text", value.Str("rewritten")); err != nil {
		t.Fatal(err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}

	walPath := filepath.Join(dir, walFile)
	var cuts []int64
	if err := storage.ReplayWALFrames(walPath, func(_ storage.WALRecord, start, end int64) error {
		if start == 0 {
			cuts = append(cuts, 0)
		}
		cuts = append(cuts, end, end-3) // frame boundary + torn tail
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	copyDir := func(t *testing.T, cut int64) string {
		t.Helper()
		dst := t.TempDir()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if e.Name() == walFile {
				if cut > int64(len(b)) {
					cut = int64(len(b))
				}
				b = b[:cut]
			}
			if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dst
	}
	for _, cut := range cuts {
		if cut < 0 {
			continue
		}
		crashed := copyDir(t, cut)
		r, err := Open(Options{Dir: crashed})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		// Exactly-one-location invariant: every directory entry readable,
		// no stale duplicate slot anywhere.
		if err := r.Store().CheckPlacement(); err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		// Every recovered object decodes and is engine-visible.
		for _, id := range r.Store().UIDs() {
			if _, err := r.Get(id); err != nil {
				t.Fatalf("cut %d: object %v in store but not engine: %v", cut, id, err)
			}
		}
		if err := r.Close(); err != nil {
			t.Fatalf("cut %d: close: %v", cut, err)
		}
	}
	_ = wal
	_ = members
}
