package db

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/storage"
	"repro/internal/uid"
	"repro/internal/value"
)

// defineSharedDocSchema is defineDocSchema plus a NON-exclusive "Refs"
// composite set on Document, so a paragraph can be shared into a second
// hierarchy — possibly rooted on another shard.
func defineSharedDocSchema(t *testing.T, d *DB) {
	t.Helper()
	if _, err := d.DefineClass(schema.ClassDef{Name: "Paragraph", Attributes: []schema.AttrSpec{
		schema.NewAttr("Text", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.DefineClass(schema.ClassDef{Name: "Document", Attributes: []schema.AttrSpec{
		schema.NewAttr("Title", schema.StringDomain),
		schema.NewCompositeSetAttr("Paras", "Paragraph"),
		schema.NewCompositeSetAttr("Refs", "Paragraph").WithExclusive(false).WithDependent(false),
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestShardReclusterRoutingStability is the property test for the
// sticky-routing invariant under reclustering: whatever the placement
// policy and whatever units get hot, a recluster pass must NEVER move an
// object to another shard — migration is a within-shard segment change
// only. The reclusterer is driven over randomly built hierarchies (with
// cross-shard attachments mixed in) under every placement policy, and
// the routing table is snapshotted before and compared after each pass.
func TestShardReclusterRoutingStability(t *testing.T) {
	policies := []string{
		storage.PlacementFirstParent,
		storage.PlacementClass,
		storage.PlacementUsage,
	}
	for _, policy := range policies {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", policy, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				d, err := Open(Options{Shards: 4, Placement: policy, ReclusterHotMisses: 1})
				if err != nil {
					t.Fatal(err)
				}
				defer d.Close()
				defineSharedDocSchema(t, d)
				var roots []uid.UID
				var all []uid.UID
				for i := 0; i < 8; i++ {
					root, members := buildDoc(t, d, fmt.Sprintf("p%d", i), 1+rng.Intn(6))
					roots = append(roots, root)
					all = append(all, members...)
				}
				// Cross-shard attachments: share a paragraph into a hierarchy
				// that may live on another shard. Its routing must not budge
				// now or after any recluster pass.
				for i := 0; i < 4; i++ {
					p, err := d.Make("Paragraph", map[string]value.Value{"Text": value.Str("shared")},
						core.ParentSpec{Parent: roots[rng.Intn(len(roots))], Attr: "Refs"})
					if err != nil {
						t.Fatal(err)
					}
					all = append(all, p.UID())
					if err := d.Attach(roots[rng.Intn(len(roots))], "Refs", p.UID()); err != nil {
						t.Fatal(err)
					}
				}
				before := make(map[uid.UID]int)
				for _, id := range all {
					k, ok := d.Store().ShardOf(id)
					if !ok {
						t.Fatalf("%v unrouted", id)
					}
					before[id] = k
				}
				// Several passes: heat random units, write into them (heat +
				// possible re-placement triggers), recluster, verify.
				for pass := 0; pass < 4; pass++ {
					for i := 0; i < 8; i++ {
						root := roots[rng.Intn(len(roots))]
						if err := d.Set(root, "Title", value.Str(fmt.Sprintf("w%d.%d", pass, i))); err != nil {
							t.Fatal(err)
						}
					}
					if _, err := d.ReclusterNow(); err != nil {
						t.Fatal(err)
					}
					for _, id := range all {
						k, ok := d.Store().ShardOf(id)
						if !ok {
							t.Fatalf("pass %d: %v lost its routing", pass, id)
						}
						if k != before[id] {
							t.Fatalf("pass %d: recluster moved %v from shard %d to %d", pass, id, before[id], k)
						}
					}
					if err := d.CheckShards(); err != nil {
						t.Fatalf("pass %d: %v", pass, err)
					}
					if err := d.CheckPlacement(); err != nil {
						t.Fatalf("pass %d: %v", pass, err)
					}
				}
			})
		}
	}
}

// TestShardReclusterCreatesPerShardUnitSegments: a unit whose members
// span shards (via shared attachment) reclusters into a unit segment ON
// EACH shard involved, never consolidating across the boundary.
func TestShardReclusterUnitSpanningShards(t *testing.T) {
	d, err := Open(Options{Shards: 4, ReclusterHotMisses: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	defineSharedDocSchema(t, d)
	// Find two roots on different shards, then share B's paragraph into
	// A's unit so A's composite closure spans two shards.
	byShard := map[int]uid.UID{}
	for i := 0; i < 64 && len(byShard) < 2; i++ {
		root, _ := buildDoc(t, d, fmt.Sprintf("s%d", i), 2)
		k, _ := d.Store().ShardOf(root)
		if _, ok := byShard[k]; !ok {
			byShard[k] = root
		}
	}
	if len(byShard) < 2 {
		t.Fatal("could not place roots on two shards")
	}
	var rootA, rootB uid.UID
	first := true
	for _, r := range byShard {
		if first {
			rootA, first = r, false
		} else {
			rootB = r
		}
	}
	shared, err := d.Make("Paragraph", map[string]value.Value{"Text": value.Str("x")},
		core.ParentSpec{Parent: rootB, Attr: "Refs"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Attach(rootA, "Refs", shared.UID()); err != nil {
		t.Fatal(err)
	}
	kA, _ := d.Store().ShardOf(rootA)
	kS, _ := d.Store().ShardOf(shared.UID())
	if kA == kS {
		t.Fatalf("test setup: shared paragraph landed on rootA's shard %d", kA)
	}
	// Heat rootA's unit and recluster.
	for i := 0; i < 4; i++ {
		if err := d.Set(rootA, "Title", value.Str(fmt.Sprintf("h%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.ReclusterNow(); err != nil {
		t.Fatal(err)
	}
	if k, _ := d.Store().ShardOf(shared.UID()); k != kS {
		t.Fatalf("shared member moved from shard %d to %d", kS, k)
	}
	name := fmt.Sprintf("unit:%d.%d", rootA.Class, rootA.Serial)
	if _, ok := d.Store().Shard(kA).SegmentByName(name); !ok {
		t.Fatalf("unit segment %q missing on root's shard %d", name, kA)
	}
	if seg, ok := d.Store().Shard(kS).SegmentByName(name); ok {
		// A unit segment on the shared member's shard is fine — but the
		// member must be in it, on ITS shard, not rootA's.
		if got, _ := d.Store().Shard(kS).SegmentOf(shared.UID()); got != seg {
			t.Fatalf("shared member in segment %d, unit segment is %d", got, seg)
		}
	}
	if err := d.CheckShards(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}
