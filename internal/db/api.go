package db

import (
	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// DefineClass adds a class (the make-class message, §2.3). Schema changes
// are checkpointed immediately on durable databases so that WAL replay
// never sees objects of unknown classes.
func (d *DB) DefineClass(def schema.ClassDef) (*schema.Class, error) {
	cl, err := d.cat.DefineClass(def)
	if err != nil {
		return nil, err
	}
	if d.opts.Dir != "" {
		if err := d.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return cl, nil
}

// checkpointSchema persists a schema mutation on durable databases —
// the catalog (including deferred-evolution op logs and the change
// counter) lives in the checkpoint, not the WAL, so an un-checkpointed
// change would silently vanish on crash while objects already carry its
// effects.
func (d *DB) checkpointSchema(err error) error {
	if err != nil {
		return err
	}
	if d.opts.Dir != "" {
		return d.Checkpoint()
	}
	return nil
}

// ChangeAttributeType applies a state-independent reference-type change
// (I1–I4, §4.3), immediately or deferred, and makes it durable.
func (d *DB) ChangeAttributeType(class, attr string, kind schema.ChangeKind, deferred bool) error {
	return d.checkpointSchema(d.engine.ChangeAttributeType(class, attr, kind, deferred))
}

// MakeComposite upgrades a weak reference attribute to a composite one
// (D1/D2, §4.3 — state-dependent, always immediate) and makes it durable.
func (d *DB) MakeComposite(class, attr string, exclusive, dependent bool) error {
	return d.checkpointSchema(d.engine.MakeComposite(class, attr, exclusive, dependent))
}

// MakeExclusive upgrades a shared composite attribute to exclusive (D3,
// §4.3 — state-dependent, always immediate) and makes it durable.
func (d *DB) MakeExclusive(class, attr string) error {
	return d.checkpointSchema(d.engine.MakeExclusive(class, attr))
}

// Make creates an instance (the make message, §2.3): attribute values
// plus optional (parent, attribute) pairs placing the new instance into
// existing composite objects. The instance is clustered with the first
// parent.
func (d *DB) Make(class string, attrs map[string]value.Value, parents ...core.ParentSpec) (*object.Object, error) {
	units := refUnits(attrs)
	for _, p := range parents {
		units = append(units, p.Parent)
	}
	var o *object.Object
	err := d.withAdmission(func(tx lock.TxID) error {
		if err := d.txm.Locks().Lock(tx, lock.ClassGranule(class), lock.IX); err != nil {
			return err
		}
		return d.txm.Protocol().LockUnitsWrite(tx, units...)
	}, func() (err error) {
		o, err = d.engine.New(class, attrs, parents...)
		return err
	})
	if err != nil {
		return nil, err
	}
	return o, nil
}

// Get returns the object (read-only).
func (d *DB) Get(id uid.UID) (*object.Object, error) { return d.engine.Get(id) }

// Set assigns an attribute value with full composite semantics.
func (d *DB) Set(id uid.UID, attr string, v value.Value) error {
	return d.admitUnitsWrite(func() error {
		return d.engine.Set(id, attr, v)
	}, append([]uid.UID{id}, v.Refs(nil)...)...)
}

// Attach makes child a component of parent through attr.
func (d *DB) Attach(parent uid.UID, attr string, child uid.UID) error {
	return d.admitUnitsWrite(func() error {
		return d.engine.Attach(parent, attr, child)
	}, parent, child)
}

// Detach removes the parent-child reference.
func (d *DB) Detach(parent uid.UID, attr string, child uid.UID) error {
	return d.admitUnitsWrite(func() error {
		return d.engine.Detach(parent, attr, child)
	}, parent, child)
}

// Delete removes the object per the Deletion Rule and returns the
// casualty list.
func (d *DB) Delete(id uid.UID) ([]uid.UID, error) {
	var out []uid.UID
	err := d.withAdmission(func(tx lock.TxID) error {
		return d.txm.Protocol().LockForDelete(tx, id)
	}, func() (err error) {
		out, err = d.engine.Delete(id)
		return err
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ComponentsOf implements (components-of ...), §3.1.
func (d *DB) ComponentsOf(id uid.UID, q core.QueryOpts) ([]uid.UID, error) {
	return d.engine.ComponentsOf(id, q)
}

// ParentsOf implements (parents-of ...), §3.1.
func (d *DB) ParentsOf(id uid.UID, q core.QueryOpts) ([]uid.UID, error) {
	return d.engine.ParentsOf(id, q)
}

// AncestorsOf implements (ancestors-of ...), §3.1.
func (d *DB) AncestorsOf(id uid.UID, q core.QueryOpts) ([]uid.UID, error) {
	return d.engine.AncestorsOf(id, q)
}

// ComponentOf implements (component-of Object1 Object2), §3.2.
func (d *DB) ComponentOf(a, b uid.UID) (bool, error) { return d.engine.ComponentOf(a, b) }

// ChildOf implements (child-of Object1 Object2), §3.2.
func (d *DB) ChildOf(a, b uid.UID) (bool, error) { return d.engine.ChildOf(a, b) }

// ExclusiveComponentOf implements (exclusive-component-of ...), §3.2.
func (d *DB) ExclusiveComponentOf(a, b uid.UID) (bool, error) {
	return d.engine.ExclusiveComponentOf(a, b)
}

// SharedComponentOf implements (shared-component-of ...), §3.2.
func (d *DB) SharedComponentOf(a, b uid.UID) (bool, error) {
	return d.engine.SharedComponentOf(a, b)
}

// RootsOf returns the roots of the composite objects containing id.
func (d *DB) RootsOf(id uid.UID) ([]uid.UID, error) { return d.engine.RootsOf(id) }

// BeginSnapshot starts a read-only MVCC snapshot: a lock-free view of
// the committed state at the current commit boundary. Queries on the
// handle never take the engine latch or any §7 lock, so they cannot
// stall writers (and writers cannot change what the snapshot sees).
// Release the handle when done — it pins version garbage collection.
func (d *DB) BeginSnapshot() *core.Snapshot { return d.txm.BeginSnapshot() }

// Begin starts a transaction.
func (d *DB) Begin() *txn.Txn { return d.txm.Begin() }

// Run executes fn transactionally with deadlock retry.
func (d *DB) Run(fn func(*txn.Txn) error) error { return d.txm.Run(fn) }
