package db

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/uid"
)

// The background reclusterer: the dynamic half of the clustering policy
// bake-off. Static placement (storage.Placement) decides where an object
// is BORN; the reclusterer corrects placement after the fact, migrating
// composite units the buffer pool demonstrably misses on into their own
// contiguous segment. The pipeline:
//
//  1. Heat: Store.Get attributes every pool miss to the unit root of the
//     object read (obs.UnitHeat), and the write-through hook adds write
//     activity. Heat decays once per pass, so units that cool off stop
//     attracting work.
//  2. Selection: each pass takes the hottest units above the
//     ReclusterHotMisses threshold, at most ReclusterBatch of them.
//  3. Safety: a unit is migrated under the §7 unit-root X lock, acquired
//     through the same composite protocol transactions use — the
//     reclusterer is just another (very short) writer, so it can never
//     race a transaction on the unit, and a deadlock verdict simply
//     skips the unit until the next pass.
//  4. Durability: every relocation is WAL-logged as an OpMove BEFORE the
//     pages change, carrying the target segment by name. Replay applies
//     moves in log order, so a crash at any byte of the log leaves every
//     object readable from exactly one location.
//
// Migration places the unit root first and chains each member next to
// its predecessor in composite BFS order — the §2.3 layout a cold
// top-down traversal wants, now earned by observed usage rather than
// guessed at creation (DSTC/OPCF in spirit).

// reclusterObs is the storage_recluster_* metric family.
type reclusterObs struct {
	passes       *obs.Counter // pass executions
	migrations   *obs.Counter // units migrated
	objectsMoved *obs.Counter // individual records relocated
	skipped      *obs.Counter // hot units skipped (busy, vanished, already placed)
	heatTouches  *obs.Counter // per-unit heat attributions
	unitsTracked *obs.Gauge   // distinct units with nonzero heat
}

func (d *DB) bindReclusterObs() {
	d.rec = reclusterObs{
		passes:       d.reg.Counter("storage_recluster_passes_total"),
		migrations:   d.reg.Counter("storage_recluster_migrations_total"),
		objectsMoved: d.reg.Counter("storage_recluster_objects_moved_total"),
		skipped:      d.reg.Counter("storage_recluster_skipped_total"),
		heatTouches:  d.reg.Counter("storage_recluster_heat_touches_total"),
		unitsTracked: d.reg.Gauge("storage_recluster_units_tracked"),
	}
}

// ReclusterStatus is the shell-facing view of the reclusterer.
type ReclusterStatus struct {
	Policy       string // active placement policy
	Background   bool   // background loop running
	HotMisses    uint64 // heat threshold for migration
	Passes       uint64
	Migrations   uint64 // units migrated
	ObjectsMoved uint64
	Skipped      uint64
	UnitsTracked int // units with nonzero heat right now
}

// PlacementName returns the active clustering policy's selector string.
func (d *DB) PlacementName() string { return d.place.Name() }

// ReclusterStatus reports the reclusterer's counters and configuration.
func (d *DB) ReclusterStatus() ReclusterStatus {
	d.mu.Lock()
	bg := d.recStop != nil
	d.mu.Unlock()
	return ReclusterStatus{
		Policy:       d.place.Name(),
		Background:   bg,
		HotMisses:    d.hotMisses(),
		Passes:       d.rec.passes.Load(),
		Migrations:   d.rec.migrations.Load(),
		ObjectsMoved: d.rec.objectsMoved.Load(),
		Skipped:      d.rec.skipped.Load(),
		UnitsTracked: d.heat.Len(),
	}
}

func (d *DB) hotMisses() uint64 {
	if d.opts.ReclusterHotMisses > 0 {
		return uint64(d.opts.ReclusterHotMisses)
	}
	return storage.DefaultHotMisses
}

// reclusterLoop drives background reclustering until Close or Abandon,
// mirroring versionGCLoop: the stop channel is passed in because Close
// nils the field under d.mu.
func (d *DB) reclusterLoop(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			// Errors are absorbed: a failing pass (e.g. the DB closed
			// mid-tick) leaves the store exactly as consistent as before,
			// and the next tick — or the stop channel — decides what's next.
			_, _ = d.ReclusterNow()
		}
	}
}

// ReclusterNow runs one reclustering pass synchronously and reports how
// many units were migrated. Safe to call with the background loop active
// (passes serialize on d.mu for their move phase) and usable with the
// loop disabled — tests and the shell's (recluster now) drive it directly.
func (d *DB) ReclusterNow() (int, error) {
	d.rec.passes.Inc()
	hot := d.heat.Hot(d.hotMisses(), d.reclusterBatch())
	migrated := 0
	for _, k := range hot {
		root := uid.UID{Class: uid.ClassID(k.Class), Serial: k.Serial}
		n, err := d.reclusterUnit(root)
		switch {
		case err == nil && n > 0:
			migrated++
			d.rec.migrations.Inc()
			d.rec.objectsMoved.Add(uint64(n))
			d.heat.Forget(k)
		case err == nil:
			// Nothing to do: already placed, or the unit vanished.
			d.rec.skipped.Inc()
			d.heat.Forget(k)
		case errors.Is(err, lock.ErrDeadlock):
			// The unit is busy; keep its heat and retry on a later pass.
			d.rec.skipped.Inc()
		case errors.Is(err, ErrClosed):
			return migrated, err
		default:
			return migrated, fmt.Errorf("db: recluster unit %v: %w", root, err)
		}
	}
	d.heat.Decay()
	return migrated, nil
}

func (d *DB) reclusterBatch() int {
	if d.opts.ReclusterBatch > 0 {
		return d.opts.ReclusterBatch
	}
	return 8
}

// reclusterUnit migrates the composite unit rooted at root into its own
// segment. The §7 X admission is taken BEFORE d.mu so a lock wait never
// stalls Checkpoint/Close; the move phase then holds d.mu, which keeps
// the WAL appends and page moves strictly outside any checkpoint (the
// checkpoint's quiescence assumption) and outside Close's teardown.
func (d *DB) reclusterUnit(root uid.UID) (int, error) {
	tx := d.txm.Reserve()
	if err := d.txm.Protocol().LockUnitsWrite(tx, root); err != nil {
		d.txm.Locks().ReleaseAll(tx)
		return 0, err
	}
	defer d.txm.Locks().ReleaseAll(tx)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	if !d.store.Has(root) {
		return 0, nil
	}
	members := []uid.UID{root}
	comps, err := d.engine.ComponentsOf(root, core.QueryOpts{})
	if err != nil {
		return 0, nil // vanished between selection and locking
	}
	members = append(members, comps...)
	name := fmt.Sprintf("unit:%d.%d", root.Class, root.Serial)
	// Reclustering NEVER crosses a shard boundary: each member moves
	// within the shard the routing table already pins it to, into that
	// shard's own "unit:C.S" segment (segment namespaces are per-shard, so
	// a unit whose members were attached from another hierarchy gets one
	// such segment on each shard involved). ShardedStore.Move enforces
	// this — a move that would change an object's shard is refused, not
	// silently performed — so a crash mid-pass can at worst leave a unit
	// split across the same shards it already occupied.
	segs := make(map[int]storage.SegmentID)
	segFor := func(k int) (storage.SegmentID, error) {
		if seg, ok := segs[k]; ok {
			return seg, nil
		}
		st := d.store.Shard(k)
		seg, ok := st.SegmentByName(name)
		if !ok {
			var err error
			if seg, err = st.CreateSegment(name); err != nil {
				return 0, err
			}
		}
		segs[k] = seg
		return seg, nil
	}
	allPlaced := true
	for _, id := range members {
		k, routed := d.store.ShardOf(id)
		if !routed {
			continue
		}
		seg, err := segFor(k)
		if err != nil {
			return 0, err
		}
		if s, ok := d.store.Shard(k).SegmentOf(id); ok && s != seg {
			allPlaced = false
			break
		}
	}
	if allPlaced {
		return 0, nil
	}
	// Root first, then members in composite BFS order, each clustered next
	// to its predecessor ON ITS SHARD: per-shard chains preserve the §3
	// contiguous layout within each shard's segment.
	moved := 0
	prev := make(map[int]uid.UID)
	touched := make(map[int]bool)
	for _, id := range members {
		k, routed := d.store.ShardOf(id)
		if !routed || !d.store.Has(id) {
			continue
		}
		seg, err := segFor(k)
		if err != nil {
			return moved, err
		}
		if d.wal != nil {
			if err := d.shards[k].wal.Append(storage.WALRecord{
				Op: storage.OpMove, UID: id, Seg: seg, Near: prev[k], Data: []byte(name),
			}); err != nil {
				return moved, err
			}
			d.shards[k].appends.Add(1)
		}
		if err := d.store.Move(k, seg, id, prev[k]); err != nil {
			if errors.Is(err, storage.ErrNotFound) {
				continue
			}
			return moved, err
		}
		prev[k] = id
		touched[k] = true
		moved++
	}
	if d.wal != nil && d.opts.SyncWAL {
		for k := range touched {
			s := d.shards[k]
			n := s.appends.Load()
			if err := s.gc.Sync(); err != nil {
				return moved, err
			}
			s.noteSynced(n)
		}
	}
	return moved, nil
}
