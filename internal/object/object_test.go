package object

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/uid"
	"repro/internal/value"
)

func u(c uint32, s uint64) uid.UID { return uid.UID{Class: uid.ClassID(c), Serial: s} }

func TestAttrsGetSetUnset(t *testing.T) {
	o := New(u(1, 1))
	if !o.Get("x").IsNil() {
		t.Fatal("unset attribute not Nil")
	}
	o.Set("x", value.Int(7))
	if v, _ := o.Get("x").AsInt(); v != 7 {
		t.Fatalf("Get(x) = %v", o.Get("x"))
	}
	if !o.Has("x") || o.Has("y") {
		t.Fatal("Has wrong")
	}
	o.Unset("x")
	if o.Has("x") {
		t.Fatal("Unset did not remove attribute")
	}
	// Setting Nil clears.
	o.Set("y", value.Str("s"))
	o.Set("y", value.Nil)
	if o.Has("y") {
		t.Fatal("Set(Nil) did not clear attribute")
	}
}

func TestAttrNamesSorted(t *testing.T) {
	o := New(u(1, 1))
	o.Set("zeta", value.Int(1))
	o.Set("alpha", value.Int(2))
	o.Set("mid", value.Int(3))
	want := []string{"alpha", "mid", "zeta"}
	if got := o.AttrNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("AttrNames = %v, want %v", got, want)
	}
}

func TestRenameAttr(t *testing.T) {
	o := New(u(1, 1))
	o.Set("old", value.Int(5))
	o.RenameAttr("old", "new")
	if o.Has("old") || !o.Has("new") {
		t.Fatal("rename failed")
	}
	if v, _ := o.Get("new").AsInt(); v != 5 {
		t.Fatal("rename lost value")
	}
	// Renaming a missing attribute is a no-op.
	o.RenameAttr("ghost", "elsewhere")
	if o.Has("elsewhere") {
		t.Fatal("rename of missing attribute created one")
	}
}

func TestReverseRefLifecycle(t *testing.T) {
	o := New(u(2, 1))
	p1, p2 := u(1, 1), u(1, 2)
	o.AddReverse(ReverseRef{Parent: p1, Dependent: true, Exclusive: true})
	o.AddReverse(ReverseRef{Parent: p2, Dependent: false, Exclusive: false})
	if len(o.Reverse()) != 2 {
		t.Fatalf("reverse count = %d", len(o.Reverse()))
	}
	if !o.HasReverse(p1) || !o.HasReverse(p2) || o.HasReverse(u(9, 9)) {
		t.Fatal("HasReverse wrong")
	}
	if !o.HasExclusiveReverse() {
		t.Fatal("HasExclusiveReverse = false with a DX parent")
	}
	if !o.RemoveReverse(p1) {
		t.Fatal("RemoveReverse(p1) = false")
	}
	if o.HasExclusiveReverse() {
		t.Fatal("HasExclusiveReverse = true after removing the exclusive parent")
	}
	if o.RemoveReverse(p1) {
		t.Fatal("double RemoveReverse = true")
	}
}

func TestAddReverseOverwritesFlagsKeepsCount(t *testing.T) {
	o := New(u(2, 1))
	p := u(1, 1)
	o.AddReverse(ReverseRef{Parent: p, Dependent: true, Exclusive: true, Count: 3})
	// Re-adding with different flags and no count keeps the count.
	o.AddReverse(ReverseRef{Parent: p, Dependent: false, Exclusive: false})
	rs := o.Reverse()
	if len(rs) != 1 {
		t.Fatalf("reverse count = %d after overwrite", len(rs))
	}
	if rs[0].Dependent || rs[0].Exclusive {
		t.Fatal("flags not overwritten")
	}
	if rs[0].Count != 3 {
		t.Fatalf("count = %d, want preserved 3", rs[0].Count)
	}
}

func TestPartitionSetsDefinition1(t *testing.T) {
	// Definition 1: IX, DX, IS, DS partition the composite parents.
	o := New(u(3, 1))
	ix, dx, is, ds := u(1, 1), u(1, 2), u(1, 3), u(1, 4)
	o.AddReverse(ReverseRef{Parent: ix, Dependent: false, Exclusive: true})
	o.AddReverse(ReverseRef{Parent: dx, Dependent: true, Exclusive: true})
	o.AddReverse(ReverseRef{Parent: is, Dependent: false, Exclusive: false})
	o.AddReverse(ReverseRef{Parent: ds, Dependent: true, Exclusive: false})
	if got := o.IX(); !reflect.DeepEqual(got, []uid.UID{ix}) {
		t.Fatalf("IX = %v", got)
	}
	if got := o.DX(); !reflect.DeepEqual(got, []uid.UID{dx}) {
		t.Fatalf("DX = %v", got)
	}
	if got := o.IS(); !reflect.DeepEqual(got, []uid.UID{is}) {
		t.Fatalf("IS = %v", got)
	}
	if got := o.DS(); !reflect.DeepEqual(got, []uid.UID{ds}) {
		t.Fatalf("DS = %v", got)
	}
	if got := o.Parents(); len(got) != 4 {
		t.Fatalf("Parents = %v", got)
	}
}

func TestSetReverseFlags(t *testing.T) {
	o := New(u(2, 1))
	p := u(1, 1)
	o.AddReverse(ReverseRef{Parent: p, Dependent: true, Exclusive: true})
	if !o.SetReverseFlags(p, false, true) {
		t.Fatal("SetReverseFlags on existing ref = false")
	}
	if len(o.DX()) != 0 || len(o.IX()) != 1 {
		t.Fatal("flag change I4->I3 not applied")
	}
	if o.SetReverseFlags(u(9, 9), true, true) {
		t.Fatal("SetReverseFlags on missing ref = true")
	}
}

func TestRefsDedupSorted(t *testing.T) {
	o := New(u(1, 1))
	a, b := u(2, 5), u(2, 1)
	o.Set("p", value.Ref(a))
	o.Set("q", value.RefSet(b, a))
	got := o.Refs()
	want := []uid.UID{b, a}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Refs = %v, want %v", got, want)
	}
}

func TestCloneDeep(t *testing.T) {
	o := New(u(1, 1))
	o.Set("s", value.SetOf(value.Int(1)))
	o.AddReverse(ReverseRef{Parent: u(9, 1), Dependent: true, Exclusive: false})
	o.SetCC(42)
	c := o.Clone()
	if c.UID() != o.UID() || c.CC() != 42 {
		t.Fatal("clone identity/cc wrong")
	}
	c.AddReverse(ReverseRef{Parent: u(9, 2)})
	if len(o.Reverse()) != 1 {
		t.Fatal("clone shares reverse slice")
	}
	c.Set("s", value.Int(3))
	if !o.Get("s").Equal(value.SetOf(value.Int(1))) {
		t.Fatal("clone shares attrs")
	}
}

func TestCloneAs(t *testing.T) {
	o := New(u(1, 1))
	o.Set("x", value.Int(1))
	o.AddReverse(ReverseRef{Parent: u(9, 1)})
	n := o.CloneAs(u(1, 2))
	if n.UID() != u(1, 2) {
		t.Fatal("CloneAs UID wrong")
	}
	if n.HasAnyReverse() {
		t.Fatal("CloneAs copied reverse references; a fresh version has no parents")
	}
	if v, _ := n.Get("x").AsInt(); v != 1 {
		t.Fatal("CloneAs lost attributes")
	}
}

func TestReverseRefString(t *testing.T) {
	r := ReverseRef{Parent: u(3, 7), Dependent: true, Exclusive: false}
	if got := r.String(); got != "3:7[DS]" {
		t.Fatalf("String = %q", got)
	}
	r = ReverseRef{Parent: u(3, 7), Dependent: false, Exclusive: true, Count: 2}
	if got := r.String(); got != "3:7[IX](rc=2)" {
		t.Fatalf("String = %q", got)
	}
}

func TestObjectString(t *testing.T) {
	o := New(u(1, 2))
	o.Set("name", value.Str("v"))
	o.AddReverse(ReverseRef{Parent: u(2, 1), Dependent: true, Exclusive: true})
	s := o.String()
	for _, want := range []string{"#1:2", `name="v"`, "2:1[DX]"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}
