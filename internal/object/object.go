// Package object defines the in-memory representation of objects: dynamic
// attribute records plus the reverse composite references of §2.4 of the
// paper.
//
// The paper's implementation decision (§2.4) is to store, in each
// component of a composite object, a list of reverse composite references
// — the UIDs of its parents, each carrying two flags: D (the component is
// dependent on that parent) and X (the component is an exclusive component
// of that parent). Keeping the reverse pointers inside the object avoids a
// level of indirection when finding parents and simplifies deletion and
// migration, at the cost of larger objects. The bench harness quantifies
// that trade-off against an external-index alternative.
package object

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/uid"
	"repro/internal/value"
)

// ReverseRef is a reverse composite reference: "some parent references me
// through a composite attribute". For reverse composite *generic*
// references (between generic instances of versionable objects, §5.3) the
// Count field tracks how many version-level composite references the
// generic-level reference summarizes; for ordinary reverse references
// Count is 0 and unused.
type ReverseRef struct {
	Parent    uid.UID
	Dependent bool   // the paper's D flag
	Exclusive bool   // the paper's X flag
	Count     uint32 // ref-count, used only for reverse composite generic references
}

// String renders the reverse reference with its flags, e.g. "3:7[DX]".
func (r ReverseRef) String() string {
	flags := ""
	if r.Dependent {
		flags += "D"
	} else {
		flags += "I"
	}
	if r.Exclusive {
		flags += "X"
	} else {
		flags += "S"
	}
	s := r.Parent.String() + "[" + flags + "]"
	if r.Count > 0 {
		s += fmt.Sprintf("(rc=%d)", r.Count)
	}
	return s
}

// Object is a dynamic record: a UID, a set of attribute values interpreted
// against the schema catalog, the reverse composite references of its
// parents, and a change-count stamp (CC) used by deferred schema evolution
// (§4.3).
type Object struct {
	uid     uid.UID
	attrs   map[string]value.Value
	reverse []ReverseRef
	cc      uint64
}

// New returns an empty object with the given UID.
func New(u uid.UID) *Object {
	return &Object{uid: u, attrs: make(map[string]value.Value)}
}

// UID returns the object's identifier.
func (o *Object) UID() uid.UID { return o.uid }

// Class returns the class component of the object's UID.
func (o *Object) Class() uid.ClassID { return o.uid.Class }

// Get returns the value of the named attribute (Nil if unset).
func (o *Object) Get(attr string) value.Value {
	return o.attrs[attr]
}

// Set stores v under the named attribute. Setting Nil clears it.
func (o *Object) Set(attr string, v value.Value) {
	if v.IsNil() {
		delete(o.attrs, attr)
		return
	}
	o.attrs[attr] = v
}

// Unset removes the named attribute.
func (o *Object) Unset(attr string) { delete(o.attrs, attr) }

// Has reports whether the named attribute is set.
func (o *Object) Has(attr string) bool {
	_, ok := o.attrs[attr]
	return ok
}

// AttrNames returns the set attribute names in sorted order.
func (o *Object) AttrNames() []string {
	names := make([]string, 0, len(o.attrs))
	for n := range o.attrs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RenameAttr moves the value stored under old to new, if present. It is
// used by schema evolution when an attribute is renamed.
func (o *Object) RenameAttr(old, new string) {
	if v, ok := o.attrs[old]; ok {
		delete(o.attrs, old)
		o.attrs[new] = v
	}
}

// CC returns the object's change-count stamp (§4.3).
func (o *Object) CC() uint64 { return o.cc }

// SetCC updates the change-count stamp.
func (o *Object) SetCC(cc uint64) { o.cc = cc }

// Reverse returns the reverse composite references. The caller must not
// mutate the returned slice.
func (o *Object) Reverse() []ReverseRef { return o.reverse }

// FindReverse returns the index of the reverse reference from parent, or
// -1 if none exists.
func (o *Object) FindReverse(parent uid.UID) int {
	for i, r := range o.reverse {
		if r.Parent == parent {
			return i
		}
	}
	return -1
}

// HasReverse reports whether parent holds a composite reference to o.
func (o *Object) HasReverse(parent uid.UID) bool { return o.FindReverse(parent) >= 0 }

// AddReverse inserts a reverse composite reference. If a reverse reference
// from the same parent already exists it is overwritten (flags updated)
// and its Count preserved.
func (o *Object) AddReverse(r ReverseRef) {
	if i := o.FindReverse(r.Parent); i >= 0 {
		if r.Count == 0 {
			r.Count = o.reverse[i].Count
		}
		o.reverse[i] = r
		return
	}
	o.reverse = append(o.reverse, r)
}

// RemoveReverse deletes the reverse reference from parent; it reports
// whether one was present.
func (o *Object) RemoveReverse(parent uid.UID) bool {
	if i := o.FindReverse(parent); i >= 0 {
		o.reverse = append(o.reverse[:i], o.reverse[i+1:]...)
		return true
	}
	return false
}

// SetReverseFlags updates the D and/or X flag of the reverse reference
// from parent, used by schema evolution's immediate flag rewrites
// (§4.3 I2–I4). It reports whether the reference existed.
func (o *Object) SetReverseFlags(parent uid.UID, dependent, exclusive bool) bool {
	if i := o.FindReverse(parent); i >= 0 {
		o.reverse[i].Dependent = dependent
		o.reverse[i].Exclusive = exclusive
		return true
	}
	return false
}

// Partition sets of Definition 1 (§2.2): the parents of o split by
// reference type.

// IX returns the parents holding independent exclusive composite
// references to o.
func (o *Object) IX() []uid.UID { return o.parentsWhere(false, true) }

// DX returns the parents holding dependent exclusive composite references.
func (o *Object) DX() []uid.UID { return o.parentsWhere(true, true) }

// IS returns the parents holding independent shared composite references.
func (o *Object) IS() []uid.UID { return o.parentsWhere(false, false) }

// DS returns the parents holding dependent shared composite references.
func (o *Object) DS() []uid.UID { return o.parentsWhere(true, false) }

func (o *Object) parentsWhere(dep, excl bool) []uid.UID {
	var out []uid.UID
	for _, r := range o.reverse {
		if r.Dependent == dep && r.Exclusive == excl {
			out = append(out, r.Parent)
		}
	}
	return out
}

// HasExclusiveReverse reports whether any parent holds an exclusive
// composite reference to o (the X-flag check of the Make-Component
// algorithm, §2.4).
func (o *Object) HasExclusiveReverse() bool {
	for _, r := range o.reverse {
		if r.Exclusive {
			return true
		}
	}
	return false
}

// HasAnyReverse reports whether o has any composite reference to it.
func (o *Object) HasAnyReverse() bool { return len(o.reverse) > 0 }

// Parents returns all composite parents in insertion order.
func (o *Object) Parents() []uid.UID {
	out := make([]uid.UID, len(o.reverse))
	for i, r := range o.reverse {
		out[i] = r.Parent
	}
	return out
}

// Refs returns every UID referenced from o's attributes (weak and
// composite alike), deduplicated and sorted.
func (o *Object) Refs() []uid.UID {
	var all []uid.UID
	for _, v := range o.attrs {
		all = v.Refs(all)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	out := all[:0]
	var prev uid.UID
	for i, r := range all {
		if i == 0 || r != prev {
			out = append(out, r)
		}
		prev = r
	}
	return out
}

// Clone returns a deep copy of o.
func (o *Object) Clone() *Object {
	c := New(o.uid)
	c.cc = o.cc
	for k, v := range o.attrs {
		c.attrs[k] = v.Clone()
	}
	c.reverse = append([]ReverseRef(nil), o.reverse...)
	return c
}

// CloneAs returns a deep copy of o under a new UID with no reverse
// references, used by version derivation (the copy starts with no parents
// of its own).
func (o *Object) CloneAs(nu uid.UID) *Object {
	c := New(nu)
	for k, v := range o.attrs {
		c.attrs[k] = v.Clone()
	}
	return c
}

// String renders the object for debugging and figures.
func (o *Object) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%s{", o.uid)
	for i, n := range o.AttrNames() {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%s=%s", n, o.attrs[n])
	}
	if len(o.reverse) > 0 {
		b.WriteString(" <=")
		for _, r := range o.reverse {
			b.WriteString(" " + r.String())
		}
	}
	b.WriteString("}")
	return b.String()
}
