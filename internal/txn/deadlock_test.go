package txn

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/lock"
	"repro/internal/uid"
)

// TestDeadlockVictimAbort injects the canonical deadlock: two
// transactions attach into two composite hierarchies in opposite orders.
// Exactly one — the younger — must be aborted with a typed ErrDeadlock,
// the survivor must complete, and after both roll back the engine must be
// byte-identical to the pre-transaction state (reusing the abort property
// test's dump comparison, caches included).
func TestDeadlockVictimAbort(t *testing.T) {
	m := abortPropManager(t)
	e := m.Engine()
	mk := func(class string) uid.UID {
		o, err := e.New(class, nil)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	r1, r2 := mk("IX"), mk("IX")
	l1, l2, l3, l4 := mk("Leaf"), mk("Leaf"), mk("Leaf"), mk("Leaf")
	before := dumpEngine(t, e)

	t1 := m.Begin()
	t2 := m.Begin() // younger: always the chosen victim
	if err := t1.Attach(r1, "Parts", l1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Attach(r2, "Parts", l2); err != nil {
		t.Fatal(err)
	}

	// t1 crosses into t2's hierarchy while t2 crosses into t1's. Whichever
	// waiter closes the cycle, the victim choice (youngest) is the same.
	done := make(chan error, 1)
	go func() { done <- t1.Attach(r2, "Parts", l3) }()
	err2 := t2.Attach(r1, "Parts", l4)
	if !errors.Is(err2, lock.ErrDeadlock) {
		t.Fatalf("expected t2 to fail with ErrDeadlock, got %v", err2)
	}
	// The victim holds its locks until Abort (strict 2PL); the survivor is
	// parked on r2's root until then.
	if err := t2.Abort(); err != nil {
		t.Fatalf("victim abort: %v", err)
	}
	if err1 := <-done; err1 != nil {
		t.Fatalf("survivor's attach failed: %v", err1)
	}
	if n := m.Locks().LockCount(t2.ID()); n != 0 {
		t.Fatalf("victim still holds %d locks after abort", n)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}
	after := dumpEngine(t, e)
	if d := diffDumps(before, after); d != "" {
		t.Fatalf("state not byte-identical after deadlock round: %s", d)
	}
}

// TestDeadlockRunRetries: the same opposite-order dance driven through
// Manager.Run must converge — the victim's attempt is retried after its
// rollback and both transactions end up committed.
func TestDeadlockRunRetries(t *testing.T) {
	m := abortPropManager(t)
	e := m.Engine()
	mk := func(class string) uid.UID {
		o, err := e.New(class, nil)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	r1, r2 := mk("IX"), mk("IX")
	leaves := []uid.UID{mk("Leaf"), mk("Leaf"), mk("Leaf"), mk("Leaf")}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	order := [2][2]uid.UID{{r1, r2}, {r2, r1}}
	for k := 0; k < 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			errs[k] = m.Run(func(tx *Txn) error {
				if err := tx.Attach(order[k][0], "Parts", leaves[2*k]); err != nil {
					return err
				}
				return tx.Attach(order[k][1], "Parts", leaves[2*k+1])
			})
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			t.Fatalf("transaction %d did not converge: %v", k, err)
		}
	}
	for _, l := range leaves {
		o, err := e.Get(l)
		if err != nil {
			t.Fatal(err)
		}
		if len(o.Reverse()) != 1 {
			t.Fatalf("leaf %v: want exactly one composite parent, got %d", l, len(o.Reverse()))
		}
	}
}
