package txn

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/encoding"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

var abortPropClasses = []string{"Leaf", "DX", "IX", "DS", "IS"}

// abortPropManager builds an engine with one parent class per reference
// kind (each with a Leaf-set, a recursive set, and an int attribute) and
// a transaction manager over it.
func abortPropManager(t *testing.T) *Manager {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Leaf", Attributes: []schema.AttrSpec{
		schema.NewAttr("Tag", schema.IntDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	kinds := map[string][2]bool{"DX": {true, true}, "IX": {true, false}, "DS": {false, true}, "IS": {false, false}}
	for _, name := range []string{"DX", "IX", "DS", "IS"} {
		k := kinds[name]
		if _, err := cat.DefineClass(schema.ClassDef{Name: name, Attributes: []schema.AttrSpec{
			schema.NewAttr("Tag", schema.IntDomain),
			schema.NewCompositeSetAttr("Parts", "Leaf").WithExclusive(k[0]).WithDependent(k[1]),
			schema.NewCompositeSetAttr("Subs", name).WithExclusive(k[0]).WithDependent(k[1]),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	return NewManager(core.NewEngine(cat))
}

// engineDump captures everything observable about the engine: the byte
// encoding of every object (attributes, reverse references with flags,
// CC stamp), the cached partition sets, and the results of the cached
// composite queries ComponentsOf and AncestorsOf.
type engineDump struct {
	objects    map[uid.UID][]byte
	partitions map[uid.UID]string
	components map[uid.UID]string
	ancestors  map[uid.UID]string
}

func dumpEngine(t *testing.T, e *core.Engine) engineDump {
	t.Helper()
	d := engineDump{
		objects:    map[uid.UID][]byte{},
		partitions: map[uid.UID]string{},
		components: map[uid.UID]string{},
		ancestors:  map[uid.UID]string{},
	}
	for _, class := range abortPropClasses {
		ids, err := e.Extent(class, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			o, err := e.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			d.objects[id] = encoding.EncodeObject(o)
			p, err := e.Partitions(id)
			if err != nil {
				t.Fatal(err)
			}
			d.partitions[id] = fmt.Sprintf("IX=%v DX=%v IS=%v DS=%v",
				sortedIDs(p.IX), sortedIDs(p.DX), sortedIDs(p.IS), sortedIDs(p.DS))
			comps, err := e.ComponentsOf(id, core.QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			d.components[id] = fmt.Sprint(sortedIDs(comps))
			ancs, err := e.AncestorsOf(id, core.QueryOpts{})
			if err != nil {
				t.Fatal(err)
			}
			d.ancestors[id] = fmt.Sprint(sortedIDs(ancs))
		}
	}
	return d
}

func sortedIDs(s []uid.UID) []uid.UID {
	out := append([]uid.UID(nil), s...)
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}

func diffDumps(before, after engineDump) string {
	if len(before.objects) != len(after.objects) {
		return fmt.Sprintf("object count %d -> %d", len(before.objects), len(after.objects))
	}
	for id, b := range before.objects {
		a, ok := after.objects[id]
		if !ok {
			return fmt.Sprintf("object %v vanished", id)
		}
		if !bytes.Equal(b, a) {
			return fmt.Sprintf("object %v bytes changed", id)
		}
		for _, m := range []struct {
			name          string
			before, after map[uid.UID]string
		}{
			{"partitions", before.partitions, after.partitions},
			{"components", before.components, after.components},
			{"ancestors", before.ancestors, after.ancestors},
		} {
			if m.before[id] != m.after[id] {
				return fmt.Sprintf("%s of %v: %s -> %s", m.name, id, m.before[id], m.after[id])
			}
		}
	}
	return ""
}

// TestAbortRestoresEngineByteIdentical: after Begin -> random mutations
// -> Abort, the engine must be byte-identical to its pre-transaction
// state — object encodings (attributes, reverse refs, flags), partition
// sets, and the cached composite-query results all included. The seed
// phase populates caches so that stale-invalidation bugs surface too.
func TestAbortRestoresEngineByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			m := abortPropManager(t)
			r := rand.New(rand.NewSource(seed))
			var live []uid.UID
			classOf := map[uid.UID]string{}
			// Seed phase: build a committed population with composite
			// structure.
			if err := m.Run(func(tx *Txn) error {
				for i := 0; i < 30; i++ {
					class := abortPropClasses[r.Intn(len(abortPropClasses))]
					o, err := tx.New(class, map[string]value.Value{"Tag": value.Int(r.Int63n(1000))})
					if err != nil {
						return err
					}
					live = append(live, o.UID())
					classOf[o.UID()] = class
				}
				for i := 0; i < 40; i++ {
					p := live[r.Intn(len(live))]
					c := live[r.Intn(len(live))]
					attr := "Parts"
					if classOf[c] != "Leaf" {
						attr = "Subs"
					}
					tx.Attach(p, attr, c) // rejections are fine
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			before := dumpEngine(t, m.Engine())

			// Transaction phase: random mutations, some failing, then abort.
			tx := m.Begin()
			pick := func() uid.UID { return live[r.Intn(len(live))] }
			for i := 0; i < 30; i++ {
				switch r.Intn(6) {
				case 0:
					if o, err := tx.New(abortPropClasses[r.Intn(len(abortPropClasses))], nil); err == nil {
						live = append(live, o.UID())
						classOf[o.UID()] = "?"
					}
				case 1:
					c := pick()
					attr := "Parts"
					if classOf[c] != "Leaf" {
						attr = "Subs"
					}
					tx.Attach(pick(), attr, c)
				case 2:
					c := pick()
					attr := "Parts"
					if classOf[c] != "Leaf" {
						attr = "Subs"
					}
					tx.Detach(pick(), attr, c)
				case 3:
					tx.WriteAttr(pick(), "Tag", value.Int(r.Int63n(1000)))
				case 4:
					tx.WriteAttr(pick(), "Parts", value.RefSet())
				default:
					tx.Delete(pick())
				}
			}
			if err := tx.Abort(); err != nil {
				t.Fatalf("abort: %v", err)
			}
			after := dumpEngine(t, m.Engine())
			if d := diffDumps(before, after); d != "" {
				t.Fatalf("seed %d: engine state changed across abort: %s", seed, d)
			}
			if v := m.Engine().Integrity(); len(v) != 0 {
				t.Fatalf("seed %d: integrity violations after abort: %v", seed, v)
			}
		})
	}
}
