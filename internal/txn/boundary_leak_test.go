package txn

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/uid"
)

// failingBoundary simulates a WAL group-commit failure (device error on
// the commit or abort record) at the transaction boundary.
type failingBoundary struct {
	failCommit bool
	failAbort  bool
}

var errBoundary = errors.New("injected boundary failure")

func (f *failingBoundary) OnCommit(core.TxnID) error {
	if f.failCommit {
		return errBoundary
	}
	return nil
}

func (f *failingBoundary) OnAbort(core.TxnID) error {
	if f.failAbort {
		return errBoundary
	}
	return nil
}

// TestCommitBoundaryFailureReleasesLocks: when the commit record cannot
// be written, Commit must report the failure AND still release every
// lock — a transaction that died at its boundary must never leave an X
// lock behind to wedge later writers.
func TestCommitBoundaryFailureReleasesLocks(t *testing.T) {
	m := abortPropManager(t)
	b := &failingBoundary{failCommit: true}
	m.SetBoundary(b)
	e := m.Engine()
	r, err := e.New("IX", nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := e.New("Leaf", nil)
	if err != nil {
		t.Fatal(err)
	}

	t1 := m.Begin()
	if err := t1.Attach(r.UID(), "Parts", l.UID()); err != nil {
		t.Fatal(err)
	}
	if n := m.Locks().LockCount(t1.ID()); n == 0 {
		t.Fatal("attach held no locks; test is vacuous")
	}
	if err := t1.Commit(); !errors.Is(err, errBoundary) {
		t.Fatalf("Commit = %v, want the injected boundary failure", err)
	}
	if n := m.Locks().LockCount(t1.ID()); n != 0 {
		t.Fatalf("failed commit leaked %d locks", n)
	}

	// A fresh transaction can X-lock the same granules immediately.
	b.failCommit = false
	t2 := m.Begin()
	if err := t2.Detach(r.UID(), "Parts", l.UID()); err != nil {
		t.Fatalf("fresh txn blocked on granules of the failed txn: %v", err)
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestVictimAbortBoundaryFailureReleasesLocks: a deadlock victim whose
// abort record also fails to persist must still roll back its changes
// and release all locks, so the surviving transaction can proceed.
func TestVictimAbortBoundaryFailureReleasesLocks(t *testing.T) {
	m := abortPropManager(t)
	b := &failingBoundary{failAbort: true}
	m.SetBoundary(b)
	e := m.Engine()
	mk := func(class string) uid.UID {
		o, err := e.New(class, nil)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	r1, r2 := mk("IX"), mk("IX")
	l1, l2, l3, l4 := mk("Leaf"), mk("Leaf"), mk("Leaf"), mk("Leaf")
	before := dumpEngine(t, e)

	t1 := m.Begin()
	t2 := m.Begin() // younger: the victim
	if err := t1.Attach(r1, "Parts", l1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Attach(r2, "Parts", l2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t1.Attach(r2, "Parts", l3) }()
	if err := t2.Attach(r1, "Parts", l4); !errors.Is(err, lock.ErrDeadlock) {
		t.Fatalf("expected ErrDeadlock for the victim, got %v", err)
	}
	if err := t2.Abort(); !errors.Is(err, errBoundary) {
		t.Fatalf("victim Abort = %v, want the injected boundary failure", err)
	}
	if n := m.Locks().LockCount(t2.ID()); n != 0 {
		t.Fatalf("victim with failed abort record leaked %d locks", n)
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor blocked by the victim's leaked locks: %v", err)
	}
	// Roll the survivor back too (its abort record also fails) and check
	// the engine state is untouched — the undo ran despite the boundary
	// failure.
	if err := t1.Abort(); !errors.Is(err, errBoundary) {
		t.Fatalf("survivor Abort = %v, want the injected boundary failure", err)
	}
	if n := m.Locks().LockCount(t1.ID()); n != 0 {
		t.Fatalf("survivor leaked %d locks", n)
	}
	after := dumpEngine(t, e)
	if d := diffDumps(before, after); d != "" {
		t.Fatalf("state diverged after failed-boundary aborts: %s", d)
	}
}
