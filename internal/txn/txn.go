// Package txn provides transactions over the composite-object engine:
// strict two-phase locking through the §7 lock protocols, plus logical
// undo so an aborted transaction leaves no trace.
//
// The granularity follows the paper: reads and writes of single objects
// take IS/S and IX/X locks; operations on composite objects (cascading
// deletes, whole-object reads) take the composite protocol locks
// (IS+S+ISO/ISOS for reads, IX+X+IXO/IXOS for updates). These protocols
// target "conventional short transactions" — the paper notes that
// long-duration design transactions want per-component locking, which
// ReadObject/WriteAttr provide.
package txn

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/uid"
	"repro/internal/value"
)

// ErrDone is returned when a finished transaction is used again.
var ErrDone = errors.New("txn: transaction already committed or aborted")

// Manager creates transactions bound to one engine and lock manager.
type Manager struct {
	engine *core.Engine
	locks  *lock.Manager
	proto  *lock.Protocol
	next   atomic.Uint64
	o      managerObs
}

// managerObs holds the manager's pre-resolved instruments (see
// internal/obs): transaction lifecycle counters plus the tracer for
// begin/commit/abort points.
type managerObs struct {
	tr              *obs.Tracer
	begins          *obs.Counter
	commits         *obs.Counter
	aborts          *obs.Counter
	deadlockRetries *obs.Counter
}

// NewManager returns a transaction manager over the engine, sharing the
// engine's observability registry with its lock manager.
func NewManager(e *core.Engine) *Manager {
	lm := lock.NewManager()
	m := &Manager{
		engine: e,
		locks:  lm,
		proto:  lock.NewProtocol(lm, e),
	}
	m.SetObservability(e.Observability())
	return m
}

// SetObservability rebinds the manager's instruments — and those of its
// lock manager — to r (nil disables them). Call before concurrent use.
func (m *Manager) SetObservability(r *obs.Registry) {
	m.o = managerObs{
		tr:              r.Tracer(),
		begins:          r.Counter("txn_begin_total"),
		commits:         r.Counter("txn_commit_total"),
		aborts:          r.Counter("txn_abort_total"),
		deadlockRetries: r.Counter("txn_deadlock_retries_total"),
	}
	m.locks.SetObservability(r)
}

// Observability returns the engine's registry (shared with the lock
// manager).
func (m *Manager) Observability() *obs.Registry { return m.engine.Observability() }

// Locks exposes the underlying lock manager (for tests and figures).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Protocol exposes the composite lock protocol.
func (m *Manager) Protocol() *lock.Protocol { return m.proto }

// Engine exposes the underlying engine.
func (m *Manager) Engine() *core.Engine { return m.engine }

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	id := lock.TxID(m.next.Add(1))
	m.o.begins.Inc()
	if tr := m.o.tr; tr.Active() {
		tr.Point(0, "txn.begin", obs.F("tx", id))
	}
	return &Txn{
		m:  m,
		id: id,
	}
}

// undoRec is one logical undo action.
type undoRec struct {
	restore *object.Object // non-nil: put this before-image back
	evict   uid.UID        // non-nil UID: remove this created object
}

// Txn is a transaction. It is not safe for concurrent use by multiple
// goroutines (one goroutine per transaction, many transactions in
// parallel).
type Txn struct {
	m       *Manager
	id      lock.TxID
	undo    []undoRec
	snapped map[uid.UID]bool
	done    bool
}

// ID returns the transaction's lock-manager identity.
func (t *Txn) ID() lock.TxID { return t.id }

func (t *Txn) check() error {
	if t.done {
		return ErrDone
	}
	return nil
}

// snapshot records a before-image of id once per transaction.
func (t *Txn) snapshot(id uid.UID) error {
	if t.snapped == nil {
		t.snapped = make(map[uid.UID]bool)
	}
	if t.snapped[id] {
		return nil
	}
	snap, err := t.m.engine.Snapshot(id)
	if err != nil {
		return err
	}
	t.snapped[id] = true
	t.undo = append(t.undo, undoRec{restore: snap})
	return nil
}

// ReadObject locks id for reading (IS class, S instance) and returns a
// private copy.
func (t *Txn) ReadObject(id uid.UID) (*object.Object, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.m.proto.LockInstance(t.id, id, false); err != nil {
		return nil, err
	}
	return t.m.engine.Snapshot(id)
}

// WriteAttr locks id for writing (IX class, X instance) and sets the
// attribute, recording undo.
func (t *Txn) WriteAttr(id uid.UID, attr string, v value.Value) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.m.proto.LockInstance(t.id, id, true); err != nil {
		return err
	}
	// Composite attribute writes touch referenced children too; snapshot
	// every object the diff will touch.
	if err := t.snapshot(id); err != nil {
		return err
	}
	o, err := t.m.engine.Get(id)
	if err != nil {
		return err
	}
	touched := uid.NewSet(o.Get(attr).Refs(nil)...)
	for _, r := range v.Refs(nil) {
		touched.Add(r)
	}
	for _, r := range touched.Slice() {
		if t.m.engine.Exists(r) {
			if err := t.m.proto.LockInstance(t.id, r, true); err != nil {
				return err
			}
			if err := t.snapshot(r); err != nil {
				return err
			}
		}
	}
	return t.m.engine.Set(id, attr, v)
}

// New creates an instance within the transaction, locking the class in IX
// and every named parent in X.
func (t *Txn) New(class string, attrs map[string]value.Value, parents ...core.ParentSpec) (*object.Object, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.m.locks.Lock(t.id, lock.ClassGranule(class), lock.IX); err != nil {
		return nil, err
	}
	for _, p := range parents {
		if err := t.m.proto.LockInstance(t.id, p.Parent, true); err != nil {
			return nil, err
		}
		if err := t.snapshot(p.Parent); err != nil {
			return nil, err
		}
	}
	// Attribute values that reference existing objects mutate them too.
	for _, v := range attrs {
		for _, r := range v.Refs(nil) {
			if t.m.engine.Exists(r) {
				if err := t.m.proto.LockInstance(t.id, r, true); err != nil {
					return nil, err
				}
				if err := t.snapshot(r); err != nil {
					return nil, err
				}
			}
		}
	}
	o, err := t.m.engine.New(class, attrs, parents...)
	if err != nil {
		return nil, err
	}
	t.undo = append(t.undo, undoRec{evict: o.UID()})
	// Lock the created instance exclusively until commit.
	if err := t.m.locks.Lock(t.id, lock.InstanceGranule(o.UID()), lock.X); err != nil {
		return nil, err
	}
	return o, nil
}

// Attach makes child a component of parent within the transaction.
func (t *Txn) Attach(parent uid.UID, attr string, child uid.UID) error {
	if err := t.check(); err != nil {
		return err
	}
	for _, id := range []uid.UID{parent, child} {
		if err := t.m.proto.LockInstance(t.id, id, true); err != nil {
			return err
		}
		if err := t.snapshot(id); err != nil {
			return err
		}
	}
	return t.m.engine.Attach(parent, attr, child)
}

// Detach removes the parent-child reference within the transaction.
func (t *Txn) Detach(parent uid.UID, attr string, child uid.UID) error {
	if err := t.check(); err != nil {
		return err
	}
	for _, id := range []uid.UID{parent, child} {
		if err := t.m.proto.LockInstance(t.id, id, true); err != nil {
			return err
		}
		if err := t.snapshot(id); err != nil {
			return err
		}
	}
	return t.m.engine.Detach(parent, attr, child)
}

// ReadComposite locks the composite object rooted at root with the §7 read
// protocol and returns root plus all components.
func (t *Txn) ReadComposite(root uid.UID) ([]uid.UID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.m.proto.LockCompositeRead(t.id, root); err != nil {
		return nil, err
	}
	comps, err := t.m.engine.ComponentsOf(root, core.QueryOpts{})
	if err != nil {
		return nil, err
	}
	return append([]uid.UID{root}, comps...), nil
}

// Delete removes the object (cascading per the Deletion Rule) under the
// §7 write protocol applied to every composite object containing it.
func (t *Txn) Delete(id uid.UID) ([]uid.UID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	roots, err := t.m.engine.RootsOf(id)
	if err != nil {
		return nil, err
	}
	for _, r := range roots {
		if err := t.m.proto.LockCompositeWrite(t.id, r); err != nil {
			return nil, err
		}
	}
	// Snapshot everything deletion may touch: the object, its component
	// closure, and the parents of each (forward references are edited).
	affected := uid.NewSet(id)
	comps, err := t.m.engine.ComponentsOf(id, core.QueryOpts{})
	if err != nil {
		return nil, err
	}
	for _, c := range comps {
		affected.Add(c)
	}
	for _, a := range append([]uid.UID{}, affected.Slice()...) {
		o, err := t.m.engine.Get(a)
		if err != nil {
			continue
		}
		for _, r := range o.Reverse() {
			affected.Add(r.Parent)
		}
	}
	for _, a := range affected.Slice() {
		if err := t.snapshot(a); err != nil {
			return nil, err
		}
	}
	return t.m.engine.Delete(id)
}

// Commit ends the transaction, releasing all locks. The undo log is
// discarded.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	t.undo = nil
	t.m.o.commits.Inc()
	if tr := t.m.o.tr; tr.Active() {
		tr.Point(0, "txn.commit", obs.F("tx", t.id))
	}
	t.m.locks.ReleaseAll(t.id)
	return nil
}

// Abort rolls back every change in reverse order and releases all locks.
// Undo actions write through the engine's persistence hook (the WAL is
// redo-only), so a persistence failure surfaces here — every undo record
// is still processed and every lock released before the first such error
// is returned.
func (t *Txn) Abort() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	t.m.o.aborts.Inc()
	if tr := t.m.o.tr; tr.Active() {
		tr.Point(0, "txn.abort", obs.F("tx", t.id), obs.F("undo", len(t.undo)))
	}
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		var err error
		switch {
		case u.restore != nil:
			err = t.m.engine.Restore(u.restore)
		case !u.evict.IsNil():
			err = t.m.engine.Evict(u.evict)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.undo = nil
	t.m.locks.ReleaseAll(t.id)
	return firstErr
}

// Run executes fn in a transaction, committing on nil and aborting on
// error or panic. Deadlock victims are retried up to three times.
func (m *Manager) Run(fn func(*Txn) error) error {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		t := m.Begin()
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Abort()
					panic(r)
				}
			}()
			return fn(t)
		}()
		if err == nil {
			return t.Commit()
		}
		t.Abort()
		if !errors.Is(err, lock.ErrDeadlock) {
			return err
		}
		m.o.deadlockRetries.Inc()
		lastErr = err
	}
	return fmt.Errorf("txn: giving up after deadlock retries: %w", lastErr)
}
