// Package txn provides transactions over the composite-object engine:
// strict two-phase locking through the §7 lock protocols, plus logical
// undo so an aborted transaction leaves no trace.
//
// The granularity follows the paper: reads and writes of single objects
// take IS/S and IX/X locks; operations on composite objects (cascading
// deletes, whole-object reads) take the composite protocol locks
// (IS+S+ISO/ISOS for reads, IX+X+IXO/IXOS for updates). These protocols
// target "conventional short transactions" — the paper notes that
// long-duration design transactions want per-component locking, which
// ReadObject/WriteAttr provide.
package txn

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/uid"
	"repro/internal/value"
)

// ErrDone is returned when a finished transaction is used again.
var ErrDone = errors.New("txn: transaction already committed or aborted")

// Boundary receives transaction outcomes before locks are released. The
// db facade implements it to write the WAL commit/abort records that
// delimit each transaction's group: OnCommit is the durability point
// (under strict 2PL it must complete before any lock is released, or a
// reader could observe state that a crash then rolls back), OnAbort
// seals the group so replay discards it.
type Boundary interface {
	OnCommit(tx core.TxnID) error
	OnAbort(tx core.TxnID) error
}

// Manager creates transactions bound to one engine and lock manager.
type Manager struct {
	engine   *core.Engine
	locks    *lock.Manager
	proto    *lock.Protocol
	next     atomic.Uint64
	boundary Boundary
	o        managerObs

	// profAttach/profDetach are ambient cost-sink hooks: when a
	// transaction turns on profiling (Txn.Profile) the manager calls
	// profAttach so layers the Txn never sees directly — buffer pool,
	// WAL — attribute their activity to the same ProfCtx, and
	// profDetach at commit/abort. The db facade wires them.
	profAttach func(*obs.ProfCtx)
	profDetach func(*obs.ProfCtx)
}

// SetProfHooks installs the ambient profile attach/detach callbacks
// (see Txn.Profile). Call before any transaction begins.
func (m *Manager) SetProfHooks(attach, detach func(*obs.ProfCtx)) {
	m.profAttach, m.profDetach = attach, detach
}

// SetBoundary installs the commit/abort observer. Call before any
// transaction begins.
func (m *Manager) SetBoundary(b Boundary) { m.boundary = b }

// managerObs holds the manager's pre-resolved instruments (see
// internal/obs): transaction lifecycle counters plus the tracer for
// begin/commit/abort points.
type managerObs struct {
	tr              *obs.Tracer
	flight          *obs.FlightRecorder
	begins          *obs.Counter
	commits         *obs.Counter
	aborts          *obs.Counter
	deadlockRetries *obs.Counter
	snapshots       *obs.Counter
}

// NewManager returns a transaction manager over the engine, sharing the
// engine's observability registry with its lock manager.
func NewManager(e *core.Engine) *Manager {
	lm := lock.NewManager()
	m := &Manager{
		engine: e,
		locks:  lm,
		proto:  lock.NewProtocol(lm, e),
	}
	m.SetObservability(e.Observability())
	return m
}

// SetObservability rebinds the manager's instruments — and those of its
// lock manager — to r (nil disables them). Call before concurrent use.
func (m *Manager) SetObservability(r *obs.Registry) {
	m.o = managerObs{
		tr:              r.Tracer(),
		flight:          r.Flight(),
		begins:          r.Counter("txn_begin_total"),
		commits:         r.Counter("txn_commit_total"),
		aborts:          r.Counter("txn_abort_total"),
		deadlockRetries: r.Counter("txn_deadlock_retries_total"),
		snapshots:       r.Counter("txn_snapshot_begin_total"),
	}
	m.locks.SetObservability(r)
}

// Observability returns the engine's registry (shared with the lock
// manager).
func (m *Manager) Observability() *obs.Registry { return m.engine.Observability() }

// Locks exposes the underlying lock manager (for tests and figures).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Protocol exposes the composite lock protocol.
func (m *Manager) Protocol() *lock.Protocol { return m.proto }

// Engine exposes the underlying engine.
func (m *Manager) Engine() *core.Engine { return m.engine }

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	return m.BeginAt(lock.TxID(m.next.Add(1)))
}

// BeginAt starts a transaction with a previously allocated identity. A
// deadlock victim retries with the SAME identity it started with: the
// wait-for victim choice kills the youngest (largest) TxID, so a retry
// under a fresh identity is always the youngest again and can be
// victimized forever under contention. Retaining the original identity
// makes the retrier older than every transaction begun since, so it
// eventually wins its locks (wait-die style starvation avoidance). The
// identity must come from Begin or Reserve and must hold no locks.
func (m *Manager) BeginAt(id lock.TxID) *Txn {
	m.o.begins.Inc()
	if tr := m.o.tr; tr.Active() {
		tr.Point(0, "txn.begin", obs.F("tx", id))
	}
	return &Txn{
		m:  m,
		id: id,
	}
}

// BeginSnapshot starts a read-only snapshot transaction: its snapshot
// sequence — the MVCC analogue of a TxID — is assigned at begin, and
// every query on the returned handle reads the committed state at
// exactly that boundary. Snapshot reads take no §7 locks and never
// appear in the wait-for graph, so they cannot deadlock, cannot be
// victimized, and never block a writer; the handle must be Released
// (not committed or aborted) when done.
func (m *Manager) BeginSnapshot() *core.Snapshot {
	m.o.snapshots.Inc()
	s := m.engine.BeginSnapshot()
	if tr := m.o.tr; tr.Active() {
		tr.Point(0, "txn.snapshot", obs.F("seq", s.Seq()))
	}
	return s
}

// Reserve allocates a transaction identity from the same ID space Begin
// uses, without creating a Txn. The db facade's auto-commit operations
// use it to run composite-unit lock admission against the shared lock
// manager; the caller must ReleaseAll the identity when done.
func (m *Manager) Reserve() lock.TxID {
	return lock.TxID(m.next.Add(1))
}

// SeedNext advances the transaction-ID counter so the next Begin/Reserve
// hands out an ID strictly greater than n. Recovery calls this with the
// highest transaction ID seen in any shard's WAL: with per-shard logs, a
// reused ID could otherwise pair a stale prepare record surviving in one
// shard with a fresh same-ID commit on another shard's log and mis-resolve
// an in-doubt transaction. A no-op when the counter is already past n.
func (m *Manager) SeedNext(n uint64) {
	for {
		cur := m.next.Load()
		if cur >= n || m.next.CompareAndSwap(cur, n) {
			return
		}
	}
}

// undoRec is one logical undo action.
type undoRec struct {
	restore *object.Object // non-nil: put this before-image back
	evict   uid.UID        // non-nil UID: remove this created object
}

// Txn is a transaction. It is not safe for concurrent use by multiple
// goroutines (one goroutine per transaction, many transactions in
// parallel).
type Txn struct {
	m       *Manager
	id      lock.TxID
	undo    []undoRec
	snapped map[uid.UID]bool
	prof    *obs.ProfCtx
	done    bool
}

// Profile turns on cost attribution for the rest of the transaction
// and returns the collector. From this point every traversal the
// transaction runs, every lock it waits for, and — via the manager's
// ambient hooks — every page and WAL frame its writes touch is charged
// to the returned ProfCtx; read it after Commit/Abort (obs.ProfCtx
// methods are safe on a finished context). Idempotent: repeated calls
// return the same collector.
func (t *Txn) Profile() *obs.ProfCtx {
	if t.prof == nil && !t.done {
		t.prof = obs.NewProfCtx(fmt.Sprintf("txn %d", t.id))
		t.m.locks.RegisterProf(t.id, t.prof)
		if t.m.profAttach != nil {
			t.m.profAttach(t.prof)
		}
	}
	return t.prof
}

// finishProf seals the transaction's profile at commit/abort: stops
// the wall clock, detaches the ambient sinks, and drops the flight
// record for the transaction as a whole. The lock-manager registration
// is cleaned up by ReleaseAll.
func (t *Txn) finishProf(op, outcome string) {
	if t.prof == nil {
		return
	}
	t.prof.Finish()
	if t.m.profDetach != nil {
		t.m.profDetach(t.prof)
	}
	if f := t.m.o.flight; f != nil {
		f.Record(op, fmt.Sprintf("tx=%d", t.id), t.prof.Wall(), outcome, t.prof.TopCosts())
	}
}

// ID returns the transaction's lock-manager identity.
func (t *Txn) ID() lock.TxID { return t.id }

// txid returns the identity the engine's persistence hook tags WAL
// records with.
func (t *Txn) txid() core.TxnID { return core.TxnID(t.id) }

func (t *Txn) check() error {
	if t.done {
		return ErrDone
	}
	return nil
}

// snapshot records a before-image of id once per transaction.
func (t *Txn) snapshot(id uid.UID) error {
	if t.snapped == nil {
		t.snapped = make(map[uid.UID]bool)
	}
	if t.snapped[id] {
		return nil
	}
	snap, err := t.m.engine.Snapshot(id)
	if err != nil {
		return err
	}
	t.snapped[id] = true
	t.undo = append(t.undo, undoRec{restore: snap})
	return nil
}

// ReadObject locks the composite units containing id for reading (S on
// each unit root) and returns a private copy. Admitting the read at the
// unit root — not with a bare IS/S instance lock — is what serializes it
// against unit writers, which hold X on the root but no instance locks on
// the components underneath it.
func (t *Txn) ReadObject(id uid.UID) (*object.Object, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.m.proto.LockUnitsRead(t.id, id); err != nil {
		return nil, err
	}
	return t.m.engine.Snapshot(id)
}

// WriteAttr locks the composite units containing id and every object the
// new value references (dropped references are components of id's units
// already) and sets the attribute, recording undo.
func (t *Txn) WriteAttr(id uid.UID, attr string, v value.Value) error {
	if err := t.check(); err != nil {
		return err
	}
	units := append([]uid.UID{id}, v.Refs(nil)...)
	if err := t.m.proto.LockUnitsWrite(t.id, units...); err != nil {
		return err
	}
	// Composite attribute writes touch referenced children too; snapshot
	// every object the diff will touch.
	if err := t.snapshot(id); err != nil {
		return err
	}
	o, err := t.m.engine.Get(id)
	if err != nil {
		return err
	}
	touched := uid.NewSet(o.Get(attr).Refs(nil)...)
	for _, r := range v.Refs(nil) {
		touched.Add(r)
	}
	for _, r := range touched.Slice() {
		if t.m.engine.Exists(r) {
			if err := t.snapshot(r); err != nil {
				return err
			}
		}
	}
	return t.m.engine.SetTx(t.txid(), id, attr, v)
}

// New creates an instance within the transaction: IX on the class, write
// admission to the composite units of every named parent and every object
// the initial attribute values reference, then X on the created instance.
func (t *Txn) New(class string, attrs map[string]value.Value, parents ...core.ParentSpec) (*object.Object, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.m.locks.Lock(t.id, lock.ClassGranule(class), lock.IX); err != nil {
		return nil, err
	}
	var units []uid.UID
	for _, p := range parents {
		units = append(units, p.Parent)
	}
	for _, v := range attrs {
		units = append(units, v.Refs(nil)...)
	}
	if err := t.m.proto.LockUnitsWrite(t.id, units...); err != nil {
		return nil, err
	}
	for _, p := range parents {
		if err := t.snapshot(p.Parent); err != nil {
			return nil, err
		}
	}
	// Attribute values that reference existing objects mutate them too.
	for _, v := range attrs {
		for _, r := range v.Refs(nil) {
			if t.m.engine.Exists(r) {
				if err := t.snapshot(r); err != nil {
					return nil, err
				}
			}
		}
	}
	o, err := t.m.engine.NewTx(t.txid(), class, attrs, parents...)
	if err != nil {
		return nil, err
	}
	t.undo = append(t.undo, undoRec{evict: o.UID()})
	// Lock the created instance exclusively until commit.
	if err := t.m.locks.Lock(t.id, lock.InstanceGranule(o.UID()), lock.X); err != nil {
		return nil, err
	}
	return o, nil
}

// Attach makes child a component of parent within the transaction, with
// write admission to both objects' composite units — the attach may merge
// two hierarchies, which LockUnitsWrite's re-resolution loop handles.
func (t *Txn) Attach(parent uid.UID, attr string, child uid.UID) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.m.proto.LockUnitsWrite(t.id, parent, child); err != nil {
		return err
	}
	for _, id := range []uid.UID{parent, child} {
		if err := t.snapshot(id); err != nil {
			return err
		}
	}
	return t.m.engine.AttachTx(t.txid(), parent, attr, child)
}

// Detach removes the parent-child reference within the transaction. The
// child may no longer exist — a weak (non-composite) reference dangles
// after its target is deleted, and detaching is exactly how such a
// reference is cleaned up — so a missing child snapshot is tolerated:
// with no child object there is no child state to undo, and the engine's
// Detach likewise skips reverse-reference maintenance for it.
func (t *Txn) Detach(parent uid.UID, attr string, child uid.UID) error {
	if err := t.check(); err != nil {
		return err
	}
	if err := t.m.proto.LockUnitsWrite(t.id, parent, child); err != nil {
		return err
	}
	for _, id := range []uid.UID{parent, child} {
		if err := t.snapshot(id); err != nil {
			if id == child && errors.Is(err, core.ErrNoObject) {
				continue
			}
			return err
		}
	}
	return t.m.engine.DetachTx(t.txid(), parent, attr, child)
}

// ReadComposite locks the composite object rooted at root with the §7 read
// protocol and returns root plus all components.
func (t *Txn) ReadComposite(root uid.UID) ([]uid.UID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.m.proto.LockCompositeRead(t.id, root); err != nil {
		return nil, err
	}
	comps, err := t.m.engine.ComponentsOf(root, core.QueryOpts{Prof: t.prof})
	if err != nil {
		return nil, err
	}
	return append([]uid.UID{root}, comps...), nil
}

// Delete removes the object (cascading per the Deletion Rule) under the
// §7 write protocol applied to every composite object containing it.
func (t *Txn) Delete(id uid.UID) ([]uid.UID, error) {
	if err := t.check(); err != nil {
		return nil, err
	}
	if err := t.m.proto.LockForDelete(t.id, id); err != nil {
		return nil, err
	}
	// Snapshot everything deletion may touch: the object, its component
	// closure, and the parents of each (forward references are edited).
	affected := uid.NewSet(id)
	comps, err := t.m.engine.ComponentsOf(id, core.QueryOpts{Prof: t.prof})
	if err != nil {
		return nil, err
	}
	for _, c := range comps {
		affected.Add(c)
	}
	for _, a := range append([]uid.UID{}, affected.Slice()...) {
		o, err := t.m.engine.Get(a)
		if err != nil {
			continue
		}
		for _, r := range o.Reverse() {
			affected.Add(r.Parent)
		}
	}
	for _, a := range affected.Slice() {
		if err := t.snapshot(a); err != nil {
			return nil, err
		}
	}
	return t.m.engine.DeleteTx(t.txid(), id)
}

// Commit ends the transaction: the boundary makes its WAL group durable
// (OnCommit — the commit record, fsynced under SyncWAL via group
// commit), then every lock is released and the undo log discarded. The
// ordering is load-bearing: releasing locks before the commit record is
// durable would let a reader observe state a crash then rolls back. On a
// boundary error the locks are still released and the error returned —
// the transaction's effects remain in memory but are not durable, and
// replay discards its unsealed WAL group.
func (t *Txn) Commit() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	t.undo = nil
	var err error
	if t.m.boundary != nil {
		err = t.m.boundary.OnCommit(t.txid())
	}
	if tr := t.m.o.tr; tr.Active() {
		tr.Point(0, "txn.commit", obs.F("tx", t.id))
	}
	// Publish the write set as one MVCC commit boundary before any lock
	// is released: the X locks keep the set quiescent while it is cloned,
	// and a snapshot begun from here on sees all of it or none. Installed
	// even on a boundary error — the in-memory effects persist either way.
	t.m.engine.CommitVersions(t.txid())
	outcome := "ok"
	if err != nil {
		outcome = "err"
	}
	t.finishProf("txn.commit", outcome)
	t.m.locks.ReleaseAll(t.id)
	if err != nil {
		return err
	}
	t.m.o.commits.Inc()
	return nil
}

// Abort rolls back every change in reverse order and releases all locks.
// Undo actions write through the engine's persistence hook tagged with
// this transaction, so both the forward writes and these compensating
// writes land in the same WAL group — which OnAbort then seals with an
// abort record, making replay discard the whole group. A persistence
// failure surfaces here; every undo record is still processed and every
// lock released before the first such error is returned.
func (t *Txn) Abort() error {
	if err := t.check(); err != nil {
		return err
	}
	t.done = true
	t.m.o.aborts.Inc()
	if tr := t.m.o.tr; tr.Active() {
		tr.Point(0, "txn.abort", obs.F("tx", t.id), obs.F("undo", len(t.undo)))
	}
	var firstErr error
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		var err error
		switch {
		case u.restore != nil:
			err = t.m.engine.RestoreTx(t.txid(), u.restore)
		case !u.evict.IsNil():
			err = t.m.engine.EvictTx(t.txid(), u.evict)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.undo = nil
	// Drop the transaction's accumulated version write set (forward
	// writes and the compensations above alike): the chains stay at the
	// pre-transaction boundary, which the rolled-back live state equals.
	t.m.engine.AbortVersions(t.txid())
	if t.m.boundary != nil {
		if err := t.m.boundary.OnAbort(t.txid()); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.finishProf("txn.abort", "abort")
	t.m.locks.ReleaseAll(t.id)
	return firstErr
}

// Run executes fn in a transaction, committing on nil and aborting on
// error or panic. Deadlock victims are retried up to three times,
// keeping their original identity (see BeginAt) so a retry is not
// re-victimized as the perpetual youngest.
func (m *Manager) Run(fn func(*Txn) error) error {
	var lastErr error
	id := lock.TxID(m.next.Add(1))
	for attempt := 0; attempt < 3; attempt++ {
		t := m.BeginAt(id)
		err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					t.Abort()
					panic(r)
				}
			}()
			return fn(t)
		}()
		if err == nil {
			return t.Commit()
		}
		t.Abort()
		if !errors.Is(err, lock.ErrDeadlock) {
			return err
		}
		m.o.deadlockRetries.Inc()
		lastErr = err
		// Back off before retrying: an immediate retry can re-acquire its
		// locks and re-form the same cycle before the parked survivor has
		// even been scheduled, burning every attempt against one victim.
		time.Sleep(time.Duration(1<<attempt) * time.Millisecond)
	}
	return fmt.Errorf("txn: giving up after deadlock retries: %w", lastErr)
}
