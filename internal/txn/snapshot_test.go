package txn

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/uid"
	"repro/internal/value"
)

// TestSnapshotAtomicCommit: version boundaries are installed at commit,
// so a snapshot begun mid-transaction sees none of its writes — even
// while the writer holds §7 X locks on the objects being read — and a
// snapshot begun after commit sees all of them at once.
func TestSnapshotAtomicCommit(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)

	setup := m.Begin()
	doc, err := setup.New("Document", map[string]value.Value{"Title": value.Str("v1")})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	tx := m.Begin()
	if err := tx.WriteAttr(doc.UID(), "Title", value.Str("v2")); err != nil {
		t.Fatal(err)
	}
	para, err := tx.New("Paragraph", nil, core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err != nil {
		t.Fatal(err)
	}

	// Mid-transaction snapshot: the writer holds X locks on doc, yet the
	// query below must complete immediately (it takes no §7 locks) and
	// must see the pre-transaction state.
	mid := m.BeginSnapshot()
	done := make(chan error, 1)
	go func() {
		o, err := mid.Get(doc.UID())
		if err != nil {
			done <- err
			return
		}
		if got, _ := o.Get("Title").AsString(); got != "v1" {
			t.Errorf("mid-txn snapshot Title = %q, want %q", got, "v1")
		}
		if mid.Exists(para.UID()) {
			t.Error("mid-txn snapshot sees uncommitted creation")
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("snapshot read blocked behind a writer's X locks")
	}
	mid.Release()

	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	// Post-commit snapshot: both writes appear together.
	after := m.BeginSnapshot()
	defer after.Release()
	o, err := after.Get(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := o.Get("Title").AsString(); got != "v2" {
		t.Fatalf("post-commit snapshot Title = %q, want %q", got, "v2")
	}
	comps, err := after.ComponentsOf(doc.UID(), core.QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || comps[0] != para.UID() {
		t.Fatalf("post-commit snapshot components = %v, want [%v]", comps, para.UID())
	}
}

// TestSnapshotAbortInvisible: an aborted transaction installs no version
// boundary — snapshots begun after the abort see the pre-transaction
// state, and the version store is not polluted by the undo writes.
func TestSnapshotAbortInvisible(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)

	setup := m.Begin()
	doc, err := setup.New("Document", map[string]value.Value{"Title": value.Str("keep")})
	if err != nil {
		t.Fatal(err)
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}
	liveBefore := e.VersionsLive()

	tx := m.Begin()
	if err := tx.WriteAttr(doc.UID(), "Title", value.Str("drop")); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.New("Paragraph", nil, core.ParentSpec{Parent: doc.UID(), Attr: "Paras"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}

	snap := m.BeginSnapshot()
	defer snap.Release()
	o, err := snap.Get(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := o.Get("Title").AsString(); got != "keep" {
		t.Fatalf("snapshot after abort: Title = %q, want %q", got, "keep")
	}
	if snap.Len() != 1 {
		t.Fatalf("snapshot after abort: Len = %d, want 1", snap.Len())
	}
	if live := e.VersionsLive(); live != liveBefore {
		t.Fatalf("abort changed mvcc_versions_live: %d -> %d", liveBefore, live)
	}
}

// TestSnapshotZeroLocks asserts the acceptance criterion directly: a
// full sweep of snapshot queries acquires zero §7 locks, measured by the
// lock manager's own lock_acquire_total / lock_wait_total instruments.
func TestSnapshotZeroLocks(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)

	tx := m.Begin()
	doc, err := tx.New("Document", map[string]value.Value{"Title": value.Str("d")})
	if err != nil {
		t.Fatal(err)
	}
	paras := make([]uid.UID, 0, 4)
	for i := 0; i < 4; i++ {
		p, err := tx.New("Paragraph", nil, core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
		if err != nil {
			t.Fatal(err)
		}
		paras = append(paras, p.UID())
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	reg := m.Observability()
	acquires := reg.Counter("lock_acquire_total")
	waits := reg.Counter("lock_wait_total")
	acqBefore, waitBefore := acquires.Load(), waits.Load()

	snap := m.BeginSnapshot()
	if _, err := snap.Get(doc.UID()); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.ComponentsOf(doc.UID(), core.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.AncestorsOf(paras[0], core.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.ParentsOf(paras[1], core.QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Partitions(paras[2]); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.RootsOf(paras[3]); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.ComponentOf(paras[0], doc.UID()); err != nil {
		t.Fatal(err)
	}
	snap.Release()

	if d := acquires.Load() - acqBefore; d != 0 {
		t.Fatalf("snapshot queries acquired %d §7 locks, want 0", d)
	}
	if d := waits.Load() - waitBefore; d != 0 {
		t.Fatalf("snapshot queries waited on %d §7 locks, want 0", d)
	}
}
