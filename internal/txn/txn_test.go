package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func docEngine(t *testing.T) *core.Engine {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Paragraph", Attributes: []schema.AttrSpec{
		schema.NewAttr("Text", schema.StringDomain),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Document", Attributes: []schema.AttrSpec{
		schema.NewAttr("Title", schema.StringDomain),
		schema.NewCompositeSetAttr("Paras", "Paragraph"), // dependent exclusive
	}}); err != nil {
		t.Fatal(err)
	}
	return core.NewEngine(cat)
}

func TestCommitMakesChangesDurable(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	tx := m.Begin()
	doc, err := tx.New("Document", map[string]value.Value{"Title": value.Str("d")})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !e.Exists(doc.UID()) {
		t.Fatal("committed object missing")
	}
	if m.Locks().LockCount(tx.ID()) != 0 {
		t.Fatal("locks survived commit")
	}
	// Using a finished transaction errors.
	if _, err := tx.New("Document", nil); !errors.Is(err, ErrDone) {
		t.Fatalf("use after commit: %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("double commit: %v", err)
	}
}

func TestAbortRollsBackCreation(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	tx := m.Begin()
	doc, _ := tx.New("Document", nil)
	para, err := tx.New("Paragraph", nil, core.ParentSpec{Parent: doc.UID(), Attr: "Paras"})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if e.Exists(doc.UID()) || e.Exists(para.UID()) {
		t.Fatal("aborted creations persisted")
	}
	if len(e.Integrity()) != 0 {
		t.Fatalf("integrity after abort: %v", e.Integrity())
	}
}

func TestAbortRollsBackWrite(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	var doc uid.UID
	if err := m.Run(func(tx *Txn) error {
		o, err := tx.New("Document", map[string]value.Value{"Title": value.Str("before")})
		doc = o.UID()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin()
	if err := tx.WriteAttr(doc, "Title", value.Str("after")); err != nil {
		t.Fatal(err)
	}
	o, _ := e.Get(doc)
	if s, _ := o.Get("Title").AsString(); s != "after" {
		t.Fatal("write not visible inside txn")
	}
	tx.Abort()
	o, _ = e.Get(doc)
	if s, _ := o.Get("Title").AsString(); s != "before" {
		t.Fatalf("Title after abort = %q", s)
	}
}

func TestAbortRollsBackAttachDetach(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	var doc, para uid.UID
	m.Run(func(tx *Txn) error {
		d, _ := tx.New("Document", nil)
		p, _ := tx.New("Paragraph", nil)
		doc, para = d.UID(), p.UID()
		return nil
	})
	tx := m.Begin()
	if err := tx.Attach(doc, "Paras", para); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	po, _ := e.Get(para)
	if po.HasAnyReverse() {
		t.Fatal("attach survived abort")
	}
	do, _ := e.Get(doc)
	if do.Get("Paras").ContainsRef(para) {
		t.Fatal("forward ref survived abort")
	}
	if len(e.Integrity()) != 0 {
		t.Fatalf("integrity: %v", e.Integrity())
	}
}

func TestAbortRollsBackCascadingDelete(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	var doc, p1, p2 uid.UID
	m.Run(func(tx *Txn) error {
		d, _ := tx.New("Document", map[string]value.Value{"Title": value.Str("keep")})
		doc = d.UID()
		a, _ := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("one")},
			core.ParentSpec{Parent: doc, Attr: "Paras"})
		b, _ := tx.New("Paragraph", map[string]value.Value{"Text": value.Str("two")},
			core.ParentSpec{Parent: doc, Attr: "Paras"})
		p1, p2 = a.UID(), b.UID()
		return nil
	})
	tx := m.Begin()
	deleted, err := tx.Delete(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 3 {
		t.Fatalf("deleted = %v", deleted)
	}
	tx.Abort()
	// Everything is back, including reverse refs and attribute values.
	for _, id := range []uid.UID{doc, p1, p2} {
		if !e.Exists(id) {
			t.Fatalf("%v not restored", id)
		}
	}
	do, _ := e.Get(doc)
	if !do.Get("Paras").ContainsRef(p1) || !do.Get("Paras").ContainsRef(p2) {
		t.Fatal("forward refs not restored")
	}
	po, _ := e.Get(p1)
	if !po.HasReverse(doc) {
		t.Fatal("reverse ref not restored")
	}
	if s, _ := po.Get("Text").AsString(); s != "one" {
		t.Fatal("attribute value not restored")
	}
	if len(e.Integrity()) != 0 {
		t.Fatalf("integrity: %v", e.Integrity())
	}
}

func TestReadCommittedIsolationViaLocks(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	var doc uid.UID
	m.Run(func(tx *Txn) error {
		d, err := tx.New("Document", map[string]value.Value{"Title": value.Str("v0")})
		doc = d.UID()
		return err
	})
	// Writer holds X; reader blocks until the writer finishes.
	w := m.Begin()
	if err := w.WriteAttr(doc, "Title", value.Str("v1")); err != nil {
		t.Fatal(err)
	}
	got := make(chan string, 1)
	go func() {
		var title string
		err := m.Run(func(tx *Txn) error {
			o, err := tx.ReadObject(doc)
			if err != nil {
				return err
			}
			title, _ = o.Get("Title").AsString()
			return nil
		})
		if err != nil {
			got <- "error: " + err.Error()
			return
		}
		got <- title
	}()
	select {
	case v := <-got:
		t.Fatalf("reader returned %q while writer held X", v)
	case <-time.After(50 * time.Millisecond):
	}
	w.Commit()
	select {
	case v := <-got:
		if v != "v1" {
			t.Fatalf("reader saw %q, want v1", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reader stuck after writer commit")
	}
}

func TestConcurrentTransfersKeepInvariant(t *testing.T) {
	// Concurrent transactions move paragraphs between two documents; the
	// total paragraph count and topology invariants must hold throughout.
	e := docEngine(t)
	m := NewManager(e)
	var d1, d2 uid.UID
	var paras []uid.UID
	m.Run(func(tx *Txn) error {
		a, _ := tx.New("Document", nil)
		b, _ := tx.New("Document", nil)
		d1, d2 = a.UID(), b.UID()
		for i := 0; i < 8; i++ {
			p, err := tx.New("Paragraph", nil, core.ParentSpec{Parent: d1, Attr: "Paras"})
			if err != nil {
				return err
			}
			paras = append(paras, p.UID())
		}
		return nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := paras[(w*20+i)%len(paras)]
				err := m.Run(func(tx *Txn) error {
					// Move p to whichever document doesn't hold it.
					from, to := d1, d2
					o, err := tx.ReadObject(p)
					if err != nil {
						return err
					}
					if o.HasReverse(d2) {
						from, to = d2, d1
					}
					if err := tx.Detach(from, "Paras", p); err != nil {
						return err
					}
					return tx.Attach(to, "Paras", p)
				})
				if err != nil && !errors.Is(err, core.ErrNotReferenced) {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if len(e.Integrity()) != 0 {
		t.Fatalf("integrity: %v", e.Integrity())
	}
	// All paragraphs still exist, each in exactly one document.
	for _, p := range paras {
		o, err := e.Get(p)
		if err != nil {
			t.Fatalf("paragraph lost: %v", err)
		}
		if len(o.Reverse()) != 1 {
			t.Fatalf("paragraph %v has %d parents", p, len(o.Reverse()))
		}
	}
}

func TestRunRetriesDeadlock(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	var a, b uid.UID
	m.Run(func(tx *Txn) error {
		x, _ := tx.New("Document", nil)
		y, _ := tx.New("Document", nil)
		a, b = x.UID(), y.UID()
		return nil
	})
	// Two goroutines lock a,b in opposite orders repeatedly; Run's retry
	// must let both complete.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			first, second := a, b
			if w == 1 {
				first, second = b, a
			}
			for i := 0; i < 10; i++ {
				err := m.Run(func(tx *Txn) error {
					if err := tx.WriteAttr(first, "Title", value.Str("w")); err != nil {
						return err
					}
					return tx.WriteAttr(second, "Title", value.Str("w"))
				})
				if err != nil && !errors.Is(err, lock.ErrDeadlock) {
					t.Errorf("run: %v", err)
					return
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock retry loop hung")
	}
}

func TestReadCompositeLocksProtocol(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	var doc, para uid.UID
	m.Run(func(tx *Txn) error {
		d, _ := tx.New("Document", nil)
		doc = d.UID()
		p, err := tx.New("Paragraph", nil, core.ParentSpec{Parent: doc, Attr: "Paras"})
		para = p.UID()
		return err
	})
	tx := m.Begin()
	defer tx.Commit()
	got, err := tx.ReadComposite(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != doc || got[1] != para {
		t.Fatalf("ReadComposite = %v", got)
	}
	// The protocol locks are in place: ISO on the component class.
	if !m.Locks().Holds(tx.ID(), lock.ClassGranule("Paragraph"), lock.ISO) {
		t.Fatal("ISO not held on component class")
	}
	// A concurrent direct writer of the paragraph must block (IX vs ISO).
	if ok := m.Locks().TryLock(999, lock.ClassGranule("Paragraph"), lock.IX); ok {
		t.Fatal("IX granted against ISO")
	}
}

func TestTxnErrorPaths(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	if m.Engine() != e || m.Protocol() == nil {
		t.Fatal("accessors broken")
	}
	ghost := uid.UID{Class: 99, Serial: 1}
	tx := m.Begin()
	if _, err := tx.ReadObject(ghost); err == nil {
		t.Fatal("read of ghost succeeded")
	}
	if err := tx.WriteAttr(ghost, "Title", value.Str("x")); err == nil {
		t.Fatal("write of ghost succeeded")
	}
	if _, err := tx.Delete(ghost); err == nil {
		t.Fatal("delete of ghost succeeded")
	}
	if err := tx.Attach(ghost, "Paras", ghost); err == nil {
		t.Fatal("attach of ghosts succeeded")
	}
	if _, err := tx.ReadComposite(ghost); err == nil {
		t.Fatal("read-composite of ghost succeeded")
	}
	if _, err := tx.New("Ghost", nil); err == nil {
		t.Fatal("new of ghost class succeeded")
	}
	tx.Abort()
	// Every operation on a finished txn returns ErrDone.
	if _, err := tx.ReadObject(ghost); !errors.Is(err, ErrDone) {
		t.Fatalf("read after abort: %v", err)
	}
	if err := tx.WriteAttr(ghost, "T", value.Nil); !errors.Is(err, ErrDone) {
		t.Fatalf("write after abort: %v", err)
	}
	if err := tx.Attach(ghost, "a", ghost); !errors.Is(err, ErrDone) {
		t.Fatalf("attach after abort: %v", err)
	}
	if err := tx.Detach(ghost, "a", ghost); !errors.Is(err, ErrDone) {
		t.Fatalf("detach after abort: %v", err)
	}
	if _, err := tx.Delete(ghost); !errors.Is(err, ErrDone) {
		t.Fatalf("delete after abort: %v", err)
	}
	if _, err := tx.ReadComposite(ghost); !errors.Is(err, ErrDone) {
		t.Fatalf("read-composite after abort: %v", err)
	}
	if _, err := tx.New("Document", nil); !errors.Is(err, ErrDone) {
		t.Fatalf("new after abort: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrDone) {
		t.Fatalf("double abort: %v", err)
	}
}

func TestRunPropagatesNonDeadlockErrors(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	sentinel := errors.New("boom")
	calls := 0
	err := m.Run(func(tx *Txn) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v", err)
	}
	if calls != 1 {
		t.Fatalf("non-deadlock error retried %d times", calls)
	}
}

func TestRunRecoversLocksOnPanic(t *testing.T) {
	e := docEngine(t)
	m := NewManager(e)
	var doc uid.UID
	m.Run(func(tx *Txn) error {
		o, err := tx.New("Document", nil)
		doc = o.UID()
		return err
	})
	func() {
		defer func() { recover() }()
		m.Run(func(tx *Txn) error {
			if err := tx.WriteAttr(doc, "Title", value.Str("x")); err != nil {
				return err
			}
			panic("kaboom")
		})
	}()
	// The panicking transaction's locks were released; a new writer
	// proceeds and the write was rolled back.
	if err := m.Run(func(tx *Txn) error {
		o, err := tx.ReadObject(doc)
		if err != nil {
			return err
		}
		if o.Has("Title") {
			t.Error("panicked write survived")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAttrDetachesOldCompositeChildren(t *testing.T) {
	// Overwriting a composite set through a transaction unlinks the
	// removed children and undo restores them.
	e := docEngine(t)
	m := NewManager(e)
	var doc, p1, p2 uid.UID
	m.Run(func(tx *Txn) error {
		d, _ := tx.New("Document", nil)
		doc = d.UID()
		a, _ := tx.New("Paragraph", nil, core.ParentSpec{Parent: doc, Attr: "Paras"})
		b, _ := tx.New("Paragraph", nil)
		p1, p2 = a.UID(), b.UID()
		return nil
	})
	tx := m.Begin()
	if err := tx.WriteAttr(doc, "Paras", value.RefSet(p2)); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	o1, _ := e.Get(p1)
	o2, _ := e.Get(p2)
	if !o1.HasReverse(doc) || o2.HasReverse(doc) {
		t.Fatal("abort did not restore the composite diff")
	}
	if len(e.Integrity()) != 0 {
		t.Fatalf("integrity: %v", e.Integrity())
	}
}
