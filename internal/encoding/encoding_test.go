package encoding

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/object"
	"repro/internal/uid"
	"repro/internal/value"
)

func u(c uint32, s uint64) uid.UID { return uid.UID{Class: uid.ClassID(c), Serial: s} }

func roundTripValue(t *testing.T, v value.Value) {
	t.Helper()
	b := AppendValue(nil, v)
	got, rest, err := DecodeValue(b)
	if err != nil {
		t.Fatalf("DecodeValue(%v): %v", v, err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeValue(%v) left %d bytes", v, len(rest))
	}
	if !got.Equal(v) {
		t.Fatalf("round trip: got %v, want %v", got, v)
	}
}

func TestValueRoundTrips(t *testing.T) {
	cases := []value.Value{
		value.Nil,
		value.Int(0),
		value.Int(-1),
		value.Int(math.MaxInt64),
		value.Int(math.MinInt64),
		value.Real(0),
		value.Real(-2.75),
		value.Real(math.Inf(1)),
		value.Str(""),
		value.Str("hello, 世界"),
		value.Bool(true),
		value.Bool(false),
		value.Ref(u(7, 9)),
		value.SetOf(),
		value.SetOf(value.Int(1), value.Str("a")),
		value.ListOf(value.ListOf(value.Ref(u(1, 1))), value.Nil),
	}
	for _, v := range cases {
		roundTripValue(t, v)
	}
}

func TestValueRoundTripNaN(t *testing.T) {
	b := AppendValue(nil, value.Real(math.NaN()))
	got, _, err := DecodeValue(b)
	if err != nil {
		t.Fatal(err)
	}
	f, _ := got.AsReal()
	if !math.IsNaN(f) {
		t.Fatalf("NaN round trip = %v", f)
	}
}

func TestUIDRoundTrip(t *testing.T) {
	for _, id := range []uid.UID{uid.Nil, u(1, 1), u(math.MaxUint32, math.MaxUint64)} {
		b := AppendUID(nil, id)
		got, rest, err := DecodeUID(b)
		if err != nil || len(rest) != 0 || got != id {
			t.Fatalf("uid round trip %v -> %v, rest %d, err %v", id, got, len(rest), err)
		}
	}
}

func TestObjectRoundTrip(t *testing.T) {
	o := object.New(u(3, 44))
	o.SetCC(17)
	o.Set("Name", value.Str("chassis"))
	o.Set("Parts", value.RefSet(u(4, 1), u(4, 2)))
	o.Set("Weight", value.Real(12.5))
	o.AddReverse(object.ReverseRef{Parent: u(2, 9), Dependent: true, Exclusive: true})
	o.AddReverse(object.ReverseRef{Parent: u(2, 10), Dependent: false, Exclusive: false, Count: 3})

	b := EncodeObject(o)
	got, err := DecodeObject(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.UID() != o.UID() || got.CC() != o.CC() {
		t.Fatalf("identity: got %v/%d", got.UID(), got.CC())
	}
	for _, n := range o.AttrNames() {
		if !got.Get(n).Equal(o.Get(n)) {
			t.Fatalf("attr %s: got %v want %v", n, got.Get(n), o.Get(n))
		}
	}
	if len(got.Reverse()) != 2 {
		t.Fatalf("reverse count = %d", len(got.Reverse()))
	}
	r := got.Reverse()[1]
	if r.Parent != u(2, 10) || r.Dependent || r.Exclusive || r.Count != 3 {
		t.Fatalf("reverse[1] = %+v", r)
	}
}

func TestObjectEncodingDeterministic(t *testing.T) {
	mk := func() *object.Object {
		o := object.New(u(1, 1))
		o.Set("b", value.Int(2))
		o.Set("a", value.Int(1))
		return o
	}
	b1 := EncodeObject(mk())
	// Same attrs inserted in a different order must encode identically.
	o2 := object.New(u(1, 1))
	o2.Set("a", value.Int(1))
	o2.Set("b", value.Int(2))
	b2 := EncodeObject(o2)
	if string(b1) != string(b2) {
		t.Fatal("encoding depends on attribute insertion order")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeObject(nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := DecodeObject([]byte{0x00}); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, _, err := DecodeValue([]byte{200}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("bad kind: %v", err)
	}
	// Truncations at every prefix of a valid record must error, not panic.
	o := object.New(u(3, 44))
	o.Set("Name", value.Str("x"))
	o.AddReverse(object.ReverseRef{Parent: u(2, 9), Dependent: true})
	full := EncodeObject(o)
	for i := 0; i < len(full); i++ {
		if _, err := DecodeObject(full[:i]); err == nil {
			t.Fatalf("DecodeObject of %d/%d byte prefix succeeded", i, len(full))
		}
	}
}

func genValue(r *rand.Rand, depth int) value.Value {
	k := r.Intn(8)
	if depth <= 0 && k >= 6 {
		k = r.Intn(6)
	}
	switch k {
	case 0:
		return value.Nil
	case 1:
		return value.Int(r.Int63() - r.Int63())
	case 2:
		return value.Real(r.NormFloat64())
	case 3:
		buf := make([]byte, r.Intn(20))
		r.Read(buf)
		return value.Str(string(buf))
	case 4:
		return value.Bool(r.Intn(2) == 0)
	case 5:
		return value.Ref(u(uint32(r.Intn(100)+1), uint64(r.Intn(1000)+1)))
	default:
		n := r.Intn(5)
		elems := make([]value.Value, n)
		for i := range elems {
			elems[i] = genValue(r, depth-1)
		}
		if k == 6 {
			return value.SetOf(elems...)
		}
		return value.ListOf(elems...)
	}
}

func TestPropertyValueRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		roundTripValue(t, genValue(r, 4))
	}
}

func TestPropertyObjectRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		o := object.New(u(uint32(r.Intn(50)+1), uint64(i+1)))
		o.SetCC(uint64(r.Intn(1000)))
		for a := 0; a < r.Intn(6); a++ {
			o.Set(string(rune('a'+a)), genValue(r, 3))
		}
		for p := 0; p < r.Intn(4); p++ {
			o.AddReverse(object.ReverseRef{
				Parent:    u(uint32(r.Intn(10)+1), uint64(p+1)),
				Dependent: r.Intn(2) == 0,
				Exclusive: r.Intn(2) == 0,
				Count:     uint32(r.Intn(5)),
			})
		}
		b := EncodeObject(o)
		got, err := DecodeObject(b)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		if got.UID() != o.UID() || got.CC() != o.CC() {
			t.Fatalf("iter %d identity mismatch", i)
		}
		names := o.AttrNames()
		gnames := got.AttrNames()
		if len(names) != len(gnames) {
			t.Fatalf("iter %d attr names %v vs %v", i, names, gnames)
		}
		for _, n := range names {
			if !got.Get(n).Equal(o.Get(n)) {
				t.Fatalf("iter %d attr %q mismatch", i, n)
			}
		}
		if len(got.Reverse()) != len(o.Reverse()) {
			t.Fatalf("iter %d reverse count mismatch", i)
		}
		for j, rr := range o.Reverse() {
			if got.Reverse()[j] != rr {
				t.Fatalf("iter %d reverse[%d] = %+v want %+v", i, j, got.Reverse()[j], rr)
			}
		}
	}
}
