// Package encoding serializes objects and values to the tagged binary
// format stored in slotted pages and the WAL. The format is
// self-describing (every value carries a kind tag) so that objects can be
// decoded without consulting the schema catalog — necessary because
// deferred schema evolution (§4.3) means an object's stored shape may lag
// behind its class definition.
//
// Layout (all integers are varint/uvarint, floats are fixed 8 bytes LE):
//
//	object  := magic(1) uid cc(uvarint) nattrs(uvarint) attr* nrev(uvarint) rev*
//	attr    := name(str) value
//	rev     := uid flags(1) count(uvarint)
//	value   := kind(1) payload
//	uid     := class(uvarint) serial(uvarint)
//	str     := len(uvarint) bytes
package encoding

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/object"
	"repro/internal/uid"
	"repro/internal/value"
)

// magic identifies (and versions) the object record format.
const magic = 0xC0

// Sentinel decode errors.
var (
	ErrTruncated = errors.New("encoding: truncated record")
	ErrBadMagic  = errors.New("encoding: bad magic byte")
	ErrBadKind   = errors.New("encoding: unknown value kind")
)

// AppendUID appends the encoding of u to dst.
func AppendUID(dst []byte, u uid.UID) []byte {
	dst = binary.AppendUvarint(dst, uint64(u.Class))
	return binary.AppendUvarint(dst, u.Serial)
}

// DecodeUID decodes a UID from b, returning the remainder.
func DecodeUID(b []byte) (uid.UID, []byte, error) {
	c, n := binary.Uvarint(b)
	if n <= 0 {
		return uid.Nil, nil, fmt.Errorf("uid class: %w", ErrTruncated)
	}
	b = b[n:]
	s, n := binary.Uvarint(b)
	if n <= 0 {
		return uid.Nil, nil, fmt.Errorf("uid serial: %w", ErrTruncated)
	}
	return uid.UID{Class: uid.ClassID(c), Serial: s}, b[n:], nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return "", nil, fmt.Errorf("string length: %w", ErrTruncated)
	}
	b = b[n:]
	if uint64(len(b)) < l {
		return "", nil, fmt.Errorf("string body: %w", ErrTruncated)
	}
	return string(b[:l]), b[l:], nil
}

// AppendValue appends the encoding of v to dst.
func AppendValue(dst []byte, v value.Value) []byte {
	dst = append(dst, byte(v.Kind()))
	switch v.Kind() {
	case value.KindNil:
	case value.KindInt:
		i, _ := v.AsInt()
		dst = binary.AppendVarint(dst, i)
	case value.KindReal:
		f, _ := v.AsReal()
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	case value.KindString:
		s, _ := v.AsString()
		dst = appendString(dst, s)
	case value.KindBool:
		b, _ := v.AsBool()
		if b {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case value.KindRef:
		r, _ := v.AsRef()
		dst = AppendUID(dst, r)
	case value.KindSet, value.KindList:
		elems := v.Elems()
		dst = binary.AppendUvarint(dst, uint64(len(elems)))
		for _, e := range elems {
			dst = AppendValue(dst, e)
		}
	}
	return dst
}

// DecodeValue decodes a value from b, returning the remainder.
func DecodeValue(b []byte) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Nil, nil, fmt.Errorf("value kind: %w", ErrTruncated)
	}
	k := value.Kind(b[0])
	b = b[1:]
	switch k {
	case value.KindNil:
		return value.Nil, b, nil
	case value.KindInt:
		i, n := binary.Varint(b)
		if n <= 0 {
			return value.Nil, nil, fmt.Errorf("int payload: %w", ErrTruncated)
		}
		return value.Int(i), b[n:], nil
	case value.KindReal:
		if len(b) < 8 {
			return value.Nil, nil, fmt.Errorf("real payload: %w", ErrTruncated)
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(b))
		return value.Real(f), b[8:], nil
	case value.KindString:
		s, rest, err := decodeString(b)
		if err != nil {
			return value.Nil, nil, err
		}
		return value.Str(s), rest, nil
	case value.KindBool:
		if len(b) < 1 {
			return value.Nil, nil, fmt.Errorf("bool payload: %w", ErrTruncated)
		}
		return value.Bool(b[0] != 0), b[1:], nil
	case value.KindRef:
		u, rest, err := DecodeUID(b)
		if err != nil {
			return value.Nil, nil, err
		}
		return value.Ref(u), rest, nil
	case value.KindSet, value.KindList:
		cnt, n := binary.Uvarint(b)
		if n <= 0 {
			return value.Nil, nil, fmt.Errorf("collection count: %w", ErrTruncated)
		}
		b = b[n:]
		// Every element takes at least one byte, so a count exceeding the
		// remaining input is corrupt; rejecting it here also keeps a hostile
		// count from driving a huge preallocation.
		if cnt > uint64(len(b)) {
			return value.Nil, nil, fmt.Errorf("collection count %d exceeds %d remaining bytes: %w",
				cnt, len(b), ErrTruncated)
		}
		elems := make([]value.Value, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			var e value.Value
			var err error
			e, b, err = DecodeValue(b)
			if err != nil {
				return value.Nil, nil, err
			}
			elems = append(elems, e)
		}
		if k == value.KindSet {
			return value.SetOf(elems...), b, nil
		}
		return value.ListOf(elems...), b, nil
	default:
		return value.Nil, nil, fmt.Errorf("kind %d: %w", k, ErrBadKind)
	}
}

// EncodeObject serializes o to a fresh byte slice. Attributes are written
// in sorted-name order so encodings are deterministic.
func EncodeObject(o *object.Object) []byte {
	dst := make([]byte, 0, 64)
	dst = append(dst, magic)
	dst = AppendUID(dst, o.UID())
	dst = binary.AppendUvarint(dst, o.CC())
	names := o.AttrNames()
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = appendString(dst, n)
		dst = AppendValue(dst, o.Get(n))
	}
	revs := o.Reverse()
	dst = binary.AppendUvarint(dst, uint64(len(revs)))
	for _, r := range revs {
		dst = AppendUID(dst, r.Parent)
		var flags byte
		if r.Dependent {
			flags |= 1
		}
		if r.Exclusive {
			flags |= 2
		}
		dst = append(dst, flags)
		dst = binary.AppendUvarint(dst, uint64(r.Count))
	}
	return dst
}

// DecodeObject deserializes an object record.
func DecodeObject(b []byte) (*object.Object, error) {
	if len(b) == 0 {
		return nil, fmt.Errorf("object header: %w", ErrTruncated)
	}
	if b[0] != magic {
		return nil, fmt.Errorf("got 0x%02x: %w", b[0], ErrBadMagic)
	}
	b = b[1:]
	u, b, err := DecodeUID(b)
	if err != nil {
		return nil, err
	}
	o := object.New(u)
	cc, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("object cc: %w", ErrTruncated)
	}
	o.SetCC(cc)
	b = b[n:]
	nattrs, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("attr count: %w", ErrTruncated)
	}
	b = b[n:]
	for i := uint64(0); i < nattrs; i++ {
		var name string
		name, b, err = decodeString(b)
		if err != nil {
			return nil, err
		}
		var v value.Value
		v, b, err = DecodeValue(b)
		if err != nil {
			return nil, err
		}
		o.Set(name, v)
	}
	nrev, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("reverse count: %w", ErrTruncated)
	}
	b = b[n:]
	for i := uint64(0); i < nrev; i++ {
		var p uid.UID
		p, b, err = DecodeUID(b)
		if err != nil {
			return nil, err
		}
		if len(b) < 1 {
			return nil, fmt.Errorf("reverse flags: %w", ErrTruncated)
		}
		flags := b[0]
		b = b[1:]
		cnt, n := binary.Uvarint(b)
		if n <= 0 {
			return nil, fmt.Errorf("reverse count field: %w", ErrTruncated)
		}
		b = b[n:]
		o.AddReverse(object.ReverseRef{
			Parent:    p,
			Dependent: flags&1 != 0,
			Exclusive: flags&2 != 0,
			Count:     uint32(cnt),
		})
	}
	return o, nil
}
