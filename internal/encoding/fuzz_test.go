package encoding

import (
	"testing"

	"repro/internal/object"
	"repro/internal/uid"
	"repro/internal/value"
)

// FuzzDecodeObject: arbitrary bytes must never panic the decoder, and
// anything that decodes must re-encode to a record that decodes to the
// same object (encode∘decode is idempotent).
func FuzzDecodeObject(f *testing.F) {
	// Seed with real encodings.
	o := object.New(uid.UID{Class: 3, Serial: 44})
	o.SetCC(17)
	o.Set("Name", value.Str("chassis"))
	o.Set("Parts", value.RefSet(uid.UID{Class: 4, Serial: 1}, uid.UID{Class: 4, Serial: 2}))
	o.Set("W", value.Real(12.5))
	o.AddReverse(object.ReverseRef{Parent: uid.UID{Class: 2, Serial: 9}, Dependent: true, Exclusive: true})
	f.Add(EncodeObject(o))
	f.Add([]byte{})
	f.Add([]byte{0xC0})
	f.Add([]byte{0xC0, 0x01, 0x01, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		obj, err := DecodeObject(data)
		if err != nil {
			return
		}
		re := EncodeObject(obj)
		again, err := DecodeObject(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.UID() != obj.UID() || again.CC() != obj.CC() {
			t.Fatal("identity changed across re-encode")
		}
		an, bn := obj.AttrNames(), again.AttrNames()
		if len(an) != len(bn) {
			t.Fatalf("attr count changed: %v vs %v", an, bn)
		}
		for i, n := range an {
			if n != bn[i] || !obj.Get(n).Equal(again.Get(n)) {
				t.Fatalf("attr %q changed", n)
			}
		}
		if len(obj.Reverse()) != len(again.Reverse()) {
			t.Fatal("reverse count changed")
		}
		for i, r := range obj.Reverse() {
			if again.Reverse()[i] != r {
				t.Fatalf("reverse[%d] changed", i)
			}
		}
	})
}

// FuzzDecodeValue: same contract for the value codec.
func FuzzDecodeValue(f *testing.F) {
	for _, v := range []value.Value{
		value.Int(-5),
		value.Str("x"),
		value.SetOf(value.Int(1), value.ListOf(value.Bool(true))),
		value.Ref(uid.UID{Class: 1, Serial: 2}),
	} {
		f.Add(AppendValue(nil, v))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeValue(data)
		if err != nil {
			return
		}
		_ = rest
		re := AppendValue(nil, v)
		again, rest2, err := DecodeValue(re)
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-decode: %v (%d left)", err, len(rest2))
		}
		if !again.Equal(v) {
			t.Fatalf("value changed: %v vs %v", v, again)
		}
	})
}
