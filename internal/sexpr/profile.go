package sexpr

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/value"
)

// (profile expr) evaluates expr with a cost collector attached and
// returns the pretty-printed cost tree instead of expr's value: objects
// visited, cache and pool hits/misses, pages read, WAL bytes, versions
// walked, and lock waits, attributed to exactly this evaluation. The
// collector rides the QueryOpts of every §3 query expr issues, the
// active snapshot (if one is pinned), and the db's ambient sinks (pool,
// WAL, lock manager) — the latter are exact because the interpreter
// evaluates serially.
func evalProfile(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (profile expr): %w", ErrEval)
	}
	if in.prof != nil {
		return value.Nil, fmt.Errorf("(profile ...) does not nest: %w", ErrEval)
	}
	p := obs.NewProfCtx(args[0].String())
	in.prof = p
	in.DB.AttachProf(p)
	if in.snap != nil {
		in.snap.SetProf(p)
	}
	v, err := in.Eval(args[0])
	if in.snap != nil {
		in.snap.SetProf(nil)
	}
	in.DB.AttachProf(nil)
	in.prof = nil
	p.Finish()
	in.DB.ObserveProfile(p.Wall())
	if err != nil {
		return value.Nil, err
	}
	return value.Str(p.Report() + "\n  result: " + v.String() + "\n"), nil
}

// (explain expr) describes the plan of a §3 query or a (select ...)
// without executing it: traversal direction, the edge filter and the
// root class's composite-attribute plan, the Definition 1 partition
// sets an upward query consults, whether a select probes an index or
// scans the extent, and which read path (live engine vs pinned MVCC
// snapshot) would serve it.
func evalExplain(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (explain expr): %w", ErrEval)
	}
	n := args[0]
	if n.Kind != NList || len(n.Kids) == 0 || n.Kids[0].Kind != NSym {
		return value.Nil, fmt.Errorf("(explain ...) wants a query form, got %s: %w", n, ErrEval)
	}
	op := strings.ToLower(n.Kids[0].Sym)
	var b strings.Builder
	fmt.Fprintf(&b, "explain %s\n  op: %s\n", n, op)
	switch op {
	case "components-of":
		return in.explainTraversal(&b, op, n.Kids[1:], true)
	case "parents-of", "ancestors-of":
		return in.explainTraversal(&b, op, n.Kids[1:], false)
	case "roots-of":
		b.WriteString(in.sourceLine())
		b.WriteString("  direction: up, to fixpoint (roots = ancestors with no parents)\n")
		b.WriteString("  partitions: IX + DX + IS + DS (all reverse references)\n")
		b.WriteString("  cache: ancestor closure cache consulted per node\n")
		return value.Str(b.String()), nil
	case "get":
		b.WriteString(in.sourceLine())
		b.WriteString("  access: direct object fetch by UID (no traversal)\n")
		return value.Str(b.String()), nil
	case "select":
		return in.explainSelect(&b, n.Kids[1:])
	default:
		b.WriteString("  no static plan for this form; (profile ...) executes it and measures\n")
		return value.Str(b.String()), nil
	}
}

// sourceLine reports which read path serves the query.
func (in *Interp) sourceLine() string {
	if in.snap != nil {
		return fmt.Sprintf("  source: mvcc snapshot seq=%d (lock-free version-chain reads)\n", in.snap.Seq())
	}
	return "  source: live engine (latched reads; ancestor/partition/plan caches)\n"
}

// explainTraversal describes components-of (down) and parents-of /
// ancestors-of (up).
func (in *Interp) explainTraversal(b *strings.Builder, op string, args []Node, down bool) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (explain (%s obj ...)): %w", op, ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	q, err := in.parseQueryOpts(args[1:])
	if err != nil {
		return value.Nil, err
	}
	b.WriteString(in.sourceLine())
	className := "?"
	if cl, err := in.DB.Catalog().ClassByID(id.Class); err == nil {
		className = cl.Name
	}
	fmt.Fprintf(b, "  root: %s class %s\n", value.Ref(id), className)
	edges := "all composite attributes"
	switch {
	case q.Exclusive:
		edges = "exclusive composite attributes only"
	case q.Shared:
		edges = "shared composite attributes only"
	}
	if down {
		fmt.Fprintf(b, "  direction: down (forward composite references)\n  edges: %s\n", edges)
		if attrs, err := in.DB.Catalog().Attributes(className); err == nil {
			b.WriteString(planLine(className, attrs, q.Exclusive, q.Shared))
		}
		b.WriteString("  (plans for other classes resolve from the plan cache as the walk reaches them)\n")
	} else {
		parts := "IX + DX + IS + DS (all reverse references)"
		switch {
		case q.Exclusive:
			parts = "IX + DX (exclusive reverse references)"
		case q.Shared:
			parts = "IS + DS (shared reverse references)"
		}
		depth := "one level (direct parents)"
		if op == "ancestors-of" {
			depth = "to fixpoint (ancestor cache consulted per node)"
		}
		fmt.Fprintf(b, "  direction: up, %s\n  partitions: %s\n", depth, parts)
	}
	if q.Level > 0 {
		fmt.Fprintf(b, "  level: bounded to %d\n", q.Level)
	} else {
		b.WriteString("  level: unbounded\n")
	}
	if len(q.Classes) > 0 {
		fmt.Fprintf(b, "  classes: results filtered to %s (and subclasses)\n", strings.Join(q.Classes, ", "))
	}
	return value.Str(b.String()), nil
}

// planLine renders the root class's composite-attribute plan under the
// edge filter — the same attribute set walker.planFor would compute.
func planLine(class string, attrs []schema.AttrSpec, exclusive, shared bool) string {
	var parts []string
	for _, a := range attrs {
		if !a.Composite {
			continue
		}
		if exclusive && !a.Exclusive {
			continue
		}
		if shared && a.Exclusive {
			continue
		}
		tag := "shared"
		if a.Exclusive {
			tag = "exclusive"
		}
		if a.Dependent {
			tag += " dependent"
		}
		parts = append(parts, fmt.Sprintf("%s (%s)", a.Name, tag))
	}
	if len(parts) == 0 {
		return fmt.Sprintf("  plan %s: no composite attributes pass the filter (empty traversal)\n", class)
	}
	return fmt.Sprintf("  plan %s: %s\n", class, strings.Join(parts, ", "))
}

// explainSelect reports index probe vs extent scan for (select ...).
func (in *Interp) explainSelect(b *strings.Builder, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (explain (select Class ...)): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	_, kw, _, err := splitKeywords(args[1:])
	if err != nil {
		return value.Nil, err
	}
	deep := false
	if v, ok := kw["deep"]; ok {
		deep, _ = boolArg(v)
	}
	b.WriteString(in.sourceLine())
	scope := class
	if deep {
		scope += " and subclasses"
	}
	where, hasWhere := kw["where"]
	if attr, ok := indexableEq(where, hasWhere); ok && in.DB.Indexes().Has(class, attr) {
		fmt.Fprintf(b, "  access: index probe on %s.%s, residual predicate on matches\n", class, attr)
	} else {
		fmt.Fprintf(b, "  access: extent scan over %s\n", scope)
	}
	if !hasWhere {
		b.WriteString("  predicate: none (full extent)\n")
	} else {
		fmt.Fprintf(b, "  predicate: %s\n", where)
	}
	return value.Str(b.String()), nil
}

// indexableEq finds a top-level (= Attr v) equality — directly or as a
// conjunct of (and ...) — whose path is a single attribute, the shape
// SelectIndexed can answer with an index probe.
func indexableEq(n Node, ok bool) (string, bool) {
	if !ok {
		return "", false
	}
	if n.Kind == NQuote {
		return indexableEq(n.Kids[0], true)
	}
	if n.Kind != NList || len(n.Kids) == 0 || n.Kids[0].Kind != NSym {
		return "", false
	}
	switch strings.ToLower(n.Kids[0].Sym) {
	case "=":
		if len(n.Kids) == 3 && n.Kids[1].Kind == NSym {
			return n.Kids[1].Sym, true
		}
	case "and":
		for _, k := range n.Kids[1:] {
			if attr, found := indexableEq(k, true); found {
				return attr, true
			}
		}
	}
	return "", false
}

// (flight dump|clear|status) exposes the always-on black-box flight
// recorder: dump renders the retained per-operation records oldest
// first, clear empties the ring, status returns the record count.
func evalFlight(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (flight dump|clear|status): %w", ErrEval)
	}
	verb, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	f := in.DB.Observability().Flight()
	switch strings.ToLower(verb) {
	case "dump":
		recs := f.Records()
		if len(recs) == 0 {
			return value.Str("flight recorder: empty\n"), nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "flight recorder: %d records\n", len(recs))
		for _, r := range recs {
			b.WriteString("  " + r.String() + "\n")
		}
		return value.Str(b.String()), nil
	case "clear":
		f.Clear()
		return value.Bool(true), nil
	case "status":
		return value.Int(int64(f.Len())), nil
	default:
		return value.Nil, fmt.Errorf("unknown flight verb %q (want dump/clear/status): %w", verb, ErrEval)
	}
}
