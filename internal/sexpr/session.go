package sexpr

import (
	"errors"
	"fmt"

	"repro/internal/lock"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// Session-scoped transaction surface. A network session (one connection
// of cmd/orion-server) is one Interp; (begin) opens an explicit §7
// transaction on it and the mutation messages — make, set, attach,
// detach, delete — route through the transaction until (commit) or
// (abort). With no open transaction each mutation auto-commits through
// the db facade exactly as before, so the embedded shell is unchanged.
//
// (begin N) reopens a transaction under a previously issued identity:
// a client retrying after a deadlock abort passes the id its first
// (begin) returned, so the lock manager's youngest-victim policy cannot
// starve a retrier that keeps losing to fresher transactions (the same
// identity-retention contract as txn.Manager.BeginAt).

// InTxn reports whether the session has an open explicit transaction.
func (in *Interp) InTxn() bool { return in.tx != nil }

// noteDeadlock makes deadlock-victim aborts eager at the session layer.
// When the lock manager picks the session's transaction as a deadlock
// victim, the error surfaces from whatever mutation was in flight — but
// before this hook the transaction object stayed attached to the
// session, so (txn-status) kept reporting it and a follow-up (begin N)
// failed with "transaction already open" even though the transaction was
// dead. Every eval error funnels through here: on a deadlock verdict the
// session aborts the victim immediately (rolling back its effects and
// releasing its §7 locks) and detaches it, so the client's very next
// (begin N) retry succeeds. The abort's own error is absorbed — the
// deadlock verdict is the one the client must see, and the wire code
// (CodeDeadlock) plus the retained identity are its retry contract.
func (in *Interp) noteDeadlock(err error) error {
	if err != nil && in.tx != nil && errors.Is(err, lock.ErrDeadlock) {
		_ = in.tx.Abort()
		in.tx = nil
	}
	return err
}

// TxnID returns the open transaction's identity, or 0 when none is open.
func (in *Interp) TxnID() lock.TxID {
	if in.tx == nil {
		return 0
	}
	return in.tx.ID()
}

// Close releases everything the session pins: an open transaction is
// aborted (rolling back its effects and releasing its §7 locks) and an
// active snapshot is released. Safe to call more than once. The server
// calls this on every connection teardown, clean or abrupt.
func (in *Interp) Close() error {
	var err error
	if in.tx != nil {
		err = in.tx.Abort()
		in.tx = nil
	}
	if in.snap != nil {
		in.snap.Release()
		in.snap = nil
	}
	return err
}

func evalBegin(in *Interp, args []Node) (value.Value, error) {
	if in.tx != nil {
		return value.Nil, fmt.Errorf("transaction %d already open (commit or abort it first): %w", in.tx.ID(), ErrEval)
	}
	switch len(args) {
	case 0:
		in.tx = in.DB.Txns().Begin()
	case 1:
		if args[0].Kind != NInt || args[0].Int <= 0 {
			return value.Nil, fmt.Errorf("usage: (begin [txn-id]): %w", ErrEval)
		}
		in.tx = in.DB.Txns().BeginAt(lock.TxID(args[0].Int))
	default:
		return value.Nil, fmt.Errorf("usage: (begin [txn-id]): %w", ErrEval)
	}
	return value.Int(int64(in.tx.ID())), nil
}

func evalCommit(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 0 {
		return value.Nil, fmt.Errorf("usage: (commit): %w", ErrEval)
	}
	if in.tx == nil {
		return value.Nil, fmt.Errorf("no open transaction: %w", ErrEval)
	}
	err := in.tx.Commit()
	in.tx = nil
	if err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalAbort(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 0 {
		return value.Nil, fmt.Errorf("usage: (abort): %w", ErrEval)
	}
	if in.tx == nil {
		return value.Nil, fmt.Errorf("no open transaction: %w", ErrEval)
	}
	err := in.tx.Abort()
	in.tx = nil
	if err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalTxnStatus(in *Interp, args []Node) (value.Value, error) {
	if in.tx == nil {
		return value.Nil, nil
	}
	return value.Int(int64(in.tx.ID())), nil
}

// evalRefs implements (refs obj ...): a set value over object references.
// The reader has no set literal — sets render as {…} but only for output
// — so this is how a wire client writes a set-valued composite attribute:
// (set p Parts (refs a b)).
func evalRefs(in *Interp, args []Node) (value.Value, error) {
	ids := make([]uid.UID, 0, len(args))
	for _, n := range args {
		id, err := in.objArg(n)
		if err != nil {
			return value.Nil, err
		}
		ids = append(ids, id)
	}
	return value.RefSet(ids...), nil
}

// Wire error codes produced by ErrorCode. The server sends them as the
// first token of an error reply so clients can dispatch on failure class
// without parsing prose; codes, not Go error chains, are the wire
// contract (errors.Is does not survive serialization).
const (
	CodeParse    = "parse"    // the program did not parse
	CodeEval     = "eval"     // evaluation failed (unknown message, bad args, engine rejection)
	CodeDeadlock = "deadlock" // the transaction was a deadlock victim; retry with (begin N)
	CodeTxnDone  = "txn-done" // the transaction already committed or aborted
	CodeError    = "error"    // anything else
)

// ErrorCode classifies an evaluation error for the wire.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, lock.ErrDeadlock):
		return CodeDeadlock
	case errors.Is(err, txn.ErrDone):
		return CodeTxnDone
	case errors.Is(err, ErrParse):
		return CodeParse
	case errors.Is(err, ErrEval):
		return CodeEval
	default:
		return CodeError
	}
}
