package sexpr

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/lock"
	"repro/internal/txn"
	"repro/internal/value"
)

// sessionSchema: a composite hierarchy small enough to drive the
// transaction builtins end to end.
const sessionSchema = `
(make-class 'Part :attributes '((Tag :domain integer)))
(make-class 'Widget :attributes '((Tag :domain integer)
                                  (Parts :domain (set-of Part) :composite true)
                                  (Main :domain Part :composite true)))
`

func TestBeginCommitVisible(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, sessionSchema)
	id := mustEval(t, in, "(begin)")
	if _, ok := id.AsInt(); !ok {
		t.Fatalf("(begin) should return the txn id, got %s", id)
	}
	if !in.InTxn() {
		t.Fatal("InTxn should be true after (begin)")
	}
	mustEval(t, in, `(define w (make Widget :Tag 1)) (set w Tag 7)`)
	mustEval(t, in, "(commit)")
	if in.InTxn() {
		t.Fatal("InTxn should be false after (commit)")
	}
	got := mustEval(t, in, "(get w Tag)")
	if n, _ := got.AsInt(); n != 7 {
		t.Fatalf("Tag = %s, want 7", got)
	}
}

func TestAbortRollsBack(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, sessionSchema)
	mustEval(t, in, `(define w (make Widget :Tag 1))`)
	mustEval(t, in, "(begin) (set w Tag 99)")
	mustEval(t, in, "(abort)")
	got := mustEval(t, in, "(get w Tag)")
	if n, _ := got.AsInt(); n != 1 {
		t.Fatalf("Tag after abort = %s, want the pre-txn 1", got)
	}
}

func TestBeginAtRetainsIdentity(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, sessionSchema)
	id := in.DB.Txns().Reserve()
	v := mustEval(t, in, "(begin "+value.Int(int64(id)).String()+")")
	if n, _ := v.AsInt(); lock.TxID(n) != id {
		t.Fatalf("(begin %d) returned id %d", id, n)
	}
	if in.TxnID() != id {
		t.Fatalf("TxnID = %d, want %d", in.TxnID(), id)
	}
	mustEval(t, in, "(abort)")
}

func TestNestedBeginRejected(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, sessionSchema)
	mustEval(t, in, "(begin)")
	if _, err := in.EvalString("(begin)"); err == nil || !errors.Is(err, ErrEval) {
		t.Fatalf("nested (begin) should fail with ErrEval, got %v", err)
	}
	mustEval(t, in, "(abort)")
}

func TestCommitWithoutBegin(t *testing.T) {
	in := newInterp(t)
	for _, src := range []string{"(commit)", "(abort)"} {
		if _, err := in.EvalString(src); err == nil {
			t.Fatalf("%s without (begin) should fail", src)
		}
	}
	if v := mustEval(t, in, "(txn-status)"); !v.IsNil() {
		t.Fatalf("(txn-status) with no txn = %s, want nil", v)
	}
}

func TestRefsBuildsSet(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, sessionSchema)
	mustEval(t, in, `
		(define w (make Widget :Tag 1))
		(define a (make Part :Tag 2))
		(define b (make Part :Tag 3))
		(set w Parts (refs a b))`)
	got := mustEval(t, in, "(components-of w)")
	if !strings.Contains(got.String(), "#") {
		t.Fatalf("components after (refs) set = %s, want two refs", got)
	}
	refs := got.Refs(nil)
	if len(refs) != 2 {
		t.Fatalf("got %d components, want 2", len(refs))
	}
}

func TestCloseAbortsOpenTxnAndReleasesLocks(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, sessionSchema)
	mustEval(t, in, "(begin) (define w (make Widget :Tag 1))")
	id := in.TxnID()
	if n := in.DB.Txns().Locks().LockCount(id); n == 0 {
		t.Fatal("open txn should hold locks after make")
	}
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
	if in.InTxn() {
		t.Fatal("InTxn after Close")
	}
	if n := in.DB.Txns().Locks().LockCount(id); n != 0 {
		t.Fatalf("Close left %d locks held", n)
	}
	// Idempotent.
	if err := in.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnDeadlockSurfacesCode(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, sessionSchema)
	mustEval(t, in, `(define w (make Widget :Tag 1)) (define p (make Part :Tag 2))`)
	// Session txn holds w; a second txn holds p; the session then wants p
	// while the second wants w — a real two-party deadlock. One side is
	// chosen as victim; if it is the session's txn the error must carry
	// the deadlock code.
	p := mustEval(t, in, "p").String()
	mustEval(t, in, "(begin) (set w Tag 10)")
	t2 := in.DB.Txns().Begin()
	pid, _ := mustEval(t, in, "p").AsRef()
	wid, _ := mustEval(t, in, "w").AsRef()
	if err := t2.WriteAttr(pid, "Tag", value.Int(20)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		err := t2.WriteAttr(wid, "Tag", value.Int(21))
		if err == nil {
			err = t2.Commit()
		} else {
			t2.Abort()
		}
		done <- err
	}()
	_, errSess := in.EvalString("(set " + p + " Tag 11)")
	errOther := <-done
	switch {
	case errSess != nil:
		if ErrorCode(errSess) != CodeDeadlock {
			t.Fatalf("session error code = %q (%v), want deadlock", ErrorCode(errSess), errSess)
		}
		in.Close()
	case errOther != nil:
		if !errors.Is(errOther, lock.ErrDeadlock) {
			t.Fatalf("other txn error = %v, want deadlock", errOther)
		}
		mustEval(t, in, "(commit)")
	default:
		t.Fatal("deadlock resolved with neither side aborted")
	}
}

func TestErrorCodeMapping(t *testing.T) {
	in := newInterp(t)
	cases := []struct {
		src  string
		code string
	}{
		{"(make", CodeParse},
		{"(no-such-message)", CodeEval},
	}
	for _, c := range cases {
		_, err := in.EvalString(c.src)
		if err == nil || ErrorCode(err) != c.code {
			t.Fatalf("ErrorCode(%q) = %q (%v), want %q", c.src, ErrorCode(err), err, c.code)
		}
	}
	if ErrorCode(nil) != "" {
		t.Fatal("ErrorCode(nil) should be empty")
	}
	if ErrorCode(txn.ErrDone) != CodeTxnDone {
		t.Fatal("ErrDone should map to txn-done")
	}
	if ErrorCode(errors.New("x")) != CodeError {
		t.Fatal("unknown errors should map to the generic code")
	}
}
