package sexpr

import (
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/value"
)

func newInterp(t *testing.T) *Interp {
	t.Helper()
	d, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return NewInterp(d)
}

func mustEval(t *testing.T, in *Interp, src string) value.Value {
	t.Helper()
	v, err := in.EvalString(src)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestParserBasics(t *testing.T) {
	n, err := Parse(`(make-class 'Vehicle :superclasses nil :attributes '((Id :domain integer)))`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind != NList || !n.Kids[0].IsSym("make-class") {
		t.Fatalf("parsed %s", n)
	}
	// Round trip through String stays parseable.
	if _, err := Parse(n.String()); err != nil {
		t.Fatalf("re-parse: %v", err)
	}
}

func TestParserLiterals(t *testing.T) {
	cases := map[string]NodeKind{
		"42":      NInt,
		"-7":      NInt,
		"2.5":     NReal,
		`"hi"`:    NString,
		"true":    NBool,
		"nil":     NNil,
		"sym-bol": NSym,
		":kw":     NKeyword,
		"'(a b)":  NQuote,
		"#3:7":    NRef,
	}
	for src, want := range cases {
		n, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if n.Kind != want {
			t.Errorf("Parse(%q).Kind = %v, want %v", src, n.Kind, want)
		}
	}
}

func TestParserStringEscapes(t *testing.T) {
	n, err := Parse(`"a\"b\n\t\\"`)
	if err != nil {
		t.Fatal(err)
	}
	if n.Str != "a\"b\n\t\\" {
		t.Fatalf("escaped string = %q", n.Str)
	}
}

func TestParserComments(t *testing.T) {
	nodes, err := ParseAll("; a comment\n(a) ; trailing\n(b)")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 {
		t.Fatalf("parsed %d nodes", len(nodes))
	}
}

func TestParserErrors(t *testing.T) {
	for _, src := range []string{"(", ")", `"unclosed`, "(a))", "#bad", "'"} {
		if _, err := Parse(src); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) = %v, want ErrParse", src, err)
		}
	}
}

// vehicleProgram is the paper's Example 1 class definition, §2.3,
// modulo the make-class spelling of primitive domains.
const vehicleProgram = `
(make-class 'Company :superclasses nil)
(make-class 'AutoBody :superclasses nil)
(make-class 'AutoDrivetrain :superclasses nil)
(make-class 'AutoTires :superclasses nil)
(make-class 'Vehicle :superclasses nil
  :attributes '(
    (Id           :domain integer)
    (Manufacturer :domain Company)
    (Body         :domain AutoBody       :composite true :exclusive true :dependent nil)
    (Drivetrain   :domain AutoDrivetrain :composite true :exclusive true :dependent nil)
    (Tires        :domain (set-of AutoTires) :composite true :exclusive true :dependent nil)
    (Color        :domain String)))
`

func TestVehicleExampleRunsVerbatim(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, vehicleProgram)
	// The schema matches the paper's semantics.
	v := mustEval(t, in, "(compositep Vehicle Body)")
	if b, _ := v.AsBool(); !b {
		t.Fatal("(compositep Vehicle Body) = false")
	}
	v = mustEval(t, in, "(dependent-compositep Vehicle Body)")
	if b, _ := v.AsBool(); b {
		t.Fatal("Body should be independent")
	}
	v = mustEval(t, in, "(exclusive-compositep Vehicle Tires)")
	if b, _ := v.AsBool(); !b {
		t.Fatal("Tires should be exclusive")
	}
	// Build and dismantle a vehicle.
	mustEval(t, in, `(define b (make AutoBody))`)
	mustEval(t, in, `(define d (make AutoDrivetrain))`)
	mustEval(t, in, `(define v1 (make Vehicle :Id 1 :Color "red" :Body b :Drivetrain d))`)
	v = mustEval(t, in, "(child-of b v1)")
	if b, _ := v.AsBool(); !b {
		t.Fatal("(child-of b v1) = false")
	}
	// The exclusive part cannot serve a second vehicle.
	if _, err := in.EvalString(`(make Vehicle :Body b)`); err == nil {
		t.Fatal("body reused across vehicles")
	}
	// Dismantle: parts survive and become reusable.
	mustEval(t, in, "(delete v1)")
	mustEval(t, in, `(define v2 (make Vehicle :Body b))`)
	v = mustEval(t, in, "(components-of v2)")
	if v.Len() != 1 {
		t.Fatalf("components-of v2 = %v", v)
	}
}

// documentProgram is the paper's Example 2, §2.3.
const documentProgram = `
(make-class 'Paragraph :superclasses nil)
(make-class 'Image :superclasses nil)
(make-class 'Section :superclasses nil
  :attribute '(
    (Content :domain (set-of Paragraph) :composite true :exclusive nil :dependent true)))
(make-class 'Document :superclasses nil
  :attribute '(
    (Title       :domain string)
    (Authors     :domain (set-of string))
    (Sections    :domain (set-of Section)   :composite true :exclusive nil :dependent true)
    (Figures     :domain (set-of Image)     :composite true :exclusive nil :dependent nil)
    (Annotations :domain (set-of Paragraph) :composite true :exclusive true :dependent true)))
`

func TestDocumentExampleRunsVerbatim(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, documentProgram)
	mustEval(t, in, `(define p (make Paragraph))`)
	mustEval(t, in, `(define s (make Section)) (attach s Content p)`)
	mustEval(t, in, `(define doc1 (make Document :Title "Book One"))
	                 (attach doc1 Sections s)`)
	// The shared chapter joins a second book via make :parent.
	mustEval(t, in, `(define doc2 (make Document :Title "Book Two"))
	                 (attach doc2 Sections s)`)
	v := mustEval(t, in, "(shared-component-of s doc1)")
	if b, _ := v.AsBool(); !b {
		t.Fatal("section not a shared component")
	}
	v = mustEval(t, in, "(parents-of s)")
	if v.Len() != 2 {
		t.Fatalf("parents-of s = %v", v)
	}
	// Deleting book one keeps the shared chapter; deleting book two
	// cascades to the chapter and its paragraph.
	v = mustEval(t, in, "(delete doc1)")
	if v.Len() != 1 {
		t.Fatalf("delete doc1 removed %v", v)
	}
	v = mustEval(t, in, "(delete doc2)")
	if v.Len() != 3 {
		t.Fatalf("delete doc2 removed %v", v)
	}
}

func TestMakeWithParentKeyword(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, documentProgram)
	mustEval(t, in, `(define doc (make Document :Title "D"))`)
	// §2.3: (make Class :parent ((Parent Attr) ...) ...)
	mustEval(t, in, `(define s (make Section :parent ((doc Sections))))`)
	v := mustEval(t, in, "(child-of s doc)")
	if b, _ := v.AsBool(); !b {
		t.Fatal("make :parent did not attach")
	}
	// Two parents at once (shared attributes only).
	mustEval(t, in, `(define doc2 (make Document))`)
	mustEval(t, in, `(define s2 (make Section :parent ((doc Sections) (doc2 Sections))))`)
	v = mustEval(t, in, "(parents-of s2)")
	if v.Len() != 2 {
		t.Fatalf("parents-of s2 = %v", v)
	}
}

func TestQueryOptionsFull(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, documentProgram)
	mustEval(t, in, `
	  (define p (make Paragraph))
	  (define s (make Section))
	  (attach s Content p)
	  (define img (make Image))
	  (define note (make Paragraph))
	  (define doc (make Document :Title "T"))
	  (attach doc Sections s)
	  (attach doc Figures img)
	  (attach doc Annotations note)`)
	v := mustEval(t, in, "(components-of doc)")
	if v.Len() != 4 {
		t.Fatalf("all components = %v", v)
	}
	v = mustEval(t, in, "(components-of doc :level 1)")
	if v.Len() != 3 {
		t.Fatalf("level-1 components = %v", v)
	}
	v = mustEval(t, in, "(components-of doc :classes (Paragraph))")
	if v.Len() != 2 {
		t.Fatalf("paragraph components = %v", v)
	}
	v = mustEval(t, in, "(components-of doc :exclusive true)")
	if v.Len() != 1 {
		t.Fatalf("exclusive components = %v", v)
	}
	v = mustEval(t, in, "(roots-of p)")
	if v.Len() != 1 {
		t.Fatalf("roots = %v", v)
	}
}

func TestSchemaEvolutionMessages(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, documentProgram)
	mustEval(t, in, `
	  (define doc (make Document))
	  (define note (make Paragraph :parent ((doc Annotations))))`)
	// I2: annotations become shared.
	mustEval(t, in, "(change-attribute Document Annotations I2)")
	v := mustEval(t, in, "(shared-compositep Document Annotations)")
	if b, _ := v.AsBool(); !b {
		t.Fatal("I2 did not take")
	}
	// Drop the attribute: dependent components die.
	v = mustEval(t, in, "(drop-attribute Document Annotations)")
	if v.Len() != 1 {
		t.Fatalf("drop-attribute removed %v", v)
	}
	if _, err := in.EvalString("(get note Text)"); err == nil {
		t.Fatal("reading attribute of deleted object succeeded")
	}
}

func TestVersionMessages(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, `(make-class 'Design :versionable true
	  :attributes '((Name :domain string)))`)
	v := mustEval(t, in, `(define gv (make-versionable Design :Name "d0"))`)
	if v.Len() != 2 {
		t.Fatalf("make-versionable = %v", v)
	}
	// Destructure via element access in the language: bind both by hand.
	g := v.Elems()[0]
	v0 := v.Elems()[1]
	in.env["g"] = g
	in.env["v0"] = v0
	mustEval(t, in, `(define v1 (derive v0))`)
	res := mustEval(t, in, "(resolve g)")
	if !res.Equal(in.env["v1"]) {
		t.Fatalf("(resolve g) = %v, want v1", res)
	}
	mustEval(t, in, "(set-default g v0)")
	res = mustEval(t, in, "(default-version g)")
	if !res.Equal(v0) {
		t.Fatalf("default = %v", res)
	}
	res = mustEval(t, in, "(versions-of g)")
	if res.Len() != 2 {
		t.Fatalf("versions-of = %v", res)
	}
	mustEval(t, in, "(delete-version v1)")
	res = mustEval(t, in, "(versions-of g)")
	if res.Len() != 1 {
		t.Fatalf("after delete-version = %v", res)
	}
}

func TestAuthorizationMessages(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, documentProgram)
	mustEval(t, in, `
	  (define doc (make Document))
	  (define note (make Paragraph :parent ((doc Annotations))))`)
	mustEval(t, in, `(grant "alice" doc sR)`)
	v := mustEval(t, in, `(check "alice" note R)`)
	if b, _ := v.AsBool(); !b {
		t.Fatal("implicit read not granted")
	}
	v = mustEval(t, in, `(check "alice" note W)`)
	if b, _ := v.AsBool(); b {
		t.Fatal("write granted from read")
	}
	v = mustEval(t, in, `(effective "alice" note)`)
	if s, _ := v.AsString(); s != "sR" {
		t.Fatalf("effective = %v", v)
	}
	// Negative grant conflicts: s¬R contradicts the implied sR.
	if _, err := in.EvalString(`(grant "alice" doc s¬R)`); err == nil {
		t.Fatal("conflicting grant accepted")
	}
	// ASCII negative notation also parses.
	mustEval(t, in, `(grant "bob" doc w-R)`)
	v = mustEval(t, in, `(check "bob" note R)`)
	if b, _ := v.AsBool(); b {
		t.Fatal("negative grant did not deny")
	}
}

func TestIntrospectionMessages(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, vehicleProgram)
	v := mustEval(t, in, "(classes)")
	if v.Len() != 5 {
		t.Fatalf("classes = %v", v)
	}
	mustEval(t, in, "(make AutoBody) (make AutoBody)")
	v = mustEval(t, in, "(extent AutoBody)")
	if v.Len() != 2 {
		t.Fatalf("extent = %v", v)
	}
	mustEval(t, in, `(define b (make AutoBody))`)
	v = mustEval(t, in, "(describe b)")
	if s, _ := v.AsString(); !strings.HasPrefix(s, "AutoBody") {
		t.Fatalf("describe = %v", v)
	}
}

func TestEvalErrors(t *testing.T) {
	in := newInterp(t)
	for _, src := range []string{
		"(unknown-message 1)",
		"undefined-symbol",
		"(define)",
		"(make)",
		"(make Ghost)",
		"(get 42 x)",
		`(grant 42 #1:1 sR)`,
	} {
		if _, err := in.EvalString(src); err == nil {
			t.Errorf("eval %q succeeded", src)
		}
	}
}

func TestSetMessage(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, vehicleProgram)
	mustEval(t, in, `(define v (make Vehicle :Id 1))`)
	mustEval(t, in, `(set v Color "blue")`)
	got := mustEval(t, in, "(get v Color)")
	if s, _ := got.AsString(); s != "blue" {
		t.Fatalf("Color = %v", got)
	}
	// Detach via message.
	mustEval(t, in, `(define b (make AutoBody)) (attach v Body b)`)
	mustEval(t, in, `(detach v Body b)`)
	got = mustEval(t, in, "(get v Body)")
	if !got.IsNil() {
		t.Fatalf("Body after detach = %v", got)
	}
}

func TestGrantAuthorityMessages(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, documentProgram)
	mustEval(t, in, `
	  (define doc (make Document))
	  (define note (make Paragraph :parent ((doc Annotations))))
	  (set-owner doc "owner")`)
	v := mustEval(t, in, `(owner-of doc)`)
	if s, _ := v.AsString(); s != "owner" {
		t.Fatalf("owner-of = %v", v)
	}
	// Only the owner (or delegates) may grant through grant-as.
	if _, err := in.EvalString(`(grant-as "stranger" "alice" doc sR)`); err == nil {
		t.Fatal("stranger grant accepted")
	}
	mustEval(t, in, `(grant-as "owner" "alice" doc sR)`)
	v = mustEval(t, in, `(check "alice" note R)`)
	if b, _ := v.AsBool(); !b {
		t.Fatal("owner grant not effective")
	}
	// Delegation.
	mustEval(t, in, `(delegate "owner" "deputy" doc)`)
	mustEval(t, in, `(grant-as "deputy" "bob" doc wR)`)
	v = mustEval(t, in, `(check "bob" note R)`)
	if b, _ := v.AsBool(); !b {
		t.Fatal("deputy grant not effective")
	}
}

func TestIntegrityMessage(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, documentProgram)
	mustEval(t, in, `
	  (define doc (make Document))
	  (define s (make Section :parent ((doc Sections))))`)
	v := mustEval(t, in, "(integrity)")
	if v.Len() != 0 {
		t.Fatalf("integrity violations: %v", v)
	}
}

func TestSelectMessage(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, vehicleProgram)
	mustEval(t, in, `
	  (make-class 'Scale :superclasses nil)   ; unused, exercises catalog growth
	  (define b1 (make AutoBody))
	  (define b2 (make AutoBody))
	  (define v1 (make Vehicle :Id 1 :Color "red"  :Body b1))
	  (define v2 (make Vehicle :Id 2 :Color "blue" :Body b2))
	  (define v3 (make Vehicle :Id 3 :Color "red"))`)
	v := mustEval(t, in, `(select Vehicle)`)
	if v.Len() != 3 {
		t.Fatalf("select all = %v", v)
	}
	v = mustEval(t, in, `(select Vehicle :where (= Color "red"))`)
	if v.Len() != 2 {
		t.Fatalf("red = %v", v)
	}
	v = mustEval(t, in, `(select Vehicle :where (and (= Color "red") (exists Body)))`)
	if v.Len() != 1 || !v.Elems()[0].Equal(in.env["v1"]) {
		t.Fatalf("red+body = %v", v)
	}
	v = mustEval(t, in, `(select Vehicle :where (or (= Id 2) (= Id 3)))`)
	if v.Len() != 2 {
		t.Fatalf("2or3 = %v", v)
	}
	v = mustEval(t, in, `(select Vehicle :where (not (exists Body)))`)
	if v.Len() != 1 {
		t.Fatalf("bodyless = %v", v)
	}
	// Path predicate through a composite reference.
	mustEval(t, in, `(make-class 'HeavyBody :superclasses (AutoBody))`)
	v = mustEval(t, in, `(select Vehicle :where (< Id 3))`)
	if v.Len() != 2 {
		t.Fatalf("id<3 = %v", v)
	}
	// Errors.
	if _, err := in.EvalString(`(select Ghost)`); err == nil {
		t.Fatal("select over ghost class")
	}
	if _, err := in.EvalString(`(select Vehicle :where (frobnicate Id 1))`); err == nil {
		t.Fatal("unknown predicate accepted")
	}
}

func TestSelectPathMessage(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, `
	  (make-class 'B :attributes '((W :domain integer)))
	  (make-class 'V :attributes '((Body :domain B :composite true :dependent nil)))
	  (define b1 (make B :W 120))
	  (define b2 (make B :W 80))
	  (define v1 (make V :Body b1))
	  (define v2 (make V :Body b2))`)
	v := mustEval(t, in, `(select V :where (> (path Body W) 100))`)
	if v.Len() != 1 || !v.Elems()[0].Equal(in.env["v1"]) {
		t.Fatalf("heavy = %v", v)
	}
	v = mustEval(t, in, `(select V :where (all Body (>= W 80)))`)
	if v.Len() != 2 {
		t.Fatalf("all>=80 = %v", v)
	}
	v = mustEval(t, in, `(select B :where (component-of v1))`)
	if v.Len() != 1 {
		t.Fatalf("components = %v", v)
	}
}

func TestIndexedSelectMessage(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, `
	  (make-class 'Part :attributes '((Material :domain string)))
	  (define a (make Part :Material "steel"))
	  (define b (make Part :Material "alu"))
	  (create-index Part Material)
	  (define c (make Part :Material "steel"))`)
	v := mustEval(t, in, `(select Part :where (= Material "steel"))`)
	if v.Len() != 2 {
		t.Fatalf("indexed select = %v", v)
	}
	mustEval(t, in, `(drop-index Part Material)`)
	v = mustEval(t, in, `(select Part :where (= Material "steel"))`)
	if v.Len() != 2 {
		t.Fatalf("scan select = %v", v)
	}
	if _, err := in.EvalString(`(drop-index Part Material)`); err == nil {
		t.Fatal("double drop-index accepted")
	}
}

// TestMessageUsageErrors sweeps wrong-arity and wrong-type invocations of
// every message; each must error rather than panic or silently succeed.
func TestMessageUsageErrors(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, vehicleProgram)
	mustEval(t, in, `(define v (make Vehicle :Id 1))`)
	bad := []string{
		`(make-class)`,
		`(make-class 'X :attributes 5)`,
		`(make-class 'X :attributes '((NoDomain)))`,
		`(make-class 'X :attributes '((A :domain (set-of))))`,
		`(make)`,
		`(make Vehicle :parent 5)`,
		`(make Vehicle :parent ((v)))`,
		`(get v)`,
		`(get v Ghost Extra)`,
		`(set v)`,
		`(attach v Body)`,
		`(detach v Body)`,
		`(delete)`,
		`(describe)`,
		`(components-of)`,
		`(parents-of)`,
		`(ancestors-of)`,
		`(roots-of)`,
		`(component-of v)`,
		`(child-of v)`,
		`(compositep)`,
		`(compositep Vehicle Body Extra)`,
		`(drop-attribute Vehicle)`,
		`(add-superclass Vehicle)`,
		`(remove-superclass Vehicle)`,
		`(drop-class)`,
		`(change-attribute Vehicle Body)`,
		`(change-attribute Vehicle Body I9)`,
		`(make-composite Vehicle)`,
		`(make-exclusive Vehicle)`,
		`(make-versionable)`,
		`(derive)`,
		`(set-default v)`,
		`(default-version)`,
		`(resolve)`,
		`(delete-version)`,
		`(versions-of)`,
		`(grant "a" v)`,
		`(grant "a" v zR)`,
		`(grant "a" v qq)`,
		`(grant-class "a" Vehicle)`,
		`(revoke "a")`,
		`(revoke-class "a")`,
		`(check "a" v)`,
		`(check "a" v Q)`,
		`(effective "a")`,
		`(grant-as "a" "b" v)`,
		`(set-owner v)`,
		`(owner-of)`,
		`(delegate "a" "b")`,
		`(extent)`,
		`(select)`,
		`(select Vehicle :where 5)`,
		`(select Vehicle :where (=))`,
		`(select Vehicle :where (exists))`,
		`(select Vehicle :where (not))`,
		`(select Vehicle :where (any Body))`,
		`(select Vehicle :where (component-of))`,
		`(create-index Vehicle)`,
		`(drop-index Vehicle)`,
		`(define x)`,
		`(42 1 2)`,
	}
	for _, src := range bad {
		if _, err := in.EvalString(src); err == nil {
			t.Errorf("%s succeeded", src)
		}
	}
}

func TestCopyAndRenameMessages(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, vehicleProgram)
	mustEval(t, in, `
	  (define b (make AutoBody))
	  (define v (make Vehicle :Id 7 :Body b))
	  (define v2 (copy v))`)
	got := mustEval(t, in, `(get v2 Id)`)
	if n, _ := got.AsInt(); n != 7 {
		t.Fatalf("copied Id = %v", got)
	}
	// The copy has its own body.
	origBody := mustEval(t, in, `(get v Body)`)
	copyBody := mustEval(t, in, `(get v2 Body)`)
	if origBody.Equal(copyBody) {
		t.Fatal("copy shares the exclusive body")
	}
	mustEval(t, in, `(rename-attribute Vehicle Color Paint)`)
	mustEval(t, in, `(set v Paint "green")`)
	if _, err := in.EvalString(`(set v Color "red")`); err == nil {
		t.Fatal("old attribute name still accepted")
	}
}

func TestTourScriptRuns(t *testing.T) {
	src, err := os.ReadFile("../../examples/scripts/tour.orion")
	if err != nil {
		t.Fatal(err)
	}
	in := newInterp(t)
	v, err := in.EvalString(string(src))
	if err != nil {
		t.Fatal(err)
	}
	// The script ends with (integrity): must report no violations.
	if v.Len() != 0 {
		t.Fatalf("tour ended with violations: %v", v)
	}
}
