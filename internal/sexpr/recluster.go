package sexpr

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Shell surface for the clustering policy and the online reclusterer:
//
//	(placement)          → active placement policy name
//	(recluster status)   → one-line counter summary
//	(recluster now)      → run one pass, return units migrated

func evalPlacement(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 0 {
		return value.Nil, fmt.Errorf("usage: (placement): %w", ErrEval)
	}
	return value.Str(in.DB.PlacementName()), nil
}

func evalRecluster(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (recluster status|now): %w", ErrEval)
	}
	verb, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	switch strings.ToLower(verb) {
	case "status":
		st := in.DB.ReclusterStatus()
		return value.Str(fmt.Sprintf(
			"policy=%s background=%t hot-misses=%d passes=%d migrations=%d objects-moved=%d skipped=%d units-tracked=%d",
			st.Policy, st.Background, st.HotMisses, st.Passes, st.Migrations,
			st.ObjectsMoved, st.Skipped, st.UnitsTracked)), nil
	case "now":
		n, err := in.DB.ReclusterNow()
		if err != nil {
			return value.Nil, err
		}
		return value.Int(int64(n)), nil
	default:
		return value.Nil, fmt.Errorf("unknown recluster verb %q (want status/now): %w", verb, ErrEval)
	}
}
