package sexpr

import (
	"strings"
	"testing"

	"repro/internal/db"
)

func TestPlacementAndReclusterBuiltins(t *testing.T) {
	d, err := db.Open(db.Options{Placement: "usage", ReclusterHotMisses: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	in := NewInterp(d)

	if v := mustEval(t, in, "(placement)"); v.String() != `"usage"` {
		t.Fatalf("(placement) = %s", v)
	}
	mustEval(t, in, `
(make-class 'Para :attributes '((Text :domain string)))
(make-class 'Doc :attributes '((Paras :domain (set-of Para) :composite true)))
(define d (make Doc))
`)
	for i := 0; i < 6; i++ {
		mustEval(t, in, "(make Para :parent ((d Paras)))")
	}
	v := mustEval(t, in, "(recluster now)")
	if n, ok := v.AsInt(); !ok || n != 1 {
		t.Fatalf("(recluster now) = %s, want 1", v)
	}
	st := mustEval(t, in, "(recluster status)").String()
	if !strings.Contains(st, "policy=usage") || !strings.Contains(st, "migrations=1") {
		t.Fatalf("(recluster status) = %s", st)
	}
	if _, err := in.EvalString("(recluster bogus)"); err == nil {
		t.Fatal("unknown recluster verb accepted")
	}
	if _, err := in.EvalString("(placement extra)"); err == nil {
		t.Fatal("(placement) with args accepted")
	}
}
