package sexpr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ErrParse wraps all syntax errors.
var ErrParse = errors.New("sexpr: parse error")

type lexer struct {
	src []rune
	pos int
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() rune {
	r := l.peek()
	l.pos++
	return r
}

func (l *lexer) skipSpace() {
	for {
		for l.pos < len(l.src) && unicode.IsSpace(l.src[l.pos]) {
			l.pos++
		}
		// ; comments run to end of line.
		if l.peek() == ';' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isDelim(r rune) bool {
	return r == 0 || r == '(' || r == ')' || r == '\'' || r == '"' || r == ';' || unicode.IsSpace(r)
}

// Parse parses a single expression from src.
func Parse(src string) (Node, error) {
	l := &lexer{src: []rune(src)}
	n, err := parseExpr(l)
	if err != nil {
		return Node{}, err
	}
	l.skipSpace()
	if l.pos < len(l.src) {
		return Node{}, fmt.Errorf("trailing input at %d: %w", l.pos, ErrParse)
	}
	return n, nil
}

// ParseAll parses a sequence of expressions (a program).
func ParseAll(src string) ([]Node, error) {
	l := &lexer{src: []rune(src)}
	var out []Node
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			return out, nil
		}
		n, err := parseExpr(l)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
}

func parseExpr(l *lexer) (Node, error) {
	l.skipSpace()
	pos := l.pos
	switch r := l.peek(); {
	case r == 0:
		return Node{}, fmt.Errorf("unexpected end of input: %w", ErrParse)
	case r == '(':
		l.next()
		n := Node{Kind: NList, Pos: pos}
		for {
			l.skipSpace()
			if l.peek() == ')' {
				l.next()
				return n, nil
			}
			if l.peek() == 0 {
				return Node{}, fmt.Errorf("unclosed '(' at %d: %w", pos, ErrParse)
			}
			kid, err := parseExpr(l)
			if err != nil {
				return Node{}, err
			}
			n.Kids = append(n.Kids, kid)
		}
	case r == ')':
		return Node{}, fmt.Errorf("unexpected ')' at %d: %w", pos, ErrParse)
	case r == '\'':
		l.next()
		kid, err := parseExpr(l)
		if err != nil {
			return Node{}, err
		}
		return Node{Kind: NQuote, Kids: []Node{kid}, Pos: pos}, nil
	case r == '"':
		return parseString(l)
	case r == ':':
		l.next()
		sym := readToken(l)
		if sym == "" {
			return Node{}, fmt.Errorf("empty keyword at %d: %w", pos, ErrParse)
		}
		return Node{Kind: NKeyword, Sym: sym, Pos: pos}, nil
	case r == '#':
		return parseRef(l)
	default:
		return parseAtom(l)
	}
}

func parseString(l *lexer) (Node, error) {
	pos := l.pos
	l.next() // opening quote
	var b strings.Builder
	for {
		r := l.next()
		switch r {
		case 0:
			return Node{}, fmt.Errorf("unclosed string at %d: %w", pos, ErrParse)
		case '"':
			return Node{Kind: NString, Str: b.String(), Pos: pos}, nil
		case '\\':
			esc := l.next()
			switch esc {
			case 'n':
				b.WriteRune('\n')
			case 't':
				b.WriteRune('\t')
			case '"', '\\':
				b.WriteRune(esc)
			default:
				return Node{}, fmt.Errorf("bad escape \\%c at %d: %w", esc, l.pos, ErrParse)
			}
		default:
			b.WriteRune(r)
		}
	}
}

func parseRef(l *lexer) (Node, error) {
	pos := l.pos
	l.next() // '#'
	tok := readToken(l)
	parts := strings.Split(tok, ":")
	if len(parts) != 2 {
		return Node{}, fmt.Errorf("bad reference #%s at %d: %w", tok, pos, ErrParse)
	}
	c, err1 := strconv.ParseUint(parts[0], 10, 32)
	s, err2 := strconv.ParseUint(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return Node{}, fmt.Errorf("bad reference #%s at %d: %w", tok, pos, ErrParse)
	}
	return Node{Kind: NRef, Ref: [2]uint64{c, s}, Pos: pos}, nil
}

func readToken(l *lexer) string {
	var b strings.Builder
	for !isDelim(l.peek()) {
		b.WriteRune(l.next())
	}
	return b.String()
}

func parseAtom(l *lexer) (Node, error) {
	pos := l.pos
	tok := readToken(l)
	if tok == "" {
		return Node{}, fmt.Errorf("empty token at %d: %w", pos, ErrParse)
	}
	switch strings.ToLower(tok) {
	case "nil":
		return Node{Kind: NNil, Pos: pos}, nil
	case "true", "t":
		return Node{Kind: NBool, Bool: true, Pos: pos}, nil
	case "false":
		return Node{Kind: NBool, Bool: false, Pos: pos}, nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Node{Kind: NInt, Int: i, Pos: pos}, nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return Node{Kind: NReal, Real: f, Pos: pos}, nil
	}
	return Node{Kind: NSym, Sym: tok, Pos: pos}, nil
}
