package sexpr

import (
	"strings"
	"testing"
)

// FuzzParse: the parser must never panic, and whatever parses must
// round-trip through String back to an equivalent tree.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"(make-class 'Vehicle :attributes '((Id :domain integer)))",
		`(define v (make Vehicle :Color "red"))`,
		"(components-of v :level 2 :classes (A B))",
		"#1:2",
		"'(a 'b ((c)))",
		`"str with \" escape"`,
		"; comment\n(a)",
		"(((((deep)))))",
		"-42 2.5 true nil :kw sym",
		"(a . b)", // dot is just a symbol here
		"(ユニコード \"日本\")",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		nodes, err := ParseAll(src)
		if err != nil {
			return
		}
		// Render and re-parse: must succeed and produce the same rendering
		// (String is a normal form).
		var b strings.Builder
		for _, n := range nodes {
			b.WriteString(n.String())
			b.WriteString(" ")
		}
		again, err := ParseAll(b.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", b.String(), src, err)
		}
		if len(again) != len(nodes) {
			t.Fatalf("node count changed: %d -> %d", len(nodes), len(again))
		}
		for i := range nodes {
			if nodes[i].String() != again[i].String() {
				t.Fatalf("not a normal form: %q vs %q", nodes[i].String(), again[i].String())
			}
		}
	})
}
