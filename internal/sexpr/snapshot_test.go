package sexpr

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// TestSnapshotCommand drives the shell-level snapshot session: queries
// under (snapshot begin) keep answering from the pinned commit boundary
// while live mutations proceed, and (snapshot release) returns the
// interpreter to live reads.
func TestSnapshotCommand(t *testing.T) {
	in := newInterp(t)
	mustEval(t, in, `(make-class 'Part :superclasses nil :attributes '(
		(Name :domain String)
		(Subparts :domain (set-of Part) :composite true :exclusive nil :dependent nil)))`)
	mustEval(t, in, `(define root (make Part :Name "root"))`)
	mustEval(t, in, `(define kid (make Part :Name "kid"))`)
	mustEval(t, in, `(attach root Subparts kid)`)

	if v := mustEval(t, in, `(snapshot status)`); !v.IsNil() {
		t.Fatalf("status before begin = %s, want nil", v)
	}
	seq := mustEval(t, in, `(snapshot begin)`)
	if _, ok := seq.AsInt(); !ok {
		t.Fatalf("(snapshot begin) = %s, want a sequence number", seq)
	}
	if st := mustEval(t, in, `(snapshot status)`); !st.Equal(seq) {
		t.Fatalf("status = %s, want %s", st, seq)
	}

	// Mutate the live database: rename kid, attach a second component.
	mustEval(t, in, `(set kid Name "renamed")`)
	mustEval(t, in, `(define kid2 (make Part :Name "kid2"))`)
	mustEval(t, in, `(attach root Subparts kid2)`)

	// Snapshot reads stay at the begin boundary.
	if v := mustEval(t, in, `(get kid Name)`); !v.Equal(value.Str("kid")) {
		t.Fatalf("snapshot (get kid Name) = %s, want \"kid\"", v)
	}
	comps := mustEval(t, in, `(components-of root)`)
	if comps.Len() != 1 {
		t.Fatalf("snapshot (components-of root) = %s, want one component", comps)
	}
	if v := mustEval(t, in, `(component-of kid root)`); !v.Equal(value.Bool(true)) {
		t.Fatalf("snapshot (component-of kid root) = %s, want true", v)
	}

	// Release: live reads resume.
	if v := mustEval(t, in, `(snapshot release)`); !v.Equal(value.Bool(true)) {
		t.Fatalf("(snapshot release) = %s, want true", v)
	}
	if v := mustEval(t, in, `(get kid Name)`); !v.Equal(value.Str("renamed")) {
		t.Fatalf("live (get kid Name) = %s, want \"renamed\"", v)
	}
	comps = mustEval(t, in, `(components-of root)`)
	if comps.Len() != 2 {
		t.Fatalf("live (components-of root) = %s, want two components", comps)
	}
	if v := mustEval(t, in, `(snapshot release)`); !v.Equal(value.Bool(false)) {
		t.Fatalf("double release = %s, want false", v)
	}
}

func TestSnapshotCommandUsage(t *testing.T) {
	in := newInterp(t)
	if _, err := in.EvalString(`(snapshot)`); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("(snapshot) error = %v, want usage error", err)
	}
	if _, err := in.EvalString(`(snapshot frobnicate)`); err == nil || !strings.Contains(err.Error(), "unknown snapshot verb") {
		t.Fatalf("(snapshot frobnicate) error = %v, want verb error", err)
	}
}
