package sexpr

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// ErrEval wraps all evaluation errors.
var ErrEval = errors.New("sexpr: eval error")

// Interp evaluates expressions against a database. Objects created with
// (define name expr) are bound in the environment for later reference.
//
// A (snapshot begin) session pins snap: while set, the §3 query messages
// (get, components-of, parents-of, ancestors-of, roots-of, component-of)
// answer from the MVCC snapshot — the committed state at the begin
// boundary, read without the engine latch or any §7 lock — until
// (snapshot release). Mutation messages keep writing to the live
// database; their effects become visible to queries only after release.
type Interp struct {
	DB   *db.DB
	env  map[string]value.Value
	snap *core.Snapshot

	// tx is the session's open explicit transaction ((begin) … (commit)),
	// nil when mutations auto-commit through the db facade. See session.go.
	tx *txn.Txn

	// prof is non-nil while a (profile expr) evaluation is in flight:
	// parseQueryOpts threads it into every §3 query the expression
	// issues, so traversal costs land on the profile being built.
	prof *obs.ProfCtx
}

// NewInterp returns an interpreter over the database.
func NewInterp(d *db.DB) *Interp {
	return &Interp{DB: d, env: make(map[string]value.Value)}
}

// EvalString parses and evaluates a whole program, returning the value of
// the last expression.
func (in *Interp) EvalString(src string) (value.Value, error) {
	nodes, err := ParseAll(src)
	if err != nil {
		return value.Nil, err
	}
	out := value.Nil
	for _, n := range nodes {
		out, err = in.Eval(n)
		if err != nil {
			return value.Nil, err
		}
	}
	return out, nil
}

// Eval evaluates one expression.
func (in *Interp) Eval(n Node) (value.Value, error) {
	switch n.Kind {
	case NInt:
		return value.Int(n.Int), nil
	case NReal:
		return value.Real(n.Real), nil
	case NString:
		return value.Str(n.Str), nil
	case NBool:
		return value.Bool(n.Bool), nil
	case NNil:
		return value.Nil, nil
	case NRef:
		return value.Ref(uid.UID{Class: uid.ClassID(n.Ref[0]), Serial: n.Ref[1]}), nil
	case NQuote:
		return in.quoteValue(n.Kids[0])
	case NSym:
		if v, ok := in.env[n.Sym]; ok {
			return v, nil
		}
		return value.Nil, fmt.Errorf("unbound symbol %q: %w", n.Sym, ErrEval)
	case NList:
		if len(n.Kids) == 0 {
			return value.Nil, nil
		}
		head := n.Kids[0]
		if head.Kind != NSym {
			return value.Nil, fmt.Errorf("cannot apply %s: %w", head, ErrEval)
		}
		fn, ok := builtins[strings.ToLower(head.Sym)]
		if !ok {
			return value.Nil, fmt.Errorf("unknown message %q: %w", head.Sym, ErrEval)
		}
		v, err := fn(in, n.Kids[1:])
		return v, in.noteDeadlock(err)
	default:
		return value.Nil, fmt.Errorf("cannot evaluate %s: %w", n, ErrEval)
	}
}

// quoteValue turns a quoted node into a data value (lists become lists,
// symbols become strings).
func (in *Interp) quoteValue(n Node) (value.Value, error) {
	switch n.Kind {
	case NSym:
		return value.Str(n.Sym), nil
	case NList:
		elems := make([]value.Value, 0, len(n.Kids))
		for _, k := range n.Kids {
			v, err := in.quoteValue(k)
			if err != nil {
				return value.Nil, err
			}
			elems = append(elems, v)
		}
		return value.ListOf(elems...), nil
	default:
		return in.Eval(n)
	}
}

// builtin is a message implementation.
type builtin func(*Interp, []Node) (value.Value, error)

var builtins map[string]builtin

func init() {
	builtins = map[string]builtin{
		"define":     evalDefine,
		"make-class": evalMakeClass,
		"make":       evalMake,
		"get":        evalGet,
		"set":        evalSet,
		"attach":     evalAttach,
		"detach":     evalDetach,
		"delete":     evalDelete,
		"describe":   evalDescribe,

		"snapshot": evalSnapshot,

		"begin":      evalBegin,
		"commit":     evalCommit,
		"abort":      evalAbort,
		"txn-status": evalTxnStatus,
		"refs":       evalRefs,

		"explain": evalExplain,
		"profile": evalProfile,
		"flight":  evalFlight,

		"placement": evalPlacement,
		"recluster": evalRecluster,

		"components-of": evalComponentsOf,
		"parents-of":    evalParentsOf,
		"ancestors-of":  evalAncestorsOf,
		"roots-of":      evalRootsOf,

		"component-of": evalRel(func(in *Interp, a, b uid.UID) (bool, error) {
			if in.snap != nil {
				return in.snap.ComponentOf(a, b)
			}
			return in.DB.ComponentOf(a, b)
		}),
		"child-of":               evalRel(func(in *Interp, a, b uid.UID) (bool, error) { return in.DB.ChildOf(a, b) }),
		"exclusive-component-of": evalRel(func(in *Interp, a, b uid.UID) (bool, error) { return in.DB.ExclusiveComponentOf(a, b) }),
		"shared-component-of":    evalRel(func(in *Interp, a, b uid.UID) (bool, error) { return in.DB.SharedComponentOf(a, b) }),

		"compositep":           evalPred(func(c *schema.Catalog, cl string, a []string) (bool, error) { return c.Compositep(cl, a...) }),
		"exclusive-compositep": evalPred(func(c *schema.Catalog, cl string, a []string) (bool, error) { return c.ExclusiveCompositep(cl, a...) }),
		"shared-compositep":    evalPred(func(c *schema.Catalog, cl string, a []string) (bool, error) { return c.SharedCompositep(cl, a...) }),
		"dependent-compositep": evalPred(func(c *schema.Catalog, cl string, a []string) (bool, error) { return c.DependentCompositep(cl, a...) }),

		"drop-attribute":    evalDropAttribute,
		"rename-attribute":  evalRenameAttribute,
		"copy":              evalCopy,
		"add-superclass":    evalAddSuperclass,
		"remove-superclass": evalRemoveSuperclass,
		"drop-class":        evalDropClass,
		"change-attribute":  evalChangeAttribute,
		"make-composite":    evalMakeComposite,
		"make-exclusive":    evalMakeExclusive,

		"make-versionable": evalMakeVersionable,
		"derive":           evalDerive,
		"set-default":      evalSetDefault,
		"default-version":  evalDefaultVersion,
		"resolve":          evalResolve,
		"delete-version":   evalDeleteVersion,
		"versions-of":      evalVersionsOf,

		"grant":        evalGrant,
		"grant-class":  evalGrantClass,
		"grant-as":     evalGrantAs,
		"set-owner":    evalSetOwner,
		"owner-of":     evalOwnerOf,
		"delegate":     evalDelegate,
		"integrity":    evalIntegrity,
		"revoke":       evalRevoke,
		"revoke-class": evalRevokeClass,
		"check":        evalCheck,
		"effective":    evalEffective,

		"classes":      evalClasses,
		"extent":       evalExtent,
		"select":       evalSelect,
		"create-index": evalCreateIndex,
		"drop-index":   evalDropIndex,
	}
}

// ---- argument helpers ----

func (in *Interp) objArg(n Node) (uid.UID, error) {
	v, err := in.Eval(n)
	if err != nil {
		return uid.Nil, err
	}
	r, ok := v.AsRef()
	if !ok {
		return uid.Nil, fmt.Errorf("expected an object, got %s: %w", v, ErrEval)
	}
	return r, nil
}

func symName(n Node) (string, error) {
	switch n.Kind {
	case NSym:
		return n.Sym, nil
	case NQuote:
		return symName(n.Kids[0])
	case NString:
		return n.Str, nil
	case NList:
		// (quote X) is equivalent to 'X.
		if len(n.Kids) == 2 && n.Kids[0].IsSym("quote") {
			return symName(n.Kids[1])
		}
		return "", fmt.Errorf("expected a name, got %s: %w", n, ErrEval)
	default:
		return "", fmt.Errorf("expected a name, got %s: %w", n, ErrEval)
	}
}

// splitKeywords separates leading positional args from :keyword value
// pairs.
func splitKeywords(args []Node) (pos []Node, kw map[string]Node, order []string, err error) {
	kw = map[string]Node{}
	i := 0
	for i < len(args) && args[i].Kind != NKeyword {
		pos = append(pos, args[i])
		i++
	}
	for i < len(args) {
		if args[i].Kind != NKeyword {
			return nil, nil, nil, fmt.Errorf("expected keyword, got %s: %w", args[i], ErrEval)
		}
		if i+1 >= len(args) {
			return nil, nil, nil, fmt.Errorf("keyword :%s lacks a value: %w", args[i].Sym, ErrEval)
		}
		kw[strings.ToLower(args[i].Sym)] = args[i+1]
		order = append(order, args[i].Sym)
		i += 2
	}
	return pos, kw, order, nil
}

func boolArg(n Node) (bool, error) {
	switch n.Kind {
	case NBool:
		return n.Bool, nil
	case NNil:
		return false, nil
	default:
		return false, fmt.Errorf("expected true/nil, got %s: %w", n, ErrEval)
	}
}

func refsToValue(ids []uid.UID) value.Value {
	elems := make([]value.Value, len(ids))
	for i, id := range ids {
		elems[i] = value.Ref(id)
	}
	return value.ListOf(elems...)
}

// ---- core messages ----

func evalDefine(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 || args[0].Kind != NSym {
		return value.Nil, fmt.Errorf("usage: (define name expr): %w", ErrEval)
	}
	v, err := in.Eval(args[1])
	if err != nil {
		return value.Nil, err
	}
	in.env[args[0].Sym] = v
	return v, nil
}

// parseDomain interprets a :domain node: a primitive name, a class name,
// or (set-of X).
func parseDomain(n Node) (schema.Domain, bool, error) {
	if n.Kind == NQuote {
		return parseDomain(n.Kids[0])
	}
	if n.Kind == NList {
		if len(n.Kids) == 2 && n.Kids[0].IsSym("set-of") {
			d, _, err := parseDomain(n.Kids[1])
			return d, true, err
		}
		return schema.Domain{}, false, fmt.Errorf("bad domain %s: %w", n, ErrEval)
	}
	name, err := symName(n)
	if err != nil {
		return schema.Domain{}, false, err
	}
	switch strings.ToLower(name) {
	case "integer", "int":
		return schema.IntDomain, false, nil
	case "real", "float":
		return schema.RealDomain, false, nil
	case "string":
		return schema.StringDomain, false, nil
	case "boolean", "bool":
		return schema.BoolDomain, false, nil
	default:
		return schema.ClassDomain(name), false, nil
	}
}

// parseAttrSpec interprets one attribute spec list:
//
//	(Name :domain D [:composite t] [:exclusive t] [:dependent t]
//	      [:init v] [:document "..."])
//
// Per §2.3, :exclusive and :dependent default to true for composite
// attributes.
func (in *Interp) parseAttrSpec(n Node) (schema.AttrSpec, error) {
	if n.Kind == NQuote {
		return in.parseAttrSpec(n.Kids[0])
	}
	if n.Kind != NList || len(n.Kids) < 1 {
		return schema.AttrSpec{}, fmt.Errorf("bad attribute spec %s: %w", n, ErrEval)
	}
	name, err := symName(n.Kids[0])
	if err != nil {
		return schema.AttrSpec{}, err
	}
	_, kw, _, err := splitKeywords(n.Kids[1:])
	if err != nil {
		return schema.AttrSpec{}, err
	}
	spec := schema.AttrSpec{Name: name, Exclusive: true, Dependent: true}
	dn, ok := kw["domain"]
	if !ok {
		return schema.AttrSpec{}, fmt.Errorf("attribute %s lacks :domain: %w", name, ErrEval)
	}
	spec.Domain, spec.SetOf, err = parseDomain(dn)
	if err != nil {
		return schema.AttrSpec{}, err
	}
	if v, ok := kw["composite"]; ok {
		if spec.Composite, err = boolArg(v); err != nil {
			return schema.AttrSpec{}, err
		}
	}
	if v, ok := kw["exclusive"]; ok {
		if spec.Exclusive, err = boolArg(v); err != nil {
			return schema.AttrSpec{}, err
		}
	}
	if v, ok := kw["dependent"]; ok {
		if spec.Dependent, err = boolArg(v); err != nil {
			return schema.AttrSpec{}, err
		}
	}
	if v, ok := kw["init"]; ok {
		if spec.Initial, err = in.Eval(v); err != nil {
			return schema.AttrSpec{}, err
		}
	}
	if v, ok := kw["document"]; ok {
		if v.Kind == NString {
			spec.Doc = v.Str
		}
	}
	if !spec.Composite {
		spec.Exclusive = false
		spec.Dependent = false
	}
	return spec, nil
}

func evalMakeClass(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (make-class 'Name ...): %w", ErrEval)
	}
	name, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	_, kw, _, err := splitKeywords(args[1:])
	if err != nil {
		return value.Nil, err
	}
	def := schema.ClassDef{Name: name}
	if v, ok := kw["superclasses"]; ok && v.Kind != NNil {
		ln := v
		if ln.Kind == NQuote {
			ln = ln.Kids[0]
		}
		if ln.Kind == NSym {
			def.Superclasses = []string{ln.Sym}
		} else if ln.Kind == NList {
			for _, k := range ln.Kids {
				s, err := symName(k)
				if err != nil {
					return value.Nil, err
				}
				def.Superclasses = append(def.Superclasses, s)
			}
		}
	}
	for _, key := range []string{"attributes", "attribute"} {
		v, ok := kw[key]
		if !ok {
			continue
		}
		ln := v
		if ln.Kind == NQuote {
			ln = ln.Kids[0]
		}
		if ln.Kind == NNil {
			continue
		}
		if ln.Kind != NList {
			return value.Nil, fmt.Errorf(":attributes wants a list, got %s: %w", v, ErrEval)
		}
		for _, k := range ln.Kids {
			spec, err := in.parseAttrSpec(k)
			if err != nil {
				return value.Nil, err
			}
			def.Attributes = append(def.Attributes, spec)
		}
	}
	if v, ok := kw["versionable"]; ok {
		if def.Versionable, err = boolArg(v); err != nil {
			return value.Nil, err
		}
	}
	if v, ok := kw["segment"]; ok && v.Kind == NString {
		def.Segment = v.Str
	}
	if v, ok := kw["document"]; ok && v.Kind == NString {
		def.Doc = v.Str
	}
	if _, err := in.DB.DefineClass(def); err != nil {
		return value.Nil, err
	}
	return value.Str(name), nil
}

func evalMake(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (make Class ...): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	_, kw, order, err := splitKeywords(args[1:])
	if err != nil {
		return value.Nil, err
	}
	var parents []core.ParentSpec
	attrs := map[string]value.Value{}
	for _, key := range order {
		n := kw[strings.ToLower(key)]
		if strings.EqualFold(key, "parent") {
			ln := n
			if ln.Kind == NQuote {
				ln = ln.Kids[0]
			}
			if ln.Kind != NList {
				return value.Nil, fmt.Errorf(":parent wants ((obj attr) ...): %w", ErrEval)
			}
			// Accept both ((p a) (p a)) and a single (p a).
			pairs := ln.Kids
			if len(ln.Kids) == 2 && ln.Kids[0].Kind != NList {
				pairs = []Node{ln}
			}
			for _, pr := range pairs {
				if pr.Kind != NList || len(pr.Kids) != 2 {
					return value.Nil, fmt.Errorf("bad :parent pair %s: %w", pr, ErrEval)
				}
				p, err := in.objArg(pr.Kids[0])
				if err != nil {
					return value.Nil, err
				}
				a, err := symName(pr.Kids[1])
				if err != nil {
					return value.Nil, err
				}
				parents = append(parents, core.ParentSpec{Parent: p, Attr: a})
			}
			continue
		}
		v, err := in.Eval(n)
		if err != nil {
			return value.Nil, err
		}
		attrs[key] = v
	}
	var o *object.Object
	if in.tx != nil {
		o, err = in.tx.New(class, attrs, parents...)
	} else {
		o, err = in.DB.Make(class, attrs, parents...)
	}
	if err != nil {
		return value.Nil, err
	}
	return value.Ref(o.UID()), nil
}

func evalGet(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (get obj attr): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	var o *object.Object
	switch {
	case in.snap != nil:
		o, err = in.snap.Get(id)
	case in.tx != nil:
		o, err = in.tx.ReadObject(id)
	default:
		o, err = in.DB.Get(id)
	}
	if err != nil {
		return value.Nil, err
	}
	return o.Get(attr), nil
}

func evalSet(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (set obj attr value): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	v, err := in.Eval(args[2])
	if err != nil {
		return value.Nil, err
	}
	if in.tx != nil {
		err = in.tx.WriteAttr(id, attr, v)
	} else {
		err = in.DB.Set(id, attr, v)
	}
	if err != nil {
		return value.Nil, err
	}
	return v, nil
}

func evalAttach(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (attach parent attr child): %w", ErrEval)
	}
	p, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	c, err := in.objArg(args[2])
	if err != nil {
		return value.Nil, err
	}
	if in.tx != nil {
		err = in.tx.Attach(p, attr, c)
	} else {
		err = in.DB.Attach(p, attr, c)
	}
	if err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalDetach(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (detach parent attr child): %w", ErrEval)
	}
	p, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	c, err := in.objArg(args[2])
	if err != nil {
		return value.Nil, err
	}
	if in.tx != nil {
		err = in.tx.Detach(p, attr, c)
	} else {
		err = in.DB.Detach(p, attr, c)
	}
	if err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalDelete(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (delete obj): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	var deleted []uid.UID
	if in.tx != nil {
		deleted, err = in.tx.Delete(id)
	} else {
		deleted, err = in.DB.Delete(id)
	}
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(deleted), nil
}

func evalDescribe(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (describe obj): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	s, err := in.DB.Engine().Describe(id)
	if err != nil {
		return value.Nil, err
	}
	return value.Str(s), nil
}

// evalSnapshot implements (snapshot begin|release|status): an explicit
// read-only MVCC snapshot session for the shell. begin pins the current
// commit boundary and returns its sequence number (re-begin releases the
// previous one); release unpins it and returns to live reads; status
// returns the pinned sequence, or nil when no snapshot is active.
func evalSnapshot(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (snapshot begin|release|status): %w", ErrEval)
	}
	verb, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	switch strings.ToLower(verb) {
	case "begin":
		if in.snap != nil {
			in.snap.Release()
		}
		in.snap = in.DB.BeginSnapshot()
		return value.Int(int64(in.snap.Seq())), nil
	case "release":
		if in.snap == nil {
			return value.Bool(false), nil
		}
		in.snap.Release()
		in.snap = nil
		return value.Bool(true), nil
	case "status":
		if in.snap == nil {
			return value.Nil, nil
		}
		return value.Int(int64(in.snap.Seq())), nil
	default:
		return value.Nil, fmt.Errorf("unknown snapshot verb %q (want begin/release/status): %w", verb, ErrEval)
	}
}

// parseQueryOpts reads the optional arguments of §3.1's messages. When
// a (profile ...) evaluation is in flight its collector rides along in
// q.Prof, so the engine attributes the query's costs to it.
func (in *Interp) parseQueryOpts(args []Node) (core.QueryOpts, error) {
	q := core.QueryOpts{Prof: in.prof}
	_, kw, _, err := splitKeywords(args)
	if err != nil {
		return q, err
	}
	if v, ok := kw["classes"]; ok {
		ln := v
		if ln.Kind == NQuote {
			ln = ln.Kids[0]
		}
		if ln.Kind == NSym {
			q.Classes = []string{ln.Sym}
		} else if ln.Kind == NList {
			for _, k := range ln.Kids {
				s, err := symName(k)
				if err != nil {
					return q, err
				}
				q.Classes = append(q.Classes, s)
			}
		}
	}
	if v, ok := kw["exclusive"]; ok {
		if q.Exclusive, err = boolArg(v); err != nil {
			return q, err
		}
	}
	if v, ok := kw["shared"]; ok {
		if q.Shared, err = boolArg(v); err != nil {
			return q, err
		}
	}
	if v, ok := kw["level"]; ok && v.Kind == NInt {
		q.Level = int(v.Int)
	}
	return q, nil
}

func evalComponentsOf(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (components-of obj ...): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	q, err := in.parseQueryOpts(args[1:])
	if err != nil {
		return value.Nil, err
	}
	var ids []uid.UID
	if in.snap != nil {
		ids, err = in.snap.ComponentsOf(id, q)
	} else {
		ids, err = in.DB.ComponentsOf(id, q)
	}
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(ids), nil
}

func evalParentsOf(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (parents-of obj ...): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	q, err := in.parseQueryOpts(args[1:])
	if err != nil {
		return value.Nil, err
	}
	var ids []uid.UID
	if in.snap != nil {
		ids, err = in.snap.ParentsOf(id, q)
	} else {
		ids, err = in.DB.ParentsOf(id, q)
	}
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(ids), nil
}

func evalAncestorsOf(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (ancestors-of obj ...): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	q, err := in.parseQueryOpts(args[1:])
	if err != nil {
		return value.Nil, err
	}
	var ids []uid.UID
	if in.snap != nil {
		ids, err = in.snap.AncestorsOf(id, q)
	} else {
		ids, err = in.DB.AncestorsOf(id, q)
	}
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(ids), nil
}

func evalRootsOf(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (roots-of obj): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	var ids []uid.UID
	if in.snap != nil {
		ids, err = in.snap.RootsOf(id)
	} else {
		ids, err = in.DB.RootsOf(id)
	}
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(ids), nil
}

func evalRel(rel func(*Interp, uid.UID, uid.UID) (bool, error)) builtin {
	return func(in *Interp, args []Node) (value.Value, error) {
		if len(args) != 2 {
			return value.Nil, fmt.Errorf("expected two objects: %w", ErrEval)
		}
		a, err := in.objArg(args[0])
		if err != nil {
			return value.Nil, err
		}
		b, err := in.objArg(args[1])
		if err != nil {
			return value.Nil, err
		}
		ok, err := rel(in, a, b)
		if err != nil {
			return value.Nil, err
		}
		return value.Bool(ok), nil
	}
}

func evalPred(pred func(*schema.Catalog, string, []string) (bool, error)) builtin {
	return func(in *Interp, args []Node) (value.Value, error) {
		if len(args) < 1 || len(args) > 2 {
			return value.Nil, fmt.Errorf("usage: (compositep Class [Attr]): %w", ErrEval)
		}
		class, err := symName(args[0])
		if err != nil {
			return value.Nil, err
		}
		var attr []string
		if len(args) == 2 {
			a, err := symName(args[1])
			if err != nil {
				return value.Nil, err
			}
			attr = []string{a}
		}
		ok, err := pred(in.DB.Catalog(), class, attr)
		if err != nil {
			return value.Nil, err
		}
		return value.Bool(ok), nil
	}
}

func evalCopy(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (copy obj): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	cp, _, err := in.DB.Engine().CopyComposite(id)
	if err != nil {
		return value.Nil, err
	}
	return value.Ref(cp), nil
}

func evalRenameAttribute(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (rename-attribute Class Old New): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	old, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	nu, err := symName(args[2])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Engine().RenameAttribute(class, old, nu); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

// ---- schema evolution ----

func evalDropAttribute(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (drop-attribute Class Attr): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	deleted, err := in.DB.Engine().DropAttribute(class, attr)
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(deleted), nil
}

func evalAddSuperclass(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (add-superclass Class Super): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	super, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Catalog().AddSuperclass(class, super); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalRemoveSuperclass(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (remove-superclass Class Super): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	super, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	deleted, err := in.DB.Engine().RemoveSuperclass(class, super)
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(deleted), nil
}

func evalDropClass(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (drop-class Class): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	deleted, err := in.DB.Engine().DropClass(class)
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(deleted), nil
}

func evalChangeAttribute(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 3 {
		return value.Nil, fmt.Errorf("usage: (change-attribute Class Attr I1|I2|I3|I4 [:deferred true]): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	kindName, err := symName(args[2])
	if err != nil {
		return value.Nil, err
	}
	var kind schema.ChangeKind
	switch strings.ToUpper(kindName) {
	case "I1":
		kind = schema.ChangeDropComposite
	case "I2":
		kind = schema.ChangeToShared
	case "I3":
		kind = schema.ChangeToIndependent
	case "I4":
		kind = schema.ChangeToDependent
	default:
		return value.Nil, fmt.Errorf("unknown change %q (want I1..I4): %w", kindName, ErrEval)
	}
	deferred := false
	if _, kw, _, err := splitKeywords(args[3:]); err == nil {
		if v, ok := kw["deferred"]; ok {
			deferred, _ = boolArg(v)
		}
	}
	if err := in.DB.Engine().ChangeAttributeType(class, attr, kind, deferred); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalMakeComposite(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 2 {
		return value.Nil, fmt.Errorf("usage: (make-composite Class Attr [:exclusive t] [:dependent t]): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	exclusive, dependent := true, true
	if _, kw, _, err := splitKeywords(args[2:]); err == nil {
		if v, ok := kw["exclusive"]; ok {
			exclusive, _ = boolArg(v)
		}
		if v, ok := kw["dependent"]; ok {
			dependent, _ = boolArg(v)
		}
	}
	if err := in.DB.Engine().MakeComposite(class, attr, exclusive, dependent); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalMakeExclusive(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (make-exclusive Class Attr): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Engine().MakeExclusive(class, attr); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

// ---- versions ----

func evalMakeVersionable(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (make-versionable Class :Attr v ...): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	_, kw, order, err := splitKeywords(args[1:])
	if err != nil {
		return value.Nil, err
	}
	attrs := map[string]value.Value{}
	for _, key := range order {
		v, err := in.Eval(kw[strings.ToLower(key)])
		if err != nil {
			return value.Nil, err
		}
		attrs[key] = v
	}
	g, v0, err := in.DB.Versions().CreateVersionable(class, attrs)
	if err != nil {
		return value.Nil, err
	}
	return value.ListOf(value.Ref(g), value.Ref(v0)), nil
}

func evalDerive(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (derive version): %w", ErrEval)
	}
	v, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	nv, err := in.DB.Versions().Derive(v)
	if err != nil {
		return value.Nil, err
	}
	return value.Ref(nv), nil
}

func evalSetDefault(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (set-default generic version): %w", ErrEval)
	}
	g, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	v := uid.Nil
	if args[1].Kind != NNil {
		if v, err = in.objArg(args[1]); err != nil {
			return value.Nil, err
		}
	}
	if err := in.DB.Versions().SetDefault(g, v); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalDefaultVersion(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (default-version generic): %w", ErrEval)
	}
	g, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	v, err := in.DB.Versions().DefaultVersion(g)
	if err != nil {
		return value.Nil, err
	}
	return value.Ref(v), nil
}

func evalResolve(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (resolve obj): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	r, err := in.DB.Versions().Resolve(id)
	if err != nil {
		return value.Nil, err
	}
	return value.Ref(r), nil
}

func evalDeleteVersion(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (delete-version version): %w", ErrEval)
	}
	v, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Versions().DeleteVersion(v); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalVersionsOf(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (versions-of generic): %w", ErrEval)
	}
	g, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	info, err := in.DB.Versions().Info(g)
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(info.Versions), nil
}

// ---- authorization ----

// parseAuth reads the paper's notation: sR, sW, s¬R (or ASCII s-R/s!R),
// wW, ...
func parseAuth(n Node) (authz.Auth, error) {
	name, err := symName(n)
	if err != nil {
		return authz.Auth{}, err
	}
	s := name
	var a authz.Auth
	switch {
	case strings.HasPrefix(s, "s"):
		a.Strength = authz.Strong
		s = s[1:]
	case strings.HasPrefix(s, "w"):
		a.Strength = authz.Weak
		s = s[1:]
	default:
		return authz.Auth{}, fmt.Errorf("bad authorization %q (want s/w prefix): %w", name, ErrEval)
	}
	a.Positive = true
	for _, neg := range []string{"¬", "-", "!"} {
		if strings.HasPrefix(s, neg) {
			a.Positive = false
			s = strings.TrimPrefix(s, neg)
			break
		}
	}
	switch strings.ToUpper(s) {
	case "R":
		a.Right = authz.Read
	case "W":
		a.Right = authz.Write
	default:
		return authz.Auth{}, fmt.Errorf("bad authorization right %q: %w", name, ErrEval)
	}
	return a, nil
}

func evalGrant(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (grant subject obj auth): %w", ErrEval)
	}
	subj, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	id, err := in.objArg(args[1])
	if err != nil {
		return value.Nil, err
	}
	a, err := parseAuth(args[2])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Authz().GrantObject(subj, id, a); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalGrantClass(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (grant-class subject Class auth): %w", ErrEval)
	}
	subj, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	class, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	a, err := parseAuth(args[2])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Authz().GrantClass(subj, class, a); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalRevoke(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (revoke subject obj): %w", ErrEval)
	}
	subj, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	id, err := in.objArg(args[1])
	if err != nil {
		return value.Nil, err
	}
	in.DB.Authz().RevokeObject(subj, id)
	return value.Bool(true), nil
}

func evalRevokeClass(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (revoke-class subject Class): %w", ErrEval)
	}
	subj, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	class, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	in.DB.Authz().RevokeClass(subj, class)
	return value.Bool(true), nil
}

func evalCheck(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (check subject obj R|W): %w", ErrEval)
	}
	subj, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	id, err := in.objArg(args[1])
	if err != nil {
		return value.Nil, err
	}
	rn, err := symName(args[2])
	if err != nil {
		return value.Nil, err
	}
	var right authz.Right
	switch strings.ToUpper(rn) {
	case "R", "READ":
		right = authz.Read
	case "W", "WRITE":
		right = authz.Write
	default:
		return value.Nil, fmt.Errorf("bad right %q: %w", rn, ErrEval)
	}
	ok, err := in.DB.Authz().Check(subj, id, right)
	if err != nil {
		return value.Nil, err
	}
	return value.Bool(ok), nil
}

func evalEffective(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (effective subject obj): %w", ErrEval)
	}
	subj, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	id, err := in.objArg(args[1])
	if err != nil {
		return value.Nil, err
	}
	res, err := in.DB.Authz().Effective(subj, id)
	if err != nil {
		return value.Nil, err
	}
	return value.Str(res.String()), nil
}

func stringArg(in *Interp, n Node) (string, error) {
	v, err := in.Eval(n)
	if err != nil {
		return "", err
	}
	if s, ok := v.AsString(); ok {
		return s, nil
	}
	return "", fmt.Errorf("expected a string, got %s: %w", v, ErrEval)
}

func evalSetOwner(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (set-owner obj subject): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	owner, err := stringArg(in, args[1])
	if err != nil {
		return value.Nil, err
	}
	in.DB.Authz().SetObjectOwner(id, owner)
	return value.Bool(true), nil
}

func evalOwnerOf(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 1 {
		return value.Nil, fmt.Errorf("usage: (owner-of obj): %w", ErrEval)
	}
	id, err := in.objArg(args[0])
	if err != nil {
		return value.Nil, err
	}
	return value.Str(in.DB.Authz().ObjectOwner(id)), nil
}

func evalDelegate(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 3 {
		return value.Nil, fmt.Errorf("usage: (delegate granter subject obj): %w", ErrEval)
	}
	granter, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	subject, err := stringArg(in, args[1])
	if err != nil {
		return value.Nil, err
	}
	id, err := in.objArg(args[2])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Authz().DelegateGrant(granter, subject, id); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalGrantAs(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 4 {
		return value.Nil, fmt.Errorf("usage: (grant-as granter subject obj auth): %w", ErrEval)
	}
	granter, err := stringArg(in, args[0])
	if err != nil {
		return value.Nil, err
	}
	subject, err := stringArg(in, args[1])
	if err != nil {
		return value.Nil, err
	}
	id, err := in.objArg(args[2])
	if err != nil {
		return value.Nil, err
	}
	a, err := parseAuth(args[3])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.Authz().GrantObjectAs(granter, subject, id, a); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalIntegrity(in *Interp, args []Node) (value.Value, error) {
	violations := in.DB.Engine().Integrity()
	elems := make([]value.Value, len(violations))
	for i, v := range violations {
		elems[i] = value.Str(v.String())
	}
	return value.ListOf(elems...), nil
}

// ---- introspection ----

func evalClasses(in *Interp, args []Node) (value.Value, error) {
	names := in.DB.Catalog().ClassNames()
	sort.Strings(names)
	elems := make([]value.Value, len(names))
	for i, n := range names {
		elems[i] = value.Str(n)
	}
	return value.ListOf(elems...), nil
}

func evalExtent(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (extent Class [:deep true]): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	deep := false
	if _, kw, _, err := splitKeywords(args[1:]); err == nil {
		if v, ok := kw["deep"]; ok {
			deep, _ = boolArg(v)
		}
	}
	ids, err := in.DB.Engine().Extent(class, deep)
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(ids), nil
}
