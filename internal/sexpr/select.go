package sexpr

import (
	"fmt"
	"strings"

	"repro/internal/query"
	"repro/internal/value"
)

// (select Class [:deep true] [:where PRED]) — associative queries over a
// class extent, with predicates over attribute paths:
//
//	PRED := (= PATH v) | (!= PATH v) | (< PATH v) | (<= PATH v)
//	      | (> PATH v) | (>= PATH v)
//	      | (exists PATH)
//	      | (and PRED...) | (or PRED...) | (not PRED)
//	      | (any PATH PRED) | (all PATH PRED)
//	      | (component-of obj)
//	PATH := Attr | (path Attr Attr ...)
//
// Example (the README's query): vehicles whose body weighs over 100 —
//
//	(select Vehicle :where (> (path Body Weight) 100))
func evalSelect(in *Interp, args []Node) (value.Value, error) {
	if len(args) < 1 {
		return value.Nil, fmt.Errorf("usage: (select Class [:deep t] [:where pred]): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	_, kw, _, err := splitKeywords(args[1:])
	if err != nil {
		return value.Nil, err
	}
	deep := false
	if v, ok := kw["deep"]; ok {
		if deep, err = boolArg(v); err != nil {
			return value.Nil, err
		}
	}
	var pred query.Expr
	if v, ok := kw["where"]; ok {
		if pred, err = in.parsePredicate(v); err != nil {
			return value.Nil, err
		}
	}
	ids, err := query.SelectIndexed(in.DB.Engine(), in.DB.Indexes(), class, deep, pred)
	if err != nil {
		return value.Nil, err
	}
	return refsToValue(ids), nil
}

// (create-index Class Attr) declares a secondary index; (drop-index Class
// Attr) removes it. Equality selections use indexes automatically.
func evalCreateIndex(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (create-index Class Attr): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.CreateIndex(class, attr); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

func evalDropIndex(in *Interp, args []Node) (value.Value, error) {
	if len(args) != 2 {
		return value.Nil, fmt.Errorf("usage: (drop-index Class Attr): %w", ErrEval)
	}
	class, err := symName(args[0])
	if err != nil {
		return value.Nil, err
	}
	attr, err := symName(args[1])
	if err != nil {
		return value.Nil, err
	}
	if err := in.DB.DropIndex(class, attr); err != nil {
		return value.Nil, err
	}
	return value.Bool(true), nil
}

// parsePath reads a PATH node.
func parsePath(n Node) (*query.Path, error) {
	if n.Kind == NSym {
		return query.Attr(n.Sym), nil
	}
	if n.Kind == NQuote {
		return parsePath(n.Kids[0])
	}
	if n.Kind == NList && len(n.Kids) >= 2 && n.Kids[0].IsSym("path") {
		segs := make([]string, 0, len(n.Kids)-1)
		for _, k := range n.Kids[1:] {
			s, err := symName(k)
			if err != nil {
				return nil, err
			}
			segs = append(segs, s)
		}
		return query.Attr(segs...), nil
	}
	return nil, fmt.Errorf("expected a path, got %s: %w", n, ErrEval)
}

// parsePredicate reads a PRED node.
func (in *Interp) parsePredicate(n Node) (query.Expr, error) {
	if n.Kind == NQuote {
		return in.parsePredicate(n.Kids[0])
	}
	if n.Kind != NList || len(n.Kids) == 0 || n.Kids[0].Kind != NSym {
		return nil, fmt.Errorf("bad predicate %s: %w", n, ErrEval)
	}
	op := strings.ToLower(n.Kids[0].Sym)
	args := n.Kids[1:]
	switch op {
	case "=", "!=", "<", "<=", ">", ">=":
		if len(args) != 2 {
			return nil, fmt.Errorf("(%s path value): %w", op, ErrEval)
		}
		p, err := parsePath(args[0])
		if err != nil {
			return nil, err
		}
		v, err := in.Eval(args[1])
		if err != nil {
			return nil, err
		}
		switch op {
		case "=":
			return p.Eq(v), nil
		case "!=":
			return p.Ne(v), nil
		case "<":
			return p.Lt(v), nil
		case "<=":
			return p.Le(v), nil
		case ">":
			return p.Gt(v), nil
		default:
			return p.Ge(v), nil
		}
	case "exists":
		if len(args) != 1 {
			return nil, fmt.Errorf("(exists path): %w", ErrEval)
		}
		p, err := parsePath(args[0])
		if err != nil {
			return nil, err
		}
		return p.Exists(), nil
	case "and", "or":
		kids := make([]query.Expr, 0, len(args))
		for _, a := range args {
			k, err := in.parsePredicate(a)
			if err != nil {
				return nil, err
			}
			kids = append(kids, k)
		}
		if op == "and" {
			return query.And(kids...), nil
		}
		return query.Or(kids...), nil
	case "not":
		if len(args) != 1 {
			return nil, fmt.Errorf("(not pred): %w", ErrEval)
		}
		k, err := in.parsePredicate(args[0])
		if err != nil {
			return nil, err
		}
		return query.Not(k), nil
	case "any", "all":
		if len(args) != 2 {
			return nil, fmt.Errorf("(%s path pred): %w", op, ErrEval)
		}
		p, err := parsePath(args[0])
		if err != nil {
			return nil, err
		}
		sub, err := in.parsePredicate(args[1])
		if err != nil {
			return nil, err
		}
		if op == "any" {
			return p.Any(sub), nil
		}
		return p.All(sub), nil
	case "component-of":
		if len(args) != 1 {
			return nil, fmt.Errorf("(component-of obj): %w", ErrEval)
		}
		id, err := in.objArg(args[0])
		if err != nil {
			return nil, err
		}
		return query.ComponentOf(id), nil
	default:
		return nil, fmt.Errorf("unknown predicate %q: %w", op, ErrEval)
	}
}
