// Package sexpr implements the ORION-flavored s-expression surface
// language of the paper (§2.3, §3): make-class, make with :parent,
// components-of, compositep, and friends — plus the schema evolution,
// versioning, and authorization messages of §4–§6. It powers the
// orion-shell REPL and lets the paper's examples run nearly verbatim.
package sexpr

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeKind discriminates parsed nodes.
type NodeKind uint8

// Node kinds.
const (
	NSym     NodeKind = iota // bare symbol: Vehicle, components-of
	NKeyword                 // :domain, :composite
	NString                  // "red"
	NInt                     // 42
	NReal                    // 2.5
	NBool                    // true / false (nil parses as NNil)
	NNil                     // nil
	NList                    // ( ... )
	NQuote                   // 'expr
	NRef                     // #3:7 — an object reference literal
)

// Node is a parsed s-expression node.
type Node struct {
	Kind NodeKind
	Sym  string // NSym, NKeyword (without the colon)
	Str  string // NString
	Int  int64  // NInt
	Real float64
	Bool bool
	Kids []Node // NList; NQuote has exactly one kid
	Ref  [2]uint64
	Pos  int // byte offset, for error messages
}

// String renders the node back to source form.
func (n Node) String() string {
	switch n.Kind {
	case NSym:
		return n.Sym
	case NKeyword:
		return ":" + n.Sym
	case NString:
		return quoteString(n.Str)
	case NInt:
		return fmt.Sprintf("%d", n.Int)
	case NReal:
		s := strconv.FormatFloat(n.Real, 'g', -1, 64)
		// Keep the literal float-shaped so it re-parses as a real, not an
		// int (e.g. -0 would otherwise come back as the integer 0).
		if !strings.ContainsAny(s, ".eEnN") { // NaN/Inf contain letters
			s += ".0"
		}
		return s
	case NBool:
		if n.Bool {
			return "true"
		}
		return "false"
	case NNil:
		return "nil"
	case NQuote:
		return "'" + n.Kids[0].String()
	case NRef:
		return fmt.Sprintf("#%d:%d", n.Ref[0], n.Ref[1])
	case NList:
		parts := make([]string, len(n.Kids))
		for i, k := range n.Kids {
			parts[i] = k.String()
		}
		return "(" + strings.Join(parts, " ") + ")"
	default:
		return "?"
	}
}

// IsSym reports whether n is the given symbol (case-insensitive, as in
// Lisp).
func (n Node) IsSym(s string) bool {
	return n.Kind == NSym && strings.EqualFold(n.Sym, s)
}

// quoteString renders a string literal using only the escapes the parser
// accepts (\n, \t, \", \\); all other runes — including control
// characters — are emitted raw, which the parser reads back verbatim, so
// String is a faithful normal form.
func quoteString(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
