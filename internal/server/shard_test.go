package server_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/db"
	"repro/internal/server"
)

// TestServerOverShardedStore pins the regression contract of the
// tentpole refactor: the wire protocol, sessions, and the s-expression
// surface behave identically over a 4-shard store — sharding is an
// Options knob, not an API change. Transactions spanning widgets on
// different shards commit through 2PC underneath without the client
// noticing.
func TestServerOverShardedStore(t *testing.T) {
	d, err := db.Open(db.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{Addr: "127.0.0.1:0"}
	srv := server.New(d, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		d.Close()
	})
	c := dial(t, srv)
	mustDo(t, c, testSchema)

	// Enough widgets to cover several shards.
	var refs []string
	for i := 0; i < 12; i++ {
		refs = append(refs, mustDo(t, c, fmt.Sprintf("(make Widget :Tag %d)", i)))
	}
	shards := map[int]bool{}
	for _, id := range d.Store().UIDs() {
		k, ok := d.Store().ShardOf(id)
		if !ok {
			t.Fatalf("%v unrouted", id)
		}
		shards[k] = true
	}
	if len(shards) < 2 {
		t.Fatalf("12 widgets landed on %d shard(s)", len(shards))
	}

	// A multi-object transaction over the wire: cross-shard 2PC under a
	// plain (begin)/(set)/(commit) session.
	mustDo(t, c, "(begin)")
	for i, ref := range refs {
		mustDo(t, c, fmt.Sprintf("(set %s Tag %d)", ref, 100+i))
	}
	if out := mustDo(t, c, "(commit)"); out != "true" {
		t.Fatalf("(commit) = %q", out)
	}
	for i, ref := range refs {
		if out := mustDo(t, c, "(get "+ref+" Tag)"); out != fmt.Sprint(100+i) {
			t.Fatalf("widget %d Tag = %q, want %d", i, out, 100+i)
		}
	}
	// Composite attach + query still behave: a part clusters with its
	// widget's unit, on the widget's shard.
	part := mustDo(t, c, "(make Part :Tag 1)")
	if strings.HasPrefix(part, "error") {
		t.Fatalf("(make Part) = %q", part)
	}
	if out := mustDo(t, c, "(attach "+refs[0]+" Parts "+part+")"); strings.HasPrefix(out, "error") {
		t.Fatalf("(attach) = %q", out)
	}
	if err := d.CheckShards(); err != nil {
		t.Fatal(err)
	}
	if err := d.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}
