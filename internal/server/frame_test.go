package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range []string{"", "x", "(make Widget :Tag 1)", strings.Repeat("q", 100_000)} {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, []byte(payload)); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFrame(&buf, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != payload {
			t.Fatalf("round trip: got %d bytes, want %d", len(got), len(payload))
		}
	}
}

func TestReadFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 1<<30)
	buf.Write(hdr[:])
	buf.WriteString("tiny")
	if _, err := ReadFrame(&buf, 1<<20); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	// Header promises 100 bytes, stream has 3: the decoder must fail with
	// unexpected EOF, not block or fabricate data.
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100)
	buf.Write(hdr[:])
	buf.WriteString("abc")
	if _, err := ReadFrame(&buf, DefaultMaxFrame); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want ErrUnexpectedEOF", err)
	}
	// Header itself cut short.
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0}), DefaultMaxFrame); err == nil {
		t.Fatal("short header should error")
	}
}

func TestDecodeReply(t *testing.T) {
	if got, err := DecodeReply(encodeResult("#3:7")); err != nil || got != "#3:7" {
		t.Fatalf("ok reply: got %q, %v", got, err)
	}
	_, err := DecodeReply(encodeError(CodeBusy, "connection limit 4 reached"))
	if !IsRemote(err, CodeBusy) {
		t.Fatalf("err = %v, want busy RemoteError", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Msg != "connection limit 4 reached" {
		t.Fatalf("message lost: %v", err)
	}
	if _, err := DecodeReply(nil); err == nil {
		t.Fatal("empty reply should error")
	}
	if _, err := DecodeReply([]byte("?huh")); err == nil {
		t.Fatal("unknown status byte should error")
	}
}
