package server_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sexpr"
)

const testSchema = `
(make-class 'Part :attributes '((Tag :domain integer)))
(make-class 'Widget :attributes '((Tag :domain integer)
                                  (Parts :domain (set-of Part) :composite true)))
`

// newServer boots an in-memory database with the test schema behind a
// TCP server on an ephemeral port.
func newServer(t *testing.T, cfg server.Config) (*db.DB, *server.Server) {
	t.Helper()
	d, err := db.Open(db.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Addr = "127.0.0.1:0"
	srv := server.New(d, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		d.Close()
	})
	c := dial(t, srv)
	mustDo(t, c, testSchema)
	c.Close()
	// Don't hand the server over until the schema session is gone, or a
	// MaxConns=1 test would race against its teardown.
	waitFor(t, "schema session teardown", func() bool { return srv.ActiveSessions() == 0 })
	return d, srv
}

func dial(t *testing.T, srv *server.Server) *client.Client {
	t.Helper()
	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustDo(t *testing.T, c *client.Client, program string) string {
	t.Helper()
	out, err := c.Do(program)
	if err != nil {
		t.Fatalf("do %q: %v", program, err)
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func txID(t *testing.T, reply string) lock.TxID {
	t.Helper()
	n, err := strconv.ParseUint(reply, 10, 64)
	if err != nil {
		t.Fatalf("(begin) reply %q is not a txn id", reply)
	}
	return lock.TxID(n)
}

func TestSessionsAreIsolated(t *testing.T) {
	_, srv := newServer(t, server.Config{})
	c1, c2 := dial(t, srv), dial(t, srv)
	mustDo(t, c1, `(define x 41)`)
	if out := mustDo(t, c1, "x"); out != "41" {
		t.Fatalf("c1 x = %q", out)
	}
	// (define) bindings are session state: c2 must not see c1's.
	if _, err := c2.Do("x"); err == nil {
		t.Fatal("c2 resolved c1's binding")
	}
	// But committed data is shared.
	ref := mustDo(t, c1, "(make Widget :Tag 7)")
	if out := mustDo(t, c2, "(get "+ref+" Tag)"); out != "7" {
		t.Fatalf("c2 read Tag %q, want 7", out)
	}
}

func TestTxnCommitAndAbortOverWire(t *testing.T) {
	_, srv := newServer(t, server.Config{})
	c1, c2 := dial(t, srv), dial(t, srv)
	ref := mustDo(t, c1, "(make Widget :Tag 1)")

	mustDo(t, c1, "(begin)")
	mustDo(t, c1, "(set "+ref+" Tag 2)")
	if out := mustDo(t, c1, "(commit)"); out != "true" {
		t.Fatalf("(commit) = %q", out)
	}
	if out := mustDo(t, c2, "(get "+ref+" Tag)"); out != "2" {
		t.Fatalf("after commit Tag = %q, want 2", out)
	}

	mustDo(t, c1, "(begin)")
	mustDo(t, c1, "(set "+ref+" Tag 3)")
	mustDo(t, c1, "(abort)")
	if out := mustDo(t, c2, "(get "+ref+" Tag)"); out != "2" {
		t.Fatalf("after abort Tag = %q, want 2", out)
	}
}

func TestPipelinedRequests(t *testing.T) {
	_, srv := newServer(t, server.Config{})
	c := dial(t, srv)
	for i := 0; i < 10; i++ {
		if err := c.Send(fmt.Sprintf("(define v%d %d) v%d", i, i*i, i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		out, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if want := strconv.Itoa(i * i); out != want {
			t.Fatalf("reply %d = %q, want %q (order broken?)", i, out, want)
		}
	}
}

func TestMaxConnsReturnsTypedBusy(t *testing.T) {
	d, srv := newServer(t, server.Config{MaxConns: 1})
	c1 := dial(t, srv)
	mustDo(t, c1, "(classes)") // round trip: c1 is admitted for sure
	c2 := dial(t, srv)
	_, err := c2.Do("(classes)")
	if !server.IsRemote(err, server.CodeBusy) {
		t.Fatalf("over-limit request: err = %v, want typed %s error", err, server.CodeBusy)
	}
	if n := d.Observability().Counter("server_conns_rejected_total").Load(); n == 0 {
		t.Fatal("rejected counter did not move")
	}
	// The slot frees on disconnect: a new connection gets in.
	c1.Close()
	waitFor(t, "session teardown", func() bool { return srv.ActiveSessions() == 0 })
	c3 := dial(t, srv)
	mustDo(t, c3, "(classes)")
}

func TestDisconnectAbortsTxnReleasesLocksAndGoroutines(t *testing.T) {
	d, srv := newServer(t, server.Config{})
	ref := func() string {
		c := dial(t, srv)
		defer c.Close()
		return mustDo(t, c, "(make Widget :Tag 1)")
	}()
	waitFor(t, "setup session teardown", func() bool { return srv.ActiveSessions() == 0 })

	locks := d.Txns().Locks()
	rel0 := d.Observability().Counter("lock_release_all_total").Load()
	goroutines0 := runtime.NumGoroutine()

	c, err := client.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	id := txID(t, mustDo(t, c, "(begin)"))
	mustDo(t, c, "(set "+ref+" Tag 9)")
	if n := locks.LockCount(id); n == 0 {
		t.Fatal("mid-transaction session should hold §7 locks")
	}

	// Abrupt disconnect: no (abort), no (commit), just a dead socket.
	c.Close()

	waitFor(t, "txn abort and lock release", func() bool {
		return srv.ActiveSessions() == 0 && locks.LockCount(id) == 0
	})
	if n := d.Observability().Counter("lock_release_all_total").Load(); n <= rel0 {
		t.Fatal("lock_release_all_total did not move on disconnect abort")
	}
	if n := d.Observability().Counter("server_disconnect_aborts_total").Load(); n == 0 {
		t.Fatal("server_disconnect_aborts_total did not move")
	}
	waitFor(t, "session goroutine exit", func() bool {
		return runtime.NumGoroutine() <= goroutines0
	})
}

func TestSlowReaderWriteTimeout(t *testing.T) {
	d, srv := newServer(t, server.Config{WriteTimeout: 150 * time.Millisecond})
	c := dial(t, srv)
	// Park a 512KB value in the session, then pipeline many requests for
	// it without ever reading a reply: the server's writes jam against
	// full socket buffers and the write deadline must cut the session
	// loose instead of parking its goroutine forever.
	big := strings.Repeat("x", 512<<10)
	mustDo(t, c, `(define big "`+big+`")`)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 64; i++ {
			if err := c.Send("big"); err != nil {
				return // server hung up on us, as it should
			}
		}
	}()
	waitFor(t, "slow-reader teardown", func() bool { return srv.ActiveSessions() == 0 })
	if n := d.Observability().Counter("server_write_timeouts_total").Load(); n == 0 {
		t.Fatal("server_write_timeouts_total did not move")
	}
	c.Close()
	<-done
}

func TestDrainFinishesInFlightAbortsIdle(t *testing.T) {
	d, srv := newServer(t, server.Config{})
	a, b := dial(t, srv), dial(t, srv)
	ref := mustDo(t, a, "(make Widget :Tag 1)")

	// Session A holds the X lock and goes idle mid-transaction.
	idA := txID(t, mustDo(t, a, "(begin)"))
	mustDo(t, a, "(set "+ref+" Tag 2)")
	// Session B's write is in flight, blocked behind A's lock.
	idB := txID(t, mustDo(t, b, "(begin)"))
	if err := b.Send("(set " + ref + " Tag 3)"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let B's eval reach the lock wait

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drain semantics: idle A was aborted (releasing its lock), which let
	// the in-flight B finish its evaluation and receive its reply.
	out, err := b.Recv()
	if err != nil || out != "3" {
		t.Fatalf("in-flight reply during drain: %q, %v (want 3, nil)", out, err)
	}
	locks := d.Txns().Locks()
	if n, m := locks.LockCount(idA), locks.LockCount(idB); n != 0 || m != 0 {
		t.Fatalf("locks leaked through drain: A=%d B=%d", n, m)
	}
	if srv.ActiveSessions() != 0 {
		t.Fatalf("%d sessions survived drain", srv.ActiveSessions())
	}
	// The listener is gone: no new connections.
	if c, err := net.DialTimeout("tcp", srv.Addr(), 200*time.Millisecond); err == nil {
		c.Close()
		t.Fatal("listener still accepting after drain")
	}
	if n := d.Observability().Counter("server_drains_total").Load(); n != 1 {
		t.Fatalf("server_drains_total = %d, want 1", n)
	}
}

// TestDeadlockVictimCanBeginImmediately pins the eager-abort contract of
// the session layer: when the lock manager dooms a session's transaction
// as a deadlock victim, the session must detach the dead transaction the
// moment the verdict surfaces — not leave it dangling until the client
// sends an explicit (abort). Before the fix, the victim session's
// (txn-status) kept reporting the dead transaction and the (begin N)
// retry the deadlock reply itself prescribes failed with "transaction
// already open".
func TestDeadlockVictimCanBeginImmediately(t *testing.T) {
	d, srv := newServer(t, server.Config{})
	c1, c2 := dial(t, srv), dial(t, srv)
	w1 := mustDo(t, c1, "(make Widget :Tag 1)")
	w2 := mustDo(t, c1, "(make Widget :Tag 2)")

	// c1 begins first, so c2's transaction is younger — the designated
	// victim once the cycle forms.
	id1 := txID(t, mustDo(t, c1, "(begin)"))
	id2 := txID(t, mustDo(t, c2, "(begin)"))
	if id2 <= id1 {
		t.Fatalf("txn ids not monotone: %d then %d", id1, id2)
	}
	mustDo(t, c1, "(set "+w1+" Tag 10)")
	mustDo(t, c2, "(set "+w2+" Tag 20)")

	// c2 blocks behind c1's X lock; c1's counter-request closes the cycle.
	// The victim (c2) is woken from its own lock wait with the deadlock
	// verdict, and the survivor's write proceeds.
	if err := c2.Send("(set " + w1 + " Tag 21)"); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let c2's eval reach the lock wait
	mustDo(t, c1, "(set "+w2+" Tag 11)")

	_, err := c2.Recv()
	if !server.IsRemote(err, sexpr.CodeDeadlock) {
		t.Fatalf("victim reply = %v, want typed %s error", err, sexpr.CodeDeadlock)
	}

	// The regression: the victim's transaction must already be detached.
	if out := mustDo(t, c2, "(txn-status)"); out != "nil" {
		t.Fatalf("(txn-status) after deadlock = %q, want nil", out)
	}
	if got := txID(t, mustDo(t, c2, fmt.Sprintf("(begin %d)", id2))); got != id2 {
		t.Fatalf("(begin %d) reopened as %d", id2, got)
	}
	// And its locks are gone: the retry can take the contested lock once
	// the survivor commits.
	mustDo(t, c1, "(commit)")
	mustDo(t, c2, "(set "+w1+" Tag 21)")
	if out := mustDo(t, c2, "(commit)"); out != "true" {
		t.Fatalf("(commit) after retry = %q", out)
	}
	locks := d.Txns().Locks()
	if n := locks.LockCount(lock.TxID(id2)); n != 0 {
		t.Fatalf("victim retry leaked %d locks", n)
	}
	if out := mustDo(t, c1, "(get "+w1+" Tag)"); out != "21" {
		t.Fatalf("retried write lost: Tag = %q, want 21", out)
	}
}

// TestSnapshotZeroLocksOverWire pins the §7/§MVCC split across the wire:
// a (snapshot begin) session scanning a composite hierarchy while
// another connection sits mid-transaction on it must finish promptly
// (it cannot block behind the writer's X locks) and must acquire zero
// locks doing it. Extends TestSnapshotZeroLocks to the server path.
func TestSnapshotZeroLocksOverWire(t *testing.T) {
	d, srv := newServer(t, server.Config{})
	w, r := dial(t, srv), dial(t, srv)

	root := mustDo(t, w, "(make Widget :Tag 0)")
	for i := 0; i < 40; i++ {
		mustDo(t, w, fmt.Sprintf("(make Part :Tag %d :parent ((%s Parts)))", i, root))
	}

	// Writer: open transaction, touch the root, stay idle holding X locks.
	mustDo(t, w, "(begin)")
	mustDo(t, w, "(set "+root+" Tag 1)")

	reg := d.Observability()
	acq0 := reg.Counter("lock_acquire_total").Load()
	wait0 := reg.Counter("lock_wait_total").Load()

	// Reader: long snapshot scan over the wire, concurrent with the
	// writer. The writer is idle (acquiring nothing), so any counter
	// movement below would be the reader's.
	mustDo(t, r, "(snapshot begin)")
	for i := 0; i < 25; i++ {
		out := mustDo(t, r, "(components-of "+root+")")
		if got := strings.Count(out, "#"); got != 40 {
			t.Fatalf("snapshot scan saw %d components, want 40", got)
		}
	}
	mustDo(t, r, "(snapshot release)")

	if acq := reg.Counter("lock_acquire_total").Load(); acq != acq0 {
		t.Fatalf("snapshot scan acquired %d locks over the wire, want 0", acq-acq0)
	}
	if w := reg.Counter("lock_wait_total").Load(); w != wait0 {
		t.Fatalf("snapshot scan waited on locks over the wire")
	}
	mustDo(t, w, "(commit)")
}

func TestOversizeFrameGetsProtoError(t *testing.T) {
	_, srv := newServer(t, server.Config{MaxFrame: 1 << 10})
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A length prefix over the limit: the server answers with a typed
	// proto error, then closes (the stream cannot resync). Send only the
	// header — unread body bytes would turn the close into a TCP reset.
	if _, err := conn.Write([]byte{0, 0, 8, 0}); err != nil { // 2KB promised, 1KB allowed
		t.Fatal(err)
	}
	payload, err := server.ReadFrame(conn, client.MaxReply)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.DecodeReply(payload); !server.IsRemote(err, server.CodeProto) {
		t.Fatalf("err = %v, want typed %s error", err, server.CodeProto)
	}
	if _, err := server.ReadFrame(conn, client.MaxReply); err != io.EOF {
		t.Fatalf("connection should close after proto error, got %v", err)
	}
}

func TestHTTPHealthAndMetrics(t *testing.T) {
	_, srv := newServer(t, server.Config{})
	hs := httptest.NewServer(srv.HTTPHandler())
	defer hs.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	code, body := get("/healthz")
	if code != http.StatusOK || !strings.Contains(body, `"ok"`) {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body = get("/metrics"); code != http.StatusOK || !strings.Contains(body, "server_conns_total") {
		t.Fatalf("/metrics missing server_ family (code %d)", code)
	}
	if code, _ = get("/flight"); code != http.StatusOK {
		t.Fatalf("/flight = %d", code)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	srv.Shutdown(ctx)
	if code, body = get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/healthz after drain = %d %q, want 503 draining", code, body)
	}
}

func TestShutdownRejectsNewConnections(t *testing.T) {
	_, srv := newServer(t, server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Dial(srv.Addr()); err == nil {
		t.Fatal("dial should fail once the listener is closed")
	}
}
