// Package client is the Go client for the orion-server wire protocol:
// framed s-expression requests over TCP, one reply per request, with
// explicit Send/Recv so callers can pipeline. Used by the server tests,
// the network benchmarks, and simrunner -net.
package client

import (
	"bufio"
	"net"
	"sync"
	"time"

	"repro/internal/server"
)

// MaxReply bounds reply payloads the client will accept. Replies can be
// much larger than requests (a scan renders every ref), so this is wider
// than the server's request bound.
const MaxReply = 64 << 20

// Client is one connection — one server session. Do is safe for
// sequential use; Send and Recv each take their own lock so one
// goroutine may pipeline sends while another drains replies, but replies
// are matched to requests purely by order.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex
	bw   *bufio.Writer
	rmu  sync.Mutex
	br   *bufio.Reader
}

// Dial connects to an orion-server.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	return &Client{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}, nil
}

// Do sends one program and waits for its reply: the rendered value of
// the last expression, or a *server.RemoteError carrying the remote
// failure code.
func (c *Client) Do(program string) (string, error) {
	if err := c.Send(program); err != nil {
		return "", err
	}
	return c.Recv()
}

// Send writes one request frame without waiting for the reply.
func (c *Client) Send(program string) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := server.WriteFrame(c.bw, []byte(program)); err != nil {
		return err
	}
	return c.bw.Flush()
}

// Recv reads the next reply frame. Replies arrive in request order.
func (c *Client) Recv() (string, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	payload, err := server.ReadFrame(c.br, MaxReply)
	if err != nil {
		return "", err
	}
	return server.DecodeReply(payload)
}

// Close tears the connection down. The server aborts any transaction
// the session still holds.
func (c *Client) Close() error { return c.conn.Close() }
