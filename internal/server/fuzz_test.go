package server

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzDecodeFrame checks the wire decoder against arbitrary byte
// streams: it must never panic, never allocate more than the declared
// limit (a hostile length prefix may not balloon memory), and every
// accepted frame must survive a re-encode/decode round trip. Mirrors
// FuzzDecodeWALPayload for the storage layer.
func FuzzDecodeFrame(f *testing.F) {
	frame := func(payload []byte) []byte {
		var buf bytes.Buffer
		WriteFrame(&buf, payload)
		return buf.Bytes()
	}
	f.Add(frame(nil))
	f.Add(frame([]byte("(classes)")))
	f.Add(frame([]byte("(make Widget :Tag 1)")))
	f.Add([]byte{})                       // empty stream
	f.Add([]byte{0, 0})                   // truncated header
	f.Add([]byte{0, 0, 0, 100, 'a'})      // truncated body
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // 4GiB length prefix, no body
	big := frame([]byte("abc"))
	binary.BigEndian.PutUint32(big[:4], 1<<31) // lying prefix over real bytes
	f.Add(big)
	f.Fuzz(func(t *testing.T, b []byte) {
		const max = 1 << 16
		payload, err := ReadFrame(bytes.NewReader(b), max)
		if err != nil {
			return
		}
		if len(payload) > max {
			t.Fatalf("decoder returned %d bytes above the %d limit", len(payload), max)
		}
		// Accepted frames round-trip.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, payload); err != nil {
			t.Fatal(err)
		}
		again, err := ReadFrame(&buf, max)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !bytes.Equal(payload, again) {
			t.Fatalf("round trip changed payload: %x vs %x", payload, again)
		}
	})
}
