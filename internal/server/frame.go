// Package server is the TCP front-end over the composite-object store:
// one listener, one session per connection, each session an independent
// sexpr.Interp whose (begin)/(commit) transactions and (snapshot begin)
// reads map straight onto txn.Manager. See DESIGN.md §14.
//
// Wire protocol: both directions carry length-prefixed frames — a 4-byte
// big-endian payload length followed by that many bytes of UTF-8. A
// request payload is an s-expression program; the whole program is one
// unit of evaluation and gets exactly one reply frame. A reply payload's
// first byte is a status tag:
//
//	'+' — success; the rest is the rendered value of the last expression
//	'-' — failure; the rest is "<code> <message>" where <code> is a
//	      machine-readable word (sexpr.CodeDeadlock, CodeBusy, …)
//
// The frame layer enforces a maximum payload length on receive and
// never trusts the prefix for allocation: a lying length allocates only
// what actually arrives, so a hostile peer cannot balloon memory with a
// 4-byte header.
package server

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
)

// DefaultMaxFrame bounds request payloads unless Config overrides it.
const DefaultMaxFrame = 4 << 20

// frameHeader is the length prefix size.
const frameHeader = 4

// ErrFrameTooLarge reports a length prefix above the receive limit. The
// stream cannot be resynchronized after it; the connection must close.
var ErrFrameTooLarge = errors.New("server: frame exceeds size limit")

// Reply status tags.
const (
	statusOK  = '+'
	statusErr = '-'
)

// Error codes minted by the server itself (evaluation errors carry
// sexpr.ErrorCode codes instead).
const (
	// CodeBusy rejects a connection over the admission limit.
	CodeBusy = "busy"
	// CodeShutdown rejects a connection while the server drains.
	CodeShutdown = "shutdown"
	// CodeProto reports a malformed frame (e.g. oversized length prefix).
	CodeProto = "proto"
)

// RemoteError is a '-' reply decoded on the receiving side: the failure
// of the remote evaluation (or admission), carried as a code + message.
type RemoteError struct {
	Code string
	Msg  string
}

func (e *RemoteError) Error() string { return "remote: " + e.Code + ": " + e.Msg }

// IsRemote reports whether err is a RemoteError with the given code.
func IsRemote(err error, code string) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == code
}

// WriteFrame writes one length-prefixed frame.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [frameHeader]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one frame, rejecting payloads longer than max before
// anything is allocated for them. The body is read through io.CopyN into
// a growing buffer rather than a make([]byte, n) up front, so a length
// prefix the stream cannot back (truncated or hostile) costs only the
// bytes that actually arrived. A short body returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max uint32) ([]byte, error) {
	var hdr [frameHeader]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if n == 0 {
		return nil, nil
	}
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r, int64(n)); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeResult builds a '+' reply payload.
func encodeResult(s string) []byte {
	b := make([]byte, 0, 1+len(s))
	return append(append(b, statusOK), s...)
}

// encodeError builds a '-' reply payload.
func encodeError(code, msg string) []byte {
	b := make([]byte, 0, 1+len(code)+1+len(msg))
	b = append(b, statusErr)
	b = append(b, code...)
	b = append(b, ' ')
	return append(b, msg...)
}

// DecodeReply splits a reply payload into its result text or RemoteError.
func DecodeReply(payload []byte) (string, error) {
	if len(payload) == 0 {
		return "", errors.New("server: empty reply frame")
	}
	switch payload[0] {
	case statusOK:
		return string(payload[1:]), nil
	case statusErr:
		code, msg, _ := strings.Cut(string(payload[1:]), " ")
		return "", &RemoteError{Code: code, Msg: msg}
	default:
		return "", fmt.Errorf("server: bad reply status %q", payload[0])
	}
}
