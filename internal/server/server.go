package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/sexpr"
)

// Config tunes one Server.
type Config struct {
	// Addr is the TCP listen address (default 127.0.0.1:4707; use port 0
	// for an ephemeral port — Addr() reports what was bound).
	Addr string
	// MaxConns is the admission limit: connections over it are answered
	// with a CodeBusy reply and closed instead of queueing (default 64).
	MaxConns int
	// MaxFrame bounds request payload size (default DefaultMaxFrame).
	MaxFrame uint32
	// WriteTimeout bounds each reply write: a reader too slow to drain
	// its replies has its session torn down rather than parking a server
	// goroutine on a full socket forever (default 10s).
	WriteTimeout time.Duration
	// DrainTimeout bounds Close's wait for sessions after a failed or
	// absent graceful drain (default 5s).
	DrainTimeout time.Duration
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:4707"
	}
	if c.MaxConns <= 0 {
		c.MaxConns = 64
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 5 * time.Second
	}
}

// metrics is the server_ instrument family, bound once at New so the
// family is present in /metrics from boot (promcheck relies on that).
type metrics struct {
	connsTotal    *obs.Counter
	connsRejected *obs.Counter
	connsActive   *obs.Gauge
	requests      *obs.Counter
	requestErrs   *obs.Counter
	requestNs     *obs.Histogram
	rxBytes       *obs.Counter
	txBytes       *obs.Counter
	writeTimeouts *obs.Counter
	txnAborts     *obs.Counter
	drains        *obs.Counter
}

// Server owns one listener and its sessions. One session per accepted
// connection; each session is an independent sexpr.Interp, so explicit
// transactions, snapshots, and (define) bindings are per-connection.
type Server struct {
	d   *db.DB
	cfg Config
	m   metrics

	ln net.Listener
	wg sync.WaitGroup // accept loop + one goroutine per session

	mu       sync.Mutex
	sessions map[*session]struct{}
	started  bool
	draining bool
	closed   bool
}

// New builds a server over an open database. Start actually listens.
func New(d *db.DB, cfg Config) *Server {
	cfg.fill()
	r := d.Observability()
	return &Server{
		d:   d,
		cfg: cfg,
		m: metrics{
			connsTotal:    r.Counter("server_conns_total"),
			connsRejected: r.Counter("server_conns_rejected_total"),
			connsActive:   r.Gauge("server_conns_active"),
			requests:      r.Counter("server_requests_total"),
			requestErrs:   r.Counter("server_request_errors_total"),
			requestNs:     r.Histogram("server_request_ns", nil),
			rxBytes:       r.Counter("server_rx_bytes_total"),
			txBytes:       r.Counter("server_tx_bytes_total"),
			writeTimeouts: r.Counter("server_write_timeouts_total"),
			txnAborts:     r.Counter("server_disconnect_aborts_total"),
			drains:        r.Counter("server_drains_total"),
		},
		sessions: make(map[*session]struct{}),
	}
}

// Start binds the listener and launches the accept loop.
func (s *Server) Start() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return errors.New("server: already started")
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.started = true
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// Addr reports the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// ActiveSessions reports the number of live sessions (for /healthz and
// the leak tests).
func (s *Server) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed: drain or shutdown
		}
		if !s.admit(conn) {
			continue
		}
	}
}

// admit applies the admission policy to a fresh connection: over the
// limit (or draining) the client gets one typed error frame and a close
// — graceful backpressure, never a silent hang — otherwise a session
// starts. Returns false when the connection was turned away.
func (s *Server) admit(conn net.Conn) bool {
	s.mu.Lock()
	if s.draining || s.closed {
		s.mu.Unlock()
		s.refuse(conn, CodeShutdown, "server is draining")
		return false
	}
	if len(s.sessions) >= s.cfg.MaxConns {
		s.mu.Unlock()
		s.m.connsRejected.Inc()
		s.refuse(conn, CodeBusy, fmt.Sprintf("connection limit %d reached", s.cfg.MaxConns))
		return false
	}
	sess := &session{s: s, conn: conn, in: sexpr.NewInterp(s.d)}
	s.sessions[sess] = struct{}{}
	s.mu.Unlock()
	s.m.connsTotal.Inc()
	s.m.connsActive.Add(1)
	s.wg.Add(1)
	go sess.run()
	return true
}

// refuse answers a turned-away connection with one error frame.
func (s *Server) refuse(conn net.Conn, code, msg string) {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	WriteFrame(conn, encodeError(code, msg)) // best effort; the close is the decision
	conn.Close()
}

func (s *Server) removeSession(sess *session) {
	s.mu.Lock()
	delete(s.sessions, sess)
	s.mu.Unlock()
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// Shutdown drains gracefully: stop accepting, let every in-flight
// evaluation finish and flush its reply (a commit being processed when
// the signal lands completes durably), then abort whatever transactions
// idle sessions still hold and close them. Blocks until all sessions are
// gone or ctx expires; on expiry remaining connections are force-closed.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	alreadyDraining := s.draining
	s.draining = true
	ln := s.ln
	sessions := make([]*session, 0, len(s.sessions))
	for sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	if !alreadyDraining {
		s.m.drains.Inc()
	}
	if ln != nil {
		ln.Close()
	}
	// Wake idle readers: an expired read deadline pops them out of
	// ReadFrame immediately, and teardown aborts their transactions. A
	// session mid-evaluation is not parked in a read, so it finishes its
	// request and replies before its next read observes the deadline.
	for _, sess := range sessions {
		sess.conn.SetReadDeadline(time.Now())
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.mu.Lock()
		for sess := range s.sessions {
			sess.conn.Close()
		}
		s.mu.Unlock()
		<-done
	}
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	return err
}

// Close shuts down without grace beyond DrainTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// HTTPHandler serves the observability surface plus liveness: the full
// internal/obs handler (/metrics, /metrics.json, /trace, /slow, /flight)
// and /healthz reporting session count and drain state (503 once
// draining, so load balancers stop routing before the listener vanishes).
func (s *Server) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.d.Observability().Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		draining := s.isDraining()
		st := "ok"
		code := http.StatusOK
		if draining {
			st = "draining"
			code = http.StatusServiceUnavailable
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(map[string]any{
			"status":   st,
			"sessions": s.ActiveSessions(),
		})
	})
	return mux
}

// session is one connection's state: the conn, its interpreter, and the
// read source. Everything session-scoped (open transaction, snapshot,
// defines) lives in the Interp; teardown closes it, which aborts the
// transaction and releases the snapshot no matter how the connection
// ended.
type session struct {
	s    *Server
	conn net.Conn
	in   *sexpr.Interp
}

func (sess *session) run() {
	s := sess.s
	defer func() {
		if sess.in.InTxn() {
			s.m.txnAborts.Inc()
		}
		sess.in.Close()
		sess.conn.Close()
		s.removeSession(sess)
		s.m.connsActive.Add(-1)
		s.wg.Done()
	}()
	for {
		payload, err := ReadFrame(sess.conn, s.cfg.MaxFrame)
		if err != nil {
			if errors.Is(err, ErrFrameTooLarge) {
				// The stream is unrecoverable but the client can still
				// learn why before the close.
				sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
				WriteFrame(sess.conn, encodeError(CodeProto, err.Error()))
			}
			return
		}
		s.m.rxBytes.Add(uint64(len(payload) + frameHeader))
		start := time.Now()
		v, err := sess.in.EvalString(string(payload))
		s.m.requests.Inc()
		s.m.requestNs.Observe(time.Since(start).Nanoseconds())
		var reply []byte
		if err != nil {
			s.m.requestErrs.Inc()
			reply = encodeError(sexpr.ErrorCode(err), err.Error())
		} else {
			reply = encodeResult(v.String())
		}
		sess.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if err := WriteFrame(sess.conn, reply); err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.m.writeTimeouts.Inc()
			}
			return
		}
		sess.conn.SetWriteDeadline(time.Time{})
		s.m.txBytes.Add(uint64(len(reply) + frameHeader))
	}
}
