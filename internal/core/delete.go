package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/obs"
	"repro/internal/uid"
)

// Delete removes the object, applying the Deletion Rule (§2.2):
//
//	del(O') => del(O) if any of:
//	 1. O' has a dependent exclusive reference to O;
//	 2. O' has a dependent shared reference to O and DS(O) = {O'};
//	 3. an object O'' with del(O') => del(O'') exists such that (3.a) O''
//	    has a dependent exclusive reference to O, or (3.b) O'' has a
//	    dependent shared reference to O and DS(O) = {O''}.
//
// Condition 3 is the recursive case, handled by cascading. Independent
// references (exclusive or shared) never propagate deletion; the
// referenced components merely lose this parent. The forward references
// held by surviving parents of every deleted object are removed; weak
// references from unrelated objects are left dangling, as in ORION.
//
// It returns the UIDs actually deleted, in UID order.
func (e *Engine) Delete(id uid.UID) ([]uid.UID, error) {
	return e.DeleteTx(0, id)
}

// DeleteTx is Delete tagged with the transaction performing the removal;
// every WAL record of the cascade (surviving-parent rewrites and the
// per-casualty deletes) carries the tag, so replay applies the cascade
// atomically or not at all.
func (e *Engine) DeleteTx(tx TxnID, id uid.UID) ([]uid.UID, error) {
	e.mu.Lock()
	if _, ok := e.objects[id]; !ok {
		e.mu.Unlock()
		return nil, fmt.Errorf("%v: %w", id, ErrNoObject)
	}
	start := time.Now()
	var sp uint64
	if tr := e.o.tr; tr.Active() {
		sp = tr.Begin(0, "core.delete", obs.F("uid", id))
	}
	dirty := newDirtySet()
	deleted := uid.NewSet()
	e.deleteLocked(id, deleted, dirty, sp)
	n := len(deleted.Slice())
	e.o.deletes.Inc()
	if n > 1 {
		e.o.deleteCascaded.Add(uint64(n - 1))
	}
	dur := time.Since(start)
	e.o.deleteNs.Observe(int64(dur))
	if e.o.slow.Active() {
		e.o.slow.Observe("core.delete", dur, fmt.Sprintf("%v cascade=%d", id, n-1))
	}
	if tr := e.o.tr; tr.Active() {
		tr.End(sp, "core.delete", obs.F("deleted", n))
	}
	for _, d := range deleted.Slice() {
		e.bumpLocked(d)
	}
	e.bumpDirtyLocked(dirty)
	out := append([]uid.UID(nil), deleted.Slice()...)
	e.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	// Survivor rewrites first, then the casualty deletes, matching the
	// order the exclusive-latch path used: replaying the log must not
	// resurrect a reference to an object whose delete record precedes it.
	if err := e.writeThrough(tx, dirty, uid.Nil, uid.Nil, out); err != nil {
		return nil, err
	}
	return out, nil
}

// deleteLocked removes id and cascades. deleted accumulates the casualty
// list and doubles as the visited set for cyclic part hierarchies. span
// is the enclosing trace span (0 when tracing is off); each cascaded
// object opens a nested core.delete.object span under it, so a trace
// dump reconstructs the cascade tree exactly.
func (e *Engine) deleteLocked(id uid.UID, deleted *uid.Set, dirty *dirtySet, span uint64) {
	if deleted.Contains(id) {
		return
	}
	o, ok := e.objects[id]
	if !ok {
		return
	}
	deleted.Add(id)
	if tr := e.o.tr; tr.Active() {
		span = tr.Begin(span, "core.delete.object", obs.F("uid", id))
		defer tr.End(span, "core.delete.object")
	}
	cl, err := e.cat.ClassByID(id.Class)
	if err != nil {
		// Class dropped out from under the instance; just unlink it.
		e.unlinkFromParents(id, deleted, dirty)
		delete(e.objects, id)
		return
	}
	// Make sure the flags consulted below are current.
	if n := e.cat.ApplyPending(cl.Name, o); n > 0 {
		e.o.evolutionReplays.Add(uint64(n))
	}
	attrs, err := e.cat.Attributes(cl.Name)
	if err == nil {
		for _, spec := range attrs {
			if !spec.Composite {
				continue
			}
			for _, childID := range o.Get(spec.Name).Refs(nil) {
				e.reapAfterUnlink(id, childID, spec.Dependent, spec.Exclusive, deleted, dirty, span)
			}
		}
	}
	// Remove forward references to id from its surviving composite parents.
	e.unlinkFromParents(id, deleted, dirty)
	delete(e.objects, id)
	if ext := e.extents[id.Class]; ext != nil {
		ext.Remove(id)
	}
}

// reapRule classifies one severed reference for the trace: which clause
// of the Deletion Rule fired, or why the child survived. The last-parent
// case (Rule 2) gets its own label so traces distinguish "deleted
// because dependent exclusive" from "deleted because the last
// dependent-shared parent died".
func reapRule(dependent, exclusive, lastDS bool) string {
	switch {
	case dependent && exclusive:
		return "cascade-dependent-exclusive"
	case dependent && lastDS:
		return "cascade-last-ds-parent"
	case dependent:
		return "survives-ds-parents-remain"
	default:
		return "survives-independent"
	}
}

// reapAfterUnlink removes the reverse reference from childID to parent and
// cascades deletion per the Deletion Rule given the (dependent, exclusive)
// flags of the severed reference. span is the deleting parent's trace
// span.
func (e *Engine) reapAfterUnlink(parent, childID uid.UID, dependent, exclusive bool, deleted *uid.Set, dirty *dirtySet, span uint64) {
	child, ok := e.objects[childID]
	if !ok || deleted.Contains(childID) {
		return
	}
	child.RemoveReverse(parent)
	lastDS := len(child.DS()) == 0
	if tr := e.o.tr; tr.Active() {
		tr.Point(span, "core.delete.reap", obs.F("child", childID),
			obs.F("rule", reapRule(dependent, exclusive, lastDS)))
	}
	if dependent && (exclusive || lastDS) {
		// Rule 1 (dependent exclusive) or Rule 2 (last dependent-shared
		// parent is gone).
		e.deleteLocked(childID, deleted, dirty, span)
		return
	}
	dirty.add(childID)
}

// unlinkFromParents strips forward references to id from every surviving
// composite parent of id.
func (e *Engine) unlinkFromParents(id uid.UID, deleted *uid.Set, dirty *dirtySet) {
	o := e.objects[id]
	if o == nil {
		return
	}
	for _, r := range o.Reverse() {
		if deleted.Contains(r.Parent) {
			continue
		}
		p, ok := e.objects[r.Parent]
		if !ok {
			continue
		}
		for _, name := range p.AttrNames() {
			if v := p.Get(name); v.ContainsRef(id) {
				p.Set(name, v.WithoutRef(id))
			}
		}
		dirty.add(r.Parent)
	}
}

// TopologyViolation describes one broken invariant found by CheckTopology
// or Integrity.
type TopologyViolation struct {
	Object uid.UID
	Rule   string
}

func (v TopologyViolation) String() string {
	return fmt.Sprintf("%v: %s", v.Object, v.Rule)
}

// CheckTopology verifies Topology Rules 1–3 (§2.2) plus reverse/forward
// consistency for one object, returning every violation found. The
// operational checks make violations unreachable through the public API;
// this is the oracle the property tests use.
func (e *Engine) CheckTopology(id uid.UID) []TopologyViolation {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.checkTopologyLocked(id)
}

func (e *Engine) checkTopologyLocked(id uid.UID) []TopologyViolation {
	var out []TopologyViolation
	o, ok := e.objects[id]
	if !ok {
		return []TopologyViolation{{id, "object does not exist"}}
	}
	ix, dx := len(o.IX()), len(o.DX())
	is, ds := len(o.IS()), len(o.DS())
	if ix > 1 {
		out = append(out, TopologyViolation{id, fmt.Sprintf("rule 1: card(IX)=%d > 1", ix)})
	}
	if dx > 1 {
		out = append(out, TopologyViolation{id, fmt.Sprintf("rule 1: card(DX)=%d > 1", dx)})
	}
	if ix >= 1 && dx >= 1 {
		out = append(out, TopologyViolation{id, "rule 2: both IX and DX references present"})
	}
	if (ix >= 1 || dx >= 1) && (is >= 1 || ds >= 1) {
		out = append(out, TopologyViolation{id, "rule 3: exclusive and shared references mixed"})
	}
	// Reverse references must be mirrored by a forward composite reference
	// with the same flags. Reverse composite *generic* references (§5.3,
	// Count > 0) summarize version-level references and have no forward
	// mirror of their own; they are exempt.
	for _, r := range o.Reverse() {
		if r.Count > 0 {
			continue
		}
		p, ok := e.objects[r.Parent]
		if !ok {
			out = append(out, TopologyViolation{id, fmt.Sprintf("reverse ref to missing parent %v", r.Parent)})
			continue
		}
		pcl, err := e.cat.ClassByID(p.Class())
		if err != nil {
			out = append(out, TopologyViolation{id, fmt.Sprintf("parent %v has unknown class", r.Parent)})
			continue
		}
		found := false
		attrs, _ := e.cat.Attributes(pcl.Name)
		for _, spec := range attrs {
			if !spec.Composite || !p.Get(spec.Name).ContainsRef(id) {
				continue
			}
			if spec.Dependent == r.Dependent && spec.Exclusive == r.Exclusive {
				found = true
				break
			}
		}
		if !found {
			out = append(out, TopologyViolation{id, fmt.Sprintf("reverse ref %v not mirrored by a matching forward reference", r)})
		}
	}
	return out
}

// Integrity verifies the whole graph: topology rules on every object,
// every forward composite reference mirrored by a reverse reference, and
// no composite reference dangling. It returns all violations (dangling
// weak references are permitted, as in ORION, and not reported).
func (e *Engine) Integrity() []TopologyViolation {
	e.mu.RLock()
	ids := make([]uid.UID, 0, len(e.objects))
	for id := range e.objects {
		ids = append(ids, id)
	}
	e.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })

	var out []TopologyViolation
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, id := range ids {
		out = append(out, e.checkTopologyLocked(id)...)
		o := e.objects[id]
		if o == nil {
			continue
		}
		cl, err := e.cat.ClassByID(id.Class)
		if err != nil {
			out = append(out, TopologyViolation{id, "unknown class"})
			continue
		}
		attrs, err := e.cat.Attributes(cl.Name)
		if err != nil {
			continue
		}
		for _, spec := range attrs {
			if !spec.Composite {
				continue
			}
			for _, r := range o.Get(spec.Name).Refs(nil) {
				child, ok := e.objects[r]
				if !ok {
					out = append(out, TopologyViolation{id, fmt.Sprintf("composite reference %s -> %v dangles", spec.Name, r)})
					continue
				}
				if !child.HasReverse(id) {
					out = append(out, TopologyViolation{id, fmt.Sprintf("composite reference %s -> %v lacks a reverse reference", spec.Name, r)})
				}
			}
		}
	}
	return out
}
