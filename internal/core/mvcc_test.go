package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// mvccEngine builds a self-referential Part class (shared composite
// Subparts, so re-parenting and multi-parent shapes are legal) for the
// snapshot tests.
func mvccEngine(t *testing.T) *Engine {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("Name", schema.StringDomain),
		schema.NewCompositeSetAttr("Subparts", "Part").WithExclusive(false).WithDependent(false),
	}}); err != nil {
		t.Fatal(err)
	}
	return NewEngine(cat)
}

// mvccChain builds root -> mid -> leaf and returns the three UIDs.
func mvccChain(t *testing.T, e *Engine) (root, mid, leaf uid.UID) {
	t.Helper()
	mk := func(name string) uid.UID {
		o, err := e.New("Part", map[string]value.Value{"Name": value.Str(name)})
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	root, mid, leaf = mk("root"), mk("mid"), mk("leaf")
	for _, link := range [][2]uid.UID{{root, mid}, {mid, leaf}} {
		if err := e.Attach(link[0], "Subparts", link[1]); err != nil {
			t.Fatal(err)
		}
	}
	return root, mid, leaf
}

func wantUIDs(t *testing.T, label string, got, want []uid.UID) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: got %v, want %v", label, got, want)
		}
	}
}

// TestSnapshotIsolation: a snapshot keeps serving the commit boundary it
// was begun at while auto-commit writers move the live state — including
// across deletes — and a snapshot begun later sees the new state.
func TestSnapshotIsolation(t *testing.T) {
	e := mvccEngine(t)
	root, mid, leaf := mvccChain(t, e)

	snap := e.BeginSnapshot()
	defer snap.Release()

	// Move the live state: rename the leaf, grow a new child under root,
	// and detach+delete mid's subtree link.
	if err := e.Set(leaf, "Name", value.Str("renamed")); err != nil {
		t.Fatal(err)
	}
	extra, err := e.New("Part", map[string]value.Value{"Name": value.Str("extra")},
		ParentSpec{Parent: root, Attr: "Subparts"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete(leaf); err != nil {
		t.Fatal(err)
	}

	// The snapshot still sees the old world.
	o, err := snap.Get(leaf)
	if err != nil {
		t.Fatalf("snapshot lost deleted leaf: %v", err)
	}
	if got, _ := o.Get("Name").AsString(); got != "leaf" {
		t.Fatalf("snapshot leaf Name = %q, want %q", got, "leaf")
	}
	comps, err := snap.ComponentsOf(root, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantUIDs(t, "snapshot components", comps, []uid.UID{mid, leaf})
	anc, err := snap.AncestorsOf(leaf, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantUIDs(t, "snapshot ancestors", anc, []uid.UID{mid, root})
	if snap.Exists(extra.UID()) {
		t.Fatal("snapshot sees an object created after it began")
	}
	if snap.Len() != 3 {
		t.Fatalf("snapshot Len = %d, want 3", snap.Len())
	}

	// A fresh snapshot sees the new world.
	now := e.BeginSnapshot()
	defer now.Release()
	if now.Exists(leaf) {
		t.Fatal("fresh snapshot still sees deleted leaf")
	}
	comps, err = now.ComponentsOf(root, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantUIDs(t, "fresh components", comps, []uid.UID{mid, extra.UID()})
}

// TestSnapshotLockFreeUnderExclusiveLatch: snapshot queries complete
// while the engine latch is held exclusively — the zero-engine-mutex
// half of the acceptance criterion (the zero-§7-locks half lives in
// internal/txn, where the lock manager is instrumented).
func TestSnapshotLockFreeUnderExclusiveLatch(t *testing.T) {
	e := mvccEngine(t)
	root, _, leaf := mvccChain(t, e)
	snap := e.BeginSnapshot()
	defer snap.Release()

	e.mu.Lock()
	done := make(chan error, 1)
	go func() {
		if _, err := snap.ComponentsOf(root, QueryOpts{}); err != nil {
			done <- err
			return
		}
		if _, err := snap.AncestorsOf(leaf, QueryOpts{}); err != nil {
			done <- err
			return
		}
		if _, err := snap.Partitions(leaf); err != nil {
			done <- err
			return
		}
		if _, err := snap.RootsOf(leaf); err != nil {
			done <- err
			return
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("snapshot query under exclusive latch: %v", err)
		}
	case <-time.After(5 * time.Second):
		e.mu.Unlock()
		t.Fatal("snapshot query blocked while the engine latch was held exclusively")
	}
	e.mu.Unlock()
}

// TestSnapshotCacheIsolation pins the staleness-window fix: the shared
// generation-counter cache, refilled after a commit, must never be
// served to a snapshot begun before that commit. The snapshot path keeps
// private memos and never touches the shared cache.
func TestSnapshotCacheIsolation(t *testing.T) {
	e := mvccEngine(t)
	root, mid, leaf := mvccChain(t, e)

	// Warm the shared ancestor cache with the pre-commit order.
	if _, err := e.AncestorsOf(leaf, QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	snap := e.BeginSnapshot()
	defer snap.Release()

	// Commit a new grandparent and refill the shared cache with the
	// post-commit order.
	super, err := e.New("Part", map[string]value.Value{"Name": value.Str("super")})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(super.UID(), "Subparts", root); err != nil {
		t.Fatal(err)
	}
	live, err := e.AncestorsOf(leaf, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	wantUIDs(t, "live ancestors", live, []uid.UID{mid, root, super.UID()})

	// The pre-commit snapshot must keep answering with the pre-commit
	// order, shared-cache contents notwithstanding — twice, so the second
	// (memoized) answer is checked too.
	for i := 0; i < 2; i++ {
		got, err := snap.AncestorsOf(leaf, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		wantUIDs(t, fmt.Sprintf("snapshot ancestors (read %d)", i+1), got, []uid.UID{mid, root})
	}
}

// TestSnapshotCatalogIsolation pins the PR 6 follow-up fix: a snapshot
// answers with the schema catalog that was live at its commit boundary,
// not the evolving one. Dropping the composite attribute after
// BeginSnapshot must not change what the snapshot's traversals see —
// the pinned catalog still plans over Subparts — while live queries and
// snapshots begun after the evolution see the post-drop schema.
func TestSnapshotCatalogIsolation(t *testing.T) {
	e := mvccEngine(t)
	root, mid, leaf := mvccChain(t, e)

	snap := e.BeginSnapshot()
	defer snap.Release()

	if _, err := e.DropAttribute("Part", "Subparts"); err != nil {
		t.Fatal(err)
	}
	// Live traversal: no composite attribute left to follow.
	live, err := e.ComponentsOf(root, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(live) != 0 {
		t.Fatalf("live components after drop = %v, want none", live)
	}

	// The pre-evolution snapshot still plans over Subparts and still sees
	// the full hierarchy — twice, so the memoized plan is checked too.
	for i := 0; i < 2; i++ {
		got, err := snap.ComponentsOf(root, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		wantUIDs(t, fmt.Sprintf("snapshot components (read %d)", i+1), got, []uid.UID{mid, leaf})
	}
	// Class filters resolve against the pinned catalog too.
	anc, err := snap.AncestorsOf(leaf, QueryOpts{Classes: []string{"Part"}})
	if err != nil {
		t.Fatal(err)
	}
	wantUIDs(t, "snapshot ancestors", anc, []uid.UID{mid, root})

	// A snapshot begun after the evolution pins the post-drop catalog.
	after := e.BeginSnapshot()
	defer after.Release()
	got, err := after.ComponentsOf(root, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("post-evolution snapshot components = %v, want none", got)
	}
}

// TestSnapshotCatalogViewShared: consecutive snapshots under an unchanged
// schema share one pinned clone; a catalog mutation makes the next
// snapshot pin a fresh one.
func TestSnapshotCatalogViewShared(t *testing.T) {
	e := mvccEngine(t)
	s1 := e.BeginSnapshot()
	s2 := e.BeginSnapshot()
	if s1.cat != s2.cat {
		t.Fatal("snapshots under an unchanged catalog pinned different clones")
	}
	s1.Release()
	s2.Release()
	if _, err := e.cat.DefineClass(schema.ClassDef{Name: "Other"}); err != nil {
		t.Fatal(err)
	}
	s3 := e.BeginSnapshot()
	defer s3.Release()
	if s3.cat == s1.cat {
		t.Fatal("snapshot after a catalog mutation reused the stale clone")
	}
	if !s3.cat.Has("Other") {
		t.Fatal("fresh clone missing the new class")
	}
}

// TestSnapshotTombstonePruned: once the only versions of a deleted
// object fall below the watermark its whole chain is reclaimed, and a
// later snapshot simply never sees the object.
func TestSnapshotTombstonePruned(t *testing.T) {
	e := mvccEngine(t)
	_, _, leaf := mvccChain(t, e)
	if _, err := e.Delete(leaf); err != nil {
		t.Fatal(err)
	}
	e.VersionGC()
	snap := e.BeginSnapshot()
	defer snap.Release()
	if snap.Exists(leaf) {
		t.Fatal("snapshot sees object whose tombstone passed the watermark")
	}
	if snap.Len() != e.Len() {
		t.Fatalf("snapshot Len = %d, engine Len = %d", snap.Len(), e.Len())
	}
}

// TestVersionGCPlateau: churning one object with only short-lived
// snapshots holds the live-version gauge at a plateau (install-time
// pruning), while a pinned snapshot grows the chain and Release +
// VersionGC collapses it back.
func TestVersionGCPlateau(t *testing.T) {
	e := mvccEngine(t)
	o, err := e.New("Part", nil)
	if err != nil {
		t.Fatal(err)
	}
	id := o.UID()
	for i := 0; i < 2000; i++ {
		if err := e.Set(id, "Name", value.Str(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 {
			s := e.BeginSnapshot()
			if !s.Exists(id) {
				t.Fatal("short-lived snapshot lost the object")
			}
			s.Release()
		}
	}
	// One live object, no active snapshot: the store should hold ~one
	// version per object, not thousands.
	if live := e.VersionsLive(); live > int64(e.Len())+4 {
		t.Fatalf("mvcc_versions_live = %d after churn with short-lived snapshots (objects: %d)", live, e.Len())
	}

	// A pinned snapshot grows the chain...
	pin := e.BeginSnapshot()
	for i := 0; i < 300; i++ {
		if err := e.Set(id, "Name", value.Str(fmt.Sprintf("pinned%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if live := e.VersionsLive(); live < 200 {
		t.Fatalf("mvcc_versions_live = %d while a snapshot pins the watermark, want >= 200", live)
	}
	// ...and releasing it lets the sweep reclaim the tail.
	pin.Release()
	reclaimed := e.VersionGC()
	if reclaimed < 200 {
		t.Fatalf("VersionGC reclaimed %d nodes after release, want >= 200", reclaimed)
	}
	if live := e.VersionsLive(); live > int64(e.Len())+4 {
		t.Fatalf("mvcc_versions_live = %d after release+GC (objects: %d)", live, e.Len())
	}
}
