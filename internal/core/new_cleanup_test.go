package core

import (
	"testing"

	"repro/internal/uid"
	"repro/internal/value"
)

// TestNewFailureLeavesNoTrace: a make that fails after partial progress
// (attribute references already linked, some parents already attached)
// must unlink everything it touched — no dangling reverse references in
// children, no forward references in parents.
func TestNewFailureLeavesNoTrace(t *testing.T) {
	e := propEngine(t)
	leaf, err := e.New("Leaf", nil)
	if err != nil {
		t.Fatal(err)
	}
	parent, err := e.New("DX", nil)
	if err != nil {
		t.Fatal(err)
	}
	// Parts accepts only Leaf instances, so attaching the new DX object to
	// parent.Parts fails after the attrs loop already linked leaf.
	_, err = e.New("DX", map[string]value.Value{"Parts": value.RefSet(leaf.UID())},
		ParentSpec{Parent: parent.UID(), Attr: "Parts"})
	if err == nil {
		t.Fatal("make succeeded, wanted domain mismatch")
	}
	l, err := e.Get(leaf.UID())
	if err != nil {
		t.Fatal(err)
	}
	if l.HasAnyReverse() {
		t.Fatalf("leaf kept reverse refs from the failed make: %v", l.Reverse())
	}
	if v := e.Integrity(); len(v) != 0 {
		t.Fatalf("integrity violations after failed make: %v", v)
	}
}

// TestNewFailureUnwindsEarlierParents: with several parents, a failure on
// the Nth attach must also remove the forward references the first N-1
// parents already gained.
func TestNewFailureUnwindsEarlierParents(t *testing.T) {
	e := propEngine(t)
	p1, err := e.New("DS", nil)
	if err != nil {
		t.Fatal(err)
	}
	dead := uid.UID{Class: p1.UID().Class, Serial: p1.UID().Serial + 1000}
	_, err = e.New("DS", nil,
		ParentSpec{Parent: p1.UID(), Attr: "Subs"},
		ParentSpec{Parent: dead, Attr: "Subs"})
	if err == nil {
		t.Fatal("make succeeded, wanted missing-parent error")
	}
	got, err := e.Get(p1.UID())
	if err != nil {
		t.Fatal(err)
	}
	if refs := got.Get("Subs").Refs(nil); len(refs) != 0 {
		t.Fatalf("first parent kept forward refs from the failed make: %v", refs)
	}
	if v := e.Integrity(); len(v) != 0 {
		t.Fatalf("integrity violations after failed make: %v", v)
	}
}
