package core

import (
	"repro/internal/uid"
)

// Placement-root resolution. Clustering policies key on one deterministic
// composite unit per object, but RootsOf computes the full root SET (an
// object linked into several hierarchies has several roots). For placement
// the §2.3 convention picks a single chain: follow each object's FIRST
// composite parent — the same parent creation clusters against — up to an
// object with no composite parents. The result is the "placement root":
// stable under the first-parent chain, cheap to compute (one chain, not a
// BFS), and the key used for per-unit heat attribution and reclustering.

// placementRootLocked walks the first-parent chain of id to its top. The
// caller holds the engine latch (either side). Unknown IDs and cycles
// (possible mid-splice in legacy mode) terminate the walk at the last
// resolved object, so the result is always a live UID — id itself when
// parentless.
func (e *Engine) placementRootLocked(id uid.UID) uid.UID {
	cur := id
	var seen *uid.Set
	for hops := 0; ; hops++ {
		o, ok := e.objects[cur]
		if !ok {
			return cur
		}
		ps := o.Parents()
		if len(ps) == 0 {
			return cur
		}
		next := ps[0]
		// Cycle guard: allocate the set lazily — chains are almost always
		// short and acyclic.
		if hops >= 8 {
			if seen == nil {
				seen = uid.NewSet(cur)
			}
			if !seen.Add(next) {
				return cur
			}
		}
		cur = next
	}
}

// PlacementRootOf resolves id's placement root under the shared latch.
// The storage layer's miss attribution and the background reclusterer use
// it (never while the engine latch is held — see Store.SetHeat).
func (e *Engine) PlacementRootOf(id uid.UID) uid.UID {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.placementRootLocked(id)
}
