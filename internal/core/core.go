// Package core implements the paper's primary contribution: the extended
// model of composite objects (§2–§3).
//
// An Engine maintains the object graph against a schema catalog and
// enforces, on every mutation:
//
//   - the five reference types (weak, dependent/independent ×
//     exclusive/shared composite) carried by attribute specifications;
//   - Topology Rules 1–4 (§2.2), via the Make-Component Rule: an object
//     acquiring an exclusive composite parent must have no composite
//     parent at all, and one acquiring a shared composite parent must have
//     no exclusive composite parent;
//   - the Deletion Rule (§2.2): deleting an object recursively deletes the
//     objects it references through dependent exclusive references, and
//     through dependent shared references when it is the last
//     dependent-shared parent;
//   - reverse composite references (§2.4): every component records its
//     parents with D and X flags, kept in the component object itself.
//
// The Engine also supports the legacy [KIM87b] model as a baseline
// (SetLegacy): only dependent exclusive composite references, strict
// top-down creation, no re-parenting — the three shortcomings §1 calls
// out become errors, which the tests demonstrate and the benches compare.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// Sentinel errors for composite-object operations.
var (
	ErrNoObject          = errors.New("core: no such object")
	ErrNotComposite      = errors.New("core: attribute is not composite")
	ErrTopologyViolation = errors.New("core: topology rule violation")
	ErrAttrOccupied      = errors.New("core: single-valued attribute already references an object")
	ErrNotReferenced     = errors.New("core: parent does not reference child through attribute")
	ErrLegacyRestriction = errors.New("core: operation not allowed under the KIM87b legacy model")
	ErrChangeRejected    = errors.New("core: state-dependent schema change rejected")
)

// TxnID identifies the transaction a mutation belongs to, threaded from
// the transaction layer through the engine into the persistence hook so
// the write-ahead log can delimit transactional record groups. The zero
// value means auto-commit: the mutation is its own transaction and its
// log records apply unconditionally on replay.
type TxnID uint64

// Hook receives write-through notifications so a persistence layer can
// mirror the in-memory graph. tx tags the notification with the
// transaction performing the mutation (0 = auto-commit). Near is the
// clustering hint (the first parent at creation, §2.3), valid only for
// the creating write.
type Hook interface {
	OnWrite(tx TxnID, o *object.Object, near uid.UID) error
	OnDelete(tx TxnID, id uid.UID) error
}

// PlacementHook is an optional Hook extension for persistence layers
// running a clustering policy. When the hook implements it, the engine
// calls OnWritePlaced instead of OnWrite, additionally passing the
// object's placement root (the top of its first-parent chain, computed
// while the engine latch is held — hooks must NOT call latched engine
// methods like RootsOf from inside the notification). near keeps OnWrite's
// meaning: the §2.3 first parent, valid only for the creating write.
type PlacementHook interface {
	Hook
	OnWritePlaced(tx TxnID, o *object.Object, near, root uid.UID) error
}

// AutoCommitSyncer is an optional Hook extension. After an auto-commit
// mutation (tx 0) finishes its write-through, the engine calls
// SyncAutoCommit exactly once, outside the engine latch, so a durability
// fsync covers the whole operation without stalling concurrent writers.
// Hooks that do not implement it get no call; transactional mutations
// sync at their Boundary instead.
type AutoCommitSyncer interface {
	SyncAutoCommit() error
}

// MultiHook fans write-through notifications out to several hooks in
// order (e.g. the persistence hook plus index maintenance). A failing
// hook aborts the chain.
type MultiHook []Hook

// OnWrite implements Hook.
func (m MultiHook) OnWrite(tx TxnID, o *object.Object, near uid.UID) error {
	for _, h := range m {
		if err := h.OnWrite(tx, o, near); err != nil {
			return err
		}
	}
	return nil
}

// OnWritePlaced implements PlacementHook by forwarding the placement root
// to every member that understands it and falling back to OnWrite for the
// rest.
func (m MultiHook) OnWritePlaced(tx TxnID, o *object.Object, near, root uid.UID) error {
	for _, h := range m {
		var err error
		if ph, ok := h.(PlacementHook); ok {
			err = ph.OnWritePlaced(tx, o, near, root)
		} else {
			err = h.OnWrite(tx, o, near)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// OnDelete implements Hook.
func (m MultiHook) OnDelete(tx TxnID, id uid.UID) error {
	for _, h := range m {
		if err := h.OnDelete(tx, id); err != nil {
			return err
		}
	}
	return nil
}

// SyncAutoCommit implements AutoCommitSyncer by forwarding to every
// member that implements it.
func (m MultiHook) SyncAutoCommit() error {
	for _, h := range m {
		if s, ok := h.(AutoCommitSyncer); ok {
			if err := s.SyncAutoCommit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ParentSpec names one (ParentObject.i ParentAttributeName.i) pair of the
// make message (§2.3).
type ParentSpec struct {
	Parent uid.UID
	Attr   string
}

// Engine is the composite-object manager. It is safe for concurrent use;
// mutations take the engine latch exclusively, while the pure queries in
// query.go run under the shared (read) side and so proceed in parallel
// (concurrency control at the transaction level is the lock manager's
// job, §7).
type Engine struct {
	mu      sync.RWMutex
	cat     *schema.Catalog
	gen     *uid.Generator
	objects map[uid.UID]*object.Object
	extents map[uid.ClassID]*uid.Set
	hook    Hook
	legacy  bool

	// Read-path state. gens holds a monotonic generation counter per UID,
	// bumped (under the write lock) whenever the object is mutated,
	// created, deleted, restored, or evicted; cached query results carry
	// the generation sum of everything they read and are invalidated by
	// any change to it. cache and the obs instruments have their own
	// synchronization because readers fill them while holding only the
	// read lock.
	gens  map[uid.UID]uint64
	cache *readCache
	o     engineObs
	trav  TraversalOpts

	// mvcc is the copy-on-write version store behind BeginSnapshot: per-
	// object version chains keyed by a commit-sequence clock, installed
	// by the mutation funnels and read lock-free by Snapshot queries
	// (see mvcc.go).
	mvcc mvccState

	// catView caches the immutable catalog clone snapshots pin (one per
	// catalog version; see catalogView).
	catViewMu sync.Mutex
	catView   *schema.Catalog
}

// NewEngine returns an empty engine over the catalog, instrumented with
// a private obs registry (swap in a shared one with SetObservability).
func NewEngine(cat *schema.Catalog) *Engine {
	e := &Engine{
		cat:     cat,
		gen:     uid.NewGenerator(),
		objects: make(map[uid.UID]*object.Object),
		extents: make(map[uid.ClassID]*uid.Set),
		gens:    make(map[uid.UID]uint64),
		cache:   newReadCache(),
		trav:    TraversalOpts{}.normalized(),
	}
	e.mvcc.pending = make(map[TxnID]*uid.Set)
	e.mvcc.active = make(map[uint64]int)
	e.bindObs(obs.NewRegistry())
	return e
}

// Catalog returns the engine's schema catalog.
func (e *Engine) Catalog() *schema.Catalog { return e.cat }

// SetHook installs the persistence hook (nil to disable).
func (e *Engine) SetHook(h Hook) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.hook = h
}

// SetLegacy toggles the [KIM87b] baseline model. In legacy mode composite
// attributes must be dependent exclusive, objects may only be composed at
// creation time under an already-existing parent (top-down), and existing
// objects cannot be attached (no bottom-up assembly, no shared parts, no
// re-use after dismantling).
func (e *Engine) SetLegacy(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.legacy = on
}

// Legacy reports whether the engine runs the [KIM87b] baseline model.
func (e *Engine) Legacy() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.legacy
}

// Generator exposes the UID generator (the version layer derives instance
// UIDs from it).
func (e *Engine) Generator() *uid.Generator { return e.gen }

// Restore overwrites (or re-creates) the engine's record for o.UID() with
// o, without running any composite semantics. It is the transaction
// layer's undo primitive: before-images captured with Snapshot are put
// back verbatim on abort. The restore is pushed through the persistence
// hook, tagged with the aborting transaction so the WAL discards the
// whole group (forward writes and compensations alike) on replay.
func (e *Engine) Restore(o *object.Object) error { return e.RestoreTx(0, o) }

// RestoreTx is Restore tagged with the transaction performing the undo.
func (e *Engine) RestoreTx(tx TxnID, o *object.Object) error {
	e.mu.Lock()
	e.objects[o.UID()] = o
	e.extentFor(o.Class()).Add(o.UID())
	e.gen.Seed(o.UID().Serial)
	e.bumpLocked(o.UID())
	e.mu.Unlock()
	d := newDirtySet()
	d.add(o.UID())
	return e.writeThrough(tx, d, uid.Nil, uid.Nil, nil)
}

// Evict removes the object without running the Deletion Rule — the undo
// primitive for aborted creations, written through the persistence hook
// for the same reason as Restore. It is a no-op if the object is absent.
func (e *Engine) Evict(id uid.UID) error { return e.EvictTx(0, id) }

// EvictTx is Evict tagged with the transaction performing the undo.
func (e *Engine) EvictTx(tx TxnID, id uid.UID) error {
	e.mu.Lock()
	if _, ok := e.objects[id]; !ok {
		e.mu.Unlock()
		return nil
	}
	delete(e.objects, id)
	if ext := e.extents[id.Class]; ext != nil {
		ext.Remove(id)
	}
	e.bumpLocked(id)
	e.mu.Unlock()
	return e.writeThrough(tx, nil, uid.Nil, uid.Nil, []uid.UID{id})
}

// Snapshot returns a deep copy of the object for undo logging.
func (e *Engine) Snapshot(id uid.UID) (*object.Object, error) {
	e.mu.RLock()
	o, err := e.readObject(id, e.cat.CurrentCC())
	if err == nil {
		cp := o.Clone()
		e.mu.RUnlock()
		return cp, nil
	}
	e.mu.RUnlock()
	if !errors.Is(err, errStaleCC) {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err = e.get(id)
	if err != nil {
		return nil, err
	}
	return o.Clone(), nil
}

// Load installs an object restored from storage without running creation
// semantics. It is used when reopening a database.
func (e *Engine) Load(o *object.Object) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.cat.ClassByID(o.Class()); err != nil {
		return err
	}
	e.objects[o.UID()] = o
	e.extentFor(o.Class()).Add(o.UID())
	e.gen.Seed(o.UID().Serial)
	e.bumpLocked(o.UID())
	e.installLocked([]uid.UID{o.UID()})
	return nil
}

func (e *Engine) extentFor(c uid.ClassID) *uid.Set {
	s := e.extents[c]
	if s == nil {
		s = uid.NewSet()
		e.extents[c] = s
	}
	return s
}

// get returns the live object, applying pending deferred schema changes
// (§4.3) first. ApplyPending mutates the object, so get requires the
// caller to hold e.mu for WRITING; read-locked paths use readObject,
// which detects pending changes and reports errStaleCC instead of
// applying them.
func (e *Engine) get(id uid.UID) (*object.Object, error) {
	o, ok := e.objects[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNoObject)
	}
	cl, err := e.cat.ClassByID(id.Class)
	if err != nil {
		return nil, err
	}
	if n := e.cat.ApplyPending(cl.Name, o); n > 0 {
		e.o.evolutionReplays.Add(uint64(n))
		if tr := e.o.tr; tr.Active() {
			tr.Point(0, "core.evolution.replay", obs.F("uid", id), obs.F("changes", n))
		}
		e.bumpLocked(id)
	}
	return o, nil
}

// readObject is the read-locked counterpart of get: it returns the live
// object without mutating anything. When deferred schema changes newer
// than the object's CC stamp apply to its class, it fails with errStaleCC
// and the caller must retry under the write lock via get. cc is the
// catalog's current change counter (pass e.cat.CurrentCC(), hoisted so
// loops pay the catalog lock once). Caller holds e.mu (read or write).
func (e *Engine) readObject(id uid.UID, cc uint64) (*object.Object, error) {
	o, ok := e.objects[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNoObject)
	}
	if o.CC() < cc {
		cl, err := e.cat.ClassByID(id.Class)
		if err != nil {
			return nil, err
		}
		if len(e.cat.Pending(cl.Name, o.CC())) > 0 {
			e.o.staleRetries.Inc()
			return nil, errStaleCC
		}
	}
	return o, nil
}

// Get returns the object with the given UID. The returned object is the
// engine's live record: callers must treat it as read-only and go through
// Engine methods for mutation.
func (e *Engine) Get(id uid.UID) (*object.Object, error) {
	e.mu.RLock()
	o, err := e.readObject(id, e.cat.CurrentCC())
	e.mu.RUnlock()
	if err == nil || !errors.Is(err, errStaleCC) {
		return o, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.get(id)
}

// Mutate runs fn on the live object under the engine's write lock, then
// invalidates the read-path caches for it. Layers that keep out-of-band
// bookkeeping inside engine objects (the version manager's generic-level
// reverse references, §5.3) must use it instead of mutating an object
// returned by Get, so concurrent readers never observe a torn write and
// cached ancestor/partition sets are dropped.
func (e *Engine) Mutate(id uid.UID, fn func(o *object.Object)) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err := e.get(id)
	if err != nil {
		return err
	}
	fn(o)
	e.bumpLocked(id)
	e.installLocked([]uid.UID{id})
	return nil
}

// Exists reports whether the object is present.
func (e *Engine) Exists(id uid.UID) bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	_, ok := e.objects[id]
	return ok
}

// Len returns the number of live objects.
func (e *Engine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return len(e.objects)
}

// ClassOf returns the class metaobject of an object.
func (e *Engine) ClassOf(id uid.UID) (*schema.Class, error) {
	return e.cat.ClassByID(id.Class)
}

// Extent returns the UIDs of the instances of the class, optionally
// including instances of subclasses, in UID order.
func (e *Engine) Extent(class string, includeSubclasses bool) ([]uid.UID, error) {
	names := []string{class}
	if includeSubclasses {
		names = e.cat.AllSubclasses(class)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	var out []uid.UID
	for _, n := range names {
		cl, err := e.cat.Class(n)
		if err != nil {
			return nil, err
		}
		out = append(out, e.extents[cl.ID].Slice()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// New creates an instance of class per the make message (§2.3): attrs are
// the initial attribute values, parents the (ParentObject.i
// ParentAttributeName.i) pairs making the new instance a part of existing
// composite objects at creation time. When several parents are given, all
// the named attributes must be shared composite attributes (a consequence
// of Topology Rule 3, enforced here as the paper prescribes). The new
// object is clustered with the first parent.
func (e *Engine) New(class string, attrs map[string]value.Value, parents ...ParentSpec) (*object.Object, error) {
	return e.NewTx(0, class, attrs, parents...)
}

// NewTx is New tagged with the transaction performing the creation.
func (e *Engine) NewTx(tx TxnID, class string, attrs map[string]value.Value, parents ...ParentSpec) (*object.Object, error) {
	o, dirty, near, err := e.makeLocked(class, attrs, parents)
	if err != nil {
		return nil, err
	}
	return o, e.writeThrough(tx, dirty, o.UID(), near, nil)
}

// makeLocked runs the make message under the exclusive latch and returns
// the created object, the dirty set for write-through, and the
// clustering hint.
func (e *Engine) makeLocked(class string, attrs map[string]value.Value, parents []ParentSpec) (*object.Object, *dirtySet, uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cl, err := e.cat.Class(class)
	if err != nil {
		return nil, nil, uid.Nil, err
	}
	specs, err := e.cat.Attributes(class)
	if err != nil {
		return nil, nil, uid.Nil, err
	}
	// Validate parent specs before allocating anything.
	if len(parents) > 1 {
		for _, p := range parents {
			pcl, err := e.cat.ClassByID(p.Parent.Class)
			if err != nil {
				return nil, nil, uid.Nil, err
			}
			a, err := e.cat.Attribute(pcl.Name, p.Attr)
			if err != nil {
				return nil, nil, uid.Nil, err
			}
			if !a.Composite || a.Exclusive {
				return nil, nil, uid.Nil, fmt.Errorf("core: multiple parents require shared composite attributes; %s.%s is %s: %w",
					pcl.Name, p.Attr, a.RefKind(), ErrTopologyViolation)
			}
		}
	}
	o := object.New(e.gen.Next(cl.ID))
	o.SetCC(e.cat.CurrentCC())
	// Apply :init defaults, then explicit values.
	for _, s := range specs {
		if !s.Initial.IsNil() {
			o.Set(s.Name, s.Initial.Clone())
		}
	}
	e.objects[o.UID()] = o
	e.extentFor(cl.ID).Add(o.UID())
	dirty := newDirtySet()
	cleanup := func() {
		delete(e.objects, o.UID())
		e.extents[cl.ID].Remove(o.UID())
		// Unlink everything the partial make touched: reverse references
		// inserted into attribute-referenced children and forward
		// references set in already-attached parents. A failed make must
		// leave no trace, or the dangling edges violate the topology
		// invariants the next mutation checks.
		for _, id := range dirty.ids.Slice() {
			if id == o.UID() {
				continue
			}
			t, ok := e.objects[id]
			if !ok {
				continue
			}
			t.RemoveReverse(o.UID())
			for _, name := range t.AttrNames() {
				if v := t.Get(name); v.ContainsRef(o.UID()) {
					t.Set(name, v.WithoutRef(o.UID()))
				}
			}
		}
		e.bumpDirtyLocked(dirty)
	}
	for name, v := range attrs {
		if err := e.setAttrLocked(o, name, v, dirty); err != nil {
			cleanup()
			return nil, nil, uid.Nil, err
		}
	}
	var near uid.UID
	for i, p := range parents {
		if err := e.attachLocked(p.Parent, p.Attr, o.UID(), dirty); err != nil {
			cleanup()
			return nil, nil, uid.Nil, err
		}
		if i == 0 {
			near = p.Parent
		}
	}
	dirty.add(o.UID())
	e.bumpDirtyLocked(dirty)
	return o, dirty, near, nil
}

// dirtySet accumulates mutated objects for write-through.
type dirtySet struct{ ids *uid.Set }

func newDirtySet() *dirtySet       { return &dirtySet{ids: uid.NewSet()} }
func (d *dirtySet) add(id uid.UID) { d.ids.Add(id) }

// flush bumps the generation counters of every dirty object (invalidating
// cached query results that depend on them) and pushes the objects to the
// hook under the transaction tag tx, all under the exclusive latch the
// caller already holds. Only the schema-evolution paths still use it:
// they are rare, already hold the latch for the whole class rewrite, and
// their durability comes from the schema checkpoint that follows. The
// regular mutation paths use writeThrough instead.
func (e *Engine) flush(tx TxnID, d *dirtySet, created, near uid.UID) error {
	e.bumpDirtyLocked(d)
	e.recordVersionsLocked(tx, d, nil)
	if e.hook == nil {
		return nil
	}
	ph, placed := e.hook.(PlacementHook)
	for _, id := range d.ids.Slice() {
		o, ok := e.objects[id]
		if !ok {
			continue // deleted during the same operation
		}
		hint := uid.Nil
		if id == created {
			hint = near
		}
		var err error
		if placed {
			err = ph.OnWritePlaced(tx, o, hint, e.placementRootLocked(id))
		} else {
			err = e.hook.OnWrite(tx, o, hint)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeThrough pushes an operation's effects to the persistence hook
// under the SHARED latch, after handing the write set to the MVCC
// version store (auto-commit operations publish a commit boundary here;
// transactional ones accumulate until CommitVersions). The hook loop: first OnWrite for every object in d that is
// still live (created/near carry the clustering hint for a newly created
// object), then OnDelete for each id in deleted. The caller has already
// spliced the graph and bumped generations under the exclusive latch, so
// writers of disjoint composite units encode and log in parallel here.
// The whole hook loop runs inside one continuous read-locked window: a
// splice needs the exclusive latch and therefore cannot interleave, which
// keeps every object's log-record order consistent with its mutation
// order (two concurrent windows that both cover an object write
// byte-identical records for it). For auto-commit mutations the hook's
// optional AutoCommitSyncer then runs once, after the latch drops, so a
// durability fsync never stalls other writers.
func (e *Engine) writeThrough(tx TxnID, d *dirtySet, created, near uid.UID, deleted []uid.UID) error {
	e.mu.RLock()
	e.recordVersionsLocked(tx, d, deleted)
	h := e.hook
	if h == nil {
		e.mu.RUnlock()
		return nil
	}
	var err error
	if d != nil {
		ph, placed := h.(PlacementHook)
		for _, id := range d.ids.Slice() {
			o, ok := e.objects[id]
			if !ok {
				continue // deleted during the same operation
			}
			hint := uid.Nil
			if id == created {
				hint = near
			}
			if placed {
				err = ph.OnWritePlaced(tx, o, hint, e.placementRootLocked(id))
			} else {
				err = h.OnWrite(tx, o, hint)
			}
			if err != nil {
				break
			}
		}
	}
	if err == nil {
		for _, id := range deleted {
			if err = h.OnDelete(tx, id); err != nil {
				break
			}
		}
	}
	e.mu.RUnlock()
	if err != nil {
		return err
	}
	if tx == 0 {
		if s, ok := h.(AutoCommitSyncer); ok {
			return s.SyncAutoCommit()
		}
	}
	return nil
}
