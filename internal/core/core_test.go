package core

import (
	"errors"
	"testing"

	"repro/internal/object"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// vehicleEngine builds Example 1 of §2.3: a Vehicle with independent
// exclusive composite references to AutoBody, AutoDrivetrain, and a set of
// AutoTires, plus a weak Manufacturer reference.
func vehicleEngine(t *testing.T) *Engine {
	t.Helper()
	cat := schema.NewCatalog()
	for _, n := range []string{"Company", "AutoBody", "AutoDrivetrain", "AutoTires"} {
		if _, err := cat.DefineClass(schema.ClassDef{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := cat.DefineClass(schema.ClassDef{
		Name: "Vehicle",
		Attributes: []schema.AttrSpec{
			schema.NewAttr("Id", schema.IntDomain),
			schema.NewAttr("Manufacturer", schema.ClassDomain("Company")),
			schema.NewCompositeAttr("Body", "AutoBody").WithDependent(false),
			schema.NewCompositeAttr("Drivetrain", "AutoDrivetrain").WithDependent(false),
			schema.NewCompositeSetAttr("Tires", "AutoTires").WithDependent(false),
			schema.NewAttr("Color", schema.StringDomain),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(cat)
}

// documentEngine builds Example 2 of §2.3: Documents with shared dependent
// Sections (of shared dependent Paragraphs), shared independent Figures,
// and exclusive dependent Annotations.
func documentEngine(t *testing.T) *Engine {
	t.Helper()
	cat := schema.NewCatalog()
	for _, n := range []string{"Paragraph", "Image"} {
		if _, err := cat.DefineClass(schema.ClassDef{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cat.DefineClass(schema.ClassDef{
		Name: "Section",
		Attributes: []schema.AttrSpec{
			schema.NewCompositeSetAttr("Content", "Paragraph").WithExclusive(false),
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{
		Name: "Document",
		Attributes: []schema.AttrSpec{
			schema.NewAttr("Title", schema.StringDomain),
			schema.NewCompositeSetAttr("Sections", "Section").WithExclusive(false),
			schema.NewCompositeSetAttr("Figures", "Image").WithExclusive(false).WithDependent(false),
			schema.NewCompositeSetAttr("Annotations", "Paragraph"),
		},
	}); err != nil {
		t.Fatal(err)
	}
	return NewEngine(cat)
}

func mustNew(t *testing.T, e *Engine, class string, attrs map[string]value.Value, parents ...ParentSpec) *object.Object {
	t.Helper()
	o, err := e.New(class, attrs, parents...)
	if err != nil {
		t.Fatalf("New(%s): %v", class, err)
	}
	return o
}

func checkClean(t *testing.T, e *Engine) {
	t.Helper()
	if v := e.Integrity(); len(v) != 0 {
		t.Fatalf("integrity violations: %v", v)
	}
}

func TestNewAndGet(t *testing.T) {
	e := vehicleEngine(t)
	body := mustNew(t, e, "AutoBody", nil)
	if !e.Exists(body.UID()) {
		t.Fatal("created object does not exist")
	}
	got, err := e.Get(body.UID())
	if err != nil || got.UID() != body.UID() {
		t.Fatalf("Get: %v %v", got, err)
	}
	if _, err := e.Get(uid.UID{Class: 99, Serial: 1}); !errors.Is(err, ErrNoObject) {
		t.Fatalf("Get ghost: %v", err)
	}
	if _, err := e.New("Ghost", nil); !errors.Is(err, schema.ErrNoClass) {
		t.Fatalf("New of ghost class: %v", err)
	}
	if e.Len() != 1 {
		t.Fatalf("Len = %d", e.Len())
	}
}

func TestNewWithAttrsValidated(t *testing.T) {
	e := vehicleEngine(t)
	v := mustNew(t, e, "Vehicle", map[string]value.Value{
		"Id":    value.Int(7),
		"Color": value.Str("red"),
	})
	if got, _ := v.Get("Id").AsInt(); got != 7 {
		t.Fatalf("Id = %v", v.Get("Id"))
	}
	// Bad domain rejected, and the object is not half-created.
	before := e.Len()
	if _, err := e.New("Vehicle", map[string]value.Value{"Id": value.Str("oops")}); !errors.Is(err, schema.ErrDomainMismatch) {
		t.Fatalf("bad attr: %v", err)
	}
	if e.Len() != before {
		t.Fatal("failed New leaked an object")
	}
	// Unknown attribute rejected.
	if _, err := e.New("Vehicle", map[string]value.Value{"Ghost": value.Int(1)}); !errors.Is(err, schema.ErrNoAttr) {
		t.Fatalf("ghost attr: %v", err)
	}
}

func TestInitialValuesApplied(t *testing.T) {
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{
		Name: "C",
		Attributes: []schema.AttrSpec{
			schema.NewAttr("n", schema.IntDomain).WithInitial(value.Int(42)),
			schema.NewAttr("s", schema.StringDomain),
		},
	}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat)
	o := mustNew(t, e, "C", nil)
	if got, _ := o.Get("n").AsInt(); got != 42 {
		t.Fatalf("init value = %v", o.Get("n"))
	}
	// Explicit value overrides the default.
	o2 := mustNew(t, e, "C", map[string]value.Value{"n": value.Int(1)})
	if got, _ := o2.Get("n").AsInt(); got != 1 {
		t.Fatalf("explicit value = %v", o2.Get("n"))
	}
}

func TestVehicleExample(t *testing.T) {
	// Example 1 (§2.3): vehicle parts are exclusive (one vehicle at a
	// time) but independent (reusable after dismantling).
	e := vehicleEngine(t)
	body := mustNew(t, e, "AutoBody", nil)
	dt := mustNew(t, e, "AutoDrivetrain", nil)
	t1 := mustNew(t, e, "AutoTires", nil)
	t2 := mustNew(t, e, "AutoTires", nil)

	// Bottom-up assembly of an existing body etc. into a new vehicle.
	v := mustNew(t, e, "Vehicle", map[string]value.Value{
		"Body":       value.Ref(body.UID()),
		"Drivetrain": value.Ref(dt.UID()),
		"Tires":      value.RefSet(t1.UID(), t2.UID()),
	})
	checkClean(t, e)

	// The parts may be used for only one vehicle at any point in time.
	if _, err := e.New("Vehicle", map[string]value.Value{
		"Body": value.Ref(body.UID()),
	}); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("body used for two vehicles: %v", err)
	}

	// Dismantle the vehicle: its components survive (independent refs)...
	deleted, err := e.Delete(v.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || deleted[0] != v.UID() {
		t.Fatalf("deleted = %v, want only the vehicle", deleted)
	}
	for _, part := range []uid.UID{body.UID(), dt.UID(), t1.UID(), t2.UID()} {
		if !e.Exists(part) {
			t.Fatalf("part %v deleted with the vehicle; independent refs must not cascade", part)
		}
		po, _ := e.Get(part)
		if po.HasAnyReverse() {
			t.Fatalf("part %v still has a reverse ref after dismantling", part)
		}
	}
	// ... and can now be re-used for another vehicle.
	if _, err := e.New("Vehicle", map[string]value.Value{
		"Body":  value.Ref(body.UID()),
		"Tires": value.RefSet(t1.UID()),
	}); err != nil {
		t.Fatalf("re-use after dismantling: %v", err)
	}
	checkClean(t, e)
}

func TestDocumentExample(t *testing.T) {
	// Example 2 (§2.3): an identical section may be part of two books; a
	// paragraph exists while at least one section contains it.
	e := documentEngine(t)
	para := mustNew(t, e, "Paragraph", nil)
	sec := mustNew(t, e, "Section", map[string]value.Value{
		"Content": value.RefSet(para.UID()),
	})
	img := mustNew(t, e, "Image", nil)
	doc1 := mustNew(t, e, "Document", map[string]value.Value{
		"Title":    value.Str("Book One"),
		"Sections": value.RefSet(sec.UID()),
		"Figures":  value.RefSet(img.UID()),
	})
	doc2 := mustNew(t, e, "Document", map[string]value.Value{
		"Title":    value.Str("Book Two"),
		"Sections": value.RefSet(sec.UID()), // the shared chapter
	})
	checkClean(t, e)

	// The section has two dependent-shared parents.
	so, _ := e.Get(sec.UID())
	if len(so.DS()) != 2 {
		t.Fatalf("DS(section) = %v", so.DS())
	}
	// Annotations are exclusive: a paragraph already in a section cannot
	// become an annotation.
	if err := e.Attach(doc1.UID(), "Annotations", para.UID()); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("shared paragraph became an exclusive annotation: %v", err)
	}
	// A fresh annotation works, and is exclusive to doc1.
	note := mustNew(t, e, "Paragraph", nil)
	if err := e.Attach(doc1.UID(), "Annotations", note.UID()); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(doc2.UID(), "Annotations", note.UID()); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("annotation shared between documents: %v", err)
	}

	// Deleting doc1: the shared section survives (doc2 still holds it);
	// the exclusive dependent annotation dies; the independent image
	// survives.
	deleted, err := e.Delete(doc1.UID())
	if err != nil {
		t.Fatal(err)
	}
	wantDead := map[uid.UID]bool{doc1.UID(): true, note.UID(): true}
	if len(deleted) != len(wantDead) {
		t.Fatalf("deleted = %v", deleted)
	}
	for _, d := range deleted {
		if !wantDead[d] {
			t.Fatalf("unexpected casualty %v", d)
		}
	}
	if !e.Exists(sec.UID()) || !e.Exists(img.UID()) || !e.Exists(para.UID()) {
		t.Fatal("shared/independent components died with doc1")
	}
	checkClean(t, e)

	// Deleting doc2 — the last document holding the section — cascades
	// through section to the paragraph ("for a paragraph to exist, there
	// must be at least one section containing it").
	deleted, err = e.Delete(doc2.UID())
	if err != nil {
		t.Fatal(err)
	}
	wantDead = map[uid.UID]bool{doc2.UID(): true, sec.UID(): true, para.UID(): true}
	if len(deleted) != len(wantDead) {
		t.Fatalf("deleted = %v", deleted)
	}
	if !e.Exists(img.UID()) {
		t.Fatal("independent image deleted")
	}
	checkClean(t, e)
}

func TestExtent(t *testing.T) {
	e := vehicleEngine(t)
	mustNew(t, e, "AutoTires", nil)
	mustNew(t, e, "AutoTires", nil)
	mustNew(t, e, "AutoBody", nil)
	ext, err := e.Extent("AutoTires", false)
	if err != nil {
		t.Fatal(err)
	}
	if len(ext) != 2 {
		t.Fatalf("extent = %v", ext)
	}
	// Subclass instances are included when requested.
	cat := e.Catalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "SnowTires", Superclasses: []string{"AutoTires"}}); err != nil {
		t.Fatal(err)
	}
	mustNew(t, e, "SnowTires", nil)
	ext, _ = e.Extent("AutoTires", false)
	if len(ext) != 2 {
		t.Fatalf("non-deep extent = %v", ext)
	}
	ext, _ = e.Extent("AutoTires", true)
	if len(ext) != 3 {
		t.Fatalf("deep extent = %v", ext)
	}
}

func TestLoadRestoresAndSeedsGenerator(t *testing.T) {
	e := vehicleEngine(t)
	cl, _ := e.Catalog().Class("AutoBody")
	o := object.New(uid.UID{Class: cl.ID, Serial: 50})
	if err := e.Load(o); err != nil {
		t.Fatal(err)
	}
	if !e.Exists(o.UID()) {
		t.Fatal("loaded object missing")
	}
	// New objects must not collide with loaded serials.
	n := mustNew(t, e, "AutoBody", nil)
	if n.UID().Serial <= 50 {
		t.Fatalf("generator not seeded: new serial %d", n.UID().Serial)
	}
	// Loading an object of an unknown class fails.
	bad := object.New(uid.UID{Class: 999, Serial: 1})
	if err := e.Load(bad); !errors.Is(err, schema.ErrNoClass) {
		t.Fatalf("load unknown class: %v", err)
	}
}

// hookRecorder records hook invocations for write-through tests.
type hookRecorder struct {
	writes  []uid.UID
	nears   map[uid.UID]uid.UID
	deletes []uid.UID
}

func (h *hookRecorder) OnWrite(_ TxnID, o *object.Object, near uid.UID) error {
	h.writes = append(h.writes, o.UID())
	if h.nears == nil {
		h.nears = map[uid.UID]uid.UID{}
	}
	if !near.IsNil() {
		h.nears[o.UID()] = near
	}
	return nil
}

func (h *hookRecorder) OnDelete(_ TxnID, id uid.UID) error {
	h.deletes = append(h.deletes, id)
	return nil
}

func TestHookWriteThrough(t *testing.T) {
	e := documentEngine(t)
	h := &hookRecorder{}
	e.SetHook(h)
	para := mustNew(t, e, "Paragraph", nil)
	sec := mustNew(t, e, "Section", nil)
	if err := e.Attach(sec.UID(), "Content", para.UID()); err != nil {
		t.Fatal(err)
	}
	// Attach dirties both section (forward ref) and paragraph (reverse).
	found := map[uid.UID]bool{}
	for _, w := range h.writes {
		found[w] = true
	}
	if !found[sec.UID()] || !found[para.UID()] {
		t.Fatalf("writes = %v", h.writes)
	}
	if _, err := e.Delete(sec.UID()); err != nil {
		t.Fatal(err)
	}
	if len(h.deletes) != 2 { // section + dependent paragraph
		t.Fatalf("deletes = %v", h.deletes)
	}
}

func TestHookClusteringHint(t *testing.T) {
	e := documentEngine(t)
	h := &hookRecorder{}
	e.SetHook(h)
	doc := mustNew(t, e, "Document", nil)
	sec := mustNew(t, e, "Section", nil, ParentSpec{Parent: doc.UID(), Attr: "Sections"})
	// The new instance is clustered with its first parent (§2.3).
	if h.nears[sec.UID()] != doc.UID() {
		t.Fatalf("clustering hint = %v, want %v", h.nears[sec.UID()], doc.UID())
	}
}
