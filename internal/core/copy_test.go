package core

import (
	"testing"

	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func TestCopyCompositeDeepCopiesExclusive(t *testing.T) {
	e := vehicleEngine(t)
	body := mustNew(t, e, "AutoBody", nil)
	t1 := mustNew(t, e, "AutoTires", nil)
	veh := mustNew(t, e, "Vehicle", map[string]value.Value{
		"Id":    value.Int(1),
		"Color": value.Str("red"),
		"Body":  value.Ref(body.UID()),
		"Tires": value.RefSet(t1.UID()),
	})
	copyID, mapping, err := e.CopyComposite(veh.UID())
	if err != nil {
		t.Fatal(err)
	}
	if copyID == veh.UID() {
		t.Fatal("copy has the original's UID")
	}
	// The copy has its own body and tire (exclusive components deep-copied).
	cp, _ := e.Get(copyID)
	newBody, ok := cp.Get("Body").AsRef()
	if !ok || newBody == body.UID() {
		t.Fatalf("copy shares the exclusive body: %v", cp.Get("Body"))
	}
	if mapping[body.UID()] != newBody {
		t.Fatalf("mapping wrong: %v", mapping)
	}
	if cp.Get("Tires").ContainsRef(t1.UID()) {
		t.Fatal("copy shares an exclusive tire")
	}
	// Scalars are copied.
	if c, _ := cp.Get("Color").AsString(); c != "red" {
		t.Fatalf("Color = %v", cp.Get("Color"))
	}
	// Both composite objects are well-formed and independent.
	checkClean(t, e)
	deleted, _ := e.Delete(copyID)
	if len(deleted) != 1 {
		t.Fatalf("deleting the copy removed %v", deleted)
	}
	if !e.Exists(body.UID()) || !e.Exists(veh.UID()) {
		t.Fatal("deleting the copy damaged the original")
	}
	checkClean(t, e)
}

func TestCopyCompositeSharesShared(t *testing.T) {
	e := documentEngine(t)
	para := mustNew(t, e, "Paragraph", nil)
	sec := mustNew(t, e, "Section", map[string]value.Value{
		"Content": value.RefSet(para.UID()),
	})
	doc := mustNew(t, e, "Document", map[string]value.Value{
		"Title":    value.Str("orig"),
		"Sections": value.RefSet(sec.UID()),
	})
	copyID, mapping, err := e.CopyComposite(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	// Shared sections are NOT copied: both documents hold the same one.
	cp, _ := e.Get(copyID)
	if !cp.Get("Sections").ContainsRef(sec.UID()) {
		t.Fatalf("copy lost the shared section: %v", cp.Get("Sections"))
	}
	if _, copied := mapping[sec.UID()]; copied {
		t.Fatal("shared section was deep-copied")
	}
	so, _ := e.Get(sec.UID())
	if len(so.DS()) != 2 {
		t.Fatalf("section parents = %v", so.DS())
	}
	checkClean(t, e)
	// Deleting the original keeps the section (the copy still holds it).
	if _, err := e.Delete(doc.UID()); err != nil {
		t.Fatal(err)
	}
	if !e.Exists(sec.UID()) || !e.Exists(para.UID()) {
		t.Fatal("shared component died with the original")
	}
	checkClean(t, e)
}

func TestCopyCompositeMixed(t *testing.T) {
	// A document with a shared section, an exclusive annotation, and an
	// independent-shared figure: annotation copied, section+figure shared.
	e := documentEngine(t)
	sec := mustNew(t, e, "Section", nil)
	img := mustNew(t, e, "Image", nil)
	note := mustNew(t, e, "Paragraph", nil)
	doc := mustNew(t, e, "Document", map[string]value.Value{
		"Sections":    value.RefSet(sec.UID()),
		"Figures":     value.RefSet(img.UID()),
		"Annotations": value.RefSet(note.UID()),
	})
	copyID, mapping, err := e.CopyComposite(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := e.Get(copyID)
	if !cp.Get("Sections").ContainsRef(sec.UID()) || !cp.Get("Figures").ContainsRef(img.UID()) {
		t.Fatal("shared components not shared")
	}
	if cp.Get("Annotations").ContainsRef(note.UID()) {
		t.Fatal("exclusive annotation shared with the copy")
	}
	if _, ok := mapping[note.UID()]; !ok {
		t.Fatal("annotation not deep-copied")
	}
	checkClean(t, e)
}

func TestCopyCompositeWeakRefsCopiedAsIs(t *testing.T) {
	e := vehicleEngine(t)
	co := mustNew(t, e, "Company", nil)
	veh := mustNew(t, e, "Vehicle", map[string]value.Value{
		"Manufacturer": value.Ref(co.UID()),
	})
	copyID, _, err := e.CopyComposite(veh.UID())
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := e.Get(copyID)
	if r, _ := cp.Get("Manufacturer").AsRef(); r != co.UID() {
		t.Fatalf("weak ref not copied as-is: %v", cp.Get("Manufacturer"))
	}
	// The company gained no reverse refs (weak).
	coObj, _ := e.Get(co.UID())
	if coObj.HasAnyReverse() {
		t.Fatal("weak ref created a reverse ref")
	}
}

func TestCopyCompositeDeepHierarchy(t *testing.T) {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewAttr("N", schema.IntDomain),
		schema.NewCompositeSetAttr("Subparts", "Part").WithDependent(false),
	}})
	e := NewEngine(cat)
	root := mustNew(t, e, "Part", map[string]value.Value{"N": value.Int(0)})
	level := []uid.UID{root.UID()}
	total := 1
	for d := 1; d <= 3; d++ {
		var next []uid.UID
		for _, p := range level {
			for i := 0; i < 2; i++ {
				c := mustNew(t, e, "Part", map[string]value.Value{"N": value.Int(int64(d))},
					ParentSpec{Parent: p, Attr: "Subparts"})
				next = append(next, c.UID())
				total++
			}
		}
		level = next
	}
	copyID, mapping, err := e.CopyComposite(root.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(mapping) != total {
		t.Fatalf("copied %d objects, want %d", len(mapping), total)
	}
	comps, _ := e.ComponentsOf(copyID, QueryOpts{})
	if len(comps) != total-1 {
		t.Fatalf("copy has %d components, want %d", len(comps), total-1)
	}
	// No copy references an original.
	origs := uid.NewSet(root.UID())
	for o := range mapping {
		origs.Add(o)
	}
	for _, c := range append([]uid.UID{copyID}, comps...) {
		o, _ := e.Get(c)
		for _, r := range o.Refs() {
			if origs.Contains(r) {
				t.Fatalf("copy %v references original %v", c, r)
			}
		}
	}
	checkClean(t, e)
}

func TestCopyCompositeErrors(t *testing.T) {
	e := vehicleEngine(t)
	if _, _, err := e.CopyComposite(uid.UID{Class: 1, Serial: 404}); err == nil {
		t.Fatal("copy of ghost succeeded")
	}
	e.SetLegacy(true)
	v := mustNew(t, e, "Vehicle", nil)
	if _, _, err := e.CopyComposite(v.UID()); err == nil {
		t.Fatal("copy in legacy mode succeeded")
	}
}
