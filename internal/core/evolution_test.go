package core

import (
	"errors"
	"testing"

	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func TestDropCompositeAttributeCascades(t *testing.T) {
	// §4.1 change 1: dropping a dependent composite attribute deletes the
	// referenced components per the Deletion Rule.
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
	img := mustNew(t, e, "Image", nil)
	if err := e.Attach(doc.UID(), "Figures", img.UID()); err != nil {
		t.Fatal(err)
	}

	// Dropping the dependent exclusive Annotations attribute kills notes.
	deleted, err := e.DropAttribute("Document", "Annotations")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || deleted[0] != note.UID() {
		t.Fatalf("deleted = %v", deleted)
	}
	if e.Exists(note.UID()) {
		t.Fatal("annotation survived attribute drop")
	}
	do, _ := e.Get(doc.UID())
	if do.Has("Annotations") {
		t.Fatal("instances kept values for the dropped attribute")
	}

	// Dropping the independent Figures attribute unlinks but keeps images.
	deleted, err = e.DropAttribute("Document", "Figures")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 0 {
		t.Fatalf("deleted = %v", deleted)
	}
	if !e.Exists(img.UID()) {
		t.Fatal("independent figure deleted by attribute drop")
	}
	io, _ := e.Get(img.UID())
	if io.HasAnyReverse() {
		t.Fatal("stale reverse ref after attribute drop")
	}
	checkClean(t, e)
}

func TestDropSharedDependentAttributeLastParentRule(t *testing.T) {
	// Dropping a dependent-shared attribute deletes a component only when
	// no other dependent-shared parent holds it.
	e := documentEngine(t)
	para := mustNew(t, e, "Paragraph", nil)
	sec := mustNew(t, e, "Section", map[string]value.Value{
		"Content": value.RefSet(para.UID()),
	})
	doc := mustNew(t, e, "Document", map[string]value.Value{
		"Sections": value.RefSet(sec.UID()),
	})
	_ = doc
	// The paragraph is held only by the section. Dropping Section.Content
	// deletes all paragraphs held solely through it.
	deleted, err := e.DropAttribute("Section", "Content")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || deleted[0] != para.UID() {
		t.Fatalf("deleted = %v", deleted)
	}
	checkClean(t, e)
}

func TestRemoveSuperclassCascades(t *testing.T) {
	// §4.1 change 3: removing a superclass that contributed a composite
	// attribute drops the attribute's components per the Deletion Rule.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Attachment"})
	cat.DefineClass(schema.ClassDef{Name: "Annotated", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Notes", "Attachment"), // dependent exclusive
	}})
	cat.DefineClass(schema.ClassDef{Name: "Memo", Superclasses: []string{"Annotated"}, Attributes: []schema.AttrSpec{
		schema.NewAttr("Body", schema.StringDomain),
	}})
	e := NewEngine(cat)
	memo := mustNew(t, e, "Memo", map[string]value.Value{"Body": value.Str("x")})
	note := mustNew(t, e, "Attachment", nil, ParentSpec{Parent: memo.UID(), Attr: "Notes"})

	deleted, err := e.RemoveSuperclass("Memo", "Annotated")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || deleted[0] != note.UID() {
		t.Fatalf("deleted = %v", deleted)
	}
	mo, _ := e.Get(memo.UID())
	if mo.Has("Notes") {
		t.Fatal("value for lost attribute survived")
	}
	if b, _ := mo.Get("Body").AsString(); b != "x" {
		t.Fatal("own attribute damaged")
	}
	checkClean(t, e)
}

func TestDropClassDeletesInstances(t *testing.T) {
	// §4.1 change 4.
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
	doc2 := mustNew(t, e, "Document", nil)

	deleted, err := e.DropClass("Document")
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 3 { // doc, doc2, note (dependent)
		t.Fatalf("deleted = %v", deleted)
	}
	if e.Exists(doc.UID()) || e.Exists(doc2.UID()) || e.Exists(note.UID()) {
		t.Fatal("instances survived class drop")
	}
	if e.Catalog().Has("Document") {
		t.Fatal("class still in catalog")
	}
	checkClean(t, e)
}

func TestDropClassRejectedWhenDomain(t *testing.T) {
	e := documentEngine(t)
	sec := mustNew(t, e, "Section", nil)
	if _, err := e.DropClass("Section"); err == nil {
		t.Fatal("dropped a class used as a domain")
	}
	// The instance must be untouched by the failed drop.
	if !e.Exists(sec.UID()) {
		t.Fatal("failed DropClass deleted instances")
	}
}

func TestImmediateChangeI2RewritesFlags(t *testing.T) {
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
	no, _ := e.Get(note.UID())
	if len(no.DX()) != 1 {
		t.Fatalf("precondition: DX = %v", no.DX())
	}
	// I2 immediate: Annotations becomes shared; the note's X flag is off.
	if err := e.ChangeAttributeType("Document", "Annotations", schema.ChangeToShared, false); err != nil {
		t.Fatal(err)
	}
	no, _ = e.Get(note.UID())
	if len(no.DS()) != 1 || len(no.DX()) != 0 {
		t.Fatalf("flags after immediate I2: %+v", no.Reverse())
	}
	// The note can now be shared with a second document.
	doc2 := mustNew(t, e, "Document", nil)
	if err := e.Attach(doc2.UID(), "Annotations", note.UID()); err != nil {
		t.Fatalf("sharing after I2: %v", err)
	}
	checkClean(t, e)
}

func TestImmediateChangeI1RemovesReverse(t *testing.T) {
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	img := mustNew(t, e, "Image", nil)
	if err := e.Attach(doc.UID(), "Figures", img.UID()); err != nil {
		t.Fatal(err)
	}
	if err := e.ChangeAttributeType("Document", "Figures", schema.ChangeDropComposite, false); err != nil {
		t.Fatal(err)
	}
	io, _ := e.Get(img.UID())
	if io.HasAnyReverse() {
		t.Fatal("reverse ref survived I1")
	}
	// The forward reference survives as a weak reference.
	do, _ := e.Get(doc.UID())
	if !do.Get("Figures").ContainsRef(img.UID()) {
		t.Fatal("forward ref lost by I1")
	}
	checkClean(t, e)
}

func TestDeferredChangeAppliedOnAccess(t *testing.T) {
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
	// Deferred I3: Annotations dependent -> independent.
	if err := e.ChangeAttributeType("Document", "Annotations", schema.ChangeToIndependent, true); err != nil {
		t.Fatal(err)
	}
	// Access through Get applies the pending change.
	no, err := e.Get(note.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(no.IX()) != 1 || len(no.DX()) != 0 {
		t.Fatalf("flags after deferred I3 + access: %+v", no.Reverse())
	}
	// Deletion semantics now follow the new flags: the note survives.
	deleted, err := e.Delete(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || !e.Exists(note.UID()) {
		t.Fatalf("deleted = %v; note must survive after I3", deleted)
	}
	checkClean(t, e)
}

func TestDeferredChangeAppliedDuringDeletion(t *testing.T) {
	// Even if the object is never Get-accessed, Delete must apply pending
	// changes before consulting the flags.
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
	if err := e.ChangeAttributeType("Document", "Annotations", schema.ChangeToIndependent, true); err != nil {
		t.Fatal(err)
	}
	deleted, err := e.Delete(doc.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || !e.Exists(note.UID()) {
		t.Fatalf("deferred I3 not honored by Delete: %v", deleted)
	}
	checkClean(t, e)
}

func TestD1WeakToExclusiveComposite(t *testing.T) {
	e := vehicleEngine(t)
	v := mustNew(t, e, "Vehicle", nil)
	co := mustNew(t, e, "Company", nil)
	if err := e.Attach(v.UID(), "Manufacturer", co.UID()); err != nil {
		t.Fatal(err)
	}
	// D1: Manufacturer weak -> exclusive composite (independent).
	if err := e.MakeComposite("Vehicle", "Manufacturer", true, false); err != nil {
		t.Fatal(err)
	}
	coObj, _ := e.Get(co.UID())
	if len(coObj.IX()) != 1 || coObj.IX()[0] != v.UID() {
		t.Fatalf("reverse refs after D1: %+v", coObj.Reverse())
	}
	a, _ := e.Catalog().Attribute("Vehicle", "Manufacturer")
	if a.RefKind() != schema.IndependentExclusive {
		t.Fatalf("spec after D1: %v", a.RefKind())
	}
	checkClean(t, e)
}

func TestD1RejectedWhenChildHasCompositeParent(t *testing.T) {
	e := vehicleEngine(t)
	v := mustNew(t, e, "Vehicle", nil)
	body := mustNew(t, e, "AutoBody", nil, ParentSpec{Parent: v.UID(), Attr: "Body"})
	_ = body
	// Make a weak Vehicle->Vehicle attr? Instead: weak attr whose value
	// points at an object that already has a composite parent.
	cat := e.Catalog()
	if err := cat.AddAttribute("Vehicle", schema.NewAttr("Spare", schema.ClassDomain("AutoBody"))); err != nil {
		t.Fatal(err)
	}
	v2 := mustNew(t, e, "Vehicle", nil)
	if err := e.Attach(v2.UID(), "Spare", body.UID()); err != nil {
		t.Fatal(err)
	}
	if err := e.MakeComposite("Vehicle", "Spare", true, false); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D1 over referenced-with-parent child: %v", err)
	}
	// Spec unchanged after rejection.
	a, _ := cat.Attribute("Vehicle", "Spare")
	if a.Composite {
		t.Fatal("rejected D1 mutated the spec")
	}
	checkClean(t, e)
}

func TestD1RejectedOnSharedWeakTargets(t *testing.T) {
	// Two instances weak-reference the same object: making the attribute
	// exclusive would create two exclusive parents, violating Rule 1.
	e := vehicleEngine(t)
	co := mustNew(t, e, "Company", nil)
	v1 := mustNew(t, e, "Vehicle", nil)
	v2 := mustNew(t, e, "Vehicle", nil)
	e.Attach(v1.UID(), "Manufacturer", co.UID())
	e.Attach(v2.UID(), "Manufacturer", co.UID())
	if err := e.MakeComposite("Vehicle", "Manufacturer", true, false); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D1 with two referencing parents: %v", err)
	}
	// D2 (shared) succeeds on the same state.
	if err := e.MakeComposite("Vehicle", "Manufacturer", false, false); err != nil {
		t.Fatalf("D2: %v", err)
	}
	coObj, _ := e.Get(co.UID())
	if len(coObj.IS()) != 2 {
		t.Fatalf("IS after D2 = %v", coObj.IS())
	}
	checkClean(t, e)
}

func TestD2RejectedWhenChildHasExclusiveParent(t *testing.T) {
	e := vehicleEngine(t)
	v := mustNew(t, e, "Vehicle", nil)
	body := mustNew(t, e, "AutoBody", nil, ParentSpec{Parent: v.UID(), Attr: "Body"})
	cat := e.Catalog()
	if err := cat.AddAttribute("Vehicle", schema.NewAttr("Spare", schema.ClassDomain("AutoBody"))); err != nil {
		t.Fatal(err)
	}
	v2 := mustNew(t, e, "Vehicle", nil)
	e.Attach(v2.UID(), "Spare", body.UID())
	if err := e.MakeComposite("Vehicle", "Spare", false, false); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D2 over exclusively-held child: %v", err)
	}
	checkClean(t, e)
}

func TestD3SharedToExclusive(t *testing.T) {
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	img := mustNew(t, e, "Image", nil)
	e.Attach(doc.UID(), "Figures", img.UID())
	// Only one shared parent: D3 succeeds.
	if err := e.MakeExclusive("Document", "Figures"); err != nil {
		t.Fatal(err)
	}
	io, _ := e.Get(img.UID())
	if len(io.IX()) != 1 {
		t.Fatalf("X flag not set: %+v", io.Reverse())
	}
	a, _ := e.Catalog().Attribute("Document", "Figures")
	if a.RefKind() != schema.IndependentExclusive {
		t.Fatalf("spec after D3: %v", a.RefKind())
	}
	checkClean(t, e)
}

func TestD3RejectedOnMultipleParents(t *testing.T) {
	e := documentEngine(t)
	doc1 := mustNew(t, e, "Document", nil)
	doc2 := mustNew(t, e, "Document", nil)
	img := mustNew(t, e, "Image", nil)
	e.Attach(doc1.UID(), "Figures", img.UID())
	e.Attach(doc2.UID(), "Figures", img.UID())
	if err := e.MakeExclusive("Document", "Figures"); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D3 with two parents: %v", err)
	}
	// Spec unchanged.
	a, _ := e.Catalog().Attribute("Document", "Figures")
	if a.Exclusive {
		t.Fatal("rejected D3 mutated the spec")
	}
	checkClean(t, e)
}

func TestD3WrongKindRejected(t *testing.T) {
	e := documentEngine(t)
	if err := e.MakeExclusive("Document", "Annotations"); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D3 of already-exclusive: %v", err)
	}
	if err := e.MakeExclusive("Document", "Title"); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D3 of non-composite: %v", err)
	}
	if err := e.MakeComposite("Document", "Sections", true, true); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D1 of already-composite: %v", err)
	}
	if err := e.MakeComposite("Document", "Title", true, true); !errors.Is(err, ErrChangeRejected) {
		t.Fatalf("D1 of primitive: %v", err)
	}
}

func TestImmediateVsDeferredEquivalence(t *testing.T) {
	// The same sequence of changes applied immediately and deferred must
	// converge to identical reverse-reference state once objects are
	// accessed.
	build := func() (*Engine, uid.UID) {
		e := documentEngine(t)
		doc := mustNew(t, e, "Document", nil)
		note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
		return e, note.UID()
	}
	eImm, noteImm := build()
	eDef, noteDef := build()
	for _, k := range []schema.ChangeKind{schema.ChangeToShared, schema.ChangeToIndependent} {
		if err := eImm.ChangeAttributeType("Document", "Annotations", k, false); err != nil {
			t.Fatal(err)
		}
		if err := eDef.ChangeAttributeType("Document", "Annotations", k, true); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := eImm.Get(noteImm)
	b, _ := eDef.Get(noteDef)
	ra, rb := a.Reverse(), b.Reverse()
	if len(ra) != len(rb) {
		t.Fatalf("reverse counts differ: %v vs %v", ra, rb)
	}
	for i := range ra {
		if ra[i].Dependent != rb[i].Dependent || ra[i].Exclusive != rb[i].Exclusive {
			t.Fatalf("flag divergence at %d: %+v vs %+v", i, ra[i], rb[i])
		}
	}
	checkClean(t, eImm)
	checkClean(t, eDef)
}

func TestRenameAttribute(t *testing.T) {
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", map[string]value.Value{"Title": value.Str("x")})
	if err := e.RenameAttribute("Document", "Title", "Heading"); err != nil {
		t.Fatal(err)
	}
	o, _ := e.Get(doc.UID())
	if o.Has("Title") {
		t.Fatal("old attribute value survived")
	}
	if s, _ := o.Get("Heading").AsString(); s != "x" {
		t.Fatalf("Heading = %v", o.Get("Heading"))
	}
	if _, err := e.Catalog().Attribute("Document", "Heading"); err != nil {
		t.Fatal("catalog rename failed")
	}
	// Renaming a composite attribute keeps the graph consistent (reverse
	// refs don't name attributes).
	note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
	if err := e.RenameAttribute("Document", "Annotations", "Notes"); err != nil {
		t.Fatal(err)
	}
	checkClean(t, e)
	deleted, _ := e.Delete(doc.UID())
	if len(deleted) != 2 || e.Exists(note.UID()) {
		t.Fatalf("dependent semantics broken by rename: %v", deleted)
	}
	// Errors: duplicate and missing names.
	if err := e.RenameAttribute("Document", "Sections", "Figures"); !errors.Is(err, schema.ErrDupAttr) {
		t.Fatalf("dup rename: %v", err)
	}
	if err := e.RenameAttribute("Document", "Ghost", "X"); !errors.Is(err, schema.ErrNoAttr) {
		t.Fatalf("ghost rename: %v", err)
	}
}
