package core

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/uid"
)

// Stats is a snapshot of the read-path cache counters (see Engine.Stats).
// Hit rates are observable per cache: ancestor-set entries back
// AncestorsOf/ComponentOf (and the shorthands built on it), partition
// entries back Partitions, and plan entries back the per-class composite
// attribute plans that every ComponentsOf traversal consults.
type Stats struct {
	AncestorHits    uint64
	AncestorMisses  uint64
	PartitionHits   uint64
	PartitionMisses uint64
	PlanHits        uint64
	PlanMisses      uint64
	// Invalidations counts cache entries dropped eagerly by writers
	// (entries invalidated lazily through a generation mismatch are not
	// counted until they are replaced).
	Invalidations uint64
}

// Stats returns a snapshot of the read-path cache counters. It is a
// thin view over the obs registry (the counters live there now, under
// the core_cache_* families); each field is an atomic load, so the
// snapshot is race-clean though not a single instant's cut.
func (e *Engine) Stats() Stats {
	return Stats{
		AncestorHits:    e.o.ancestorHits.Load(),
		AncestorMisses:  e.o.ancestorMisses.Load(),
		PartitionHits:   e.o.partitionHits.Load(),
		PartitionMisses: e.o.partitionMisses.Load(),
		PlanHits:        e.o.planHits.Load(),
		PlanMisses:      e.o.planMisses.Load(),
		Invalidations:   e.o.invalidations.Load(),
	}
}

// ResetStats zeroes the read-path cache counters. Each reset is an
// atomic store on the registry counter, so it is safe against readers
// and writers running concurrently (no torn values under -race).
func (e *Engine) ResetStats() {
	e.o.ancestorHits.Reset()
	e.o.ancestorMisses.Reset()
	e.o.partitionHits.Reset()
	e.o.partitionMisses.Reset()
	e.o.planHits.Reset()
	e.o.planMisses.Reset()
	e.o.invalidations.Reset()
}

// PartitionSets are the four partition sets of Definition 1 (§2.2): the
// parents of an object split by the D and X flags of the composite
// reference holding it. Slices are in reverse-reference order and owned by
// the caller.
type PartitionSets struct {
	IX []uid.UID // independent exclusive
	DX []uid.UID // dependent exclusive
	IS []uid.UID // independent shared
	DS []uid.UID // dependent shared
}

func (p PartitionSets) clone() PartitionSets {
	return PartitionSets{
		IX: append([]uid.UID(nil), p.IX...),
		DX: append([]uid.UID(nil), p.DX...),
		IS: append([]uid.UID(nil), p.IS...),
		DS: append([]uid.UID(nil), p.DS...),
	}
}

// ancestorEntry caches the raw (unfiltered, all-edges) ancestor set of one
// object in BFS order. Validity is checked against the generation
// counters of every object the traversal read (deps) plus the catalog's
// deferred-evolution counter: any write to any dependency bumps its
// generation, changing the signature sum, and any deferred schema change
// advances the CC.
type ancestorEntry struct {
	order  []uid.UID
	member map[uid.UID]bool
	deps   []uid.UID
	sig    uint64
	cc     uint64
}

// partitionEntry caches the partition sets of one object. Only the
// object's own generation matters: the sets are derived from its reverse
// references alone.
type partitionEntry struct {
	sets PartitionSets
	gen  uint64
	cc   uint64
}

// planKey identifies a per-class composite traversal plan: the composite
// attributes of the class that pass a given Exclusive/Shared edge filter.
type planKey struct {
	class     uid.ClassID
	exclusive bool
	shared    bool
}

// planEntry caches one traversal plan, keyed on the catalog version so
// any schema mutation invalidates it.
type planEntry struct {
	attrs []string
	ver   uint64
}

// readCache holds reader-filled memoization for the query path. It has
// its own mutex (not the engine latch) because cache fills happen while
// the engine latch is held for *reading*: many readers may insert
// concurrently. Entries are immutable once stored.
type readCache struct {
	mu    sync.RWMutex
	anc   map[uid.UID]*ancestorEntry
	part  map[uid.UID]*partitionEntry
	plans map[planKey]*planEntry
}

func newReadCache() *readCache {
	return &readCache{
		anc:   make(map[uid.UID]*ancestorEntry),
		part:  make(map[uid.UID]*partitionEntry),
		plans: make(map[planKey]*planEntry),
	}
}

func (c *readCache) lookupAnc(id uid.UID) *ancestorEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.anc[id]
}

func (c *readCache) storeAnc(id uid.UID, ent *ancestorEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.anc[id] = ent
}

func (c *readCache) lookupPart(id uid.UID) *partitionEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.part[id]
}

func (c *readCache) storePart(id uid.UID, ent *partitionEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.part[id] = ent
}

func (c *readCache) lookupPlan(k planKey) *planEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.plans[k]
}

func (c *readCache) storePlan(k planKey, ent *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.plans[k] = ent
}

// drop removes the entries keyed by id, returning how many were dropped.
// Entries keyed by other objects that merely depend on id are invalidated
// lazily by their signature check.
func (c *readCache) drop(id uid.UID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	if _, ok := c.anc[id]; ok {
		delete(c.anc, id)
		n++
	}
	if _, ok := c.part[id]; ok {
		delete(c.part, id)
		n++
	}
	return n
}

// bumpLocked advances id's generation counter and eagerly drops cache
// entries keyed by id. Every write path funnels through it (via flush or
// explicitly), so a cached result is valid exactly while the generations
// of everything it read are unchanged. Caller holds e.mu for writing.
func (e *Engine) bumpLocked(id uid.UID) {
	e.gens[id]++
	if n := e.cache.drop(id); n > 0 {
		e.o.invalidations.Add(uint64(n))
		if tr := e.o.tr; tr.Active() {
			tr.Point(0, "core.cache.invalidate", obs.F("uid", id), obs.F("entries", n))
		}
	}
}

// bumpDirtyLocked bumps every object accumulated in d. Caller holds e.mu
// for writing.
func (e *Engine) bumpDirtyLocked(d *dirtySet) {
	for _, id := range d.ids.Slice() {
		e.bumpLocked(id)
	}
}

// sigLocked sums the generation counters of deps. Each counter is
// monotonic, so the sum changes whenever any dependency changed. Caller
// holds e.mu (read or write); gens is only written under the write lock.
func (e *Engine) sigLocked(deps []uid.UID) uint64 {
	var s uint64
	for _, d := range deps {
		s += e.gens[d]
	}
	return s
}

// ancestorValidLocked reports whether a cached ancestor entry is still
// current. Caller holds e.mu (read or write).
func (e *Engine) ancestorValidLocked(ent *ancestorEntry, cc uint64) bool {
	return ent.cc == cc && e.sigLocked(ent.deps) == ent.sig
}

// storeAncestorsLocked builds and stores the cache entry for id's raw
// ancestor set. order is the BFS order of every ancestor; the dependency
// set is id plus every ancestor (exactly the objects whose reverse
// references the traversal read, plus any dangling parents whose
// reappearance must invalidate the entry). Caller holds e.mu.
func (e *Engine) storeAncestorsLocked(id uid.UID, order []uid.UID, cc uint64) *ancestorEntry {
	deps := make([]uid.UID, 0, len(order)+1)
	deps = append(deps, id)
	deps = append(deps, order...)
	member := make(map[uid.UID]bool, len(order))
	for _, u := range order {
		member[u] = true
	}
	ent := &ancestorEntry{
		order:  order,
		member: member,
		deps:   deps,
		sig:    e.sigLocked(deps),
		cc:     cc,
	}
	e.cache.storeAnc(id, ent)
	return ent
}

// Partitions returns the partition sets IX/DX/IS/DS of Definition 1
// (§2.2) for the object, from its reverse composite references, cached
// until the object is next written or a deferred schema change arrives.
func (e *Engine) Partitions(id uid.UID) (PartitionSets, error) {
	e.mu.RLock()
	cc := e.cat.CurrentCC()
	if ent := e.cache.lookupPart(id); ent != nil && ent.cc == cc && ent.gen == e.gens[id] {
		e.o.partitionHits.Inc()
		out := ent.sets.clone()
		e.mu.RUnlock()
		return out, nil
	}
	e.o.partitionMisses.Inc()
	o, err := e.readObject(id, cc)
	if err == nil {
		ent := &partitionEntry{
			sets: PartitionSets{IX: o.IX(), DX: o.DX(), IS: o.IS(), DS: o.DS()},
			gen:  e.gens[id],
			cc:   cc,
		}
		e.cache.storePart(id, ent)
		out := ent.sets.clone()
		e.mu.RUnlock()
		return out, nil
	}
	e.mu.RUnlock()
	if err != errStaleCC {
		return PartitionSets{}, err
	}
	// Deferred schema changes pend on the object: apply them under the
	// write lock, then cache the fresh sets.
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err = e.get(id)
	if err != nil {
		return PartitionSets{}, err
	}
	ent := &partitionEntry{
		sets: PartitionSets{IX: o.IX(), DX: o.DX(), IS: o.IS(), DS: o.DS()},
		gen:  e.gens[id],
		cc:   e.cat.CurrentCC(),
	}
	e.cache.storePart(id, ent)
	return ent.sets.clone(), nil
}
