package core

import (
	"errors"
	"testing"

	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// refKindEngine defines one parent class per reference type, all over the
// same component class, to exercise the four Deletion Rule cases directly.
func refKindEngine(t *testing.T) *Engine {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Comp"}); err != nil {
		t.Fatal(err)
	}
	defs := []struct {
		name            string
		excl, dep, weak bool
	}{
		{"DXParent", true, true, false},
		{"IXParent", true, false, false},
		{"DSParent", false, true, false},
		{"ISParent", false, false, false},
		{"WeakParent", false, false, true},
	}
	for _, d := range defs {
		spec := schema.NewCompositeSetAttr("Parts", "Comp").WithExclusive(d.excl).WithDependent(d.dep)
		if d.weak {
			spec = schema.NewSetAttr("Parts", schema.ClassDomain("Comp"))
		}
		if _, err := cat.DefineClass(schema.ClassDef{Name: d.name, Attributes: []schema.AttrSpec{spec}}); err != nil {
			t.Fatal(err)
		}
	}
	return NewEngine(cat)
}

func TestDeletionRuleDependentExclusive(t *testing.T) {
	// Rule 1: del(O') => del(O) for dependent exclusive references.
	e := refKindEngine(t)
	p := mustNew(t, e, "DXParent", nil)
	c := mustNew(t, e, "Comp", nil, ParentSpec{Parent: p.UID(), Attr: "Parts"})
	deleted, err := e.Delete(p.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("deleted = %v", deleted)
	}
	if e.Exists(c.UID()) {
		t.Fatal("dependent exclusive component survived")
	}
	checkClean(t, e)
}

func TestDeletionRuleIndependentExclusive(t *testing.T) {
	// del(O') =/=> del(O) for independent exclusive references.
	e := refKindEngine(t)
	p := mustNew(t, e, "IXParent", nil)
	c := mustNew(t, e, "Comp", nil, ParentSpec{Parent: p.UID(), Attr: "Parts"})
	deleted, err := e.Delete(p.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 {
		t.Fatalf("deleted = %v", deleted)
	}
	co, _ := e.Get(c.UID())
	if co.HasAnyReverse() {
		t.Fatal("stale reverse ref on surviving component")
	}
	checkClean(t, e)
}

func TestDeletionRuleDependentSharedLastParent(t *testing.T) {
	// Rule 2: del(O') => del(O) only if DS(O) = {O'}.
	e := refKindEngine(t)
	p1 := mustNew(t, e, "DSParent", nil)
	p2 := mustNew(t, e, "DSParent", nil)
	c := mustNew(t, e, "Comp", nil,
		ParentSpec{Parent: p1.UID(), Attr: "Parts"},
		ParentSpec{Parent: p2.UID(), Attr: "Parts"},
	)
	// First parent dies: DS(c) = {p2} != {p1}, so c survives.
	deleted, err := e.Delete(p1.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 1 || !e.Exists(c.UID()) {
		t.Fatalf("deleted = %v; component must survive while p2 holds it", deleted)
	}
	co, _ := e.Get(c.UID())
	if len(co.DS()) != 1 {
		t.Fatalf("DS = %v", co.DS())
	}
	// Last parent dies: now DS(c) = {p2}, so c goes too.
	deleted, err = e.Delete(p2.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 || e.Exists(c.UID()) {
		t.Fatalf("deleted = %v; component must die with its last dependent parent", deleted)
	}
	checkClean(t, e)
}

func TestDeletionRuleIndependentShared(t *testing.T) {
	e := refKindEngine(t)
	p1 := mustNew(t, e, "ISParent", nil)
	p2 := mustNew(t, e, "ISParent", nil)
	c := mustNew(t, e, "Comp", nil,
		ParentSpec{Parent: p1.UID(), Attr: "Parts"},
		ParentSpec{Parent: p2.UID(), Attr: "Parts"},
	)
	for _, p := range []uid.UID{p1.UID(), p2.UID()} {
		deleted, err := e.Delete(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(deleted) != 1 {
			t.Fatalf("deleted = %v", deleted)
		}
	}
	if !e.Exists(c.UID()) {
		t.Fatal("independent shared component deleted")
	}
	co, _ := e.Get(c.UID())
	if co.HasAnyReverse() {
		t.Fatal("stale reverse refs")
	}
	checkClean(t, e)
}

func TestDeletionRuleTransitive(t *testing.T) {
	// Rule 3: cascades chain through intermediate deleted objects.
	e := refKindEngine(t)
	top := mustNew(t, e, "DXParent", nil)
	// DXParent -> Comp is the only edge available, so build a chain of
	// DSParents under it instead: top -DX-> mid (Comp)… Comp has no
	// composite attrs, so use DSParent chain: top(DX) is Comp-typed…
	// Simpler: a three-level DS chain where each level has exactly one
	// dependent parent.
	_ = top
	cat := e.Catalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Node", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Node").WithExclusive(false), // dependent shared
	}}); err != nil {
		t.Fatal(err)
	}
	a := mustNew(t, e, "Node", nil)
	b := mustNew(t, e, "Node", nil, ParentSpec{Parent: a.UID(), Attr: "Kids"})
	c := mustNew(t, e, "Node", nil, ParentSpec{Parent: b.UID(), Attr: "Kids"})
	d := mustNew(t, e, "Node", nil, ParentSpec{Parent: c.UID(), Attr: "Kids"})
	deleted, err := e.Delete(a.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 4 {
		t.Fatalf("transitive cascade deleted %v", deleted)
	}
	for _, id := range []uid.UID{b.UID(), c.UID(), d.UID()} {
		if e.Exists(id) {
			t.Fatalf("%v survived a transitive cascade", id)
		}
	}
	checkClean(t, e)
}

func TestDeletionRuleTransitiveStopsAtSharedSurvivor(t *testing.T) {
	// a -DS-> b -DS-> c, and x -DS-> c. Deleting a kills b (sole parent)
	// but c survives: DS(c) = {b, x} and only b died.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Node", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Node").WithExclusive(false),
	}})
	e := NewEngine(cat)
	a := mustNew(t, e, "Node", nil)
	b := mustNew(t, e, "Node", nil, ParentSpec{Parent: a.UID(), Attr: "Kids"})
	c := mustNew(t, e, "Node", nil, ParentSpec{Parent: b.UID(), Attr: "Kids"})
	x := mustNew(t, e, "Node", nil)
	if err := e.Attach(x.UID(), "Kids", c.UID()); err != nil {
		t.Fatal(err)
	}
	deleted, err := e.Delete(a.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("deleted = %v, want a and b only", deleted)
	}
	if !e.Exists(c.UID()) {
		t.Fatal("c deleted despite a surviving dependent parent")
	}
	co, _ := e.Get(c.UID())
	if len(co.DS()) != 1 || co.DS()[0] != x.UID() {
		t.Fatalf("DS(c) = %v", co.DS())
	}
	checkClean(t, e)
}

func TestDeleteCyclicPartHierarchy(t *testing.T) {
	// Dependent-shared cycles must not hang or double-free.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Node", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Node").WithExclusive(false),
	}})
	e := NewEngine(cat)
	a := mustNew(t, e, "Node", nil)
	b := mustNew(t, e, "Node", nil, ParentSpec{Parent: a.UID(), Attr: "Kids"})
	// Close the cycle b -> a.
	if err := e.Attach(b.UID(), "Kids", a.UID()); err != nil {
		t.Fatal(err)
	}
	deleted, err := e.Delete(a.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("cycle delete = %v", deleted)
	}
	if e.Len() != 0 {
		t.Fatalf("%d objects survived", e.Len())
	}
}

func TestDeleteRemovesForwardRefsInSurvivingParents(t *testing.T) {
	e := refKindEngine(t)
	p := mustNew(t, e, "ISParent", nil)
	c := mustNew(t, e, "Comp", nil, ParentSpec{Parent: p.UID(), Attr: "Parts"})
	if _, err := e.Delete(c.UID()); err != nil {
		t.Fatal(err)
	}
	po, _ := e.Get(p.UID())
	if po.Get("Parts").ContainsRef(c.UID()) {
		t.Fatal("surviving parent still references the deleted component")
	}
	checkClean(t, e)
}

func TestDeleteErrors(t *testing.T) {
	e := refKindEngine(t)
	if _, err := e.Delete(uid.UID{Class: 1, Serial: 99}); !errors.Is(err, ErrNoObject) {
		t.Fatalf("delete ghost: %v", err)
	}
}

func TestDeleteWeakReferencesDangle(t *testing.T) {
	// Weak references carry no semantics: the referenced object's deletion
	// leaves the weak reference dangling (as in ORION), and Integrity does
	// not report it.
	e := refKindEngine(t)
	w := mustNew(t, e, "WeakParent", nil)
	c := mustNew(t, e, "Comp", nil)
	if err := e.Set(w.UID(), "Parts", value.RefSet(c.UID())); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Delete(c.UID()); err != nil {
		t.Fatal(err)
	}
	wo, _ := e.Get(w.UID())
	if !wo.Get("Parts").ContainsRef(c.UID()) {
		t.Fatal("weak reference was cleaned up; expected it to dangle")
	}
	checkClean(t, e)
}

func TestDeepCascadeLargeHierarchy(t *testing.T) {
	// A 3-level tree with fanout 10 under dependent-exclusive references:
	// deleting the root kills all 111 objects.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "N", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "N"),
	}})
	e := NewEngine(cat)
	root := mustNew(t, e, "N", nil)
	level := []uid.UID{root.UID()}
	total := 1
	for depth := 0; depth < 2; depth++ {
		var next []uid.UID
		for _, p := range level {
			for i := 0; i < 10; i++ {
				c := mustNew(t, e, "N", nil, ParentSpec{Parent: p, Attr: "Kids"})
				next = append(next, c.UID())
				total++
			}
		}
		level = next
	}
	deleted, err := e.Delete(root.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != total {
		t.Fatalf("deleted %d, want %d", len(deleted), total)
	}
	if e.Len() != 0 {
		t.Fatalf("%d survivors", e.Len())
	}
}

func TestCheckTopologyReportsMissing(t *testing.T) {
	e := refKindEngine(t)
	ghost := uid.UID{Class: 1, Serial: 404}
	v := e.CheckTopology(ghost)
	if len(v) != 1 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].Object != ghost {
		t.Fatalf("violation object = %v", v[0].Object)
	}
	if v[0].String() == "" {
		t.Fatal("empty violation string")
	}
}
