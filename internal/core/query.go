package core

import (
	"fmt"

	"repro/internal/object"
	"repro/internal/uid"
)

// QueryOpts carries the optional arguments of the §3.1 messages:
//
//	(components-of Object [ListofClasses] [Exclusive] [Shared] [Level])
//	(parents-of    Object [ListofClasses] [Exclusive] [Shared])
//	(ancestors-of  Object [ListofClasses] [Exclusive] [Shared])
//
// Classes filters the returned objects to instances of the listed classes
// (subclasses included). Exclusive restricts traversal to exclusive
// composite references and Shared to shared ones; both false (or both
// true) traverses all composite references, mirroring "if both Exclusive
// and Shared are Nil, all components are retrieved". Level bounds the
// component depth (0 = unlimited); it applies to components-of only.
type QueryOpts struct {
	Classes   []string
	Exclusive bool
	Shared    bool
	Level     int
}

// wantEdge reports whether an edge with the given exclusivity passes the
// Exclusive/Shared filter.
func (q QueryOpts) wantEdge(exclusive bool) bool {
	if q.Exclusive == q.Shared {
		return true
	}
	if q.Exclusive {
		return exclusive
	}
	return !exclusive
}

// wantClass reports whether an object of the given class passes the
// Classes filter.
func (e *Engine) wantClass(q QueryOpts, id uid.UID) bool {
	if len(q.Classes) == 0 {
		return true
	}
	cl, err := e.cat.ClassByID(id.Class)
	if err != nil {
		return false
	}
	for _, want := range q.Classes {
		if e.cat.IsA(cl.Name, want) {
			return true
		}
	}
	return false
}

// compositeChildren returns the UIDs o references through composite
// attributes passing the edge filter, in attribute order.
func (e *Engine) compositeChildren(o *object.Object, q QueryOpts) []uid.UID {
	cl, err := e.cat.ClassByID(o.Class())
	if err != nil {
		return nil
	}
	attrs, err := e.cat.Attributes(cl.Name)
	if err != nil {
		return nil
	}
	var out []uid.UID
	for _, spec := range attrs {
		if !spec.Composite || !q.wantEdge(spec.Exclusive) {
			continue
		}
		out = o.Get(spec.Name).Refs(out)
	}
	return out
}

// ComponentsOf implements (components-of Object ...): the objects directly
// or indirectly referenced from the object via composite references, in
// BFS order (so level-n components appear before level-n+1 components,
// where the level of a component is the length of the shortest composite
// path from the object, §2.2).
func (e *Engine) ComponentsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	root, err := e.get(id)
	if err != nil {
		return nil, err
	}
	type item struct {
		id    uid.UID
		level int
	}
	seen := uid.NewSet(id)
	queue := []item{{id, 0}}
	var out []uid.UID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if q.Level > 0 && cur.level >= q.Level {
			continue
		}
		var o *object.Object
		if cur.id == id {
			o = root
		} else {
			var err error
			o, err = e.get(cur.id)
			if err != nil {
				continue // dangling composite ref would be an integrity bug; skip defensively
			}
		}
		for _, child := range e.compositeChildren(o, q) {
			if !seen.Add(child) {
				continue
			}
			if _, ok := e.objects[child]; !ok {
				continue
			}
			if e.wantClass(q, child) {
				out = append(out, child)
			}
			queue = append(queue, item{child, cur.level + 1})
		}
	}
	return out, nil
}

// ParentsOf implements (parents-of Object ...): the objects holding direct
// composite references to the object, read from its reverse composite
// references (§2.4).
func (e *Engine) ParentsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err := e.get(id)
	if err != nil {
		return nil, err
	}
	var out []uid.UID
	for _, r := range o.Reverse() {
		if q.wantEdge(r.Exclusive) && e.wantClass(q, r.Parent) {
			out = append(out, r.Parent)
		}
	}
	return out, nil
}

// AncestorsOf implements (ancestors-of Object ...): the transitive closure
// of ParentsOf, in BFS order.
func (e *Engine) AncestorsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.get(id); err != nil {
		return nil, err
	}
	seen := uid.NewSet(id)
	queue := []uid.UID{id}
	var out []uid.UID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		o, ok := e.objects[cur]
		if !ok {
			continue
		}
		for _, r := range o.Reverse() {
			if !q.wantEdge(r.Exclusive) {
				continue
			}
			if !seen.Add(r.Parent) {
				continue
			}
			if e.wantClass(q, r.Parent) {
				out = append(out, r.Parent)
			}
			queue = append(queue, r.Parent)
		}
	}
	return out, nil
}

// ComponentOf implements (component-of Object1 Object2): true when a is a
// direct or indirect component of b. It walks a's ancestor set via the
// reverse references rather than scanning b's components, as §3.2 suggests
// the shorthand should.
func (e *Engine) ComponentOf(a, b uid.UID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.get(a); err != nil {
		return false, err
	}
	if _, err := e.get(b); err != nil {
		return false, err
	}
	if a == b {
		return false, nil
	}
	seen := uid.NewSet(a)
	queue := []uid.UID{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		o, ok := e.objects[cur]
		if !ok {
			continue
		}
		for _, r := range o.Reverse() {
			if r.Parent == b {
				return true, nil
			}
			if seen.Add(r.Parent) {
				queue = append(queue, r.Parent)
			}
		}
	}
	return false, nil
}

// ChildOf implements (child-of Object1 Object2): true when a is a direct
// component of b.
func (e *Engine) ChildOf(a, b uid.UID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err := e.get(a)
	if err != nil {
		return false, err
	}
	if _, err := e.get(b); err != nil {
		return false, err
	}
	return o.HasReverse(b), nil
}

// ExclusiveComponentOf implements (exclusive-component-of Object1
// Object2): true when a is a component of b held through an exclusive
// composite reference; Nil (false) when a is not a component at all or is
// a shared component (§3.2).
func (e *Engine) ExclusiveComponentOf(a, b uid.UID) (bool, error) {
	is, err := e.ComponentOf(a, b)
	if err != nil || !is {
		return false, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	o := e.objects[a]
	return o != nil && o.HasExclusiveReverse(), nil
}

// SharedComponentOf implements (shared-component-of Object1 Object2): true
// when a is a shared component of b. As §3.2 observes, it is equivalent to
// component-of followed by a negative exclusive-component-of.
func (e *Engine) SharedComponentOf(a, b uid.UID) (bool, error) {
	is, err := e.ComponentOf(a, b)
	if err != nil || !is {
		return false, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	o := e.objects[a]
	return o != nil && !o.HasExclusiveReverse(), nil
}

// LevelOf returns n such that a is a level-n component of b (the shortest
// path from b to a counted in composite references, §2.2), or -1 when a is
// not a component of b.
func (e *Engine) LevelOf(a, b uid.UID) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, err := e.get(a); err != nil {
		return -1, err
	}
	if _, err := e.get(b); err != nil {
		return -1, err
	}
	type item struct {
		id    uid.UID
		level int
	}
	seen := uid.NewSet(a)
	queue := []item{{a, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		o, ok := e.objects[cur.id]
		if !ok {
			continue
		}
		for _, r := range o.Reverse() {
			if r.Parent == b {
				return cur.level + 1, nil
			}
			if seen.Add(r.Parent) {
				queue = append(queue, item{r.Parent, cur.level + 1})
			}
		}
	}
	return -1, nil
}

// RootsOf returns the roots of the composite objects containing id: the
// ancestors of id (or id itself) that have no composite parents. The
// system needs this for locking and authorization (§2.4), and because
// bottom-up creation lets roots change, it is computed, never cached.
func (e *Engine) RootsOf(id uid.UID) ([]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err := e.get(id)
	if err != nil {
		return nil, err
	}
	if !o.HasAnyReverse() {
		return []uid.UID{id}, nil
	}
	seen := uid.NewSet(id)
	queue := []uid.UID{id}
	var roots []uid.UID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		co, ok := e.objects[cur]
		if !ok {
			continue
		}
		if cur != id && !co.HasAnyReverse() {
			roots = append(roots, cur)
			continue
		}
		for _, r := range co.Reverse() {
			if seen.Add(r.Parent) {
				queue = append(queue, r.Parent)
			}
		}
	}
	return roots, nil
}

// Describe renders the object with its class name, for the figures tool.
func (e *Engine) Describe(id uid.UID) (string, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err := e.get(id)
	if err != nil {
		return "", err
	}
	cl, err := e.cat.ClassByID(id.Class)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%s %s", cl.Name, o), nil
}
