package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/uid"
)

// QueryOpts carries the optional arguments of the §3.1 messages:
//
//	(components-of Object [ListofClasses] [Exclusive] [Shared] [Level])
//	(parents-of    Object [ListofClasses] [Exclusive] [Shared])
//	(ancestors-of  Object [ListofClasses] [Exclusive] [Shared])
//
// Classes filters the returned objects to instances of the listed classes
// (subclasses included). Exclusive restricts traversal to exclusive
// composite references and Shared to shared ones; both false (or both
// true) traverses all composite references, mirroring "if both Exclusive
// and Shared are Nil, all components are retrieved". Level bounds the
// component depth (0 = unlimited); it applies to components-of only.
//
// Strict turns a dangling composite reference — forward or reverse — from
// a silent skip into an ErrDangling error. Dangling composite references
// cannot arise through the public mutation API; they appear when lower
// layers misuse Evict/Restore, and Strict is the diagnostic mode that
// surfaces that.
//
// Prof, when non-nil, receives per-operation cost attribution for this
// query: objects visited, traversal-cache (ancestor/plan) hits and
// misses. It does not change what the query computes.
type QueryOpts struct {
	Classes   []string
	Exclusive bool
	Shared    bool
	Level     int
	Strict    bool
	Prof      *obs.ProfCtx
}

// wantEdge reports whether an edge with the given exclusivity passes the
// Exclusive/Shared filter.
func (q QueryOpts) wantEdge(exclusive bool) bool {
	if q.Exclusive == q.Shared {
		return true
	}
	if q.Exclusive {
		return exclusive
	}
	return !exclusive
}

// cacheable reports whether the raw ancestor set answers the query: the
// edge filter must be all-pass (a filtered traversal prunes whole
// subtrees, which cannot be recovered from the unfiltered set) and Strict
// must be off (a warm cache would mask the dangling reference a cold
// strict walk reports).
func (q QueryOpts) cacheable() bool {
	return q.Exclusive == q.Shared && !q.Strict
}

// wantClass reports whether an object of the given class passes the
// Classes filter.
func (e *Engine) wantClass(q QueryOpts, id uid.UID) bool {
	if len(q.Classes) == 0 {
		return true
	}
	cl, err := e.cat.ClassByID(id.Class)
	if err != nil {
		return false
	}
	for _, want := range q.Classes {
		if e.cat.IsA(cl.Name, want) {
			return true
		}
	}
	return false
}

// filterAncestors applies the Classes filter to a cached raw ancestor
// order. The result is always a fresh slice (cached orders are shared).
func (e *Engine) filterAncestors(q QueryOpts, order []uid.UID) []uid.UID {
	if len(q.Classes) == 0 {
		return append([]uid.UID(nil), order...)
	}
	var out []uid.UID
	for _, id := range order {
		if e.wantClass(q, id) {
			out = append(out, id)
		}
	}
	return out
}

// withFresh runs fn on the live object with deferred schema changes
// applied, without fn observing concurrent mutation: the fast path holds
// the read lock and verifies no changes pend; otherwise the write lock is
// taken and get applies them.
func (e *Engine) withFresh(id uid.UID, fn func(o *object.Object)) error {
	e.mu.RLock()
	o, err := e.readObject(id, e.cat.CurrentCC())
	if err == nil {
		fn(o)
		e.mu.RUnlock()
		return nil
	}
	e.mu.RUnlock()
	if !errors.Is(err, errStaleCC) {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	o, err = e.get(id)
	if err != nil {
		return err
	}
	fn(o)
	return nil
}

// observeQuery wraps a traversal query with tracing, slow-path
// accounting, and a flight-recorder record. It is entered when the
// tracer or slow log is active (e.o.timed()), a flight recorder is
// bound, or the query carries a profile context; the bare path pays a
// couple of atomic loads and no time.Now calls only with a nil
// registry (the flight recorder is always-on otherwise, at the cost of
// one record per query).
func (e *Engine) observeQuery(op string, id uid.UID, prof *obs.ProfCtx, run func() ([]uid.UID, error)) ([]uid.UID, error) {
	start := time.Now()
	var sp uint64
	if tr := e.o.tr; tr.Active() {
		sp = tr.Begin(0, op, obs.F("uid", id))
	}
	out, err := run()
	d := time.Since(start)
	e.o.traversalNs.Observe(int64(d))
	if tr := e.o.tr; tr.Active() {
		tr.End(sp, op, obs.F("results", len(out)))
	}
	e.o.slow.Observe(op, d, id.String())
	if f := e.o.flight; f != nil {
		outcome := "ok"
		if err != nil {
			outcome = "err"
		}
		f.Record(op, id.String(), d, outcome, prof.TopCosts())
	}
	return out, err
}

// ComponentsOf implements (components-of Object ...): the objects directly
// or indirectly referenced from the object via composite references, in
// BFS order (so level-n components appear before level-n+1 components,
// where the level of a component is the length of the shortest composite
// path from the object, §2.2).
func (e *Engine) ComponentsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	if e.o.timed() || e.o.flight != nil {
		return e.observeQuery("components-of", id, q.Prof, func() ([]uid.UID, error) {
			return e.componentsOf(id, q)
		})
	}
	return e.componentsOf(id, q)
}

func (e *Engine) componentsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	e.mu.RLock()
	cc := e.cat.CurrentCC()
	root, err := e.readObject(id, cc)
	var out []uid.UID
	if err == nil {
		out, err = e.componentsLocked(root, q, cc, false)
	}
	e.mu.RUnlock()
	if err == nil || !errors.Is(err, errStaleCC) {
		return out, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	root, err = e.get(id)
	if err != nil {
		return nil, err
	}
	return e.componentsLocked(root, q, 0, true)
}

// ParentsOf implements (parents-of Object ...): the objects holding direct
// composite references to the object, read from its reverse composite
// references (§2.4).
func (e *Engine) ParentsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	var out []uid.UID
	err := e.withFresh(id, func(o *object.Object) {
		q.Prof.ObjectVisited()
		for _, r := range o.Reverse() {
			if q.wantEdge(r.Exclusive) && e.wantClass(q, r.Parent) {
				out = append(out, r.Parent)
			}
		}
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AncestorsOf implements (ancestors-of Object ...): the transitive closure
// of ParentsOf, in BFS order. When the edge filter is all-pass the raw
// ancestor set is served from (and fills) the invalidation-aware cache;
// the Classes filter applies to the cached order.
func (e *Engine) AncestorsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	if e.o.timed() || e.o.flight != nil {
		return e.observeQuery("ancestors-of", id, q.Prof, func() ([]uid.UID, error) {
			return e.ancestorsOf(id, q)
		})
	}
	return e.ancestorsOf(id, q)
}

func (e *Engine) ancestorsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	cacheable := q.cacheable()
	e.mu.RLock()
	cc := e.cat.CurrentCC()
	if cacheable {
		if ent := e.cache.lookupAnc(id); ent != nil && e.ancestorValidLocked(ent, cc) {
			e.o.ancestorHits.Inc()
			q.Prof.CacheHit()
			out := e.filterAncestors(q, ent.order)
			e.mu.RUnlock()
			return out, nil
		}
		e.o.ancestorMisses.Inc()
		q.Prof.CacheMiss()
	}
	out, err := e.ancestorsRead(id, q, cc, cacheable)
	e.mu.RUnlock()
	if err == nil || !errors.Is(err, errStaleCC) {
		return out, err
	}
	// Deferred schema changes pend somewhere in the ancestor graph: apply
	// them under the write lock and retry.
	e.mu.Lock()
	defer e.mu.Unlock()
	root, err := e.get(id)
	if err != nil {
		return nil, err
	}
	order, err := e.ancestorsLocked(root, q, 0, true, cacheable)
	if err != nil {
		return nil, err
	}
	if cacheable {
		ent := e.storeAncestorsLocked(id, order, e.cat.CurrentCC())
		return e.filterAncestors(q, ent.order), nil
	}
	return order, nil
}

// ancestorsRead is the read-locked ancestor traversal, filling the cache
// when the query is cacheable. Caller holds e.mu for reading.
func (e *Engine) ancestorsRead(id uid.UID, q QueryOpts, cc uint64, cacheable bool) ([]uid.UID, error) {
	root, err := e.readObject(id, cc)
	if err != nil {
		return nil, err
	}
	order, err := e.ancestorsLocked(root, q, cc, false, cacheable)
	if err != nil {
		return nil, err
	}
	if cacheable {
		ent := e.storeAncestorsLocked(id, order, cc)
		return e.filterAncestors(q, ent.order), nil
	}
	return order, nil
}

// rawAncestorEntry returns the cached (or freshly computed and cached)
// raw ancestor entry for id, for membership tests. Caller holds e.mu for
// reading; errStaleCC propagates for the caller's write-locked retry.
func (e *Engine) rawAncestorEntry(id uid.UID, cc uint64) (*ancestorEntry, error) {
	if ent := e.cache.lookupAnc(id); ent != nil && e.ancestorValidLocked(ent, cc) {
		e.o.ancestorHits.Inc()
		return ent, nil
	}
	e.o.ancestorMisses.Inc()
	root, err := e.readObject(id, cc)
	if err != nil {
		return nil, err
	}
	order, err := e.ancestorsLocked(root, QueryOpts{}, cc, false, true)
	if err != nil {
		return nil, err
	}
	return e.storeAncestorsLocked(id, order, cc), nil
}

// ComponentOf implements (component-of Object1 Object2): true when a is a
// direct or indirect component of b. It walks a's ancestor set via the
// reverse references rather than scanning b's components, as §3.2 suggests
// the shorthand should; the set is served from the ancestor cache.
func (e *Engine) ComponentOf(a, b uid.UID) (bool, error) {
	e.mu.RLock()
	cc := e.cat.CurrentCC()
	var err error
	if _, ok := e.objects[a]; !ok {
		err = fmt.Errorf("%v: %w", a, ErrNoObject)
	} else if _, ok := e.objects[b]; !ok {
		err = fmt.Errorf("%v: %w", b, ErrNoObject)
	}
	if err != nil {
		e.mu.RUnlock()
		return false, err
	}
	if a == b {
		e.mu.RUnlock()
		return false, nil
	}
	ent, err := e.rawAncestorEntry(a, cc)
	if err == nil {
		ok := ent.member[b]
		e.mu.RUnlock()
		return ok, nil
	}
	e.mu.RUnlock()
	if !errors.Is(err, errStaleCC) {
		return false, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	root, err := e.get(a)
	if err != nil {
		return false, err
	}
	order, err := e.ancestorsLocked(root, QueryOpts{}, 0, true, true)
	if err != nil {
		return false, err
	}
	ent = e.storeAncestorsLocked(a, order, e.cat.CurrentCC())
	return ent.member[b], nil
}

// ChildOf implements (child-of Object1 Object2): true when a is a direct
// component of b.
func (e *Engine) ChildOf(a, b uid.UID) (bool, error) {
	var has bool
	if err := e.withFresh(a, func(o *object.Object) { has = o.HasReverse(b) }); err != nil {
		return false, err
	}
	e.mu.RLock()
	_, ok := e.objects[b]
	e.mu.RUnlock()
	if !ok {
		return false, fmt.Errorf("%v: %w", b, ErrNoObject)
	}
	return has, nil
}

// ExclusiveComponentOf implements (exclusive-component-of Object1
// Object2): true when a is a component of b held through an exclusive
// composite reference; Nil (false) when a is not a component at all or is
// a shared component (§3.2).
func (e *Engine) ExclusiveComponentOf(a, b uid.UID) (bool, error) {
	is, err := e.ComponentOf(a, b)
	if err != nil || !is {
		return false, err
	}
	var excl bool
	if err := e.withFresh(a, func(o *object.Object) { excl = o.HasExclusiveReverse() }); err != nil {
		if errors.Is(err, ErrNoObject) {
			return false, nil // deleted between the two steps
		}
		return false, err
	}
	return excl, nil
}

// SharedComponentOf implements (shared-component-of Object1 Object2): true
// when a is a shared component of b. As §3.2 observes, it is equivalent to
// component-of followed by a negative exclusive-component-of.
func (e *Engine) SharedComponentOf(a, b uid.UID) (bool, error) {
	is, err := e.ComponentOf(a, b)
	if err != nil || !is {
		return false, err
	}
	var excl, alive bool
	if err := e.withFresh(a, func(o *object.Object) { excl, alive = o.HasExclusiveReverse(), true }); err != nil {
		if errors.Is(err, ErrNoObject) {
			return false, nil
		}
		return false, err
	}
	return alive && !excl, nil
}

// LevelOf returns n such that a is a level-n component of b (the shortest
// path from b to a counted in composite references, §2.2), or -1 when a is
// not a component of b.
func (e *Engine) LevelOf(a, b uid.UID) (int, error) {
	e.mu.RLock()
	cc := e.cat.CurrentCC()
	lvl, err := e.levelLocked(a, b, cc, false)
	e.mu.RUnlock()
	if err == nil || !errors.Is(err, errStaleCC) {
		return lvl, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.levelLocked(a, b, 0, true)
}

func (e *Engine) levelLocked(a, b uid.UID, cc uint64, mutate bool) (int, error) {
	w := e.newWalker(QueryOpts{}, cc, mutate)
	if _, err := w.fetch(a); err != nil {
		return -1, err
	}
	if _, err := w.fetch(b); err != nil {
		return -1, err
	}
	type item struct {
		id    uid.UID
		level int
	}
	seen := uid.NewSet(a)
	queue := []item{{a, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		o, err := w.fetch(cur.id)
		if err != nil {
			if errors.Is(err, errStaleCC) {
				return -1, err
			}
			continue
		}
		for _, r := range o.Reverse() {
			if r.Parent == b {
				return cur.level + 1, nil
			}
			if seen.Add(r.Parent) {
				queue = append(queue, item{r.Parent, cur.level + 1})
			}
		}
	}
	return -1, nil
}

// RootsOf returns the roots of the composite objects containing id: the
// ancestors of id (or id itself) that have no composite parents. The
// system needs this for locking and authorization (§2.4), and because
// bottom-up creation lets roots change, it is computed, never cached.
func (e *Engine) RootsOf(id uid.UID) ([]uid.UID, error) {
	e.mu.RLock()
	cc := e.cat.CurrentCC()
	roots, err := e.rootsLocked(id, cc, false)
	e.mu.RUnlock()
	if err == nil || !errors.Is(err, errStaleCC) {
		return roots, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rootsLocked(id, 0, true)
}

func (e *Engine) rootsLocked(id uid.UID, cc uint64, mutate bool) ([]uid.UID, error) {
	w := e.newWalker(QueryOpts{}, cc, mutate)
	o, err := w.fetch(id)
	if err != nil {
		return nil, err
	}
	if !o.HasAnyReverse() {
		return []uid.UID{id}, nil
	}
	seen := uid.NewSet(id)
	queue := []uid.UID{id}
	var roots []uid.UID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		co, err := w.fetch(cur)
		if err != nil {
			if errors.Is(err, errStaleCC) {
				return nil, err
			}
			continue
		}
		if cur != id && !co.HasAnyReverse() {
			roots = append(roots, cur)
			continue
		}
		for _, r := range co.Reverse() {
			if seen.Add(r.Parent) {
				queue = append(queue, r.Parent)
			}
		}
	}
	return roots, nil
}

// Describe renders the object with its class name, for the figures tool.
func (e *Engine) Describe(id uid.UID) (string, error) {
	var s string
	var cerr error
	if err := e.withFresh(id, func(o *object.Object) {
		cl, err := e.cat.ClassByID(id.Class)
		if err != nil {
			cerr = err
			return
		}
		s = fmt.Sprintf("%s %s", cl.Name, o)
	}); err != nil {
		return "", err
	}
	return s, cerr
}
