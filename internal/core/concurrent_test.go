package core

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/schema"
	"repro/internal/uid"
)

// treeEngine builds a uniform exclusive-composite tree of the given depth
// and fanout over a single Node class, returning the engine and the root.
func treeEngine(t *testing.T, depth, fanout int) (*Engine, uid.UID) {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Node", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Node"),
	}}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat)
	root := mustNew(t, e, "Node", nil).UID()
	frontier := []uid.UID{root}
	for d := 0; d < depth; d++ {
		var next []uid.UID
		for _, p := range frontier {
			for i := 0; i < fanout; i++ {
				next = append(next, mustNew(t, e, "Node", nil, ParentSpec{Parent: p, Attr: "Kids"}).UID())
			}
		}
		frontier = next
	}
	return e, root
}

// TestConcurrentMixedQueries runs 8 goroutines of mixed read-only queries
// against a static graph and asserts every goroutine sees the same
// results a single-threaded run produces. Under -race this also proves
// the read path takes no write locks and performs no hidden mutation.
func TestConcurrentMixedQueries(t *testing.T) {
	f := newDocFixture(t)
	// Force the parallel traversal machinery on, even for tiny frontiers,
	// so the worker path itself is exercised under the race detector.
	f.e.SetTraversalOpts(TraversalOpts{Parallelism: 4, Threshold: 1})

	type expectation struct {
		comps, ancs, parents, roots []uid.UID
		compOf                      bool
		level                       int
		parts                       PartitionSets
	}
	snapshot := func() (expectation, error) {
		var ex expectation
		var err error
		if ex.comps, err = f.e.ComponentsOf(f.doc1, QueryOpts{}); err != nil {
			return ex, err
		}
		if ex.ancs, err = f.e.AncestorsOf(f.pShared, QueryOpts{}); err != nil {
			return ex, err
		}
		if ex.parents, err = f.e.ParentsOf(f.pShared, QueryOpts{}); err != nil {
			return ex, err
		}
		if ex.roots, err = f.e.RootsOf(f.p1); err != nil {
			return ex, err
		}
		if ex.compOf, err = f.e.ComponentOf(f.pShared, f.doc2); err != nil {
			return ex, err
		}
		if ex.level, err = f.e.LevelOf(f.pShared, f.doc1); err != nil {
			return ex, err
		}
		if ex.parts, err = f.e.Partitions(f.pShared); err != nil {
			return ex, err
		}
		return ex, nil
	}
	want, err := snapshot()
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				got, err := snapshot()
				if err != nil {
					t.Errorf("goroutine %d iter %d: %v", g, i, err)
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("goroutine %d iter %d: results diverged: got %+v want %+v", g, i, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	s := f.e.Stats()
	if s.AncestorHits == 0 {
		t.Fatalf("expected ancestor cache hits under repeated queries, stats = %+v", s)
	}
	if s.PartitionHits == 0 || s.PlanHits == 0 {
		t.Fatalf("expected partition and plan cache hits, stats = %+v", s)
	}
}

// TestParallelTraversalMatchesSequential pins the determinism contract:
// the parallel level expansion must emit the exact BFS level-order
// sequence the sequential walk produces, not merely the same set.
func TestParallelTraversalMatchesSequential(t *testing.T) {
	e, root := treeEngine(t, 4, 3)
	e.SetTraversalOpts(TraversalOpts{Parallelism: 1})
	seqC, err := e.ComponentsOf(root, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	leaf := seqC[len(seqC)-1]
	seqA, err := e.AncestorsOf(leaf, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		e.SetTraversalOpts(TraversalOpts{Parallelism: par, Threshold: 1})
		gotC, err := e.ComponentsOf(root, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotC, seqC) {
			t.Fatalf("parallelism %d: components order diverged", par)
		}
		gotA, err := e.AncestorsOf(leaf, QueryOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotA, seqA) {
			t.Fatalf("parallelism %d: ancestors order diverged", par)
		}
	}
}

// TestStrictDanglingComponent constructs a dangling forward composite
// reference via Evict (the undo primitive bypasses the Deletion Rule's
// unlinking) and checks that lenient queries skip it while Strict ones
// surface ErrDangling.
func TestStrictDanglingComponent(t *testing.T) {
	f := newDocFixture(t)
	f.e.Evict(f.note) // doc1.Annotations still references note
	got, err := f.e.ComponentsOf(f.doc1, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if asSet(got)[f.note] {
		t.Fatalf("lenient query returned evicted component: %v", got)
	}
	if _, err := f.e.ComponentsOf(f.doc1, QueryOpts{Strict: true}); !errors.Is(err, ErrDangling) {
		t.Fatalf("strict query error = %v, want ErrDangling", err)
	}
}

// TestStrictDanglingAncestor is the reverse-direction case: evicting a
// parent leaves the child's reverse reference dangling. The lenient query
// keeps reporting the parent (reverse references are read as stored, as
// in ParentsOf), while Strict reports the integrity error.
func TestStrictDanglingAncestor(t *testing.T) {
	f := newDocFixture(t)
	f.e.Evict(f.doc1) // note's reverse reference to doc1 now dangles
	got, err := f.e.AncestorsOf(f.note, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uid.UID{f.doc1}) {
		t.Fatalf("lenient ancestors = %v, want [%v]", got, f.doc1)
	}
	if _, err := f.e.AncestorsOf(f.note, QueryOpts{Strict: true}); !errors.Is(err, ErrDangling) {
		t.Fatalf("strict ancestors error = %v, want ErrDangling", err)
	}
}

// TestAncestorCacheInvalidation checks the generation-counter protocol:
// repeated queries hit the cache; any mutation touching the ancestor
// graph invalidates exactly the affected entries and the next query sees
// the new graph.
func TestAncestorCacheInvalidation(t *testing.T) {
	f := newDocFixture(t)
	e := f.e
	want := asSet([]uid.UID{f.s1, f.s2, f.doc1, f.doc2})
	first, err := e.AncestorsOf(f.pShared, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(asSet(first), want) {
		t.Fatalf("ancestors = %v", first)
	}
	misses := e.Stats().AncestorMisses
	again, err := e.AncestorsOf(f.pShared, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, first) {
		t.Fatalf("cached ancestors diverged: %v vs %v", again, first)
	}
	if s := e.Stats(); s.AncestorHits == 0 || s.AncestorMisses != misses {
		t.Fatalf("second query should hit, stats = %+v", s)
	}

	// A new shared parent anywhere in the graph must appear.
	s3 := mustNew(t, e, "Section", nil).UID()
	if err := e.Attach(s3, "Content", f.pShared); err != nil {
		t.Fatal(err)
	}
	got, err := e.AncestorsOf(f.pShared, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want[s3] = true
	if !reflect.DeepEqual(asSet(got), want) {
		t.Fatalf("after attach: ancestors = %v", got)
	}

	// Detaching restores the old set.
	if err := e.Detach(s3, "Content", f.pShared); err != nil {
		t.Fatal(err)
	}
	delete(want, s3)
	got, err = e.AncestorsOf(f.pShared, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(asSet(got), want) {
		t.Fatalf("after detach: ancestors = %v", got)
	}

	// Deleting a grandparent invalidates through the subtree: doc2 takes
	// its dependent section s2 with it.
	if _, err := e.Delete(f.doc2); err != nil {
		t.Fatal(err)
	}
	got, err = e.AncestorsOf(f.pShared, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(asSet(got), asSet([]uid.UID{f.s1, f.doc1})) {
		t.Fatalf("after delete: ancestors = %v", got)
	}
	if s := e.Stats(); s.Invalidations == 0 {
		t.Fatalf("writers should have invalidated cache entries, stats = %+v", s)
	}
	checkClean(t, e)
}

// TestComponentOfUsesCache checks the §3.2 shorthand is served from the
// same raw ancestor entry AncestorsOf fills.
func TestComponentOfUsesCache(t *testing.T) {
	f := newDocFixture(t)
	if _, err := f.e.AncestorsOf(f.pShared, QueryOpts{}); err != nil {
		t.Fatal(err)
	}
	before := f.e.Stats()
	is, err := f.e.ComponentOf(f.pShared, f.doc2)
	if err != nil || !is {
		t.Fatalf("ComponentOf = %v, %v", is, err)
	}
	if s := f.e.Stats(); s.AncestorHits != before.AncestorHits+1 {
		t.Fatalf("ComponentOf missed the warm ancestor entry: %+v -> %+v", before, s)
	}
}

// TestPartitionsSets checks Definition 1 (§2.2) against the Figure 5
// fixture and the cache's hit/invalidate behavior.
func TestPartitionsSets(t *testing.T) {
	f := newDocFixture(t)
	p, err := f.e.Partitions(f.pShared)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(asSet(p.DS), asSet([]uid.UID{f.s1, f.s2})) || len(p.IX)+len(p.DX)+len(p.IS) != 0 {
		t.Fatalf("pShared partitions = %+v", p)
	}
	if p, _ = f.e.Partitions(f.note); !reflect.DeepEqual(p.DX, []uid.UID{f.doc1}) {
		t.Fatalf("note partitions = %+v", p)
	}
	if p, _ = f.e.Partitions(f.img); !reflect.DeepEqual(p.IS, []uid.UID{f.doc1}) {
		t.Fatalf("img partitions = %+v", p)
	}
	before := f.e.Stats()
	if _, err := f.e.Partitions(f.img); err != nil {
		t.Fatal(err)
	}
	if s := f.e.Stats(); s.PartitionHits != before.PartitionHits+1 {
		t.Fatalf("repeat Partitions should hit, %+v -> %+v", before, s)
	}
	if err := f.e.Detach(f.doc1, "Figures", f.img); err != nil {
		t.Fatal(err)
	}
	if p, _ = f.e.Partitions(f.img); len(p.IS) != 0 {
		t.Fatalf("after detach: img partitions = %+v", p)
	}
	if _, err := f.e.Partitions(uid.UID{Class: 1, Serial: 404}); !errors.Is(err, ErrNoObject) {
		t.Fatalf("ghost partitions error = %v", err)
	}
}

// TestDeferredEvolutionInvalidatesCache pins the CC half of the cache
// protocol: a deferred schema change mutates no object at issue time, so
// generation counters cannot catch it — the catalog change counter in the
// entry must.
func TestDeferredEvolutionInvalidatesCache(t *testing.T) {
	f := newDocFixture(t)
	e := f.e
	if got, _ := e.AncestorsOf(f.note, QueryOpts{}); !reflect.DeepEqual(got, []uid.UID{f.doc1}) {
		t.Fatalf("ancestors = %v", got)
	}
	if p, _ := e.Partitions(f.note); !reflect.DeepEqual(p.DX, []uid.UID{f.doc1}) {
		t.Fatalf("partitions = %+v", p)
	}
	// Deferred I2 (exclusive -> shared): the note's reverse reference flag
	// is rewritten lazily; the cached DX entry must not survive.
	if err := e.ChangeAttributeType("Document", "Annotations", schema.ChangeToShared, true); err != nil {
		t.Fatal(err)
	}
	p, err := e.Partitions(f.note)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.DX) != 0 || !reflect.DeepEqual(p.DS, []uid.UID{f.doc1}) {
		t.Fatalf("after deferred I2: partitions = %+v", p)
	}
	// Deferred drop-composite: the reverse reference itself goes away, so
	// the cached ancestor set shrinks on next access.
	if err := e.ChangeAttributeType("Document", "Annotations", schema.ChangeDropComposite, true); err != nil {
		t.Fatal(err)
	}
	if got, _ := e.AncestorsOf(f.note, QueryOpts{}); len(got) != 0 {
		t.Fatalf("after deferred drop: ancestors = %v", got)
	}
}

// TestConcurrentQueriesDuringWrites interleaves a writer goroutine with
// query goroutines: results must always be one of the graph's consistent
// states (never a torn read), and the engine must not deadlock.
func TestConcurrentQueriesDuringWrites(t *testing.T) {
	e, root := treeEngine(t, 3, 3)
	e.SetTraversalOpts(TraversalOpts{Parallelism: 4, Threshold: 1})
	base, err := e.ComponentsOf(root, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			n := mustNew(t, e, "Node", nil, ParentSpec{Parent: root, Attr: "Kids"})
			if _, err := e.Delete(n.UID()); err != nil {
				t.Errorf("delete: %v", err)
				return
			}
		}
	}()
	var readers sync.WaitGroup
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				got, err := e.ComponentsOf(root, QueryOpts{})
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				// The writer only ever adds/removes one direct child of
				// root; every snapshot is base or base plus that child.
				if len(got) != len(base) && len(got) != len(base)+1 {
					t.Errorf("torn read: %d components, base %d", len(got), len(base))
					return
				}
				if _, err := e.AncestorsOf(base[len(base)-1], QueryOpts{}); err != nil {
					t.Errorf("ancestors: %v", err)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
	checkClean(t, e)
}
