package core

import (
	"reflect"
	"testing"

	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// docFixture builds a two-document graph shaped like the paper's Figure 5:
//
//	doc1 -DS-> s1 -DS-> pShared      doc2 -DS-> s2 -DS-> pShared
//	doc1 -DX-> note (annotation)     s1  -DS-> p1
//	doc1 -IS-> img (figure)
type docFixture struct {
	e                      *Engine
	doc1, doc2, s1, s2     uid.UID
	p1, pShared, note, img uid.UID
}

func newDocFixture(t *testing.T) *docFixture {
	t.Helper()
	e := documentEngine(t)
	f := &docFixture{e: e}
	f.p1 = mustNew(t, e, "Paragraph", nil).UID()
	f.pShared = mustNew(t, e, "Paragraph", nil).UID()
	f.note = mustNew(t, e, "Paragraph", nil).UID()
	f.img = mustNew(t, e, "Image", nil).UID()
	f.s1 = mustNew(t, e, "Section", map[string]value.Value{
		"Content": value.RefSet(f.p1, f.pShared),
	}).UID()
	f.s2 = mustNew(t, e, "Section", map[string]value.Value{
		"Content": value.RefSet(f.pShared),
	}).UID()
	f.doc1 = mustNew(t, e, "Document", map[string]value.Value{
		"Sections":    value.RefSet(f.s1),
		"Annotations": value.RefSet(f.note),
		"Figures":     value.RefSet(f.img),
	}).UID()
	f.doc2 = mustNew(t, e, "Document", map[string]value.Value{
		"Sections": value.RefSet(f.s2),
	}).UID()
	checkClean(t, e)
	return f
}

func asSet(ids []uid.UID) map[uid.UID]bool {
	m := make(map[uid.UID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func TestComponentsOfAll(t *testing.T) {
	f := newDocFixture(t)
	got, err := f.e.ComponentsOf(f.doc1, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := asSet([]uid.UID{f.s1, f.note, f.img, f.p1, f.pShared})
	if len(got) != len(want) {
		t.Fatalf("components = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected component %v", id)
		}
	}
	// BFS order: level-1 components (s1, note, img) precede level-2
	// paragraphs.
	pos := map[uid.UID]int{}
	for i, id := range got {
		pos[id] = i
	}
	if pos[f.p1] < pos[f.s1] || pos[f.pShared] < pos[f.s1] {
		t.Fatalf("BFS order broken: %v", got)
	}
}

func TestComponentsOfLevel(t *testing.T) {
	f := newDocFixture(t)
	got, err := f.e.ComponentsOf(f.doc1, QueryOpts{Level: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := asSet([]uid.UID{f.s1, f.note, f.img})
	if len(got) != len(want) {
		t.Fatalf("level-1 components = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected level-1 component %v", id)
		}
	}
}

func TestComponentsOfClassFilter(t *testing.T) {
	f := newDocFixture(t)
	got, err := f.e.ComponentsOf(f.doc1, QueryOpts{Classes: []string{"Paragraph"}})
	if err != nil {
		t.Fatal(err)
	}
	want := asSet([]uid.UID{f.p1, f.pShared, f.note})
	if len(got) != len(want) {
		t.Fatalf("paragraph components = %v", got)
	}
}

func TestComponentsOfExclusiveSharedFilter(t *testing.T) {
	f := newDocFixture(t)
	// Exclusive only: just the annotation (the only exclusive edge).
	got, _ := f.e.ComponentsOf(f.doc1, QueryOpts{Exclusive: true})
	if !reflect.DeepEqual(got, []uid.UID{f.note}) {
		t.Fatalf("exclusive components = %v", got)
	}
	// Shared only: sections, figures, paragraphs — not the annotation.
	got, _ = f.e.ComponentsOf(f.doc1, QueryOpts{Shared: true})
	want := asSet([]uid.UID{f.s1, f.img, f.p1, f.pShared})
	if len(got) != len(want) {
		t.Fatalf("shared components = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected shared component %v", id)
		}
	}
	// Both flags set behaves like no filter.
	both, _ := f.e.ComponentsOf(f.doc1, QueryOpts{Exclusive: true, Shared: true})
	all, _ := f.e.ComponentsOf(f.doc1, QueryOpts{})
	if len(both) != len(all) {
		t.Fatalf("both-flags = %v", both)
	}
}

func TestParentsOf(t *testing.T) {
	f := newDocFixture(t)
	got, err := f.e.ParentsOf(f.pShared, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := asSet([]uid.UID{f.s1, f.s2})
	if len(got) != len(want) {
		t.Fatalf("parents = %v", got)
	}
	// Class filter.
	got, _ = f.e.ParentsOf(f.pShared, QueryOpts{Classes: []string{"Document"}})
	if len(got) != 0 {
		t.Fatalf("document parents of a paragraph = %v", got)
	}
	// Exclusive filter: the note's only parent is exclusive.
	got, _ = f.e.ParentsOf(f.note, QueryOpts{Exclusive: true})
	if !reflect.DeepEqual(got, []uid.UID{f.doc1}) {
		t.Fatalf("exclusive parents = %v", got)
	}
	got, _ = f.e.ParentsOf(f.note, QueryOpts{Shared: true})
	if len(got) != 0 {
		t.Fatalf("shared parents of note = %v", got)
	}
}

func TestAncestorsOf(t *testing.T) {
	f := newDocFixture(t)
	got, err := f.e.AncestorsOf(f.pShared, QueryOpts{})
	if err != nil {
		t.Fatal(err)
	}
	want := asSet([]uid.UID{f.s1, f.s2, f.doc1, f.doc2})
	if len(got) != len(want) {
		t.Fatalf("ancestors = %v", got)
	}
	for _, id := range got {
		if !want[id] {
			t.Fatalf("unexpected ancestor %v", id)
		}
	}
	// Class filter.
	got, _ = f.e.AncestorsOf(f.pShared, QueryOpts{Classes: []string{"Document"}})
	if len(got) != 2 {
		t.Fatalf("document ancestors = %v", got)
	}
}

func TestComponentOfChildOf(t *testing.T) {
	f := newDocFixture(t)
	cases := []struct {
		a, b        uid.UID
		comp, child bool
	}{
		{f.s1, f.doc1, true, true},
		{f.p1, f.doc1, true, false},
		{f.pShared, f.doc2, true, false},
		{f.p1, f.doc2, false, false},
		{f.doc1, f.s1, false, false}, // direction matters
		{f.doc1, f.doc1, false, false},
		{f.img, f.doc1, true, true},
	}
	for _, c := range cases {
		comp, err := f.e.ComponentOf(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if comp != c.comp {
			t.Errorf("ComponentOf(%v, %v) = %v, want %v", c.a, c.b, comp, c.comp)
		}
		child, err := f.e.ChildOf(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if child != c.child {
			t.Errorf("ChildOf(%v, %v) = %v, want %v", c.a, c.b, child, c.child)
		}
	}
}

func TestExclusiveSharedComponentOf(t *testing.T) {
	f := newDocFixture(t)
	// The note is an exclusive component of doc1.
	if got, _ := f.e.ExclusiveComponentOf(f.note, f.doc1); !got {
		t.Fatal("ExclusiveComponentOf(note, doc1) = false")
	}
	if got, _ := f.e.SharedComponentOf(f.note, f.doc1); got {
		t.Fatal("SharedComponentOf(note, doc1) = true")
	}
	// pShared is a shared component of both documents.
	if got, _ := f.e.SharedComponentOf(f.pShared, f.doc1); !got {
		t.Fatal("SharedComponentOf(pShared, doc1) = false")
	}
	if got, _ := f.e.ExclusiveComponentOf(f.pShared, f.doc1); got {
		t.Fatal("ExclusiveComponentOf(pShared, doc1) = true")
	}
	// Non-components return false for both.
	if got, _ := f.e.ExclusiveComponentOf(f.p1, f.doc2); got {
		t.Fatal("ExclusiveComponentOf of non-component = true")
	}
	if got, _ := f.e.SharedComponentOf(f.p1, f.doc2); got {
		t.Fatal("SharedComponentOf of non-component = true")
	}
}

func TestLevelOf(t *testing.T) {
	f := newDocFixture(t)
	cases := []struct {
		a, b uid.UID
		want int
	}{
		{f.s1, f.doc1, 1},
		{f.p1, f.doc1, 2},
		{f.pShared, f.doc2, 2},
		{f.p1, f.doc2, -1},
		{f.doc1, f.p1, -1},
	}
	for _, c := range cases {
		got, err := f.e.LevelOf(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("LevelOf(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	// Shortest path: attach p1 directly to doc1's annotations is illegal
	// (shared+exclusive), so test shortest-path with a second section
	// route instead: doc1 -> s2 (adopt) makes pShared reachable two ways,
	// level stays 2.
	if err := f.e.Attach(f.doc1, "Sections", f.s2); err != nil {
		t.Fatal(err)
	}
	if got, _ := f.e.LevelOf(f.pShared, f.doc1); got != 2 {
		t.Fatalf("LevelOf after extra path = %d", got)
	}
}

func TestRootsOf(t *testing.T) {
	f := newDocFixture(t)
	roots, err := f.e.RootsOf(f.pShared)
	if err != nil {
		t.Fatal(err)
	}
	want := asSet([]uid.UID{f.doc1, f.doc2})
	if len(roots) != len(want) {
		t.Fatalf("roots = %v", roots)
	}
	for _, r := range roots {
		if !want[r] {
			t.Fatalf("unexpected root %v", r)
		}
	}
	// A root is its own root.
	roots, _ = f.e.RootsOf(f.doc1)
	if !reflect.DeepEqual(roots, []uid.UID{f.doc1}) {
		t.Fatalf("roots of root = %v", roots)
	}
}

func TestQueryErrorsOnMissing(t *testing.T) {
	f := newDocFixture(t)
	ghost := uid.UID{Class: 1, Serial: 404}
	if _, err := f.e.ComponentsOf(ghost, QueryOpts{}); err == nil {
		t.Fatal("ComponentsOf ghost succeeded")
	}
	if _, err := f.e.ParentsOf(ghost, QueryOpts{}); err == nil {
		t.Fatal("ParentsOf ghost succeeded")
	}
	if _, err := f.e.AncestorsOf(ghost, QueryOpts{}); err == nil {
		t.Fatal("AncestorsOf ghost succeeded")
	}
	if _, err := f.e.ComponentOf(ghost, f.doc1); err == nil {
		t.Fatal("ComponentOf ghost succeeded")
	}
	if _, err := f.e.ChildOf(f.s1, ghost); err == nil {
		t.Fatal("ChildOf ghost succeeded")
	}
	if _, err := f.e.RootsOf(ghost); err == nil {
		t.Fatal("RootsOf ghost succeeded")
	}
	if _, err := f.e.LevelOf(ghost, f.doc1); err == nil {
		t.Fatal("LevelOf ghost succeeded")
	}
}

func TestComponentsOfSubclassFilter(t *testing.T) {
	// Class filters accept instances of subclasses.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Part"})
	cat.DefineClass(schema.ClassDef{Name: "Bolt", Superclasses: []string{"Part"}})
	cat.DefineClass(schema.ClassDef{Name: "Asm", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Parts", "Part"),
	}})
	e := NewEngine(cat)
	asm := mustNew(t, e, "Asm", nil)
	bolt := mustNew(t, e, "Bolt", nil, ParentSpec{Parent: asm.UID(), Attr: "Parts"})
	got, err := e.ComponentsOf(asm.UID(), QueryOpts{Classes: []string{"Part"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uid.UID{bolt.UID()}) {
		t.Fatalf("subclass filter = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	f := newDocFixture(t)
	s, err := f.e.Describe(f.doc1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 || s[:8] != "Document" {
		t.Fatalf("Describe = %q", s)
	}
}

func TestParentsAncestorsBothFlags(t *testing.T) {
	// Exclusive && Shared both true means "no edge filter" for the upward
	// queries too, matching the ComponentsOf boundary behavior.
	f := newDocFixture(t)
	for _, q := range []QueryOpts{{}, {Exclusive: true, Shared: true}} {
		parents, err := f.e.ParentsOf(f.pShared, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(asSet(parents), asSet([]uid.UID{f.s1, f.s2})) {
			t.Fatalf("opts %+v: parents = %v", q, parents)
		}
		ancs, err := f.e.AncestorsOf(f.pShared, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(asSet(ancs), asSet([]uid.UID{f.s1, f.s2, f.doc1, f.doc2})) {
			t.Fatalf("opts %+v: ancestors = %v", q, ancs)
		}
	}
	// Exclusive-only keeps only the X edge: note's single parent edge is
	// exclusive, pShared's are both shared.
	if got, _ := f.e.ParentsOf(f.pShared, QueryOpts{Exclusive: true}); len(got) != 0 {
		t.Fatalf("exclusive parents of shared component = %v", got)
	}
	if got, _ := f.e.AncestorsOf(f.note, QueryOpts{Exclusive: true}); !reflect.DeepEqual(got, []uid.UID{f.doc1}) {
		t.Fatalf("exclusive ancestors = %v", got)
	}
	if got, _ := f.e.AncestorsOf(f.note, QueryOpts{Shared: true}); len(got) != 0 {
		t.Fatalf("shared ancestors of exclusive component = %v", got)
	}
}

func TestAncestorsParentsSubclassFilter(t *testing.T) {
	// Class filters on the upward queries accept subclass instances: a
	// filter on "Asm" matches a parent that is a SubAsm.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Part"})
	cat.DefineClass(schema.ClassDef{Name: "Asm", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Parts", "Part"),
	}})
	cat.DefineClass(schema.ClassDef{Name: "SubAsm", Superclasses: []string{"Asm"}})
	e := NewEngine(cat)
	sub := mustNew(t, e, "SubAsm", nil)
	bolt := mustNew(t, e, "Part", nil, ParentSpec{Parent: sub.UID(), Attr: "Parts"})

	got, err := e.ParentsOf(bolt.UID(), QueryOpts{Classes: []string{"Asm"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uid.UID{sub.UID()}) {
		t.Fatalf("subclass-filtered parents = %v", got)
	}
	got, err = e.AncestorsOf(bolt.UID(), QueryOpts{Classes: []string{"Asm"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uid.UID{sub.UID()}) {
		t.Fatalf("subclass-filtered ancestors = %v", got)
	}
	// A filter naming the subclass must not match plain superclass parents
	// elsewhere — here it simply keeps matching the SubAsm instance, and an
	// unrelated class name filters everything out.
	if got, _ := e.AncestorsOf(bolt.UID(), QueryOpts{Classes: []string{"Part"}}); len(got) != 0 {
		t.Fatalf("mismatched class filter = %v", got)
	}
}
