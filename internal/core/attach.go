package core

import (
	"errors"
	"fmt"

	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// makeComponentCheck enforces the Make-Component Rule (§2.2):
//
//  1. If A is an exclusive composite attribute, O must not already have
//     any composite reference to it (exclusive or shared).
//  2. If A is a shared composite attribute, O must not already have an
//     exclusive composite reference.
//
// Together with the insertion below this maintains Topology Rules 1–3.
func makeComponentCheck(child *object.Object, spec schema.AttrSpec) error {
	if spec.Exclusive {
		if child.HasAnyReverse() {
			return fmt.Errorf("core: %v already has a composite parent; cannot add exclusive reference: %w",
				child.UID(), ErrTopologyViolation)
		}
		return nil
	}
	if child.HasExclusiveReverse() {
		return fmt.Errorf("core: %v has an exclusive composite parent; cannot add shared reference: %w",
			child.UID(), ErrTopologyViolation)
	}
	return nil
}

// linkChild records the composite reference in the child's reverse list.
func linkChild(child *object.Object, parent uid.UID, spec schema.AttrSpec) {
	child.AddReverse(object.ReverseRef{
		Parent:    parent,
		Dependent: spec.Dependent,
		Exclusive: spec.Exclusive,
	})
}

// setAttrLocked assigns v to attribute name of o, running composite
// bookkeeping for every reference gained or lost. Caller holds e.mu.
func (e *Engine) setAttrLocked(o *object.Object, name string, v value.Value, dirty *dirtySet) error {
	cl, err := e.cat.ClassByID(o.Class())
	if err != nil {
		return err
	}
	spec, err := e.cat.Attribute(cl.Name, name)
	if err != nil {
		return err
	}
	if err := e.cat.ValidateValue(cl.Name, name, v); err != nil {
		return err
	}
	if !spec.Composite {
		o.Set(name, v)
		dirty.add(o.UID())
		return nil
	}
	// Composite attribute: diff the referenced sets.
	oldRefs := uid.NewSet(o.Get(name).Refs(nil)...)
	newRefs := uid.NewSet(v.Refs(nil)...)
	var added, removed []uid.UID
	for _, r := range newRefs.Slice() {
		if !oldRefs.Contains(r) {
			added = append(added, r)
		}
	}
	for _, r := range oldRefs.Slice() {
		if !newRefs.Contains(r) {
			removed = append(removed, r)
		}
	}
	if e.legacy && len(added) > 0 {
		return fmt.Errorf("core: assembling existing objects through %s.%s (bottom-up creation): %w",
			cl.Name, name, ErrLegacyRestriction)
	}
	// Validate every addition and resolve every removal before mutating
	// anything, so a failing reference leaves the graph untouched.
	children := make([]*object.Object, len(added))
	for i, r := range added {
		child, err := e.get(r)
		if err != nil {
			return err
		}
		if r == o.UID() {
			return fmt.Errorf("core: %v cannot be a component of itself: %w", r, ErrTopologyViolation)
		}
		if err := makeComponentCheck(child, spec); err != nil {
			return err
		}
		children[i] = child
	}
	dropped := make([]*object.Object, 0, len(removed))
	for _, r := range removed {
		child, err := e.get(r)
		if err != nil {
			if errors.Is(err, ErrNoObject) {
				continue // dropping a dangling reference is always fine
			}
			return err
		}
		dropped = append(dropped, child)
	}
	for _, child := range dropped {
		child.RemoveReverse(o.UID())
		dirty.add(child.UID())
	}
	for _, child := range children {
		linkChild(child, o.UID(), spec)
		dirty.add(child.UID())
	}
	o.Set(name, v)
	dirty.add(o.UID())
	return nil
}

// Set assigns v to attribute attr of the object, enforcing domain
// validation and, for composite attributes, the Make-Component Rule on
// every newly referenced object (and unlinking every dropped one).
func (e *Engine) Set(id uid.UID, attr string, v value.Value) error {
	return e.SetTx(0, id, attr, v)
}

// SetTx is Set tagged with the transaction performing the update.
func (e *Engine) SetTx(tx TxnID, id uid.UID, attr string, v value.Value) error {
	e.mu.Lock()
	o, err := e.get(id)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	dirty := newDirtySet()
	if err := e.setAttrLocked(o, attr, v, dirty); err != nil {
		e.mu.Unlock()
		return err
	}
	e.bumpDirtyLocked(dirty)
	e.mu.Unlock()
	return e.writeThrough(tx, dirty, uid.Nil, uid.Nil, nil)
}

// attachLocked makes child a part of parent through attr, implementing
// the algorithm of §2.4:
//
//  1. Access object O (the child).
//  2. If (A is shared and the X flag is set in some reverse reference of
//     O) or (A is exclusive and O has any reverse reference), error.
//  3. Insert in O a reverse composite reference to O' with the D flag set
//     if A is dependent and the X flag set if A is exclusive.
//
// For a weak (non-composite) reference attribute, only the forward value
// is updated. Caller holds e.mu.
func (e *Engine) attachLocked(parent uid.UID, attr string, childID uid.UID, dirty *dirtySet) error {
	return e.attachCheckedLocked(parent, attr, childID, dirty, makeComponentCheck)
}

// attachCheckedLocked is attachLocked with a custom (or nil = disabled)
// Make-Component validation.
func (e *Engine) attachCheckedLocked(parent uid.UID, attr string, childID uid.UID, dirty *dirtySet,
	check func(child *object.Object, spec schema.AttrSpec) error) error {
	po, err := e.get(parent)
	if err != nil {
		return err
	}
	if parent == childID {
		return fmt.Errorf("core: %v cannot be a component of itself: %w", parent, ErrTopologyViolation)
	}
	pcl, err := e.cat.ClassByID(po.Class())
	if err != nil {
		return err
	}
	spec, err := e.cat.Attribute(pcl.Name, attr)
	if err != nil {
		return err
	}
	child, err := e.get(childID)
	if err != nil {
		return err
	}
	if spec.Domain.Kind != schema.DomainClass {
		return fmt.Errorf("core: %s.%s has primitive domain %s: %w",
			pcl.Name, attr, spec.Domain, schema.ErrDomainMismatch)
	}
	ccl, err := e.cat.ClassByID(child.Class())
	if err != nil {
		return err
	}
	if !e.cat.IsA(ccl.Name, spec.Domain.Class) {
		return fmt.Errorf("core: %s.%s wants %s, got instance of %s: %w",
			pcl.Name, attr, spec.Domain.Class, ccl.Name, schema.ErrDomainMismatch)
	}
	if e.legacy && spec.Composite && spec.RefKind() != schema.DependentExclusive {
		return fmt.Errorf("core: %s.%s is a %s reference; the legacy model supports only dependent exclusive: %w",
			pcl.Name, attr, spec.RefKind(), ErrLegacyRestriction)
	}
	// Forward value update.
	cur := po.Get(attr)
	if cur.ContainsRef(childID) {
		return nil // already attached through this attribute
	}
	if !spec.SetOf && !cur.IsNil() {
		return fmt.Errorf("core: %s.%s of %v already references %v: %w",
			pcl.Name, attr, parent, cur, ErrAttrOccupied)
	}
	if spec.Composite {
		if check != nil {
			if err := check(child, spec); err != nil {
				return err
			}
		}
		linkChild(child, parent, spec)
		dirty.add(childID)
	}
	if spec.SetOf {
		if cur.IsNil() {
			cur = value.SetOf()
		}
		po.Set(attr, cur.WithRef(childID))
	} else {
		po.Set(attr, value.Ref(childID))
	}
	dirty.add(parent)
	e.o.attaches.Inc()
	if tr := e.o.tr; tr.Active() {
		tr.Point(0, "core.attach", obs.F("parent", parent), obs.F("attr", attr), obs.F("child", childID),
			obs.F("ref", spec.RefKind()))
	}
	return nil
}

// Attach makes the existing object child a part of parent through attr —
// the bottom-up assembly the extended model adds (§1, shortcoming 2). It
// is rejected in legacy mode, where components can only come into
// existence under their parent.
func (e *Engine) Attach(parent uid.UID, attr string, child uid.UID) error {
	return e.AttachTx(0, parent, attr, child)
}

// AttachTx is Attach tagged with the transaction performing the link.
func (e *Engine) AttachTx(tx TxnID, parent uid.UID, attr string, child uid.UID) error {
	e.mu.Lock()
	if e.legacy {
		e.mu.Unlock()
		return fmt.Errorf("core: attach of existing object %v (bottom-up creation): %w", child, ErrLegacyRestriction)
	}
	dirty := newDirtySet()
	if err := e.attachLocked(parent, attr, child, dirty); err != nil {
		e.mu.Unlock()
		return err
	}
	e.bumpDirtyLocked(dirty)
	e.mu.Unlock()
	return e.writeThrough(tx, dirty, uid.Nil, uid.Nil, nil)
}

// AttachWithCheck is Attach with a caller-supplied Make-Component
// validation replacing the default one. The version layer needs this for
// Rule CV-2X (§5.2): a *generic* instance may carry several exclusive
// composite references as long as they all come from the same
// version-derivation hierarchy, which the default check would reject.
// Passing a nil check skips validation entirely (caller takes full
// responsibility for the topology rules).
func (e *Engine) AttachWithCheck(parent uid.UID, attr string, child uid.UID,
	check func(child *object.Object, spec schema.AttrSpec) error) error {
	e.mu.Lock()
	dirty := newDirtySet()
	if err := e.attachCheckedLocked(parent, attr, child, dirty, check); err != nil {
		e.mu.Unlock()
		return err
	}
	e.bumpDirtyLocked(dirty)
	e.mu.Unlock()
	return e.writeThrough(0, dirty, uid.Nil, uid.Nil, nil)
}

// Detach removes the reference from parent.attr to child, unlinking the
// reverse composite reference if the attribute is composite. The child
// survives: under the extended model removing a reference never deletes
// (only Delete applies the Deletion Rule), which is what permits
// dismantling a vehicle and re-using its parts (Example 1, §2.3).
func (e *Engine) Detach(parent uid.UID, attr string, child uid.UID) error {
	return e.DetachTx(0, parent, attr, child)
}

// DetachTx is Detach tagged with the transaction performing the unlink.
func (e *Engine) DetachTx(tx TxnID, parent uid.UID, attr string, child uid.UID) error {
	dirty, err := e.detachLocked(parent, attr, child)
	if err != nil {
		return err
	}
	return e.writeThrough(tx, dirty, uid.Nil, uid.Nil, nil)
}

// detachLocked performs the unlink under the exclusive latch.
func (e *Engine) detachLocked(parent uid.UID, attr string, child uid.UID) (*dirtySet, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.legacy {
		return nil, fmt.Errorf("core: detach of %v (component re-use): %w", child, ErrLegacyRestriction)
	}
	po, err := e.get(parent)
	if err != nil {
		return nil, err
	}
	pcl, err := e.cat.ClassByID(po.Class())
	if err != nil {
		return nil, err
	}
	spec, err := e.cat.Attribute(pcl.Name, attr)
	if err != nil {
		return nil, err
	}
	cur := po.Get(attr)
	if !cur.ContainsRef(child) {
		return nil, fmt.Errorf("core: %v.%s does not reference %v: %w", parent, attr, child, ErrNotReferenced)
	}
	dirty := newDirtySet()
	po.Set(attr, cur.WithoutRef(child))
	dirty.add(parent)
	if spec.Composite {
		if co, err := e.get(child); err == nil {
			co.RemoveReverse(parent)
			dirty.add(child)
		}
	}
	e.o.detaches.Inc()
	if tr := e.o.tr; tr.Active() {
		tr.Point(0, "core.detach", obs.F("parent", parent), obs.F("attr", attr), obs.F("child", child))
	}
	e.bumpDirtyLocked(dirty)
	return dirty, nil
}
