package core

import (
	"fmt"
	"sort"

	"repro/internal/schema"
	"repro/internal/uid"
)

// instancesOf returns the instances of class and its subclasses, in UID
// order. Caller holds e.mu.
func (e *Engine) instancesOf(class string) []uid.UID {
	var out []uid.UID
	for _, name := range e.cat.AllSubclasses(class) {
		cl, err := e.cat.Class(name)
		if err != nil {
			continue
		}
		out = append(out, e.extents[cl.ID].Slice()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// DropAttribute implements §4.1 change 1: drop attribute attr from class.
// Every instance of the class (and of its subclasses, which lose the
// inherited attribute) loses its value for attr; objects referenced
// through a composite attr are unlinked, and deleted in accordance with
// the Deletion Rule when the reference was dependent. It returns the UIDs
// of objects deleted by the cascade.
func (e *Engine) DropAttribute(class, attr string) ([]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	spec, err := e.cat.DropAttribute(class, attr)
	if err != nil {
		return nil, err
	}
	deleted, err := e.dropAttrValuesLocked(class, spec)
	if err != nil {
		return nil, err
	}
	out := append([]uid.UID(nil), deleted.Slice()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// dropAttrValuesLocked clears the value of spec from every instance of
// class (and subclasses), unlinking and reaping components. Caller holds
// e.mu and has already removed the attribute from the catalog.
func (e *Engine) dropAttrValuesLocked(class string, spec schema.AttrSpec) (*uid.Set, error) {
	dirty := newDirtySet()
	deleted := uid.NewSet()
	for _, id := range e.instancesOf(class) {
		o, ok := e.objects[id]
		if !ok || deleted.Contains(id) {
			continue
		}
		v := o.Get(spec.Name)
		if v.IsNil() {
			continue
		}
		if spec.Composite {
			for _, childID := range v.Refs(nil) {
				e.reapAfterUnlink(id, childID, spec.Dependent, spec.Exclusive, deleted, dirty, 0)
			}
		}
		if o, ok = e.objects[id]; ok { // may have died in a cyclic cascade
			o.Unset(spec.Name)
			dirty.add(id)
		}
	}
	for _, d := range deleted.Slice() {
		e.bumpLocked(d)
	}
	if err := e.flush(0, dirty, uid.Nil, uid.Nil); err != nil {
		return nil, err
	}
	if e.hook != nil {
		for _, d := range deleted.Slice() {
			if err := e.hook.OnDelete(0, d); err != nil {
				return nil, err
			}
		}
	}
	return deleted, nil
}

// RemoveSuperclass implements §4.1 change 3: remove super from class's
// superclass list. Attributes the class thereby loses are dropped from its
// instances as in DropAttribute, with composite cascades. It returns the
// UIDs deleted.
func (e *Engine) RemoveSuperclass(class, super string) ([]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	lost, err := e.cat.RemoveSuperclass(class, super)
	if err != nil {
		return nil, err
	}
	all := uid.NewSet()
	for _, spec := range lost {
		deleted, err := e.dropAttrValuesLocked(class, spec)
		if err != nil {
			return nil, err
		}
		for _, d := range deleted.Slice() {
			all.Add(d)
		}
	}
	out := append([]uid.UID(nil), all.Slice()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// DropClass implements §4.1 change 4: delete every instance of the class
// (cascading per the Deletion Rule through its composite attributes), then
// remove the class, re-parenting its subclasses to its superclasses. It
// returns the UIDs deleted.
func (e *Engine) DropClass(class string) ([]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.cat.CanDropClass(class); err != nil {
		return nil, err
	}
	cl, err := e.cat.Class(class)
	if err != nil {
		return nil, err
	}
	dirty := newDirtySet()
	deleted := uid.NewSet()
	for _, id := range append([]uid.UID(nil), e.extents[cl.ID].Slice()...) {
		if !deleted.Contains(id) {
			e.deleteLocked(id, deleted, dirty, 0)
		}
	}
	for _, d := range deleted.Slice() {
		e.bumpLocked(d)
	}
	if err := e.flush(0, dirty, uid.Nil, uid.Nil); err != nil {
		return nil, err
	}
	if e.hook != nil {
		for _, d := range deleted.Slice() {
			if err := e.hook.OnDelete(0, d); err != nil {
				return nil, err
			}
		}
	}
	if _, err := e.cat.DropClass(class); err != nil {
		return nil, err
	}
	delete(e.extents, cl.ID)
	out := append([]uid.UID(nil), deleted.Slice()...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out, nil
}

// RenameAttribute renames class.attr in the catalog and moves the stored
// values in every instance of the class and its subclasses. Reverse
// composite references are unaffected (they do not record the attribute
// name, §2.4).
func (e *Engine) RenameAttribute(class, attr, newName string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.cat.RenameAttribute(class, attr, newName); err != nil {
		return err
	}
	dirty := newDirtySet()
	for _, id := range e.instancesOf(class) {
		o, ok := e.objects[id]
		if !ok || !o.Has(attr) {
			continue
		}
		o.RenameAttr(attr, newName)
		dirty.add(id)
	}
	return e.flush(0, dirty, uid.Nil, uid.Nil)
}

// ChangeAttributeType performs a state-independent attribute-type change
// (I1–I4 of §4.2) on class.attr. With deferred=false the reverse
// composite references of every currently referenced object are rewritten
// now (§4.3 "immediate"); with deferred=true the rewrite is logged in the
// domain class's operation log and applied when each object is next
// accessed (§4.3 "deferred").
func (e *Engine) ChangeAttributeType(class, attr string, kind schema.ChangeKind, deferred bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	entry, err := e.cat.ChangeAttributeType(class, attr, kind, deferred)
	if err != nil {
		return err
	}
	if deferred {
		return nil
	}
	// Immediate: rewrite the flags in all referenced instances. §4.3
	// describes this as accessing all instances of the domain class C; we
	// walk the forward references of the owner class's instances, which
	// touches exactly the objects whose flags can be stale.
	spec, err := e.cat.Attribute(entry.OwnerClass, attr)
	if err != nil && kind != schema.ChangeDropComposite {
		return err
	}
	dirty := newDirtySet()
	for _, pid := range e.instancesOf(entry.OwnerClass) {
		p, ok := e.objects[pid]
		if !ok {
			continue
		}
		for _, childID := range p.Get(attr).Refs(nil) {
			child, ok := e.objects[childID]
			if !ok {
				continue
			}
			switch kind {
			case schema.ChangeDropComposite:
				child.RemoveReverse(pid)
			default:
				child.SetReverseFlags(pid, spec.Dependent, spec.Exclusive)
			}
			dirty.add(childID)
		}
	}
	return e.flush(0, dirty, uid.Nil, uid.Nil)
}

// MakeComposite performs the state-dependent changes D1 (weak ->
// exclusive composite) and D2 (weak -> shared composite) of §4.2: it
// verifies, for every instance of the domain class referenced through
// attr by any instance of class, that the Make-Component Rule admits the
// new reference kind, then records the new specification and inserts the
// reverse composite references. State-dependent changes can never be
// deferred (§4.3: they require immediate verification of the X flags).
func (e *Engine) MakeComposite(class, attr string, exclusive, dependent bool) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	spec, err := e.cat.Attribute(class, attr)
	if err != nil {
		return err
	}
	if spec.Composite {
		return fmt.Errorf("core: %s.%s is already composite: %w", class, attr, ErrChangeRejected)
	}
	if spec.Domain.Kind != schema.DomainClass {
		return fmt.Errorf("core: %s.%s has a primitive domain: %w", class, attr, ErrChangeRejected)
	}
	// Step 1: collect the referenced instances. Step 2: verify. This walk
	// is the expensive part the paper warns about ("there is no reverse
	// reference corresponding to a weak reference").
	type link struct{ parent, child uid.UID }
	var links []link
	for _, pid := range e.instancesOf(class) {
		p, ok := e.objects[pid]
		if !ok {
			continue
		}
		for _, childID := range p.Get(attr).Refs(nil) {
			links = append(links, link{pid, childID})
		}
	}
	seenChildren := uid.NewSet()
	for _, l := range links {
		child, ok := e.objects[l.child]
		if !ok {
			return fmt.Errorf("core: %v.%s dangles to %v: %w", l.parent, attr, l.child, ErrChangeRejected)
		}
		if exclusive {
			// D1: no composite references (of any kind) to the child, and
			// no two weak references through A to the same child (they
			// would become two exclusive parents).
			if child.HasAnyReverse() {
				return fmt.Errorf("core: D1 rejected, %v already has a composite parent: %w", l.child, ErrChangeRejected)
			}
			if !seenChildren.Add(l.child) {
				return fmt.Errorf("core: D1 rejected, %v is referenced through %s by more than one instance: %w", l.child, attr, ErrChangeRejected)
			}
		} else {
			// D2: Topology Rule 3 — no exclusive composite references.
			if child.HasExclusiveReverse() {
				return fmt.Errorf("core: D2 rejected, %v has an exclusive composite parent: %w", l.child, ErrChangeRejected)
			}
		}
	}
	if err := e.cat.UpdateAttributeFlags(class, attr, true, exclusive, dependent); err != nil {
		return err
	}
	dirty := newDirtySet()
	newSpec, _ := e.cat.Attribute(class, attr)
	for _, l := range links {
		linkChild(e.objects[l.child], l.parent, newSpec)
		dirty.add(l.child)
	}
	return e.flush(0, dirty, uid.Nil, uid.Nil)
}

// MakeExclusive performs the state-dependent change D3 of §4.2 (shared
// composite -> exclusive composite): the change is rejected if any
// instance referenced through attr has more than one composite parent
// (§4.3: "more than one reverse composite reference, at least one from an
// instance of the class C'"); otherwise the X flag is turned on in the
// reverse references from instances of class.
func (e *Engine) MakeExclusive(class, attr string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	spec, err := e.cat.Attribute(class, attr)
	if err != nil {
		return err
	}
	if !spec.Composite || spec.Exclusive {
		return fmt.Errorf("core: D3 requires a shared composite attribute; %s.%s is %s: %w",
			class, attr, spec.RefKind(), ErrChangeRejected)
	}
	var children []uid.UID
	seen := uid.NewSet()
	for _, pid := range e.instancesOf(class) {
		p, ok := e.objects[pid]
		if !ok {
			continue
		}
		for _, childID := range p.Get(attr).Refs(nil) {
			child, ok := e.objects[childID]
			if !ok {
				continue
			}
			if len(child.Reverse()) > 1 {
				return fmt.Errorf("core: D3 rejected, %v has %d composite parents: %w",
					childID, len(child.Reverse()), ErrChangeRejected)
			}
			if seen.Add(childID) {
				children = append(children, childID)
			}
		}
	}
	if err := e.cat.UpdateAttributeFlags(class, attr, true, true, spec.Dependent); err != nil {
		return err
	}
	dirty := newDirtySet()
	for _, childID := range children {
		child := e.objects[childID]
		for _, r := range child.Reverse() {
			child.SetReverseFlags(r.Parent, r.Dependent, true)
		}
		dirty.add(childID)
	}
	return e.flush(0, dirty, uid.Nil, uid.Nil)
}
