package core

import (
	"fmt"

	"repro/internal/uid"
	"repro/internal/value"
)

// CopyComposite copies the composite object rooted at root, following the
// deep/shallow semantics the reference types imply (after [KIM87a], the
// complex-object operations paper this one extends):
//
//   - exclusive components are DEEP-copied: a part of only one object
//     cannot be shared with the copy, so the copy gets its own part
//     (recursively);
//   - shared components are SHARED: the copy references the same
//     component, gaining one more shared parent (subject to the
//     Make-Component Rule, which always admits another shared parent);
//   - weak references are copied as-is (they carry no IS-PART-OF
//     semantics and may dangle or be shared freely).
//
// It returns the UID of the new root and a mapping original -> copy for
// every deep-copied object.
func (e *Engine) CopyComposite(root uid.UID) (uid.UID, map[uid.UID]uid.UID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.legacy {
		return uid.Nil, nil, fmt.Errorf("core: copy-composite: %w", ErrLegacyRestriction)
	}
	if _, err := e.get(root); err != nil {
		return uid.Nil, nil, err
	}
	mapping := make(map[uid.UID]uid.UID)
	dirty := newDirtySet()
	copyID, err := e.copyLocked(root, mapping, dirty)
	if err != nil {
		// Undo partial work: evict every copy made so far, and invalidate
		// readers of the shared children that briefly gained a parent.
		for _, c := range mapping {
			delete(e.objects, c)
			if ext := e.extents[c.Class]; ext != nil {
				ext.Remove(c)
			}
		}
		e.bumpDirtyLocked(dirty)
		return uid.Nil, nil, err
	}
	if err := e.flush(0, dirty, uid.Nil, uid.Nil); err != nil {
		return uid.Nil, nil, err
	}
	return copyID, mapping, nil
}

// copyLocked deep-copies one object. mapping doubles as the visited set,
// so cyclic exclusive hierarchies (legal only transiently) terminate.
func (e *Engine) copyLocked(id uid.UID, mapping map[uid.UID]uid.UID, dirty *dirtySet) (uid.UID, error) {
	if c, ok := mapping[id]; ok {
		return c, nil
	}
	src, err := e.get(id)
	if err != nil {
		return uid.Nil, err
	}
	cl, err := e.cat.ClassByID(id.Class)
	if err != nil {
		return uid.Nil, err
	}
	cp := src.CloneAs(e.gen.Next(cl.ID))
	cp.SetCC(e.cat.CurrentCC())
	mapping[id] = cp.UID()
	e.objects[cp.UID()] = cp
	e.extentFor(cl.ID).Add(cp.UID())
	dirty.add(cp.UID())

	attrs, err := e.cat.Attributes(cl.Name)
	if err != nil {
		return uid.Nil, err
	}
	for _, spec := range attrs {
		if !spec.Composite {
			continue // weak references stay as copied by CloneAs
		}
		v := cp.Get(spec.Name)
		if v.IsNil() {
			continue
		}
		if spec.Exclusive {
			// Deep copy every referenced component and rewrite the value.
			for _, childID := range v.Refs(nil) {
				childCopy, err := e.copyLocked(childID, mapping, dirty)
				if err != nil {
					return uid.Nil, err
				}
				v = v.ReplaceRef(childID, childCopy)
				if child := e.objects[childCopy]; child != nil {
					linkChild(child, cp.UID(), spec)
					dirty.add(childCopy)
				}
			}
			cp.Set(spec.Name, v)
			continue
		}
		// Shared: the copy references the same components; each gains one
		// more shared parent. A shared component can never have an
		// exclusive parent (Topology Rule 3), so the Make-Component Rule
		// is satisfied by construction — checked anyway for safety.
		for _, childID := range v.Refs(nil) {
			child, err := e.get(childID)
			if err != nil {
				return uid.Nil, err
			}
			if err := makeComponentCheck(child, spec); err != nil {
				return uid.Nil, err
			}
			linkChild(child, cp.UID(), spec)
			dirty.add(childID)
		}
	}
	return cp.UID(), nil
}

// CopiedValue is a helper for tests: the value of attr on the copy of id
// under the given mapping.
func CopiedValue(e *Engine, mapping map[uid.UID]uid.UID, id uid.UID, attr string) (value.Value, error) {
	c, ok := mapping[id]
	if !ok {
		return value.Nil, fmt.Errorf("%v was not copied: %w", id, ErrNoObject)
	}
	o, err := e.Get(c)
	if err != nil {
		return value.Nil, err
	}
	return o.Get(attr), nil
}
