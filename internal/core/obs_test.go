package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/uid"
)

// cascadeEngine builds the shared-dependent DAG the trace test deletes:
// Root -DX-> {A, B} (both Mid), and A, B -DS-> C (Leaf). Deleting Root
// must cascade through A and B, with C surviving the first severed DS
// reference and dying with the last.
func cascadeEngine(t *testing.T) (e *Engine, root, a, b, c uid.UID) {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Leaf"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Mid", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Sub", "Leaf").WithExclusive(false).WithDependent(true),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Root", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Parts", "Mid").WithExclusive(true).WithDependent(true),
	}}); err != nil {
		t.Fatal(err)
	}
	e = NewEngine(cat)
	r := mustNew(t, e, "Root", nil)
	ao := mustNew(t, e, "Mid", nil, ParentSpec{Parent: r.UID(), Attr: "Parts"})
	bo := mustNew(t, e, "Mid", nil, ParentSpec{Parent: r.UID(), Attr: "Parts"})
	co := mustNew(t, e, "Leaf", nil,
		ParentSpec{Parent: ao.UID(), Attr: "Sub"},
		ParentSpec{Parent: bo.UID(), Attr: "Sub"},
	)
	return e, r.UID(), ao.UID(), bo.UID(), co.UID()
}

// TestCascadeTrace deletes the shared-dependent DAG with tracing on and
// checks the emitted events: deterministic order, parent/child span
// nesting mirroring the cascade tree, and the last-parent deletion of
// the shared dependent distinguishable from the exclusive cascades.
func TestCascadeTrace(t *testing.T) {
	e, root, a, b, c := cascadeEngine(t)
	tr := e.Observability().Tracer()
	tr.SetActive(true)

	deleted, err := e.Delete(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 4 {
		t.Fatalf("deleted = %v", deleted)
	}

	evs := tr.Events()
	type want struct {
		phase, name string
		fields      map[string]string
	}
	f := func(kv ...string) map[string]string {
		m := map[string]string{}
		for i := 0; i+1 < len(kv); i += 2 {
			m[kv[i]] = kv[i+1]
		}
		return m
	}
	wants := []want{
		{obs.PhaseBegin, "core.delete", f("uid", root.String())},
		{obs.PhaseBegin, "core.delete.object", f("uid", root.String())},
		{obs.PhasePoint, "core.delete.reap", f("child", a.String(), "rule", "cascade-dependent-exclusive")},
		{obs.PhaseBegin, "core.delete.object", f("uid", a.String())},
		{obs.PhasePoint, "core.delete.reap", f("child", c.String(), "rule", "survives-ds-parents-remain")},
		{obs.PhaseEnd, "core.delete.object", nil},
		{obs.PhasePoint, "core.delete.reap", f("child", b.String(), "rule", "cascade-dependent-exclusive")},
		{obs.PhaseBegin, "core.delete.object", f("uid", b.String())},
		{obs.PhasePoint, "core.delete.reap", f("child", c.String(), "rule", "cascade-last-ds-parent")},
		{obs.PhaseBegin, "core.delete.object", f("uid", c.String())},
		{obs.PhaseEnd, "core.delete.object", nil},
		{obs.PhaseEnd, "core.delete.object", nil},
		{obs.PhaseEnd, "core.delete.object", nil},
		{obs.PhaseEnd, "core.delete", f("deleted", "4")},
	}
	if len(evs) != len(wants) {
		for _, ev := range evs {
			t.Log(ev)
		}
		t.Fatalf("got %d events, want %d", len(evs), len(wants))
	}
	fieldsOf := func(ev obs.Event) map[string]string {
		m := map[string]string{}
		for _, fl := range ev.Fields {
			m[fl.Key] = fl.Val
		}
		return m
	}
	for i, w := range wants {
		ev := evs[i]
		if ev.Phase != w.phase || ev.Name != w.name {
			t.Fatalf("event %d = %v, want %s %s", i, ev, w.phase, w.name)
		}
		got := fieldsOf(ev)
		for k, v := range w.fields {
			if got[k] != v {
				t.Fatalf("event %d %v: field %s = %q, want %q", i, ev, k, got[k], v)
			}
		}
	}
	// Span nesting mirrors the cascade tree: delete-object spans open
	// under the root delete span, the cascaded objects under their
	// deleting parent, and every reap point attaches to the span of the
	// parent being deleted.
	sRoot, sR, sA, sB, sC := evs[0].Span, evs[1].Span, evs[3].Span, evs[7].Span, evs[9].Span
	if evs[1].Parent != sRoot {
		t.Fatalf("root object span nests under %d, want %d", evs[1].Parent, sRoot)
	}
	for i, parent := range map[int]uint64{3: sR, 7: sR, 9: sB} {
		if evs[i].Parent != parent {
			t.Fatalf("event %d (%v) parent = %d, want %d", i, evs[i], evs[i].Parent, parent)
		}
	}
	if evs[2].Parent != sR || evs[4].Parent != sA || evs[6].Parent != sR || evs[8].Parent != sB {
		t.Fatal("reap points not attached to the deleting parent's span")
	}
	if evs[5].Span != sA || evs[10].Span != sC || evs[11].Span != sB || evs[12].Span != sR || evs[13].Span != sRoot {
		t.Fatal("End events close the wrong spans")
	}

	// The registry counters saw the same cascade.
	snap := e.Observability().Snapshot()
	if snap.Counters["core_delete_total"] != 1 || snap.Counters["core_delete_cascaded_total"] != 3 {
		t.Fatalf("delete counters = %+v", snap.Counters)
	}
	checkClean(t, e)
}

// TestCascadeTraceOffByDefault: the same cascade with the default
// (disabled) tracer must emit nothing and still count.
func TestCascadeTraceOffByDefault(t *testing.T) {
	e, root, _, _, _ := cascadeEngine(t)
	if _, err := e.Delete(root); err != nil {
		t.Fatal(err)
	}
	if evs := e.Observability().Tracer().Events(); len(evs) != 0 {
		t.Fatalf("disabled tracer recorded %d events", len(evs))
	}
	if got := e.Observability().Snapshot().Counters["core_delete_cascaded_total"]; got != 3 {
		t.Fatalf("core_delete_cascaded_total = %d", got)
	}
}

// TestSetObservabilityNil: a nil registry (the no-instrumentation
// baseline BenchmarkObsDisabled measures against) must keep the engine
// fully functional with Stats reading all zeros.
func TestSetObservabilityNil(t *testing.T) {
	e, root, _, _, _ := cascadeEngine(t)
	e.SetObservability(nil)
	if e.Observability() != nil {
		t.Fatal("nil registry not installed")
	}
	deleted, err := e.Delete(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 4 {
		t.Fatalf("deleted = %v", deleted)
	}
	if s := e.Stats(); s != (Stats{}) {
		t.Fatalf("stats with nil registry = %+v", s)
	}
	e.ResetStats() // must not panic
}

// TestResetStatsRace exercises ResetStats against concurrent cached
// queries; under -race this pins the registry-backed reset as race-free.
func TestResetStatsRace(t *testing.T) {
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Leaf"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Root", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Parts", "Leaf").WithExclusive(true).WithDependent(true),
	}}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cat)
	r := mustNew(t, e, "Root", nil)
	for i := 0; i < 8; i++ {
		mustNew(t, e, "Leaf", nil, ParentSpec{Parent: r.UID(), Attr: "Parts"})
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := e.ComponentsOf(r.UID(), QueryOpts{}); err != nil {
						panic(fmt.Sprintf("ComponentsOf: %v", err))
					}
					e.Stats()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		e.ResetStats()
	}
	close(stop)
	wg.Wait()
}
