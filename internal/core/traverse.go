package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/object"
	"repro/internal/uid"
)

// errStaleCC signals, on the read-locked fast path, that deferred schema
// changes (§4.3) pend on an object the query touched. Applying them
// mutates the object, which the read lock forbids; the caller retries the
// whole operation under the write lock, where get applies them.
var errStaleCC = errors.New("core: deferred schema changes pending")

// ErrDangling reports a composite reference to a missing object, surfaced
// by queries run with QueryOpts.Strict. A dangling composite reference is
// an integrity violation (unlike weak references, which ORION lets
// dangle); the lenient default skips it, as the paper's implementation
// does.
var ErrDangling = errors.New("core: dangling composite reference")

// TraversalOpts configures the parallel composite traversal used by
// ComponentsOf and AncestorsOf. Parallelism bounds the worker count for
// expanding one BFS level (<= 0 selects GOMAXPROCS); Threshold is the
// minimum frontier size before workers are used at all (<= 0 selects the
// default) — small frontiers expand sequentially, since fan-out overhead
// would dominate.
type TraversalOpts struct {
	Parallelism int
	Threshold   int
}

// defaultTraversalThreshold is the frontier size below which level
// expansion stays sequential.
const defaultTraversalThreshold = 64

func (t TraversalOpts) normalized() TraversalOpts {
	if t.Parallelism <= 0 {
		t.Parallelism = runtime.GOMAXPROCS(0)
	}
	if t.Threshold <= 0 {
		t.Threshold = defaultTraversalThreshold
	}
	return t
}

// SetTraversalOpts installs the traversal configuration.
func (e *Engine) SetTraversalOpts(t TraversalOpts) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.trav = t.normalized()
}

// TraversalOpts returns the current traversal configuration.
func (e *Engine) TraversalOpts() TraversalOpts {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.trav
}

// walker carries the per-traversal state of one BFS. mutate selects the
// write-locked path: fetch applies deferred schema changes via get, and
// expansion stays sequential (workers must not mutate). On the read
// path (mutate false) fetch never mutates and fails with errStaleCC when
// an object it needs has pending changes.
//
// plans and maxCC are written only by the merge step (which runs on the
// goroutine holding the engine latch), never by expansion workers, so the
// maps need no locking.
type walker struct {
	e      *Engine
	q      QueryOpts
	cc     uint64
	catVer uint64
	mutate bool
	plans  map[uid.ClassID][]string
	maxCC  map[uid.ClassID]uint64
}

func (e *Engine) newWalker(q QueryOpts, cc uint64, mutate bool) *walker {
	return &walker{
		e:      e,
		q:      q,
		cc:     cc,
		catVer: e.cat.Version(),
		mutate: mutate,
		plans:  make(map[uid.ClassID][]string),
		maxCC:  make(map[uid.ClassID]uint64),
	}
}

// fetch returns the live object for a traversal step. Read path: the
// object is returned as stored, unless deferred schema changes newer than
// its CC stamp apply to its class, in which case errStaleCC tells the
// caller to restart under the write lock. Write path: get, which applies
// the pending changes.
func (w *walker) fetch(id uid.UID) (*object.Object, error) {
	if w.mutate {
		o, err := w.e.get(id)
		if err == nil {
			w.q.Prof.ObjectVisited()
		}
		return o, err
	}
	o, ok := w.e.objects[id]
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNoObject)
	}
	if o.CC() < w.cc && o.CC() < w.pendingCeiling(id.Class) {
		w.e.o.staleRetries.Inc()
		return nil, errStaleCC
	}
	w.q.Prof.ObjectVisited()
	return o, nil
}

// pendingCeiling returns the highest CC of a deferred log entry applicable
// to instances of class c (0 when none), memoized per traversal so the
// staleness test on each visited object is O(1) after the first instance
// of its class.
func (w *walker) pendingCeiling(c uid.ClassID) uint64 {
	if v, ok := w.maxCC[c]; ok {
		return v
	}
	var v uint64
	if cl, err := w.e.cat.ClassByID(c); err == nil {
		if entries := w.e.cat.Pending(cl.Name, 0); len(entries) > 0 {
			v = entries[len(entries)-1].CC
		}
	}
	w.maxCC[c] = v
	return v
}

// planFor memoizes the composite attributes of class c that pass the edge
// filter, consulting the engine-wide plan cache first (catalog attribute
// resolution walks the inheritance lattice on every call, which dominates
// traversal cost on deep schemas). Merge-side only.
func (w *walker) planFor(c uid.ClassID) {
	if _, ok := w.plans[c]; ok {
		return
	}
	key := planKey{class: c, exclusive: w.q.Exclusive, shared: w.q.Shared}
	if ent := w.e.cache.lookupPlan(key); ent != nil && ent.ver == w.catVer {
		w.e.o.planHits.Inc()
		w.q.Prof.CacheHit()
		w.plans[c] = ent.attrs
		return
	}
	w.e.o.planMisses.Inc()
	w.q.Prof.CacheMiss()
	var names []string
	if cl, err := w.e.cat.ClassByID(c); err == nil {
		if attrs, err := w.e.cat.Attributes(cl.Name); err == nil {
			for _, spec := range attrs {
				if spec.Composite && w.q.wantEdge(spec.Exclusive) {
					names = append(names, spec.Name)
				}
			}
		}
	}
	w.plans[c] = names
	w.e.cache.storePlan(key, &planEntry{attrs: names, ver: w.catVer})
}

// children returns the UIDs o references through the planned composite
// attributes, in attribute order. The plan for o's class must already be
// in w.plans (the merge step guarantees this before expansion).
func (w *walker) children(o *object.Object) []uid.UID {
	var out []uid.UID
	for _, name := range w.plans[o.Class()] {
		out = o.Get(name).Refs(out)
	}
	return out
}

// expand computes the outgoing edges of every frontier object — composite
// children (down) or composite parents via reverse references (up) — as
// one slice per frontier slot, preserving per-object order. Large
// frontiers are split across workers; because each worker writes only its
// own slots and reads only immutable traversal state, the result is
// identical to the sequential expansion, and the caller's ordered merge
// preserves the BFS level-order output contract exactly.
func (w *walker) expand(frontier []*object.Object, down bool) [][]uid.UID {
	out := make([][]uid.UID, len(frontier))
	expand1 := func(i int) {
		o := frontier[i]
		if down {
			out[i] = w.children(o)
			return
		}
		for _, r := range o.Reverse() {
			if w.q.wantEdge(r.Exclusive) {
				out[i] = append(out[i], r.Parent)
			}
		}
	}
	opts := w.e.trav
	if w.mutate || opts.Parallelism <= 1 || len(frontier) < opts.Threshold {
		for i := range frontier {
			expand1(i)
		}
		return out
	}
	workers := opts.Parallelism
	if workers > len(frontier) {
		workers = len(frontier)
	}
	chunk := (len(frontier) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(frontier); lo += chunk {
		hi := lo + chunk
		if hi > len(frontier) {
			hi = len(frontier)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				expand1(i)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// componentsLocked runs the (components-of ...) BFS from root. The
// traversal is level-synchronous: each level is expanded (possibly in
// parallel), then merged sequentially in frontier order, so the output is
// the exact BFS level-order sequence the sequential walk produces. Caller
// holds e.mu — for reading when w.mutate is false, for writing otherwise.
func (e *Engine) componentsLocked(root *object.Object, q QueryOpts, cc uint64, mutate bool) ([]uid.UID, error) {
	w := e.newWalker(q, cc, mutate)
	id := root.UID()
	q.Prof.ObjectVisited() // the root, fetched by the caller
	w.planFor(id.Class)
	seen := uid.NewSet(id)
	frontier := []*object.Object{root}
	frontierIDs := []uid.UID{id}
	var out []uid.UID
	for level := 0; len(frontier) > 0; level++ {
		if q.Level > 0 && level >= q.Level {
			break
		}
		var next []*object.Object
		var nextIDs []uid.UID
		for i, kids := range w.expand(frontier, true) {
			for _, child := range kids {
				if !seen.Add(child) {
					continue
				}
				co, err := w.fetch(child)
				if err != nil {
					if errors.Is(err, errStaleCC) {
						return nil, err
					}
					if q.Strict {
						return nil, fmt.Errorf("core: %v references missing component %v: %w",
							frontierIDs[i], child, ErrDangling)
					}
					continue // dangling composite ref would be an integrity bug; skip defensively
				}
				if e.wantClass(q, child) {
					out = append(out, child)
				}
				w.planFor(child.Class)
				next = append(next, co)
				nextIDs = append(nextIDs, child)
			}
		}
		frontier, frontierIDs = next, nextIDs
	}
	return out, nil
}

// ancestorsLocked runs the reverse BFS from start over the reverse
// composite references. With raw true, the edge filter is all-pass and
// every ancestor is collected (the cacheable form; class filtering
// happens on the cached order afterwards). A reverse reference to a
// missing parent still contributes the parent to the output — ParentsOf
// reads reverse references without an existence check, and ancestors-of
// is its closure — but is not expanded; with q.Strict it is an error.
// Caller holds e.mu as for componentsLocked.
func (e *Engine) ancestorsLocked(start *object.Object, q QueryOpts, cc uint64, mutate, raw bool) ([]uid.UID, error) {
	if raw {
		q = QueryOpts{Strict: q.Strict, Prof: q.Prof}
	}
	w := e.newWalker(q, cc, mutate)
	seen := uid.NewSet(start.UID())
	frontier := []*object.Object{start}
	frontierIDs := []uid.UID{start.UID()}
	var out []uid.UID
	for len(frontier) > 0 {
		var next []*object.Object
		var nextIDs []uid.UID
		for i, parents := range w.expand(frontier, false) {
			for _, p := range parents {
				if !seen.Add(p) {
					continue
				}
				keep := raw || e.wantClass(q, p)
				po, err := w.fetch(p)
				if err != nil {
					if errors.Is(err, errStaleCC) {
						return nil, err
					}
					if q.Strict {
						return nil, fmt.Errorf("core: %v holds a reverse reference to missing parent %v: %w",
							frontierIDs[i], p, ErrDangling)
					}
					if keep {
						out = append(out, p)
					}
					continue
				}
				if keep {
					out = append(out, p)
				}
				next = append(next, po)
				nextIDs = append(nextIDs, p)
			}
		}
		frontier, frontierIDs = next, nextIDs
	}
	return out, nil
}
