// MVCC version store: copy-on-write multi-versioning over the engine's
// object graph, keyed by a commit-sequence clock.
//
// Every mutation path already funnels its write set through writeThrough
// (or flush, for schema evolution). The version store piggybacks on that
// funnel: an auto-commit mutation (tx 0) publishes an immutable clone of
// each object it touched as one commit boundary; a transactional
// mutation only records the touched UIDs, and the whole accumulated
// write set is published as a single boundary when the transaction layer
// calls CommitVersions — still under the transaction's §7 exclusive
// locks, so the set is quiescent. Aborts discard the accumulated set
// (the undo writes were recorded under the same tag and vanish with it).
//
// Readers never see any of this machinery's locks. A Snapshot resolves
// an object by walking its version chain — newest first, linked through
// atomic pointers — for the first node at or below the snapshot's
// sequence number. Chain heads, next pointers, and the clock are the
// only shared state a snapshot read touches, all via atomic loads; the
// engine latch, the install mutex, and the §7 lock manager are never
// acquired (snapshot_test.go asserts both).
//
// Publication order is the correctness hinge: installLocked stores every
// node of a boundary before it advances the clock. A snapshot begun at
// sequence S therefore either sees none of boundary S+1's nodes (they
// all have seq S+1 > S) or — having read clock ≥ S — sees all of
// boundary S's nodes, because the clock store sequences after the node
// stores and Go's atomics are sequentially consistent.
//
// Garbage collection is low-watermark based: the watermark is the oldest
// active snapshot sequence (or the clock when none is active), and every
// chain node strictly older than the newest node at-or-below the
// watermark is unreachable by any current or future snapshot. Pruning
// runs opportunistically on every install (so a churned chain stays at
// O(1) nodes without any background help) plus via VersionGC, which the
// db facade drives from a background ticker to reclaim chains that are
// no longer being written.
package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/object"
	"repro/internal/uid"
)

// versionNode is one committed version of one object: an immutable clone
// published under the commit sequence seq, or a tombstone (obj nil) when
// the commit deleted the object. next links to the previous (older)
// version; it is atomic because the pruner truncates tails while readers
// walk.
type versionNode struct {
	seq  uint64
	obj  *object.Object // nil = deleted at this boundary
	next atomic.Pointer[versionNode]
}

// versionChain is one object's version history, newest first.
type versionChain struct {
	head atomic.Pointer[versionNode]
}

// mvccState is the engine's version store. Installs are serialized by
// installMu (they also hold the engine latch at least shared, which
// keeps the live objects quiescent while cloning); reads are lock-free.
type mvccState struct {
	chains sync.Map      // uid.UID -> *versionChain
	clock  atomic.Uint64 // sequence of the newest fully published boundary

	installMu sync.Mutex

	// pending accumulates the per-transaction write sets between the
	// first tagged writeThrough and CommitVersions/AbortVersions.
	pendingMu sync.Mutex
	pending   map[TxnID]*uid.Set

	// active holds a refcount per registered snapshot sequence; its
	// minimum is the GC low-watermark. snapMu also guards the clock read
	// in BeginSnapshot so registration cannot race a concurrent watermark
	// computation into pruning a version the new snapshot needs.
	snapMu sync.Mutex
	active map[uint64]int
}

// CommitSeq returns the version clock: the sequence number of the newest
// published commit boundary.
func (e *Engine) CommitSeq() uint64 { return e.mvcc.clock.Load() }

// recordVersionsLocked is called from the mutation funnels with an
// operation's write set (dirty objects plus deleted UIDs). Auto-commit
// operations (tx 0) are their own commit boundary and install
// immediately; transactional writes accumulate under tx and install at
// CommitVersions. Caller holds e.mu (read or write).
func (e *Engine) recordVersionsLocked(tx TxnID, d *dirtySet, deleted []uid.UID) {
	if tx != 0 {
		e.mvcc.pendingMu.Lock()
		set := e.mvcc.pending[tx]
		if set == nil {
			set = uid.NewSet()
			e.mvcc.pending[tx] = set
		}
		if d != nil {
			for _, id := range d.ids.Slice() {
				set.Add(id)
			}
		}
		for _, id := range deleted {
			set.Add(id)
		}
		e.mvcc.pendingMu.Unlock()
		return
	}
	var ids []uid.UID
	if d != nil {
		ids = d.ids.Slice()
	}
	ids = append(ids, deleted...)
	e.installLocked(ids)
}

// installLocked publishes one commit boundary covering ids: a clone of
// each live object (a tombstone for each missing one) is prepended to
// its chain under the next sequence number, and the clock is advanced
// only after every node is in place. Caller holds e.mu (read or write),
// which keeps the objects quiescent while they are cloned.
func (e *Engine) installLocked(ids []uid.UID) {
	if len(ids) == 0 {
		return
	}
	wm := e.versionWatermark()
	e.mvcc.installMu.Lock()
	seq := e.mvcc.clock.Load() + 1
	pruned := 0
	for _, id := range ids {
		var obj *object.Object
		if o, ok := e.objects[id]; ok {
			obj = o.Clone()
		}
		ci, _ := e.mvcc.chains.LoadOrStore(id, &versionChain{})
		ch := ci.(*versionChain)
		n := &versionNode{seq: seq, obj: obj}
		n.next.Store(ch.head.Load())
		ch.head.Store(n)
		pruned += e.pruneChain(id, ch, wm)
	}
	e.mvcc.clock.Store(seq)
	e.mvcc.installMu.Unlock()
	e.o.mvccInstalls.Add(uint64(len(ids)))
	e.o.mvccVersionsLive.Add(int64(len(ids) - pruned))
	if pruned > 0 {
		e.o.mvccGCReclaimed.Add(uint64(pruned))
	}
	e.updateSnapshotAge()
}

// CommitVersions publishes the transaction's accumulated write set as
// one atomic commit boundary. The transaction layer calls it after the
// durability boundary and before releasing any lock: strict 2PL still
// holds the write set exclusively, so no concurrent writer can be
// mid-splice on any of these objects while they are cloned.
func (e *Engine) CommitVersions(tx TxnID) {
	if tx == 0 {
		return
	}
	e.mvcc.pendingMu.Lock()
	set := e.mvcc.pending[tx]
	delete(e.mvcc.pending, tx)
	e.mvcc.pendingMu.Unlock()
	if set == nil || set.Len() == 0 {
		return
	}
	e.mu.RLock()
	e.installLocked(set.Slice())
	e.mu.RUnlock()
}

// AbortVersions discards the transaction's accumulated write set. The
// undo writes (RestoreTx/EvictTx) were recorded under the same tag, so
// dropping the set wholesale leaves the chains exactly at the pre-
// transaction boundary — which is what the rolled-back live state equals.
func (e *Engine) AbortVersions(tx TxnID) {
	if tx == 0 {
		return
	}
	e.mvcc.pendingMu.Lock()
	delete(e.mvcc.pending, tx)
	e.mvcc.pendingMu.Unlock()
}

// versionWatermark returns the GC low-watermark: the oldest sequence any
// active snapshot reads at, or the clock when no snapshot is active.
// Every version strictly older than the newest node at-or-below the
// watermark is unreachable — a snapshot registered after this call gets
// a sequence at least as new as the clock read here.
func (e *Engine) versionWatermark() uint64 {
	e.mvcc.snapMu.Lock()
	wm := e.mvcc.clock.Load()
	for s := range e.mvcc.active {
		if s < wm {
			wm = s
		}
	}
	e.mvcc.snapMu.Unlock()
	return wm
}

// pruneChain cuts the unreachable tail of one chain: everything strictly
// older than the newest node with seq <= wm. When that node is the head
// and a tombstone, no snapshot can see the object at all and the whole
// chain is removed from the map (old nodes stay intact for any reader
// already walking them — they are merely unreachable from the map).
// Returns the number of nodes reclaimed. Caller holds installMu.
func (e *Engine) pruneChain(id uid.UID, ch *versionChain, wm uint64) int {
	n := ch.head.Load()
	for n != nil && n.seq > wm {
		n = n.next.Load()
	}
	if n == nil {
		return 0
	}
	cut := 0
	for t := n.next.Load(); t != nil; t = t.next.Load() {
		cut++
	}
	if cut > 0 {
		n.next.Store(nil)
	}
	if ch.head.Load() == n && n.obj == nil {
		e.mvcc.chains.Delete(id)
		cut++
	}
	return cut
}

// VersionGC sweeps every chain against the current low-watermark and
// returns the number of version nodes reclaimed. Install-time pruning
// already bounds chains that keep being written; the sweep reclaims the
// stale tails of chains that stopped changing after the snapshots that
// pinned them were released.
func (e *Engine) VersionGC() int {
	wm := e.versionWatermark()
	e.mvcc.installMu.Lock()
	total := 0
	e.mvcc.chains.Range(func(k, v any) bool {
		total += e.pruneChain(k.(uid.UID), v.(*versionChain), wm)
		return true
	})
	e.mvcc.installMu.Unlock()
	if total > 0 {
		e.o.mvccGCReclaimed.Add(uint64(total))
		e.o.mvccVersionsLive.Add(-int64(total))
	}
	e.updateSnapshotAge()
	return total
}

// VersionsLive returns the mvcc_versions_live gauge (0 with a nil
// registry), for tests and the sim soak's plateau check.
func (e *Engine) VersionsLive() int64 { return e.o.mvccVersionsLive.Load() }

// updateSnapshotAge refreshes the mvcc_snapshot_age gauge: how many
// commit boundaries behind the clock the oldest active snapshot reads
// (0 when no snapshot is active).
func (e *Engine) updateSnapshotAge() {
	e.mvcc.snapMu.Lock()
	clock := e.mvcc.clock.Load()
	oldest := clock
	for s := range e.mvcc.active {
		if s < oldest {
			oldest = s
		}
	}
	e.mvcc.snapMu.Unlock()
	e.o.mvccSnapshotAge.Set(int64(clock - oldest))
}
