package core

import (
	"fmt"
	"sort"

	"repro/internal/object"
	"repro/internal/obs"
	"repro/internal/schema"
	"repro/internal/uid"
)

// Snapshot is a read-only, lock-free view of the engine at one commit
// boundary. Every query resolves objects through the version chains at
// the snapshot's sequence number and never acquires the engine latch or
// any §7 lock, so long analytical scans cannot stall writers and writers
// cannot move the ground under a scan: the view is the exact committed
// state at sequence Seq, however long the snapshot lives.
//
// Like a Txn, a Snapshot is single-goroutine (one goroutine per
// snapshot, many snapshots in parallel): its memo caches are private
// plain maps. That privacy is also the staleness fix for the shared
// generation-counter caches — a snapshot never consults them, so a
// post-commit entry can never be served to a pre-commit snapshot
// (TestSnapshotCacheIsolation pins this).
//
// Objects returned by Get are the shared immutable version records:
// callers must treat them as read-only.
//
// The schema catalog is pinned too: BeginSnapshot captures an immutable
// clone of the catalog at the snapshot's commit boundary (clones are
// cached per catalog version, so consecutive snapshots under a stable
// schema share one), and every class-dependent answer — traversal plans,
// class filters, IsA tests — resolves against that clone. A schema
// evolution committed after BeginSnapshot is therefore invisible to the
// snapshot's queries, matching the object-graph isolation: the snapshot
// answers with the schema AND the data that were live at Seq.
//
// Release must be called when done: an unreleased snapshot pins the GC
// low-watermark and version chains grow behind it.
type Snapshot struct {
	e        *Engine
	seq      uint64
	cat      *schema.Catalog
	released bool

	// prof, when set via SetProf, receives cost attribution for the
	// snapshot's reads: objects visited and MVCC version-chain nodes
	// walked. Single-goroutine like the rest of the snapshot.
	prof *obs.ProfCtx

	// Per-snapshot memoization, never shared: traversal plans per
	// (class, edge-filter) and raw ancestor orders per object. Both are
	// immutable facts for the lifetime of the snapshot.
	plans map[planKey][]string
	anc   map[uid.UID][]uid.UID
}

// BeginSnapshot registers a read-only snapshot at the current commit
// boundary. Registration pins the snapshot's sequence against the
// version GC until Release.
func (e *Engine) BeginSnapshot() *Snapshot {
	e.mvcc.snapMu.Lock()
	seq := e.mvcc.clock.Load()
	e.mvcc.active[seq]++
	e.mvcc.snapMu.Unlock()
	e.o.mvccSnapshotBegins.Inc()
	e.o.mvccSnapshotsActive.Add(1)
	e.updateSnapshotAge()
	return &Snapshot{
		e:     e,
		seq:   seq,
		cat:   e.catalogView(),
		plans: make(map[planKey][]string),
		anc:   make(map[uid.UID][]uid.UID),
	}
}

// catalogView returns an immutable clone of the catalog at its current
// version, cached so that consecutive snapshots under an unchanged schema
// share one clone instead of copying the catalog per BeginSnapshot. The
// version re-check after cloning guards the race where the catalog
// mutates between the Version read and the Clone: the clone carries its
// own consistent version, which is what keys the cache.
func (e *Engine) catalogView() *schema.Catalog {
	ver := e.cat.Version()
	e.catViewMu.Lock()
	defer e.catViewMu.Unlock()
	if e.catView != nil && e.catView.Version() == ver {
		return e.catView
	}
	e.catView = e.cat.Clone()
	return e.catView
}

// Seq returns the commit boundary the snapshot reads at.
func (s *Snapshot) Seq() uint64 { return s.seq }

// SetProf attaches (or, with nil, detaches) a profile context: until
// changed, every read through the snapshot attributes its objects
// visited and version-chain nodes walked to p.
func (s *Snapshot) SetProf(p *obs.ProfCtx) { s.prof = p }

// Release unregisters the snapshot, unpinning its sequence for the
// version GC. Idempotent.
func (s *Snapshot) Release() {
	if s.released {
		return
	}
	s.released = true
	e := s.e
	e.mvcc.snapMu.Lock()
	if n := e.mvcc.active[s.seq]; n <= 1 {
		delete(e.mvcc.active, s.seq)
	} else {
		e.mvcc.active[s.seq] = n - 1
	}
	e.mvcc.snapMu.Unlock()
	e.o.mvccSnapshotsActive.Add(-1)
	e.updateSnapshotAge()
}

// object resolves id at the snapshot boundary: the newest version at or
// below seq, nil when the object did not exist there (no chain, no
// version that old, or a tombstone). Lock-free: two atomic loads per
// chain node.
func (s *Snapshot) object(id uid.UID) *object.Object {
	ci, ok := s.e.mvcc.chains.Load(id)
	if !ok {
		return nil
	}
	walked := 0
	for n := ci.(*versionChain).head.Load(); n != nil; n = n.next.Load() {
		walked++
		if n.seq <= s.seq {
			s.prof.VersionsWalked(walked)
			if n.obj != nil {
				s.prof.ObjectVisited()
			}
			return n.obj
		}
	}
	s.prof.VersionsWalked(walked)
	return nil
}

// Get returns the object's committed state at the snapshot boundary.
// The returned object is the shared version record: read-only.
func (s *Snapshot) Get(id uid.UID) (*object.Object, error) {
	if o := s.object(id); o != nil {
		return o, nil
	}
	return nil, fmt.Errorf("%v: %w", id, ErrNoObject)
}

// Exists reports whether the object existed at the snapshot boundary.
func (s *Snapshot) Exists(id uid.UID) bool { return s.object(id) != nil }

// UIDs returns every object visible at the snapshot boundary, in UID
// order.
func (s *Snapshot) UIDs() []uid.UID {
	var out []uid.UID
	s.e.mvcc.chains.Range(func(k, v any) bool {
		for n := v.(*versionChain).head.Load(); n != nil; n = n.next.Load() {
			if n.seq <= s.seq {
				if n.obj != nil {
					out = append(out, k.(uid.UID))
				}
				break
			}
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Len returns the number of objects visible at the snapshot boundary.
func (s *Snapshot) Len() int {
	n := 0
	s.e.mvcc.chains.Range(func(_, v any) bool {
		for node := v.(*versionChain).head.Load(); node != nil; node = node.next.Load() {
			if node.seq <= s.seq {
				if node.obj != nil {
					n++
				}
				break
			}
		}
		return true
	})
	return n
}

// planFor memoizes the composite attributes of class c passing the edge
// filter, from the snapshot's pinned catalog clone — a schema evolution
// committed after BeginSnapshot cannot change the answer. The shared plan
// cache is deliberately not consulted: snapshot memos must never mix with
// generation-keyed shared state.
func (s *Snapshot) planFor(q QueryOpts, c uid.ClassID) []string {
	key := planKey{class: c, exclusive: q.Exclusive, shared: q.Shared}
	if attrs, ok := s.plans[key]; ok {
		return attrs
	}
	var names []string
	if cl, err := s.cat.ClassByID(c); err == nil {
		if attrs, err := s.cat.Attributes(cl.Name); err == nil {
			for _, spec := range attrs {
				if spec.Composite && q.wantEdge(spec.Exclusive) {
					names = append(names, spec.Name)
				}
			}
		}
	}
	s.plans[key] = names
	return names
}

// wantClass is the engine's Classes-filter test against the snapshot's
// pinned catalog.
func (s *Snapshot) wantClass(q QueryOpts, id uid.UID) bool {
	if len(q.Classes) == 0 {
		return true
	}
	cl, err := s.cat.ClassByID(id.Class)
	if err != nil {
		return false
	}
	for _, want := range q.Classes {
		if s.cat.IsA(cl.Name, want) {
			return true
		}
	}
	return false
}

// filterAncestors applies the Classes filter to a cached raw ancestor
// order, against the pinned catalog. Always returns a fresh slice.
func (s *Snapshot) filterAncestors(q QueryOpts, order []uid.UID) []uid.UID {
	if len(q.Classes) == 0 {
		return append([]uid.UID(nil), order...)
	}
	var out []uid.UID
	for _, id := range order {
		if s.wantClass(q, id) {
			out = append(out, id)
		}
	}
	return out
}

// ComponentsOf is the snapshot form of (components-of Object ...): the
// same BFS level-order walk as the engine's, over version-resolved
// objects. Expansion is sequential — snapshots favor isolation over
// intra-query parallelism.
func (s *Snapshot) ComponentsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	root, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	seen := uid.NewSet(id)
	frontier := []*object.Object{root}
	var out []uid.UID
	for level := 0; len(frontier) > 0; level++ {
		if q.Level > 0 && level >= q.Level {
			break
		}
		var next []*object.Object
		for _, o := range frontier {
			for _, name := range s.planFor(q, o.Class()) {
				for _, child := range o.Get(name).Refs(nil) {
					if !seen.Add(child) {
						continue
					}
					co := s.object(child)
					if co == nil {
						if q.Strict {
							return nil, fmt.Errorf("core: %v references missing component %v: %w",
								o.UID(), child, ErrDangling)
						}
						continue
					}
					if s.wantClass(q, child) {
						out = append(out, child)
					}
					next = append(next, co)
				}
			}
		}
		frontier = next
	}
	return out, nil
}

// ParentsOf is the snapshot form of (parents-of Object ...).
func (s *Snapshot) ParentsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	var out []uid.UID
	for _, r := range o.Reverse() {
		if q.wantEdge(r.Exclusive) && s.wantClass(q, r.Parent) {
			out = append(out, r.Parent)
		}
	}
	return out, nil
}

// AncestorsOf is the snapshot form of (ancestors-of Object ...). As in
// the engine, an all-pass edge filter computes the raw ancestor order
// once (memoized for the snapshot's lifetime) and applies the Classes
// filter on top.
func (s *Snapshot) AncestorsOf(id uid.UID, q QueryOpts) ([]uid.UID, error) {
	cacheable := q.cacheable()
	if cacheable {
		if order, ok := s.anc[id]; ok {
			return s.filterAncestors(q, order), nil
		}
	}
	root, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	order, err := s.ancestors(root, q, cacheable)
	if err != nil {
		return nil, err
	}
	if cacheable {
		s.anc[id] = order
		return s.filterAncestors(q, order), nil
	}
	return order, nil
}

// ancestors mirrors the engine's ancestorsLocked over version-resolved
// objects: reverse BFS, with raw selecting the unfiltered (cacheable)
// form. A reverse reference to an object missing at the boundary still
// contributes the parent but is not expanded, exactly as the live path
// treats dangling reverse references.
func (s *Snapshot) ancestors(start *object.Object, q QueryOpts, raw bool) ([]uid.UID, error) {
	if raw {
		q = QueryOpts{Strict: q.Strict}
	}
	seen := uid.NewSet(start.UID())
	frontier := []*object.Object{start}
	var out []uid.UID
	for len(frontier) > 0 {
		var next []*object.Object
		for _, o := range frontier {
			for _, r := range o.Reverse() {
				if !q.wantEdge(r.Exclusive) {
					continue
				}
				p := r.Parent
				if !seen.Add(p) {
					continue
				}
				keep := raw || s.wantClass(q, p)
				po := s.object(p)
				if po == nil {
					if q.Strict {
						return nil, fmt.Errorf("core: %v holds a reverse reference to missing parent %v: %w",
							o.UID(), p, ErrDangling)
					}
					if keep {
						out = append(out, p)
					}
					continue
				}
				if keep {
					out = append(out, p)
				}
				next = append(next, po)
			}
		}
		frontier = next
	}
	return out, nil
}

// ComponentOf is the snapshot form of (component-of Object1 Object2),
// answered from the memoized raw ancestor order of a.
func (s *Snapshot) ComponentOf(a, b uid.UID) (bool, error) {
	if _, err := s.Get(a); err != nil {
		return false, err
	}
	if _, err := s.Get(b); err != nil {
		return false, err
	}
	if a == b {
		return false, nil
	}
	order, err := s.AncestorsOf(a, QueryOpts{})
	if err != nil {
		return false, err
	}
	for _, p := range order {
		if p == b {
			return true, nil
		}
	}
	return false, nil
}

// Partitions returns the §2.2 partition sets at the snapshot boundary.
// Slices are owned by the caller.
func (s *Snapshot) Partitions(id uid.UID) (PartitionSets, error) {
	o, err := s.Get(id)
	if err != nil {
		return PartitionSets{}, err
	}
	return PartitionSets{IX: o.IX(), DX: o.DX(), IS: o.IS(), DS: o.DS()}, nil
}

// RootsOf is the snapshot form of Engine.RootsOf: the ancestors of id
// (or id itself) without composite parents at the boundary.
func (s *Snapshot) RootsOf(id uid.UID) ([]uid.UID, error) {
	o, err := s.Get(id)
	if err != nil {
		return nil, err
	}
	if !o.HasAnyReverse() {
		return []uid.UID{id}, nil
	}
	seen := uid.NewSet(id)
	queue := []uid.UID{id}
	var roots []uid.UID
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		co := s.object(cur)
		if co == nil {
			continue
		}
		if cur != id && !co.HasAnyReverse() {
			roots = append(roots, cur)
			continue
		}
		for _, r := range co.Reverse() {
			if seen.Add(r.Parent) {
				queue = append(queue, r.Parent)
			}
		}
	}
	return roots, nil
}
