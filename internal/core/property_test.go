package core

import (
	"math/rand"
	"testing"

	"repro/internal/schema"
	"repro/internal/uid"
)

// propEngine builds a schema with one parent class per reference kind plus
// a recursive class, for randomized operation sequences.
func propEngine(t *testing.T) *Engine {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Leaf"}); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, excl, dep bool) {
		if _, err := cat.DefineClass(schema.ClassDef{Name: name, Attributes: []schema.AttrSpec{
			schema.NewCompositeSetAttr("Parts", "Leaf").WithExclusive(excl).WithDependent(dep),
			schema.NewCompositeSetAttr("Subs", name).WithExclusive(excl).WithDependent(dep),
		}}); err != nil {
			t.Fatal(err)
		}
	}
	mk("DX", true, true)
	mk("IX", true, false)
	mk("DS", false, true)
	mk("IS", false, false)
	return NewEngine(cat)
}

// TestPropertyRandomOpsPreserveInvariants drives random creates, attaches,
// detaches, and deletes and asserts after every step that the graph obeys
// Topology Rules 1–3 and reverse/forward consistency. Violating operations
// are expected to error; the property is that the graph never goes bad.
func TestPropertyRandomOpsPreserveInvariants(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			e := propEngine(t)
			r := rand.New(rand.NewSource(seed))
			classes := []string{"Leaf", "DX", "IX", "DS", "IS"}
			var live []uid.UID
			pick := func() uid.UID { return live[r.Intn(len(live))] }
			for step := 0; step < 400; step++ {
				switch op := r.Intn(10); {
				case op < 4 || len(live) == 0: // create
					cl := classes[r.Intn(len(classes))]
					o, err := e.New(cl, nil)
					if err != nil {
						t.Fatalf("step %d New: %v", step, err)
					}
					live = append(live, o.UID())
				case op < 7: // attach
					p, c := pick(), pick()
					pc, err := e.ClassOf(p)
					if err != nil {
						continue
					}
					attr := "Parts"
					if r.Intn(2) == 0 {
						attr = "Subs"
					}
					// Errors are fine (topology may forbid); the graph just
					// must stay consistent.
					_ = func() error { return e.Attach(p, attr, c) }()
					_ = pc
				case op < 8: // detach
					p, c := pick(), pick()
					for _, attr := range []string{"Parts", "Subs"} {
						_ = e.Detach(p, attr, c)
					}
				default: // delete
					victim := pick()
					if _, err := e.Delete(victim); err != nil {
						t.Fatalf("step %d Delete(%v): %v", step, victim, err)
					}
					// Rebuild the live list.
					var nl []uid.UID
					for _, id := range live {
						if e.Exists(id) {
							nl = append(nl, id)
						}
					}
					live = nl
				}
				if step%20 == 0 {
					if v := e.Integrity(); len(v) != 0 {
						t.Fatalf("seed %d step %d: integrity violations: %v", seed, step, v)
					}
				}
			}
			if v := e.Integrity(); len(v) != 0 {
				t.Fatalf("seed %d final: %v", seed, v)
			}
		})
	}
}

// TestPropertyExclusiveCardinality asserts Topology Rules 1–2 directly:
// after any sequence of successful attaches, no object ever has more than
// one exclusive parent nor mixed exclusive/shared parents.
func TestPropertyExclusiveCardinality(t *testing.T) {
	e := propEngine(t)
	r := rand.New(rand.NewSource(99))
	var leaves, parents []uid.UID
	for i := 0; i < 30; i++ {
		o, _ := e.New("Leaf", nil)
		leaves = append(leaves, o.UID())
	}
	for _, cl := range []string{"DX", "IX", "DS", "IS"} {
		for i := 0; i < 10; i++ {
			o, _ := e.New(cl, nil)
			parents = append(parents, o.UID())
		}
	}
	for i := 0; i < 2000; i++ {
		p := parents[r.Intn(len(parents))]
		c := leaves[r.Intn(len(leaves))]
		_ = e.Attach(p, "Parts", c)
	}
	for _, l := range leaves {
		o, _ := e.Get(l)
		nx := len(o.IX()) + len(o.DX())
		ns := len(o.IS()) + len(o.DS())
		if nx > 1 {
			t.Fatalf("leaf %v has %d exclusive parents", l, nx)
		}
		if nx > 0 && ns > 0 {
			t.Fatalf("leaf %v mixes exclusive and shared parents", l)
		}
	}
}

// TestPropertyDeleteIsComplete asserts that after Delete, no trace of the
// deleted objects remains reachable through composite references or
// reverse references.
func TestPropertyDeleteIsComplete(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		e := propEngine(t)
		r := rand.New(rand.NewSource(seed))
		var all []uid.UID
		for i := 0; i < 50; i++ {
			cl := []string{"Leaf", "DX", "DS", "IS"}[r.Intn(4)]
			o, _ := e.New(cl, nil)
			all = append(all, o.UID())
		}
		for i := 0; i < 300; i++ {
			_ = e.Attach(all[r.Intn(len(all))], "Parts", all[r.Intn(len(all))])
			_ = e.Attach(all[r.Intn(len(all))], "Subs", all[r.Intn(len(all))])
		}
		victim := all[r.Intn(len(all))]
		deleted, err := e.Delete(victim)
		if err != nil {
			t.Fatal(err)
		}
		dead := map[uid.UID]bool{}
		for _, d := range deleted {
			dead[d] = true
		}
		for _, id := range all {
			if dead[id] {
				if e.Exists(id) {
					t.Fatalf("seed %d: %v reported deleted but exists", seed, id)
				}
				continue
			}
			o, err := e.Get(id)
			if err != nil {
				t.Fatalf("seed %d: survivor %v unreadable: %v", seed, id, err)
			}
			for _, rr := range o.Reverse() {
				if dead[rr.Parent] {
					t.Fatalf("seed %d: survivor %v has reverse ref to deleted %v", seed, id, rr.Parent)
				}
			}
			cl, _ := e.ClassOf(id)
			attrs, _ := e.Catalog().Attributes(cl.Name)
			for _, spec := range attrs {
				if !spec.Composite {
					continue
				}
				for _, ref := range o.Get(spec.Name).Refs(nil) {
					if dead[ref] {
						t.Fatalf("seed %d: survivor %v still composite-references deleted %v", seed, id, ref)
					}
				}
			}
		}
		if v := e.Integrity(); len(v) != 0 {
			t.Fatalf("seed %d: %v", seed, v)
		}
	}
}

// TestPropertyDependentComponentsNeverOrphaned: an object held only
// through dependent references never survives all its dependent parents.
func TestPropertyDependentComponentsNeverOrphaned(t *testing.T) {
	e := propEngine(t)
	r := rand.New(rand.NewSource(7))
	// Build DS parents over shared leaves, then delete parents one by one.
	var parents []uid.UID
	for i := 0; i < 10; i++ {
		o, _ := e.New("DS", nil)
		parents = append(parents, o.UID())
	}
	var leaves []uid.UID
	for i := 0; i < 30; i++ {
		o, _ := e.New("Leaf", nil)
		leaves = append(leaves, o.UID())
		// Attach to 1–3 random DS parents.
		n := r.Intn(3) + 1
		for j := 0; j < n; j++ {
			_ = e.Attach(parents[r.Intn(len(parents))], "Parts", o.UID())
		}
	}
	for _, p := range parents {
		if _, err := e.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range leaves {
		if e.Exists(l) {
			o, _ := e.Get(l)
			t.Fatalf("leaf %v survived all dependent parents: reverse=%v", l, o.Reverse())
		}
	}
}
