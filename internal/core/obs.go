package core

import (
	"repro/internal/obs"
)

// engineObs holds the engine's pre-resolved observability instruments.
// Counters are bound once from a registry (private by default, shared
// when db.Open installs its own), so hot paths pay one atomic add per
// event and never a registry lookup. With a nil registry every
// instrument is nil and each emission site reduces to a nil-check — the
// no-instrumentation baseline BenchmarkObsDisabled measures against.
type engineObs struct {
	reg    *obs.Registry
	tr     *obs.Tracer
	slow   *obs.SlowLog
	flight *obs.FlightRecorder

	// Read-path cache counters (the former engineStats).
	ancestorHits    *obs.Counter
	ancestorMisses  *obs.Counter
	partitionHits   *obs.Counter
	partitionMisses *obs.Counter
	planHits        *obs.Counter
	planMisses      *obs.Counter
	invalidations   *obs.Counter

	// Mutation and evolution counters.
	attaches         *obs.Counter
	detaches         *obs.Counter
	deletes          *obs.Counter
	deleteCascaded   *obs.Counter
	evolutionReplays *obs.Counter
	staleRetries     *obs.Counter

	deleteNs    *obs.Histogram
	traversalNs *obs.Histogram

	// MVCC version-store instruments (mvcc.go / snapshot.go).
	mvccInstalls        *obs.Counter
	mvccGCReclaimed     *obs.Counter
	mvccSnapshotBegins  *obs.Counter
	mvccVersionsLive    *obs.Gauge
	mvccSnapshotsActive *obs.Gauge
	mvccSnapshotAge     *obs.Gauge
}

// timed reports whether the current operation should take timestamps:
// either the tracer or the slow log wants durations. One-to-two atomic
// loads; used to keep time.Now off the disabled query path.
func (o *engineObs) timed() bool {
	return o.tr.Active() || o.slow.Active()
}

// bindObs resolves the engine's instruments from r. A nil registry binds
// nil instruments (every obs method accepts a nil receiver), making all
// instrumentation a branch.
func (e *Engine) bindObs(r *obs.Registry) {
	e.o = engineObs{
		reg:              r,
		tr:               r.Tracer(),
		slow:             r.Slow(),
		flight:           r.Flight(),
		ancestorHits:     r.Counter("core_cache_ancestor_hits_total"),
		ancestorMisses:   r.Counter("core_cache_ancestor_misses_total"),
		partitionHits:    r.Counter("core_cache_partition_hits_total"),
		partitionMisses:  r.Counter("core_cache_partition_misses_total"),
		planHits:         r.Counter("core_cache_plan_hits_total"),
		planMisses:       r.Counter("core_cache_plan_misses_total"),
		invalidations:    r.Counter("core_cache_invalidations_total"),
		attaches:         r.Counter("core_attach_total"),
		detaches:         r.Counter("core_detach_total"),
		deletes:          r.Counter("core_delete_total"),
		deleteCascaded:   r.Counter("core_delete_cascaded_total"),
		evolutionReplays: r.Counter("core_evolution_replays_total"),
		staleRetries:     r.Counter("core_stalecc_retries_total"),
		deleteNs:         r.Histogram("core_delete_ns", nil),
		traversalNs:      r.Histogram("core_traversal_ns", nil),

		mvccInstalls:        r.Counter("mvcc_installs_total"),
		mvccGCReclaimed:     r.Counter("mvcc_gc_reclaimed_total"),
		mvccSnapshotBegins:  r.Counter("mvcc_snapshot_begin_total"),
		mvccVersionsLive:    r.Gauge("mvcc_versions_live"),
		mvccSnapshotsActive: r.Gauge("mvcc_snapshots_active"),
		mvccSnapshotAge:     r.Gauge("mvcc_snapshot_age"),
	}
}

// Observability returns the engine's registry: its own private one by
// default, or whatever SetObservability installed (possibly nil).
func (e *Engine) Observability() *obs.Registry { return e.o.reg }

// SetObservability rebinds the engine's instruments to r — db.Open uses
// it to share one registry across every subsystem. A nil r disables
// instrumentation entirely (nil-check fast path, no atomics). It must be
// called before the engine is used concurrently: rebinding swaps the
// instrument pointers without synchronization.
func (e *Engine) SetObservability(r *obs.Registry) { e.bindObs(r) }
