package core

import (
	"errors"
	"testing"

	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func TestMakeComponentRuleExclusive(t *testing.T) {
	// Rule 1: an exclusive composite attribute requires the child to have
	// no composite reference at all (exclusive or shared).
	e := documentEngine(t)
	para := mustNew(t, e, "Paragraph", nil)
	doc1 := mustNew(t, e, "Document", nil)
	doc2 := mustNew(t, e, "Document", nil)
	sec := mustNew(t, e, "Section", nil)

	// Fresh paragraph becomes an exclusive annotation: OK.
	if err := e.Attach(doc1.UID(), "Annotations", para.UID()); err != nil {
		t.Fatal(err)
	}
	// A second exclusive parent: violates Topology Rule 1.
	if err := e.Attach(doc2.UID(), "Annotations", para.UID()); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("second exclusive parent: %v", err)
	}
	// A shared parent on top of the exclusive one: violates Rule 3.
	if err := e.Attach(sec.UID(), "Content", para.UID()); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("shared over exclusive: %v", err)
	}
	checkClean(t, e)
}

func TestMakeComponentRuleShared(t *testing.T) {
	// Rule 2: a shared composite attribute only requires the child to have
	// no exclusive composite reference; many shared parents are fine.
	e := documentEngine(t)
	para := mustNew(t, e, "Paragraph", nil)
	var secs []uid.UID
	for i := 0; i < 5; i++ {
		sec := mustNew(t, e, "Section", nil)
		if err := e.Attach(sec.UID(), "Content", para.UID()); err != nil {
			t.Fatalf("shared parent %d: %v", i, err)
		}
		secs = append(secs, sec.UID())
	}
	po, _ := e.Get(para.UID())
	if len(po.DS()) != 5 {
		t.Fatalf("DS = %v", po.DS())
	}
	// An exclusive parent on top of shared ones: violates Rule 3.
	doc := mustNew(t, e, "Document", nil)
	if err := e.Attach(doc.UID(), "Annotations", para.UID()); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("exclusive over shared: %v", err)
	}
	_ = secs
	checkClean(t, e)
}

func TestWeakReferencesUnlimited(t *testing.T) {
	// Topology Rule 4: any number of weak references, even alongside
	// composite references.
	e := vehicleEngine(t)
	co := mustNew(t, e, "Company", nil)
	for i := 0; i < 3; i++ {
		v := mustNew(t, e, "Vehicle", nil)
		if err := e.Attach(v.UID(), "Manufacturer", co.UID()); err != nil {
			t.Fatalf("weak ref %d: %v", i, err)
		}
	}
	// Weak references leave no reverse refs.
	coObj, _ := e.Get(co.UID())
	if coObj.HasAnyReverse() {
		t.Fatal("weak reference created a reverse composite reference")
	}
	checkClean(t, e)
}

func TestAttachSingleValuedOccupied(t *testing.T) {
	e := vehicleEngine(t)
	v := mustNew(t, e, "Vehicle", nil)
	b1 := mustNew(t, e, "AutoBody", nil)
	b2 := mustNew(t, e, "AutoBody", nil)
	if err := e.Attach(v.UID(), "Body", b1.UID()); err != nil {
		t.Fatal(err)
	}
	if err := e.Attach(v.UID(), "Body", b2.UID()); !errors.Is(err, ErrAttrOccupied) {
		t.Fatalf("second body: %v", err)
	}
	// Re-attaching the same child is a no-op.
	if err := e.Attach(v.UID(), "Body", b1.UID()); err != nil {
		t.Fatal(err)
	}
	vo, _ := e.Get(v.UID())
	if r, _ := vo.Get("Body").AsRef(); r != b1.UID() {
		t.Fatalf("Body = %v", vo.Get("Body"))
	}
	checkClean(t, e)
}

func TestAttachDomainChecked(t *testing.T) {
	e := vehicleEngine(t)
	v := mustNew(t, e, "Vehicle", nil)
	tire := mustNew(t, e, "AutoTires", nil)
	if err := e.Attach(v.UID(), "Body", tire.UID()); !errors.Is(err, schema.ErrDomainMismatch) {
		t.Fatalf("tire as body: %v", err)
	}
	// Primitive-domain attribute cannot take a parent role.
	if err := e.Attach(v.UID(), "Id", tire.UID()); !errors.Is(err, schema.ErrDomainMismatch) {
		t.Fatalf("attach through primitive attr: %v", err)
	}
	if err := e.Attach(v.UID(), "Ghost", tire.UID()); !errors.Is(err, schema.ErrNoAttr) {
		t.Fatalf("ghost attr: %v", err)
	}
	if err := e.Attach(uid.UID{Class: 99, Serial: 9}, "Body", tire.UID()); !errors.Is(err, ErrNoObject) {
		t.Fatalf("ghost parent: %v", err)
	}
	if err := e.Attach(v.UID(), "Body", uid.UID{Class: 99, Serial: 9}); !errors.Is(err, ErrNoObject) {
		t.Fatalf("ghost child: %v", err)
	}
}

func TestSelfAttachmentRejected(t *testing.T) {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Part", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Subparts", "Part").WithExclusive(false),
	}})
	e := NewEngine(cat)
	p := mustNew(t, e, "Part", nil)
	if err := e.Attach(p.UID(), "Subparts", p.UID()); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("self attachment: %v", err)
	}
	// Via Set too.
	if err := e.Set(p.UID(), "Subparts", value.RefSet(p.UID())); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("self set: %v", err)
	}
}

func TestDetachAndReuse(t *testing.T) {
	e := vehicleEngine(t)
	v1 := mustNew(t, e, "Vehicle", nil)
	v2 := mustNew(t, e, "Vehicle", nil)
	body := mustNew(t, e, "AutoBody", nil)
	if err := e.Attach(v1.UID(), "Body", body.UID()); err != nil {
		t.Fatal(err)
	}
	// Detach frees the part for another vehicle.
	if err := e.Detach(v1.UID(), "Body", body.UID()); err != nil {
		t.Fatal(err)
	}
	bo, _ := e.Get(body.UID())
	if bo.HasAnyReverse() {
		t.Fatal("reverse ref survived detach")
	}
	v1o, _ := e.Get(v1.UID())
	if !v1o.Get("Body").IsNil() {
		t.Fatalf("forward ref survived detach: %v", v1o.Get("Body"))
	}
	if err := e.Attach(v2.UID(), "Body", body.UID()); err != nil {
		t.Fatalf("re-use after detach: %v", err)
	}
	// Detaching an absent reference errors.
	if err := e.Detach(v1.UID(), "Body", body.UID()); !errors.Is(err, ErrNotReferenced) {
		t.Fatalf("detach absent: %v", err)
	}
	checkClean(t, e)
}

func TestSetCompositeDiffSemantics(t *testing.T) {
	// Set on a composite set-valued attribute attaches the added refs and
	// detaches the removed ones.
	e := vehicleEngine(t)
	v := mustNew(t, e, "Vehicle", nil)
	a := mustNew(t, e, "AutoTires", nil)
	b := mustNew(t, e, "AutoTires", nil)
	c := mustNew(t, e, "AutoTires", nil)
	if err := e.Set(v.UID(), "Tires", value.RefSet(a.UID(), b.UID())); err != nil {
		t.Fatal(err)
	}
	// Replace b with c: b must be unlinked, c linked, a untouched.
	if err := e.Set(v.UID(), "Tires", value.RefSet(a.UID(), c.UID())); err != nil {
		t.Fatal(err)
	}
	ao, _ := e.Get(a.UID())
	bo, _ := e.Get(b.UID())
	co, _ := e.Get(c.UID())
	if !ao.HasReverse(v.UID()) || bo.HasAnyReverse() || !co.HasReverse(v.UID()) {
		t.Fatal("diff semantics wrong")
	}
	// Re-setting the identical value is a no-op and must not trip the
	// Make-Component Rule against the already-linked children.
	if err := e.Set(v.UID(), "Tires", value.RefSet(a.UID(), c.UID())); err != nil {
		t.Fatalf("idempotent set: %v", err)
	}
	checkClean(t, e)
}

func TestSetRejectsViolationAtomically(t *testing.T) {
	e := vehicleEngine(t)
	v1 := mustNew(t, e, "Vehicle", nil)
	v2 := mustNew(t, e, "Vehicle", nil)
	a := mustNew(t, e, "AutoTires", nil)
	b := mustNew(t, e, "AutoTires", nil)
	if err := e.Set(v1.UID(), "Tires", value.RefSet(a.UID())); err != nil {
		t.Fatal(err)
	}
	// v2 tries to take both b (free) and a (taken): the whole Set fails
	// and b must remain unlinked.
	if err := e.Set(v2.UID(), "Tires", value.RefSet(b.UID(), a.UID())); !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("violating set: %v", err)
	}
	bo, _ := e.Get(b.UID())
	if bo.HasAnyReverse() {
		t.Fatal("failed Set left a partial link on b")
	}
	v2o, _ := e.Get(v2.UID())
	if !v2o.Get("Tires").IsNil() {
		t.Fatalf("failed Set wrote the forward value: %v", v2o.Get("Tires"))
	}
	checkClean(t, e)
}

func TestNewWithMultipleParents(t *testing.T) {
	// §2.3: a new instance may be made part of several composite objects
	// at creation — but only through shared composite attributes (a
	// consequence of Topology Rule 3).
	e := documentEngine(t)
	doc1 := mustNew(t, e, "Document", nil)
	doc2 := mustNew(t, e, "Document", nil)
	sec := mustNew(t, e, "Section", nil,
		ParentSpec{Parent: doc1.UID(), Attr: "Sections"},
		ParentSpec{Parent: doc2.UID(), Attr: "Sections"},
	)
	so, _ := e.Get(sec.UID())
	if len(so.DS()) != 2 {
		t.Fatalf("DS = %v", so.DS())
	}
	d1, _ := e.Get(doc1.UID())
	if !d1.Get("Sections").ContainsRef(sec.UID()) {
		t.Fatal("forward ref missing in doc1")
	}
	checkClean(t, e)
}

func TestNewWithMultipleExclusiveParentsRejected(t *testing.T) {
	e := documentEngine(t)
	doc1 := mustNew(t, e, "Document", nil)
	doc2 := mustNew(t, e, "Document", nil)
	before := e.Len()
	_, err := e.New("Paragraph", nil,
		ParentSpec{Parent: doc1.UID(), Attr: "Annotations"},
		ParentSpec{Parent: doc2.UID(), Attr: "Annotations"},
	)
	if !errors.Is(err, ErrTopologyViolation) {
		t.Fatalf("multiple exclusive parents: %v", err)
	}
	if e.Len() != before {
		t.Fatal("failed New leaked an object")
	}
	checkClean(t, e)
}

func TestNewWithSingleExclusiveParentOK(t *testing.T) {
	// One parent may use any composite attribute, including exclusive —
	// this is classic top-down creation.
	e := documentEngine(t)
	doc := mustNew(t, e, "Document", nil)
	note := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: doc.UID(), Attr: "Annotations"})
	no, _ := e.Get(note.UID())
	if len(no.DX()) != 1 || no.DX()[0] != doc.UID() {
		t.Fatalf("DX = %v", no.DX())
	}
	checkClean(t, e)
}

func TestRootMayChange(t *testing.T) {
	// §2.1: under the extended model the root of a composite object may
	// change — the current root can become the target of a composite
	// reference from another object.
	e := documentEngine(t)
	sec := mustNew(t, e, "Section", nil)
	para := mustNew(t, e, "Paragraph", nil, ParentSpec{Parent: sec.UID(), Attr: "Content"})
	roots, _ := e.RootsOf(para.UID())
	if len(roots) != 1 || roots[0] != sec.UID() {
		t.Fatalf("roots = %v, want section", roots)
	}
	// Now a document adopts the section: the root changes to the document.
	doc := mustNew(t, e, "Document", nil)
	if err := e.Attach(doc.UID(), "Sections", sec.UID()); err != nil {
		t.Fatal(err)
	}
	roots, _ = e.RootsOf(para.UID())
	if len(roots) != 1 || roots[0] != doc.UID() {
		t.Fatalf("roots after adoption = %v, want document", roots)
	}
	checkClean(t, e)
}

func TestLegacyModeRestrictions(t *testing.T) {
	// The three §1 shortcomings of [KIM87b], demonstrated as errors of the
	// legacy baseline.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Chapter"})
	cat.DefineClass(schema.ClassDef{Name: "Book", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Chapters", "Chapter"), // dependent exclusive
	}})
	cat.DefineClass(schema.ClassDef{Name: "Anthology", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Chapters", "Chapter").WithExclusive(false),
	}})
	e := NewEngine(cat)
	e.SetLegacy(true)
	if !e.Legacy() {
		t.Fatal("legacy flag not set")
	}

	book := mustNew(t, e, "Book", nil)
	// Top-down creation is the only path: OK.
	ch := mustNew(t, e, "Chapter", nil, ParentSpec{Parent: book.UID(), Attr: "Chapters"})

	// Shortcoming 1: strict hierarchy — shared references rejected.
	anth := mustNew(t, e, "Anthology", nil)
	if _, err := e.New("Chapter", nil, ParentSpec{Parent: anth.UID(), Attr: "Chapters"}); !errors.Is(err, ErrLegacyRestriction) {
		t.Fatalf("shared composite in legacy: %v", err)
	}

	// Shortcoming 2: no bottom-up creation.
	free := mustNew(t, e, "Chapter", nil)
	book2 := mustNew(t, e, "Book", nil)
	if err := e.Attach(book2.UID(), "Chapters", free.UID()); !errors.Is(err, ErrLegacyRestriction) {
		t.Fatalf("bottom-up attach in legacy: %v", err)
	}
	if _, err := e.New("Book", map[string]value.Value{
		"Chapters": value.RefSet(free.UID()),
	}); !errors.Is(err, ErrLegacyRestriction) {
		t.Fatalf("bottom-up assembly in legacy: %v", err)
	}
	if err := e.Detach(book.UID(), "Chapters", ch.UID()); !errors.Is(err, ErrLegacyRestriction) {
		t.Fatalf("detach in legacy: %v", err)
	}

	// Shortcoming 3: existence dependency — deleting the book deletes the
	// chapter.
	deleted, err := e.Delete(book.UID())
	if err != nil {
		t.Fatal(err)
	}
	if len(deleted) != 2 {
		t.Fatalf("legacy delete = %v, want book+chapter", deleted)
	}
	if e.Exists(ch.UID()) {
		t.Fatal("dependent chapter survived")
	}

	// Back to the extended model: all three operations succeed.
	e.SetLegacy(false)
	if err := e.Attach(book2.UID(), "Chapters", free.UID()); err != nil {
		t.Fatalf("attach after leaving legacy: %v", err)
	}
	checkClean(t, e)
}
