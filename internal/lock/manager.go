package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/uid"
)

// TxID identifies a transaction to the lock manager.
type TxID uint64

// GranuleKind distinguishes lockable granule types: class objects and
// instance objects (§7 locks both).
type GranuleKind uint8

// Granule kinds.
const (
	GranuleClass GranuleKind = iota
	GranuleInstance
)

// Granule is a lockable unit.
type Granule struct {
	Kind  GranuleKind
	Class string  // for GranuleClass
	Obj   uid.UID // for GranuleInstance
}

// ClassGranule returns the granule for a class object.
func ClassGranule(name string) Granule { return Granule{Kind: GranuleClass, Class: name} }

// InstanceGranule returns the granule for an instance object.
func InstanceGranule(id uid.UID) Granule { return Granule{Kind: GranuleInstance, Obj: id} }

// String renders the granule.
func (g Granule) String() string {
	if g.Kind == GranuleClass {
		return "class:" + g.Class
	}
	return "obj:" + g.Obj.String()
}

// Sentinel errors.
var (
	ErrDeadlock = errors.New("lock: deadlock detected, request aborted")
	ErrTimeout  = errors.New("lock: timed out waiting for lock")
	ErrNotHeld  = errors.New("lock: not held")
)

// granuleState tracks holders and waiters of one granule.
type granuleState struct {
	holders map[TxID][]Mode
	// waiters counts transactions parked on this granule. Grants do not
	// queue behind waits, so a new holder can become a blocker of an
	// already-parked waiter; the grant path broadcasts when waiters > 0
	// so the waiter recomputes its blockers (and wait-for edges) against
	// the new holder. The state must not be dropped from the granule map
	// while waiters > 0 — parked waiters keep a pointer into it.
	waiters int
}

// Manager is a blocking lock manager with deadlock detection via a
// wait-for graph. A transaction is always compatible with itself; a
// request incompatible with another transaction's holdings blocks until
// granted or until the wait would close a cycle, in which case the request
// fails with ErrDeadlock.
type Manager struct {
	mu       sync.Mutex
	cond     *sync.Cond
	granules map[string]*granuleState
	held     map[TxID]map[string]bool // reverse index for ReleaseAll
	waitsFor map[TxID]map[TxID]bool   // wait-for graph edges
	doomed   map[TxID]bool            // deadlock victims pending abort
	profs    map[TxID]*obs.ProfCtx    // per-tx cost attribution (RegisterProf)
	aprof    atomic.Pointer[obs.ProfCtx]
	o        managerObs
}

// managerObs holds the manager's pre-resolved observability instruments
// (see internal/obs): grant/wait/upgrade/deadlock counters plus a wait
// latency histogram, bound from a registry so db.Open can share one
// across subsystems.
type managerObs struct {
	tr        *obs.Tracer
	slow      *obs.SlowLog
	flight    *obs.FlightRecorder
	acquires  *obs.Counter
	waits     *obs.Counter
	upgrades  *obs.Counter
	deadlocks *obs.Counter
	victims   *obs.Counter
	releases  *obs.Counter
	waitNs    *obs.Histogram
}

// NewManager returns an empty lock manager bound to a private obs
// registry (swap in a shared one with SetObservability).
func NewManager() *Manager {
	m := &Manager{
		granules: make(map[string]*granuleState),
		held:     make(map[TxID]map[string]bool),
		waitsFor: make(map[TxID]map[TxID]bool),
		doomed:   make(map[TxID]bool),
		profs:    make(map[TxID]*obs.ProfCtx),
	}
	m.cond = sync.NewCond(&m.mu)
	m.SetObservability(obs.NewRegistry())
	return m
}

// SetObservability rebinds the manager's instruments to r (nil disables
// them). Call before the manager is used concurrently.
func (m *Manager) SetObservability(r *obs.Registry) {
	m.o = managerObs{
		tr:        r.Tracer(),
		slow:      r.Slow(),
		flight:    r.Flight(),
		acquires:  r.Counter("lock_acquire_total"),
		waits:     r.Counter("lock_wait_total"),
		upgrades:  r.Counter("lock_upgrade_total"),
		deadlocks: r.Counter("lock_deadlock_total"),
		victims:   r.Counter("lock_deadlock_victim_total"),
		releases:  r.Counter("lock_release_all_total"),
		waitNs:    r.Histogram("lock_wait_ns", nil),
	}
}

// RegisterProf attributes tx's lock waits to p until UnregisterProf or
// ReleaseAll. Exact under concurrency: waits are keyed by the waiting
// transaction, never guessed from ambient state.
func (m *Manager) RegisterProf(tx TxID, p *obs.ProfCtx) {
	m.mu.Lock()
	if p == nil {
		delete(m.profs, tx)
	} else {
		m.profs[tx] = p
	}
	m.mu.Unlock()
}

// UnregisterProf removes tx's profile registration.
func (m *Manager) UnregisterProf(tx TxID) { m.RegisterProf(tx, nil) }

// AttachProf installs an ambient profile context: lock waits by
// transactions with no registration are attributed to it. Ambient
// attribution is exact only while a single profiled operation runs at a
// time (the shell's (profile ...) path); DetachProf by passing nil.
func (m *Manager) AttachProf(p *obs.ProfCtx) { m.aprof.Store(p) }

// profFor returns the context tx's costs attribute to: its registered
// context, else the ambient one, else nil. Caller holds m.mu.
func (m *Manager) profFor(tx TxID) *obs.ProfCtx {
	if p := m.profs[tx]; p != nil {
		return p
	}
	return m.aprof.Load()
}

func (m *Manager) state(key string) *granuleState {
	st := m.granules[key]
	if st == nil {
		st = &granuleState{holders: make(map[TxID][]Mode)}
		m.granules[key] = st
	}
	return st
}

// blockers returns the transactions whose holdings conflict with tx
// requesting mode on st. Caller holds m.mu.
func (st *granuleState) blockers(tx TxID, mode Mode) []TxID {
	var out []TxID
	for other, modes := range st.holders {
		if other == tx {
			continue
		}
		for _, h := range modes {
			if !Compatible(h, mode) {
				out = append(out, other)
				break
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// findCycle reports the transactions on a wait-for cycle that adding
// edges tx->blockers would close: the path blocker -> ... -> tx plus tx
// itself. Paths through already-doomed transactions are ignored — their
// abort is in flight and will break the cycle without a second victim.
// An empty result means no (new) deadlock. Caller holds m.mu.
func (m *Manager) findCycle(tx TxID, blockers []TxID) []TxID {
	seen := map[TxID]bool{}
	var path []TxID
	var dfs func(cur TxID) bool
	dfs = func(cur TxID) bool {
		if m.doomed[cur] {
			return false
		}
		if cur == tx {
			return true
		}
		if seen[cur] {
			return false
		}
		seen[cur] = true
		path = append(path, cur)
		for next := range m.waitsFor[cur] {
			if dfs(next) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	for _, b := range blockers {
		if dfs(b) {
			return append(path, tx)
		}
	}
	return nil
}

// chooseVictim picks the youngest transaction (highest TxID, i.e. most
// recently started) from the cycle — it has done the least work and its
// abort is the cheapest way to break the deadlock.
func chooseVictim(cycle []TxID) TxID {
	victim := cycle[0]
	for _, t := range cycle[1:] {
		if t > victim {
			victim = t
		}
	}
	return victim
}

// abortVictim fails tx's pending request with ErrDeadlock. Caller holds
// m.mu. The victim's locks stay held until its transaction aborts and
// calls ReleaseAll — 2PL's usual abort path — which also clears its doom.
func (m *Manager) abortVictim(tx TxID, key string, mode Mode, g Granule, waitSpan uint64) error {
	m.o.victims.Inc()
	if tr := m.o.tr; tr.Active() {
		if waitSpan != 0 {
			tr.End(waitSpan, "lock.wait", obs.F("outcome", "deadlock"))
		} else {
			tr.Point(0, "lock.deadlock", obs.F("tx", tx), obs.F("granule", key), obs.F("mode", mode))
		}
	}
	// Black-box trigger: a deadlock-victim abort dumps the flight ring so
	// the operations leading up to the cycle are on record.
	if f := m.o.flight; f != nil {
		f.Record("lock.deadlock", fmt.Sprintf("tx=%d %s %s", tx, mode, key), 0, "deadlock", "")
		f.Dump("deadlock-victim abort")
	}
	return fmt.Errorf("tx %d requesting %s on %s: %w", tx, mode, g, ErrDeadlock)
}

// Lock acquires mode on g for tx, blocking while incompatible locks are
// held by other transactions. When waiting would close a wait-for cycle
// the manager picks the youngest cycle member as the victim: if that is
// the requester it fails immediately with ErrDeadlock; otherwise the
// victim is doomed — its own pending Lock call wakes and returns
// ErrDeadlock — and the requester keeps waiting for the victim's abort
// to release its locks. Re-requesting a held mode is a no-op; requesting
// an additional mode records both (lock conversion by accumulation).
func (m *Manager) Lock(tx TxID, g Granule, mode Mode) error {
	key := g.String()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(key)
	var waitStart time.Time
	var waitSpan uint64
	waited := false
	leaveWait := func() {
		if waited {
			st.waiters--
		}
	}
	for {
		if m.doomed[tx] {
			leaveWait()
			return m.abortVictim(tx, key, mode, g, waitSpan)
		}
		blockers := st.blockers(tx, mode)
		if len(blockers) == 0 {
			break
		}
		if cycle := m.findCycle(tx, blockers); len(cycle) > 0 {
			m.o.deadlocks.Inc()
			victim := chooseVictim(cycle)
			if tr := m.o.tr; tr.Active() {
				tr.Point(waitSpan, "lock.deadlock", obs.F("tx", tx), obs.F("granule", key), obs.F("mode", mode), obs.F("victim", victim))
			}
			if victim == tx {
				leaveWait()
				return m.abortVictim(tx, key, mode, g, waitSpan)
			}
			// Doom the victim and keep waiting: it is parked in its own
			// Lock call (every cycle member is a waiter), so the
			// broadcast wakes it, it observes its doom, and its abort
			// releases the locks this request is queued behind.
			m.doomed[victim] = true
			m.cond.Broadcast()
		}
		if !waited {
			// First block on this request: count the wait once and start
			// the clock. Blocking is already slow, so timing it is free
			// relative to the sleep.
			waited = true
			st.waiters++
			m.o.waits.Inc()
			waitStart = time.Now()
			if tr := m.o.tr; tr.Active() {
				waitSpan = tr.Begin(0, "lock.wait", obs.F("tx", tx), obs.F("granule", key), obs.F("mode", mode))
			}
		}
		edges := m.waitsFor[tx]
		if edges == nil {
			edges = make(map[TxID]bool)
			m.waitsFor[tx] = edges
		}
		for _, b := range blockers {
			edges[b] = true
		}
		m.cond.Wait()
		delete(m.waitsFor, tx)
	}
	leaveWait()
	if waited {
		d := time.Since(waitStart)
		m.o.waitNs.Observe(int64(d))
		m.o.slow.Observe("lock.wait", d, key)
		m.profFor(tx).LockWait(mode.String(), d)
		if tr := m.o.tr; tr.Active() {
			tr.End(waitSpan, "lock.wait", obs.F("outcome", "granted"))
		}
	}
	for _, h := range st.holders[tx] {
		if h == mode {
			return nil
		}
	}
	if len(st.holders[tx]) > 0 {
		// Accumulating a second mode on a held granule is a conversion
		// (upgrade) in this manager's model.
		m.o.upgrades.Inc()
		if tr := m.o.tr; tr.Active() {
			tr.Point(0, "lock.upgrade", obs.F("tx", tx), obs.F("granule", key), obs.F("mode", mode))
		}
	}
	m.o.acquires.Inc()
	if tr := m.o.tr; tr.Active() {
		tr.Point(0, "lock.acquire", obs.F("tx", tx), obs.F("granule", key), obs.F("mode", mode))
	}
	st.holders[tx] = append(st.holders[tx], mode)
	hs := m.held[tx]
	if hs == nil {
		hs = make(map[string]bool)
		m.held[tx] = hs
	}
	hs[key] = true
	if st.waiters > 0 {
		// This grant may conflict with a parked waiter's pending request
		// (grants do not queue behind waits). Wake the waiters so they
		// recompute their blockers and wait-for edges against the new
		// holder — otherwise their edges go stale and a deadlock cycle
		// running through this grant is invisible to findCycle.
		m.cond.Broadcast()
	}
	return nil
}

// TryLock acquires mode on g without blocking; ok reports success.
func (m *Manager) TryLock(tx TxID, g Granule, mode Mode) bool {
	key := g.String()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.state(key)
	if len(st.blockers(tx, mode)) > 0 {
		return false
	}
	for _, h := range st.holders[tx] {
		if h == mode {
			return true
		}
	}
	m.o.acquires.Inc()
	st.holders[tx] = append(st.holders[tx], mode)
	hs := m.held[tx]
	if hs == nil {
		hs = make(map[string]bool)
		m.held[tx] = hs
	}
	hs[key] = true
	if st.waiters > 0 {
		m.cond.Broadcast() // same stale-edge hazard as the Lock grant path
	}
	return true
}

// Holds reports whether tx holds mode on g.
func (m *Manager) Holds(tx TxID, g Granule, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.granules[g.String()]
	if st == nil {
		return false
	}
	for _, h := range st.holders[tx] {
		if h == mode {
			return true
		}
	}
	return false
}

// HeldModes returns the modes tx holds on g.
func (m *Manager) HeldModes(tx TxID, g Granule) []Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.granules[g.String()]
	if st == nil {
		return nil
	}
	return append([]Mode(nil), st.holders[tx]...)
}

// Unlock releases every mode tx holds on g.
func (m *Manager) Unlock(tx TxID, g Granule) error {
	key := g.String()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.granules[key]
	if st == nil || len(st.holders[tx]) == 0 {
		return fmt.Errorf("tx %d on %s: %w", tx, g, ErrNotHeld)
	}
	delete(st.holders, tx)
	if len(st.holders) == 0 && st.waiters == 0 {
		delete(m.granules, key)
	}
	if hs := m.held[tx]; hs != nil {
		delete(hs, key)
	}
	m.cond.Broadcast()
	return nil
}

// ReleaseAll releases every lock held by tx (commit/abort).
func (m *Manager) ReleaseAll(tx TxID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.o.releases.Inc()
	if tr := m.o.tr; tr.Active() {
		tr.Point(0, "lock.release-all", obs.F("tx", tx), obs.F("granules", len(m.held[tx])))
	}
	for key := range m.held[tx] {
		if st := m.granules[key]; st != nil {
			delete(st.holders, tx)
			if len(st.holders) == 0 && st.waiters == 0 {
				delete(m.granules, key)
			}
		}
	}
	delete(m.held, tx)
	delete(m.waitsFor, tx)
	delete(m.doomed, tx)
	delete(m.profs, tx)
	m.cond.Broadcast()
}

// LockCount returns the number of granules on which tx holds locks.
func (m *Manager) LockCount(tx TxID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[tx])
}
