package lock

import (
	"strings"
	"testing"
)

// figure7 is the reconstructed compatibility matrix of the paper's Figure
// 7 (granularity + exclusive composite object locking). Row = held mode,
// column = requested mode, order IS IX S SIX X ISO IXO SIXO. Y =
// compatible.
var figure7 = []string{
	//        IS IX S  SIX X  ISO IXO SIXO
	/* IS   */ "Y  Y  Y  Y  .  Y  .  .",
	/* IX   */ "Y  Y  .  .  .  .  .  .",
	/* S    */ "Y  .  Y  .  .  Y  .  .",
	/* SIX  */ "Y  .  .  .  .  .  .  .",
	/* X    */ ".  .  .  .  .  .  .  .",
	/* ISO  */ "Y  .  Y  .  .  Y  Y  Y",
	/* IXO  */ ".  .  .  .  .  Y  Y  .",
	/* SIXO */ ".  .  .  .  .  Y  .  .",
}

// figure8 extends Figure 7 with the shared-reference modes ISOS, IXOS,
// SIXOS, reconstructed from the prose constraints and the §7 worked
// examples (see the package comment for the derivation).
var figure8 = []string{
	//         IS IX S  SIX X  ISO IXO SIXO ISOS IXOS SIXOS
	/* IS    */ "Y  Y  Y  Y  .  Y  .  .  Y  .  .",
	/* IX    */ "Y  Y  .  .  .  .  .  .  .  .  .",
	/* S     */ "Y  .  Y  .  .  Y  .  .  Y  .  .",
	/* SIX   */ "Y  .  .  .  .  .  .  .  .  .  .",
	/* X     */ ".  .  .  .  .  .  .  .  .  .  .",
	/* ISO   */ "Y  .  Y  .  .  Y  Y  Y  Y  Y  Y",
	/* IXO   */ ".  .  .  .  .  Y  Y  .  Y  .  .",
	/* SIXO  */ ".  .  .  .  .  Y  .  .  Y  .  .",
	/* ISOS  */ "Y  .  Y  .  .  Y  Y  Y  Y  .  .",
	/* IXOS  */ ".  .  .  .  .  Y  .  .  .  .  .",
	/* SIXOS */ ".  .  .  .  .  Y  .  .  .  .  .",
}

func parseRow(s string) []bool {
	var out []bool
	for _, f := range strings.Fields(s) {
		out = append(out, f == "Y")
	}
	return out
}

func TestFigure7Matrix(t *testing.T) {
	modes := ExclusiveHierarchyModes
	got := CompatMatrix(modes)
	for i, row := range figure7 {
		want := parseRow(row)
		if len(want) != len(modes) {
			t.Fatalf("fixture row %d has %d cells", i, len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Errorf("Figure 7 [%s held, %s requested] = %v, want %v",
					modes[i], modes[j], got[i][j], want[j])
			}
		}
	}
}

func TestFigure8Matrix(t *testing.T) {
	modes := Modes
	got := CompatMatrix(modes)
	for i, row := range figure8 {
		want := parseRow(row)
		if len(want) != len(modes) {
			t.Fatalf("fixture row %d has %d cells", i, len(want))
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Errorf("Figure 8 [%s held, %s requested] = %v, want %v",
					modes[i], modes[j], got[i][j], want[j])
			}
		}
	}
}

func TestCompatibilitySymmetric(t *testing.T) {
	for _, a := range Modes {
		for _, b := range Modes {
			if Compatible(a, b) != Compatible(b, a) {
				t.Errorf("asymmetric: %s vs %s", a, b)
			}
		}
	}
}

func TestPaperProseConstraints(t *testing.T) {
	// "while IS and IX modes do not conflict,
	if !Compatible(IS, IX) {
		t.Error("IS-IX must be compatible")
	}
	// the ISO mode conflicts with IX mode,
	if Compatible(ISO, IX) {
		t.Error("ISO-IX must conflict")
	}
	// and IXO and SIXO modes conflict with both IS and IX modes."
	for _, m := range []Mode{IXO, SIXO} {
		if Compatible(m, IS) || Compatible(m, IX) {
			t.Errorf("%s must conflict with IS and IX", m)
		}
	}
	// ISO does not conflict with IS (implied by the contrast above).
	if !Compatible(ISO, IS) {
		t.Error("ISO-IS must be compatible")
	}
	// "multiple users [may] read and update different composite objects
	// that share the same composite class hierarchy": ISO/IXO mutually
	// compatible.
	if !Compatible(ISO, ISO) || !Compatible(ISO, IXO) || !Compatible(IXO, IXO) {
		t.Error("ISO/IXO must be mutually compatible (roots arbitrate)")
	}
	// "several readers and one writer on a component class of shared
	// references": readers share...
	if !Compatible(ISOS, ISOS) {
		t.Error("ISOS-ISOS must be compatible")
	}
	// ...writers are alone.
	if Compatible(IXOS, IXOS) || Compatible(IXOS, ISOS) {
		t.Error("IXOS must exclude other shared-mode users")
	}
}

func TestSection7Examples(t *testing.T) {
	// The lock sets of §7's examples on Figure 9.
	type lockSet map[string][]Mode
	ex1 := lockSet{"I": {IX}, "i": {X}, "C": {IXO}}
	ex2 := lockSet{"K": {IS}, "k": {S}, "C": {ISOS}, "W": {ISO}}
	ex3 := lockSet{"J": {IX}, "j": {X}, "C": {IXOS}, "W": {IXO}}

	compatible := func(a, b lockSet) bool {
		for g, am := range a {
			bm, ok := b[g]
			if !ok {
				continue
			}
			for _, x := range am {
				for _, y := range bm {
					if !Compatible(x, y) {
						return false
					}
				}
			}
		}
		return true
	}
	// "examples 1 and 2 are compatible, while example 3 is incompatible
	// with both 1 and 2."
	if !compatible(ex1, ex2) {
		t.Error("examples 1 and 2 must be compatible")
	}
	if compatible(ex1, ex3) {
		t.Error("examples 1 and 3 must conflict")
	}
	if compatible(ex2, ex3) {
		t.Error("examples 2 and 3 must conflict")
	}
}

func TestGray78Submatrix(t *testing.T) {
	// The classical granularity matrix of [GRAY78] must be embedded
	// exactly.
	want := map[[2]Mode]bool{
		{IS, IS}: true, {IS, IX}: true, {IS, S}: true, {IS, SIX}: true, {IS, X}: false,
		{IX, IX}: true, {IX, S}: false, {IX, SIX}: false, {IX, X}: false,
		{S, S}: true, {S, SIX}: false, {S, X}: false,
		{SIX, SIX}: false, {SIX, X}: false,
		{X, X}: false,
	}
	for pair, w := range want {
		if Compatible(pair[0], pair[1]) != w {
			t.Errorf("GRAY78 %s-%s = %v, want %v", pair[0], pair[1], Compatible(pair[0], pair[1]), w)
		}
	}
}

func TestReadOnlyModesNeverConflict(t *testing.T) {
	// Property: modes with no write claims are compatible with each other.
	readers := []Mode{IS, S, ISO, ISOS}
	for _, a := range readers {
		for _, b := range readers {
			if !Compatible(a, b) {
				t.Errorf("readers conflict: %s vs %s", a, b)
			}
		}
	}
}

func TestXConflictsWithEverything(t *testing.T) {
	for _, m := range Modes {
		if Compatible(X, m) {
			t.Errorf("X compatible with %s", m)
		}
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		IS: "IS", IX: "IX", S: "S", SIX: "SIX", X: "X",
		ISO: "ISO", IXO: "IXO", SIXO: "SIXO",
		ISOS: "ISOS", IXOS: "IXOS", SIXOS: "SIXOS",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("String(%d) = %q, want %q", m, m.String(), want)
		}
	}
	if Mode(200).String() != "mode(200)" {
		t.Errorf("unknown mode string = %q", Mode(200).String())
	}
}

func TestFormatMatrix(t *testing.T) {
	out := FormatMatrix(ExclusiveHierarchyModes)
	if !strings.Contains(out, "SIXO") {
		t.Fatalf("matrix rendering missing modes:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != len(ExclusiveHierarchyModes)+1 {
		t.Fatalf("matrix has %d lines", len(lines))
	}
}
