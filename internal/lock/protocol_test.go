package lock

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// figure9Engine builds the schema of the paper's Figure 9: composite class
// hierarchies rooted at classes I, J, K over component classes C and W.
// Class I reaches C through exclusive references; J and K reach C through
// shared references; J and K also reach W (through exclusive references).
func figure9Engine(t *testing.T) *core.Engine {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "W"}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "C", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Ws", "W").WithDependent(false),
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cat.DefineClass(schema.ClassDef{Name: "I", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Cs", "C").WithDependent(false), // exclusive
	}}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"J", "K"} {
		if _, err := cat.DefineClass(schema.ClassDef{Name: n, Attributes: []schema.AttrSpec{
			schema.NewCompositeSetAttr("Cs", "C").WithExclusive(false).WithDependent(false), // shared
		}}); err != nil {
			t.Fatal(err)
		}
	}
	return core.NewEngine(cat)
}

func TestComponentClassInfo(t *testing.T) {
	e := figure9Engine(t)
	p := NewProtocol(NewManager(), e)
	info, err := p.ComponentClassInfo("I")
	if err != nil {
		t.Fatal(err)
	}
	if info["C"] != ViaExclusive {
		t.Fatalf("I reaches C via %v, want exclusive", info["C"])
	}
	if info["W"] != ViaExclusive {
		t.Fatalf("I reaches W via %v (through C), want exclusive", info["W"])
	}
	info, err = p.ComponentClassInfo("J")
	if err != nil {
		t.Fatal(err)
	}
	if info["C"] != ViaShared {
		t.Fatalf("J reaches C via %v, want shared", info["C"])
	}
	if info["W"] != ViaExclusive {
		t.Fatalf("J reaches W via %v, want exclusive", info["W"])
	}
	if _, err := p.ComponentClassInfo("Ghost"); err == nil {
		t.Fatal("ghost class accepted")
	}
}

func TestComponentClassInfoBothNatures(t *testing.T) {
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Part"})
	cat.DefineClass(schema.ClassDef{Name: "Root", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Excl", "Part"),
		schema.NewCompositeSetAttr("Shared", "Part").WithExclusive(false),
	}})
	p := NewProtocol(NewManager(), core.NewEngine(cat))
	info, err := p.ComponentClassInfo("Root")
	if err != nil {
		t.Fatal(err)
	}
	if info["Part"] != ViaExclusive|ViaShared {
		t.Fatalf("Part nature = %v, want both", info["Part"])
	}
}

// buildFigure9 instantiates: i -> c (exclusive); j -> c', k -> c'
// (shared); c -> w, c' -> w'.
type fig9 struct {
	e            *core.Engine
	p            *Protocol
	i, j, k      uid.UID
	c, cp, w, wp uid.UID
}

func newFig9(t *testing.T) *fig9 {
	t.Helper()
	e := figure9Engine(t)
	f := &fig9{e: e, p: NewProtocol(NewManager(), e)}
	mk := func(cl string, attrs map[string]value.Value) uid.UID {
		o, err := e.New(cl, attrs)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	f.w = mk("W", nil)
	f.wp = mk("W", nil)
	f.c = mk("C", map[string]value.Value{"Ws": value.RefSet(f.w)})
	f.cp = mk("C", map[string]value.Value{"Ws": value.RefSet(f.wp)})
	f.i = mk("I", map[string]value.Value{"Cs": value.RefSet(f.c)})
	f.j = mk("J", map[string]value.Value{"Cs": value.RefSet(f.cp)})
	f.k = mk("K", map[string]value.Value{"Cs": value.RefSet(f.cp)})
	return f
}

func TestFigure9Protocol(t *testing.T) {
	// §7 examples 1–3: 1 ∥ 2 compatible, 3 conflicts with both.
	f := newFig9(t)

	// Example 1: update the composite object rooted at i.
	if err := f.p.LockCompositeWrite(1, f.i); err != nil {
		t.Fatal(err)
	}
	if !f.p.M.Holds(1, ClassGranule("I"), IX) ||
		!f.p.M.Holds(1, InstanceGranule(f.i), X) ||
		!f.p.M.Holds(1, ClassGranule("C"), IXO) {
		t.Fatal("example 1 lock set wrong")
	}

	// Example 2: access the composite object rooted at k — compatible.
	done := make(chan error, 1)
	go func() { done <- f.p.LockCompositeRead(2, f.k) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("example 2 blocked against example 1; they must be compatible")
	}
	if !f.p.M.Holds(2, ClassGranule("C"), ISOS) || !f.p.M.Holds(2, ClassGranule("W"), ISO) {
		t.Fatal("example 2 lock set wrong")
	}

	// Example 3: update the composite object rooted at j — must block
	// (IXOS on C conflicts with 1's IXO and 2's ISOS).
	if ok := f.p.M.TryLock(3, ClassGranule("C"), IXOS); ok {
		t.Fatal("example 3 granted alongside examples 1 and 2")
	}

	// After 1 and 2 finish, example 3 proceeds.
	f.p.M.ReleaseAll(1)
	f.p.M.ReleaseAll(2)
	if err := f.p.LockCompositeWrite(3, f.j); err != nil {
		t.Fatal(err)
	}
	if !f.p.M.Holds(3, ClassGranule("C"), IXOS) || !f.p.M.Holds(3, ClassGranule("W"), IXO) {
		t.Fatal("example 3 lock set wrong")
	}
}

func TestLockInstanceProtocol(t *testing.T) {
	f := newFig9(t)
	if err := f.p.LockInstance(1, f.c, false); err != nil {
		t.Fatal(err)
	}
	if !f.p.M.Holds(1, ClassGranule("C"), IS) || !f.p.M.Holds(1, InstanceGranule(f.c), S) {
		t.Fatal("instance read locks wrong")
	}
	if err := f.p.LockInstance(2, f.cp, true); err != nil {
		t.Fatal(err)
	}
	// Direct instance access on c conflicts with a composite writer on I's
	// hierarchy: ISO-protocol writer would be blocked by tx1's... rather,
	// a composite writer needs IXO on C, which conflicts with tx1's IS.
	if ok := f.p.M.TryLock(3, ClassGranule("C"), IXO); ok {
		t.Fatal("IXO granted despite a direct reader holding IS on C")
	}
}

func TestRootLockAnomaly(t *testing.T) {
	// §7: the [GARZ88] root-locking algorithm breaks under shared
	// references. Figure 5 topology: j and k share component o'; o is a
	// root whose composite object also contains q, which k also contains
	// (shared).
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Leaf"})
	cat.DefineClass(schema.ClassDef{Name: "Root", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Leaf").WithExclusive(false).WithDependent(false),
	}})
	e := core.NewEngine(cat)
	p := NewProtocol(NewManager(), e)
	mk := func(cl string) uid.UID {
		o, err := e.New(cl, nil)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	op := mk("Leaf") // o' — shared by j and k
	q := mk("Leaf")  // q — shared by k and o
	j := mk("Root")
	k := mk("Root")
	o := mk("Root")
	for _, att := range []struct {
		p, c uid.UID
	}{{j, op}, {k, op}, {k, q}, {o, q}} {
		if err := e.Attach(att.p, "Kids", att.c); err != nil {
			t.Fatal(err)
		}
	}

	// T1: S lock on o' via roots — locks j and k in S.
	if err := p.LockViaRoots(1, op, false); err != nil {
		t.Fatal(err)
	}
	if !p.M.Holds(1, InstanceGranule(j), S) || !p.M.Holds(1, InstanceGranule(k), S) {
		t.Fatal("T1 root locks wrong")
	}
	// T2: X lock on o (a root) — granted, no explicit conflict.
	if err := p.LockViaRoots(2, o, true); err != nil {
		t.Fatalf("T2 was blocked; the anomaly is that it is NOT: %v", err)
	}
	// But the implicit locks conflict on q: T1 implicitly S-locked q (via
	// k), T2 implicitly X-locked q (via o).
	conflicts, err := p.ImplicitConflicts([]TxID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, pair := range conflicts {
		if pair[0].Obj == q && pair[1].Obj == q {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected an undetected implicit conflict on q; got %v", conflicts)
	}
}

func TestRootLockSoundWithoutSharing(t *testing.T) {
	// With exclusive references only, the root-lock algorithm is sound:
	// conflicting accesses meet at the unique root.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "Leaf"})
	cat.DefineClass(schema.ClassDef{Name: "Root", Attributes: []schema.AttrSpec{
		schema.NewCompositeSetAttr("Kids", "Leaf").WithDependent(false), // exclusive
	}})
	e := core.NewEngine(cat)
	p := NewProtocol(NewManager(), e)
	r, _ := e.New("Root", nil)
	l, _ := e.New("Leaf", nil, core.ParentSpec{Parent: r.UID(), Attr: "Kids"})

	if err := p.LockViaRoots(1, l.UID(), false); err != nil {
		t.Fatal(err)
	}
	// A writer of the same component must block at the root.
	if ok := p.M.TryLock(2, InstanceGranule(r.UID()), X); ok {
		t.Fatal("X on root granted while reader holds S")
	}
	conflicts, err := p.ImplicitConflicts([]TxID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("unexpected implicit conflicts: %v", conflicts)
	}
}
