package lock

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// Properties of the claims-derived compatibility relation.

func randMode(r *rand.Rand) Mode { return Modes[r.Intn(len(Modes))] }

func TestPropertyCompatSymmetry(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := Modes[int(a)%len(Modes)], Modes[int(b)%len(Modes)]
		return Compatible(x, y) == Compatible(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyIntentionWeakening(t *testing.T) {
	// IS is the weakest mode: anything compatible with a mode m is also
	// compatible with IS whenever m grants at least reads everywhere IS
	// claims. Concretely: Compatible(m, X) == false for all m except
	// none, and Compatible(m, IS) >= Compatible(m, S) (S claims strictly
	// more than IS).
	for _, m := range Modes {
		if Compatible(m, S) && !Compatible(m, IS) {
			t.Errorf("%s compatible with S but not IS", m)
		}
		if Compatible(m, X) && !Compatible(m, S) {
			t.Errorf("%s compatible with X but not S", m)
		}
		if Compatible(m, IX) && !Compatible(m, IS) {
			t.Errorf("%s compatible with IX but not IS", m)
		}
		if Compatible(m, IXO) && !Compatible(m, ISO) {
			t.Errorf("%s compatible with IXO but not ISO", m)
		}
		if Compatible(m, IXOS) && !Compatible(m, ISOS) {
			t.Errorf("%s compatible with IXOS but not ISOS", m)
		}
		if Compatible(m, SIX) && !Compatible(m, IX) {
			t.Errorf("%s compatible with SIX but not IX", m)
		}
		if Compatible(m, SIXO) && !Compatible(m, IXO) {
			t.Errorf("%s compatible with SIXO but not IXO", m)
		}
		if Compatible(m, SIXOS) && !Compatible(m, IXOS) {
			t.Errorf("%s compatible with SIXOS but not IXOS", m)
		}
	}
}

// TestPropertyManagerNeverGrantsConflicts hammers the manager with random
// lock/unlock traffic and verifies, after every grant, that no two
// transactions hold incompatible modes on the same granule.
func TestPropertyManagerNeverGrantsConflicts(t *testing.T) {
	m := NewManager()
	granules := []Granule{g("A"), g("B"), g("C"), g("D")}
	var mu sync.Mutex
	held := map[string]map[TxID][]Mode{} // shadow of granted locks

	checkInvariant := func() {
		mu.Lock()
		defer mu.Unlock()
		for key, byTx := range held {
			var all []struct {
				tx TxID
				m  Mode
			}
			for tx, modes := range byTx {
				for _, mo := range modes {
					all = append(all, struct {
						tx TxID
						m  Mode
					}{tx, mo})
				}
			}
			for i := 0; i < len(all); i++ {
				for j := i + 1; j < len(all); j++ {
					if all[i].tx != all[j].tx && !Compatible(all[i].m, all[j].m) {
						t.Errorf("granule %s: tx %d holds %s alongside tx %d holding %s",
							key, all[i].tx, all[i].m, all[j].tx, all[j].m)
					}
				}
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			tx := TxID(w + 1)
			for i := 0; i < 200; i++ {
				gr := granules[r.Intn(len(granules))]
				mode := randMode(r)
				if !m.TryLock(tx, gr, mode) {
					continue
				}
				mu.Lock()
				if held[gr.String()] == nil {
					held[gr.String()] = map[TxID][]Mode{}
				}
				held[gr.String()][tx] = append(held[gr.String()][tx], mode)
				mu.Unlock()
				checkInvariant()
				if r.Intn(3) == 0 {
					m.ReleaseAll(tx)
					mu.Lock()
					for _, byTx := range held {
						delete(byTx, tx)
					}
					mu.Unlock()
				}
			}
			m.ReleaseAll(tx)
			mu.Lock()
			for _, byTx := range held {
				delete(byTx, tx)
			}
			mu.Unlock()
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("property test hung")
	}
}

// TestPropertyNoLostWakeups: waiters always eventually get the lock after
// conflicting holders release.
func TestPropertyNoLostWakeups(t *testing.T) {
	m := NewManager()
	const waiters = 12
	if err := m.Lock(999, g("G"), X); err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func(i int) {
			tx := TxID(i + 1)
			err := m.Lock(tx, g("G"), S)
			if err == nil {
				m.ReleaseAll(tx)
			}
			errs <- err
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(999)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errs:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d never woke", i)
		}
	}
}
