package lock

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/uid"
)

// RefNature says how a component class is reached from a composite class
// hierarchy root: through exclusive references, shared references, or both
// (different attributes along different paths).
type RefNature uint8

// Reference natures.
const (
	ViaExclusive RefNature = 1 << iota
	ViaShared
)

// Protocol implements the composite-object locking protocols of §7 on top
// of the lock manager: the hierarchical protocol (lock root class, root
// instance, then every component class in an O-mode matching the
// reference nature) and the [GARZ88] root-locking algorithm.
type Protocol struct {
	M *Manager
	E *core.Engine

	infoMu sync.RWMutex
	info   map[string]*classInfoEntry
}

// classInfoEntry caches one ComponentClassInfo result against the catalog
// version it was computed from.
type classInfoEntry struct {
	version uint64
	natures map[string]RefNature
}

// NewProtocol returns a protocol bound to a manager and engine.
func NewProtocol(m *Manager, e *core.Engine) *Protocol {
	return &Protocol{M: m, E: e, info: make(map[string]*classInfoEntry)}
}

// ComponentClassInfo walks the composite class hierarchy of rootClass and
// classifies every component class by the nature of the references
// reaching it. The lock protocol needs exactly this information ("the
// component classes of a composite class hierarchy, and the nature of the
// references to the component classes", §7). Results are cached against
// the catalog version so the admission path does not re-walk the schema
// on every mutation; callers must treat the returned map as read-only.
func (p *Protocol) ComponentClassInfo(rootClass string) (map[string]RefNature, error) {
	cat := p.E.Catalog()
	ver := cat.Version()
	p.infoMu.RLock()
	ent := p.info[rootClass]
	p.infoMu.RUnlock()
	if ent != nil && ent.version == ver {
		return ent.natures, nil
	}
	natures, err := p.componentClassInfoSlow(rootClass)
	if err != nil {
		return nil, err
	}
	p.infoMu.Lock()
	p.info[rootClass] = &classInfoEntry{version: ver, natures: natures}
	p.infoMu.Unlock()
	return natures, nil
}

func (p *Protocol) componentClassInfoSlow(rootClass string) (map[string]RefNature, error) {
	cat := p.E.Catalog()
	if _, err := cat.Class(rootClass); err != nil {
		return nil, err
	}
	out := map[string]RefNature{}
	queue := []string{rootClass}
	visited := map[string]bool{rootClass: true}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		attrs, err := cat.Attributes(cur)
		if err != nil {
			return nil, err
		}
		for _, spec := range attrs {
			if !spec.Composite {
				continue
			}
			nature := ViaShared
			if spec.Exclusive {
				nature = ViaExclusive
			}
			for _, comp := range cat.AllSubclasses(spec.Domain.Class) {
				before := out[comp]
				out[comp] = before | nature
				if !visited[comp] {
					visited[comp] = true
					queue = append(queue, comp)
				} else if out[comp] != before {
					// Nature changed; re-propagation is unnecessary since
					// nature is per-class, not per-path.
					_ = comp
				}
			}
		}
	}
	return out, nil
}

// lockComposite runs the §7 protocol:
//
//  1. lock the root's class object in IS (read) or IX (write);
//  2. lock the composite object's root instance in S (read) or X (write);
//  3. lock each component class in ISO/IXO when reached via exclusive
//     references and ISOS/IXOS when reached via shared references (both
//     modes when reached both ways).
func (p *Protocol) lockComposite(tx TxID, root uid.UID, write bool) error {
	cl, err := p.E.ClassOf(root)
	if err != nil {
		return err
	}
	classMode, instMode := IS, S
	exclMode, sharedMode := ISO, ISOS
	if write {
		classMode, instMode = IX, X
		exclMode, sharedMode = IXO, IXOS
	}
	if err := p.M.Lock(tx, ClassGranule(cl.Name), classMode); err != nil {
		return err
	}
	if err := p.M.Lock(tx, InstanceGranule(root), instMode); err != nil {
		return err
	}
	info, err := p.ComponentClassInfo(cl.Name)
	if err != nil {
		return err
	}
	// Deterministic order to reduce deadlocks between protocol users.
	names := make([]string, 0, len(info))
	for n := range info {
		names = append(names, n)
	}
	sortStrings(names)
	for _, n := range names {
		if info[n]&ViaExclusive != 0 {
			if err := p.M.Lock(tx, ClassGranule(n), exclMode); err != nil {
				return err
			}
		}
		if info[n]&ViaShared != 0 {
			if err := p.M.Lock(tx, ClassGranule(n), sharedMode); err != nil {
				return err
			}
		}
	}
	return nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// LockCompositeRead locks the composite object rooted at root for reading
// (§7 example 1: IS on the root class, S on the root instance, ISO/ISOS on
// the component classes).
func (p *Protocol) LockCompositeRead(tx TxID, root uid.UID) error {
	return p.lockComposite(tx, root, false)
}

// LockCompositeWrite locks the composite object rooted at root for
// updating (§7 example 2: IX, X, IXO/IXOS).
func (p *Protocol) LockCompositeWrite(tx TxID, root uid.UID) error {
	return p.lockComposite(tx, root, true)
}

// LockInstance locks a single object for direct (non-composite) access:
// IS/IX on its class, S/X on the instance — the classical granularity
// protocol.
func (p *Protocol) LockInstance(tx TxID, obj uid.UID, write bool) error {
	cl, err := p.E.ClassOf(obj)
	if err != nil {
		return err
	}
	classMode, instMode := IS, S
	if write {
		classMode, instMode = IX, X
	}
	if err := p.M.Lock(tx, ClassGranule(cl.Name), classMode); err != nil {
		return err
	}
	return p.M.Lock(tx, InstanceGranule(obj), instMode)
}

// LockUnitsWrite admits a writer to the composite units containing each
// of ids: it resolves every id to the roots of the composite objects
// containing it and runs the §7 update protocol (IX class, X root,
// IXO/IXOS component classes) on each root. Because a concurrent attach
// can merge two hierarchies while this transaction waits (the
// Make-Component Rule lets a parentless root become a component), the
// roots are re-resolved after every acquisition round and any roots that
// appeared are locked too, until a round resolves to nothing new
// (lock-coupling). Under 2PL the accumulated locks are all kept.
//
// Two fallbacks keep the lock set well-defined off the happy path:
//   - an id with no object (deleted, or never created) is locked
//     directly (IX class + X instance) so callers racing on a vanished
//     object still serialize;
//   - an id inside a cyclic hierarchy has no parentless ancestor, so the
//     whole cycle stands in for the root: the id and all its ancestors
//     are locked as units.
func (p *Protocol) LockUnitsWrite(tx TxID, ids ...uid.UID) error {
	return p.lockUnits(tx, true, ids)
}

// LockUnitsRead is LockUnitsWrite with the §7 read protocol (IS, S,
// ISO/ISOS) — composite-unit admission for readers.
func (p *Protocol) LockUnitsRead(tx TxID, ids ...uid.UID) error {
	return p.lockUnits(tx, false, ids)
}

func (p *Protocol) lockUnits(tx TxID, write bool, ids []uid.UID) error {
	locked := map[uid.UID]bool{}
	for {
		targets := uid.NewSet()
		for _, id := range ids {
			if err := p.unitRoots(id, targets); err != nil {
				return err
			}
		}
		var fresh []uid.UID
		for _, r := range targets.Slice() {
			if !locked[r] {
				fresh = append(fresh, r)
			}
		}
		if len(fresh) == 0 {
			return nil
		}
		// Deterministic order to reduce deadlocks between protocol users.
		sort.Slice(fresh, func(i, j int) bool { return fresh[i].Less(fresh[j]) })
		for _, r := range fresh {
			if err := p.lockUnitRoot(tx, r, write); err != nil {
				return err
			}
			locked[r] = true
		}
	}
}

// unitRoots adds the unit-root lock targets for id to targets.
func (p *Protocol) unitRoots(id uid.UID, targets *uid.Set) error {
	roots, err := p.E.RootsOf(id)
	switch {
	case errors.Is(err, core.ErrNoObject):
		targets.Add(id)
		return nil
	case err != nil:
		return err
	}
	if len(roots) == 0 {
		// Cyclic hierarchy: no parentless ancestor exists.
		targets.Add(id)
		ancs, err := p.E.AncestorsOf(id, core.QueryOpts{})
		if err != nil && !errors.Is(err, core.ErrNoObject) {
			return err
		}
		for _, a := range ancs {
			targets.Add(a)
		}
		return nil
	}
	for _, r := range roots {
		targets.Add(r)
	}
	return nil
}

// lockUnitRoot locks one resolved unit root: the admission variant of the
// composite protocol when its class resolves, a bare instance lock
// otherwise (the class was dropped while the id was in flight — nothing
// left to intention-lock).
func (p *Protocol) lockUnitRoot(tx TxID, root uid.UID, write bool) error {
	if _, err := p.E.ClassOf(root); err != nil {
		mode := S
		if write {
			mode = X
		}
		return p.M.Lock(tx, InstanceGranule(root), mode)
	}
	return p.lockUnit(tx, root, write)
}

// lockUnit is the admission variant of lockComposite: IS/IX on the root's
// class, S/X on the root instance, and ISOS/IXOS on the component classes
// reached via shared references — but NO ISO/IXO on classes reached only
// via exclusive references. The exclusive-side O-locks exist to warn
// direct instance lockers (plain IS/IX + instance lock) that some
// instances of the class are implicitly locked through a root. Unit
// admission never locks components directly: every access — read or
// write, named or implied — resolves to unit roots first, and Topology
// Rules 1–3 make exclusively-referenced components single-parented, so
// two units can only overlap through shared references. Root S/X locks
// therefore arbitrate all exclusive-side conflicts, while the
// ISOS/IXOS↔IXOS class conflicts still serialize writers whose
// hierarchies may overlap invisibly through shared components. Dropping
// ISO/IXO is what lets writers on disjoint hierarchies of the same
// classes — and writers touching parentless instances of a component
// class — run in parallel instead of colliding at the class granule.
func (p *Protocol) lockUnit(tx TxID, root uid.UID, write bool) error {
	cl, err := p.E.ClassOf(root)
	if err != nil {
		return err
	}
	classMode, instMode, sharedMode := IS, S, ISOS
	if write {
		classMode, instMode, sharedMode = IX, X, IXOS
	}
	if err := p.M.Lock(tx, ClassGranule(cl.Name), classMode); err != nil {
		return err
	}
	if err := p.M.Lock(tx, InstanceGranule(root), instMode); err != nil {
		return err
	}
	info, err := p.ComponentClassInfo(cl.Name)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(info))
	for n := range info {
		if info[n]&ViaShared != 0 {
			names = append(names, n)
		}
	}
	sortStrings(names)
	for _, n := range names {
		if err := p.M.Lock(tx, ClassGranule(n), sharedMode); err != nil {
			return err
		}
	}
	return nil
}

// LockForDelete admits the deletion of id: first the units containing id
// itself, then — with those X locks held, so the cascade's reach is
// frozen — the units containing every component of id and every
// surviving composite parent of those components, since the Deletion
// Rule edits parents in other hierarchies when a shared component or a
// last dependent-shared child is reaped.
func (p *Protocol) LockForDelete(tx TxID, id uid.UID) error {
	if err := p.LockUnitsWrite(tx, id); err != nil {
		return err
	}
	comps, err := p.E.ComponentsOf(id, core.QueryOpts{})
	if err != nil {
		if errors.Is(err, core.ErrNoObject) {
			return nil // vanished while waiting; instance lock held above
		}
		return err
	}
	affected := append([]uid.UID{id}, comps...)
	for _, c := range comps {
		parents, err := p.E.ParentsOf(c, core.QueryOpts{})
		if err != nil {
			continue
		}
		affected = append(affected, parents...)
	}
	return p.LockUnitsWrite(tx, affected...)
}

// LockViaRoots implements the [GARZ88] root-locking algorithm: to access a
// component object directly, lock the root of each composite object
// containing it (S for read, X for write) instead of the component itself;
// every component of those composite objects is then implicitly locked.
//
// As §7 observes, this algorithm CANNOT be used with shared composite
// references: two components may belong to overlapping composite objects
// through different roots, so the implicit locks of two transactions can
// conflict without any explicit lock conflict. TestRootLockAnomaly
// demonstrates the failure on the paper's Figure 5.
func (p *Protocol) LockViaRoots(tx TxID, obj uid.UID, write bool) error {
	roots, err := p.E.RootsOf(obj)
	if err != nil {
		return err
	}
	mode := S
	classMode := IS
	if write {
		mode = X
		classMode = IX
	}
	for _, r := range roots {
		cl, err := p.E.ClassOf(r)
		if err != nil {
			return err
		}
		if err := p.M.Lock(tx, ClassGranule(cl.Name), classMode); err != nil {
			return err
		}
		if err := p.M.Lock(tx, InstanceGranule(r), mode); err != nil {
			return err
		}
	}
	return nil
}

// ImplicitHold describes the lock a transaction implicitly holds on an
// instance because it locked a root covering that instance.
type ImplicitHold struct {
	Tx   TxID
	Obj  uid.UID
	Root uid.UID
	Mode Mode
}

// ImplicitConflicts audits the root-locking algorithm: it expands every
// explicitly held root S/X lock into the implicit locks on all components
// of the locked composite object and reports pairs of implicit locks from
// different transactions that conflict. A sound protocol never lets this
// return a non-empty slice; [GARZ88] with shared references does.
func (p *Protocol) ImplicitConflicts(txs []TxID) ([][2]ImplicitHold, error) {
	var holds []ImplicitHold
	for _, tx := range txs {
		for _, rootID := range p.lockedInstances(tx) {
			var mode Mode
			switch {
			case p.M.Holds(tx, InstanceGranule(rootID), X):
				mode = X
			case p.M.Holds(tx, InstanceGranule(rootID), S):
				mode = S
			default:
				continue
			}
			comps, err := p.E.ComponentsOf(rootID, core.QueryOpts{})
			if err != nil {
				return nil, err
			}
			holds = append(holds, ImplicitHold{tx, rootID, rootID, mode})
			for _, c := range comps {
				holds = append(holds, ImplicitHold{tx, c, rootID, mode})
			}
		}
	}
	var out [][2]ImplicitHold
	for i := 0; i < len(holds); i++ {
		for j := i + 1; j < len(holds); j++ {
			a, b := holds[i], holds[j]
			if a.Tx == b.Tx || a.Obj != b.Obj {
				continue
			}
			if !Compatible(a.Mode, b.Mode) {
				out = append(out, [2]ImplicitHold{a, b})
			}
		}
	}
	return out, nil
}

// lockedInstances returns the instance granules tx holds locks on.
func (p *Protocol) lockedInstances(tx TxID) []uid.UID {
	p.M.mu.Lock()
	defer p.M.mu.Unlock()
	var out []uid.UID
	for key := range p.M.held[tx] {
		var c uint32
		var s uint64
		if n, err := fmt.Sscanf(key, "obj:%d:%d", &c, &s); n == 2 && err == nil {
			out = append(out, uid.UID{Class: uid.ClassID(c), Serial: s})
		}
	}
	return out
}
