package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/uid"
)

func g(n string) Granule { return ClassGranule(n) }

func TestLockGrantAndRelease(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, g("C"), S); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, g("C"), S) {
		t.Fatal("Holds = false")
	}
	// Compatible mode from another tx is granted immediately.
	if ok := m.TryLock(2, g("C"), S); !ok {
		t.Fatal("S-S TryLock failed")
	}
	// Incompatible mode from a third tx is not.
	if ok := m.TryLock(3, g("C"), X); ok {
		t.Fatal("X granted alongside S")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(2)
	if ok := m.TryLock(3, g("C"), X); !ok {
		t.Fatal("X not granted after release")
	}
}

func TestLockSelfCompatible(t *testing.T) {
	// A transaction never conflicts with itself: conversions accumulate.
	m := NewManager()
	if err := m.Lock(1, g("C"), S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, g("C"), X); err != nil {
		t.Fatal(err)
	}
	modes := m.HeldModes(1, g("C"))
	if len(modes) != 2 {
		t.Fatalf("held modes = %v", modes)
	}
	// Re-request of a held mode is a no-op.
	if err := m.Lock(1, g("C"), S); err != nil {
		t.Fatal(err)
	}
	if len(m.HeldModes(1, g("C"))) != 2 {
		t.Fatal("duplicate mode recorded")
	}
}

func TestLockBlocksUntilRelease(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, g("C"), X); err != nil {
		t.Fatal(err)
	}
	var acquired atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := m.Lock(2, g("C"), S)
		acquired.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if acquired.Load() {
		t.Fatal("S granted while X held")
	}
	m.ReleaseAll(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	if err := m.Lock(1, g("A"), X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, g("B"), X); err != nil {
		t.Fatal(err)
	}
	// Tx1 waits for B (held by 2).
	errs := make(chan error, 1)
	go func() { errs <- m.Lock(1, g("B"), X) }()
	time.Sleep(20 * time.Millisecond)
	// Tx2 requests A (held by 1): closes the cycle, must abort.
	err := m.Lock(2, g("A"), X)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("deadlock not detected: %v", err)
	}
	// Victim releases; tx1 proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-errs:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tx1 stuck after victim released")
	}
	m.ReleaseAll(1)
}

func TestUnlockSpecificGranule(t *testing.T) {
	m := NewManager()
	m.Lock(1, g("A"), S)
	m.Lock(1, g("B"), S)
	if err := m.Unlock(1, g("A")); err != nil {
		t.Fatal(err)
	}
	if m.Holds(1, g("A"), S) || !m.Holds(1, g("B"), S) {
		t.Fatal("Unlock removed wrong granule")
	}
	if err := m.Unlock(1, g("A")); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double unlock: %v", err)
	}
	if m.LockCount(1) != 1 {
		t.Fatalf("LockCount = %d", m.LockCount(1))
	}
}

func TestInstanceGranules(t *testing.T) {
	m := NewManager()
	a := InstanceGranule(uid.UID{Class: 1, Serial: 1})
	b := InstanceGranule(uid.UID{Class: 1, Serial: 2})
	if err := m.Lock(1, a, X); err != nil {
		t.Fatal(err)
	}
	// Different instance: no conflict.
	if ok := m.TryLock(2, b, X); !ok {
		t.Fatal("X on different instances conflicted")
	}
	// Same instance: conflict.
	if ok := m.TryLock(2, a, S); ok {
		t.Fatal("S granted on X-locked instance")
	}
}

func TestConcurrentStress(t *testing.T) {
	// Many goroutines lock/unlock overlapping granules; no lost wakeups,
	// no panics, all terminate.
	m := NewManager()
	granules := []Granule{g("A"), g("B"), g("C")}
	var wg sync.WaitGroup
	var deadlocks atomic.Int64
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx := TxID(w + 1)
			for i := 0; i < 100; i++ {
				gr := granules[(w+i)%len(granules)]
				mode := []Mode{S, X, IS, IX}[i%4]
				if err := m.Lock(tx, gr, mode); err != nil {
					if errors.Is(err, ErrDeadlock) {
						deadlocks.Add(1)
						m.ReleaseAll(tx)
						continue
					}
					t.Errorf("lock: %v", err)
					return
				}
				m.ReleaseAll(tx)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test hung")
	}
}

func TestCompositeReadersAndWritersCoexistOnExclusiveClass(t *testing.T) {
	// The §7 headline property: transactions reading and updating
	// *different* composite objects of the same hierarchy coexist.
	m := NewManager()
	// Reader of composite object 1.
	if err := m.Lock(1, g("Vehicle"), IS); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, InstanceGranule(uid.UID{Class: 5, Serial: 1}), S); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(1, g("AutoBody"), ISO); err != nil {
		t.Fatal(err)
	}
	// Writer of composite object 2: all grants must succeed immediately.
	for _, step := range []struct {
		gr   Granule
		mode Mode
	}{
		{g("Vehicle"), IX},
		{InstanceGranule(uid.UID{Class: 5, Serial: 2}), X},
		{g("AutoBody"), IXO},
	} {
		if ok := m.TryLock(2, step.gr, step.mode); !ok {
			t.Fatalf("writer blocked on %v %v", step.gr, step.mode)
		}
	}
	// A third transaction updating composite object 1 blocks at the root
	// instance (X vs S), not at the class level.
	if ok := m.TryLock(3, g("Vehicle"), IX); !ok {
		t.Fatal("IX on class blocked")
	}
	if ok := m.TryLock(3, InstanceGranule(uid.UID{Class: 5, Serial: 1}), X); ok {
		t.Fatal("X on S-locked root granted")
	}
}
