package lock

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// fiveRefEngine builds one parent class per reference type of §2.3 —
// dependent-exclusive, independent-exclusive, dependent-shared,
// independent-shared, and weak — each referencing Leaf through a
// set-valued attribute Parts.
func fiveRefEngine(t *testing.T) *core.Engine {
	t.Helper()
	cat := schema.NewCatalog()
	if _, err := cat.DefineClass(schema.ClassDef{Name: "Leaf"}); err != nil {
		t.Fatal(err)
	}
	defs := []struct {
		name string
		attr schema.AttrSpec
	}{
		{"PDX", schema.NewCompositeSetAttr("Parts", "Leaf")},
		{"PIX", schema.NewCompositeSetAttr("Parts", "Leaf").WithDependent(false)},
		{"PDS", schema.NewCompositeSetAttr("Parts", "Leaf").WithExclusive(false)},
		{"PIS", schema.NewCompositeSetAttr("Parts", "Leaf").WithExclusive(false).WithDependent(false)},
		{"PW", schema.NewSetAttr("Parts", schema.ClassDomain("Leaf"))},
	}
	for _, d := range defs {
		if _, err := cat.DefineClass(schema.ClassDef{Name: d.name, Attributes: []schema.AttrSpec{d.attr}}); err != nil {
			t.Fatal(err)
		}
	}
	return core.NewEngine(cat)
}

func mkWithLeaf(t *testing.T, e *core.Engine, class string) (uid.UID, uid.UID) {
	t.Helper()
	l, err := e.New("Leaf", nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := e.New(class, map[string]value.Value{"Parts": value.RefSet(l.UID())})
	if err != nil {
		t.Fatal(err)
	}
	return p.UID(), l.UID()
}

// TestSection7RootVsComponent checks the §7 compatibility rules between a
// composite lock on the root and direct instance locks on the component
// class, for every reference type. For all four composite kinds a
// composite writer excludes direct readers and writers of the component
// class (IXO/IXOS conflict with IS and IX) and a composite reader
// excludes direct writers but admits direct readers; a weak reference
// creates no composite hierarchy, so the component class stays untouched.
func TestSection7RootVsComponent(t *testing.T) {
	cases := []struct {
		class     string
		composite bool
	}{
		{"PDX", true}, {"PIX", true}, {"PDS", true}, {"PIS", true}, {"PW", false},
	}
	for _, tc := range cases {
		t.Run(tc.class, func(t *testing.T) {
			e := fiveRefEngine(t)
			p := NewProtocol(NewManager(), e)
			root, _ := mkWithLeaf(t, e, tc.class)

			// Composite writer on the root.
			if err := p.LockCompositeWrite(1, root); err != nil {
				t.Fatal(err)
			}
			if got := p.M.TryLock(2, ClassGranule("Leaf"), IS); got != !tc.composite {
				t.Fatalf("writer held: direct IS on Leaf granted=%v, want %v", got, !tc.composite)
			}
			if got := p.M.TryLock(2, ClassGranule("Leaf"), IX); got != !tc.composite {
				t.Fatalf("writer held: direct IX on Leaf granted=%v, want %v", got, !tc.composite)
			}
			// The root itself is arbitrated by plain granularity locks.
			if p.M.TryLock(2, InstanceGranule(root), S) {
				t.Fatal("S on root granted against a composite writer")
			}
			if !p.M.TryLock(2, ClassGranule(tc.class), IX) {
				t.Fatal("IX on the root class must be compatible with another IX")
			}
			p.M.ReleaseAll(1)
			p.M.ReleaseAll(2)

			// Composite reader on the root.
			if err := p.LockCompositeRead(1, root); err != nil {
				t.Fatal(err)
			}
			if !p.M.TryLock(2, ClassGranule("Leaf"), IS) {
				t.Fatal("reader held: direct IS on Leaf must be granted")
			}
			if got := p.M.TryLock(2, ClassGranule("Leaf"), IX); got != !tc.composite {
				t.Fatalf("reader held: direct IX on Leaf granted=%v, want %v", got, !tc.composite)
			}
			if !p.M.TryLock(2, InstanceGranule(root), S) {
				t.Fatal("S on root must be compatible with a composite reader")
			}
			if p.M.TryLock(2, InstanceGranule(root), X) {
				t.Fatal("X on root granted against a composite reader")
			}
		})
	}
}

// TestSection7ExclusiveVsSharedWriters: two composite writers on
// hierarchies of the SAME component class are compatible when the class
// is reached via exclusive references (IXO ∥ IXO — the root X locks
// arbitrate, since an exclusively referenced component has exactly one
// parent) but conflict when reached via shared references (IXOS ∦ IXOS —
// the hierarchies may overlap without sharing a root).
func TestSection7ExclusiveVsSharedWriters(t *testing.T) {
	e := fiveRefEngine(t)
	p := NewProtocol(NewManager(), e)
	x1, _ := mkWithLeaf(t, e, "PIX")
	s1, _ := mkWithLeaf(t, e, "PDS")

	if err := p.LockCompositeWrite(1, x1); err != nil {
		t.Fatal(err)
	}
	if !p.M.TryLock(2, ClassGranule("Leaf"), IXO) {
		t.Fatal("IXO ∥ IXO must be compatible across disjoint exclusive hierarchies")
	}
	p.M.ReleaseAll(1)
	p.M.ReleaseAll(2)

	if err := p.LockCompositeWrite(1, s1); err != nil {
		t.Fatal(err)
	}
	if p.M.TryLock(2, ClassGranule("Leaf"), IXOS) {
		t.Fatal("IXOS granted alongside IXOS: shared-hierarchy writers must serialize")
	}
	if p.M.TryLock(2, ClassGranule("Leaf"), IXO) {
		t.Fatal("IXO granted alongside IXOS: regime-crossing writers must serialize")
	}
}

// TestUnitAdmissionDisjointParallel is the regression for the class-granule
// serialization bug: admission of two writers into disjoint hierarchies of
// the same class — each also touching a parentless instance of the
// component class — must not block. (Full lockComposite admission took IXO
// on Leaf for the hierarchy and IX on Leaf for the bare instance, which
// conflict across transactions, hanging every pair of such writers.)
func TestUnitAdmissionDisjointParallel(t *testing.T) {
	e := fiveRefEngine(t)
	p := NewProtocol(NewManager(), e)
	p1, _ := mkWithLeaf(t, e, "PIX")
	p2, _ := mkWithLeaf(t, e, "PIX")
	mkBare := func() uid.UID {
		o, err := e.New("Leaf", nil)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	b1, b2 := mkBare(), mkBare()

	if err := p.LockUnitsWrite(1, p1, b1); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.LockUnitsWrite(2, p2, b2) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("disjoint unit writers blocked each other")
	}

	// The second writer's bare instance is still off limits to a third.
	if p.M.TryLock(3, InstanceGranule(b2), X) {
		t.Fatal("X granted on an instance another admission holds")
	}
}

// TestUnitAdmissionSharedSerializes: unit admission keeps the shared-side
// class O-locks, so writers into two hierarchies whose component classes
// are reached via shared references serialize even when the hierarchies
// are currently disjoint — they could overlap through a shared component
// the lock manager cannot see.
func TestUnitAdmissionSharedSerializes(t *testing.T) {
	e := fiveRefEngine(t)
	p := NewProtocol(NewManager(), e)
	p1, _ := mkWithLeaf(t, e, "PDS")
	if err := p.LockUnitsWrite(1, p1); err != nil {
		t.Fatal(err)
	}
	if !p.M.Holds(1, ClassGranule("Leaf"), IXOS) {
		t.Fatal("unit admission into a shared hierarchy must hold IXOS on the component class")
	}
	if p.M.TryLock(2, ClassGranule("Leaf"), IXOS) {
		t.Fatal("second shared-hierarchy writer admitted concurrently")
	}
}

// TestDependentSharedLastParentDelete: c is a dependent-shared component
// of p1 and p2. While a reader is admitted to p2's unit, deleting p1 must
// block (the Deletion Rule may edit shared components, and the reader's
// ISOS conflicts with the deleter's IXOS); once the reader releases, the
// delete proceeds and c survives with its remaining parent.
func TestDependentSharedLastParentDelete(t *testing.T) {
	e := fiveRefEngine(t)
	p := NewProtocol(NewManager(), e)
	p1, c := mkWithLeaf(t, e, "PDS")
	p2o, err := e.New("PDS", map[string]value.Value{"Parts": value.RefSet(c)})
	if err != nil {
		t.Fatal(err)
	}
	p2 := p2o.UID()

	if err := p.LockUnitsRead(1, p2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- p.LockForDelete(2, p1) }()
	select {
	case err := <-done:
		t.Fatalf("delete admission completed against a unit reader (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	p.M.ReleaseAll(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("delete admission still blocked after reader released")
	}

	casualties, err := e.Delete(p1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range casualties {
		if id == c {
			t.Fatal("dependent-shared component deleted despite a surviving parent")
		}
	}
	o, err := e.Get(c)
	if err != nil {
		t.Fatalf("component vanished: %v", err)
	}
	if n := len(o.Reverse()); n != 1 {
		t.Fatalf("component has %d parents after delete, want 1", n)
	}
}
