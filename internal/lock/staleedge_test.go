package lock

import (
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDeadlockThroughBargedGrant: a grant does not queue behind waits, so
// a transaction can become the blocker of an already-parked waiter. The
// waiter's wait-for edges were recorded against the holders it saw when it
// parked; without the grant-path broadcast those edges go stale and a
// deadlock cycle running through the barged grant is invisible to the
// detector — both transactions park forever with no further release to
// wake them.
//
//	T1 holds X(g3); T2 holds S(g1)
//	T1 requests X(g1)        -> parks behind T2 (edge T1->T2)
//	T3 acquires S(g1)        -> granted past T1's pending X (barge)
//	T3 requests S(g3)        -> blocked by T1: true cycle T1->T3->T1
//
// T3's request must detect the cycle (T1's edges must include T3 by then)
// and, as the youngest member, abort with ErrDeadlock.
func TestDeadlockThroughBargedGrant(t *testing.T) {
	m := NewManager()
	r := obs.NewRegistry()
	m.SetObservability(r)
	waits := r.Counter("lock_wait_total")

	g1, g3 := ClassGranule("G1"), ClassGranule("G3")
	if err := m.Lock(1, g3, X); err != nil {
		t.Fatal(err)
	}
	if err := m.Lock(2, g1, S); err != nil {
		t.Fatal(err)
	}

	t1done := make(chan error, 1)
	go func() { t1done <- m.Lock(1, g1, X) }()
	deadline := time.Now().Add(2 * time.Second)
	for waits.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("T1 never started waiting")
		}
		time.Sleep(time.Millisecond)
	}

	if err := m.Lock(3, g1, S); err != nil {
		t.Fatalf("T3 S(g1) should barge past the parked X request: %v", err)
	}

	t3done := make(chan error, 1)
	go func() { t3done <- m.Lock(3, g3, S) }()
	select {
	case err := <-t3done:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("T3 S(g3) = %v, want ErrDeadlock", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("undetected deadlock: T3 parked on a cycle through its own barged grant")
	}

	// The victim's abort unblocks the survivor.
	m.ReleaseAll(3)
	m.ReleaseAll(2)
	select {
	case err := <-t1done:
		if err != nil {
			t.Fatalf("T1 X(g1) after victim abort: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("T1 still parked after its blockers released")
	}
	m.ReleaseAll(1)
	if n := len(m.granules); n != 0 {
		t.Fatalf("granule map not drained: %d entries", n)
	}
}
