// Package lock implements §7 of the paper: granularity locking extended
// with composite-object lock modes.
//
// To the classical hierarchy modes IS, IX, S, SIX, X of [GRAY78], the
// paper adds three modes for component classes of composite hierarchies
// built from exclusive references — ISO, IXO, SIXO (Figure 7) — and three
// more for component classes reached through shared references — ISOS,
// IXOS, SIXOS (Figure 8).
//
// Rather than hard-coding the two figures, this package derives the
// compatibility relation from a small semantic model (the "claims" each
// mode makes on the class's instances) and the test suite asserts the
// derived relation equals the matrices, reconstructed from the figures and
// from every constraint the prose pins down:
//
//   - "while IS and IX modes do not conflict, the ISO mode conflicts with
//     IX mode, and IXO and SIXO modes conflict with both IS and IX";
//   - "multiple users [may] read and update different composite objects
//     that share the same composite class hierarchy" — so ISO and IXO are
//     mutually compatible, actual overlap being arbitrated by the S/X
//     locks on the composite objects' roots (exclusive references admit
//     only one root path);
//   - §7's worked examples on Figure 9: example 1 (IXO on class C) is
//     compatible with example 2 (ISOS on C) but incompatible with example
//     3 (IXOS on C), and examples 2 and 3 conflict (ISOS vs IXOS).
//
// The model: each mode claims (universe, read|write) pairs over a class's
// instances. Universes are DIRECT (instances accessed one at a time under
// their own instance locks), ALL (the whole extent), COMPX (components of
// locked composite objects reached via exclusive references, arbitrated by
// root locks) and COMPS (components reached via shared references —
// reachable from several roots, so root locks arbitrate nothing). Two
// claims conflict when their universes can overlap, at least one writes,
// and no finer-grained arbitration covers the pair. COMPX and COMPS are
// disjoint for well-formed states (Topology Rule 3), which is what lets a
// composite reader in one regime run against a composite writer in the
// other; two uninstrumented writers on the same class are serialized
// regardless of regime, since writes can migrate instances between the
// regimes (attach/detach, schema changes D2/D3).
package lock

import "fmt"

// Mode is a lock mode.
type Mode uint8

// The eleven lock modes of Figures 7 and 8.
const (
	IS Mode = iota
	IX
	S
	SIX
	X
	ISO   // intention shared, composite objects (exclusive refs)
	IXO   // intention exclusive, composite objects (exclusive refs)
	SIXO  // shared + intention exclusive, composite objects (exclusive refs)
	ISOS  // intention shared, object-shared (shared refs)
	IXOS  // intention exclusive, object-shared (shared refs)
	SIXOS // shared + intention exclusive, object-shared (shared refs)
	numModes
)

// Modes lists all modes in matrix order (Figure 8's order).
var Modes = []Mode{IS, IX, S, SIX, X, ISO, IXO, SIXO, ISOS, IXOS, SIXOS}

// ExclusiveHierarchyModes lists the modes of Figure 7 (granularity +
// exclusive composite locking).
var ExclusiveHierarchyModes = []Mode{IS, IX, S, SIX, X, ISO, IXO, SIXO}

// String returns the paper's name for the mode.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case X:
		return "X"
	case ISO:
		return "ISO"
	case IXO:
		return "IXO"
	case SIXO:
		return "SIXO"
	case ISOS:
		return "ISOS"
	case IXOS:
		return "IXOS"
	case SIXOS:
		return "SIXOS"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// universe classifies which instances of the class a claim touches.
type universe uint8

const (
	uDirect universe = iota // individual instances under instance locks
	uAll                    // the entire extent
	uCompX                  // components of locked composite objects, exclusive refs
	uCompS                  // components of locked composite objects, shared refs
)

// claim is one (universe, write?) access right asserted by a mode.
type claim struct {
	u     universe
	write bool
}

// claims returns the access rights each mode asserts.
func (m Mode) claims() []claim {
	switch m {
	case IS:
		return []claim{{uDirect, false}}
	case IX:
		return []claim{{uDirect, true}}
	case S:
		return []claim{{uAll, false}}
	case SIX:
		return []claim{{uAll, false}, {uDirect, true}}
	case X:
		return []claim{{uAll, true}}
	case ISO:
		return []claim{{uCompX, false}}
	case IXO:
		return []claim{{uCompX, true}}
	case SIXO:
		return []claim{{uAll, false}, {uCompX, true}}
	case ISOS:
		return []claim{{uCompS, false}}
	case IXOS:
		return []claim{{uCompS, true}}
	case SIXOS:
		return []claim{{uAll, false}, {uCompS, true}}
	default:
		return nil
	}
}

// overlaps reports whether two universes can contain a common instance.
// COMPX and COMPS are disjoint by Topology Rule 3; everything else can
// overlap.
func overlaps(a, b universe) bool {
	if (a == uCompX && b == uCompS) || (a == uCompS && b == uCompX) {
		return false
	}
	return true
}

// arbitrated reports whether a finer-grained lock protocol serializes
// actual conflicts between the two universes: instance locks for
// DIRECT×DIRECT, root S/X locks for COMPX×COMPX.
func arbitrated(a, b universe) bool {
	return (a == uDirect && b == uDirect) || (a == uCompX && b == uCompX)
}

// claimsConflict reports whether two claims held by different transactions
// conflict.
func claimsConflict(a, b claim) bool {
	if !a.write && !b.write {
		return false
	}
	// Two composite writers on the same class conflict even across the
	// exclusive/shared regimes: a writer may migrate instances between
	// regimes, and neither writer holds instance locks.
	if (a.u == uCompX || a.u == uCompS) && (b.u == uCompX || b.u == uCompS) &&
		a.write && b.write && a.u != b.u {
		return true
	}
	if !overlaps(a.u, b.u) {
		return false
	}
	if arbitrated(a.u, b.u) {
		return false
	}
	return true
}

// Compatible reports whether a lock in mode a held by one transaction is
// compatible with a request for mode b by another transaction. The
// relation is symmetric.
func Compatible(a, b Mode) bool {
	for _, ca := range a.claims() {
		for _, cb := range b.claims() {
			if claimsConflict(ca, cb) {
				return false
			}
		}
	}
	return true
}

// CompatMatrix returns the full compatibility matrix over the given modes
// (row = held, column = requested).
func CompatMatrix(modes []Mode) [][]bool {
	out := make([][]bool, len(modes))
	for i, a := range modes {
		out[i] = make([]bool, len(modes))
		for j, b := range modes {
			out[i][j] = Compatible(a, b)
		}
	}
	return out
}

// FormatMatrix renders a compatibility matrix like the paper's figures
// ("Y" for compatible, "." for conflict).
func FormatMatrix(modes []Mode) string {
	m := CompatMatrix(modes)
	width := 0
	for _, mo := range modes {
		if len(mo.String()) > width {
			width = len(mo.String())
		}
	}
	pad := func(s string) string {
		for len(s) < width {
			s = s + " "
		}
		return s
	}
	out := pad("") + " |"
	for _, mo := range modes {
		out += " " + pad(mo.String())
	}
	out += "\n"
	for i, mo := range modes {
		out += pad(mo.String()) + " |"
		for j := range modes {
			cell := "."
			if m[i][j] {
				cell = "Y"
			}
			out += " " + pad(cell)
		}
		out += "\n"
		_ = i
	}
	return out
}
