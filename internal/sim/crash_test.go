package sim

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/db"
	"repro/internal/faultfs"
	"repro/internal/storage"
	"repro/internal/value"
)

// TestSimDurableCrashRecovery runs the workload against an on-disk
// database with crash ops: each crash abandons the files mid-flight and
// reopens through WAL replay; the recovered state must equal the model
// at the last committed transaction (durability) with no aborted-txn
// effects (atomicity). Every run also ends with a final crash/recovery
// round.
func TestSimDurableCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("durable sims hit the disk")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Seed: seed, Ops: 250, Durable: true, Dir: t.TempDir(),
				Checkpoint: true, Crash: true, ShrinkBudget: 60,
			}
			if f := Run(cfg); f != nil {
				t.Fatal(f.Report())
			}
		})
	}
}

// TestSimDurableEvolutionCrash combines schema evolution with crashes:
// catalog changes (including deferred-evolution op logs and the change
// counter) are checkpointed by the db wrappers, so a crash after an
// evolution op must not lose it.
func TestSimDurableEvolutionCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("durable sims hit the disk")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				Seed: seed, Ops: 250, Durable: true, Dir: t.TempDir(),
				Evolution: true, Checkpoint: true, Crash: true, ShrinkBudget: 60,
			}
			if f := Run(cfg); f != nil {
				t.Fatal(f.Report())
			}
		})
	}
}

// TestDBCheckpointSyncFaultRetry wires a fault-injecting device under a
// real database: an injected fsync failure must surface from Checkpoint
// as an error (not silently succeed), a retry must go through, and a
// crash plus reopen must recover everything the successful checkpoint
// and the WAL captured.
func TestDBCheckpointSyncFaultRetry(t *testing.T) {
	dir := t.TempDir()
	inner, err := storage.OpenFileDevice(filepath.Join(dir, "pages.db"))
	if err != nil {
		t.Fatal(err)
	}
	dev := faultfs.New(inner, 42)
	d, err := db.Open(db.Options{Dir: dir, Device: dev, SyncWAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := defineSchema(d); err != nil {
		t.Fatal(err)
	}
	o, err := d.Make(classLeaf, map[string]value.Value{"Tag": value.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	dev.Inject(faultfs.Fault{Kind: faultfs.SyncErr, At: dev.Stats().Syncs + 1})
	if err := d.Checkpoint(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("checkpoint with failing fsync: got %v, want ErrInjected", err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	if err := d.Abandon(); err != nil {
		t.Fatal(err)
	}
	reopened, err := db.Open(db.Options{Dir: dir, SyncWAL: true})
	if err != nil {
		t.Fatalf("recovery after faulty checkpoint: %v", err)
	}
	defer reopened.Close()
	got, err := reopened.Get(o.UID())
	if err != nil {
		t.Fatalf("object lost across fault + crash: %v", err)
	}
	if tag, _ := got.Get("Tag").AsInt(); tag != 7 {
		t.Fatalf("Tag = %d, want 7", tag)
	}
}
