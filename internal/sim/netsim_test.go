package sim

import "testing"

// TestConcurrentHarnessNet runs the concurrent simulation through the
// wire: each worker dials the in-process TCP server and drives its
// transactions as framed s-expression programs, with the same
// commit-order model checks as the embedded mode. Any divergence
// between the two modes indicts the protocol layer (rendering, parsing,
// error-code mapping), since the engine underneath is identical.
func TestConcurrentHarnessNet(t *testing.T) {
	for seed := int64(31); seed <= 32; seed++ {
		res := RunConcurrent(ConcurrentConfig{Seed: seed, Workers: 4, Ops: 120, Net: true})
		if res.Failure != nil {
			t.Fatalf("seed %d: %s", seed, res.Failure.Report())
		}
		if res.Committed == 0 {
			t.Fatalf("seed %d: no transactions committed", seed)
		}
	}
}

// TestConcurrentHarnessNetDurable adds durability and the crash-recovery
// finale: the server is shut down, the store abandoned mid-flight, and
// the WAL replay compared against the model — proving the network front
// end leaves the recovery path intact.
func TestConcurrentHarnessNetDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("durable net soak skipped in -short")
	}
	res := RunConcurrent(ConcurrentConfig{Seed: 33, Workers: 4, Readers: 1, Ops: 100, Net: true, Durable: true, Dir: t.TempDir()})
	if res.Failure != nil {
		t.Fatal(res.Failure.Report())
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
}
