// Package sim is a model-based workload harness for the composite-object
// engine: it drives random seeded operation sequences through txn.Manager
// and checks, after every step, that the engine's state matches a pure
// in-memory reference model — partition sets IX/DX/IS/DS, reverse D/X
// flags, Topology Rules 1–4, and Deletion-Rule reachability. Failures are
// shrunk to a minimal op trace and reported with the seed.
//
// The model deliberately mirrors the engine's algorithms (attach §2.4,
// the Deletion Rule cascade, the §4.2 type changes) but shares no code
// with it: it is a second, independent implementation of the paper's
// semantics over plain maps and slices, with no catalog, no cache, no
// storage, and no deferred replay. Deferred schema changes are applied
// eagerly in the model; this is equivalent because the harness reads
// every object after every step, which forces the engine's lazy
// ApplyPending replay, so no object ever carries stale flags across ops.
package sim

import (
	"fmt"
	"sort"

	"repro/internal/uid"
)

// attrSpec is the model's view of one attribute: a primitive (Domain ==
// "") or a reference attribute with composite/exclusive/dependent flags
// that schema-evolution ops mutate at runtime.
type attrSpec struct {
	Name      string
	Domain    string // referenced class; "" = primitive int
	SetOf     bool
	Composite bool
	Exclusive bool
	Dependent bool
}

// modelClass is a class definition: attributes in definition order (the
// Deletion-Rule cascade visits them in this order, as the engine does).
type modelClass struct {
	Name  string
	Attrs []attrSpec
}

// revRef mirrors object.ReverseRef: one composite parent with the D and X
// flags of the referencing attribute.
type revRef struct {
	Parent    uid.UID
	Dependent bool
	Exclusive bool
}

// modelObj is one instance: a Tag value, forward reference lists per
// attribute (in insertion order, as value collections keep it), and the
// reverse composite references.
type modelObj struct {
	ID     uid.UID
	Class  string
	Tag    int64
	HasTag bool
	Refs   map[string][]uid.UID
	Rev    []revRef
}

func (o *modelObj) clone() *modelObj {
	c := &modelObj{ID: o.ID, Class: o.Class, Tag: o.Tag, HasTag: o.HasTag,
		Refs: make(map[string][]uid.UID, len(o.Refs)),
		Rev:  append([]revRef(nil), o.Rev...)}
	for k, v := range o.Refs {
		c.Refs[k] = append([]uid.UID(nil), v...)
	}
	return c
}

func (o *modelObj) findRev(parent uid.UID) int {
	for i, r := range o.Rev {
		if r.Parent == parent {
			return i
		}
	}
	return -1
}

// addRev mirrors object.AddReverse: overwrite flags when the parent is
// already present, append otherwise.
func (o *modelObj) addRev(r revRef) {
	if i := o.findRev(r.Parent); i >= 0 {
		o.Rev[i] = r
		return
	}
	o.Rev = append(o.Rev, r)
}

func (o *modelObj) removeRev(parent uid.UID) {
	if i := o.findRev(parent); i >= 0 {
		o.Rev = append(o.Rev[:i], o.Rev[i+1:]...)
	}
}

func (o *modelObj) hasExclusiveRev() bool {
	for _, r := range o.Rev {
		if r.Exclusive {
			return true
		}
	}
	return false
}

// ds returns the dependent-shared parents, the set whose emptiness decides
// the Deletion Rule's lastDS condition.
func (o *modelObj) ds() []uid.UID {
	var out []uid.UID
	for _, r := range o.Rev {
		if r.Dependent && !r.Exclusive {
			out = append(out, r.Parent)
		}
	}
	return out
}

// partition returns the parents in the partition selected by (dep, excl),
// Definition 1 of §2.2.
func (o *modelObj) partition(dep, excl bool) []uid.UID {
	var out []uid.UID
	for _, r := range o.Rev {
		if r.Dependent == dep && r.Exclusive == excl {
			out = append(out, r.Parent)
		}
	}
	return out
}

// Model is the reference state: class specs (mutated by evolution ops)
// plus all live instances.
type Model struct {
	classes map[string]*modelClass
	objs    map[uid.UID]*modelObj
}

// newModel builds the model over the given class definitions.
func newModel(classes []modelClass) *Model {
	m := &Model{classes: map[string]*modelClass{}, objs: map[uid.UID]*modelObj{}}
	for i := range classes {
		c := classes[i]
		c.Attrs = append([]attrSpec(nil), classes[i].Attrs...)
		m.classes[c.Name] = &c
	}
	return m
}

// Clone deep-copies the model. The harness applies every op to a clone
// and promotes it only on success, so a failed op leaves the model
// untouched — matching the engine, whose mutations are atomic.
func (m *Model) Clone() *Model {
	c := &Model{classes: make(map[string]*modelClass, len(m.classes)),
		objs: make(map[uid.UID]*modelObj, len(m.objs))}
	for name, cl := range m.classes {
		cc := &modelClass{Name: cl.Name, Attrs: append([]attrSpec(nil), cl.Attrs...)}
		c.classes[name] = cc
	}
	for id, o := range m.objs {
		c.objs[id] = o.clone()
	}
	return c
}

// spec returns the attribute spec (mutable) or nil.
func (m *Model) spec(class, attr string) *attrSpec {
	cl := m.classes[class]
	if cl == nil {
		return nil
	}
	for i := range cl.Attrs {
		if cl.Attrs[i].Name == attr {
			return &cl.Attrs[i]
		}
	}
	return nil
}

// extent returns the sorted UIDs of the class's live instances.
func (m *Model) extent(class string) []uid.UID {
	var out []uid.UID
	for id, o := range m.objs {
		if o.Class == class {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// instancesOf returns the class's instances in sorted order. The engine
// iterates its extent in insertion order; every place the model uses this
// the iteration order only affects which of several violations is
// reported, never whether one exists, so sorted order is fine.
func (m *Model) instancesOf(class string) []*modelObj {
	var out []*modelObj
	for _, id := range m.extent(class) {
		out = append(out, m.objs[id])
	}
	return out
}

// makeComponentCheck is the Make-Component Rule (§2.2): an exclusive
// reference requires a child with no composite parent at all; a shared
// reference requires no exclusive composite parent.
func (m *Model) makeComponentCheck(child *modelObj, spec *attrSpec) error {
	if spec.Exclusive {
		if len(child.Rev) > 0 {
			return fmt.Errorf("model: %v already has a composite parent", child.ID)
		}
		return nil
	}
	if child.hasExclusiveRev() {
		return fmt.Errorf("model: %v has an exclusive composite parent", child.ID)
	}
	return nil
}

// Parent names one (parent, attribute) pair of a make message. Class is
// the parent's class, resolvable even when the parent object is dead —
// the engine derives it from the UID's class bits.
type Parent struct {
	ID    uid.UID
	Class string
	Attr  string
}

// New mirrors Engine.New: validate multi-parent specs, create, set Tag,
// then attach to each parent in order. id is the UID the engine assigned
// (uid.Nil when the engine op failed; the state is discarded then, only
// the error verdict matters).
func (m *Model) New(id uid.UID, class string, tag int64, parents []Parent) error {
	if m.classes[class] == nil {
		return fmt.Errorf("model: no class %q", class)
	}
	if len(parents) > 1 {
		for _, p := range parents {
			spec := m.spec(p.Class, p.Attr)
			if spec == nil {
				return fmt.Errorf("model: no attr %s.%s", p.Class, p.Attr)
			}
			if !spec.Composite || spec.Exclusive {
				return fmt.Errorf("model: multiple parents require shared composite attrs")
			}
		}
	}
	o := &modelObj{ID: id, Class: class, Tag: tag, HasTag: true, Refs: map[string][]uid.UID{}}
	m.objs[id] = o
	for _, p := range parents {
		if err := m.attach(p.ID, p.Attr, id); err != nil {
			return err
		}
	}
	return nil
}

// attach mirrors attachCheckedLocked (§2.4): resolve parent, reject
// self-reference, resolve spec and child, check domain, then the forward
// no-op / occupied rules, then the Make-Component Rule for composite
// attrs, then link.
func (m *Model) attach(parentID uid.UID, attr string, childID uid.UID) error {
	po := m.objs[parentID]
	if po == nil {
		return fmt.Errorf("model: no object %v", parentID)
	}
	if parentID == childID {
		return fmt.Errorf("model: %v cannot be a component of itself", parentID)
	}
	spec := m.spec(po.Class, attr)
	if spec == nil {
		return fmt.Errorf("model: no attr %s.%s", po.Class, attr)
	}
	co := m.objs[childID]
	if co == nil {
		return fmt.Errorf("model: no object %v", childID)
	}
	if spec.Domain == "" {
		return fmt.Errorf("model: %s.%s has a primitive domain", po.Class, attr)
	}
	if co.Class != spec.Domain {
		return fmt.Errorf("model: %s.%s wants %s, got %s", po.Class, attr, spec.Domain, co.Class)
	}
	cur := po.Refs[attr]
	for _, r := range cur {
		if r == childID {
			return nil // already attached: no-op
		}
	}
	if !spec.SetOf && len(cur) > 0 {
		return fmt.Errorf("model: %s.%s of %v occupied", po.Class, attr, parentID)
	}
	if spec.Composite {
		if err := m.makeComponentCheck(co, spec); err != nil {
			return err
		}
		co.addRev(revRef{Parent: parentID, Dependent: spec.Dependent, Exclusive: spec.Exclusive})
	}
	po.Refs[attr] = append(cur, childID)
	return nil
}

// detach mirrors Engine.Detach: the forward reference must exist; the
// reverse reference is removed only when the attribute is currently
// composite (a reference attached while composite and detached after an
// I1 change leaves no reverse ref to clean — the I1 rewrite removed it).
func (m *Model) detach(parentID uid.UID, attr string, childID uid.UID) error {
	po := m.objs[parentID]
	if po == nil {
		return fmt.Errorf("model: no object %v", parentID)
	}
	spec := m.spec(po.Class, attr)
	if spec == nil {
		return fmt.Errorf("model: no attr %s.%s", po.Class, attr)
	}
	found := false
	for _, r := range po.Refs[attr] {
		if r == childID {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("model: %v.%s does not reference %v", parentID, attr, childID)
	}
	po.Refs[attr] = removeAll(po.Refs[attr], childID)
	if spec.Composite {
		if co := m.objs[childID]; co != nil {
			co.removeRev(parentID)
		}
	}
	return nil
}

func removeAll(s []uid.UID, u uid.UID) []uid.UID {
	out := s[:0]
	for _, r := range s {
		if r != u {
			out = append(out, r)
		}
	}
	return out
}

// setTag mirrors Txn.WriteAttr of a primitive attribute: the object must
// exist (the transaction snapshots it first).
func (m *Model) setTag(id uid.UID, tag int64) error {
	o := m.objs[id]
	if o == nil {
		return fmt.Errorf("model: no object %v", id)
	}
	o.Tag, o.HasTag = tag, true
	return nil
}

// Ref is a reference plus its class (from the UID's class bits), needed
// to validate dangling references the way the catalog does.
type Ref struct {
	ID    uid.UID
	Class string
}

// setRefs mirrors Engine.Set on a reference attribute: domain validation
// first (against UID class bits, so dangling refs of the right class
// pass), then — composite only — diff the sets, validate every addition
// (existence, self-ref, Make-Component) before mutating, drop reverse
// refs of removals (dangling ones silently), link additions, and store
// the new value verbatim.
func (m *Model) setRefs(id uid.UID, attr string, refs []Ref) error {
	o := m.objs[id]
	if o == nil {
		return fmt.Errorf("model: no object %v", id)
	}
	spec := m.spec(o.Class, attr)
	if spec == nil {
		return fmt.Errorf("model: no attr %s.%s", o.Class, attr)
	}
	if spec.Domain == "" {
		return fmt.Errorf("model: %s.%s is primitive", o.Class, attr)
	}
	if !spec.SetOf && len(refs) > 1 {
		return fmt.Errorf("model: collection value for single-valued %s.%s", o.Class, attr)
	}
	for _, r := range refs {
		if r.Class != spec.Domain {
			return fmt.Errorf("model: %s.%s wants %s, got %s", o.Class, attr, spec.Domain, r.Class)
		}
	}
	newIDs := make([]uid.UID, len(refs))
	for i, r := range refs {
		newIDs[i] = r.ID
	}
	if !spec.Composite {
		o.Refs[attr] = newIDs
		return nil
	}
	inOld := map[uid.UID]bool{}
	for _, r := range o.Refs[attr] {
		inOld[r] = true
	}
	inNew := map[uid.UID]bool{}
	for _, r := range newIDs {
		inNew[r] = true
	}
	var added []*modelObj
	for _, r := range newIDs {
		if inOld[r] {
			continue
		}
		child := m.objs[r]
		if child == nil {
			return fmt.Errorf("model: no object %v", r)
		}
		if r == id {
			return fmt.Errorf("model: %v cannot be a component of itself", id)
		}
		if err := m.makeComponentCheck(child, spec); err != nil {
			return err
		}
		added = append(added, child)
	}
	for _, r := range o.Refs[attr] {
		if inNew[r] {
			continue
		}
		if child := m.objs[r]; child != nil {
			child.removeRev(id)
		}
	}
	for _, child := range added {
		child.addRev(revRef{Parent: id, Dependent: spec.Dependent, Exclusive: spec.Exclusive})
	}
	o.Refs[attr] = newIDs
	return nil
}

// Delete mirrors the Deletion-Rule cascade: DFS with the deleted set
// doubling as the visited set, composite attributes in definition order,
// children in forward-reference order, RemoveReverse before the lastDS
// test, then unlink the victim from every surviving parent (all
// attributes, weak ones included; weak refs from non-parents are left
// dangling, as in ORION). Returns the casualty list.
func (m *Model) Delete(id uid.UID) ([]uid.UID, error) {
	if m.objs[id] == nil {
		return nil, fmt.Errorf("model: no object %v", id)
	}
	deleted := map[uid.UID]bool{}
	var order []uid.UID
	m.deleteRec(id, deleted, &order)
	return order, nil
}

func (m *Model) deleteRec(id uid.UID, deleted map[uid.UID]bool, order *[]uid.UID) {
	if deleted[id] {
		return
	}
	o := m.objs[id]
	if o == nil {
		return
	}
	deleted[id] = true
	*order = append(*order, id)
	cl := m.classes[o.Class]
	for i := range cl.Attrs {
		spec := &cl.Attrs[i]
		if spec.Domain == "" || !spec.Composite {
			continue
		}
		for _, childID := range append([]uid.UID(nil), o.Refs[spec.Name]...) {
			m.reap(id, childID, spec.Dependent, spec.Exclusive, deleted, order)
		}
	}
	m.unlinkFromParents(id, deleted)
	delete(m.objs, id)
}

// reap applies the Deletion Rule to one child after its parent died:
// remove the reverse reference first, then delete the child if the
// reference was dependent and either exclusive or the last
// dependent-shared one.
func (m *Model) reap(parent, childID uid.UID, dep, excl bool, deleted map[uid.UID]bool, order *[]uid.UID) {
	child := m.objs[childID]
	if child == nil || deleted[childID] {
		return
	}
	child.removeRev(parent)
	lastDS := len(child.ds()) == 0
	if dep && (excl || lastDS) {
		m.deleteRec(childID, deleted, order)
	}
}

// unlinkFromParents strips forward references to the victim from every
// surviving reverse parent, across all of that parent's attributes.
func (m *Model) unlinkFromParents(id uid.UID, deleted map[uid.UID]bool) {
	o := m.objs[id]
	for _, r := range append([]revRef(nil), o.Rev...) {
		if deleted[r.Parent] {
			continue
		}
		p := m.objs[r.Parent]
		if p == nil {
			continue
		}
		for attr, refs := range p.Refs {
			p.Refs[attr] = removeAll(refs, id)
		}
	}
}

// changeAttributeType mirrors the catalog's I1–I4 validity rules plus the
// instance flag rewrite. Deferred and immediate modes land in the same
// state here because the harness forces the engine's deferred replay
// after every op (see the package comment).
func (m *Model) changeAttributeType(class, attr, change string) error {
	sp := m.spec(class, attr)
	if sp == nil {
		return fmt.Errorf("model: no attr %s.%s", class, attr)
	}
	if !sp.Composite {
		return fmt.Errorf("model: %s of non-composite %s.%s", change, class, attr)
	}
	switch change {
	case "I1":
		sp.Composite = false
	case "I2":
		if !sp.Exclusive {
			return fmt.Errorf("model: I2 of already-shared %s.%s", class, attr)
		}
		sp.Exclusive = false
	case "I3":
		if !sp.Dependent {
			return fmt.Errorf("model: I3 of already-independent %s.%s", class, attr)
		}
		sp.Dependent = false
	case "I4":
		if sp.Dependent {
			return fmt.Errorf("model: I4 of already-dependent %s.%s", class, attr)
		}
		sp.Dependent = true
	default:
		return fmt.Errorf("model: unknown change %q", change)
	}
	for _, p := range m.instancesOf(class) {
		for _, childID := range p.Refs[attr] {
			child := m.objs[childID]
			if child == nil {
				continue
			}
			if change == "I1" {
				child.removeRev(p.ID)
			} else {
				child.setRevFlags(p.ID, sp.Dependent, sp.Exclusive)
			}
		}
	}
	return nil
}

func (o *modelObj) setRevFlags(parent uid.UID, dep, excl bool) {
	if i := o.findRev(parent); i >= 0 {
		o.Rev[i].Dependent = dep
		o.Rev[i].Exclusive = excl
	}
}

// makeComposite mirrors Engine.MakeComposite (D1/D2): collect every link
// through attr, verify each (dangles reject; D1 additionally rejects any
// existing composite parent and duplicate referencing; D2 rejects
// exclusive parents), then update the spec and insert reverse refs.
func (m *Model) makeComposite(class, attr string, exclusive, dependent bool) error {
	sp := m.spec(class, attr)
	if sp == nil {
		return fmt.Errorf("model: no attr %s.%s", class, attr)
	}
	if sp.Composite {
		return fmt.Errorf("model: %s.%s already composite", class, attr)
	}
	if sp.Domain == "" {
		return fmt.Errorf("model: %s.%s has a primitive domain", class, attr)
	}
	type link struct{ parent, child uid.UID }
	var links []link
	for _, p := range m.instancesOf(class) {
		for _, childID := range p.Refs[attr] {
			links = append(links, link{p.ID, childID})
		}
	}
	seen := map[uid.UID]bool{}
	for _, l := range links {
		child := m.objs[l.child]
		if child == nil {
			return fmt.Errorf("model: %v.%s dangles to %v", l.parent, attr, l.child)
		}
		if exclusive {
			if len(child.Rev) > 0 {
				return fmt.Errorf("model: D1 rejected, %v has a composite parent", l.child)
			}
			if seen[l.child] {
				return fmt.Errorf("model: D1 rejected, %v referenced more than once", l.child)
			}
			seen[l.child] = true
		} else if child.hasExclusiveRev() {
			return fmt.Errorf("model: D2 rejected, %v has an exclusive parent", l.child)
		}
	}
	sp.Composite, sp.Exclusive, sp.Dependent = true, exclusive, dependent
	for _, l := range links {
		m.objs[l.child].addRev(revRef{Parent: l.parent, Dependent: dependent, Exclusive: exclusive})
	}
	return nil
}

// makeExclusive mirrors Engine.MakeExclusive (D3): every child referenced
// through attr must have at most one composite parent (dangles are
// skipped); then the X flag is set in those children's reverse refs.
func (m *Model) makeExclusive(class, attr string) error {
	sp := m.spec(class, attr)
	if sp == nil {
		return fmt.Errorf("model: no attr %s.%s", class, attr)
	}
	if !sp.Composite || sp.Exclusive {
		return fmt.Errorf("model: D3 requires a shared composite %s.%s", class, attr)
	}
	var children []*modelObj
	seen := map[uid.UID]bool{}
	for _, p := range m.instancesOf(class) {
		for _, childID := range p.Refs[attr] {
			child := m.objs[childID]
			if child == nil {
				continue
			}
			if len(child.Rev) > 1 {
				return fmt.Errorf("model: D3 rejected, %v has %d composite parents", childID, len(child.Rev))
			}
			if !seen[childID] {
				seen[childID] = true
				children = append(children, child)
			}
		}
	}
	sp.Exclusive = true
	for _, child := range children {
		for i := range child.Rev {
			child.Rev[i].Exclusive = true
		}
	}
	return nil
}
