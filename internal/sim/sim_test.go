package sim

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/uid"
)

// TestSimInMemorySeeds is the main model-based property: random seeded
// workloads over the full op vocabulary (transactions, aborts, attach/
// detach, attribute writes, cascading deletes) must keep the engine in
// lockstep with the reference model after every single step.
func TestSimInMemorySeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			if f := Run(Config{Seed: seed, Ops: 400}); f != nil {
				t.Fatal(f.Report())
			}
		})
	}
}

// TestSimEvolutionSeeds adds schema-evolution ops (I1–I4 deferred and
// immediate, D1–D3) to the mix: the engine's lazy ApplyPending replay
// must land in the same state as the model's eager flag rewrite.
func TestSimEvolutionSeeds(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			if f := Run(Config{Seed: seed, Ops: 400, Evolution: true}); f != nil {
				t.Fatal(f.Report())
			}
		})
	}
}

// TestSimTraceRoundTrip: FormatTrace and ParseTrace are inverses over
// generated workloads, so shrunk reproducers can be saved and replayed.
func TestSimTraceRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ops := Generate(rand.New(rand.NewSource(seed)), GenConfig{Ops: 200, Evolution: true, Checkpoint: true})
		parsed, err := ParseTrace(strings.NewReader(FormatTrace(ops)))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(ops, parsed) {
			t.Fatalf("seed %d: round trip diverged", seed)
		}
	}
}

// evictSurvivingDSComponent emulates a Deletion-Rule bug: after a delete,
// it reaps a dependent-shared component even though a DS parent still
// references it — exactly the over-eager deletion the lastDS test exists
// to prevent. Stateless, so shrink replays trigger it identically.
func evictSurvivingDSComponent(eng *core.Engine, _ []uid.UID) {
	ids, err := eng.Extent(classLeaf, false)
	if err != nil {
		return
	}
	for _, id := range ids {
		o, err := eng.Get(id)
		if err != nil {
			continue
		}
		if len(o.DS()) >= 1 {
			eng.Evict(id)
			return
		}
	}
}

// TestSimCatchesDeletionRuleBug is the harness's own acceptance test: a
// deliberately introduced Deletion-Rule violation must be detected within
// 1,000 ops on a fixed seed, and the report must carry the seed plus a
// minimized trace.
func TestSimCatchesDeletionRuleBug(t *testing.T) {
	const seed = 1 // documented seed: detects the bug well within 1,000 ops
	f := Run(Config{Seed: seed, Ops: 1000, Sabotage: evictSurvivingDSComponent})
	if f == nil {
		t.Fatal("sabotaged Deletion Rule was not detected within 1000 ops")
	}
	if f.Step >= 1000 {
		t.Fatalf("bug detected only at step %d", f.Step)
	}
	report := f.Report()
	if !strings.Contains(report, "seed=1") {
		t.Errorf("report lacks the seed:\n%s", report)
	}
	if len(f.Trace) == 0 || !strings.Contains(report, "trace (") {
		t.Errorf("report lacks the minimized trace:\n%s", report)
	}
	if len(f.Trace) > 50 {
		t.Errorf("shrinking left %d ops, expected a compact reproducer", len(f.Trace))
	}
	t.Logf("detected at step %d, minimized to %d ops", f.Step, len(f.Trace))
}

// TestSimShrinkKeepsFailing: the minimized trace from a shrink must
// itself still fail when replayed — the reproducer is real.
func TestSimShrinkKeepsFailing(t *testing.T) {
	cfg := Config{Seed: 1, Ops: 600, Sabotage: evictSurvivingDSComponent}
	f := Run(cfg)
	if f == nil {
		t.Skip("sabotage not triggered at this seed/op count")
	}
	if rf := RunTrace(cfg, f.Trace); rf == nil {
		t.Fatalf("minimized trace replays clean:\n%s", f.Report())
	}
}
