package sim

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
)

// The simulation schema: one leaf class per domain ("Leaf" for set
// attributes, "Hull" for the single-valued one) and one parent class per
// reference kind of Definition 1, each with a recursive attribute. Every
// (owner class, domain class) pair appears at most once, which makes the
// engine's class-matched deferred replay and its attribute-matched
// immediate rewrite provably equivalent (see the package comment).
const (
	classLeaf = "Leaf"
	classHull = "Hull"
)

var parentClasses = []string{"DX", "IX", "DS", "IS"}

// simClassDefs returns the model class table; the harness derives the
// engine catalog definitions from the same data.
func simClassDefs() []modelClass {
	defs := []modelClass{
		{Name: classLeaf, Attrs: []attrSpec{{Name: "Tag"}}},
		{Name: classHull, Attrs: []attrSpec{{Name: "Tag"}}},
	}
	kind := map[string][2]bool{ // class -> {exclusive, dependent}
		"DX": {true, true}, "IX": {true, false}, "DS": {false, true}, "IS": {false, false},
	}
	for _, name := range parentClasses {
		k := kind[name]
		defs = append(defs, modelClass{Name: name, Attrs: []attrSpec{
			{Name: "Tag"},
			{Name: "Parts", Domain: classLeaf, SetOf: true, Composite: true, Exclusive: k[0], Dependent: k[1]},
			{Name: "Main", Domain: classHull, Composite: true, Exclusive: k[0], Dependent: k[1]},
			{Name: "Subs", Domain: name, SetOf: true, Composite: true, Exclusive: k[0], Dependent: k[1]},
		}})
	}
	return defs
}

// refDomain returns the domain class of a parent-class reference attr.
func refDomain(class, attr string) string {
	switch attr {
	case "Parts":
		return classLeaf
	case "Main":
		return classHull
	default:
		return class // Subs
	}
}

// OpKind enumerates the workload vocabulary.
type OpKind int

// The operation kinds, in trace-keyword order.
const (
	OpBegin OpKind = iota
	OpCommit
	OpAbort
	OpNew
	OpAttach
	OpDetach
	OpSetTag
	OpSetRefs
	OpDelete
	OpEvolve
	OpCheckpoint
	OpCrash
)

// OpParent is one (parent slot, attribute) pair of a make message.
type OpParent struct {
	Slot int
	Attr string
}

// Op is one workload step. Objects are named by slot — the index a
// successful OpNew assigned — so traces stay replayable after shrinking:
// an op whose slot was never assigned (its OpNew was removed or failed)
// is skipped deterministically.
type Op struct {
	Kind     OpKind
	Slot     int        // OpNew: slot to assign; others: target slot
	Class    string     // OpNew, OpEvolve
	Attr     string     // OpAttach, OpDetach, OpSetRefs, OpEvolve
	Child    int        // OpAttach/OpDetach child slot
	Tag      int64      // OpNew, OpSetTag
	Refs     []int      // OpSetRefs: referenced slots
	Parents  []OpParent // OpNew
	Change   string     // OpEvolve: I1 I2 I3 I4 D1 D2 D3
	Deferred bool       // OpEvolve I1–I4
	Dep      bool       // OpEvolve D1/D2: new dependent flag
}

// GenConfig tunes the workload generator.
type GenConfig struct {
	Ops        int
	Evolution  bool // emit I1–I4/D1–D3 ops
	Checkpoint bool // emit checkpoint ops
	Crash      bool // emit crash ops (durable runs only)
	MaxObjects int  // soft cap; deletes are forced above it (default 120)
}

// Generate produces a seeded op sequence. Liveness tracking is
// deliberately approximate (cascade victims are not tracked), so a
// fraction of ops target dead objects and exercise error paths; the
// harness requires only that engine and model fail identically.
func Generate(r *rand.Rand, cfg GenConfig) []Op {
	if cfg.MaxObjects <= 0 {
		cfg.MaxObjects = 120
	}
	g := &generator{r: r, cfg: cfg}
	for len(g.ops) < cfg.Ops {
		g.step()
	}
	if g.txnOpen {
		g.emit(Op{Kind: OpCommit})
	}
	return g.ops
}

type genSlot struct {
	class string
	live  bool
}

type generator struct {
	r       *rand.Rand
	cfg     GenConfig
	ops     []Op
	slots   []genSlot
	txnOpen bool
	txnLen  int
}

func (g *generator) emit(op Op) { g.ops = append(g.ops, op) }

func (g *generator) liveCount() int {
	n := 0
	for _, s := range g.slots {
		if s.live {
			n++
		}
	}
	return n
}

// pickSlot returns a slot of one of the given classes, favouring live
// ones but returning a dead one ~6% of the time; -1 if none exist.
func (g *generator) pickSlot(classes ...string) int {
	var live, dead []int
	for i, s := range g.slots {
		ok := false
		for _, c := range classes {
			if s.class == c {
				ok = true
				break
			}
		}
		if !ok {
			continue
		}
		if s.live {
			live = append(live, i)
		} else {
			dead = append(dead, i)
		}
	}
	if len(dead) > 0 && (len(live) == 0 || g.r.Float64() < 0.06) {
		return dead[g.r.Intn(len(dead))]
	}
	if len(live) == 0 {
		return -1
	}
	return live[g.r.Intn(len(live))]
}

func (g *generator) step() {
	if g.txnOpen {
		if g.txnLen >= 1 && g.r.Float64() < 0.25 {
			if g.r.Float64() < 0.25 {
				g.emit(Op{Kind: OpAbort})
			} else {
				g.emit(Op{Kind: OpCommit})
			}
			g.txnOpen = false
			return
		}
		g.mutation()
		g.txnLen++
		return
	}
	switch roll := g.r.Float64(); {
	case g.cfg.Crash && roll < 0.02:
		g.emit(Op{Kind: OpCrash})
	case g.cfg.Checkpoint && roll < 0.05:
		g.emit(Op{Kind: OpCheckpoint})
	case g.cfg.Evolution && roll < 0.13:
		g.evolve()
	case roll < 0.45:
		g.emit(Op{Kind: OpBegin})
		g.txnOpen = true
		g.txnLen = 0
	default:
		g.mutation()
	}
}

func (g *generator) mutation() {
	if g.liveCount() >= g.cfg.MaxObjects {
		g.delete()
		return
	}
	switch roll := g.r.Float64(); {
	case roll < 0.34 || g.liveCount() == 0:
		g.new()
	case roll < 0.54:
		g.attach()
	case roll < 0.64:
		g.detach()
	case roll < 0.74:
		g.setTag()
	case roll < 0.86:
		g.setRefs()
	default:
		g.delete()
	}
}

func (g *generator) new() {
	var class string
	switch roll := g.r.Float64(); {
	case roll < 0.35:
		class = classLeaf
	case roll < 0.5:
		class = classHull
	default:
		class = parentClasses[g.r.Intn(len(parentClasses))]
	}
	op := Op{Kind: OpNew, Slot: len(g.slots), Class: class, Tag: g.r.Int63n(1 << 30)}
	// Optional parents: Leaf slots into Parts (up to two — multi-parent
	// makes need shared attrs, so dependent/independent-shared parents
	// mostly, but exclusive ones sneak in to exercise the rejection),
	// Hull into Main, recursive classes into Subs of the same class.
	nParents := 0
	switch class {
	case classLeaf:
		nParents = g.r.Intn(3)
	default:
		nParents = g.r.Intn(2)
	}
	seen := map[int]bool{}
	for i := 0; i < nParents; i++ {
		var p int
		var attr string
		switch class {
		case classLeaf:
			if i == 0 && g.r.Float64() < 0.4 {
				p = g.pickSlot(parentClasses...)
			} else {
				p = g.pickSlot("DS", "IS")
			}
			attr = "Parts"
		case classHull:
			p = g.pickSlot(parentClasses...)
			attr = "Main"
		default:
			p = g.pickSlot(class)
			attr = "Subs"
		}
		if p < 0 || seen[p] {
			continue
		}
		seen[p] = true
		op.Parents = append(op.Parents, OpParent{Slot: p, Attr: attr})
	}
	g.emit(op)
	g.slots = append(g.slots, genSlot{class: class, live: true})
}

// parentAndChild picks a parent-class slot, an attribute, and a child slot
// of the matching domain (wrong-class ~5% of the time for error paths).
func (g *generator) parentAndChild() (int, string, int) {
	p := g.pickSlot(parentClasses...)
	if p < 0 {
		return -1, "", -1
	}
	attr := []string{"Parts", "Main", "Subs"}[g.r.Intn(3)]
	domain := refDomain(g.slots[p].class, attr)
	var c int
	if g.r.Float64() < 0.05 {
		c = g.pickSlot(classLeaf, classHull, "DX", "IX", "DS", "IS")
	} else {
		c = g.pickSlot(domain)
	}
	return p, attr, c
}

func (g *generator) attach() {
	p, attr, c := g.parentAndChild()
	if p < 0 || c < 0 {
		g.new()
		return
	}
	g.emit(Op{Kind: OpAttach, Slot: p, Attr: attr, Child: c})
}

func (g *generator) detach() {
	p, attr, c := g.parentAndChild()
	if p < 0 || c < 0 {
		g.new()
		return
	}
	g.emit(Op{Kind: OpDetach, Slot: p, Attr: attr, Child: c})
}

func (g *generator) setTag() {
	s := g.pickSlot(classLeaf, classHull, "DX", "IX", "DS", "IS")
	if s < 0 {
		g.new()
		return
	}
	g.emit(Op{Kind: OpSetTag, Slot: s, Tag: g.r.Int63n(1 << 30)})
}

func (g *generator) setRefs() {
	p := g.pickSlot(parentClasses...)
	if p < 0 {
		g.new()
		return
	}
	attr := []string{"Parts", "Main", "Subs"}[g.r.Intn(3)]
	domain := refDomain(g.slots[p].class, attr)
	max := 3
	if attr == "Main" {
		max = 1
	}
	var refs []int
	seen := map[int]bool{}
	for i, n := 0, g.r.Intn(max+1); i < n; i++ {
		var c int
		if g.r.Float64() < 0.05 {
			c = g.pickSlot(classLeaf, classHull, "DX", "IX", "DS", "IS")
		} else {
			c = g.pickSlot(domain)
		}
		if c < 0 || seen[c] {
			continue
		}
		seen[c] = true
		refs = append(refs, c)
	}
	g.emit(Op{Kind: OpSetRefs, Slot: p, Attr: attr, Refs: refs})
}

func (g *generator) delete() {
	s := g.pickSlot(classLeaf, classHull, "DX", "IX", "DS", "IS")
	if s < 0 {
		g.new()
		return
	}
	g.emit(Op{Kind: OpDelete, Slot: s})
	g.slots[s].live = false
}

func (g *generator) evolve() {
	class := parentClasses[g.r.Intn(len(parentClasses))]
	attr := []string{"Parts", "Main", "Subs"}[g.r.Intn(3)]
	change := []string{"I1", "I2", "I3", "I4", "D1", "D2", "D3"}[g.r.Intn(7)]
	op := Op{Kind: OpEvolve, Class: class, Attr: attr, Change: change}
	switch change {
	case "D1", "D2":
		op.Dep = g.r.Float64() < 0.5
	case "D3":
	default:
		op.Deferred = g.r.Float64() < 0.5
	}
	g.emit(op)
}

// FormatTrace renders ops one per line, parseable by ParseTrace.
func FormatTrace(ops []Op) string {
	var b strings.Builder
	for _, op := range ops {
		b.WriteString(formatOp(op))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatOp(op Op) string {
	switch op.Kind {
	case OpBegin:
		return "begin"
	case OpCommit:
		return "commit"
	case OpAbort:
		return "abort"
	case OpNew:
		s := fmt.Sprintf("new %d %s %d", op.Slot, op.Class, op.Tag)
		for _, p := range op.Parents {
			s += fmt.Sprintf(" %d:%s", p.Slot, p.Attr)
		}
		return s
	case OpAttach:
		return fmt.Sprintf("attach %d %s %d", op.Slot, op.Attr, op.Child)
	case OpDetach:
		return fmt.Sprintf("detach %d %s %d", op.Slot, op.Attr, op.Child)
	case OpSetTag:
		return fmt.Sprintf("settag %d %d", op.Slot, op.Tag)
	case OpSetRefs:
		s := fmt.Sprintf("setrefs %d %s", op.Slot, op.Attr)
		for _, r := range op.Refs {
			s += fmt.Sprintf(" %d", r)
		}
		return s
	case OpDelete:
		return fmt.Sprintf("delete %d", op.Slot)
	case OpEvolve:
		mode := "-"
		switch {
		case op.Change == "D1" || op.Change == "D2":
			if op.Dep {
				mode = "dep"
			} else {
				mode = "indep"
			}
		case op.Change != "D3":
			if op.Deferred {
				mode = "deferred"
			} else {
				mode = "immediate"
			}
		}
		return fmt.Sprintf("evolve %s %s %s %s", op.Class, op.Attr, op.Change, mode)
	case OpCheckpoint:
		return "checkpoint"
	case OpCrash:
		return "crash"
	default:
		return fmt.Sprintf("?%d", op.Kind)
	}
}

// ParseTrace parses the FormatTrace representation. Blank lines and
// #-comments are ignored.
func ParseTrace(r io.Reader) ([]Op, error) {
	var ops []Op
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		op, err := parseOp(text)
		if err != nil {
			return nil, fmt.Errorf("sim: trace line %d: %w", line, err)
		}
		ops = append(ops, op)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ops, nil
}

func parseOp(text string) (Op, error) {
	f := strings.Fields(text)
	atoi := func(s string) (int, error) { return strconv.Atoi(s) }
	switch f[0] {
	case "begin":
		return Op{Kind: OpBegin}, nil
	case "commit":
		return Op{Kind: OpCommit}, nil
	case "abort":
		return Op{Kind: OpAbort}, nil
	case "checkpoint":
		return Op{Kind: OpCheckpoint}, nil
	case "crash":
		return Op{Kind: OpCrash}, nil
	case "new":
		if len(f) < 4 {
			return Op{}, fmt.Errorf("new wants ≥3 args")
		}
		slot, err := atoi(f[1])
		if err != nil {
			return Op{}, err
		}
		tag, err := strconv.ParseInt(f[3], 10, 64)
		if err != nil {
			return Op{}, err
		}
		op := Op{Kind: OpNew, Slot: slot, Class: f[2], Tag: tag}
		for _, p := range f[4:] {
			ps, attr, ok := strings.Cut(p, ":")
			if !ok {
				return Op{}, fmt.Errorf("bad parent %q", p)
			}
			pslot, err := atoi(ps)
			if err != nil {
				return Op{}, err
			}
			op.Parents = append(op.Parents, OpParent{Slot: pslot, Attr: attr})
		}
		return op, nil
	case "attach", "detach":
		if len(f) != 4 {
			return Op{}, fmt.Errorf("%s wants 3 args", f[0])
		}
		p, err1 := atoi(f[1])
		c, err2 := atoi(f[3])
		if err1 != nil || err2 != nil {
			return Op{}, fmt.Errorf("bad slot in %q", text)
		}
		k := OpAttach
		if f[0] == "detach" {
			k = OpDetach
		}
		return Op{Kind: k, Slot: p, Attr: f[2], Child: c}, nil
	case "settag":
		if len(f) != 3 {
			return Op{}, fmt.Errorf("settag wants 2 args")
		}
		s, err := atoi(f[1])
		if err != nil {
			return Op{}, err
		}
		tag, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpSetTag, Slot: s, Tag: tag}, nil
	case "setrefs":
		if len(f) < 3 {
			return Op{}, fmt.Errorf("setrefs wants ≥2 args")
		}
		s, err := atoi(f[1])
		if err != nil {
			return Op{}, err
		}
		op := Op{Kind: OpSetRefs, Slot: s, Attr: f[2]}
		for _, rs := range f[3:] {
			r, err := atoi(rs)
			if err != nil {
				return Op{}, err
			}
			op.Refs = append(op.Refs, r)
		}
		return op, nil
	case "delete":
		if len(f) != 2 {
			return Op{}, fmt.Errorf("delete wants 1 arg")
		}
		s, err := atoi(f[1])
		if err != nil {
			return Op{}, err
		}
		return Op{Kind: OpDelete, Slot: s}, nil
	case "evolve":
		if len(f) != 5 {
			return Op{}, fmt.Errorf("evolve wants 4 args")
		}
		op := Op{Kind: OpEvolve, Class: f[1], Attr: f[2], Change: f[3]}
		switch f[4] {
		case "deferred":
			op.Deferred = true
		case "immediate", "-", "indep":
		case "dep":
			op.Dep = true
		default:
			return Op{}, fmt.Errorf("bad evolve mode %q", f[4])
		}
		return op, nil
	default:
		return Op{}, fmt.Errorf("unknown op %q", f[0])
	}
}
