package sim

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/schema"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// Config configures one simulation run.
type Config struct {
	// Seed drives the workload generator (and is printed in reports).
	Seed int64
	// Ops is the number of generated operations (default 500).
	Ops int
	// Durable runs against an on-disk database with per-write WAL sync;
	// crash ops then abandon the files and reopen through recovery.
	Durable bool
	// Dir is the parent directory for durable runs' temp dirs ("" = the
	// system temp dir). Every run — including every shrink replay — gets
	// a fresh subdirectory.
	Dir string
	// Evolution enables schema-evolution ops (I1–I4, D1–D3).
	Evolution bool
	// Checkpoint enables checkpoint ops.
	Checkpoint bool
	// Crash enables crash ops (ignored unless Durable).
	Crash bool
	// IntegrityEvery runs the engine-wide Integrity scan every N steps
	// (default 8). Per-object topology checks run every step regardless.
	IntegrityEvery int
	// MaxObjects caps the live population (default 120).
	MaxObjects int
	// Shards partitions the store by composite unit (0/1 = classic
	// single-shard layout). With more than one shard, the periodic
	// integrity scan additionally verifies the cross-shard invariant:
	// every object readable from exactly one shard, routing table
	// consistent, and no 2PC transaction left in doubt.
	Shards int
	// ShrinkBudget bounds the number of replays during minimization
	// (default 200).
	ShrinkBudget int
	// Sabotage, when non-nil, is called after every successful engine
	// Delete with the engine and the casualty list. Harness self-tests
	// use it to emulate engine bugs (e.g. a Deletion-Rule violation) and
	// assert the checker catches them. Keep it stateless: shrinking
	// replays the trace many times.
	Sabotage func(eng *core.Engine, deleted []uid.UID)
}

// Failure describes a divergence between engine and model (or an
// internal invariant violation), with everything needed to reproduce it.
type Failure struct {
	Seed  int64
	Step  int // index into Trace; len(Trace) = end-of-trace checks
	Op    Op
	Msg   string
	Trace []Op
}

// Report renders the failure with the seed and the (minimized) op trace.
func (f *Failure) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim failure: seed=%d step=%d op=%q\n  %s\n", f.Seed, f.Step, formatOp(f.Op), f.Msg)
	fmt.Fprintf(&b, "trace (%d ops):\n", len(f.Trace))
	for _, op := range f.Trace {
		fmt.Fprintf(&b, "  %s\n", formatOp(op))
	}
	b.WriteString("replay: save the trace and run simrunner -replay <file> with matching flags\n")
	return b.String()
}

// Run generates a workload from cfg.Seed, executes it, and shrinks any
// failure to a minimal trace. Returns nil when the run is clean.
func Run(cfg Config) *Failure {
	if cfg.Ops <= 0 {
		cfg.Ops = 500
	}
	ops := Generate(rand.New(rand.NewSource(cfg.Seed)), GenConfig{
		Ops:        cfg.Ops,
		Evolution:  cfg.Evolution,
		Checkpoint: cfg.Checkpoint,
		Crash:      cfg.Crash && cfg.Durable,
		MaxObjects: cfg.MaxObjects,
	})
	f := RunTrace(cfg, ops)
	if f == nil {
		return nil
	}
	return ShrinkFailure(cfg, ops, f)
}

// slotRec maps a trace slot to the UID the engine assigned to it.
type slotRec struct {
	id    uid.UID
	class string
	set   bool
}

type harness struct {
	cfg     Config
	dir     string
	d       *db.DB
	model   *Model // committed state
	working *Model // non-nil while a transaction is open
	tx      *txn.Txn
	slots   []slotRec
}

// RunTrace executes a fixed op sequence and returns the first failure
// (with Trace set to ops), or nil. Ops referencing slots never assigned
// — their OpNew failed or was removed by shrinking — are skipped
// deterministically on both sides.
func RunTrace(cfg Config, ops []Op) *Failure {
	h := &harness{cfg: cfg, model: newModel(simClassDefs())}
	infra := func(msg string) *Failure {
		return &Failure{Seed: cfg.Seed, Step: -1, Msg: msg, Trace: ops}
	}
	if cfg.Durable {
		dir, err := os.MkdirTemp(cfg.Dir, "simrun-")
		if err != nil {
			return infra("mkdir: " + err.Error())
		}
		h.dir = dir
		defer os.RemoveAll(dir)
	}
	if err := h.open(); err != nil {
		return infra("open: " + err.Error())
	}
	defer func() {
		if h.d != nil {
			h.d.Abandon()
		}
	}()
	maxSlot := 0
	for _, op := range ops {
		for _, s := range append([]int{op.Slot, op.Child}, op.Refs...) {
			if s > maxSlot {
				maxSlot = s
			}
		}
		for _, p := range op.Parents {
			if p.Slot > maxSlot {
				maxSlot = p.Slot
			}
		}
	}
	h.slots = make([]slotRec, maxSlot+1)
	for i, op := range ops {
		if f := h.step(i, op); f != nil {
			f.Trace = ops
			return f
		}
	}
	// End of trace: abort any open transaction, then final checks and —
	// durable runs — a final crash/recovery round asserting durability.
	n := len(ops)
	endOp := Op{Kind: OpAbort}
	if h.tx != nil {
		if err := h.tx.Abort(); err != nil {
			f := h.failOp(n, endOp, "final abort: "+err.Error())
			f.Trace = ops
			return f
		}
		h.tx, h.working = nil, nil
	}
	if f := h.check(n, endOp); f != nil {
		f.Trace = ops
		return f
	}
	if f := h.integrity(n, endOp); f != nil {
		f.Trace = ops
		return f
	}
	if h.cfg.Durable {
		if f := h.crash(n); f != nil {
			f.Trace = ops
			return f
		}
	}
	if err := h.d.Close(); err != nil {
		f := h.failOp(n, endOp, "close: "+err.Error())
		f.Trace = ops
		return f
	}
	h.d = nil
	return nil
}

func (h *harness) open() error {
	opts := db.Options{Shards: h.cfg.Shards}
	if h.cfg.Durable {
		opts.Dir = h.dir
		opts.SyncWAL = true
	}
	d, err := db.Open(opts)
	if err != nil {
		return err
	}
	if err := defineSchema(d); err != nil {
		d.Abandon()
		return err
	}
	h.d = d
	return nil
}

// defineSchema installs the simulation classes unless the catalog already
// has them (recovered databases keep their catalog).
func defineSchema(d *db.DB) error {
	if _, err := d.Catalog().Class(classLeaf); err == nil {
		return nil
	}
	for _, mc := range simClassDefs() {
		def := schema.ClassDef{Name: mc.Name}
		for _, a := range mc.Attrs {
			var spec schema.AttrSpec
			switch {
			case a.Domain == "":
				spec = schema.NewAttr(a.Name, schema.IntDomain)
			case a.SetOf:
				spec = schema.NewCompositeSetAttr(a.Name, a.Domain).
					WithExclusive(a.Exclusive).WithDependent(a.Dependent)
			default:
				spec = schema.NewCompositeAttr(a.Name, a.Domain).
					WithExclusive(a.Exclusive).WithDependent(a.Dependent)
			}
			def.Attributes = append(def.Attributes, spec)
		}
		if _, err := d.DefineClass(def); err != nil {
			return err
		}
	}
	return nil
}

func (h *harness) failOp(i int, op Op, msg string) *Failure {
	return &Failure{Seed: h.cfg.Seed, Step: i, Op: op, Msg: msg}
}

func (h *harness) view() *Model {
	if h.working != nil {
		return h.working
	}
	return h.model
}

func (h *harness) slot(i int) (slotRec, bool) {
	if i < 0 || i >= len(h.slots) || !h.slots[i].set {
		return slotRec{}, false
	}
	return h.slots[i], true
}

// step applies one op to both sides and runs the per-step checks.
// Malformed placements (begin inside a txn, commit outside one,
// evolve/checkpoint inside a txn, crash on an in-memory run) are skipped,
// deterministically, so shrunk traces replay identically.
func (h *harness) step(i int, op Op) *Failure {
	switch op.Kind {
	case OpBegin:
		if h.tx == nil {
			h.tx = h.d.Begin()
			h.working = h.model.Clone()
		}
	case OpCommit:
		if h.tx != nil {
			if err := h.tx.Commit(); err != nil {
				return h.failOp(i, op, "commit: "+err.Error())
			}
			h.model, h.working, h.tx = h.working, nil, nil
		}
	case OpAbort:
		if h.tx != nil {
			if err := h.tx.Abort(); err != nil {
				return h.failOp(i, op, "abort: "+err.Error())
			}
			h.working, h.tx = nil, nil
		}
	case OpEvolve:
		if h.tx == nil {
			if f := h.evolve(i, op); f != nil {
				return f
			}
		}
	case OpCheckpoint:
		if h.tx == nil {
			if err := h.d.Checkpoint(); err != nil {
				return h.failOp(i, op, "checkpoint: "+err.Error())
			}
		}
	case OpCrash:
		if h.cfg.Durable {
			// A crash may land mid-transaction: the open transaction is
			// simply dropped — no abort, no commit — and its WAL group is
			// left unsealed. Recovery must discard that uncommitted tail
			// and come back at the last committed model (DESIGN.md §10).
			if h.tx != nil {
				h.working, h.tx = nil, nil
			}
			if f := h.crash(i); f != nil {
				return f
			}
		}
	default:
		if f := h.mutate(i, op); f != nil {
			return f
		}
	}
	if f := h.check(i, op); f != nil {
		return f
	}
	every := h.cfg.IntegrityEvery
	if every <= 0 {
		every = 8
	}
	if i%every == 0 {
		if f := h.integrity(i, op); f != nil {
			return f
		}
	}
	return nil
}

// mutate runs one data operation through the transaction layer (an
// implicit single-op transaction when none is open) and through a clone
// of the model, then compares verdicts: both must succeed or both fail.
func (h *harness) mutate(i int, op Op) *Failure {
	t := h.tx
	implicit := t == nil
	if implicit {
		t = h.d.Begin()
	}
	w := h.view().Clone()

	var engErr, modErr error
	var mismatch string
	skip := false
	switch op.Kind {
	case OpNew:
		var parents []core.ParentSpec
		var mparents []Parent
		for _, p := range op.Parents {
			rec, ok := h.slot(p.Slot)
			if !ok {
				skip = true
				break
			}
			parents = append(parents, core.ParentSpec{Parent: rec.id, Attr: p.Attr})
			mparents = append(mparents, Parent{ID: rec.id, Class: rec.class, Attr: p.Attr})
		}
		if skip {
			break
		}
		o, err := t.New(op.Class, map[string]value.Value{"Tag": value.Int(op.Tag)}, parents...)
		engErr = err
		var id uid.UID
		if err == nil {
			id = o.UID()
		}
		modErr = w.New(id, op.Class, op.Tag, mparents)
		if engErr == nil && modErr == nil {
			h.slots[op.Slot] = slotRec{id: id, class: op.Class, set: true}
		}
	case OpAttach, OpDetach:
		p, okp := h.slot(op.Slot)
		c, okc := h.slot(op.Child)
		if !okp || !okc {
			skip = true
			break
		}
		if op.Kind == OpAttach {
			engErr = t.Attach(p.id, op.Attr, c.id)
			modErr = w.attach(p.id, op.Attr, c.id)
		} else {
			engErr = t.Detach(p.id, op.Attr, c.id)
			modErr = w.detach(p.id, op.Attr, c.id)
		}
	case OpSetTag:
		rec, ok := h.slot(op.Slot)
		if !ok {
			skip = true
			break
		}
		engErr = t.WriteAttr(rec.id, "Tag", value.Int(op.Tag))
		modErr = w.setTag(rec.id, op.Tag)
	case OpSetRefs:
		rec, ok := h.slot(op.Slot)
		if !ok {
			skip = true
			break
		}
		var refs []Ref
		var ids []uid.UID
		for _, rs := range op.Refs {
			rr, okr := h.slot(rs)
			if !okr {
				skip = true
				break
			}
			refs = append(refs, Ref{ID: rr.id, Class: rr.class})
			ids = append(ids, rr.id)
		}
		if skip {
			break
		}
		var v value.Value
		switch {
		case op.Attr != "Main":
			v = value.RefSet(ids...)
		case len(ids) == 1:
			v = value.Ref(ids[0])
		case len(ids) > 1:
			v = value.RefSet(ids...) // collection on single-valued: both sides reject
		}
		engErr = t.WriteAttr(rec.id, op.Attr, v)
		modErr = w.setRefs(rec.id, op.Attr, refs)
	case OpDelete:
		rec, ok := h.slot(op.Slot)
		if !ok {
			skip = true
			break
		}
		engDel, err := t.Delete(rec.id)
		engErr = err
		modDel, merr := w.Delete(rec.id)
		modErr = merr
		if engErr == nil && modErr == nil && !sameUIDSet(engDel, modDel) {
			mismatch = fmt.Sprintf("casualty list: engine %v, model %v",
				sortedUIDs(engDel), sortedUIDs(modDel))
		}
		if engErr == nil && h.cfg.Sabotage != nil {
			h.cfg.Sabotage(h.d.Engine(), engDel)
		}
	}

	if implicit {
		if engErr != nil || skip {
			if err := t.Abort(); err != nil {
				return h.failOp(i, op, "implicit abort: "+err.Error())
			}
		} else if err := t.Commit(); err != nil {
			return h.failOp(i, op, "implicit commit: "+err.Error())
		}
	}
	if skip {
		return nil
	}
	if (engErr == nil) != (modErr == nil) {
		return h.failOp(i, op, fmt.Sprintf("verdict mismatch: engine err=%v, model err=%v", engErr, modErr))
	}
	if mismatch != "" {
		return h.failOp(i, op, mismatch)
	}
	if engErr == nil {
		if h.working != nil {
			h.working = w
		} else {
			h.model = w
		}
	}
	return nil
}

func (h *harness) evolve(i int, op Op) *Failure {
	var engErr error
	switch op.Change {
	case "I1":
		engErr = h.d.ChangeAttributeType(op.Class, op.Attr, schema.ChangeDropComposite, op.Deferred)
	case "I2":
		engErr = h.d.ChangeAttributeType(op.Class, op.Attr, schema.ChangeToShared, op.Deferred)
	case "I3":
		engErr = h.d.ChangeAttributeType(op.Class, op.Attr, schema.ChangeToIndependent, op.Deferred)
	case "I4":
		engErr = h.d.ChangeAttributeType(op.Class, op.Attr, schema.ChangeToDependent, op.Deferred)
	case "D1":
		engErr = h.d.MakeComposite(op.Class, op.Attr, true, op.Dep)
	case "D2":
		engErr = h.d.MakeComposite(op.Class, op.Attr, false, op.Dep)
	case "D3":
		engErr = h.d.MakeExclusive(op.Class, op.Attr)
	default:
		return h.failOp(i, op, "unknown change "+op.Change)
	}
	w := h.model.Clone()
	var modErr error
	switch op.Change {
	case "D1":
		modErr = w.makeComposite(op.Class, op.Attr, true, op.Dep)
	case "D2":
		modErr = w.makeComposite(op.Class, op.Attr, false, op.Dep)
	case "D3":
		modErr = w.makeExclusive(op.Class, op.Attr)
	default:
		modErr = w.changeAttributeType(op.Class, op.Attr, op.Change)
	}
	if (engErr == nil) != (modErr == nil) {
		return h.failOp(i, op, fmt.Sprintf("evolve verdict mismatch: engine err=%v, model err=%v", engErr, modErr))
	}
	if engErr == nil {
		h.model = w
	}
	return nil
}

// crash simulates a process crash: abandon the database files without
// flushing, reopen through recovery, and require the recovered state to
// equal the model at the last committed transaction — durability (no
// committed effect lost) and atomicity (no aborted effect resurrected)
// in one comparison.
func (h *harness) crash(i int) *Failure {
	op := Op{Kind: OpCrash}
	if err := h.d.Abandon(); err != nil {
		return h.failOp(i, op, "abandon: "+err.Error())
	}
	h.d = nil
	if err := h.open(); err != nil {
		return h.failOp(i, op, "recovery failed: "+err.Error())
	}
	return h.check(i, op)
}

// check fully compares engine and model: object count, per-class extents,
// Tag values, ordered forward reference lists, reverse references with
// D/X flags, the cached partition sets, and per-object topology rules.
// Reading every object also forces the engine's deferred-evolution replay,
// keeping its lazily-repaired state aligned with the eager model.
func (h *harness) check(i int, op Op) *Failure {
	if msg := compareState(h.d.Engine(), h.view()); msg != "" {
		return h.failOp(i, op, msg)
	}
	return nil
}

// compareState fully compares engine and model state, returning "" when
// they agree and a description of the first divergence otherwise. It is
// shared by the sequential per-step check and the concurrent harness's
// quiescent-point check; the caller must guarantee no writer is active.
func compareState(eng *core.Engine, view *Model) string {
	if eng.Len() != len(view.objs) {
		return fmt.Sprintf("object count: engine=%d model=%d", eng.Len(), len(view.objs))
	}
	classNames := make([]string, 0, len(view.classes))
	for name := range view.classes {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		ext, err := eng.Extent(name, false)
		if err != nil {
			return fmt.Sprintf("extent %s: %v", name, err)
		}
		if want := view.extent(name); !equalUIDs(ext, want) {
			return fmt.Sprintf("extent %s: engine %v, model %v", name, ext, want)
		}
	}
	ids := make([]uid.UID, 0, len(view.objs))
	for id := range view.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a].Less(ids[b]) })
	for _, id := range ids {
		mo := view.objs[id]
		o, err := eng.Get(id)
		if err != nil {
			return fmt.Sprintf("get %v: %v", id, err)
		}
		tv := o.Get("Tag")
		if mo.HasTag {
			got, ok := tv.AsInt()
			if !ok || got != mo.Tag {
				return fmt.Sprintf("%v Tag: engine %v, model %d", id, tv, mo.Tag)
			}
		} else if !tv.IsNil() {
			return fmt.Sprintf("%v Tag: engine %v, model unset", id, tv)
		}
		cl := view.classes[mo.Class]
		for _, sp := range cl.Attrs {
			if sp.Domain == "" {
				continue
			}
			got := o.Get(sp.Name).Refs(nil)
			if want := mo.Refs[sp.Name]; !equalUIDs(got, want) {
				return fmt.Sprintf("%v.%s forward refs: engine %v, model %v", id, sp.Name, got, want)
			}
		}
		gotRev := make([]revRef, 0, len(o.Reverse()))
		for _, r := range o.Reverse() {
			gotRev = append(gotRev, revRef{Parent: r.Parent, Dependent: r.Dependent, Exclusive: r.Exclusive})
		}
		wantRev := append([]revRef(nil), mo.Rev...)
		sortRevs(gotRev)
		sortRevs(wantRev)
		if len(gotRev) != len(wantRev) {
			return fmt.Sprintf("%v reverse refs: engine %v, model %v", id, gotRev, wantRev)
		}
		for k := range gotRev {
			if gotRev[k] != wantRev[k] {
				return fmt.Sprintf("%v reverse refs: engine %v, model %v", id, gotRev, wantRev)
			}
		}
		parts, err := eng.Partitions(id)
		if err != nil {
			return fmt.Sprintf("partitions %v: %v", id, err)
		}
		for _, p := range []struct {
			name      string
			got       []uid.UID
			dep, excl bool
		}{
			{"IX", parts.IX, false, true},
			{"DX", parts.DX, true, true},
			{"IS", parts.IS, false, false},
			{"DS", parts.DS, true, false},
		} {
			if want := mo.partition(p.dep, p.excl); !sameUIDSet(p.got, want) {
				return fmt.Sprintf("%v %s partition: engine %v, model %v", id, p.name, p.got, want)
			}
		}
		if v := eng.CheckTopology(id); len(v) != 0 {
			return fmt.Sprintf("%v topology: %v", id, v)
		}
	}
	return ""
}

func (h *harness) integrity(i int, op Op) *Failure {
	if v := h.d.Engine().Integrity(); len(v) != 0 {
		return h.failOp(i, op, fmt.Sprintf("integrity violations: %v", v))
	}
	if h.cfg.Shards > 1 {
		if err := h.d.CheckShards(); err != nil {
			return h.failOp(i, op, "cross-shard invariant: "+err.Error())
		}
	}
	return nil
}

// reverse-ref ordering for comparisons.
func sortRevs(s []revRef) {
	sort.Slice(s, func(a, b int) bool { return s[a].Parent.Less(s[b].Parent) })
}

func sortedUIDs(s []uid.UID) []uid.UID {
	out := append([]uid.UID(nil), s...)
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}

func equalUIDs(a, b []uid.UID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameUIDSet(a, b []uid.UID) bool {
	return equalUIDs(sortedUIDs(a), sortedUIDs(b))
}
