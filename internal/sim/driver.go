package sim

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/lock"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/sexpr"
	"repro/internal/txn"
	"repro/internal/uid"
	"repro/internal/value"
)

// txnDriver is how a concurrent worker talks to the engine: directly
// through txn.Manager (embedded, the PR 5 harness), or through a real
// TCP client against an in-process orion-server (-net). The harness's
// checking — commit-order model re-execution, quiescent compares,
// snapshot history — is identical either way; only the op transport
// changes, so a divergence under -net and not embedded isolates a wire
// or session bug.
type txnDriver interface {
	// Begin opens a transaction under the given reserved identity
	// (retries reuse it so youngest-victim cannot starve them).
	Begin(id lock.TxID) error
	New(class string, tag int64, parents []core.ParentSpec) (uid.UID, error)
	Attach(parent uid.UID, attr string, child uid.UID) error
	Detach(parent uid.UID, attr string, child uid.UID) error
	SetTag(id uid.UID, tag int64) error
	SetRefs(id uid.UID, attr string, refs []uid.UID) error
	Delete(id uid.UID) ([]uid.UID, error)
	Commit() error
	Abort() error
	Close() error
}

// errNetFatal marks transport failures (broken connection, bad reply
// framing) — infrastructure problems that must fail the run outright
// rather than be scored as engine verdicts against the model.
var errNetFatal = errors.New("sim: network transport failure")

// refsValue builds the attribute value for an OpSetRefs the same way on
// both drivers: set-valued attributes always get a set (possibly empty);
// the single-valued Main gets a lone ref, nil to clear, or — with
// several refs — a set anyway, which both engine and model must reject.
func refsValue(attr string, ids []uid.UID) value.Value {
	switch {
	case attr != "Main":
		return value.RefSet(ids...)
	case len(ids) == 1:
		return value.Ref(ids[0])
	case len(ids) > 1:
		return value.RefSet(ids...)
	default:
		return value.Nil
	}
}

// ---- embedded driver ----

type localDriver struct {
	m *txn.Manager
	t *txn.Txn
}

func (d *localDriver) Begin(id lock.TxID) error {
	d.t = d.m.BeginAt(id)
	return nil
}

func (d *localDriver) New(class string, tag int64, parents []core.ParentSpec) (uid.UID, error) {
	o, err := d.t.New(class, map[string]value.Value{"Tag": value.Int(tag)}, parents...)
	if err != nil {
		return uid.Nil, err
	}
	return o.UID(), nil
}

func (d *localDriver) Attach(parent uid.UID, attr string, child uid.UID) error {
	return d.t.Attach(parent, attr, child)
}

func (d *localDriver) Detach(parent uid.UID, attr string, child uid.UID) error {
	return d.t.Detach(parent, attr, child)
}

func (d *localDriver) SetTag(id uid.UID, tag int64) error {
	return d.t.WriteAttr(id, "Tag", value.Int(tag))
}

func (d *localDriver) SetRefs(id uid.UID, attr string, refs []uid.UID) error {
	return d.t.WriteAttr(id, attr, refsValue(attr, refs))
}

func (d *localDriver) Delete(id uid.UID) ([]uid.UID, error) { return d.t.Delete(id) }
func (d *localDriver) Commit() error                        { return d.t.Commit() }
func (d *localDriver) Abort() error                         { return d.t.Abort() }
func (d *localDriver) Close() error                         { return nil }

// ---- wire driver ----

// netDriver renders each op as an s-expression program, sends it over a
// real TCP connection, and parses the rendered reply back into UIDs.
// Remote evaluation failures come back as verdict errors (deadlocks
// re-wrapped so errors.Is(err, lock.ErrDeadlock) survives the wire);
// transport failures come back wrapping errNetFatal.
type netDriver struct {
	c *client.Client

	// aborted is set when a deadlock verdict comes back: the session layer
	// aborts the victim transaction eagerly (see Interp.noteDeadlock), so
	// the harness's follow-up Abort must become a no-op instead of an
	// "(abort)" the server would reject with "no open transaction".
	aborted bool
}

func dialDriver(addr string) (*netDriver, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &netDriver{c: c}, nil
}

func (d *netDriver) do(program string) (string, error) {
	out, err := d.c.Do(program)
	if err == nil {
		return out, nil
	}
	var re *server.RemoteError
	if errors.As(err, &re) {
		if re.Code == sexpr.CodeDeadlock {
			d.aborted = true
			return "", fmt.Errorf("%s: %w", re.Msg, lock.ErrDeadlock)
		}
		return "", err // an engine verdict, scored against the model
	}
	return "", fmt.Errorf("%w: %v", errNetFatal, err)
}

func refTok(id uid.UID) string { return "#" + id.String() }

// parseRefTok parses one rendered reference ("#class:serial").
func parseRefTok(s string) (uid.UID, error) {
	if !strings.HasPrefix(s, "#") {
		return uid.Nil, fmt.Errorf("%w: expected a reference, got %q", errNetFatal, s)
	}
	var id uid.UID
	if err := id.UnmarshalText([]byte(s[1:])); err != nil {
		return uid.Nil, fmt.Errorf("%w: %v", errNetFatal, err)
	}
	return id, nil
}

// parseRefList scans every "#class:serial" token out of a rendered list
// like "[#3:1 #3:2]" (the reader has no list literal, so replies are
// scanned, not re-parsed).
func parseRefList(s string) ([]uid.UID, error) {
	var ids []uid.UID
	for _, tok := range strings.FieldsFunc(s, func(r rune) bool {
		return r == ' ' || r == '[' || r == ']' || r == '{' || r == '}'
	}) {
		if !strings.HasPrefix(tok, "#") {
			continue
		}
		id, err := parseRefTok(tok)
		if err != nil {
			return nil, err
		}
		ids = append(ids, id)
	}
	return ids, nil
}

func (d *netDriver) Begin(id lock.TxID) error {
	d.aborted = false
	_, err := d.do(fmt.Sprintf("(begin %d)", id))
	return err
}

func (d *netDriver) New(class string, tag int64, parents []core.ParentSpec) (uid.UID, error) {
	var sb strings.Builder
	fmt.Fprintf(&sb, "(make %s :Tag %d", class, tag)
	if len(parents) > 0 {
		sb.WriteString(" :parent (")
		for i, p := range parents {
			if i > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "(%s %s)", refTok(p.Parent), p.Attr)
		}
		sb.WriteByte(')')
	}
	sb.WriteByte(')')
	out, err := d.do(sb.String())
	if err != nil {
		return uid.Nil, err
	}
	return parseRefTok(out)
}

func (d *netDriver) Attach(parent uid.UID, attr string, child uid.UID) error {
	_, err := d.do(fmt.Sprintf("(attach %s %s %s)", refTok(parent), attr, refTok(child)))
	return err
}

func (d *netDriver) Detach(parent uid.UID, attr string, child uid.UID) error {
	_, err := d.do(fmt.Sprintf("(detach %s %s %s)", refTok(parent), attr, refTok(child)))
	return err
}

func (d *netDriver) SetTag(id uid.UID, tag int64) error {
	_, err := d.do(fmt.Sprintf("(set %s Tag %d)", refTok(id), tag))
	return err
}

func (d *netDriver) SetRefs(id uid.UID, attr string, refs []uid.UID) error {
	var v string
	switch {
	case attr == "Main" && len(refs) == 1:
		v = refTok(refs[0])
	case attr == "Main" && len(refs) == 0:
		v = "nil"
	default:
		toks := make([]string, len(refs))
		for i, r := range refs {
			toks[i] = refTok(r)
		}
		v = "(refs " + strings.Join(toks, " ") + ")"
	}
	_, err := d.do(fmt.Sprintf("(set %s %s %s)", refTok(id), attr, v))
	return err
}

func (d *netDriver) Delete(id uid.UID) ([]uid.UID, error) {
	out, err := d.do(fmt.Sprintf("(delete %s)", refTok(id)))
	if err != nil {
		return nil, err
	}
	return parseRefList(out)
}

func (d *netDriver) Commit() error {
	_, err := d.do("(commit)")
	return err
}

func (d *netDriver) Abort() error {
	if d.aborted {
		// The session already aborted the deadlock victim eagerly; there is
		// no open transaction left to abort.
		d.aborted = false
		return nil
	}
	_, err := d.do("(abort)")
	return err
}

func (d *netDriver) Close() error { return d.c.Close() }
