package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/uid"
	"repro/internal/value"
)

// Concurrent mode: N goroutine workers drive seeded op streams against one
// database through explicit transactions, exercising the composite-unit
// lock admission under real parallelism. Checking splits in two:
//
//   - At each commit, the committed transaction's recorded operations are
//     re-executed against the shared model under the commit mutex, in
//     commit order, and per-op verdicts (and delete casualty lists) must
//     match what the engine said during live execution. Strict 2PL makes
//     this sound: every object an op's verdict depends on stays X-locked
//     by the transaction from the op until commit, so no other committed
//     transaction can have changed it in between.
//
//   - At quiescent points (a barrier every few transactions per worker,
//     and at the end), the full engine state is compared against the model
//     with compareState, plus an Integrity scan.
//
// The commit-order sequence of transactions is also recorded as a
// slot-based trace; replaying it sequentially through RunTrace must be
// clean, which checks that the serialization the locks produced is a real
// one-at-a-time history (deterministic replay of the commit order).
//
// Workers never issue Evolve, Checkpoint, or Crash ops — those are
// whole-database operations the harness runs only at quiescent points (the
// final crash/recovery round on durable runs).

// ConcurrentConfig configures one concurrent simulation run.
type ConcurrentConfig struct {
	// Seed drives every worker's generator (worker k derives its own rng
	// from Seed and k).
	Seed int64
	// Workers is the number of concurrent writer goroutines (default 4).
	Workers int
	// Ops is the number of generated operations per worker (default 200).
	Ops int
	// Durable runs against an on-disk database with WAL sync and ends with
	// a crash/recovery round asserting the committed model survived.
	Durable bool
	// Dir is the parent directory for durable runs' temp dirs.
	Dir string
	// TxnsPerRound is the quiescent-check cadence: every worker runs this
	// many transactions, then all workers barrier and the full state is
	// checked (default 8).
	TxnsPerRound int
	// Readers is the number of read-only snapshot goroutines running
	// alongside the writers (default 0). Each reader loops: begin an MVCC
	// snapshot, look up the model state recorded for the snapshot's commit
	// boundary, and require the snapshot to match it exactly — the
	// snapshot-consistency check (every read observes exactly the state at
	// some commit boundary no newer than its snapshot seq).
	Readers int
	// SharedRoots is the number of pre-created composite roots all workers
	// mutate (default 6). They are what makes workers actually contend —
	// without them each worker would live in its own disjoint hierarchy.
	SharedRoots int
	// Net drives every worker through a real TCP client against an
	// in-process orion-server instead of calling txn.Manager directly:
	// the same op streams, model checks, and (on durable runs) crash
	// finale, but with the wire protocol and per-connection sessions in
	// the loop. The server is killed before the crash so recovery also
	// covers sessions dying mid-flight.
	Net bool
	// Recluster runs the background reclusterer (usage placement, a
	// milliseconds-scale tick, a low heat threshold) underneath the
	// workers, so online unit migrations race real transactions. Every
	// quiescent check then also verifies the store's exactly-one-location
	// invariant, and on durable runs the crash finale covers recovery of
	// a log full of interleaved mutations and OpMove records.
	Recluster bool
	// Shards partitions the store by composite unit (0/1 = classic
	// single-shard layout). Workers mutating the shared roots then
	// produce genuine cross-shard transactions (2PC on the shard WALs);
	// every quiescent check — and the durable crash finale — additionally
	// verifies the cross-shard invariant: each object readable from
	// exactly one shard, routing consistent with shard contents, and no
	// transaction left in doubt.
	Shards int
}

// ConcurrentResult reports one concurrent run.
type ConcurrentResult struct {
	Committed           int    // transactions committed
	Aborted             int    // deliberate aborts (undo under concurrency)
	DeadlockRetries     int    // transactions retried after a deadlock abort
	SnapshotReads       int    // snapshot views verified against the commit history
	ReclusterMigrations uint64 // units migrated by the background reclusterer
	Failure             *Failure
	Trace               []Op // commit-order trace, sequentially replayable
}

// execRec is one live-executed operation with everything needed to
// re-execute it against the model at commit time: resolved UIDs (slot
// indirection is gone by then) and the engine's verdict.
type execRec struct {
	op      Op
	engErr  error
	id      uid.UID  // OpNew: created UID (Nil on failure); others: target
	parents []Parent // OpNew
	childID uid.UID  // OpAttach/OpDetach
	refs    []Ref    // OpSetRefs
	deleted []uid.UID
	slot    slotRec // OpNew: assignment to apply on commit
}

type charness struct {
	cfg ConcurrentConfig
	dir string
	d   *db.DB

	// srv is the in-process TCP server net-mode workers dial (nil when
	// embedded). It shares h.d, so readers and quiescent checks still
	// look at the same engine the wire mutates.
	srv *server.Server

	// commitMu serializes commit + model re-execution + trace append, so
	// the model is applied in true commit order (conflicting transactions
	// cannot both be inside Commit: locks release only after it returns).
	commitMu sync.Mutex
	model    *Model
	trace    []Op

	// slots: [0,SharedRoots) are the shared roots, written once during
	// setup and read-only afterwards; worker k owns the half-open range
	// [SharedRoots+k*stride, SharedRoots+(k+1)*stride) and is its only
	// reader and writer.
	slots []slotRec

	// history records, per MVCC commit seq, the model state at that
	// boundary. Writers record under commitMu (Commit and the recording
	// are one critical section), so a reader that begins a snapshot at
	// seq S and then barriers on commitMu is guaranteed to find
	// history[S] — or a run failure already reported.
	histMu  sync.Mutex
	history map[uint64]*Model

	committed atomic.Int64
	aborted   atomic.Int64
	retries   atomic.Int64
	snapReads atomic.Int64

	failMu sync.Mutex
	fail   *Failure
}

func (h *charness) setFailure(f *Failure) {
	h.failMu.Lock()
	if h.fail == nil {
		h.fail = f
	}
	h.failMu.Unlock()
}

func (h *charness) failure() *Failure {
	h.failMu.Lock()
	defer h.failMu.Unlock()
	return h.fail
}

type cworker struct {
	h    *charness
	id   int
	rng  *rand.Rand
	drv  txnDriver
	txns [][]Op
	next int
}

// RunConcurrent executes one concurrent simulation and returns its report.
func RunConcurrent(cfg ConcurrentConfig) *ConcurrentResult {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 200
	}
	if cfg.TxnsPerRound <= 0 {
		cfg.TxnsPerRound = 8
	}
	if cfg.SharedRoots <= 0 {
		cfg.SharedRoots = 6
	}
	h := &charness{cfg: cfg, model: newModel(simClassDefs())}
	res := &ConcurrentResult{}
	fail := func(msg string) *ConcurrentResult {
		res.Failure = &Failure{Seed: cfg.Seed, Step: -1, Msg: msg, Trace: h.trace}
		return res
	}
	if cfg.Durable {
		dir, err := os.MkdirTemp(cfg.Dir, "simconc-")
		if err != nil {
			return fail("mkdir: " + err.Error())
		}
		h.dir = dir
		defer os.RemoveAll(dir)
	}
	if err := h.open(); err != nil {
		return fail("open: " + err.Error())
	}
	defer func() {
		if h.d != nil {
			h.d.Abandon()
		}
	}()

	workers, err := h.buildWorkers()
	if err != nil {
		return fail("setup: " + err.Error())
	}

	// Attach each worker's engine transport: direct txn.Manager calls, or
	// a dialed client session against an in-process server (-net).
	// shutdownNet is idempotent and runs both deferred (failure paths)
	// and explicitly before the crash finale — the server must be gone
	// (its sessions torn down) before Abandon rips the store out from
	// under it.
	if cfg.Net {
		if err := h.startServer(); err != nil {
			return fail("server: " + err.Error())
		}
	}
	shutdownNet := func() {
		for _, w := range workers {
			if w.drv != nil {
				w.drv.Close()
				w.drv = nil
			}
		}
		if h.srv != nil {
			h.srv.Close()
			h.srv = nil
		}
	}
	defer shutdownNet()
	for _, w := range workers {
		if cfg.Net {
			drv, err := dialDriver(h.srv.Addr())
			if err != nil {
				return fail("dial: " + err.Error())
			}
			w.drv = drv
		} else {
			w.drv = &localDriver{m: h.d.Txns()}
		}
	}

	// Snapshot readers: record the post-setup state as the baseline
	// boundary, then run until the writers drain.
	h.history = map[uint64]*Model{h.d.Engine().CommitSeq(): h.model.Clone()}
	stopReaders := make(chan struct{})
	var readerWG sync.WaitGroup
	for k := 0; k < cfg.Readers; k++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			h.runReader(stopReaders)
		}()
	}

	for h.failure() == nil {
		var wg sync.WaitGroup
		active := false
		for _, w := range workers {
			if w.next >= len(w.txns) {
				continue
			}
			active = true
			wg.Add(1)
			go func(w *cworker) {
				defer wg.Done()
				w.runRound()
			}(w)
		}
		if !active {
			break
		}
		wg.Wait()
		if f := h.quiescentCheck(); f != nil {
			h.setFailure(f)
		}
	}

	close(stopReaders)
	readerWG.Wait()

	res.Committed = int(h.committed.Load())
	res.Aborted = int(h.aborted.Load())
	res.DeadlockRetries = int(h.retries.Load())
	res.SnapshotReads = int(h.snapReads.Load())
	if cfg.Recluster {
		res.ReclusterMigrations = h.d.ReclusterStatus().Migrations
	}
	res.Trace = h.trace
	if f := h.failure(); f != nil {
		f.Trace = h.trace
		res.Failure = f
		return res
	}

	// Durable runs: crash without flushing, reopen through recovery, and
	// require the recovered state to equal the committed model. In net
	// mode the server is killed first — the crash covers the whole stack.
	shutdownNet()
	if cfg.Durable {
		if err := h.d.Abandon(); err != nil {
			return fail("abandon: " + err.Error())
		}
		h.d = nil
		if err := h.open(); err != nil {
			return fail("recovery failed: " + err.Error())
		}
		if msg := compareState(h.d.Engine(), h.model); msg != "" {
			return fail("post-recovery divergence: " + msg)
		}
		if cfg.Recluster {
			// The crash finale's log interleaves mutations with OpMove
			// records; recovery must land every object in one place.
			if err := h.d.CheckPlacement(); err != nil {
				return fail("post-recovery placement: " + err.Error())
			}
		}
		if cfg.Shards > 1 {
			// Parallel recovery resolved every prepared transaction one
			// way or the other; nothing may remain in doubt, and no
			// object may have leaked to a second shard.
			if err := h.d.CheckShards(); err != nil {
				return fail("post-recovery cross-shard invariant: " + err.Error())
			}
		}
	}
	if err := h.d.Close(); err != nil {
		return fail("close: " + err.Error())
	}
	h.d = nil

	// Deterministic replay: the commit-order trace must replay cleanly as
	// a sequential history (in memory — durability was checked above).
	if f := RunTrace(Config{Seed: cfg.Seed, Shards: cfg.Shards}, h.trace); f != nil {
		f.Msg = "serialized replay diverged: " + f.Msg
		res.Failure = f
	}
	return res
}

func (h *charness) open() error {
	opts := db.Options{Shards: h.cfg.Shards}
	if h.cfg.Durable {
		opts.Dir = h.dir
		opts.SyncWAL = true
	}
	if h.cfg.Recluster {
		// Aggressive knobs on purpose: a near-zero threshold and a
		// milliseconds tick make migrations race the workers constantly,
		// which is the point of the soak.
		opts.Placement = storage.PlacementUsage
		opts.ReclusterInterval = time.Millisecond
		opts.ReclusterHotMisses = 2
	}
	d, err := db.Open(opts)
	if err != nil {
		return err
	}
	if err := defineSchema(d); err != nil {
		d.Abandon()
		return err
	}
	h.d = d
	return nil
}

// startServer boots the in-process TCP front-end for net mode on an
// ephemeral port.
func (h *charness) startServer() error {
	srv := server.New(h.d, server.Config{
		Addr:     "127.0.0.1:0",
		MaxConns: h.cfg.Workers + 8,
	})
	if err := srv.Start(); err != nil {
		return err
	}
	h.srv = srv
	return nil
}

// buildWorkers creates the shared roots, generates and remaps each
// worker's op stream, and chunks it into 1–3-op transactions.
func (h *charness) buildWorkers() ([]*cworker, error) {
	cfg := h.cfg
	// Per-worker op streams: mutations only; evolution, checkpoints and
	// crashes are quiescent-point operations.
	streams := make([][]Op, cfg.Workers)
	stride := 0
	for k := 0; k < cfg.Workers; k++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*7919 + 1))
		var ops []Op
		for _, op := range Generate(rng, GenConfig{Ops: cfg.Ops, MaxObjects: 40}) {
			switch op.Kind {
			case OpNew, OpAttach, OpDetach, OpSetTag, OpSetRefs, OpDelete:
				ops = append(ops, op)
			}
		}
		streams[k] = ops
		for _, op := range ops {
			for _, s := range append([]int{op.Slot, op.Child}, op.Refs...) {
				if s+1 > stride {
					stride = s + 1
				}
			}
			for _, p := range op.Parents {
				if p.Slot+1 > stride {
					stride = p.Slot + 1
				}
			}
		}
	}
	h.slots = make([]slotRec, cfg.SharedRoots+cfg.Workers*stride)

	// Shared roots, cycling through the four reference-kind classes; the
	// OpNew prefix in the trace recreates them on sequential replay.
	for i := 0; i < cfg.SharedRoots; i++ {
		class := parentClasses[i%len(parentClasses)]
		tag := int64(i)
		o, err := h.d.Make(class, map[string]value.Value{"Tag": value.Int(tag)})
		if err != nil {
			return nil, err
		}
		if err := h.model.New(o.UID(), class, tag, nil); err != nil {
			return nil, err
		}
		h.slots[i] = slotRec{id: o.UID(), class: class, set: true}
		h.trace = append(h.trace, Op{Kind: OpNew, Slot: i, Class: class, Tag: tag})
	}

	workers := make([]*cworker, cfg.Workers)
	for k := 0; k < cfg.Workers; k++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(k)*7919 + 2))
		base := cfg.SharedRoots + k*stride
		remap := func(s int) int { return base + s }
		// Redirect a fraction of mutation targets at the shared roots so
		// workers contend on real composite hierarchies (and deadlock).
		redirect := func(s int) int {
			if rng.Float64() < 0.2 {
				return rng.Intn(cfg.SharedRoots)
			}
			return remap(s)
		}
		var ops []Op
		for _, op := range streams[k] {
			op.Refs = append([]int(nil), op.Refs...)
			op.Parents = append([]OpParent(nil), op.Parents...)
			for i := range op.Refs {
				op.Refs[i] = remap(op.Refs[i])
			}
			switch op.Kind {
			case OpNew:
				op.Slot = remap(op.Slot)
				for i := range op.Parents {
					op.Parents[i].Slot = redirect(op.Parents[i].Slot)
				}
			case OpAttach, OpDetach:
				op.Slot = redirect(op.Slot)
				op.Child = remap(op.Child)
			case OpSetTag:
				op.Slot = redirect(op.Slot)
			default: // OpSetRefs, OpDelete stay in the worker's range
				op.Slot = remap(op.Slot)
			}
			ops = append(ops, op)
		}
		// Chunk into explicit transactions of 1–3 ops.
		var txns [][]Op
		for len(ops) > 0 {
			n := 1 + rng.Intn(3)
			if n > len(ops) {
				n = len(ops)
			}
			txns = append(txns, ops[:n])
			ops = ops[n:]
		}
		workers[k] = &cworker{h: h, id: k, rng: rng, txns: txns}
	}
	return workers, nil
}

func (h *charness) historyAt(seq uint64) *Model {
	h.histMu.Lock()
	defer h.histMu.Unlock()
	return h.history[seq]
}

// runReader loops begin-snapshot / verify / release until stop closes.
// Verification is the snapshot-consistency check: the snapshot must equal
// the model state recorded at its commit boundary, no matter how many
// writers are mid-transaction (or mid-commit) around it.
func (h *charness) runReader(stop <-chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		if h.failure() != nil {
			return
		}
		snap := h.d.Txns().BeginSnapshot()
		seq := snap.Seq()
		view := h.historyAt(seq)
		if view == nil {
			// The committer that installed boundary seq still holds
			// commitMu (recording happens inside the commit critical
			// section); barrier on it and look again.
			h.commitMu.Lock()
			h.commitMu.Unlock() //nolint:staticcheck // empty section used as a barrier
			view = h.historyAt(seq)
		}
		if view == nil {
			snap.Release()
			if h.failure() == nil {
				h.setFailure(&Failure{Seed: h.cfg.Seed, Step: -1,
					Msg: fmt.Sprintf("reader: snapshot seq %d matches no recorded commit boundary", seq)})
			}
			return
		}
		if msg := compareSnapshotState(snap, view); msg != "" {
			snap.Release()
			h.setFailure(&Failure{Seed: h.cfg.Seed, Step: -1,
				Msg: fmt.Sprintf("snapshot divergence at seq %d: %s", seq, msg)})
			return
		}
		snap.Release()
		h.snapReads.Add(1)
		time.Sleep(200 * time.Microsecond) // yield so readers don't starve writers
	}
}

// compareSnapshotState is compareState through a snapshot handle: object
// count, Tag values, ordered forward reference lists, reverse references
// with D/X flags, and partition sets, all resolved at the snapshot's
// boundary. Extents and topology scans are engine-level (live-state)
// checks and stay with quiescentCheck.
func compareSnapshotState(snap *core.Snapshot, view *Model) string {
	if snap.Len() != len(view.objs) {
		return fmt.Sprintf("object count: snapshot=%d model=%d", snap.Len(), len(view.objs))
	}
	ids := make([]uid.UID, 0, len(view.objs))
	for id := range view.objs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a].Less(ids[b]) })
	for _, id := range ids {
		mo := view.objs[id]
		o, err := snap.Get(id)
		if err != nil {
			return fmt.Sprintf("get %v: %v", id, err)
		}
		tv := o.Get("Tag")
		if mo.HasTag {
			got, ok := tv.AsInt()
			if !ok || got != mo.Tag {
				return fmt.Sprintf("%v Tag: snapshot %v, model %d", id, tv, mo.Tag)
			}
		} else if !tv.IsNil() {
			return fmt.Sprintf("%v Tag: snapshot %v, model unset", id, tv)
		}
		cl := view.classes[mo.Class]
		for _, sp := range cl.Attrs {
			if sp.Domain == "" {
				continue
			}
			got := o.Get(sp.Name).Refs(nil)
			if want := mo.Refs[sp.Name]; !equalUIDs(got, want) {
				return fmt.Sprintf("%v.%s forward refs: snapshot %v, model %v", id, sp.Name, got, want)
			}
		}
		gotRev := make([]revRef, 0, len(o.Reverse()))
		for _, r := range o.Reverse() {
			gotRev = append(gotRev, revRef{Parent: r.Parent, Dependent: r.Dependent, Exclusive: r.Exclusive})
		}
		wantRev := append([]revRef(nil), mo.Rev...)
		sortRevs(gotRev)
		sortRevs(wantRev)
		if len(gotRev) != len(wantRev) {
			return fmt.Sprintf("%v reverse refs: snapshot %v, model %v", id, gotRev, wantRev)
		}
		for k := range gotRev {
			if gotRev[k] != wantRev[k] {
				return fmt.Sprintf("%v reverse refs: snapshot %v, model %v", id, gotRev, wantRev)
			}
		}
		parts, err := snap.Partitions(id)
		if err != nil {
			return fmt.Sprintf("partitions %v: %v", id, err)
		}
		for _, p := range []struct {
			name      string
			got       []uid.UID
			dep, excl bool
		}{
			{"IX", parts.IX, false, true},
			{"DX", parts.DX, true, true},
			{"IS", parts.IS, false, false},
			{"DS", parts.DS, true, false},
		} {
			if want := mo.partition(p.dep, p.excl); !sameUIDSet(p.got, want) {
				return fmt.Sprintf("%v %s partition: snapshot %v, model %v", id, p.name, p.got, want)
			}
		}
	}
	return ""
}

// quiescentCheck runs with no worker active: full state compare plus the
// engine-wide integrity scan.
func (h *charness) quiescentCheck() *Failure {
	if msg := compareState(h.d.Engine(), h.model); msg != "" {
		return &Failure{Seed: h.cfg.Seed, Step: -1, Msg: "quiescent divergence: " + msg}
	}
	if v := h.d.Engine().Integrity(); len(v) != 0 {
		return &Failure{Seed: h.cfg.Seed, Step: -1, Msg: fmt.Sprintf("integrity violations: %v", v)}
	}
	if h.cfg.Recluster {
		// Zero lost objects: however many units the background reclusterer
		// has migrated (or is migrating — the check serializes with the
		// move phase), every object is readable from exactly one location.
		if err := h.d.CheckPlacement(); err != nil {
			return &Failure{Seed: h.cfg.Seed, Step: -1, Msg: "placement check: " + err.Error()}
		}
	}
	if h.cfg.Shards > 1 {
		// At quiescence no 2PC transaction is mid-flight, so the in-doubt
		// set must be empty and routing must match shard contents exactly.
		if err := h.d.CheckShards(); err != nil {
			return &Failure{Seed: h.cfg.Seed, Step: -1, Msg: "cross-shard invariant: " + err.Error()}
		}
	}
	return nil
}

func (w *cworker) runRound() {
	for n := 0; n < w.h.cfg.TxnsPerRound && w.next < len(w.txns); n++ {
		if w.h.failure() != nil {
			return
		}
		if f := w.runTxn(w.txns[w.next]); f != nil {
			w.h.setFailure(f)
			return
		}
		w.next++
	}
}

func (w *cworker) fail(op Op, msg string) *Failure {
	return &Failure{Seed: w.h.cfg.Seed, Step: -1, Op: op,
		Msg: fmt.Sprintf("worker %d: %s", w.id, msg)}
}

// runTxn executes one transaction, retrying from scratch when the lock
// manager picks it as a deadlock victim (its undo has already rolled the
// partial effects back, so a fresh attempt starts clean). Retries keep
// the first attempt's transaction identity so the youngest-victim policy
// cannot starve a retrier that keeps losing to newer transactions.
func (w *cworker) runTxn(ops []Op) *Failure {
	const maxAttempts = 8
	id := w.h.d.Txns().Reserve()
	for attempt := 0; ; attempt++ {
		retry, f := w.attemptTxn(id, ops)
		if f != nil {
			return f
		}
		if !retry {
			return nil
		}
		w.h.retries.Add(1)
		if attempt+1 >= maxAttempts {
			return w.fail(Op{}, fmt.Sprintf("transaction still deadlocking after %d attempts", maxAttempts))
		}
		// Exponential backoff: an immediate retry can win the scheduler
		// race against the parked survivor and re-form the identical
		// cycle — with itself as the victim again — until the attempt
		// budget is gone.
		time.Sleep(time.Duration(1<<attempt) * time.Millisecond)
	}
}

// resolve looks a slot up through the transaction-local overlay first:
// OpNew assignments become visible to later ops of the same transaction
// but reach the shared table only on commit.
func (w *cworker) resolve(overlay map[int]slotRec, s int) (slotRec, bool) {
	if rec, ok := overlay[s]; ok {
		return rec, true
	}
	if s < 0 || s >= len(w.h.slots) || !w.h.slots[s].set {
		return slotRec{}, false
	}
	return w.h.slots[s], true
}

func (w *cworker) attemptTxn(id lock.TxID, ops []Op) (retry bool, f *Failure) {
	h := w.h
	if err := w.drv.Begin(id); err != nil {
		return false, w.fail(Op{}, "begin: "+err.Error())
	}
	overlay := map[int]slotRec{}
	var recs []execRec

	abortForRetry := func() (bool, *Failure) {
		if err := w.drv.Abort(); err != nil {
			return false, w.fail(Op{}, "abort after deadlock: "+err.Error())
		}
		return true, nil
	}

	for _, op := range ops {
		rec := execRec{op: op}
		skip := false
		switch op.Kind {
		case OpNew:
			var parents []core.ParentSpec
			for _, p := range op.Parents {
				pr, ok := w.resolve(overlay, p.Slot)
				if !ok {
					skip = true
					break
				}
				parents = append(parents, core.ParentSpec{Parent: pr.id, Attr: p.Attr})
				rec.parents = append(rec.parents, Parent{ID: pr.id, Class: pr.class, Attr: p.Attr})
			}
			if skip {
				break
			}
			nid, err := w.drv.New(op.Class, op.Tag, parents)
			rec.engErr = err
			if err == nil {
				rec.id = nid
				rec.slot = slotRec{id: nid, class: op.Class, set: true}
				overlay[op.Slot] = rec.slot
			}
		case OpAttach, OpDetach:
			p, okp := w.resolve(overlay, op.Slot)
			c, okc := w.resolve(overlay, op.Child)
			if !okp || !okc {
				skip = true
				break
			}
			rec.id, rec.childID = p.id, c.id
			if op.Kind == OpAttach {
				rec.engErr = w.drv.Attach(p.id, op.Attr, c.id)
			} else {
				rec.engErr = w.drv.Detach(p.id, op.Attr, c.id)
			}
		case OpSetTag:
			r, ok := w.resolve(overlay, op.Slot)
			if !ok {
				skip = true
				break
			}
			rec.id = r.id
			rec.engErr = w.drv.SetTag(r.id, op.Tag)
		case OpSetRefs:
			r, ok := w.resolve(overlay, op.Slot)
			if !ok {
				skip = true
				break
			}
			var ids []uid.UID
			for _, rs := range op.Refs {
				rr, okr := w.resolve(overlay, rs)
				if !okr {
					skip = true
					break
				}
				rec.refs = append(rec.refs, Ref{ID: rr.id, Class: rr.class})
				ids = append(ids, rr.id)
			}
			if skip {
				break
			}
			rec.id = r.id
			// refsValue semantics: a collection on the single-valued
			// Main is sent anyway — both engine and model must reject it.
			rec.engErr = w.drv.SetRefs(r.id, op.Attr, ids)
		case OpDelete:
			r, ok := w.resolve(overlay, op.Slot)
			if !ok {
				skip = true
				break
			}
			rec.id = r.id
			rec.deleted, rec.engErr = w.drv.Delete(r.id)
		}
		if skip {
			continue
		}
		if rec.engErr != nil && errors.Is(rec.engErr, errNetFatal) {
			return false, w.fail(op, "transport: "+rec.engErr.Error())
		}
		if rec.engErr != nil && errors.Is(rec.engErr, lock.ErrDeadlock) {
			return abortForRetry()
		}
		recs = append(recs, rec)
	}

	// Deliberate aborts exercise undo interleaved with other writers.
	if w.rng.Float64() < 0.15 {
		if err := w.drv.Abort(); err != nil {
			return false, w.fail(Op{}, "abort: "+err.Error())
		}
		h.aborted.Add(1)
		return false, nil
	}

	h.commitMu.Lock()
	defer h.commitMu.Unlock()
	if err := w.drv.Commit(); err != nil {
		return false, w.fail(Op{}, "commit: "+err.Error())
	}
	// Re-execute against the model in commit order and compare verdicts.
	// Like the sequential harness, each op gets a fresh clone that is kept
	// only on success — a failing model op may leave partial effects.
	clone := h.model
	for _, rec := range recs {
		next := clone.Clone()
		var modErr error
		var mismatch string
		switch rec.op.Kind {
		case OpNew:
			modErr = next.New(rec.id, rec.op.Class, rec.op.Tag, rec.parents)
		case OpAttach:
			modErr = next.attach(rec.id, rec.op.Attr, rec.childID)
		case OpDetach:
			modErr = next.detach(rec.id, rec.op.Attr, rec.childID)
		case OpSetTag:
			modErr = next.setTag(rec.id, rec.op.Tag)
		case OpSetRefs:
			modErr = next.setRefs(rec.id, rec.op.Attr, rec.refs)
		case OpDelete:
			var modDel []uid.UID
			modDel, modErr = next.Delete(rec.id)
			if rec.engErr == nil && modErr == nil && !sameUIDSet(rec.deleted, modDel) {
				mismatch = fmt.Sprintf("casualty list: engine %v, model %v",
					sortedUIDs(rec.deleted), sortedUIDs(modDel))
			}
		}
		if (rec.engErr == nil) != (modErr == nil) {
			return false, w.fail(rec.op, fmt.Sprintf("commit-order verdict mismatch: engine err=%v, model err=%v",
				rec.engErr, modErr))
		}
		if mismatch != "" {
			return false, w.fail(rec.op, mismatch)
		}
		if modErr == nil {
			clone = next
		}
	}
	h.model = clone
	// Record the model at this transaction's commit boundary for the
	// snapshot readers. Still under commitMu: Commit installed the version
	// boundary, so CommitSeq is exactly this transaction's seq (or
	// unchanged if it had no effective writes — the overwrite is then a
	// no-op state-wise).
	h.histMu.Lock()
	h.history[h.d.Engine().CommitSeq()] = clone.Clone()
	h.histMu.Unlock()
	h.trace = append(h.trace, Op{Kind: OpBegin})
	h.trace = append(h.trace, ops...)
	h.trace = append(h.trace, Op{Kind: OpCommit})
	for s, rec := range overlay {
		h.slots[s] = rec
	}
	h.committed.Add(1)
	return false, nil
}
