package sim

import "testing"

// TestSimShardedSeeds is the sharded-mode oracle run: the same random
// workloads as TestSimInMemorySeeds, but with the store partitioned
// across 4 shards. The model is oblivious to sharding, so lockstep
// equality proves the shard routing is invisible to the data model; the
// periodic integrity scan adds the cross-shard invariant (every object
// readable from exactly one shard, no in-doubt 2PC residue).
func TestSimShardedSeeds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			if f := Run(Config{Seed: seed, Ops: 400, Shards: 4}); f != nil {
				t.Fatal(f.Report())
			}
		})
	}
}

// TestSimShardedDurableCrash adds durability and crash ops: every crash
// abandons 4 shard WALs mid-workload and recovery replays them in
// parallel, resolving any cross-shard transaction caught between its
// prepare and decision records.
func TestSimShardedDurableCrash(t *testing.T) {
	if testing.Short() {
		t.Skip("durable sharded sim skipped in -short")
	}
	for seed := int64(31); seed <= 33; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			t.Parallel()
			if f := Run(Config{Seed: seed, Ops: 250, Durable: true, Crash: true, Checkpoint: true, Dir: t.TempDir(), Shards: 4}); f != nil {
				t.Fatal(f.Report())
			}
		})
	}
}

// TestConcurrentSharded: concurrent writers over a 4-shard store. The
// shared roots scatter across shards, so transactions touching two of
// them exercise the 2PC commit path under real contention; quiescent
// checks verify the cross-shard invariant between rounds.
func TestConcurrentSharded(t *testing.T) {
	for seed := int64(41); seed <= 42; seed++ {
		res := RunConcurrent(ConcurrentConfig{Seed: seed, Workers: 4, Ops: 120, Shards: 4})
		if res.Failure != nil {
			t.Fatalf("seed %d: %s", seed, res.Failure.Report())
		}
		if res.Committed == 0 {
			t.Fatalf("seed %d: no transactions committed", seed)
		}
	}
}

// TestConcurrentShardedDurable is the full sharded soak: concurrent
// writers, on-disk 4-shard store, crash finale with parallel recovery,
// and the post-recovery cross-shard invariant.
func TestConcurrentShardedDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("durable sharded soak skipped in -short")
	}
	res := RunConcurrent(ConcurrentConfig{Seed: 47, Workers: 4, Ops: 100, Durable: true, Dir: t.TempDir(), Shards: 4})
	if res.Failure != nil {
		t.Fatal(res.Failure.Report())
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
}
