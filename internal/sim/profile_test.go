package sim

import (
	"bytes"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/uid"
	"repro/internal/value"
)

// profHarness pairs a database with the sim model so profiled engine
// operations can be checked against counts the model derives
// independently.
type profHarness struct {
	d *db.DB
	m *Model
}

func newProfHarness(t *testing.T, opts db.Options) *profHarness {
	t.Helper()
	d, err := db.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	if err := defineSchema(d); err != nil {
		t.Fatal(err)
	}
	return &profHarness{d: d, m: newModel(simClassDefs())}
}

// mk creates an object on both sides and returns its UID.
func (h *profHarness) mk(t *testing.T, class string, tag int64, parents ...Parent) uid.UID {
	t.Helper()
	specs := make([]core.ParentSpec, len(parents))
	for i, p := range parents {
		specs[i] = core.ParentSpec{Parent: p.ID, Attr: p.Attr}
	}
	o, err := h.d.Make(class, map[string]value.Value{"Tag": value.Int(tag)}, specs...)
	if err != nil {
		t.Fatalf("make %s: %v", class, err)
	}
	if err := h.m.New(o.UID(), class, tag, parents); err != nil {
		t.Fatalf("model new %s: %v", class, err)
	}
	return o.UID()
}

// modelComponents computes the component closure of root by BFS over the
// model's composite-flagged references — the model's own bookkeeping,
// independent of the engine walker being profiled.
func (h *profHarness) modelComponents(t *testing.T, root uid.UID) []uid.UID {
	t.Helper()
	seen := map[uid.UID]bool{root: true}
	queue := []uid.UID{root}
	var out []uid.UID
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		o := h.m.objs[id]
		if o == nil {
			t.Fatalf("model: no object %v", id)
		}
		for _, a := range h.m.classes[o.Class].Attrs {
			if !a.Composite {
				continue
			}
			for _, c := range o.Refs[a.Name] {
				if !seen[c] {
					seen[c] = true
					out = append(out, c)
					queue = append(queue, c)
				}
			}
		}
	}
	return out
}

func sortUIDs(ids []uid.UID) []uid.UID {
	out := append([]uid.UID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TestProfileMatchesModelTraversal: a profiled ComponentsOf must visit
// exactly the objects the model's independent BFS closure predicts —
// result set equal to the closure, objects-visited equal to closure
// size plus the root, and every visit accounted for by the plan cache.
// A second identical run must be all cache hits.
func TestProfileMatchesModelTraversal(t *testing.T) {
	h := newProfHarness(t, db.Options{})
	root := h.mk(t, "DX", 1)
	h.mk(t, "Hull", 2, Parent{ID: root, Class: "DX", Attr: "Main"})
	for i := int64(0); i < 3; i++ {
		h.mk(t, "Leaf", 10+i, Parent{ID: root, Class: "DX", Attr: "Parts"})
	}
	sub := h.mk(t, "DX", 3, Parent{ID: root, Class: "DX", Attr: "Subs"})
	h.mk(t, "Hull", 4, Parent{ID: sub, Class: "DX", Attr: "Main"})
	h.mk(t, "Leaf", 20, Parent{ID: sub, Class: "DX", Attr: "Parts"})

	want := h.modelComponents(t, root)
	p := obs.NewProfCtx("components-of")
	got, err := h.d.ComponentsOf(root, core.QueryOpts{Prof: p})
	if err != nil {
		t.Fatal(err)
	}
	p.Finish()

	wantS, gotS := sortUIDs(want), sortUIDs(got)
	if len(wantS) != len(gotS) {
		t.Fatalf("closure size: engine %d, model %d", len(gotS), len(wantS))
	}
	for i := range wantS {
		if wantS[i] != gotS[i] {
			t.Fatalf("closure member %d: engine %v, model %v", i, gotS[i], wantS[i])
		}
	}
	c := p.Counts()
	if wantVisits := uint64(1 + len(want)); c.ObjectsVisited != wantVisits {
		t.Fatalf("objects visited: profile says %d, model says %d", c.ObjectsVisited, wantVisits)
	}
	// The plan cache is consulted once per distinct class the walk
	// reaches; the model knows that set independently.
	classes := map[string]bool{h.m.objs[root].Class: true}
	for _, id := range want {
		classes[h.m.objs[id].Class] = true
	}
	if got, wantC := c.CacheHits+c.CacheMisses, uint64(len(classes)); got != wantC {
		t.Fatalf("cache consults (%d hit + %d miss) != %d distinct classes",
			c.CacheHits, c.CacheMisses, wantC)
	}
	if c.CacheMisses == 0 {
		t.Fatal("first traversal should miss the plan cache at least once")
	}

	// The plan cache is warm now: a second profiled run must be all hits.
	p2 := obs.NewProfCtx("components-of-warm")
	if _, err := h.d.ComponentsOf(root, core.QueryOpts{Prof: p2}); err != nil {
		t.Fatal(err)
	}
	p2.Finish()
	c2 := p2.Counts()
	if c2.CacheMisses != 0 || c2.CacheHits != uint64(len(classes)) {
		t.Fatalf("warm run: want all %d consults to hit, got %d hit / %d miss",
			len(classes), c2.CacheHits, c2.CacheMisses)
	}
}

// TestProfilePoolAndWALAttribution: on a durable database, the pool
// hits/misses and page reads a profiled mutation reports must equal the
// buffer pool's own counter deltas over the same window, and the WAL
// bytes must be non-zero.
func TestProfilePoolAndWALAttribution(t *testing.T) {
	h := newProfHarness(t, db.Options{Dir: t.TempDir(), SyncWAL: false})
	root := h.mk(t, "IX", 1)
	leaf := h.mk(t, "Leaf", 2, Parent{ID: root, Class: "IX", Attr: "Parts"})

	before := h.d.Pool().Stats()
	p := obs.NewProfCtx("set-tag")
	h.d.AttachProf(p)
	err := h.d.Set(leaf, "Tag", value.Int(42))
	h.d.AttachProf(nil)
	p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	after := h.d.Pool().Stats()

	c := p.Counts()
	if c.WALAppends == 0 || c.WALBytes == 0 {
		t.Fatalf("durable mutation attributed no WAL cost: %+v", c)
	}
	if dh := after.Hits - before.Hits; c.PoolHits != dh {
		t.Fatalf("pool hits: profile says %d, pool counters say %d", c.PoolHits, dh)
	}
	if dm := after.Misses - before.Misses; c.PoolMisses != dm {
		t.Fatalf("pool misses: profile says %d, pool counters say %d", c.PoolMisses, dm)
	}
	if dr := after.Reads - before.Reads; c.PagesRead != dr {
		t.Fatalf("pages read: profile says %d, pool counters say %d", c.PagesRead, dr)
	}
}

// TestProfileSnapshotVersionWalk: a snapshot pinned below N later
// committed rewrites of one object must walk exactly N+1 versions to
// resolve it, and the profile must say so.
func TestProfileSnapshotVersionWalk(t *testing.T) {
	// GC disabled so the version chain keeps every rewrite.
	h := newProfHarness(t, db.Options{MVCCGCInterval: -1})
	obj := h.mk(t, "Leaf", 1)

	snap := h.d.BeginSnapshot()
	defer snap.Release()
	const rewrites = 3
	for i := int64(0); i < rewrites; i++ {
		if err := h.d.Set(obj, "Tag", value.Int(100+i)); err != nil {
			t.Fatal(err)
		}
	}

	p := obs.NewProfCtx("snapshot-get")
	snap.SetProf(p)
	o, err := snap.Get(obj)
	snap.SetProf(nil)
	p.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if tag := o.Get("Tag"); !tag.Equal(value.Int(1)) {
		t.Fatalf("snapshot read leaked a post-pin version: Tag=%v", tag)
	}
	c := p.Counts()
	if want := uint64(rewrites + 1); c.VersionsWalked != want {
		t.Fatalf("versions walked: profile says %d, chain depth says %d", c.VersionsWalked, want)
	}
	if c.ObjectsVisited != 1 {
		t.Fatalf("objects visited: want 1, got %d", c.ObjectsVisited)
	}
}

// TestProfileLockWait: a profiled transaction that blocks behind a
// conflicting writer must attribute the wait — count and duration — to
// its own ProfCtx via the lock manager's per-transaction registration.
func TestProfileLockWait(t *testing.T) {
	h := newProfHarness(t, db.Options{})
	root := h.mk(t, "IX", 1)

	t1 := h.d.Begin()
	if err := t1.WriteAttr(root, "Tag", value.Int(2)); err != nil {
		t.Fatal(err)
	}

	t2 := h.d.Begin()
	p := t2.Profile()
	const hold = 30 * time.Millisecond
	go func() {
		time.Sleep(hold)
		t1.Commit()
	}()
	if err := t2.WriteAttr(root, "Tag", value.Int(3)); err != nil {
		t.Fatal(err)
	}
	c := p.Counts()
	if c.LockWaits == 0 {
		t.Fatal("blocked transaction attributed no lock waits")
	}
	if c.LockWaitNs < int64(hold/3) {
		t.Fatalf("lock wait ns too small to be the observed block: %d", c.LockWaitNs)
	}
	if len(p.LockWaits()) == 0 {
		t.Fatal("per-mode lock wait map empty")
	}
	if err := t2.Commit(); err != nil {
		t.Fatal(err)
	}
}

// syncBuf is a race-safe bytes.Buffer for capturing flight dumps written
// from lock-manager goroutines.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDeadlockDumpsFlightRecorder forces the canonical opposite-order
// deadlock and checks the black box: the victim abort must leave a
// lock.deadlock record in the flight ring and dump a non-empty record
// set to the recorder's writer.
func TestDeadlockDumpsFlightRecorder(t *testing.T) {
	h := newProfHarness(t, db.Options{})
	f := h.d.Observability().Flight()
	var buf syncBuf
	f.SetWriter(&buf)

	r1 := h.mk(t, "IX", 1)
	r2 := h.mk(t, "IX", 2)
	l1 := h.mk(t, "Leaf", 3)
	l2 := h.mk(t, "Leaf", 4)
	l3 := h.mk(t, "Leaf", 5)
	l4 := h.mk(t, "Leaf", 6)

	t1 := h.d.Begin()
	t2 := h.d.Begin() // younger: the chosen victim
	if err := t1.Attach(r1, "Parts", l1); err != nil {
		t.Fatal(err)
	}
	if err := t2.Attach(r2, "Parts", l2); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- t1.Attach(r2, "Parts", l3) }()
	err2 := t2.Attach(r1, "Parts", l4)
	if !errors.Is(err2, lock.ErrDeadlock) {
		t.Fatalf("expected the victim to fail with ErrDeadlock, got %v", err2)
	}
	if err := t2.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("survivor's attach failed: %v", err)
	}
	if err := t1.Abort(); err != nil {
		t.Fatal(err)
	}

	var sawDeadlock bool
	recs := f.Records()
	for _, r := range recs {
		if r.Op == "lock.deadlock" {
			sawDeadlock = true
		}
	}
	if !sawDeadlock {
		t.Fatalf("flight ring has no lock.deadlock record among %d records", len(recs))
	}
	if len(recs) == 0 {
		t.Fatal("flight ring empty after deadlock abort")
	}
	out := buf.String()
	if !bytes.Contains([]byte(out), []byte("deadlock-victim abort")) {
		t.Fatalf("flight dump missing the deadlock trigger reason:\n%s", out)
	}
	if !bytes.Contains([]byte(out), []byte("lock.deadlock")) {
		t.Fatalf("flight dump does not include the deadlock record:\n%s", out)
	}
}
