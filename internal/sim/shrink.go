package sim

// ShrinkFailure minimizes a failing trace with ddmin-style chunk removal:
// repeatedly try deleting contiguous chunks (halving the chunk size when
// a pass removes nothing) and keep any candidate that still fails — not
// necessarily with the same message; any divergence is a bug worth the
// smaller reproducer. Replays are bounded by cfg.ShrinkBudget. Returns
// the failure of the smallest failing trace, with Trace set to it.
func ShrinkFailure(cfg Config, ops []Op, orig *Failure) *Failure {
	budget := cfg.ShrinkBudget
	if budget <= 0 {
		budget = 200
	}
	best, bestF := ops, orig
	chunk := (len(best) + 1) / 2
	for chunk >= 1 && budget > 0 {
		removed := false
		for start := 0; start < len(best) && budget > 0; {
			end := start + chunk
			if end > len(best) {
				end = len(best)
			}
			if end-start == len(best) {
				break // never try the empty trace
			}
			cand := make([]Op, 0, len(best)-(end-start))
			cand = append(cand, best[:start]...)
			cand = append(cand, best[end:]...)
			budget--
			if f := RunTrace(cfg, cand); f != nil {
				best, bestF = cand, f
				removed = true
				// The ops after start shifted into place; retry there.
			} else {
				start = end
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk /= 2
		} else if max := (len(best) + 1) / 2; chunk > max {
			chunk = max
		}
	}
	bestF.Trace = best
	return bestF
}
