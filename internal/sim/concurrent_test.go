package sim

import "testing"

// TestConcurrentHarness runs the concurrent simulation across a few seeds
// in-memory: N writer goroutines, per-commit model re-execution in commit
// order, quiescent full-state checks between rounds, and a final
// serialized replay of the commit-order trace.
func TestConcurrentHarness(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		res := RunConcurrent(ConcurrentConfig{Seed: seed, Workers: 4, Ops: 120})
		if res.Failure != nil {
			t.Fatalf("seed %d: %s", seed, res.Failure.Report())
		}
		if res.Committed == 0 {
			t.Fatalf("seed %d: no transactions committed", seed)
		}
	}
}

// TestConcurrentHarnessDurable runs the concurrent simulation against an
// on-disk database, finishing with the harness's crash-recovery check:
// the WAL is abandoned without a clean close, reopened, and the replayed
// state compared against the model.
func TestConcurrentHarnessDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("durable concurrent soak skipped in -short")
	}
	res := RunConcurrent(ConcurrentConfig{Seed: 7, Workers: 4, Ops: 100, Durable: true, Dir: t.TempDir()})
	if res.Failure != nil {
		t.Fatal(res.Failure.Report())
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
}

// TestConcurrentHarnessWithReaders adds snapshot reader goroutines to the
// writer mix: every reader iteration begins an MVCC snapshot, resolves
// the model recorded at the snapshot's commit boundary, and requires an
// exact match — the snapshot-consistency check (reads observe exactly the
// state at some commit boundary no newer than the snapshot seq, never a
// torn or uncommitted one).
func TestConcurrentHarnessWithReaders(t *testing.T) {
	for seed := int64(21); seed <= 22; seed++ {
		res := RunConcurrent(ConcurrentConfig{Seed: seed, Workers: 4, Readers: 2, Ops: 120})
		if res.Failure != nil {
			t.Fatalf("seed %d: %s", seed, res.Failure.Report())
		}
		if res.Committed == 0 {
			t.Fatalf("seed %d: no transactions committed", seed)
		}
		if res.SnapshotReads == 0 {
			t.Fatalf("seed %d: readers verified no snapshots", seed)
		}
	}
}

// TestConcurrentHarnessWithRecluster soaks the online reclusterer under
// real concurrency: workers mutate shared composite hierarchies while the
// background loop migrates hot units on a milliseconds tick. Every
// quiescent round asserts model equivalence AND the store's
// exactly-one-location invariant; the durable variant ends with a crash
// whose log interleaves transaction groups with OpMove records.
func TestConcurrentHarnessWithRecluster(t *testing.T) {
	for seed := int64(31); seed <= 32; seed++ {
		res := RunConcurrent(ConcurrentConfig{Seed: seed, Workers: 4, Ops: 150, Recluster: true})
		if res.Failure != nil {
			t.Fatalf("seed %d: %s", seed, res.Failure.Report())
		}
		if res.Committed == 0 {
			t.Fatalf("seed %d: no transactions committed", seed)
		}
		t.Logf("seed %d: %d commits, %d unit migrations", seed, res.Committed, res.ReclusterMigrations)
	}
}

func TestConcurrentHarnessWithReclusterDurable(t *testing.T) {
	if testing.Short() {
		t.Skip("durable recluster soak skipped in -short")
	}
	res := RunConcurrent(ConcurrentConfig{Seed: 37, Workers: 4, Ops: 120,
		Durable: true, Dir: t.TempDir(), Recluster: true})
	if res.Failure != nil {
		t.Fatal(res.Failure.Report())
	}
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	t.Logf("%d commits, %d unit migrations survived the crash finale",
		res.Committed, res.ReclusterMigrations)
}

// TestConcurrentSingleWorkerMatchesSequentialSemantics: with one worker
// the harness still goes through the full admission/commit machinery;
// any divergence here indicts the checker rather than a race.
func TestConcurrentSingleWorker(t *testing.T) {
	res := RunConcurrent(ConcurrentConfig{Seed: 11, Workers: 1, Ops: 200})
	if res.Failure != nil {
		t.Fatal(res.Failure.Report())
	}
}
