// Package faultfs wraps a storage.Device with seeded, deterministic fault
// injection for crash and recovery testing.
//
// The wrapper models the volatile/durable split of a real disk stack: a
// write lands in a volatile overlay (what the running process reads back,
// like the OS page cache) and in a pending image (what the medium will
// hold after the next fsync). Normally the two agree; an injected fault
// makes them diverge — a short write or torn page persists mangled bytes
// while the application keeps seeing clean data, and a failed or ignored
// fsync keeps everything volatile. Crash drops the volatile state, so
// reads afterwards observe exactly what a machine would find on disk
// after power loss; CrashAt rewinds further, freezing the image as of an
// arbitrary earlier synced point.
//
// Faults are scheduled either at exactly the Nth operation of their class
// (reads for ReadErr, writes for the write faults, syncs for the sync
// faults) or probabilistically with a seeded RNG, so every run is
// reproducible from (seed, fault plan).
package faultfs

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/storage"
)

// Kind enumerates injectable faults.
type Kind uint8

// Fault kinds. Write faults fire on WritePage, sync faults on Sync,
// ReadErr on ReadPage.
const (
	// ShortWrite persists only a prefix of the page while reporting
	// success; the application's read-back still sees the full write.
	ShortWrite Kind = iota + 1
	// TornPage persists an interleaving of old and new 512-byte sectors
	// while reporting success.
	TornPage
	// WriteErr persists a prefix and returns an error; the read-back also
	// sees the partial write (contents after a failed write are undefined).
	WriteErr
	// SyncErr fails the fsync; nothing reaches the durable image.
	SyncErr
	// SyncLost reports fsync success without making anything durable (a
	// lying disk).
	SyncLost
	// ReadErr fails the read.
	ReadErr
)

func (k Kind) String() string {
	switch k {
	case ShortWrite:
		return "short-write"
	case TornPage:
		return "torn-page"
	case WriteErr:
		return "write-err"
	case SyncErr:
		return "sync-err"
	case SyncLost:
		return "sync-lost"
	case ReadErr:
		return "read-err"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrInjected is wrapped by every error the device fabricates.
var ErrInjected = errors.New("faultfs: injected fault")

// Fault schedules one injection. At is the 1-based index within the
// kind's operation class (the 3rd write, the 1st sync, ...); Prob fires
// the fault on any matching op with the given probability using the
// device's seeded RNG. A fault with At == 0 and Prob == 0 never fires.
// Page, when non-zero, restricts page-targeted kinds to that page.
type Fault struct {
	Kind Kind
	At   uint64
	Prob float64
	Page storage.PageID
}

// Stats counts device activity.
type Stats struct {
	Reads  uint64
	Writes uint64
	Allocs uint64
	Syncs  uint64
	Fired  uint64 // faults that actually triggered
}

// syncDelta records the pages made durable by one successful sync, keyed
// by the global op counter at sync time — the raw material for CrashAt.
type syncDelta struct {
	op    uint64
	pages map[storage.PageID][]byte
}

// Device is a fault-injecting storage.Device.
type Device struct {
	mu      sync.Mutex
	inner   storage.Device
	rng     *rand.Rand
	faults  []Fault
	ops     uint64 // global op counter (reads+writes+allocs+syncs)
	stats   Stats
	base    map[storage.PageID][]byte // inner image at wrap time
	volat   map[storage.PageID][]byte // what reads observe
	pending map[storage.PageID][]byte // what the next sync persists
	deltas  []syncDelta
}

// New wraps inner. The seed drives every probabilistic choice (torn
// sector patterns, short-write lengths, Prob faults), so identical runs
// produce identical damage. CrashAt treats inner's current contents as
// the base image.
func New(inner storage.Device, seed int64) *Device {
	d := &Device{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		base:    make(map[storage.PageID][]byte),
		volat:   make(map[storage.PageID][]byte),
		pending: make(map[storage.PageID][]byte),
	}
	var p storage.Page
	for id := storage.PageID(1); int(id) <= inner.NumPages(); id++ {
		if err := inner.ReadPage(id, &p); err == nil {
			d.base[id] = append([]byte(nil), p.Data[:]...)
		}
	}
	return d
}

// Inject adds a fault to the plan. Safe to call between operations.
func (d *Device) Inject(f Fault) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.faults = append(d.faults, f)
}

// Stats returns the operation counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Ops returns the global operation counter, usable as a CrashAt point.
func (d *Device) Ops() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// fire reports whether a planned fault of one of the given kinds triggers
// for the class-op index n (1-based), removing one-shot At faults once
// spent. Caller holds d.mu.
func (d *Device) fire(n uint64, page storage.PageID, kinds ...Kind) (Fault, bool) {
	for i, f := range d.faults {
		match := false
		for _, k := range kinds {
			if f.Kind == k {
				match = true
			}
		}
		if !match {
			continue
		}
		if f.Page != 0 && page != 0 && f.Page != page {
			continue
		}
		if f.At != 0 && f.At == n {
			d.faults = append(d.faults[:i], d.faults[i+1:]...)
			d.stats.Fired++
			return f, true
		}
		if f.Prob > 0 && d.rng.Float64() < f.Prob {
			d.stats.Fired++
			return f, true
		}
	}
	return Fault{}, false
}

// ReadPage implements storage.Device: volatile overlay first, then the
// durable inner image.
func (d *Device) ReadPage(id storage.PageID, p *storage.Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops++
	d.stats.Reads++
	if f, ok := d.fire(d.stats.Reads, id, ReadErr); ok {
		return fmt.Errorf("faultfs: read page %d at op %d: %s: %w", id, d.ops, f.Kind, ErrInjected)
	}
	if b, ok := d.volat[id]; ok {
		copy(p.Data[:], b)
		p.ID = id
		return nil
	}
	return d.inner.ReadPage(id, p)
}

// mangle returns the bytes the medium would hold for a faulted write:
// a seeded prefix of the new data over the old for ShortWrite/WriteErr,
// or a seeded interleaving of old and new 512-byte sectors for TornPage.
// Caller holds d.mu.
func (d *Device) mangle(k Kind, id storage.PageID, clean []byte) []byte {
	old := d.durableLocked(id)
	out := append([]byte(nil), old...)
	switch k {
	case TornPage:
		const sector = 512
		n := len(clean) / sector
		tornOne := false
		for s := 0; s < n; s++ {
			if d.rng.Intn(2) == 0 {
				copy(out[s*sector:(s+1)*sector], clean[s*sector:(s+1)*sector])
			} else {
				tornOne = true
			}
		}
		if !tornOne { // guarantee at least one stale sector
			// leave sector 0 old, take the rest new
			copy(out[sector:], clean[sector:])
		}
	default: // ShortWrite, WriteErr
		n := 1 + d.rng.Intn(len(clean)-1)
		copy(out[:n], clean[:n])
	}
	return out
}

// durableLocked returns the page's current durable bytes (inner image or
// base), zero-filled if never written.
func (d *Device) durableLocked(id storage.PageID) []byte {
	var p storage.Page
	if err := d.inner.ReadPage(id, &p); err == nil {
		return append([]byte(nil), p.Data[:]...)
	}
	return make([]byte, storage.PageSize)
}

// WritePage implements storage.Device. The write lands in the volatile
// overlay and the pending image; nothing becomes durable until Sync.
func (d *Device) WritePage(p *storage.Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops++
	d.stats.Writes++
	clean := append([]byte(nil), p.Data[:]...)
	f, ok := d.fire(d.stats.Writes, p.ID, ShortWrite, TornPage, WriteErr)
	if !ok {
		d.volat[p.ID] = clean
		d.pending[p.ID] = clean
		return nil
	}
	damaged := d.mangle(f.Kind, p.ID, clean)
	d.pending[p.ID] = damaged
	switch f.Kind {
	case WriteErr:
		d.volat[p.ID] = append([]byte(nil), damaged...)
		return fmt.Errorf("faultfs: write page %d at op %d: %s: %w", p.ID, d.ops, f.Kind, ErrInjected)
	default: // ShortWrite, TornPage report success; read-back stays clean
		d.volat[p.ID] = clean
		return nil
	}
}

// Allocate implements storage.Device. Allocation is metadata and takes
// effect immediately (like a file-size extension); the page's contents
// remain volatile until synced.
func (d *Device) Allocate() (storage.PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops++
	d.stats.Allocs++
	return d.inner.Allocate()
}

// NumPages implements storage.Device.
func (d *Device) NumPages() int { return d.inner.NumPages() }

// Sync implements storage.Device: flushes the pending image into the
// inner device and records the delta for CrashAt — unless a sync fault
// fires, in which case nothing becomes durable.
func (d *Device) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ops++
	d.stats.Syncs++
	if f, ok := d.fire(d.stats.Syncs, 0, SyncErr, SyncLost); ok {
		if f.Kind == SyncErr {
			return fmt.Errorf("faultfs: sync at op %d: %s: %w", d.ops, f.Kind, ErrInjected)
		}
		return nil // SyncLost: lie
	}
	if len(d.pending) == 0 {
		return d.inner.Sync()
	}
	ids := make([]storage.PageID, 0, len(d.pending))
	for id := range d.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	delta := syncDelta{op: d.ops, pages: make(map[storage.PageID][]byte, len(ids))}
	var p storage.Page
	for _, id := range ids {
		b := d.pending[id]
		copy(p.Data[:], b)
		p.ID = id
		if err := d.inner.WritePage(&p); err != nil {
			return err
		}
		delta.pages[id] = append([]byte(nil), b...)
	}
	if err := d.inner.Sync(); err != nil {
		return err
	}
	d.deltas = append(d.deltas, delta)
	d.pending = make(map[storage.PageID][]byte)
	return nil
}

// Close implements storage.Device.
func (d *Device) Close() error { return d.inner.Close() }

// Crash simulates power loss now: the volatile overlay and the pending
// image vanish; reads afterwards observe the last-synced durable state.
func (d *Device) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.volat = make(map[storage.PageID][]byte)
	d.pending = make(map[storage.PageID][]byte)
}

// CrashAt freezes the durable image as of global op index op (see Ops):
// every sync recorded after that point is undone, then the volatile state
// is dropped as in Crash. It rewrites the inner device in place, so the
// wrapped store can be reopened over it.
func (d *Device) CrashAt(op uint64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Latest surviving content per page: base, then deltas with op <= op.
	want := make(map[storage.PageID][]byte)
	for id, b := range d.base {
		want[id] = b
	}
	touched := make(map[storage.PageID]bool)
	for _, delta := range d.deltas {
		for id := range delta.pages {
			touched[id] = true
		}
		if delta.op <= op {
			for id, b := range delta.pages {
				want[id] = b
			}
		}
	}
	kept := d.deltas[:0]
	for _, delta := range d.deltas {
		if delta.op <= op {
			kept = append(kept, delta)
		}
	}
	d.deltas = kept
	ids := make([]storage.PageID, 0, len(touched))
	for id := range touched {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var p storage.Page
	for _, id := range ids {
		b, ok := want[id]
		if !ok {
			b = make([]byte, storage.PageSize)
		}
		copy(p.Data[:], b)
		p.ID = id
		if err := d.inner.WritePage(&p); err != nil {
			return err
		}
	}
	d.volat = make(map[storage.PageID][]byte)
	d.pending = make(map[storage.PageID][]byte)
	return d.inner.Sync()
}
