package faultfs

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/storage"
)

func fill(b byte) *storage.Page {
	var p storage.Page
	for i := range p.Data {
		p.Data[i] = b
	}
	return &p
}

func readBack(t *testing.T, d storage.Device, id storage.PageID) []byte {
	t.Helper()
	var p storage.Page
	if err := d.ReadPage(id, &p); err != nil {
		t.Fatalf("read page %d: %v", id, err)
	}
	return append([]byte(nil), p.Data[:]...)
}

func TestPassthroughAndVolatility(t *testing.T) {
	d := New(storage.NewMemDevice(), 1)
	id, err := d.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	pg := fill(0xaa)
	pg.ID = id
	if err := d.WritePage(pg); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, d, id); got[0] != 0xaa {
		t.Fatalf("read-back before sync: got %x", got[0])
	}
	// Unsynced data does not survive a crash.
	d.Crash()
	if got := readBack(t, d, id); got[0] != 0 {
		t.Fatalf("after crash without sync: got %x, want zero page", got[0])
	}
	// Synced data does.
	if err := d.WritePage(pg); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := readBack(t, d, id); got[0] != 0xaa {
		t.Fatalf("after crash with sync: got %x, want 0xaa", got[0])
	}
}

func TestShortWriteDamagesDurableImageOnly(t *testing.T) {
	d := New(storage.NewMemDevice(), 42)
	id, _ := d.Allocate()
	old := fill(0x11)
	old.ID = id
	if err := d.WritePage(old); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Inject(Fault{Kind: ShortWrite, At: 2}) // the next write is write #2
	neu := fill(0x22)
	neu.ID = id
	if err := d.WritePage(neu); err != nil {
		t.Fatalf("short write must report success: %v", err)
	}
	if got := readBack(t, d, id); got[0] != 0x22 || got[len(got)-1] != 0x22 {
		t.Fatal("application read-back must see the full write")
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	got := readBack(t, d, id)
	if got[0] != 0x22 {
		t.Fatal("short write persisted nothing")
	}
	if got[len(got)-1] != 0x11 {
		t.Fatal("short write persisted the full page; want a stale suffix")
	}
	if st := d.Stats(); st.Fired != 1 {
		t.Fatalf("fired = %d, want 1", st.Fired)
	}
}

func TestTornPageMixesSectors(t *testing.T) {
	d := New(storage.NewMemDevice(), 7)
	id, _ := d.Allocate()
	old := fill(0x11)
	old.ID = id
	d.WritePage(old)
	d.Sync()
	d.Inject(Fault{Kind: TornPage, At: 2})
	neu := fill(0x22)
	neu.ID = id
	if err := d.WritePage(neu); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	d.Crash()
	got := readBack(t, d, id)
	const sector = 512
	oldN, newN := 0, 0
	for s := 0; s*sector < len(got); s++ {
		sec := got[s*sector : (s+1)*sector]
		switch {
		case bytes.Equal(sec, bytes.Repeat([]byte{0x11}, sector)):
			oldN++
		case bytes.Equal(sec, bytes.Repeat([]byte{0x22}, sector)):
			newN++
		default:
			t.Fatalf("sector %d is neither old nor new", s)
		}
	}
	if oldN == 0 {
		t.Fatal("torn page has no stale sector")
	}
}

func TestWriteErrAtNthWrite(t *testing.T) {
	d := New(storage.NewMemDevice(), 3)
	id, _ := d.Allocate()
	d.Inject(Fault{Kind: WriteErr, At: 3})
	pg := fill(0x33)
	pg.ID = id
	for i := 1; i <= 2; i++ {
		if err := d.WritePage(pg); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	err := d.WritePage(pg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write 3: got %v, want ErrInjected", err)
	}
	// One-shot: the plan entry is consumed.
	if err := d.WritePage(pg); err != nil {
		t.Fatalf("write 4 failed: %v", err)
	}
}

func TestSyncFaults(t *testing.T) {
	for _, k := range []Kind{SyncErr, SyncLost} {
		d := New(storage.NewMemDevice(), 9)
		id, _ := d.Allocate()
		pg := fill(0x44)
		pg.ID = id
		d.WritePage(pg)
		d.Inject(Fault{Kind: k, At: 1})
		err := d.Sync()
		if k == SyncErr && !errors.Is(err, ErrInjected) {
			t.Fatalf("%v: got %v, want ErrInjected", k, err)
		}
		if k == SyncLost && err != nil {
			t.Fatalf("%v: got %v, want nil (lying fsync)", k, err)
		}
		d.Crash()
		if got := readBack(t, d, id); got[0] != 0 {
			t.Fatalf("%v: data survived a crash without a real sync", k)
		}
	}
}

func TestSyncRetryAfterFailureIsDurable(t *testing.T) {
	d := New(storage.NewMemDevice(), 9)
	id, _ := d.Allocate()
	pg := fill(0x55)
	pg.ID = id
	d.WritePage(pg)
	d.Inject(Fault{Kind: SyncErr, At: 1})
	if err := d.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatal("expected injected sync failure")
	}
	// The pending image survives the failed sync; a retry persists it.
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	d.Crash()
	if got := readBack(t, d, id); got[0] != 0x55 {
		t.Fatal("retry sync did not persist the pending image")
	}
}

func TestCrashAtFreezesEarlierImage(t *testing.T) {
	d := New(storage.NewMemDevice(), 5)
	id, _ := d.Allocate()
	a := fill(0x0a)
	a.ID = id
	d.WritePage(a)
	d.Sync()
	opAfterFirst := d.Ops()
	b := fill(0x0b)
	b.ID = id
	d.WritePage(b)
	d.Sync()
	if got := readBack(t, d, id); got[0] != 0x0b {
		t.Fatal("sanity: latest write visible")
	}
	if err := d.CrashAt(opAfterFirst); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, d, id); got[0] != 0x0a {
		t.Fatalf("CrashAt: got %x, want image at first sync", got[0])
	}
	// Rewinding to before any sync yields the base (zero) image.
	if err := d.CrashAt(0); err != nil {
		t.Fatal(err)
	}
	if got := readBack(t, d, id); got[0] != 0 {
		t.Fatalf("CrashAt(0): got %x, want zero page", got[0])
	}
}

func TestSeededDeterminism(t *testing.T) {
	run := func() []byte {
		d := New(storage.NewMemDevice(), 1234)
		id, _ := d.Allocate()
		old := fill(0x11)
		old.ID = id
		d.WritePage(old)
		d.Sync()
		d.Inject(Fault{Kind: TornPage, At: 2})
		neu := fill(0x22)
		neu.ID = id
		d.WritePage(neu)
		d.Sync()
		d.Crash()
		var p storage.Page
		d.ReadPage(id, &p)
		return append([]byte(nil), p.Data[:]...)
	}
	if !bytes.Equal(run(), run()) {
		t.Fatal("same seed, same ops: torn-page damage differs")
	}
}

func TestProbabilisticFaultIsSeeded(t *testing.T) {
	count := func(seed int64) int {
		d := New(storage.NewMemDevice(), seed)
		id, _ := d.Allocate()
		d.Inject(Fault{Kind: WriteErr, Prob: 0.3})
		pg := fill(0x66)
		pg.ID = id
		n := 0
		for i := 0; i < 100; i++ {
			if err := d.WritePage(pg); err != nil {
				n++
			}
		}
		return n
	}
	if count(77) != count(77) {
		t.Fatal("probabilistic faults not reproducible for equal seeds")
	}
	if count(77) == 0 {
		t.Fatal("Prob=0.3 never fired in 100 writes")
	}
}
