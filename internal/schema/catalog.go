package schema

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/uid"
	"repro/internal/value"
)

// Sentinel errors for catalog operations.
var (
	ErrDupClass       = errors.New("schema: class already defined")
	ErrNoClass        = errors.New("schema: no such class")
	ErrNoAttr         = errors.New("schema: no such attribute")
	ErrDupAttr        = errors.New("schema: duplicate attribute")
	ErrCycle          = errors.New("schema: superclass cycle")
	ErrNotSuper       = errors.New("schema: not a superclass")
	ErrInherited      = errors.New("schema: attribute is inherited; modify the defining class")
	ErrDomainMismatch = errors.New("schema: value does not match attribute domain")
)

// Class is a class metaobject. Fields are immutable through this struct;
// all mutation goes through Catalog methods, which hold the catalog lock.
type Class struct {
	ID           uid.ClassID
	Name         string
	Superclasses []string // in declaration order (matters for conflict resolution)
	Own          []AttrSpec
	Versionable  bool
	Segment      string // physical segment the class is assigned to
	Doc          string
}

// ClassDef is the input to DefineClass: the paper's make-class message.
type ClassDef struct {
	Name         string
	Superclasses []string
	Attributes   []AttrSpec
	Versionable  bool
	Segment      string // defaults to the class name
	Doc          string
}

// Catalog is the schema: the set of classes and the class lattice, plus
// the operation logs that drive deferred schema evolution. It is safe for
// concurrent use.
type Catalog struct {
	mu      sync.RWMutex
	classes map[string]*Class
	byID    map[uid.ClassID]*Class
	nextID  uid.ClassID
	logs    map[string]*OpLog // domain-class name -> pending attribute-type changes
	// globalCC is the catalog-wide change counter for deferred evolution.
	// The paper keeps one CC per domain class; a single monotonic counter
	// subsumes that (per-class counts are recoverable by filtering the
	// logs) and lets an instance carry one stamp even when changes arrive
	// through several superclasses.
	globalCC uint64
	// version counts catalog mutations of any kind (class definitions,
	// attribute changes, lattice edits, reloads). Read-path plan caches
	// key their validity on it; unlike globalCC it advances for changes
	// that deferred evolution does not log.
	version atomic.Uint64
}

// Version returns the catalog mutation counter. It advances (at least)
// once per successful or attempted catalog mutation, so any cached
// derivation of the schema is stale whenever the counter moved.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		classes: make(map[string]*Class),
		byID:    make(map[uid.ClassID]*Class),
		nextID:  1,
		logs:    make(map[string]*OpLog),
	}
}

// Clone returns a deep, independent copy of the catalog frozen at the
// current version: later mutations of the original are invisible to the
// clone and vice versa. Snapshots pin a clone at BeginSnapshot so their
// query plans keep answering with the schema that was live at the
// snapshot's commit boundary (§4 semantics extended to the catalog).
func (c *Catalog) Clone() *Catalog {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := &Catalog{
		classes: make(map[string]*Class, len(c.classes)),
		byID:    make(map[uid.ClassID]*Class, len(c.byID)),
		nextID:  c.nextID,
		logs:    make(map[string]*OpLog, len(c.logs)),
	}
	for name, cl := range c.classes {
		cc := *cl
		cc.Superclasses = append([]string(nil), cl.Superclasses...)
		cc.Own = append([]AttrSpec(nil), cl.Own...)
		out.classes[name] = &cc
		out.byID[cc.ID] = &cc
	}
	for name, l := range c.logs {
		out.logs[name] = &OpLog{Entries: append([]LogEntry(nil), l.Entries...)}
	}
	out.globalCC = c.globalCC
	out.version.Store(c.version.Load())
	return out
}

// DefineClass adds a class per the make-class message. Superclasses must
// already exist; attribute names may not collide with one another (they
// may shadow inherited attributes, which ORION treats as overriding).
func (c *Catalog) DefineClass(def ClassDef) (*Class, error) {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	if def.Name == "" {
		return nil, fmt.Errorf("schema: class with empty name")
	}
	if _, ok := c.classes[def.Name]; ok {
		return nil, fmt.Errorf("%q: %w", def.Name, ErrDupClass)
	}
	seen := map[string]bool{}
	for _, a := range def.Attributes {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("%q.%q: %w", def.Name, a.Name, ErrDupAttr)
		}
		seen[a.Name] = true
		if a.Domain.Kind == DomainClass {
			if _, ok := c.classes[a.Domain.Class]; !ok && a.Domain.Class != def.Name {
				return nil, fmt.Errorf("attribute %q domain %q: %w", a.Name, a.Domain.Class, ErrNoClass)
			}
		}
	}
	for _, s := range def.Superclasses {
		if _, ok := c.classes[s]; !ok {
			return nil, fmt.Errorf("superclass %q: %w", s, ErrNoClass)
		}
	}
	seg := def.Segment
	if seg == "" {
		seg = def.Name
	}
	cl := &Class{
		ID:           c.nextID,
		Name:         def.Name,
		Superclasses: append([]string(nil), def.Superclasses...),
		Own:          append([]AttrSpec(nil), def.Attributes...),
		Versionable:  def.Versionable,
		Segment:      seg,
		Doc:          def.Doc,
	}
	c.nextID++
	c.classes[cl.Name] = cl
	c.byID[cl.ID] = cl
	return cl, nil
}

// Class returns the class metaobject for name.
func (c *Catalog) Class(name string) (*Class, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.classLocked(name)
}

func (c *Catalog) classLocked(name string) (*Class, error) {
	cl, ok := c.classes[name]
	if !ok {
		return nil, fmt.Errorf("%q: %w", name, ErrNoClass)
	}
	return cl, nil
}

// ClassByID returns the class with the given ID.
func (c *Catalog) ClassByID(id uid.ClassID) (*Class, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	cl, ok := c.byID[id]
	if !ok {
		return nil, fmt.Errorf("class id %d: %w", id, ErrNoClass)
	}
	return cl, nil
}

// Has reports whether the class exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.classes[name]
	return ok
}

// ClassNames returns all class names, sorted.
func (c *Catalog) ClassNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.classes))
	for n := range c.classes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// IsA reports whether sub is name or a (transitive) subclass of super.
func (c *Catalog) IsA(sub, super string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.isALocked(sub, super, map[string]bool{})
}

func (c *Catalog) isALocked(sub, super string, seen map[string]bool) bool {
	if sub == super {
		return true
	}
	if seen[sub] {
		return false
	}
	seen[sub] = true
	cl, ok := c.classes[sub]
	if !ok {
		return false
	}
	for _, s := range cl.Superclasses {
		if c.isALocked(s, super, seen) {
			return true
		}
	}
	return false
}

// Subclasses returns the direct subclasses of name, sorted.
func (c *Catalog) Subclasses(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.subclassesLocked(name)
}

func (c *Catalog) subclassesLocked(name string) []string {
	var out []string
	for _, cl := range c.classes {
		for _, s := range cl.Superclasses {
			if s == name {
				out = append(out, cl.Name)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// AllSubclasses returns name plus every transitive subclass, sorted.
func (c *Catalog) AllSubclasses(name string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	seen := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		for _, s := range c.subclassesLocked(n) {
			walk(s)
		}
	}
	walk(name)
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Attributes returns the effective attributes of the class: its own
// attributes followed by attributes inherited from superclasses in
// declaration order, with name conflicts resolved in favor of the first
// definition encountered (own attributes shadow inherited ones; earlier
// superclasses shadow later ones) — ORION's conflict-resolution rule.
func (c *Catalog) Attributes(name string) ([]AttrSpec, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.attributesLocked(name, map[string]bool{})
}

func (c *Catalog) attributesLocked(name string, visiting map[string]bool) ([]AttrSpec, error) {
	cl, err := c.classLocked(name)
	if err != nil {
		return nil, err
	}
	if visiting[name] {
		return nil, fmt.Errorf("%q: %w", name, ErrCycle)
	}
	visiting[name] = true
	defer delete(visiting, name)
	var out []AttrSpec
	have := map[string]bool{}
	for _, a := range cl.Own {
		out = append(out, a)
		have[a.Name] = true
	}
	for _, s := range cl.Superclasses {
		inherited, err := c.attributesLocked(s, visiting)
		if err != nil {
			return nil, err
		}
		for _, a := range inherited {
			if !have[a.Name] {
				out = append(out, a)
				have[a.Name] = true
			}
		}
	}
	return out, nil
}

// Attribute returns the effective attribute attr of class name.
func (c *Catalog) Attribute(name, attr string) (AttrSpec, error) {
	attrs, err := c.Attributes(name)
	if err != nil {
		return AttrSpec{}, err
	}
	for _, a := range attrs {
		if a.Name == attr {
			return a, nil
		}
	}
	return AttrSpec{}, fmt.Errorf("%q.%q: %w", name, attr, ErrNoAttr)
}

// definingClass returns the class (name itself or an ancestor) whose Own
// list carries attr, following the same conflict-resolution order as
// Attributes. Caller holds at least the read lock.
func (c *Catalog) definingClassLocked(name, attr string) (*Class, error) {
	cl, err := c.classLocked(name)
	if err != nil {
		return nil, err
	}
	for i := range cl.Own {
		if cl.Own[i].Name == attr {
			return cl, nil
		}
	}
	for _, s := range cl.Superclasses {
		if def, err := c.definingClassLocked(s, attr); err == nil {
			return def, nil
		}
	}
	return nil, fmt.Errorf("%q.%q: %w", name, attr, ErrNoAttr)
}

// Predicates of §3.2. Each takes an optional attribute name: with the
// attribute, it tests that attribute; without, it tests whether the class
// has at least one attribute with the property.

// Compositep implements (compositep Class [AttributeName]).
func (c *Catalog) Compositep(name string, attr ...string) (bool, error) {
	return c.predicate(name, attr, func(a AttrSpec) bool { return a.Composite })
}

// ExclusiveCompositep implements (exclusive-compositep Class [Attr]).
func (c *Catalog) ExclusiveCompositep(name string, attr ...string) (bool, error) {
	return c.predicate(name, attr, func(a AttrSpec) bool { return a.Composite && a.Exclusive })
}

// SharedCompositep implements (shared-compositep Class [Attr]).
func (c *Catalog) SharedCompositep(name string, attr ...string) (bool, error) {
	return c.predicate(name, attr, func(a AttrSpec) bool { return a.Composite && !a.Exclusive })
}

// DependentCompositep implements (dependent-compositep Class [Attr]).
func (c *Catalog) DependentCompositep(name string, attr ...string) (bool, error) {
	return c.predicate(name, attr, func(a AttrSpec) bool { return a.Composite && a.Dependent })
}

func (c *Catalog) predicate(name string, attr []string, pred func(AttrSpec) bool) (bool, error) {
	attrs, err := c.Attributes(name)
	if err != nil {
		return false, err
	}
	if len(attr) > 0 && attr[0] != "" {
		for _, a := range attrs {
			if a.Name == attr[0] {
				return pred(a), nil
			}
		}
		return false, fmt.Errorf("%q.%q: %w", name, attr[0], ErrNoAttr)
	}
	for _, a := range attrs {
		if pred(a) {
			return true, nil
		}
	}
	return false, nil
}

// CompositeHierarchy returns the component classes of the composite class
// hierarchy rooted at name (§2.1): every class reachable through composite
// attributes, in BFS order, excluding the root itself unless reached via a
// cycle. Subclasses of a component class are included, since instances of
// subclasses may appear as components.
func (c *Catalog) CompositeHierarchy(name string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, err := c.classLocked(name); err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	var out []string
	queue := []string{name}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		attrs, err := c.attributesLocked(cur, map[string]bool{})
		if err != nil {
			return nil, err
		}
		for _, a := range attrs {
			if !a.Composite {
				continue
			}
			for _, comp := range c.allSubclassesLocked(a.Domain.Class) {
				if !seen[comp] {
					seen[comp] = true
					out = append(out, comp)
					queue = append(queue, comp)
				}
			}
		}
	}
	return out, nil
}

func (c *Catalog) allSubclassesLocked(name string) []string {
	seen := map[string]bool{}
	var order []string
	var walk func(n string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		order = append(order, n)
		for _, s := range c.subclassesLocked(n) {
			walk(s)
		}
	}
	walk(name)
	sort.Strings(order[1:]) // keep the root first, subclasses sorted
	return order
}

// ValidateValue checks that v is acceptable for attribute attr of class
// name: kind matches the domain, collections only for set-of attributes,
// and references typed by the domain class (subclasses allowed). The class
// of each reference is taken from the UID.
func (c *Catalog) ValidateValue(name, attr string, v value.Value) error {
	a, err := c.Attribute(name, attr)
	if err != nil {
		return err
	}
	if v.IsNil() {
		return nil
	}
	if a.SetOf {
		if !v.IsCollection() {
			return fmt.Errorf("%q.%q wants a set, got %v: %w", name, attr, v.Kind(), ErrDomainMismatch)
		}
		for _, e := range v.Elems() {
			if err := c.validateScalar(name, attr, a, e); err != nil {
				return err
			}
		}
		return nil
	}
	if v.IsCollection() {
		return fmt.Errorf("%q.%q is single-valued, got %v: %w", name, attr, v.Kind(), ErrDomainMismatch)
	}
	return c.validateScalar(name, attr, a, v)
}

func (c *Catalog) validateScalar(name, attr string, a AttrSpec, v value.Value) error {
	if a.Domain.Kind == DomainPrimitive {
		if v.Kind() != a.Domain.Prim {
			return fmt.Errorf("%q.%q wants %v, got %v: %w", name, attr, a.Domain.Prim, v.Kind(), ErrDomainMismatch)
		}
		return nil
	}
	r, ok := v.AsRef()
	if !ok {
		return fmt.Errorf("%q.%q wants a reference to %s, got %v: %w", name, attr, a.Domain.Class, v.Kind(), ErrDomainMismatch)
	}
	rc, err := c.ClassByID(r.Class)
	if err != nil {
		return err
	}
	if !c.IsA(rc.Name, a.Domain.Class) {
		return fmt.Errorf("%q.%q wants %s, got instance of %s: %w", name, attr, a.Domain.Class, rc.Name, ErrDomainMismatch)
	}
	return nil
}
