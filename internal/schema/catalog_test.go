package schema

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/uid"
	"repro/internal/value"
)

// vehicleCatalog builds the paper's Example 1 schema (§2.3).
func vehicleCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, n := range []string{"Company", "AutoBody", "AutoDrivetrain", "AutoTires"} {
		if _, err := c.DefineClass(ClassDef{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.DefineClass(ClassDef{
		Name: "Vehicle",
		Attributes: []AttrSpec{
			NewAttr("Id", IntDomain),
			NewAttr("Manufacturer", ClassDomain("Company")),
			NewCompositeAttr("Body", "AutoBody").WithDependent(false),
			NewCompositeAttr("Drivetrain", "AutoDrivetrain").WithDependent(false),
			NewCompositeSetAttr("Tires", "AutoTires").WithDependent(false),
			NewAttr("Color", StringDomain),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// documentCatalog builds the paper's Example 2 schema (§2.3).
func documentCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	for _, n := range []string{"Paragraph", "Image"} {
		if _, err := c.DefineClass(ClassDef{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.DefineClass(ClassDef{
		Name: "Section",
		Attributes: []AttrSpec{
			NewCompositeSetAttr("Content", "Paragraph").WithExclusive(false), // shared dependent
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineClass(ClassDef{
		Name: "Document",
		Attributes: []AttrSpec{
			NewAttr("Title", StringDomain),
			NewSetAttr("Authors", StringDomain),
			NewCompositeSetAttr("Sections", "Section").WithExclusive(false),                   // shared dependent
			NewCompositeSetAttr("Figures", "Image").WithExclusive(false).WithDependent(false), // shared independent
			NewCompositeSetAttr("Annotations", "Paragraph"),                                   // exclusive dependent
		},
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefineClassErrors(t *testing.T) {
	c := NewCatalog()
	if _, err := c.DefineClass(ClassDef{Name: ""}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.DefineClass(ClassDef{Name: "A"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineClass(ClassDef{Name: "A"}); !errors.Is(err, ErrDupClass) {
		t.Fatalf("dup class: %v", err)
	}
	if _, err := c.DefineClass(ClassDef{Name: "B", Superclasses: []string{"Ghost"}}); !errors.Is(err, ErrNoClass) {
		t.Fatalf("missing super: %v", err)
	}
	if _, err := c.DefineClass(ClassDef{
		Name:       "C",
		Attributes: []AttrSpec{NewAttr("x", IntDomain), NewAttr("x", IntDomain)},
	}); !errors.Is(err, ErrDupAttr) {
		t.Fatalf("dup attr: %v", err)
	}
	if _, err := c.DefineClass(ClassDef{
		Name:       "D",
		Attributes: []AttrSpec{NewAttr("r", ClassDomain("Ghost"))},
	}); !errors.Is(err, ErrNoClass) {
		t.Fatalf("missing domain: %v", err)
	}
	// Composite attribute with primitive domain is malformed.
	if _, err := c.DefineClass(ClassDef{
		Name:       "E",
		Attributes: []AttrSpec{{Name: "x", Domain: IntDomain, Composite: true}},
	}); err == nil {
		t.Fatal("composite over primitive accepted")
	}
	// Self-referential domain is allowed (e.g. Part has subparts of Part).
	if _, err := c.DefineClass(ClassDef{
		Name:       "Part",
		Attributes: []AttrSpec{NewCompositeSetAttr("Subparts", "Part")},
	}); err != nil {
		t.Fatalf("self-referential class: %v", err)
	}
}

func TestClassLookup(t *testing.T) {
	c := vehicleCatalog(t)
	cl, err := c.Class("Vehicle")
	if err != nil {
		t.Fatal(err)
	}
	byID, err := c.ClassByID(cl.ID)
	if err != nil || byID.Name != "Vehicle" {
		t.Fatalf("ClassByID: %v %v", byID, err)
	}
	if _, err := c.Class("Ghost"); !errors.Is(err, ErrNoClass) {
		t.Fatalf("ghost class: %v", err)
	}
	if _, err := c.ClassByID(uid.ClassID(999)); !errors.Is(err, ErrNoClass) {
		t.Fatalf("ghost id: %v", err)
	}
	if !c.Has("Vehicle") || c.Has("Ghost") {
		t.Fatal("Has wrong")
	}
	names := c.ClassNames()
	if len(names) != 5 || names[0] != "AutoBody" {
		t.Fatalf("ClassNames = %v", names)
	}
}

func TestRefKinds(t *testing.T) {
	c := documentCatalog(t)
	cases := []struct {
		class, attr string
		want        RefKind
	}{
		{"Document", "Title", NonRef},
		{"Document", "Sections", DependentShared},
		{"Document", "Figures", IndependentShared},
		{"Document", "Annotations", DependentExclusive},
		{"Section", "Content", DependentShared},
	}
	for _, cs := range cases {
		a, err := c.Attribute(cs.class, cs.attr)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.RefKind(); got != cs.want {
			t.Errorf("%s.%s RefKind = %v, want %v", cs.class, cs.attr, got, cs.want)
		}
	}
	// Vehicle's Body is independent exclusive.
	vc := vehicleCatalog(t)
	a, _ := vc.Attribute("Vehicle", "Body")
	if a.RefKind() != IndependentExclusive {
		t.Fatalf("Vehicle.Body = %v", a.RefKind())
	}
	if a.RefKind().String() != "independent exclusive composite" {
		t.Fatalf("String = %q", a.RefKind())
	}
	// Manufacturer is a weak reference.
	a, _ = vc.Attribute("Vehicle", "Manufacturer")
	if a.RefKind() != WeakRef {
		t.Fatalf("Manufacturer = %v", a.RefKind())
	}
}

func TestInheritanceAndConflictResolution(t *testing.T) {
	c := NewCatalog()
	c.DefineClass(ClassDef{Name: "A", Attributes: []AttrSpec{
		NewAttr("x", IntDomain), NewAttr("shared", IntDomain),
	}})
	c.DefineClass(ClassDef{Name: "B", Attributes: []AttrSpec{
		NewAttr("y", IntDomain), NewAttr("shared", StringDomain),
	}})
	c.DefineClass(ClassDef{Name: "C", Superclasses: []string{"A", "B"}, Attributes: []AttrSpec{
		NewAttr("z", IntDomain),
	}})
	attrs, err := c.Attributes("C")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AttrSpec{}
	var order []string
	for _, a := range attrs {
		byName[a.Name] = a
		order = append(order, a.Name)
	}
	// Own first, then A's, then B's non-conflicting.
	if !reflect.DeepEqual(order, []string{"z", "x", "shared", "y"}) {
		t.Fatalf("attribute order = %v", order)
	}
	// Conflict resolution: "shared" comes from A (first superclass).
	if byName["shared"].Domain != IntDomain {
		t.Fatalf("conflict resolved to %v, want A's int", byName["shared"].Domain)
	}
	// Own attribute shadows inherited.
	c.DefineClass(ClassDef{Name: "D", Superclasses: []string{"A"}, Attributes: []AttrSpec{
		NewAttr("x", StringDomain),
	}})
	a, _ := c.Attribute("D", "x")
	if a.Domain != StringDomain {
		t.Fatalf("own attr did not shadow: %v", a.Domain)
	}
}

func TestIsAAndSubclasses(t *testing.T) {
	c := NewCatalog()
	c.DefineClass(ClassDef{Name: "Top"})
	c.DefineClass(ClassDef{Name: "Mid", Superclasses: []string{"Top"}})
	c.DefineClass(ClassDef{Name: "Leaf", Superclasses: []string{"Mid"}})
	c.DefineClass(ClassDef{Name: "Other"})
	if !c.IsA("Leaf", "Top") || !c.IsA("Leaf", "Leaf") || c.IsA("Top", "Leaf") || c.IsA("Other", "Top") {
		t.Fatal("IsA wrong")
	}
	if got := c.Subclasses("Top"); !reflect.DeepEqual(got, []string{"Mid"}) {
		t.Fatalf("Subclasses = %v", got)
	}
	if got := c.AllSubclasses("Top"); !reflect.DeepEqual(got, []string{"Leaf", "Mid", "Top"}) {
		t.Fatalf("AllSubclasses = %v", got)
	}
}

func TestPredicates(t *testing.T) {
	c := documentCatalog(t)
	mustBool := func(got bool, err error, want bool, what string) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		if got != want {
			t.Fatalf("%s = %v, want %v", what, got, want)
		}
	}
	b, err := c.Compositep("Document")
	mustBool(b, err, true, "compositep Document")
	b, err = c.Compositep("Document", "Title")
	mustBool(b, err, false, "compositep Document Title")
	b, err = c.Compositep("Document", "Sections")
	mustBool(b, err, true, "compositep Document Sections")
	b, err = c.ExclusiveCompositep("Document", "Annotations")
	mustBool(b, err, true, "exclusive-compositep Annotations")
	b, err = c.ExclusiveCompositep("Document", "Sections")
	mustBool(b, err, false, "exclusive-compositep Sections")
	b, err = c.SharedCompositep("Document", "Sections")
	mustBool(b, err, true, "shared-compositep Sections")
	b, err = c.DependentCompositep("Document", "Figures")
	mustBool(b, err, false, "dependent-compositep Figures")
	b, err = c.DependentCompositep("Document", "Sections")
	mustBool(b, err, true, "dependent-compositep Sections")
	// Paragraph has no attributes at all.
	b, err = c.Compositep("Paragraph")
	mustBool(b, err, false, "compositep Paragraph")
	if _, err := c.Compositep("Ghost"); !errors.Is(err, ErrNoClass) {
		t.Fatalf("ghost class: %v", err)
	}
	if _, err := c.Compositep("Document", "Ghost"); !errors.Is(err, ErrNoAttr) {
		t.Fatalf("ghost attr: %v", err)
	}
}

func TestCompositeHierarchy(t *testing.T) {
	c := documentCatalog(t)
	h, err := c.CompositeHierarchy("Document")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"Section": true, "Image": true, "Paragraph": true}
	if len(h) != len(want) {
		t.Fatalf("hierarchy = %v", h)
	}
	for _, n := range h {
		if !want[n] {
			t.Fatalf("unexpected component class %q in %v", n, h)
		}
	}
	// A class with no composite attributes has an empty hierarchy.
	h, err = c.CompositeHierarchy("Paragraph")
	if err != nil || len(h) != 0 {
		t.Fatalf("Paragraph hierarchy = %v, %v", h, err)
	}
	// Recursive hierarchies terminate.
	c2 := NewCatalog()
	c2.DefineClass(ClassDef{Name: "Part", Attributes: []AttrSpec{
		NewCompositeSetAttr("Subparts", "Part"),
	}})
	h, err = c2.CompositeHierarchy("Part")
	if err != nil || !reflect.DeepEqual(h, []string{"Part"}) {
		t.Fatalf("recursive hierarchy = %v, %v", h, err)
	}
}

func TestCompositeHierarchyIncludesSubclasses(t *testing.T) {
	c := NewCatalog()
	c.DefineClass(ClassDef{Name: "Wheel"})
	c.DefineClass(ClassDef{Name: "AlloyWheel", Superclasses: []string{"Wheel"}})
	c.DefineClass(ClassDef{Name: "Car", Attributes: []AttrSpec{
		NewCompositeSetAttr("Wheels", "Wheel"),
	}})
	h, err := c.CompositeHierarchy("Car")
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]bool{}
	for _, n := range h {
		found[n] = true
	}
	if !found["Wheel"] || !found["AlloyWheel"] {
		t.Fatalf("hierarchy missing subclass: %v", h)
	}
}

func TestValidateValue(t *testing.T) {
	c := vehicleCatalog(t)
	body, _ := c.Class("AutoBody")
	tires, _ := c.Class("AutoTires")
	bodyRef := value.Ref(uid.UID{Class: body.ID, Serial: 1})
	tireRef := value.Ref(uid.UID{Class: tires.ID, Serial: 1})

	if err := c.ValidateValue("Vehicle", "Id", value.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateValue("Vehicle", "Id", value.Str("x")); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("wrong prim kind: %v", err)
	}
	if err := c.ValidateValue("Vehicle", "Body", bodyRef); err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateValue("Vehicle", "Body", tireRef); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("wrong ref class: %v", err)
	}
	if err := c.ValidateValue("Vehicle", "Body", value.Int(2)); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("non-ref for class domain: %v", err)
	}
	// Set-valued attribute needs a collection of properly-typed refs.
	if err := c.ValidateValue("Vehicle", "Tires", value.SetOf(tireRef)); err != nil {
		t.Fatal(err)
	}
	if err := c.ValidateValue("Vehicle", "Tires", tireRef); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("scalar for set-of: %v", err)
	}
	if err := c.ValidateValue("Vehicle", "Tires", value.SetOf(bodyRef)); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("wrong element class: %v", err)
	}
	// Single-valued attribute rejects collections.
	if err := c.ValidateValue("Vehicle", "Body", value.SetOf(bodyRef)); !errors.Is(err, ErrDomainMismatch) {
		t.Fatalf("collection for scalar: %v", err)
	}
	// Nil always passes.
	if err := c.ValidateValue("Vehicle", "Body", value.Nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidateValueSubclassAllowed(t *testing.T) {
	c := NewCatalog()
	c.DefineClass(ClassDef{Name: "Wheel"})
	c.DefineClass(ClassDef{Name: "AlloyWheel", Superclasses: []string{"Wheel"}})
	c.DefineClass(ClassDef{Name: "Car", Attributes: []AttrSpec{NewAttr("W", ClassDomain("Wheel"))}})
	alloy, _ := c.Class("AlloyWheel")
	if err := c.ValidateValue("Car", "W", value.Ref(uid.UID{Class: alloy.ID, Serial: 1})); err != nil {
		t.Fatalf("subclass instance rejected: %v", err)
	}
}
