package schema

import (
	"fmt"
	"sort"

	"repro/internal/object"
	"repro/internal/uid"
)

// ChangeKind identifies a state-independent attribute-type change (§4.2).
// The state-dependent changes D1–D3 are not ChangeKinds because they can
// never be deferred: they require immediate verification of the X flags
// (§4.3), so the engine performs them eagerly via UpdateAttributeFlags.
type ChangeKind uint8

// The state-independent changes of §4.2.
const (
	// ChangeDropComposite is I1: composite -> non-composite.
	ChangeDropComposite ChangeKind = iota + 1
	// ChangeToShared is I2: exclusive composite -> shared composite.
	ChangeToShared
	// ChangeToIndependent is I3: dependent composite -> independent.
	ChangeToIndependent
	// ChangeToDependent is I4: independent composite -> dependent.
	ChangeToDependent
)

// String names the change as in the paper.
func (k ChangeKind) String() string {
	switch k {
	case ChangeDropComposite:
		return "I1 (composite -> non-composite)"
	case ChangeToShared:
		return "I2 (exclusive -> shared)"
	case ChangeToIndependent:
		return "I3 (dependent -> independent)"
	case ChangeToDependent:
		return "I4 (independent -> dependent)"
	default:
		return fmt.Sprintf("change(%d)", uint8(k))
	}
}

// LogEntry is one recorded attribute-type change in a domain class's
// operation log (§4.3): the change kind, the owning class C' whose
// attribute changed, and the change count CC at which it was issued.
type LogEntry struct {
	CC         uint64
	Kind       ChangeKind
	OwnerClass string
	OwnerID    uid.ClassID
	Attr       string
}

// OpLog is the operation log kept per domain class C, recording
// type changes to attributes of which C is the domain.
type OpLog struct {
	Entries []LogEntry
}

// ChangeAttributeType performs a state-independent change (I1–I4) to
// attribute attr of class name. The spec change is always immediate (the
// catalog is authoritative); what may be deferred is the rewriting of the
// D/X flags in the reverse composite references of the referenced
// instances. With deferred=false the caller (engine) must rewrite flags in
// all instances of the domain class now; with deferred=true the change is
// appended to the domain class's operation log and instances are fixed up
// lazily by ApplyPending when next accessed (§4.3).
//
// The returned LogEntry describes the flag rewrite in either mode.
func (c *Catalog) ChangeAttributeType(name, attr string, kind ChangeKind, deferred bool) (LogEntry, error) {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	def, err := c.definingClassLocked(name, attr)
	if err != nil {
		return LogEntry{}, err
	}
	var spec *AttrSpec
	for i := range def.Own {
		if def.Own[i].Name == attr {
			spec = &def.Own[i]
			break
		}
	}
	if !spec.Composite {
		return LogEntry{}, fmt.Errorf("schema: %s of non-composite %q.%q", kind, name, attr)
	}
	switch kind {
	case ChangeDropComposite:
		spec.Composite = false
	case ChangeToShared:
		if !spec.Exclusive {
			return LogEntry{}, fmt.Errorf("schema: I2 of already-shared %q.%q", name, attr)
		}
		spec.Exclusive = false
	case ChangeToIndependent:
		if !spec.Dependent {
			return LogEntry{}, fmt.Errorf("schema: I3 of already-independent %q.%q", name, attr)
		}
		spec.Dependent = false
	case ChangeToDependent:
		if spec.Dependent {
			return LogEntry{}, fmt.Errorf("schema: I4 of already-dependent %q.%q", name, attr)
		}
		spec.Dependent = true
	default:
		return LogEntry{}, fmt.Errorf("schema: unknown change kind %d", kind)
	}
	entry := LogEntry{
		Kind:       kind,
		OwnerClass: def.Name,
		OwnerID:    def.ID,
		Attr:       attr,
	}
	if deferred {
		domain := spec.Domain.Class
		log := c.logs[domain]
		if log == nil {
			log = &OpLog{}
			c.logs[domain] = log
		}
		c.globalCC++
		entry.CC = c.globalCC
		log.Entries = append(log.Entries, entry)
	}
	return entry, nil
}

// UpdateAttributeFlags overwrites the composite/exclusive/dependent flags
// of attr. It is the catalog half of the state-dependent changes D1–D3:
// the engine verifies the preconditions against instance state first, then
// records the new spec here.
func (c *Catalog) UpdateAttributeFlags(name, attr string, composite, exclusive, dependent bool) error {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	def, err := c.definingClassLocked(name, attr)
	if err != nil {
		return err
	}
	for i := range def.Own {
		if def.Own[i].Name == attr {
			if composite && def.Own[i].Domain.Kind != DomainClass {
				return fmt.Errorf("schema: %q.%q cannot become composite: primitive domain", name, attr)
			}
			def.Own[i].Composite = composite
			def.Own[i].Exclusive = exclusive
			def.Own[i].Dependent = dependent
			return nil
		}
	}
	return fmt.Errorf("%q.%q: %w", name, attr, ErrNoAttr)
}

// CurrentCC returns the catalog-wide change counter. New instances are
// stamped with this value so that no pending changes apply to them
// (§4.3: "the CC of the instance is set to the current value of the CC of
// the class, since changes issued before the creation of the instance
// need not be applied to this instance").
func (c *Catalog) CurrentCC() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.globalCC
}

// Pending returns the log entries with CC greater than cc that apply to
// instances of class name (looking through name's superclasses, since a
// reference typed by superclass C may point to an instance of a subclass).
func (c *Catalog) Pending(name string, cc uint64) []LogEntry {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []LogEntry
	seen := map[string]bool{}
	var walk func(n string)
	walk = func(n string) {
		if seen[n] {
			return
		}
		seen[n] = true
		if log := c.logs[n]; log != nil {
			for _, e := range log.Entries {
				if e.CC > cc {
					out = append(out, e)
				}
			}
		}
		if cl, ok := c.classes[n]; ok {
			for _, s := range cl.Superclasses {
				walk(s)
			}
		}
	}
	walk(name)
	sort.Slice(out, func(i, j int) bool { return out[i].CC < out[j].CC })
	return out
}

// ApplyPending applies all deferred flag changes newer than o's CC stamp
// to o's reverse composite references, then advances the stamp. className
// is o's class name. It returns the number of entries applied.
//
// Per §2.4 a reverse composite reference records only the parent UID and
// the D/X flags, not the attribute it arose from; like the paper's
// implementation, matching is therefore by the parent's class (the entry's
// owner class C' or a subclass).
func (c *Catalog) ApplyPending(className string, o *object.Object) int {
	entries := c.Pending(className, o.CC())
	if len(entries) == 0 {
		return 0
	}
	for _, e := range entries {
		for _, r := range append([]object.ReverseRef(nil), o.Reverse()...) {
			pc, err := c.ClassByID(r.Parent.Class)
			if err != nil || !c.IsA(pc.Name, e.OwnerClass) {
				continue
			}
			switch e.Kind {
			case ChangeDropComposite:
				o.RemoveReverse(r.Parent)
			case ChangeToShared:
				o.SetReverseFlags(r.Parent, r.Dependent, false)
			case ChangeToIndependent:
				o.SetReverseFlags(r.Parent, false, r.Exclusive)
			case ChangeToDependent:
				o.SetReverseFlags(r.Parent, true, r.Exclusive)
			}
		}
	}
	o.SetCC(entries[len(entries)-1].CC)
	return len(entries)
}

// AddAttribute appends a new own attribute to the class.
func (c *Catalog) AddAttribute(name string, spec AttrSpec) error {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	cl, err := c.classLocked(name)
	if err != nil {
		return err
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	attrs, err := c.attributesLocked(name, map[string]bool{})
	if err != nil {
		return err
	}
	for _, a := range attrs {
		if a.Name == spec.Name {
			return fmt.Errorf("%q.%q: %w", name, spec.Name, ErrDupAttr)
		}
	}
	if spec.Domain.Kind == DomainClass {
		if _, ok := c.classes[spec.Domain.Class]; !ok {
			return fmt.Errorf("domain %q: %w", spec.Domain.Class, ErrNoClass)
		}
	}
	cl.Own = append(cl.Own, spec)
	return nil
}

// DropAttribute removes attr from the class that defines it (§4.1 change
// 1). Dropping an attribute inherited by name is an error; ORION requires
// the change on the defining class, whence it propagates to all
// subclasses automatically. The removed spec is returned so the engine can
// delete dependent components per the Deletion Rule.
func (c *Catalog) DropAttribute(name, attr string) (AttrSpec, error) {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	cl, err := c.classLocked(name)
	if err != nil {
		return AttrSpec{}, err
	}
	for i := range cl.Own {
		if cl.Own[i].Name == attr {
			spec := cl.Own[i]
			cl.Own = append(cl.Own[:i], cl.Own[i+1:]...)
			return spec, nil
		}
	}
	if _, err := c.definingClassLocked(name, attr); err == nil {
		return AttrSpec{}, fmt.Errorf("%q.%q: %w", name, attr, ErrInherited)
	}
	return AttrSpec{}, fmt.Errorf("%q.%q: %w", name, attr, ErrNoAttr)
}

// RenameAttribute renames attr of the class that defines it (part of the
// [BANE87b] taxonomy the paper builds on). The engine renames the stored
// values in all instances; renaming an inherited attribute is rejected as
// with DropAttribute.
func (c *Catalog) RenameAttribute(name, attr, newName string) error {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	cl, err := c.classLocked(name)
	if err != nil {
		return err
	}
	if newName == "" {
		return fmt.Errorf("schema: empty new attribute name")
	}
	if attrs, err := c.attributesLocked(name, map[string]bool{}); err == nil {
		for _, a := range attrs {
			if a.Name == newName {
				return fmt.Errorf("%q.%q: %w", name, newName, ErrDupAttr)
			}
		}
	}
	for i := range cl.Own {
		if cl.Own[i].Name == attr {
			cl.Own[i].Name = newName
			return nil
		}
	}
	if _, err := c.definingClassLocked(name, attr); err == nil {
		return fmt.Errorf("%q.%q: %w", name, attr, ErrInherited)
	}
	return fmt.Errorf("%q.%q: %w", name, attr, ErrNoAttr)
}

// AddSuperclass appends super to name's superclass list (§4.1: changes to
// the IS-A lattice), rejecting cycles.
func (c *Catalog) AddSuperclass(name, super string) error {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	cl, err := c.classLocked(name)
	if err != nil {
		return err
	}
	if _, err := c.classLocked(super); err != nil {
		return err
	}
	for _, s := range cl.Superclasses {
		if s == super {
			return nil
		}
	}
	if c.isALocked(super, name, map[string]bool{}) {
		return fmt.Errorf("%q <- %q: %w", name, super, ErrCycle)
	}
	cl.Superclasses = append(cl.Superclasses, super)
	return nil
}

// RemoveSuperclass removes super from name's superclass list (§4.1 change
// 3) and returns the attribute specs that name loses as a result: those it
// inherited from super that are not also available through another
// superclass or its own list. The engine uses the composite specs among
// them to cascade deletions.
func (c *Catalog) RemoveSuperclass(name, super string) ([]AttrSpec, error) {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	cl, err := c.classLocked(name)
	if err != nil {
		return nil, err
	}
	idx := -1
	for i, s := range cl.Superclasses {
		if s == super {
			idx = i
			break
		}
	}
	if idx == -1 {
		return nil, fmt.Errorf("%q is not a superclass of %q: %w", super, name, ErrNotSuper)
	}
	before, err := c.attributesLocked(name, map[string]bool{})
	if err != nil {
		return nil, err
	}
	cl.Superclasses = append(cl.Superclasses[:idx], cl.Superclasses[idx+1:]...)
	after, err := c.attributesLocked(name, map[string]bool{})
	if err != nil {
		return nil, err
	}
	remain := map[string]bool{}
	for _, a := range after {
		remain[a.Name] = true
	}
	var lost []AttrSpec
	for _, a := range before {
		if !remain[a.Name] {
			lost = append(lost, a)
		}
	}
	return lost, nil
}

// CanDropClass reports whether DropClass would succeed: the class exists
// and is not the domain of any other class's attribute. The engine checks
// this before deleting the class's instances.
func (c *Catalog) CanDropClass(name string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, err := c.classLocked(name); err != nil {
		return err
	}
	return c.domainUsageLocked(name)
}

func (c *Catalog) domainUsageLocked(name string) error {
	for _, other := range c.classes {
		if other.Name == name {
			continue
		}
		for _, a := range other.Own {
			if a.Domain.Kind == DomainClass && a.Domain.Class == name {
				return fmt.Errorf("schema: class %q is the domain of %q.%q; drop that attribute first", name, other.Name, a.Name)
			}
		}
	}
	return nil
}

// DropClass removes the class from the lattice (§4.1 change 4): all its
// subclasses become immediate subclasses of its superclasses. It returns
// the dropped class; the engine is responsible for deleting its instances
// (cascading per the Deletion Rule) before calling this. Dropping a class
// that is the domain of another class's attribute is rejected to keep the
// catalog referentially sound.
func (c *Catalog) DropClass(name string) (*Class, error) {
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	cl, err := c.classLocked(name)
	if err != nil {
		return nil, err
	}
	if err := c.domainUsageLocked(name); err != nil {
		return nil, err
	}
	subs := c.subclassesLocked(name)
	for _, sn := range subs {
		sub := c.classes[sn]
		var nl []string
		for _, s := range sub.Superclasses {
			if s != name {
				nl = append(nl, s)
			}
		}
		// Inherit the dropped class's superclasses in its place.
		for _, s := range cl.Superclasses {
			dup := false
			for _, have := range nl {
				if have == s {
					dup = true
					break
				}
			}
			if !dup {
				nl = append(nl, s)
			}
		}
		sub.Superclasses = nl
	}
	delete(c.classes, name)
	delete(c.byID, cl.ID)
	delete(c.logs, name)
	return cl, nil
}
