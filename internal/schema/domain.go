// Package schema implements the metaobject catalog: class definitions
// with ORION-style multiple inheritance, attribute specifications carrying
// the paper's :composite/:exclusive/:dependent keywords (§2.3), the
// composite class hierarchy, the class predicates of §3.2, and the schema
// evolution taxonomy of §4 including deferred application via per-class
// operation logs and change counts (§4.3).
//
// Go has no class inheritance, so the ORION class lattice is data, not
// types: a Catalog maps class names to Class metaobjects and computes
// effective (inherited) attributes on demand.
package schema

import (
	"fmt"

	"repro/internal/value"
)

// DomainKind says whether an attribute draws its values from a primitive
// domain or from a class (making its values references).
type DomainKind uint8

// Domain kinds.
const (
	DomainPrimitive DomainKind = iota
	DomainClass
)

// Domain is the value domain of an attribute.
type Domain struct {
	Kind  DomainKind
	Prim  value.Kind // when Kind == DomainPrimitive
	Class string     // when Kind == DomainClass
}

// PrimDomain returns a primitive domain.
func PrimDomain(k value.Kind) Domain { return Domain{Kind: DomainPrimitive, Prim: k} }

// ClassDomain returns a class-valued domain.
func ClassDomain(name string) Domain { return Domain{Kind: DomainClass, Class: name} }

// Convenience primitive domains matching the paper's examples.
var (
	IntDomain    = PrimDomain(value.KindInt)
	RealDomain   = PrimDomain(value.KindReal)
	StringDomain = PrimDomain(value.KindString)
	BoolDomain   = PrimDomain(value.KindBool)
)

// String renders the domain as in a class definition.
func (d Domain) String() string {
	if d.Kind == DomainPrimitive {
		return d.Prim.String()
	}
	return d.Class
}

// AttrSpec is an attribute specification: the paper's
//
//	(AttributeName :domain D [:set-of] :composite T :exclusive T :dependent T)
//
// For composite attributes the paper's defaults are exclusive=true and
// dependent=true, "to be compatible with the semantics of composite
// objects currently supported in ORION" (§2.3); NewCompositeAttr applies
// those defaults.
type AttrSpec struct {
	Name      string
	Domain    Domain
	SetOf     bool        // :domain (set-of X)
	Composite bool        // :composite true
	Exclusive bool        // :exclusive true (composite only)
	Dependent bool        // :dependent true (composite only)
	Initial   value.Value // :init InitialValue
	Doc       string      // :document
}

// NewAttr returns a weak-reference or primitive attribute spec.
func NewAttr(name string, d Domain) AttrSpec {
	return AttrSpec{Name: name, Domain: d}
}

// NewSetAttr returns a set-valued attribute spec.
func NewSetAttr(name string, d Domain) AttrSpec {
	return AttrSpec{Name: name, Domain: d, SetOf: true}
}

// NewCompositeAttr returns a composite attribute spec with the paper's
// defaults (exclusive and dependent both true).
func NewCompositeAttr(name string, class string) AttrSpec {
	return AttrSpec{
		Name: name, Domain: ClassDomain(class),
		Composite: true, Exclusive: true, Dependent: true,
	}
}

// NewCompositeSetAttr returns a set-valued composite attribute spec with
// the paper's defaults.
func NewCompositeSetAttr(name string, class string) AttrSpec {
	a := NewCompositeAttr(name, class)
	a.SetOf = true
	return a
}

// WithExclusive sets the :exclusive keyword and returns the spec.
func (a AttrSpec) WithExclusive(x bool) AttrSpec { a.Exclusive = x; return a }

// WithDependent sets the :dependent keyword and returns the spec.
func (a AttrSpec) WithDependent(d bool) AttrSpec { a.Dependent = d; return a }

// WithInitial sets the :init keyword and returns the spec.
func (a AttrSpec) WithInitial(v value.Value) AttrSpec { a.Initial = v; return a }

// Validate rejects malformed specs (composite with primitive domain, etc.).
func (a AttrSpec) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("schema: attribute with empty name")
	}
	if a.Composite && a.Domain.Kind != DomainClass {
		return fmt.Errorf("schema: composite attribute %q must have a class domain", a.Name)
	}
	if a.Domain.Kind == DomainPrimitive {
		switch a.Domain.Prim {
		case value.KindInt, value.KindReal, value.KindString, value.KindBool:
		default:
			return fmt.Errorf("schema: attribute %q: invalid primitive domain %v", a.Name, a.Domain.Prim)
		}
	}
	return nil
}

// RefKind classifies the five reference types of §2.1 as carried by an
// attribute specification.
type RefKind uint8

// The five reference types of §2.1. NonRef covers primitive-domain
// attributes, which reference nothing.
const (
	NonRef RefKind = iota
	WeakRef
	DependentExclusive
	IndependentExclusive
	DependentShared
	IndependentShared
)

// String names the reference kind as in the paper.
func (k RefKind) String() string {
	switch k {
	case NonRef:
		return "non-reference"
	case WeakRef:
		return "weak"
	case DependentExclusive:
		return "dependent exclusive composite"
	case IndependentExclusive:
		return "independent exclusive composite"
	case DependentShared:
		return "dependent shared composite"
	case IndependentShared:
		return "independent shared composite"
	default:
		return fmt.Sprintf("refkind(%d)", uint8(k))
	}
}

// IsComposite reports whether the kind carries IS-PART-OF semantics.
func (k RefKind) IsComposite() bool { return k >= DependentExclusive }

// IsExclusive reports whether the kind is an exclusive composite reference.
func (k RefKind) IsExclusive() bool {
	return k == DependentExclusive || k == IndependentExclusive
}

// IsDependent reports whether the kind is a dependent composite reference.
func (k RefKind) IsDependent() bool {
	return k == DependentExclusive || k == DependentShared
}

// RefKind returns the reference type the attribute imposes on its values.
func (a AttrSpec) RefKind() RefKind {
	if a.Domain.Kind != DomainClass {
		return NonRef
	}
	if !a.Composite {
		return WeakRef
	}
	switch {
	case a.Exclusive && a.Dependent:
		return DependentExclusive
	case a.Exclusive:
		return IndependentExclusive
	case a.Dependent:
		return DependentShared
	default:
		return IndependentShared
	}
}
