package schema

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/uid"
)

// catalogState is the serialized catalog: class metaobjects, the deferred
// operation logs, and the counters.
type catalogState struct {
	NextID   uid.ClassID       `json:"next_id"`
	GlobalCC uint64            `json:"global_cc"`
	Classes  []Class           `json:"classes"`
	Logs     map[string]*OpLog `json:"logs,omitempty"`
}

// Save serializes the catalog.
func (c *Catalog) Save(w io.Writer) error {
	c.mu.RLock()
	st := catalogState{NextID: c.nextID, GlobalCC: c.globalCC, Logs: map[string]*OpLog{}}
	for _, cl := range c.classes {
		st.Classes = append(st.Classes, *cl)
	}
	for name, log := range c.logs {
		if len(log.Entries) > 0 {
			cp := *log
			st.Logs[name] = &cp
		}
	}
	c.mu.RUnlock()
	sort.Slice(st.Classes, func(i, j int) bool { return st.Classes[i].ID < st.Classes[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&st)
}

// Load restores a catalog saved by Save, replacing the current contents.
func (c *Catalog) Load(r io.Reader) error {
	var st catalogState
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("schema: load catalog: %w", err)
	}
	c.mu.Lock()
	defer c.version.Add(1)
	defer c.mu.Unlock()
	c.nextID = st.NextID
	c.globalCC = st.GlobalCC
	c.classes = make(map[string]*Class, len(st.Classes))
	c.byID = make(map[uid.ClassID]*Class, len(st.Classes))
	for i := range st.Classes {
		cl := st.Classes[i]
		c.classes[cl.Name] = &cl
		c.byID[cl.ID] = &cl
		if cl.ID >= c.nextID {
			c.nextID = cl.ID + 1
		}
	}
	c.logs = make(map[string]*OpLog, len(st.Logs))
	for name, log := range st.Logs {
		c.logs[name] = log
	}
	return nil
}
