package schema

import (
	"errors"
	"testing"

	"repro/internal/object"
	"repro/internal/uid"
)

// evoCatalog: class Cp (C') with composite attribute A whose domain is C,
// matching the notation of §4.2–4.3.
func evoCatalog(t *testing.T) *Catalog {
	t.Helper()
	c := NewCatalog()
	if _, err := c.DefineClass(ClassDef{Name: "C"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DefineClass(ClassDef{
		Name:       "Cp",
		Attributes: []AttrSpec{NewCompositeAttr("A", "C")}, // dependent exclusive (defaults)
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChangeI1DropComposite(t *testing.T) {
	c := evoCatalog(t)
	e, err := c.ChangeAttributeType("Cp", "A", ChangeDropComposite, false)
	if err != nil {
		t.Fatal(err)
	}
	if e.OwnerClass != "Cp" || e.Attr != "A" || e.Kind != ChangeDropComposite {
		t.Fatalf("entry = %+v", e)
	}
	a, _ := c.Attribute("Cp", "A")
	if a.Composite {
		t.Fatal("A still composite after I1")
	}
	if a.RefKind() != WeakRef {
		t.Fatalf("RefKind = %v", a.RefKind())
	}
	// I2 on a non-composite attribute is an error.
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToShared, false); err == nil {
		t.Fatal("I2 of non-composite accepted")
	}
}

func TestChangeI2I3I4(t *testing.T) {
	c := evoCatalog(t)
	// I2: exclusive -> shared.
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToShared, false); err != nil {
		t.Fatal(err)
	}
	a, _ := c.Attribute("Cp", "A")
	if a.RefKind() != DependentShared {
		t.Fatalf("after I2: %v", a.RefKind())
	}
	// I2 again fails (already shared).
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToShared, false); err == nil {
		t.Fatal("double I2 accepted")
	}
	// I3: dependent -> independent.
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToIndependent, false); err != nil {
		t.Fatal(err)
	}
	a, _ = c.Attribute("Cp", "A")
	if a.RefKind() != IndependentShared {
		t.Fatalf("after I3: %v", a.RefKind())
	}
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToIndependent, false); err == nil {
		t.Fatal("double I3 accepted")
	}
	// I4: independent -> dependent.
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToDependent, false); err != nil {
		t.Fatal(err)
	}
	a, _ = c.Attribute("Cp", "A")
	if a.RefKind() != DependentShared {
		t.Fatalf("after I4: %v", a.RefKind())
	}
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToDependent, false); err == nil {
		t.Fatal("double I4 accepted")
	}
}

func TestDeferredChangeAppliesLazily(t *testing.T) {
	c := evoCatalog(t)
	cp, _ := c.Class("Cp")
	cc, _ := c.Class("C")

	// An existing instance of C with a DX reverse ref from a Cp parent.
	o := object.New(uid.UID{Class: cc.ID, Serial: 1})
	o.AddReverse(object.ReverseRef{
		Parent: uid.UID{Class: cp.ID, Serial: 1}, Dependent: true, Exclusive: true,
	})
	o.SetCC(c.CurrentCC())

	// Deferred I2 then deferred I3.
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToShared, true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToIndependent, true); err != nil {
		t.Fatal(err)
	}
	// Spec is updated immediately even in deferred mode.
	a, _ := c.Attribute("Cp", "A")
	if a.RefKind() != IndependentShared {
		t.Fatalf("spec after deferred changes: %v", a.RefKind())
	}
	// Instance flags are stale until ApplyPending.
	r := o.Reverse()[0]
	if !r.Dependent || !r.Exclusive {
		t.Fatal("instance flags changed eagerly in deferred mode")
	}
	if n := c.ApplyPending("C", o); n != 2 {
		t.Fatalf("ApplyPending applied %d entries, want 2", n)
	}
	r = o.Reverse()[0]
	if r.Dependent || r.Exclusive {
		t.Fatalf("flags after ApplyPending = %+v", r)
	}
	if o.CC() != c.CurrentCC() {
		t.Fatalf("CC stamp = %d, want %d", o.CC(), c.CurrentCC())
	}
	// Idempotent: nothing more to apply.
	if n := c.ApplyPending("C", o); n != 0 {
		t.Fatalf("second ApplyPending applied %d", n)
	}
}

func TestDeferredChangeSkipsNewInstances(t *testing.T) {
	c := evoCatalog(t)
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToShared, true); err != nil {
		t.Fatal(err)
	}
	cc, _ := c.Class("C")
	cp, _ := c.Class("Cp")
	// An instance created after the change is stamped with the current CC;
	// its reverse refs were written under the new spec already.
	o := object.New(uid.UID{Class: cc.ID, Serial: 2})
	o.SetCC(c.CurrentCC())
	o.AddReverse(object.ReverseRef{Parent: uid.UID{Class: cp.ID, Serial: 9}, Dependent: true, Exclusive: false})
	if n := c.ApplyPending("C", o); n != 0 {
		t.Fatalf("change issued before creation applied to new instance: %d", n)
	}
	if o.Reverse()[0].Exclusive {
		t.Fatal("flags clobbered")
	}
}

func TestDeferredDropCompositeRemovesReverse(t *testing.T) {
	c := evoCatalog(t)
	cp, _ := c.Class("Cp")
	cc, _ := c.Class("C")
	o := object.New(uid.UID{Class: cc.ID, Serial: 1})
	o.AddReverse(object.ReverseRef{Parent: uid.UID{Class: cp.ID, Serial: 1}, Dependent: true, Exclusive: true})
	// A reverse ref from an unrelated class must be untouched.
	other, _ := c.DefineClass(ClassDef{Name: "Other", Attributes: []AttrSpec{NewCompositeAttr("B", "C").WithExclusive(false)}})
	o.AddReverse(object.ReverseRef{Parent: uid.UID{Class: other.ID, Serial: 5}, Dependent: true, Exclusive: false})

	if _, err := c.ChangeAttributeType("Cp", "A", ChangeDropComposite, true); err != nil {
		t.Fatal(err)
	}
	c.ApplyPending("C", o)
	if len(o.Reverse()) != 1 {
		t.Fatalf("reverse refs = %v", o.Reverse())
	}
	if o.Reverse()[0].Parent.Class != other.ID {
		t.Fatal("wrong reverse ref removed")
	}
}

func TestPendingViaSuperclass(t *testing.T) {
	// References typed by class C may point to instances of a subclass D;
	// pending entries logged under C must reach instances of D.
	c := evoCatalog(t)
	cp, _ := c.Class("Cp")
	d, err := c.DefineClass(ClassDef{Name: "D", Superclasses: []string{"C"}})
	if err != nil {
		t.Fatal(err)
	}
	o := object.New(uid.UID{Class: d.ID, Serial: 1})
	o.AddReverse(object.ReverseRef{Parent: uid.UID{Class: cp.ID, Serial: 1}, Dependent: true, Exclusive: true})
	if _, err := c.ChangeAttributeType("Cp", "A", ChangeToShared, true); err != nil {
		t.Fatal(err)
	}
	if n := c.ApplyPending("D", o); n != 1 {
		t.Fatalf("applied %d entries to subclass instance", n)
	}
	if o.Reverse()[0].Exclusive {
		t.Fatal("X flag not cleared on subclass instance")
	}
}

func TestUpdateAttributeFlags(t *testing.T) {
	c := NewCatalog()
	c.DefineClass(ClassDef{Name: "C"})
	c.DefineClass(ClassDef{Name: "Cp", Attributes: []AttrSpec{
		NewAttr("A", ClassDomain("C")), // weak
		NewAttr("n", IntDomain),
	}})
	// D2: weak -> shared composite (engine verified preconditions).
	if err := c.UpdateAttributeFlags("Cp", "A", true, false, false); err != nil {
		t.Fatal(err)
	}
	a, _ := c.Attribute("Cp", "A")
	if a.RefKind() != IndependentShared {
		t.Fatalf("after D2: %v", a.RefKind())
	}
	// D3: shared -> exclusive.
	if err := c.UpdateAttributeFlags("Cp", "A", true, true, false); err != nil {
		t.Fatal(err)
	}
	a, _ = c.Attribute("Cp", "A")
	if a.RefKind() != IndependentExclusive {
		t.Fatalf("after D3: %v", a.RefKind())
	}
	// Primitive attribute cannot become composite.
	if err := c.UpdateAttributeFlags("Cp", "n", true, true, true); err == nil {
		t.Fatal("composite over primitive accepted")
	}
	if err := c.UpdateAttributeFlags("Cp", "ghost", true, true, true); !errors.Is(err, ErrNoAttr) {
		t.Fatalf("ghost attr: %v", err)
	}
}

func TestAddDropAttribute(t *testing.T) {
	c := evoCatalog(t)
	if err := c.AddAttribute("Cp", NewAttr("extra", IntDomain)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attribute("Cp", "extra"); err != nil {
		t.Fatal(err)
	}
	if err := c.AddAttribute("Cp", NewAttr("extra", IntDomain)); !errors.Is(err, ErrDupAttr) {
		t.Fatalf("dup add: %v", err)
	}
	if err := c.AddAttribute("Cp", NewAttr("bad", ClassDomain("Ghost"))); !errors.Is(err, ErrNoClass) {
		t.Fatalf("bad domain: %v", err)
	}
	spec, err := c.DropAttribute("Cp", "A")
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Composite || spec.Domain.Class != "C" {
		t.Fatalf("dropped spec = %+v", spec)
	}
	if _, err := c.Attribute("Cp", "A"); !errors.Is(err, ErrNoAttr) {
		t.Fatalf("attr still visible: %v", err)
	}
	if _, err := c.DropAttribute("Cp", "A"); !errors.Is(err, ErrNoAttr) {
		t.Fatalf("double drop: %v", err)
	}
}

func TestDropInheritedAttributeRejected(t *testing.T) {
	c := evoCatalog(t)
	if _, err := c.DefineClass(ClassDef{Name: "Sub", Superclasses: []string{"Cp"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DropAttribute("Sub", "A"); !errors.Is(err, ErrInherited) {
		t.Fatalf("drop of inherited attr: %v", err)
	}
	// Dropping on the defining class propagates to the subclass.
	if _, err := c.DropAttribute("Cp", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attribute("Sub", "A"); !errors.Is(err, ErrNoAttr) {
		t.Fatal("subclass still sees dropped attribute")
	}
}

func TestAddRemoveSuperclass(t *testing.T) {
	c := NewCatalog()
	c.DefineClass(ClassDef{Name: "P1", Attributes: []AttrSpec{NewAttr("a", IntDomain)}})
	c.DefineClass(ClassDef{Name: "P2", Attributes: []AttrSpec{NewAttr("a", StringDomain), NewAttr("b", IntDomain)}})
	c.DefineClass(ClassDef{Name: "C", Superclasses: []string{"P1", "P2"}})

	// Removing P1 loses nothing named "a" (P2 also provides it) — the lost
	// list is empty because every name is still available.
	lost, err := c.RemoveSuperclass("C", "P1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 0 {
		t.Fatalf("lost = %v, want none (P2 provides a)", lost)
	}
	// But the inherited spec for "a" now comes from P2.
	a, _ := c.Attribute("C", "a")
	if a.Domain != StringDomain {
		t.Fatalf("a now = %v, want P2's string", a.Domain)
	}
	// Removing P2 loses both a and b.
	lost, err = c.RemoveSuperclass("C", "P2")
	if err != nil {
		t.Fatal(err)
	}
	if len(lost) != 2 {
		t.Fatalf("lost = %v", lost)
	}
	if err := func() error { _, err := c.RemoveSuperclass("C", "P2"); return err }(); !errors.Is(err, ErrNotSuper) {
		t.Fatalf("remove absent super: %v", err)
	}
	// Re-add.
	if err := c.AddSuperclass("C", "P1"); err != nil {
		t.Fatal(err)
	}
	if !c.IsA("C", "P1") {
		t.Fatal("AddSuperclass did not take")
	}
	// Cycle rejected.
	if err := c.AddSuperclass("P1", "C"); !errors.Is(err, ErrCycle) {
		t.Fatalf("cycle: %v", err)
	}
	// Duplicate add is a no-op.
	if err := c.AddSuperclass("C", "P1"); err != nil {
		t.Fatal(err)
	}
	cl, _ := c.Class("C")
	if len(cl.Superclasses) != 1 {
		t.Fatalf("superclasses = %v", cl.Superclasses)
	}
}

func TestDropClassLatticeSurgery(t *testing.T) {
	c := NewCatalog()
	c.DefineClass(ClassDef{Name: "Top", Attributes: []AttrSpec{NewAttr("t", IntDomain)}})
	c.DefineClass(ClassDef{Name: "Mid", Superclasses: []string{"Top"}, Attributes: []AttrSpec{NewAttr("m", IntDomain)}})
	c.DefineClass(ClassDef{Name: "Leaf", Superclasses: []string{"Mid"}})
	dropped, err := c.DropClass("Mid")
	if err != nil {
		t.Fatal(err)
	}
	if dropped.Name != "Mid" {
		t.Fatalf("dropped = %v", dropped)
	}
	// Leaf is now an immediate subclass of Top (§4.1).
	leaf, _ := c.Class("Leaf")
	if len(leaf.Superclasses) != 1 || leaf.Superclasses[0] != "Top" {
		t.Fatalf("Leaf supers = %v", leaf.Superclasses)
	}
	// Leaf keeps t (via Top) but loses m.
	if _, err := c.Attribute("Leaf", "t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Attribute("Leaf", "m"); !errors.Is(err, ErrNoAttr) {
		t.Fatalf("m still visible: %v", err)
	}
	if c.Has("Mid") {
		t.Fatal("Mid still present")
	}
}

func TestDropClassDomainProtection(t *testing.T) {
	c := evoCatalog(t)
	// C is the domain of Cp.A: dropping C must be rejected.
	if _, err := c.DropClass("C"); err == nil {
		t.Fatal("dropped a class still used as a domain")
	}
	// After dropping the attribute, the class can go.
	if _, err := c.DropAttribute("Cp", "A"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DropClass("C"); err != nil {
		t.Fatal(err)
	}
}

func TestChangeKindString(t *testing.T) {
	for k, want := range map[ChangeKind]string{
		ChangeDropComposite: "I1 (composite -> non-composite)",
		ChangeToShared:      "I2 (exclusive -> shared)",
		ChangeToIndependent: "I3 (dependent -> independent)",
		ChangeToDependent:   "I4 (independent -> dependent)",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
