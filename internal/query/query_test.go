package query

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

// garage builds a small vehicle fleet:
//
//	v1 red,  Id 1, body w=120, tires psi {30, 32}
//	v2 blue, Id 2, body w=80,  tires psi {28}
//	v3 red,  Id 3, no body,    no tires
type garage struct {
	e          *core.Engine
	v1, v2, v3 uid.UID
	b1, b2     uid.UID
}

func newGarage(t *testing.T) *garage {
	t.Helper()
	cat := schema.NewCatalog()
	mustDef := func(def schema.ClassDef) {
		if _, err := cat.DefineClass(def); err != nil {
			t.Fatal(err)
		}
	}
	mustDef(schema.ClassDef{Name: "AutoBody", Attributes: []schema.AttrSpec{
		schema.NewAttr("Weight", schema.IntDomain),
	}})
	mustDef(schema.ClassDef{Name: "Tire", Attributes: []schema.AttrSpec{
		schema.NewAttr("Psi", schema.IntDomain),
	}})
	mustDef(schema.ClassDef{Name: "Vehicle", Attributes: []schema.AttrSpec{
		schema.NewAttr("Id", schema.IntDomain),
		schema.NewAttr("Color", schema.StringDomain),
		schema.NewCompositeAttr("Body", "AutoBody").WithDependent(false),
		schema.NewCompositeSetAttr("Tires", "Tire").WithDependent(false),
	}})
	e := core.NewEngine(cat)
	g := &garage{e: e}
	mk := func(cl string, attrs map[string]value.Value) uid.UID {
		o, err := e.New(cl, attrs)
		if err != nil {
			t.Fatal(err)
		}
		return o.UID()
	}
	g.b1 = mk("AutoBody", map[string]value.Value{"Weight": value.Int(120)})
	g.b2 = mk("AutoBody", map[string]value.Value{"Weight": value.Int(80)})
	t1 := mk("Tire", map[string]value.Value{"Psi": value.Int(30)})
	t2 := mk("Tire", map[string]value.Value{"Psi": value.Int(32)})
	t3 := mk("Tire", map[string]value.Value{"Psi": value.Int(28)})
	g.v1 = mk("Vehicle", map[string]value.Value{
		"Id": value.Int(1), "Color": value.Str("red"),
		"Body": value.Ref(g.b1), "Tires": value.RefSet(t1, t2),
	})
	g.v2 = mk("Vehicle", map[string]value.Value{
		"Id": value.Int(2), "Color": value.Str("blue"),
		"Body": value.Ref(g.b2), "Tires": value.RefSet(t3),
	})
	g.v3 = mk("Vehicle", map[string]value.Value{
		"Id": value.Int(3), "Color": value.Str("red"),
	})
	return g
}

func sel(t *testing.T, g *garage, pred Expr) []uid.UID {
	t.Helper()
	out, err := Select(g.e, "Vehicle", false, pred)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSelectAll(t *testing.T) {
	g := newGarage(t)
	got := sel(t, g, nil)
	if len(got) != 3 {
		t.Fatalf("all = %v", got)
	}
	got = sel(t, g, True())
	if len(got) != 3 {
		t.Fatalf("True = %v", got)
	}
}

func TestScalarComparisons(t *testing.T) {
	g := newGarage(t)
	cases := []struct {
		pred Expr
		want []uid.UID
	}{
		{Attr("Color").Eq(value.Str("red")), []uid.UID{g.v1, g.v3}},
		{Attr("Color").Ne(value.Str("red")), []uid.UID{g.v2}},
		{Attr("Id").Lt(value.Int(3)), []uid.UID{g.v1, g.v2}},
		{Attr("Id").Le(value.Int(1)), []uid.UID{g.v1}},
		{Attr("Id").Gt(value.Int(2)), []uid.UID{g.v3}},
		{Attr("Id").Ge(value.Int(2)), []uid.UID{g.v2, g.v3}},
	}
	for i, c := range cases {
		got := sel(t, g, c.pred)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("case %d = %v, want %v", i, got, c.want)
		}
	}
}

func TestPathThroughCompositeReference(t *testing.T) {
	g := newGarage(t)
	// "vehicles whose body weighs more than 100"
	got := sel(t, g, Attr("Body", "Weight").Gt(value.Int(100)))
	if !reflect.DeepEqual(got, []uid.UID{g.v1}) {
		t.Fatalf("heavy vehicles = %v", got)
	}
	// v3 has no body: path denotes nothing, never matches.
	got = sel(t, g, Attr("Body", "Weight").Ge(value.Int(0)))
	if len(got) != 2 {
		t.Fatalf("bodied vehicles = %v", got)
	}
}

func TestPathThroughSetExistential(t *testing.T) {
	g := newGarage(t)
	// "vehicles with any tire under 30 psi" — existential through the set.
	got := sel(t, g, Attr("Tires", "Psi").Lt(value.Int(30)))
	if !reflect.DeepEqual(got, []uid.UID{g.v2}) {
		t.Fatalf("underinflated = %v", got)
	}
}

func TestQuantifiers(t *testing.T) {
	g := newGarage(t)
	// All tires at least 30 psi: v1 (30,32) yes; v2 (28) no; v3 vacuously.
	got := sel(t, g, Attr("Tires").All(Attr("Psi").Ge(value.Int(30))))
	if !reflect.DeepEqual(got, []uid.UID{g.v1, g.v3}) {
		t.Fatalf("all>=30 = %v", got)
	}
	// Any tire over 31.
	got = sel(t, g, Attr("Tires").Any(Attr("Psi").Gt(value.Int(31)))) // v1's 32
	if !reflect.DeepEqual(got, []uid.UID{g.v1}) {
		t.Fatalf("any>31 = %v", got)
	}
}

func TestExists(t *testing.T) {
	g := newGarage(t)
	got := sel(t, g, Attr("Body").Exists())
	if !reflect.DeepEqual(got, []uid.UID{g.v1, g.v2}) {
		t.Fatalf("has body = %v", got)
	}
	got = sel(t, g, Not(Attr("Body").Exists()))
	if !reflect.DeepEqual(got, []uid.UID{g.v3}) {
		t.Fatalf("bodyless = %v", got)
	}
}

func TestConnectives(t *testing.T) {
	g := newGarage(t)
	got := sel(t, g, And(
		Attr("Color").Eq(value.Str("red")),
		Attr("Body").Exists(),
	))
	if !reflect.DeepEqual(got, []uid.UID{g.v1}) {
		t.Fatalf("red with body = %v", got)
	}
	got = sel(t, g, Or(
		Attr("Id").Eq(value.Int(2)),
		Attr("Id").Eq(value.Int(3)),
	))
	if !reflect.DeepEqual(got, []uid.UID{g.v2, g.v3}) {
		t.Fatalf("2 or 3 = %v", got)
	}
	// Empty And is true; empty Or is false.
	if got := sel(t, g, And()); len(got) != 3 {
		t.Fatalf("And() = %v", got)
	}
	if got := sel(t, g, Or()); len(got) != 0 {
		t.Fatalf("Or() = %v", got)
	}
}

func TestRefEquality(t *testing.T) {
	g := newGarage(t)
	got := sel(t, g, Attr("Body").Eq(value.Ref(g.b1)))
	if !reflect.DeepEqual(got, []uid.UID{g.v1}) {
		t.Fatalf("body==b1 = %v", got)
	}
}

func TestComponentOfPredicate(t *testing.T) {
	g := newGarage(t)
	got, err := Select(g.e, "Tire", false, ComponentOf(g.v1))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("tires of v1 = %v", got)
	}
}

func TestDeepSelectIncludesSubclasses(t *testing.T) {
	g := newGarage(t)
	if _, err := g.e.Catalog().DefineClass(schema.ClassDef{
		Name: "Truck", Superclasses: []string{"Vehicle"},
	}); err != nil {
		t.Fatal(err)
	}
	truck, _ := g.e.New("Truck", map[string]value.Value{"Color": value.Str("red")})
	got, err := Select(g.e, "Vehicle", true, Attr("Color").Eq(value.Str("red")))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range got {
		if id == truck.UID() {
			found = true
		}
	}
	if !found {
		t.Fatalf("deep select missed subclass instance: %v", got)
	}
	shallow, _ := Select(g.e, "Vehicle", false, Attr("Color").Eq(value.Str("red")))
	if len(shallow) != 2 {
		t.Fatalf("shallow select = %v", shallow)
	}
}

func TestErrors(t *testing.T) {
	g := newGarage(t)
	// Incomparable kinds.
	if _, err := Select(g.e, "Vehicle", false, Attr("Color").Gt(value.Int(1))); !errors.Is(err, ErrBadCmp) {
		t.Fatalf("incomparable: %v", err)
	}
	// Path through a primitive.
	if _, err := Select(g.e, "Vehicle", false, Attr("Color", "Deeper").Eq(value.Int(1))); !errors.Is(err, ErrBadPath) {
		t.Fatalf("bad path: %v", err)
	}
	// Unknown class.
	if _, err := Select(g.e, "Ghost", false, True()); err == nil {
		t.Fatal("ghost class accepted")
	}
}

func TestDanglingWeakRefsSkipped(t *testing.T) {
	// A dangling weak reference along a path is skipped, not an error.
	cat := schema.NewCatalog()
	cat.DefineClass(schema.ClassDef{Name: "T", Attributes: []schema.AttrSpec{
		schema.NewAttr("N", schema.IntDomain),
	}})
	cat.DefineClass(schema.ClassDef{Name: "H", Attributes: []schema.AttrSpec{
		schema.NewAttr("Ref", schema.ClassDomain("T")),
	}})
	e := core.NewEngine(cat)
	tgt, _ := e.New("T", map[string]value.Value{"N": value.Int(5)})
	h, _ := e.New("H", map[string]value.Value{"Ref": value.Ref(tgt.UID())})
	e.Delete(tgt.UID()) // weak ref now dangles
	got, err := Select(e, "H", false, Attr("Ref", "N").Eq(value.Int(5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("dangling path matched: %v", got)
	}
	_ = h
}
