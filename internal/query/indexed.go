package query

import (
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/uid"
)

// indexableEq extracts (attr, value) from a predicate when it is an
// equality test on a single-segment path — the shape a hash index can
// answer. For And, the first indexable conjunct is used.
func indexableEq(pred Expr, ix *index.Manager, class string) (*cmpExpr, bool) {
	switch p := pred.(type) {
	case *cmpExpr:
		if p.eq && !p.neg && len(p.path.segs) == 1 && ix.Has(class, p.path.segs[0]) {
			return p, true
		}
	case *andExpr:
		for _, k := range p.kids {
			if c, ok := indexableEq(k, ix, class); ok {
				return c, true
			}
		}
	}
	return nil, false
}

// SelectIndexed behaves like Select but answers single-attribute equality
// predicates (or And-conjuncts containing one) from a hash index when one
// exists, filtering the candidates with the full predicate. Without a
// usable index it falls back to the extent scan.
func SelectIndexed(e *core.Engine, ix *index.Manager, class string, deep bool, pred Expr) ([]uid.UID, error) {
	if pred == nil || ix == nil {
		return Select(e, class, deep, pred)
	}
	c, ok := indexableEq(pred, ix, class)
	if !ok {
		return Select(e, class, deep, pred)
	}
	candidates, err := ix.Lookup(class, c.path.segs[0], c.want)
	if err != nil {
		return Select(e, class, deep, pred)
	}
	var out []uid.UID
	for _, id := range candidates {
		// The index covers the class and its subclasses; a shallow select
		// must still exclude subclass instances.
		if !deep {
			cl, err := e.ClassOf(id)
			if err != nil || cl.Name != class {
				continue
			}
		}
		ok, err := pred.Eval(e, id)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	return out, nil
}
