// Package query implements associative queries over class extents, in the
// style of the ORION query model the paper's substrate provides
// ([BANE87a]): select the instances of a class (optionally including
// subclass instances) satisfying a predicate, where predicates may follow
// reference paths through the object graph — including composite
// references, so a query can ask for "vehicles whose body weighs more
// than 100" directly against the part hierarchy.
//
// Path semantics: a path segment that evaluates to a set of references is
// traversed existentially (the path denotes every object reachable along
// it), so Attr("Tires", "Pressure").Lt(30) is true when ANY tire is
// under-inflated; the All quantifier expresses the universal form.
package query

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/uid"
	"repro/internal/value"
)

// Sentinel errors.
var (
	ErrBadPath = errors.New("query: path does not name a reference attribute")
	ErrBadCmp  = errors.New("query: values not comparable")
)

// Expr is a boolean predicate over an object.
type Expr interface {
	Eval(e *core.Engine, id uid.UID) (bool, error)
}

// Path names an attribute path from the candidate object, e.g.
// Attr("Body", "Weight").
type Path struct {
	segs []string
}

// Attr builds a path.
func Attr(segs ...string) *Path { return &Path{segs: segs} }

// values returns every value the path denotes from id (existential
// traversal through reference sets).
func (p *Path) values(e *core.Engine, id uid.UID) ([]value.Value, error) {
	cur := []uid.UID{id}
	for i, seg := range p.segs {
		last := i == len(p.segs)-1
		var nextVals []value.Value
		var nextIDs []uid.UID
		for _, o := range cur {
			obj, err := e.Get(o)
			if err != nil {
				continue // dangling weak reference along the path
			}
			v := obj.Get(seg)
			if v.IsNil() {
				continue
			}
			if last {
				nextVals = append(nextVals, v)
				continue
			}
			refs := v.Refs(nil)
			if len(refs) == 0 {
				return nil, fmt.Errorf("segment %q of %v: %w", seg, p.segs, ErrBadPath)
			}
			nextIDs = append(nextIDs, refs...)
		}
		if last {
			return nextVals, nil
		}
		cur = nextIDs
	}
	return nil, nil
}

// compare orders two scalar values; ok=false when incomparable.
func compare(a, b value.Value) (int, bool) {
	switch a.Kind() {
	case value.KindInt:
		ai, _ := a.AsInt()
		switch b.Kind() {
		case value.KindInt:
			bi, _ := b.AsInt()
			switch {
			case ai < bi:
				return -1, true
			case ai > bi:
				return 1, true
			}
			return 0, true
		case value.KindReal:
			bf, _ := b.AsReal()
			return cmpFloat(float64(ai), bf), true
		}
	case value.KindReal:
		af, _ := a.AsReal()
		switch b.Kind() {
		case value.KindInt:
			bi, _ := b.AsInt()
			return cmpFloat(af, float64(bi)), true
		case value.KindReal:
			bf, _ := b.AsReal()
			return cmpFloat(af, bf), true
		}
	case value.KindString:
		if b.Kind() == value.KindString {
			as, _ := a.AsString()
			bs, _ := b.AsString()
			switch {
			case as < bs:
				return -1, true
			case as > bs:
				return 1, true
			}
			return 0, true
		}
	}
	return 0, false
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// cmpExpr compares the path's denoted values against a constant.
type cmpExpr struct {
	path *Path
	want value.Value
	ok   func(int) bool
	eq   bool // use Equal instead of ordering (Eq/Ne over any kind)
	neg  bool
}

func (c *cmpExpr) Eval(e *core.Engine, id uid.UID) (bool, error) {
	vals, err := c.path.values(e, id)
	if err != nil {
		return false, err
	}
	for _, v := range vals {
		// A set-valued terminal attribute denotes its elements.
		elems := []value.Value{v}
		if v.IsCollection() {
			elems = v.Elems()
		}
		for _, ev := range elems {
			if c.eq {
				if ev.Equal(c.want) != c.neg {
					return true, nil
				}
				continue
			}
			r, ok := compare(ev, c.want)
			if !ok {
				return false, fmt.Errorf("%v vs %v: %w", ev.Kind(), c.want.Kind(), ErrBadCmp)
			}
			if c.ok(r) {
				return true, nil
			}
		}
	}
	return false, nil
}

// Eq matches when some denoted value equals v (deep equality; works for
// references and collections too).
func (p *Path) Eq(v value.Value) Expr { return &cmpExpr{path: p, want: v, eq: true} }

// Ne matches when some denoted value differs from v.
func (p *Path) Ne(v value.Value) Expr { return &cmpExpr{path: p, want: v, eq: true, neg: true} }

// Lt matches when some denoted value is less than v.
func (p *Path) Lt(v value.Value) Expr {
	return &cmpExpr{path: p, want: v, ok: func(r int) bool { return r < 0 }}
}

// Le matches when some denoted value is at most v.
func (p *Path) Le(v value.Value) Expr {
	return &cmpExpr{path: p, want: v, ok: func(r int) bool { return r <= 0 }}
}

// Gt matches when some denoted value exceeds v.
func (p *Path) Gt(v value.Value) Expr {
	return &cmpExpr{path: p, want: v, ok: func(r int) bool { return r > 0 }}
}

// Ge matches when some denoted value is at least v.
func (p *Path) Ge(v value.Value) Expr {
	return &cmpExpr{path: p, want: v, ok: func(r int) bool { return r >= 0 }}
}

// existsExpr matches when the path denotes at least one non-nil value.
type existsExpr struct{ path *Path }

func (x *existsExpr) Eval(e *core.Engine, id uid.UID) (bool, error) {
	vals, err := x.path.values(e, id)
	if err != nil {
		return false, err
	}
	for _, v := range vals {
		if !v.IsNil() && (!v.IsCollection() || v.Len() > 0) {
			return true, nil
		}
	}
	return false, nil
}

// Exists matches when the path denotes any value.
func (p *Path) Exists() Expr { return &existsExpr{path: p} }

// quantExpr applies a sub-predicate to the objects a reference path
// denotes.
type quantExpr struct {
	path *Path
	sub  Expr
	all  bool
}

func (q *quantExpr) Eval(e *core.Engine, id uid.UID) (bool, error) {
	vals, err := q.path.values(e, id)
	if err != nil {
		return false, err
	}
	var refs []uid.UID
	for _, v := range vals {
		refs = v.Refs(refs)
	}
	if q.all {
		for _, r := range refs {
			ok, err := q.sub.Eval(e, r)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	}
	for _, r := range refs {
		ok, err := q.sub.Eval(e, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Any matches when some object the path references satisfies sub.
func (p *Path) Any(sub Expr) Expr { return &quantExpr{path: p, sub: sub} }

// All matches when every object the path references satisfies sub
// (vacuously true for none).
func (p *Path) All(sub Expr) Expr { return &quantExpr{path: p, sub: sub, all: true} }

// Boolean connectives.

type andExpr struct{ kids []Expr }

func (a *andExpr) Eval(e *core.Engine, id uid.UID) (bool, error) {
	for _, k := range a.kids {
		ok, err := k.Eval(e, id)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// And matches when every sub-predicate matches.
func And(kids ...Expr) Expr { return &andExpr{kids: kids} }

type orExpr struct{ kids []Expr }

func (o *orExpr) Eval(e *core.Engine, id uid.UID) (bool, error) {
	for _, k := range o.kids {
		ok, err := k.Eval(e, id)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Or matches when any sub-predicate matches.
func Or(kids ...Expr) Expr { return &orExpr{kids: kids} }

type notExpr struct{ kid Expr }

func (n *notExpr) Eval(e *core.Engine, id uid.UID) (bool, error) {
	ok, err := n.kid.Eval(e, id)
	return !ok, err
}

// Not negates a predicate.
func Not(kid Expr) Expr { return &notExpr{kid: kid} }

// trueExpr matches everything.
type trueExpr struct{}

func (trueExpr) Eval(*core.Engine, uid.UID) (bool, error) { return true, nil }

// True matches every object (select all).
func True() Expr { return trueExpr{} }

// componentOfExpr matches objects that are components of a given object.
type componentOfExpr struct{ of uid.UID }

func (c *componentOfExpr) Eval(e *core.Engine, id uid.UID) (bool, error) {
	return e.ComponentOf(id, c.of)
}

// ComponentOf matches objects in the component set of the given composite
// object — the §3 relationship as a query predicate.
func ComponentOf(of uid.UID) Expr { return &componentOfExpr{of: of} }

// Select returns the instances of class (and of its subclasses when deep)
// satisfying pred, in UID order.
func Select(e *core.Engine, class string, deep bool, pred Expr) ([]uid.UID, error) {
	if pred == nil {
		pred = True()
	}
	ext, err := e.Extent(class, deep)
	if err != nil {
		return nil, err
	}
	var out []uid.UID
	for _, id := range ext {
		ok, err := pred.Eval(e, id)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, id)
		}
	}
	return out, nil
}
