package query

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/schema"
	"repro/internal/uid"
	"repro/internal/value"
)

func TestSelectIndexedMatchesScan(t *testing.T) {
	g := newGarage(t)
	ix := index.NewManager(g.e)
	g.e.SetHook(core.MultiHook{ix})
	if err := ix.CreateIndex("Vehicle", "Color"); err != nil {
		t.Fatal(err)
	}
	preds := []Expr{
		Attr("Color").Eq(value.Str("red")),
		And(Attr("Color").Eq(value.Str("red")), Attr("Body").Exists()),
		Attr("Id").Lt(value.Int(3)), // not indexable: falls back
		nil,
	}
	for i, pred := range preds {
		scan, err := Select(g.e, "Vehicle", false, pred)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := SelectIndexed(g.e, ix, "Vehicle", false, pred)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(scan, fast) {
			t.Errorf("pred %d: scan %v != indexed %v", i, scan, fast)
		}
	}
}

func TestSelectIndexedShallowExcludesSubclasses(t *testing.T) {
	g := newGarage(t)
	ix := index.NewManager(g.e)
	g.e.SetHook(core.MultiHook{ix})
	if _, err := g.e.Catalog().DefineClass(schema.ClassDef{Name: "Truck", Superclasses: []string{"Vehicle"}}); err != nil {
		t.Fatal(err)
	}
	if err := ix.CreateIndex("Vehicle", "Color"); err != nil {
		t.Fatal(err)
	}
	truck, _ := g.e.New("Truck", map[string]value.Value{"Color": value.Str("red")})
	pred := Attr("Color").Eq(value.Str("red"))
	shallow, err := SelectIndexed(g.e, ix, "Vehicle", false, pred)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range shallow {
		if id == truck.UID() {
			t.Fatal("shallow indexed select leaked a subclass instance")
		}
	}
	deep, _ := SelectIndexed(g.e, ix, "Vehicle", true, pred)
	found := false
	for _, id := range deep {
		if id == truck.UID() {
			found = true
		}
	}
	if !found {
		t.Fatal("deep indexed select missed the subclass instance")
	}
}

func TestSelectIndexedNilManagerFallsBack(t *testing.T) {
	g := newGarage(t)
	got, err := SelectIndexed(g.e, nil, "Vehicle", false, Attr("Color").Eq(value.Str("red")))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uid.UID{g.v1, g.v3}) {
		t.Fatalf("fallback = %v", got)
	}
}
