package storage

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/uid"
)

func newTestSharded(t *testing.T, n int) *ShardedStore {
	t.Helper()
	shards := make([]*Store, n)
	for k := range shards {
		shards[k] = NewStore(NewBufferPool(NewMemDevice(), 16))
	}
	return NewShardedStore(shards)
}

// seg creates (or finds) a segment named name on shard k.
func shardSeg(t *testing.T, s *ShardedStore, k int, name string) SegmentID {
	t.Helper()
	st := s.Shard(k)
	if seg, ok := st.SegmentByName(name); ok {
		return seg
	}
	seg, err := st.CreateSegment(name)
	if err != nil {
		t.Fatal(err)
	}
	return seg
}

func TestShardedPutGetDelete(t *testing.T) {
	s := newTestSharded(t, 4)
	id := u(1, 1)
	k := s.ShardFor(id, uid.Nil)
	if k != HashShard(id, 4) {
		t.Fatalf("fresh root routed to %d, hash says %d", k, HashShard(id, 4))
	}
	seg := shardSeg(t, s, k, "main")
	if err := s.Put(k, seg, id, []byte("v1"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.ShardOf(id); !ok || got != k {
		t.Fatalf("ShardOf = %d, %v; want %d", got, ok, k)
	}
	rec, err := s.Get(id)
	if err != nil || string(rec) != "v1" {
		t.Fatalf("Get = %q, %v", rec, err)
	}
	if !s.Has(id) || s.Len() != 1 {
		t.Fatal("Has/Len wrong")
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.ShardOf(id); ok {
		t.Fatal("routing entry survived delete")
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestShardedRoutingIsSticky(t *testing.T) {
	s := newTestSharded(t, 4)
	root := u(1, 1)
	k := s.ShardFor(root, uid.Nil)
	seg := shardSeg(t, s, k, "main")
	if err := s.Put(k, seg, root, []byte("root"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	// A child routes to its root's shard, whatever its own hash says.
	child := u(2, 99)
	if got := s.ShardFor(child, root); got != k {
		t.Fatalf("child routed to %d, root lives in %d", got, k)
	}
	cseg := shardSeg(t, s, k, "main")
	if err := s.Put(k, cseg, child, []byte("child"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	// Once recorded, the object's own entry wins even with a different root.
	other := u(1, 2)
	ok := s.ShardFor(other, uid.Nil)
	oseg := shardSeg(t, s, ok, "main")
	if err := s.Put(ok, oseg, other, []byte("other"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if got := s.ShardFor(child, other); got != k {
		t.Fatalf("re-parented child routed to %d, sticky shard is %d", got, k)
	}
}

func TestShardedPutWrongShardRefused(t *testing.T) {
	s := newTestSharded(t, 4)
	id := u(1, 1)
	k := s.ShardFor(id, uid.Nil)
	seg := shardSeg(t, s, k, "main")
	if err := s.Put(k, seg, id, []byte("v"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	wrong := (k + 1) % 4
	wseg := shardSeg(t, s, wrong, "main")
	err := s.Put(wrong, wseg, id, []byte("v"), uid.Nil)
	if err == nil || !strings.Contains(err.Error(), "lives in shard") {
		t.Fatalf("cross-shard put: %v", err)
	}
	if err := s.Move(wrong, wseg, id, uid.Nil); err == nil {
		t.Fatal("cross-shard move accepted")
	}
	if err := s.CheckShards(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedSingleShardFastPath(t *testing.T) {
	s := newTestSharded(t, 1)
	for i := uint64(0); i < 32; i++ {
		if k := s.ShardFor(u(1, i), uid.Nil); k != 0 {
			t.Fatalf("1-shard store routed %d to shard %d", i, k)
		}
	}
}

func TestShardedReindexAndCheck(t *testing.T) {
	s := newTestSharded(t, 3)
	ids := []uid.UID{u(1, 1), u(1, 2), u(2, 7), u(3, 40)}
	for _, id := range ids {
		k := s.ShardFor(id, uid.Nil)
		seg := shardSeg(t, s, k, "main")
		if err := s.Put(k, seg, id, []byte("x"), uid.Nil); err != nil {
			t.Fatal(err)
		}
	}
	// Reindex from shard contents reproduces the same table.
	before := make(map[uid.UID]int)
	for _, id := range ids {
		before[id], _ = s.ShardOf(id)
	}
	if err := s.Reindex(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		after, ok := s.ShardOf(id)
		if !ok || after != before[id] {
			t.Fatalf("%v: reindex moved %d -> %d (ok=%v)", id, before[id], after, ok)
		}
	}
	if err := s.CheckShards(); err != nil {
		t.Fatal(err)
	}
	if err := s.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.UIDs()); got != len(ids) {
		t.Fatalf("UIDs = %d, want %d", got, len(ids))
	}
}

func TestShardedReindexDetectsDuplicate(t *testing.T) {
	s := newTestSharded(t, 2)
	id := u(1, 1)
	for k := 0; k < 2; k++ {
		seg := shardSeg(t, s, k, "main")
		// Bypass routing on purpose: write the same object into both
		// shards' underlying stores.
		if err := s.Shard(k).Put(seg, id, []byte("x"), uid.Nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Reindex(); err == nil {
		t.Fatal("Reindex accepted a duplicated object")
	}
	if err := s.CheckShards(); err == nil {
		t.Fatal("CheckShards accepted a duplicated object")
	}
}

func TestHashShardStableAndBounded(t *testing.T) {
	for n := 1; n <= 8; n++ {
		counts := make([]int, n)
		for i := uint64(0); i < 512; i++ {
			id := u(uint32(i%5)+1, i)
			k := HashShard(id, n)
			if k != HashShard(id, n) {
				t.Fatal("HashShard not deterministic")
			}
			if k < 0 || k >= n {
				t.Fatalf("HashShard(%v, %d) = %d out of range", id, n, k)
			}
			counts[k]++
		}
		for k, c := range counts {
			if c == 0 {
				t.Fatalf("n=%d: shard %d got no objects of 512", n, k)
			}
		}
	}
}

func TestPrepareDataRoundTrip(t *testing.T) {
	for coord := 0; coord < 64; coord++ {
		got, err := DecodePrepareData(EncodePrepareData(coord))
		if err != nil || got != coord {
			t.Fatalf("round trip %d -> %d, %v", coord, got, err)
		}
	}
	if _, err := DecodePrepareData(nil); err == nil {
		t.Fatal("DecodePrepareData(nil) accepted")
	}
}
