package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func newPage() *Page {
	p := &Page{ID: 1}
	p.InitPage()
	return p
}

func TestPageInsertRead(t *testing.T) {
	p := newPage()
	recs := [][]byte{[]byte("alpha"), []byte("beta"), []byte("")}
	var slots []int
	for _, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatalf("Insert(%q): %v", r, err)
		}
		slots = append(slots, s)
	}
	for i, s := range slots {
		got, err := p.Read(s)
		if err != nil {
			t.Fatalf("Read(%d): %v", s, err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("Read(%d) = %q, want %q", s, got, recs[i])
		}
	}
	if p.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", p.NumRecords())
	}
}

func TestPageDeleteAndSlotReuse(t *testing.T) {
	p := newPage()
	s0, _ := p.Insert([]byte("one"))
	s1, _ := p.Insert([]byte("two"))
	if err := p.Delete(s0); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Read(s0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("Read of deleted slot: %v", err)
	}
	if err := p.Delete(s0); !errors.Is(err, ErrBadSlot) {
		t.Fatalf("double delete: %v", err)
	}
	// New insert reuses the freed slot.
	s2, err := p.Insert([]byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s0 {
		t.Fatalf("slot not reused: got %d, want %d", s2, s0)
	}
	got, _ := p.Read(s1)
	if !bytes.Equal(got, []byte("two")) {
		t.Fatalf("unrelated record damaged: %q", got)
	}
}

func TestPageUpdateInPlaceAndGrow(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("abcdef"))
	if err := p.Update(s, []byte("xy")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Read(s)
	if !bytes.Equal(got, []byte("xy")) {
		t.Fatalf("after shrink update: %q", got)
	}
	big := bytes.Repeat([]byte("z"), 100)
	if err := p.Update(s, big); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Read(s)
	if !bytes.Equal(got, big) {
		t.Fatal("after grow update: wrong bytes")
	}
}

func TestPageFullAndCompaction(t *testing.T) {
	p := newPage()
	rec := bytes.Repeat([]byte("r"), 100)
	var slots []int
	for {
		s, err := p.Insert(rec)
		if err != nil {
			if !errors.Is(err, ErrPageFull) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		slots = append(slots, s)
	}
	if len(slots) < 30 {
		t.Fatalf("only %d records fit in a page", len(slots))
	}
	// Delete every other record; the freed space is fragmented, so a
	// larger record requires compaction to fit.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("B"), 150)
	if _, err := p.Insert(big); err != nil {
		t.Fatalf("insert after fragmentation (needs compaction): %v", err)
	}
	// Survivors intact after compaction.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Read(slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("record %d damaged by compaction: %v", slots[i], err)
		}
	}
}

func TestPageRecordTooBig(t *testing.T) {
	p := newPage()
	if _, err := p.Insert(make([]byte, MaxRecord+1)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("oversized insert: %v", err)
	}
	if _, err := p.Insert(make([]byte, MaxRecord)); err != nil {
		t.Fatalf("max-size insert: %v", err)
	}
}

func TestPageUpdateFullPreservesOld(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("keep"))
	// Fill the page.
	filler := bytes.Repeat([]byte("f"), 200)
	for {
		if _, err := p.Insert(filler); err != nil {
			break
		}
	}
	grown := bytes.Repeat([]byte("g"), 3000)
	if err := p.Update(s, grown); !errors.Is(err, ErrPageFull) {
		t.Fatalf("update beyond capacity: %v", err)
	}
	got, err := p.Read(s)
	if err != nil || !bytes.Equal(got, []byte("keep")) {
		t.Fatalf("old record lost after failed update: %q %v", got, err)
	}
}

func TestPageSlotsIteration(t *testing.T) {
	p := newPage()
	s0, _ := p.Insert([]byte("a"))
	s1, _ := p.Insert([]byte("b"))
	s2, _ := p.Insert([]byte("c"))
	p.Delete(s1)
	seen := map[int]string{}
	p.Slots(func(slot int, rec []byte) { seen[slot] = string(rec) })
	if len(seen) != 2 || seen[s0] != "a" || seen[s2] != "c" {
		t.Fatalf("Slots = %v", seen)
	}
}

// TestPageFuzz drives random operations against a model map.
func TestPageFuzz(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	p := newPage()
	model := map[int][]byte{} // slot -> record
	for i := 0; i < 5000; i++ {
		switch op := r.Intn(3); op {
		case 0: // insert
			rec := make([]byte, r.Intn(300))
			for j := range rec {
				rec[j] = byte(r.Intn(256))
			}
			s, err := p.Insert(rec)
			if err != nil {
				if !errors.Is(err, ErrPageFull) {
					t.Fatalf("iter %d insert: %v", i, err)
				}
				continue
			}
			if _, dup := model[s]; dup {
				t.Fatalf("iter %d: slot %d double-allocated", i, s)
			}
			model[s] = rec
		case 1: // delete
			for s := range model {
				if err := p.Delete(s); err != nil {
					t.Fatalf("iter %d delete: %v", i, err)
				}
				delete(model, s)
				break
			}
		case 2: // update
			for s := range model {
				rec := make([]byte, r.Intn(300))
				for j := range rec {
					rec[j] = byte(r.Intn(256))
				}
				err := p.Update(s, rec)
				if err == nil {
					model[s] = rec
				} else if !errors.Is(err, ErrPageFull) {
					t.Fatalf("iter %d update: %v", i, err)
				}
				break
			}
		}
		// Periodic full verification.
		if i%500 == 0 {
			if p.NumRecords() != len(model) {
				t.Fatalf("iter %d: NumRecords=%d model=%d", i, p.NumRecords(), len(model))
			}
			for s, want := range model {
				got, err := p.Read(s)
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("iter %d slot %d: %v", i, s, err)
				}
			}
		}
	}
}

func TestPageFreeSpaceMonotonic(t *testing.T) {
	p := newPage()
	before := p.FreeSpace()
	s, _ := p.Insert(make([]byte, 100))
	after := p.FreeSpace()
	if after >= before {
		t.Fatalf("FreeSpace did not shrink: %d -> %d", before, after)
	}
	p.Delete(s)
	if p.FreeSpace() != before {
		t.Fatalf("FreeSpace after delete = %d, want %d", p.FreeSpace(), before)
	}
}

func ExamplePage() {
	var p Page
	p.InitPage()
	slot, _ := p.Insert([]byte("hello"))
	rec, _ := p.Read(slot)
	fmt.Println(string(rec))
	// Output: hello
}

func TestPageCorruptSlotMetadata(t *testing.T) {
	p := newPage()
	s, _ := p.Insert([]byte("record"))
	// Corrupt the slot offset/length to point past the page.
	p.setSlot(s, PageSize-2, 100)
	if _, err := p.Read(s); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("read of corrupt slot: %v", err)
	}
	// Slots skips the corrupt entry instead of panicking.
	calls := 0
	p.Slots(func(int, []byte) { calls++ })
	if calls != 0 {
		t.Fatalf("Slots visited %d corrupt entries", calls)
	}
	// A corrupt slot count is clamped.
	binary.LittleEndian.PutUint16(p.Data[offNSlots:], 65535)
	if p.nSlots() > (PageSize-headerSize)/slotSize {
		t.Fatalf("nSlots not clamped: %d", p.nSlots())
	}
	p.Slots(func(int, []byte) {}) // must not panic
}
