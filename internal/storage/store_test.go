package storage

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"repro/internal/uid"
)

func u(c uint32, s uint64) uid.UID { return uid.UID{Class: uid.ClassID(c), Serial: s} }

func newTestStore(t *testing.T, poolPages int) *Store {
	t.Helper()
	return NewStore(NewBufferPool(NewMemDevice(), poolPages))
}

func TestStorePutGetDelete(t *testing.T) {
	s := newTestStore(t, 16)
	seg, err := s.CreateSegment("main")
	if err != nil {
		t.Fatal(err)
	}
	id := u(1, 1)
	if err := s.Put(seg, id, []byte("v1"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil || string(got) != "v1" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Update.
	if err := s.Put(seg, id, []byte("v2 longer"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Get(id)
	if string(got) != "v2 longer" {
		t.Fatalf("after update: %q", got)
	}
	if !s.Has(id) || s.Len() != 1 {
		t.Fatal("Has/Len wrong")
	}
	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreSegmentErrors(t *testing.T) {
	s := newTestStore(t, 4)
	if _, err := s.CreateSegment("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateSegment("a"); !errors.Is(err, ErrDupSegment) {
		t.Fatalf("dup segment: %v", err)
	}
	if err := s.Put(99, u(1, 1), []byte("x"), uid.Nil); !errors.Is(err, ErrNoSegment) {
		t.Fatalf("unknown segment: %v", err)
	}
	if _, ok := s.SegmentByName("a"); !ok {
		t.Fatal("SegmentByName failed")
	}
	if _, ok := s.SegmentByName("b"); ok {
		t.Fatal("SegmentByName found ghost")
	}
}

func TestStoreClusteredPlacement(t *testing.T) {
	s := newTestStore(t, 16)
	seg, _ := s.CreateSegment("veh")
	parent := u(1, 1)
	if err := s.Put(seg, parent, []byte("parent"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	// Force the segment onto a second page by filling the first.
	filler := bytes.Repeat([]byte("f"), 1200)
	for i := uint64(0); i < 3; i++ {
		if err := s.Put(seg, u(9, i+1), filler, uid.Nil); err != nil {
			t.Fatal(err)
		}
	}
	// A child placed near the parent must land on the parent's page.
	child := u(2, 1)
	if err := s.Put(seg, child, []byte("child"), parent); err != nil {
		t.Fatal(err)
	}
	pp, _ := s.PageOf(parent)
	cp, _ := s.PageOf(child)
	if pp != cp {
		t.Fatalf("child not clustered: parent page %d, child page %d", pp, cp)
	}
}

func TestStoreClusteringCrossSegmentIgnored(t *testing.T) {
	s := newTestStore(t, 16)
	segA, _ := s.CreateSegment("a")
	segB, _ := s.CreateSegment("b")
	parent := u(1, 1)
	s.Put(segA, parent, []byte("p"), uid.Nil)
	child := u(2, 1)
	// near hint refers to an object in another segment: must not fail, and
	// must not place the child in segment A's pages.
	if err := s.Put(segB, child, []byte("c"), parent); err != nil {
		t.Fatal(err)
	}
	pa, _ := s.PageOf(parent)
	pb, _ := s.PageOf(child)
	if pa == pb {
		t.Fatal("cross-segment clustering happened")
	}
	if sg, _ := s.SegmentOf(child); sg != segB {
		t.Fatal("child in wrong segment")
	}
}

func TestStoreUpdateRelocation(t *testing.T) {
	s := newTestStore(t, 16)
	seg, _ := s.CreateSegment("m")
	id := u(1, 1)
	s.Put(seg, id, []byte("small"), uid.Nil)
	// Fill the page so the grown record cannot stay.
	for i := uint64(0); i < 3; i++ {
		s.Put(seg, u(9, i+1), bytes.Repeat([]byte("f"), 1200), uid.Nil)
	}
	grown := bytes.Repeat([]byte("G"), 2000)
	if err := s.Put(seg, id, grown, uid.Nil); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(id)
	if err != nil || !bytes.Equal(got, grown) {
		t.Fatalf("after relocation: len=%d err=%v", len(got), err)
	}
	if sg, _ := s.SegmentOf(id); sg != seg {
		t.Fatal("relocation changed segment")
	}
}

func TestStorePutRoutesToCurrentSegment(t *testing.T) {
	// An update names the class's default segment, but the object may have
	// been migrated elsewhere by the reclusterer: Put must route the update
	// to wherever the object currently lives, never duplicate it.
	s := newTestStore(t, 8)
	segA, _ := s.CreateSegment("a")
	segB, _ := s.CreateSegment("b")
	id := u(1, 1)
	if err := s.Put(segA, id, []byte("x"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(segB, id, []byte("y"), uid.Nil); err != nil {
		t.Fatalf("update naming another segment: %v", err)
	}
	if sg, _ := s.SegmentOf(id); sg != segA {
		t.Fatalf("update moved object to segment %d, want %d", sg, segA)
	}
	if got, err := s.Get(id); err != nil || string(got) != "y" {
		t.Fatalf("got %q, %v", got, err)
	}
	if err := s.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreScanSegment(t *testing.T) {
	s := newTestStore(t, 16)
	segA, _ := s.CreateSegment("a")
	segB, _ := s.CreateSegment("b")
	for i := uint64(1); i <= 5; i++ {
		s.Put(segA, u(1, i), []byte{byte(i)}, uid.Nil)
	}
	s.Put(segB, u(2, 1), []byte("other"), uid.Nil)
	var seen []uid.UID
	err := s.ScanSegment(segA, func(id uid.UID, rec []byte) error {
		seen = append(seen, id)
		if rec[0] != byte(id.Serial) {
			t.Fatalf("wrong record for %v", id)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("scanned %d objects, want 5", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if !seen[i-1].Less(seen[i]) {
			t.Fatal("scan not in UID order")
		}
	}
}

func TestStoreManyObjectsSpanPages(t *testing.T) {
	s := newTestStore(t, 8)
	seg, _ := s.CreateSegment("big")
	rec := bytes.Repeat([]byte("x"), 500)
	const n = 100
	for i := uint64(1); i <= n; i++ {
		if err := s.Put(seg, u(1, i), rec, uid.Nil); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := uint64(1); i <= n; i++ {
		got, err := s.Get(u(1, i))
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	if s.Pool().Device().NumPages() < 10 {
		t.Fatalf("expected many pages, got %d", s.Pool().Device().NumPages())
	}
}

func TestStoreMetaRoundTrip(t *testing.T) {
	dev := NewMemDevice()
	bp := NewBufferPool(dev, 16)
	s := NewStore(bp)
	seg, _ := s.CreateSegment("main")
	for i := uint64(1); i <= 10; i++ {
		s.Put(seg, u(3, i), []byte{byte(i), byte(i)}, uid.Nil)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.SaveMeta(&buf); err != nil {
		t.Fatal(err)
	}
	// Fresh store over the same device, restored from meta.
	s2 := NewStore(NewBufferPool(dev, 16))
	if err := s2.LoadMeta(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 10 {
		t.Fatalf("restored Len = %d", s2.Len())
	}
	for i := uint64(1); i <= 10; i++ {
		got, err := s2.Get(u(3, i))
		if err != nil || got[0] != byte(i) {
			t.Fatalf("restored get %d: %v", i, err)
		}
	}
	// Segment table restored too: new puts go into the same segment.
	seg2, ok := s2.SegmentByName("main")
	if !ok || seg2 != seg {
		t.Fatalf("segment not restored: %v %v", seg2, ok)
	}
	if err := s2.Put(seg2, u(3, 11), []byte("new"), uid.Nil); err != nil {
		t.Fatal(err)
	}
}

func TestWALAppendReplay(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []WALRecord{
		{Op: OpPut, UID: u(1, 1), Seg: 2, Near: u(1, 0), Data: []byte("hello")},
		{Op: OpPut, UID: u(1, 2), Seg: 2, Near: u(1, 1), Data: []byte("")},
		{Op: OpDelete, UID: u(1, 1)},
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	var got []WALRecord
	if err := ReplayWAL(path, func(r WALRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Op != recs[i].Op || got[i].UID != recs[i].UID ||
			got[i].Seg != recs[i].Seg || got[i].Near != recs[i].Near ||
			!bytes.Equal(got[i].Data, recs[i].Data) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	w, _ := OpenWAL(path)
	w.Append(WALRecord{Op: OpPut, UID: u(1, 1), Data: []byte("full record")})
	w.Append(WALRecord{Op: OpPut, UID: u(1, 2), Data: []byte("to be torn")})
	w.Close()
	// Simulate a crash mid-append: chop bytes off the tail.
	b, _ := os.ReadFile(path)
	os.WriteFile(path, b[:len(b)-5], 0o644)
	var got []WALRecord
	if err := ReplayWAL(path, func(r WALRecord) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatalf("torn tail: %v", err)
	}
	if len(got) != 1 || got[0].UID != u(1, 1) {
		t.Fatalf("replay after torn tail = %+v", got)
	}
}

func TestWALCorruptMiddleDetected(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	w, _ := OpenWAL(path)
	w.Append(WALRecord{Op: OpPut, UID: u(1, 1), Data: []byte("aaaaaaaaaa")})
	w.Append(WALRecord{Op: OpPut, UID: u(1, 2), Data: []byte("bbbbbbbbbb")})
	w.Close()
	b, _ := os.ReadFile(path)
	b[12] ^= 0xFF // flip a payload byte of the first record
	os.WriteFile(path, b, 0o644)
	err := ReplayWAL(path, func(WALRecord) error { return nil })
	if !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("corrupt middle: %v", err)
	}
}

func TestWALTruncate(t *testing.T) {
	path := t.TempDir() + "/wal.log"
	w, _ := OpenWAL(path)
	w.Append(WALRecord{Op: OpPut, UID: u(1, 1), Data: []byte("x")})
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	w.Append(WALRecord{Op: OpPut, UID: u(2, 2), Data: []byte("y")})
	w.Close()
	var got []WALRecord
	ReplayWAL(path, func(r WALRecord) error { got = append(got, r); return nil })
	if len(got) != 1 || got[0].UID != u(2, 2) {
		t.Fatalf("after truncate: %+v", got)
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	if err := ReplayWAL(t.TempDir()+"/nope.log", func(WALRecord) error {
		t.Fatal("callback invoked")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}
