package storage

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/uid"
)

func walTestRecords() []WALRecord {
	return []WALRecord{
		{Op: OpPut, UID: uid.UID{Class: 1, Serial: 1}, Seg: 1, Data: []byte("alpha")},
		{Op: OpPut, UID: uid.UID{Class: 1, Serial: 2}, Seg: 1, Near: uid.UID{Class: 1, Serial: 1}, Data: []byte("beta")},
		{Op: OpDelete, UID: uid.UID{Class: 1, Serial: 1}},
		{Op: OpBegin, Txn: 9},
		{Op: OpPut, Txn: 9, UID: uid.UID{Class: 2, Serial: 7}, Seg: 3, Data: make([]byte, 300)},
		{Op: OpDelete, Txn: 9, UID: uid.UID{Class: 1, Serial: 2}, Seg: 1},
		{Op: OpCommit, Txn: 9},
		{Op: OpBegin, Txn: 10},
		{Op: OpAbort, Txn: 10},
	}
}

func writeWALFile(t *testing.T, recs []WALRecord) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func replayAll(path string) ([]WALRecord, error) {
	var got []WALRecord
	err := ReplayWAL(path, func(rec WALRecord) error {
		got = append(got, rec)
		return nil
	})
	return got, err
}

func recordsEqual(a, b WALRecord) bool {
	if a.Op != b.Op || a.Txn != b.Txn || a.UID != b.UID || a.Seg != b.Seg || a.Near != b.Near {
		return false
	}
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

func TestReplayWALRoundTrip(t *testing.T) {
	recs := walTestRecords()
	got, err := replayAll(writeWALFile(t, recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !recordsEqual(got[i], recs[i]) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

// TestReplayWALTruncatedAtEveryOffset truncates a valid log at every byte
// offset and asserts replay never errors and yields exactly the records
// whose frames are fully contained in the prefix — crash-at-append can
// cut the file anywhere.
func TestReplayWALTruncatedAtEveryOffset(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Frame boundaries: offsets at which a whole record ends.
	bounds := []int{0}
	off := 0
	for _, rec := range recs {
		off += 8 + len(encodeWALPayload(rec))
		bounds = append(bounds, off)
	}
	if off != len(full) {
		t.Fatalf("frame arithmetic off: %d != file size %d", off, len(full))
	}
	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		p := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(p, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantN := 0
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= cut {
				wantN = i
			}
		}
		got, err := replayAll(p)
		if err != nil {
			t.Fatalf("cut at %d: replay error: %v", cut, err)
		}
		if len(got) != wantN {
			t.Fatalf("cut at %d: replayed %d records, want %d", cut, len(got), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !recordsEqual(got[i], recs[i]) {
				t.Fatalf("cut at %d: record %d mismatch", cut, i)
			}
		}
	}
}

// TestReplayWALTornFinalGarbage corrupts bytes inside the final frame
// (CRC now wrong, length still sane) — a torn final record must end
// replay cleanly with the preceding records intact.
func TestReplayWALTornFinalGarbage(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := 0
	for _, rec := range recs[:len(recs)-1] {
		lastStart += 8 + len(encodeWALPayload(rec))
	}
	mut := append([]byte(nil), full...)
	for i := lastStart + 8; i < len(mut); i++ {
		mut[i] ^= 0xff
	}
	p := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(p, mut, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := replayAll(p)
	if err != nil {
		t.Fatalf("torn final record: %v", err)
	}
	if len(got) != len(recs)-1 {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs)-1)
	}
}

// TestReplayWALGarbageLengthTail appends a frame header with an absurd
// length: replay must stop cleanly, not allocate gigabytes.
func TestReplayWALGarbageLengthTail(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], 0xfffffff0)
	if _, err := f.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	got, err := replayAll(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
}

// TestReplayWALMidLogCorruption flips a payload byte in a non-final frame:
// that cannot be a torn append, so replay must fail loudly.
func TestReplayWALMidLogCorruption(t *testing.T) {
	recs := walTestRecords()
	path := writeWALFile(t, recs)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	full[8] ^= 0xff // first byte of the first payload
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayAll(path); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("mid-log corruption: got %v, want ErrCorruptWAL", err)
	}
}

// TestReplayWALMidLogDecodeFailure builds a CRC-valid frame whose payload
// does not decode, followed by a good frame: replay must error rather
// than skip it.
func TestReplayWALMidLogDecodeFailure(t *testing.T) {
	bad := []byte{0x7f} // unknown op, then truncated
	frame := make([]byte, 8, 8+len(bad))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(bad)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(bad))
	frame = append(frame, bad...)
	good := encodeWALPayload(WALRecord{Op: OpPut, UID: uid.UID{Class: 1, Serial: 1}, Data: []byte("x")})
	gf := make([]byte, 8, 8+len(good))
	binary.LittleEndian.PutUint32(gf[0:], uint32(len(good)))
	binary.LittleEndian.PutUint32(gf[4:], crc32.ChecksumIEEE(good))
	gf = append(gf, good...)

	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, append(frame, gf...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayAll(path); err == nil {
		t.Fatal("mid-log decode failure: replay succeeded, want error")
	}

	// The same bad frame at the tail is tolerated.
	if err := os.WriteFile(path, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := replayAll(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("bad tail frame: got %d records, err %v", len(got), err)
	}
}

func TestWALAppendRejectsOversizedRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(WALRecord{Op: OpPut, Data: make([]byte, MaxWALPayload+1)}); err == nil {
		t.Fatal("oversized append succeeded, want error")
	}
}
