// Package storage implements the ORION-like physical layer: slotted pages,
// a paged device, a buffer pool with I/O accounting, segments with
// clustered placement, an object store, and a write-ahead log.
//
// The paper relies on this substrate in two places: the `:parent` keyword
// of the make message clusters a new object with its first parent "if the
// classes of the two objects are stored in the same physical segment"
// (§2.3), and the locking section treats classes and instances as lockable
// granules. The buffer pool exposes hit/miss/read counters so benches can
// measure the clustering benefit the paper asserts qualitatively.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// PageSize is the fixed size of every page in bytes.
const PageSize = 4096

// PageID identifies a page within a device. 0 is never a valid page.
type PageID uint32

// InvalidPage is the zero PageID.
const InvalidPage PageID = 0

// Slot page layout:
//
//	[0:2)  nSlots   uint16
//	[2:4)  freeHigh uint16  (start of the record heap; records occupy [freeHigh, PageSize))
//	[4:6)  garbage  uint16  (bytes reclaimable by compaction)
//	[6:)   slot array, 4 bytes per slot: offset uint16, length uint16
//
// A slot with offset 0 is empty (offset 0 is inside the header, so no
// record can live there). Records grow downward from the end of the page;
// the slot array grows upward after the header.
const (
	headerSize  = 6
	slotSize    = 4
	offNSlots   = 0
	offFreeHigh = 2
	offGarbage  = 4
	// MaxRecord is the largest record that fits in a fresh page.
	MaxRecord = PageSize - headerSize - slotSize
)

// Sentinel errors for page operations.
var (
	ErrPageFull     = errors.New("storage: page full")
	ErrBadSlot      = errors.New("storage: bad slot")
	ErrRecordTooBig = errors.New("storage: record exceeds page capacity")
	ErrCorruptPage  = errors.New("storage: corrupt page")
)

// Page is a PageSize-byte slotted page. The zero value is not usable; call
// InitPage (or read an initialized page from a device).
type Page struct {
	ID   PageID
	Data [PageSize]byte
}

// InitPage formats p as an empty slotted page.
func (p *Page) InitPage() {
	for i := range p.Data {
		p.Data[i] = 0
	}
	p.setNSlots(0)
	p.setFreeHigh(PageSize)
	p.setGarbage(0)
}

// nSlots reads the slot count, clamped so a corrupted header cannot push
// the slot array past the page.
func (p *Page) nSlots() int {
	n := int(binary.LittleEndian.Uint16(p.Data[offNSlots:]))
	if max := (PageSize - headerSize) / slotSize; n > max {
		return max
	}
	return n
}
func (p *Page) setNSlots(n int)   { binary.LittleEndian.PutUint16(p.Data[offNSlots:], uint16(n)) }
func (p *Page) freeHigh() int     { return int(binary.LittleEndian.Uint16(p.Data[offFreeHigh:])) }
func (p *Page) setFreeHigh(v int) { binary.LittleEndian.PutUint16(p.Data[offFreeHigh:], uint16(v)) }
func (p *Page) garbage() int      { return int(binary.LittleEndian.Uint16(p.Data[offGarbage:])) }
func (p *Page) setGarbage(v int)  { binary.LittleEndian.PutUint16(p.Data[offGarbage:], uint16(v)) }

func (p *Page) slot(i int) (off, length int) {
	base := headerSize + i*slotSize
	return int(binary.LittleEndian.Uint16(p.Data[base:])),
		int(binary.LittleEndian.Uint16(p.Data[base+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	base := headerSize + i*slotSize
	binary.LittleEndian.PutUint16(p.Data[base:], uint16(off))
	binary.LittleEndian.PutUint16(p.Data[base+2:], uint16(length))
}

// slotArrayEnd returns the first byte past the slot array.
func (p *Page) slotArrayEnd() int { return headerSize + p.nSlots()*slotSize }

// FreeSpace returns the number of bytes available for a new record,
// assuming a new slot entry is also needed, after compaction.
func (p *Page) FreeSpace() int {
	free := p.freeHigh() - p.slotArrayEnd() + p.garbage() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// NumRecords returns the number of live records.
func (p *Page) NumRecords() int {
	n := 0
	for i := 0; i < p.nSlots(); i++ {
		if off, _ := p.slot(i); off != 0 {
			n++
		}
	}
	return n
}

// contiguous returns the bytes immediately available without compaction.
func (p *Page) contiguous() int { return p.freeHigh() - p.slotArrayEnd() }

// compact rewrites the record heap to squeeze out garbage.
func (p *Page) compact() {
	type rec struct {
		slot, off, len int
	}
	var live []rec
	for i := 0; i < p.nSlots(); i++ {
		if off, l := p.slot(i); off != 0 {
			live = append(live, rec{i, off, l})
		}
	}
	var buf [PageSize]byte
	high := PageSize
	for _, r := range live {
		high -= r.len
		copy(buf[high:], p.Data[r.off:r.off+r.len])
		p.setSlot(r.slot, high, r.len)
	}
	copy(p.Data[high:], buf[high:])
	p.setFreeHigh(high)
	p.setGarbage(0)
}

// Insert stores rec in the page and returns its slot number. It returns
// ErrPageFull if the record cannot fit even after compaction, and
// ErrRecordTooBig if it could never fit in any page.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecord {
		return 0, fmt.Errorf("%d bytes: %w", len(rec), ErrRecordTooBig)
	}
	// Reuse an empty slot if one exists.
	slot := -1
	for i := 0; i < p.nSlots(); i++ {
		if off, _ := p.slot(i); off == 0 {
			slot = i
			break
		}
	}
	need := len(rec)
	if slot == -1 {
		need += slotSize
	}
	if p.contiguous() < need {
		if p.contiguous()+p.garbage() < need {
			return 0, ErrPageFull
		}
		p.compact()
	}
	if slot == -1 {
		slot = p.nSlots()
		p.setNSlots(slot + 1)
	}
	high := p.freeHigh() - len(rec)
	copy(p.Data[high:], rec)
	p.setFreeHigh(high)
	p.setSlot(slot, high, len(rec))
	return slot, nil
}

// Read returns the record in the given slot. The returned slice aliases
// the page buffer; callers must copy it if they retain it past unpin.
// Slot metadata read from disk is validated so a corrupted page yields
// ErrCorruptPage rather than a panic.
func (p *Page) Read(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.nSlots() {
		return nil, fmt.Errorf("slot %d of %d: %w", slot, p.nSlots(), ErrBadSlot)
	}
	off, l := p.slot(slot)
	if off == 0 {
		return nil, fmt.Errorf("slot %d empty: %w", slot, ErrBadSlot)
	}
	if off < headerSize || off+l > PageSize {
		return nil, fmt.Errorf("slot %d spans [%d,%d): %w", slot, off, off+l, ErrCorruptPage)
	}
	return p.Data[off : off+l], nil
}

// Delete removes the record in the given slot.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.nSlots() {
		return fmt.Errorf("slot %d of %d: %w", slot, p.nSlots(), ErrBadSlot)
	}
	off, l := p.slot(slot)
	if off == 0 {
		return fmt.Errorf("slot %d already empty: %w", slot, ErrBadSlot)
	}
	p.setSlot(slot, 0, 0)
	p.setGarbage(p.garbage() + l)
	// Shrink the slot array if the tail slots are now empty.
	n := p.nSlots()
	for n > 0 {
		if off, _ := p.slot(n - 1); off != 0 {
			break
		}
		n--
	}
	p.setNSlots(n)
	return nil
}

// Update replaces the record in slot with rec, relocating within the page
// if needed. It returns ErrPageFull if the new record no longer fits; the
// old record is preserved in that case.
func (p *Page) Update(slot int, rec []byte) error {
	if slot < 0 || slot >= p.nSlots() {
		return fmt.Errorf("slot %d of %d: %w", slot, p.nSlots(), ErrBadSlot)
	}
	off, l := p.slot(slot)
	if off == 0 {
		return fmt.Errorf("slot %d empty: %w", slot, ErrBadSlot)
	}
	if len(rec) <= l {
		// Overwrite in place; excess becomes garbage.
		copy(p.Data[off:], rec)
		p.setSlot(slot, off, len(rec))
		p.setGarbage(p.garbage() + l - len(rec))
		return nil
	}
	if len(rec) > MaxRecord {
		return fmt.Errorf("%d bytes: %w", len(rec), ErrRecordTooBig)
	}
	// Free the old copy, then insert the new bytes.
	avail := p.contiguous() + p.garbage() + l
	if avail < len(rec) {
		return ErrPageFull
	}
	p.setSlot(slot, 0, 0)
	p.setGarbage(p.garbage() + l)
	if p.contiguous() < len(rec) {
		p.compact()
	}
	high := p.freeHigh() - len(rec)
	copy(p.Data[high:], rec)
	p.setFreeHigh(high)
	p.setSlot(slot, high, len(rec))
	return nil
}

// Slots calls fn for every live record, skipping slots whose metadata is
// corrupt. fn must not mutate the page.
func (p *Page) Slots(fn func(slot int, rec []byte)) {
	for i := 0; i < p.nSlots(); i++ {
		if off, l := p.slot(i); off >= headerSize && off+l <= PageSize {
			fn(i, p.Data[off:off+l])
		}
	}
}
