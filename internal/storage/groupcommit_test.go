package storage

import (
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/uid"
)

func testWAL(t *testing.T) *WAL {
	t.Helper()
	w, err := OpenWAL(filepath.Join(t.TempDir(), "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func TestGroupCommitNilSafe(t *testing.T) {
	var g *GroupCommitter
	if err := g.Sync(); err != nil {
		t.Fatalf("nil committer: %v", err)
	}
	g = NewGroupCommitter(nil, 0, 0)
	if err := g.Sync(); err != nil {
		t.Fatalf("nil WAL: %v", err)
	}
}

func TestGroupCommitSingleCommitterNoDelay(t *testing.T) {
	w := testWAL(t)
	r := obs.NewRegistry()
	w.SetObservability(r)
	g := NewGroupCommitter(w, 0, 0)
	g.SetObservability(r)
	for i := 0; i < 5; i++ {
		if err := w.Append(WALRecord{Op: OpPut, UID: uid.UID{Class: 1, Serial: uint64(i)}, Seg: 1}); err != nil {
			t.Fatal(err)
		}
		if err := g.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	// A lone committer gets exactly one fsync per Sync: no batching is
	// possible, and no artificial wait should have been taken.
	if got := r.Counter("wal_fsync_total").Load(); got != 5 {
		t.Fatalf("fsyncs = %d, want 5", got)
	}
	if got := r.Counter("storage_wal_group_commit_syncs_total").Load(); got != 5 {
		t.Fatalf("group syncs = %d, want 5", got)
	}
}

// TestGroupCommitBatchesDeterministic proves the amortization claim
// without depending on scheduler timing: the sync latch is held while N
// committers append and join the current batch, so when the latch is
// released the first of them leads a full batch — exactly one fsync
// covers all N.
func TestGroupCommitBatchesDeterministic(t *testing.T) {
	w := testWAL(t)
	r := obs.NewRegistry()
	w.SetObservability(r)
	g := NewGroupCommitter(w, DefaultCommitWait, 64)
	g.SetObservability(r)

	const committers = 8
	g.syncMu.Lock()
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rec := WALRecord{Op: OpPut, UID: uid.UID{Class: 1, Serial: uint64(c)}, Seg: 1}
			if err := w.Append(rec); err != nil {
				errs[c] = err
				return
			}
			errs[c] = g.Sync()
		}(c)
	}
	// Wait until all committers have joined the batch, then let it run.
	for {
		g.mu.Lock()
		n := 0
		if g.cur != nil {
			n = g.cur.n
		}
		g.mu.Unlock()
		if n == committers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	g.syncMu.Unlock()
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", c, err)
		}
	}
	if fsyncs := r.Counter("wal_fsync_total").Load(); fsyncs != 1 {
		t.Fatalf("fsyncs = %d, want exactly 1 for a pre-filled batch", fsyncs)
	}
	if waiters := r.Counter("storage_wal_group_commit_waiters_total").Load(); waiters != committers {
		t.Fatalf("waiters = %d, want %d", waiters, committers)
	}
	n := 0
	if err := ReplayWAL(w.path, func(WALRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != committers {
		t.Fatalf("replayed %d records, want %d", n, committers)
	}
}

// TestGroupCommitConcurrentCommitters stress-tests the coordinator:
// every committer's Sync must cover its own prior append (a nil error
// only after its records are durable) and the log must replay intact.
// Fsync counts here are scheduler-dependent, so amortization is asserted
// by TestGroupCommitBatchesDeterministic instead.
func TestGroupCommitConcurrentCommitters(t *testing.T) {
	w := testWAL(t)
	r := obs.NewRegistry()
	w.SetObservability(r)
	g := NewGroupCommitter(w, 0, 0)
	g.SetObservability(r)

	const committers = 16
	const rounds = 25
	var wg sync.WaitGroup
	errs := make([]error, committers)
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				rec := WALRecord{Op: OpPut, UID: uid.UID{Class: 1, Serial: uint64(c*rounds + i)}, Seg: 1}
				if err := w.Append(rec); err != nil {
					errs[c] = err
					return
				}
				if err := g.Sync(); err != nil {
					errs[c] = err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Fatalf("committer %d: %v", c, err)
		}
	}
	total := uint64(committers * rounds)
	if waiters := r.Counter("storage_wal_group_commit_waiters_total").Load(); waiters != total {
		t.Fatalf("waiters = %d, want %d", waiters, total)
	}
	// Every record must be durable and intact.
	n := 0
	if err := ReplayWAL(w.path, func(WALRecord) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if uint64(n) != total {
		t.Fatalf("replayed %d records, want %d", n, total)
	}
}

func TestGroupCommitBatchCap(t *testing.T) {
	w := testWAL(t)
	g := NewGroupCommitter(w, DefaultCommitWait, 2)
	if g.maxBatch != 2 {
		t.Fatalf("maxBatch = %d, want 2", g.maxBatch)
	}
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Sync(); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
