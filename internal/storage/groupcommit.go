package storage

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Group-commit defaults: how long a batch leader waits for stragglers
// and how many waiters one fsync may cover.
const (
	DefaultCommitWait  = 200 * time.Microsecond
	DefaultCommitBatch = 64
)

// GroupCommitter amortizes WAL fsyncs across concurrent committers.
// Every caller of Sync joins the current batch; the member that opened
// the batch leads it: it queues on the sync latch (the batch fills while
// the previous batch's fsync runs), optionally waits up to maxWait for
// stragglers (bounded by maxBatch), issues one WAL.Sync covering every
// member's appended records, and wakes the followers — who park on the
// batch's done channel only, never on the latch. Committers arriving
// while a sync is in flight form the next batch, so under load the fsync
// count grows with the number of batches, not the number of commits.
//
// The leader only waits when more committers are demonstrably en route
// (they have entered Sync but not yet joined a batch), so a lone
// committer — including an auto-commit write issued under the engine
// latch — pays exactly one fsync and no artificial delay.
type GroupCommitter struct {
	wal      *WAL
	maxWait  time.Duration
	maxBatch int

	// active counts goroutines currently inside Sync. The leader
	// compares it against its batch size to decide whether waiting can
	// grow the batch at all.
	active atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
	cur  *gcBatch

	// syncMu serializes batch syncs; the holder is the current leader.
	syncMu sync.Mutex

	o gcObs
}

// gcBatch is one group of committers covered by a single fsync.
type gcBatch struct {
	n       int
	err     error
	done    chan struct{}
	expired bool
}

// NewGroupCommitter returns a coordinator over w (nil for an in-memory
// database: every Sync is then a no-op, but the instruments still
// register so the metric family is always exposed). maxWait <= 0 and
// maxBatch <= 0 select the defaults; Options at the db layer map
// negative values to "no wait" before calling here.
func NewGroupCommitter(w *WAL, maxWait time.Duration, maxBatch int) *GroupCommitter {
	if maxWait <= 0 {
		maxWait = DefaultCommitWait
	}
	if maxBatch <= 0 {
		maxBatch = DefaultCommitBatch
	}
	g := &GroupCommitter{wal: w, maxWait: maxWait, maxBatch: maxBatch}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Sync blocks until one WAL fsync covers everything appended before the
// call, sharing the fsync with every concurrent caller. It returns the
// error of the covering fsync (every member of a failed batch sees it).
func (g *GroupCommitter) Sync() error {
	if g == nil || g.wal == nil {
		return nil
	}
	start := time.Now()
	g.active.Add(1)

	g.mu.Lock()
	b := g.cur
	leader := false
	if b == nil || b.n >= g.maxBatch {
		// First member of a fresh batch leads it. A full batch also
		// forces a fresh one — its own leader is already queued on the
		// latch and will seal it.
		b = &gcBatch{done: make(chan struct{})}
		g.cur = b
		leader = true
	}
	b.n++
	// Joined a batch: no longer "en route". Decrementing here — not on
	// return — keeps active meaning exactly "entered Sync but not yet in
	// any batch"; members already settled in batches must not make a
	// leader wait a window for stragglers that can never join.
	g.active.Add(-1)
	g.cond.Broadcast()
	g.mu.Unlock()

	if !leader {
		// Followers park on the batch verdict alone. Keeping them off
		// the sync latch matters for pipelining: a drained batch's
		// members all wake at once from one channel close, loop around,
		// and land in the batch currently filling — instead of
		// re-serializing through the latch one scheduler wakeup at a
		// time, which starves the next batch down to size ~1.
		<-b.done
		g.o.waiters.Inc()
		g.o.waitNs.Observe(int64(time.Since(start)))
		return b.err
	}

	// Leader: serialize with the previous batch's fsync. The batch fills
	// while this blocks — that is where batching comes from under load.
	g.syncMu.Lock()
	// Cheap pre-wait: concurrent committers that just finished their
	// engine work are often one context switch away from entering Sync,
	// yet invisible to the en-route gauge. Yield the processor a few
	// times so they can arrive before this batch pays an fsync. With no
	// runnable peers Gosched returns immediately, so a lone committer
	// loses nothing.
	for i := 0; i < 4 && g.active.Load() == 0; i++ {
		runtime.Gosched()
	}
	g.mu.Lock()
	// Give stragglers a bounded window to join, but only while some are
	// actually en route (entered Sync, not yet in a batch).
	if g.maxWait > 0 && b.n < g.maxBatch && g.active.Load() > 0 {
		timer := time.AfterFunc(g.maxWait, func() {
			g.mu.Lock()
			b.expired = true
			g.cond.Broadcast()
			g.mu.Unlock()
		})
		for !b.expired && b.n < g.maxBatch && g.active.Load() > 0 {
			g.cond.Wait()
		}
		timer.Stop()
	}
	if g.cur == b {
		g.cur = nil
	}
	n := b.n
	g.mu.Unlock()
	b.err = g.wal.Sync()
	close(b.done)
	g.syncMu.Unlock()

	g.o.syncs.Inc()
	g.o.batchSize.Observe(int64(n))
	g.o.waiters.Inc()
	g.o.waitNs.Observe(int64(time.Since(start)))
	return b.err
}
