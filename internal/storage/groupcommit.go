package storage

import (
	"sync"
	"sync/atomic"
	"time"
)

// Group-commit defaults: how long a batch leader waits for stragglers
// and how many waiters one fsync may cover.
const (
	DefaultCommitWait  = 200 * time.Microsecond
	DefaultCommitBatch = 64
)

// GroupCommitter amortizes WAL fsyncs across concurrent committers.
// Every caller of Sync joins the current batch; the first batch member
// to reach the sync latch becomes the leader, optionally waits up to
// maxWait for the batch to fill (bounded by maxBatch), issues one
// WAL.Sync covering every member's appended records, and wakes the
// followers. Committers arriving while a sync is in flight form the
// next batch, so under load the fsync count grows with the number of
// batches, not the number of commits.
//
// The leader only waits when more committers are demonstrably en route
// (they have entered Sync but not yet joined a batch), so a lone
// committer — including an auto-commit write issued under the engine
// latch — pays exactly one fsync and no artificial delay.
type GroupCommitter struct {
	wal      *WAL
	maxWait  time.Duration
	maxBatch int

	// active counts goroutines currently inside Sync. The leader
	// compares it against its batch size to decide whether waiting can
	// grow the batch at all.
	active atomic.Int64

	mu   sync.Mutex
	cond *sync.Cond
	cur  *gcBatch

	// syncMu serializes batch syncs; the holder is the current leader.
	syncMu sync.Mutex

	o gcObs
}

// gcBatch is one group of committers covered by a single fsync.
type gcBatch struct {
	n       int
	err     error
	done    chan struct{}
	expired bool
}

// NewGroupCommitter returns a coordinator over w (nil for an in-memory
// database: every Sync is then a no-op, but the instruments still
// register so the metric family is always exposed). maxWait <= 0 and
// maxBatch <= 0 select the defaults; Options at the db layer map
// negative values to "no wait" before calling here.
func NewGroupCommitter(w *WAL, maxWait time.Duration, maxBatch int) *GroupCommitter {
	if maxWait <= 0 {
		maxWait = DefaultCommitWait
	}
	if maxBatch <= 0 {
		maxBatch = DefaultCommitBatch
	}
	g := &GroupCommitter{wal: w, maxWait: maxWait, maxBatch: maxBatch}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Sync blocks until one WAL fsync covers everything appended before the
// call, sharing the fsync with every concurrent caller. It returns the
// error of the covering fsync (every member of a failed batch sees it).
func (g *GroupCommitter) Sync() error {
	if g == nil || g.wal == nil {
		return nil
	}
	start := time.Now()
	g.active.Add(1)
	defer g.active.Add(-1)

	g.mu.Lock()
	b := g.cur
	if b == nil {
		b = &gcBatch{done: make(chan struct{})}
		g.cur = b
	}
	b.n++
	g.cond.Broadcast()
	g.mu.Unlock()

	g.syncMu.Lock()
	g.mu.Lock()
	if g.cur != b {
		// A leader sealed and synced our batch while we queued for the
		// latch; done is closed before the latch is released, so the
		// verdict is already in.
		g.mu.Unlock()
		g.syncMu.Unlock()
		<-b.done
		g.o.waiters.Inc()
		g.o.waitNs.Observe(int64(time.Since(start)))
		return b.err
	}
	// Leader: give stragglers a bounded window to join, but only while
	// some are actually en route.
	if g.maxWait > 0 && b.n < g.maxBatch && int64(b.n) < g.active.Load() {
		timer := time.AfterFunc(g.maxWait, func() {
			g.mu.Lock()
			b.expired = true
			g.cond.Broadcast()
			g.mu.Unlock()
		})
		for !b.expired && b.n < g.maxBatch && int64(b.n) < g.active.Load() {
			g.cond.Wait()
		}
		timer.Stop()
	}
	g.cur = nil
	n := b.n
	g.mu.Unlock()
	b.err = g.wal.Sync()
	close(b.done)
	g.syncMu.Unlock()

	g.o.syncs.Inc()
	g.o.batchSize.Observe(int64(n))
	g.o.waiters.Inc()
	g.o.waitNs.Observe(int64(time.Since(start)))
	return b.err
}
