package storage

import "repro/internal/obs"

// poolObs holds the buffer pool's pre-resolved instruments (see
// internal/obs). The five counters are the same ones Stats always
// exposed; they now live in a registry so the exposition endpoint and
// the bench harness read the identical numbers.
type poolObs struct {
	tr        *obs.Tracer
	hits      *obs.Counter
	misses    *obs.Counter
	reads     *obs.Counter
	writes    *obs.Counter
	evictions *obs.Counter
}

// SetObservability rebinds the pool's counters to r (nil disables
// them, which also blanks Stats). Call before the pool is used
// concurrently.
func (bp *BufferPool) SetObservability(r *obs.Registry) {
	bp.o = poolObs{
		tr:        r.Tracer(),
		hits:      r.Counter("storage_pool_hits_total"),
		misses:    r.Counter("storage_pool_misses_total"),
		reads:     r.Counter("storage_pool_reads_total"),
		writes:    r.Counter("storage_pool_writes_total"),
		evictions: r.Counter("storage_pool_evictions_total"),
	}
}

// walObs holds the WAL's pre-resolved instruments: append volume
// counters plus fsync count and latency (fsync dominates commit cost,
// so it is always timed and feeds the slow log).
type walObs struct {
	tr          *obs.Tracer
	slow        *obs.SlowLog
	appends     *obs.Counter
	appendBytes *obs.Counter
	fsyncs      *obs.Counter
	fsyncNs     *obs.Histogram
}

// gcObs holds the group-commit coordinator's pre-resolved instruments:
// batch counts and sizes (the fsync amortization factor is
// syncs_total / waiters_total) plus the per-committer wait latency.
type gcObs struct {
	syncs     *obs.Counter
	waiters   *obs.Counter
	batchSize *obs.Histogram
	waitNs    *obs.Histogram
}

// GroupCommitBatchBuckets are the batch-size histogram bounds.
var GroupCommitBatchBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// SetObservability rebinds the coordinator's instruments to r (nil
// disables them). Call before concurrent use.
func (g *GroupCommitter) SetObservability(r *obs.Registry) {
	g.o = gcObs{
		syncs:     r.Counter("storage_wal_group_commit_syncs_total"),
		waiters:   r.Counter("storage_wal_group_commit_waiters_total"),
		batchSize: r.Histogram("storage_wal_group_commit_batch_size", GroupCommitBatchBuckets),
		waitNs:    r.Histogram("storage_wal_group_commit_wait_ns", nil),
	}
}

// SetObservability rebinds the log's instruments to r (nil disables
// them). Call before the log is used concurrently.
func (w *WAL) SetObservability(r *obs.Registry) {
	w.o = walObs{
		tr:          r.Tracer(),
		slow:        r.Slow(),
		appends:     r.Counter("wal_append_total"),
		appendBytes: r.Counter("wal_append_bytes_total"),
		fsyncs:      r.Counter("wal_fsync_total"),
		fsyncNs:     r.Histogram("wal_fsync_ns", nil),
	}
}
