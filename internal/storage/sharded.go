package storage

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/uid"
)

// ShardedStore partitions objects across N independent Stores, each backed
// by its own buffer pool (and, at the db layer, its own WAL + group
// committer), keyed by composite unit: an object is routed to the shard of
// its placement root, so a single-hierarchy transaction touches exactly
// one shard and fsync bandwidth scales with the shard count.
//
// Routing is STICKY: an object's shard is decided at its first write
// (the shard already recorded for its placement root, falling back to a
// hash of the root when the root itself is new) and never changes for the
// rest of its life — not on re-parenting Attach, not on reclustering.
// Re-parenting an object into a hierarchy rooted on another shard
// therefore produces a cross-shard transaction (the db layer's 2PC), not
// a silent migration; the reclusterer moves objects only within their own
// shard's segments. Stickiness is what makes replay deterministic: every
// WAL record for an object lives in exactly one shard's log, so the
// shards can be replayed in parallel, in any order.
//
// The routing table is not persisted separately — it is exactly the union
// of the shard stores' directories, rebuilt by Reindex after the per-shard
// checkpoint metas load, and maintained by Put/Delete afterwards.
type ShardedStore struct {
	shards []*Store

	mu     sync.RWMutex
	of     map[uid.UID]int // object → owning shard
	graves map[uid.UID]int // deleted object → last owning shard
}

// NewShardedStore wraps the given per-shard stores. At least one shard is
// required; a 1-shard store behaves byte-identically to the unsharded
// layout.
func NewShardedStore(shards []*Store) *ShardedStore {
	if len(shards) == 0 {
		panic("storage: NewShardedStore with zero shards")
	}
	return &ShardedStore{shards: shards, of: make(map[uid.UID]int), graves: make(map[uid.UID]int)}
}

// NumShards returns the shard count.
func (s *ShardedStore) NumShards() int { return len(s.shards) }

// Shard returns shard k's underlying store (for shard-scoped segment
// operations: replay, reclustering, checkpoint metas).
func (s *ShardedStore) Shard(k int) *Store { return s.shards[k] }

// SetHeat installs the shared unit-heat sink on every shard.
func (s *ShardedStore) SetHeat(heat *obs.UnitHeat, rootOf func(uid.UID) uid.UID) {
	for _, st := range s.shards {
		st.SetHeat(heat, rootOf)
	}
}

// HashShard is the routing fallback for objects whose placement root has
// no recorded shard yet (a brand-new hierarchy): a stable FNV-1a hash of
// the UID. Exported so tests can predict where a fresh root lands.
func HashShard(id uid.UID, n int) int {
	h := fnv.New32a()
	var b [12]byte
	b[0] = byte(id.Class)
	b[1] = byte(id.Class >> 8)
	b[2] = byte(id.Class >> 16)
	b[3] = byte(id.Class >> 24)
	for i := 0; i < 8; i++ {
		b[4+i] = byte(id.Serial >> (8 * i))
	}
	h.Write(b[:])
	return int(h.Sum32() % uint32(n))
}

// ShardOf reports the shard currently owning id.
func (s *ShardedStore) ShardOf(id uid.UID) (int, bool) {
	s.mu.RLock()
	k, ok := s.of[id]
	s.mu.RUnlock()
	return k, ok
}

// ShardFor resolves the shard a write of id must go to: the recorded
// shard if id is live; else the shard id last lived on (its grave —
// a transactional delete's compensating undo write, or any other
// reincarnation of a deleted UID, MUST return to the original shard,
// because that shard's WAL still carries the UID's history and replay
// order across shards is undefined); else the placement root's recorded
// shard; else a hash of the root (or of id itself when it is its own
// root). The result only becomes sticky when a Put records it.
func (s *ShardedStore) ShardFor(id, root uid.UID) int {
	if len(s.shards) == 1 {
		return 0
	}
	s.mu.RLock()
	k, ok := s.of[id]
	if !ok {
		k, ok = s.graves[id]
	}
	if !ok && !root.IsNil() {
		k, ok = s.of[root]
	}
	s.mu.RUnlock()
	if ok {
		return k
	}
	key := root
	if key.IsNil() {
		key = id
	}
	return HashShard(key, len(s.shards))
}

// Put upserts id into the given shard (segment IDs are shard-scoped) and
// records the routing. A put that contradicts an existing routing entry is
// refused: it would leave the object readable from two shards.
func (s *ShardedStore) Put(shard int, seg SegmentID, id uid.UID, rec []byte, near uid.UID) error {
	s.mu.RLock()
	prev, ok := s.of[id]
	s.mu.RUnlock()
	if ok && prev != shard {
		return fmt.Errorf("storage: put of %v into shard %d, but it lives in shard %d", id, shard, prev)
	}
	if err := s.shards[shard].Put(seg, id, rec, near); err != nil {
		return err
	}
	if !ok {
		s.mu.Lock()
		s.of[id] = shard
		delete(s.graves, id)
		s.mu.Unlock()
	}
	return nil
}

// Move relocates id within its own shard (the reclusterer's primitive).
// The shard argument must match the routing table — a cross-shard move is
// a routing violation, not a supported operation.
func (s *ShardedStore) Move(shard int, seg SegmentID, id uid.UID, near uid.UID) error {
	s.mu.RLock()
	prev, ok := s.of[id]
	s.mu.RUnlock()
	if ok && prev != shard {
		return fmt.Errorf("storage: move of %v in shard %d, but it lives in shard %d", id, shard, prev)
	}
	return s.shards[shard].Move(seg, id, near)
}

// Get reads id's record from its shard.
func (s *ShardedStore) Get(id uid.UID) ([]byte, error) {
	k, ok := s.ShardOf(id)
	if !ok {
		return nil, ErrNotFound
	}
	return s.shards[k].Get(id)
}

// Has reports whether id is stored.
func (s *ShardedStore) Has(id uid.UID) bool {
	k, ok := s.ShardOf(id)
	return ok && s.shards[k].Has(id)
}

// Delete removes id from its shard, demoting the routing entry to a
// grave: the UID stays pinned to the shard whose WAL carries its
// history, so a reincarnation (an abort's compensating re-insert, or a
// recycled UID) cannot scatter one object's records across shard logs.
func (s *ShardedStore) Delete(id uid.UID) error {
	k, ok := s.ShardOf(id)
	if !ok {
		return ErrNotFound
	}
	err := s.shards[k].Delete(id)
	if err == nil || errors.Is(err, ErrNotFound) {
		s.mu.Lock()
		delete(s.of, id)
		s.graves[id] = k
		s.mu.Unlock()
	}
	return err
}

// Len is the total object count across shards.
func (s *ShardedStore) Len() int {
	n := 0
	for _, st := range s.shards {
		n += st.Len()
	}
	return n
}

// UIDs returns every stored UID across all shards, sorted.
func (s *ShardedStore) UIDs() []uid.UID {
	var out []uid.UID
	for _, st := range s.shards {
		out = append(out, st.UIDs()...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Less(out[b]) })
	return out
}

// SegmentOf returns the (shard-scoped) segment id lives in.
func (s *ShardedStore) SegmentOf(id uid.UID) (SegmentID, bool) {
	k, ok := s.ShardOf(id)
	if !ok {
		return 0, false
	}
	return s.shards[k].SegmentOf(id)
}

// PageOf returns the (shard-scoped) page id lives on.
func (s *ShardedStore) PageOf(id uid.UID) (PageID, bool) {
	k, ok := s.ShardOf(id)
	if !ok {
		return 0, false
	}
	return s.shards[k].PageOf(id)
}

// SegmentByName scans the shards in order and returns the first segment
// with that name. Segment namespaces are per-shard, so the same name may
// exist on several shards (e.g. the per-unit recluster segments); callers
// that care which shard answered should go through Shard(k) directly.
// With one shard this is exactly Store.SegmentByName.
func (s *ShardedStore) SegmentByName(name string) (SegmentID, bool) {
	for _, st := range s.shards {
		if seg, ok := st.SegmentByName(name); ok {
			return seg, true
		}
	}
	return 0, false
}

// Reindex rebuilds the routing table from the shard stores' contents —
// called after checkpoint metas load, before WAL replay. An object found
// in two shards is a hard error: the one-shard-per-object invariant was
// already broken on disk.
func (s *ShardedStore) Reindex() error {
	of := make(map[uid.UID]int)
	for k, st := range s.shards {
		for _, id := range st.UIDs() {
			if prev, dup := of[id]; dup {
				return fmt.Errorf("storage: %v present in shards %d and %d", id, prev, k)
			}
			of[id] = k
		}
	}
	s.mu.Lock()
	s.of = of
	s.graves = make(map[uid.UID]int)
	s.mu.Unlock()
	return nil
}

// ClearGraves forgets the deleted-UID pins. Only valid right after a
// checkpoint has truncated every shard WAL: with no history left in any
// log, a recycled UID may safely start a fresh life on any shard.
func (s *ShardedStore) ClearGraves() {
	s.mu.Lock()
	s.graves = make(map[uid.UID]int)
	s.mu.Unlock()
}

// CheckShards verifies the cross-shard invariant: the routing table and
// the union of shard contents are exactly the same set, and no object is
// stored by more than one shard.
func (s *ShardedStore) CheckShards() error {
	s.mu.RLock()
	of := make(map[uid.UID]int, len(s.of))
	for id, k := range s.of {
		of[id] = k
	}
	s.mu.RUnlock()
	total := 0
	for k, st := range s.shards {
		for _, id := range st.UIDs() {
			owner, ok := of[id]
			if !ok {
				return fmt.Errorf("storage: %v stored in shard %d but unrouted", id, k)
			}
			if owner != k {
				return fmt.Errorf("storage: %v stored in shard %d but routed to shard %d", id, k, owner)
			}
			total++
		}
	}
	if total != len(of) {
		return fmt.Errorf("storage: routing table has %d entries, shards store %d objects", len(of), total)
	}
	return nil
}

// CheckPlacement runs every shard's exactly-one-location scan plus the
// cross-shard routing invariant.
func (s *ShardedStore) CheckPlacement() error {
	for k, st := range s.shards {
		if err := st.CheckPlacement(); err != nil {
			return fmt.Errorf("shard %d: %w", k, err)
		}
	}
	return s.CheckShards()
}
