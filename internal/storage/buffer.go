package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Stats counts buffer-pool activity. Reads/Writes are device I/Os; Hits
// and Misses are Fetch outcomes. The clustering and traversal benches use
// these counters as their cost metric, standing in for the paper's disk
// accesses.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Reads     uint64
	Writes    uint64
	Evictions uint64
}

// ErrPoolFull is returned when every frame is pinned and none can be
// evicted.
var ErrPoolFull = errors.New("storage: buffer pool full (all pages pinned)")

type frame struct {
	page  Page
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned; nil when pinned
}

// shard is one independently locked slice of the pool: its own frame
// table, LRU list, and capacity share. Pages map to shards by PageID, so
// two readers faulting on different pages contend only when the pages
// hash to the same shard.
type shard struct {
	mu       sync.Mutex
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recently unpinned
}

// Shard sizing: the shard count is the largest power of two (up to
// maxPoolShards) that still leaves every shard at least minShardFrames
// frames. Small pools therefore keep a single shard — and with it the
// exact global LRU order the replacement tests and the clustering bench
// rely on — while the default 256-page pool splits 16 ways.
const (
	maxPoolShards  = 16
	minShardFrames = 16
)

// BufferPool caches pages from a Device with LRU replacement of unpinned
// frames. It is safe for concurrent use; pages returned by Fetch/NewPage
// are pinned and must be released with Unpin. Locking is striped by
// PageID so concurrent fetches of different pages proceed in parallel
// (eviction is per shard: each shard runs LRU over its own capacity
// share). Concurrent mutators of the same page must coordinate externally
// (the object store holds its own latch).
type BufferPool struct {
	dev    Device
	shards []*shard
	mask   uint32
	o      poolObs

	// prof is the ambient per-operation cost sink (AttachProf): fetches
	// and evictions are attributed to it while attached. Exact when one
	// profiled operation runs at a time; see obs.ProfCtx.
	prof atomic.Pointer[obs.ProfCtx]
}

// AttachProf attributes pool activity to p until detached (nil).
func (bp *BufferPool) AttachProf(p *obs.ProfCtx) { bp.prof.Store(p) }

// NewBufferPool returns a pool holding at most capacity pages.
func NewBufferPool(dev Device, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	n := 1
	for n < maxPoolShards && capacity/(n*2) >= minShardFrames {
		n *= 2
	}
	bp := &BufferPool{dev: dev, mask: uint32(n - 1)}
	bp.SetObservability(obs.NewRegistry())
	per, rem := capacity/n, capacity%n
	for i := 0; i < n; i++ {
		c := per
		if i < rem {
			c++
		}
		bp.shards = append(bp.shards, &shard{
			capacity: c,
			frames:   make(map[PageID]*frame),
			lru:      list.New(),
		})
	}
	return bp
}

func (bp *BufferPool) shardFor(id PageID) *shard {
	return bp.shards[uint32(id)&bp.mask]
}

// Shards returns the number of lock stripes (for tests and diagnostics).
func (bp *BufferPool) Shards() int { return len(bp.shards) }

// Device returns the underlying device.
func (bp *BufferPool) Device() Device { return bp.dev }

// Stats returns a snapshot of the pool counters — a view over the
// registry instruments (internal/obs). Counters are atomics, so the
// snapshot is race-clean even against concurrent fetches (each field
// is individually exact; the set is not a single instant's cut).
func (bp *BufferPool) Stats() Stats {
	return Stats{
		Hits:      bp.o.hits.Load(),
		Misses:    bp.o.misses.Load(),
		Reads:     bp.o.reads.Load(),
		Writes:    bp.o.writes.Load(),
		Evictions: bp.o.evictions.Load(),
	}
}

// ResetStats zeroes the pool counters (atomic stores; safe against
// concurrent fetches).
func (bp *BufferPool) ResetStats() {
	bp.o.hits.Reset()
	bp.o.misses.Reset()
	bp.o.reads.Reset()
	bp.o.writes.Reset()
	bp.o.evictions.Reset()
}

// evictOne writes back and drops the shard's least recently used unpinned
// frame. Caller holds s.mu.
func (bp *BufferPool) evictOne(s *shard) error {
	back := s.lru.Back()
	if back == nil {
		return ErrPoolFull
	}
	id := back.Value.(PageID)
	fr := s.frames[id]
	if fr.dirty {
		if err := bp.dev.WritePage(&fr.page); err != nil {
			return err
		}
		bp.o.writes.Inc()
		bp.prof.Load().PageWrite()
	}
	s.lru.Remove(back)
	delete(s.frames, id)
	bp.o.evictions.Inc()
	if tr := bp.o.tr; tr.Active() {
		tr.Point(0, "storage.pool.evict", obs.F("page", id), obs.F("dirty", fr.dirty))
	}
	return nil
}

// ensureRoom makes space for one more frame in the shard. Caller holds
// s.mu.
func (bp *BufferPool) ensureRoom(s *shard) error {
	for len(s.frames) >= s.capacity {
		if err := bp.evictOne(s); err != nil {
			return err
		}
	}
	return nil
}

// Fetch returns the page pinned. The caller must Unpin it.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	s := bp.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if fr, ok := s.frames[id]; ok {
		bp.o.hits.Inc()
		bp.prof.Load().PoolHit()
		if fr.elem != nil {
			s.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pins++
		return &fr.page, nil
	}
	bp.o.misses.Inc()
	bp.prof.Load().PoolMiss()
	if tr := bp.o.tr; tr.Active() {
		tr.Point(0, "storage.pool.miss", obs.F("page", id))
	}
	if err := bp.ensureRoom(s); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1}
	if err := bp.dev.ReadPage(id, &fr.page); err != nil {
		return nil, err
	}
	bp.o.reads.Inc()
	bp.prof.Load().PageRead()
	s.frames[id] = fr
	return &fr.page, nil
}

// NewPage allocates a fresh page on the device, initializes it as an empty
// slotted page, and returns it pinned and dirty.
func (bp *BufferPool) NewPage() (*Page, error) {
	id, err := bp.dev.Allocate()
	if err != nil {
		return nil, err
	}
	s := bp.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := bp.ensureRoom(s); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1, dirty: true}
	fr.page.ID = id
	fr.page.InitPage()
	s.frames[id] = fr
	return &fr.page, nil
}

// Contains reports whether the page is currently resident, without
// affecting LRU order or pin counts. A false answer means a Fetch would
// miss and read the device — the signal per-unit heat attribution keys on.
func (bp *BufferPool) Contains(id PageID) bool {
	s := bp.shardFor(id)
	s.mu.Lock()
	_, ok := s.frames[id]
	s.mu.Unlock()
	return ok
}

// Unpin releases one pin on the page, marking it dirty if the caller
// modified it. When the pin count reaches zero the page becomes evictable.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	s := bp.shardFor(id)
	s.mu.Lock()
	defer s.mu.Unlock()
	fr, ok := s.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	if dirty {
		fr.dirty = true
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = s.lru.PushFront(id)
	}
}

// FlushAll writes every dirty frame back to the device and syncs it.
// Frames stay cached.
func (bp *BufferPool) FlushAll() error {
	for _, s := range bp.shards {
		s.mu.Lock()
		for _, fr := range s.frames {
			if fr.dirty {
				if err := bp.dev.WritePage(&fr.page); err != nil {
					s.mu.Unlock()
					return err
				}
				bp.o.writes.Inc()
				fr.dirty = false
			}
		}
		s.mu.Unlock()
	}
	return bp.dev.Sync()
}

// Len returns the number of cached frames.
func (bp *BufferPool) Len() int {
	n := 0
	for _, s := range bp.shards {
		s.mu.Lock()
		n += len(s.frames)
		s.mu.Unlock()
	}
	return n
}
