package storage

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// Stats counts buffer-pool activity. Reads/Writes are device I/Os; Hits
// and Misses are Fetch outcomes. The clustering and traversal benches use
// these counters as their cost metric, standing in for the paper's disk
// accesses.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Reads     uint64
	Writes    uint64
	Evictions uint64
}

// ErrPoolFull is returned when every frame is pinned and none can be
// evicted.
var ErrPoolFull = errors.New("storage: buffer pool full (all pages pinned)")

type frame struct {
	page  Page
	pins  int
	dirty bool
	elem  *list.Element // position in the LRU list when unpinned; nil when pinned
}

// BufferPool caches pages from a Device with LRU replacement of unpinned
// frames. It is safe for concurrent use; pages returned by Fetch/NewPage
// are pinned and must be released with Unpin. Concurrent mutators of the
// same page must coordinate externally (the object store holds its own
// latch).
type BufferPool struct {
	mu       sync.Mutex
	dev      Device
	capacity int
	frames   map[PageID]*frame
	lru      *list.List // of PageID, front = most recently unpinned
	stats    Stats
}

// NewBufferPool returns a pool holding at most capacity pages.
func NewBufferPool(dev Device, capacity int) *BufferPool {
	if capacity < 1 {
		capacity = 1
	}
	return &BufferPool{
		dev:      dev,
		capacity: capacity,
		frames:   make(map[PageID]*frame),
		lru:      list.New(),
	}
}

// Device returns the underlying device.
func (bp *BufferPool) Device() Device { return bp.dev }

// Stats returns a snapshot of the pool counters.
func (bp *BufferPool) Stats() Stats {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return bp.stats
}

// ResetStats zeroes the pool counters.
func (bp *BufferPool) ResetStats() {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	bp.stats = Stats{}
}

// evictOne writes back and drops the least recently used unpinned frame.
// Caller holds bp.mu.
func (bp *BufferPool) evictOne() error {
	back := bp.lru.Back()
	if back == nil {
		return ErrPoolFull
	}
	id := back.Value.(PageID)
	fr := bp.frames[id]
	if fr.dirty {
		if err := bp.dev.WritePage(&fr.page); err != nil {
			return err
		}
		bp.stats.Writes++
	}
	bp.lru.Remove(back)
	delete(bp.frames, id)
	bp.stats.Evictions++
	return nil
}

// ensureRoom makes space for one more frame. Caller holds bp.mu.
func (bp *BufferPool) ensureRoom() error {
	for len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return err
		}
	}
	return nil
}

// Fetch returns the page pinned. The caller must Unpin it.
func (bp *BufferPool) Fetch(id PageID) (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if fr, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		if fr.elem != nil {
			bp.lru.Remove(fr.elem)
			fr.elem = nil
		}
		fr.pins++
		return &fr.page, nil
	}
	bp.stats.Misses++
	if err := bp.ensureRoom(); err != nil {
		return nil, err
	}
	fr := &frame{pins: 1}
	if err := bp.dev.ReadPage(id, &fr.page); err != nil {
		return nil, err
	}
	bp.stats.Reads++
	bp.frames[id] = fr
	return &fr.page, nil
}

// NewPage allocates a fresh page on the device, initializes it as an empty
// slotted page, and returns it pinned and dirty.
func (bp *BufferPool) NewPage() (*Page, error) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	if err := bp.ensureRoom(); err != nil {
		return nil, err
	}
	id, err := bp.dev.Allocate()
	if err != nil {
		return nil, err
	}
	fr := &frame{pins: 1, dirty: true}
	fr.page.ID = id
	fr.page.InitPage()
	bp.frames[id] = fr
	return &fr.page, nil
}

// Unpin releases one pin on the page, marking it dirty if the caller
// modified it. When the pin count reaches zero the page becomes evictable.
func (bp *BufferPool) Unpin(id PageID, dirty bool) {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	fr, ok := bp.frames[id]
	if !ok || fr.pins == 0 {
		panic(fmt.Sprintf("storage: unpin of unpinned page %d", id))
	}
	if dirty {
		fr.dirty = true
	}
	fr.pins--
	if fr.pins == 0 {
		fr.elem = bp.lru.PushFront(id)
	}
}

// FlushAll writes every dirty frame back to the device and syncs it.
// Frames stay cached.
func (bp *BufferPool) FlushAll() error {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	for _, fr := range bp.frames {
		if fr.dirty {
			if err := bp.dev.WritePage(&fr.page); err != nil {
				return err
			}
			bp.stats.Writes++
			fr.dirty = false
		}
	}
	return bp.dev.Sync()
}

// Len returns the number of cached frames.
func (bp *BufferPool) Len() int {
	bp.mu.Lock()
	defer bp.mu.Unlock()
	return len(bp.frames)
}
