package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/uid"
)

// SegmentID identifies a physical segment: a named set of pages that one
// or more classes are assigned to. Clustering only happens within a
// segment (§2.3: "clustering is only performed if the classes of the two
// objects are stored in the same physical segment").
type SegmentID uint32

// RID locates a record: page and slot.
type RID struct {
	Page PageID
	Slot int
}

// Sentinel errors for the object store.
var (
	ErrNotFound   = errors.New("storage: object not found")
	ErrDupSegment = errors.New("storage: duplicate segment name")
	ErrNoSegment  = errors.New("storage: no such segment")
)

type segment struct {
	ID    SegmentID
	Name  string
	Pages []PageID
}

// Store maps UIDs to records placed in segments, with optional clustered
// placement next to a designated neighbor object. It is safe for
// concurrent use. Synchronization is two-level: s.mu guards the segment
// tables and the UID directory in short critical sections, while a
// per-segment reader/writer latch serializes page operations within one
// segment — every page belongs to exactly one segment, so writers of
// different segments touch disjoint pages and proceed in parallel
// (disjoint composite hierarchies live in different class segments, which
// is where the concurrent write path gets its storage parallelism).
type Store struct {
	mu        sync.RWMutex
	pool      *BufferPool
	segs      map[SegmentID]*segment
	latches   map[SegmentID]*sync.RWMutex
	segByName map[string]SegmentID
	dir       map[uid.UID]RID
	segOf     map[uid.UID]SegmentID
	nextSeg   SegmentID

	// heat, when set, receives per-composite-unit miss attribution: a Get
	// whose page is not resident charges one touch to the unit root that
	// rootOf resolves for the object. This is the access signal the
	// usage-driven placement policy and the background reclusterer
	// consume. Both fields are set once before concurrent use.
	heat   *obs.UnitHeat
	rootOf func(uid.UID) uid.UID
}

// NewStore returns an empty store over the pool.
func NewStore(pool *BufferPool) *Store {
	return &Store{
		pool:      pool,
		segs:      make(map[SegmentID]*segment),
		latches:   make(map[SegmentID]*sync.RWMutex),
		segByName: make(map[string]SegmentID),
		dir:       make(map[uid.UID]RID),
		segOf:     make(map[uid.UID]SegmentID),
		nextSeg:   1,
	}
}

// Pool returns the store's buffer pool (for stats in benches).
func (s *Store) Pool() *BufferPool { return s.pool }

// SetHeat installs per-unit miss attribution: cold Gets charge one touch
// to the unit root rootOf resolves for the object. rootOf must be safe to
// call from Get (it may take the engine read latch — Get is never called
// while the engine latch is held). Call before concurrent use; nil
// disables attribution.
func (s *Store) SetHeat(heat *obs.UnitHeat, rootOf func(uid.UID) uid.UID) {
	s.heat = heat
	s.rootOf = rootOf
}

// CreateSegment registers a new segment.
func (s *Store) CreateSegment(name string) (SegmentID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.segByName[name]; ok {
		return 0, fmt.Errorf("%q: %w", name, ErrDupSegment)
	}
	id := s.nextSeg
	s.nextSeg++
	s.segs[id] = &segment{ID: id, Name: name}
	s.latches[id] = &sync.RWMutex{}
	s.segByName[name] = id
	return id, nil
}

// SegmentByName returns the segment with the given name.
func (s *Store) SegmentByName(name string) (SegmentID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.segByName[name]
	return id, ok
}

// HasSegment reports whether the segment ID is registered. WAL replay
// uses it to decide whether a record's persisted segment can be honored
// or the class→segment assignment must be re-derived.
func (s *Store) HasSegment(seg SegmentID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.segs[seg]
	return ok
}

// NextSegment returns the ID the next CreateSegment call will assign.
// Recovery snapshots it right after LoadMeta as the boundary between
// checkpoint-loaded segments (stable IDs a WAL record may reference)
// and segments created during replay itself (fresh IDs that need not
// match the pre-crash run's numbering).
func (s *Store) NextSegment() SegmentID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.nextSeg
}

// SegmentOf returns the segment an object is stored in.
func (s *Store) SegmentOf(id uid.UID) (SegmentID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sg, ok := s.segOf[id]
	return sg, ok
}

// Has reports whether the object exists.
func (s *Store) Has(id uid.UID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.dir[id]
	return ok
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.dir)
}

// PageOf returns the page an object currently lives on, for clustering
// measurements.
func (s *Store) PageOf(id uid.UID) (PageID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rid, ok := s.dir[id]
	return rid.Page, ok
}

// Put inserts or updates the record for id. seg selects the segment for a
// NEW object; an existing object is updated wherever it currently lives,
// which may differ from seg after the reclusterer migrated it (the
// class→segment assignment names the default home, not a constraint). For
// a new object, near (when non-nil, present, and in the same segment)
// requests clustered placement on the same page as near, falling back to
// any page in the segment with room, then to a fresh page. Updates rewrite
// in place when the record fits and relocate within the segment otherwise.
func (s *Store) Put(seg SegmentID, id uid.UID, rec []byte, near uid.UID) error {
	if id.IsNil() {
		return fmt.Errorf("storage: put of nil uid")
	}
	for {
		s.mu.RLock()
		if cur, ok := s.segOf[id]; ok {
			seg = cur
		}
		sg := s.segs[seg]
		latch := s.latches[seg]
		s.mu.RUnlock()
		if sg == nil {
			return fmt.Errorf("segment %d: %w", seg, ErrNoSegment)
		}
		latch.Lock()
		// Re-read under the latch. Directory entries for this segment's
		// objects only change under its latch, with one exception: a Move
		// may have relocated the object to another segment between the
		// lookup and the latch acquisition — retry against its new home.
		s.mu.RLock()
		rid, exists := s.dir[id]
		cur, curOK := s.segOf[id]
		s.mu.RUnlock()
		if exists && cur != seg {
			latch.Unlock()
			continue
		}
		if !exists && curOK {
			// Unreachable (dir and segOf are updated together), but keep
			// the invariant explicit.
			latch.Unlock()
			continue
		}
		var err error
		if exists {
			err = s.updateLatched(sg, id, rid, rec)
		} else {
			err = s.insertLatched(sg, id, rec, near)
		}
		latch.Unlock()
		return err
	}
}

// Move relocates id into segment seg, clustered next to near (the
// reclusterer's primitive: near chains unit members onto contiguous
// pages). The directory is repointed only after the record is readable at
// its new location, and the old slot is freed after, so a concurrent Get
// always finds the object in exactly one place. Callers serialize moves
// against logical writers externally (the reclusterer holds the §7
// unit-root X lock); Move itself holds both segment latches, ordered by
// ID, so page operations never race.
func (s *Store) Move(seg SegmentID, id uid.UID, near uid.UID) error {
	if id.IsNil() {
		return fmt.Errorf("storage: move of nil uid")
	}
	for {
		s.mu.RLock()
		cur, ok := s.segOf[id]
		dst := s.segs[seg]
		curLatch := s.latches[cur]
		dstLatch := s.latches[seg]
		s.mu.RUnlock()
		if !ok {
			return fmt.Errorf("%v: %w", id, ErrNotFound)
		}
		if dst == nil {
			return fmt.Errorf("segment %d: %w", seg, ErrNoSegment)
		}
		// Latch source and destination in segment-ID order (one latch when
		// reclustering within a segment).
		first, second := curLatch, dstLatch
		if cur == seg {
			second = nil
		} else if seg < cur {
			first, second = dstLatch, curLatch
		}
		first.Lock()
		if second != nil {
			second.Lock()
		}
		unlock := func() {
			if second != nil {
				second.Unlock()
			}
			first.Unlock()
		}
		s.mu.RLock()
		rid, exists := s.dir[id]
		nowCur := s.segOf[id]
		s.mu.RUnlock()
		if !exists {
			unlock()
			return fmt.Errorf("%v: %w", id, ErrNotFound)
		}
		if nowCur != cur {
			unlock() // moved concurrently; retry against its new home
			continue
		}
		p, err := s.pool.Fetch(rid.Page)
		if err != nil {
			unlock()
			return err
		}
		rec, err := p.Read(rid.Slot)
		if err != nil {
			s.pool.Unpin(rid.Page, false)
			unlock()
			return err
		}
		rec = append([]byte(nil), rec...)
		s.pool.Unpin(rid.Page, false)
		// Insert at the new location first (repoints the directory), then
		// free the old slot: no window where the object is unreadable.
		if err := s.insertLatched(dst, id, rec, near); err != nil {
			unlock()
			return err
		}
		s.mu.RLock()
		newRID := s.dir[id]
		s.mu.RUnlock()
		if newRID == rid && cur == seg {
			unlock() // re-inserted into its own slot's page/slot: nothing to free
			return nil
		}
		p, err = s.pool.Fetch(rid.Page)
		if err != nil {
			unlock()
			return err
		}
		derr := p.Delete(rid.Slot)
		s.pool.Unpin(rid.Page, derr == nil)
		unlock()
		return derr
	}
}

// updateLatched rewrites id's record in place, or relocates it within the
// segment when the page has no room. Caller holds the segment latch.
func (s *Store) updateLatched(sg *segment, id uid.UID, rid RID, rec []byte) error {
	p, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	err = p.Update(rid.Slot, rec)
	if err == nil {
		s.pool.Unpin(rid.Page, true)
		return nil
	}
	if !errors.Is(err, ErrPageFull) {
		s.pool.Unpin(rid.Page, false)
		return err
	}
	// Relocate: delete here, insert elsewhere in the segment. The
	// directory entry is overwritten by the insert in one step, so a
	// concurrent reader never sees the object transiently missing.
	if derr := p.Delete(rid.Slot); derr != nil {
		s.pool.Unpin(rid.Page, false)
		return derr
	}
	s.pool.Unpin(rid.Page, true)
	return s.insertLatched(sg, id, rec, uid.Nil)
}

// insertLatched places a record in the segment. Caller holds the segment
// latch, which also makes it the only mutator of sg.Pages; the append
// additionally takes s.mu so SaveMeta's shared-latch read stays safe.
func (s *Store) insertLatched(sg *segment, id uid.UID, rec []byte, near uid.UID) error {
	if len(rec) > MaxRecord {
		return fmt.Errorf("storage: object %v: %w", id, ErrRecordTooBig)
	}
	// Candidate pages in preference order: the neighbor's page, then the
	// segment's pages from most recently added.
	var candidates []PageID
	if !near.IsNil() {
		s.mu.RLock()
		nrid, ok := s.dir[near]
		nseg := s.segOf[near]
		s.mu.RUnlock()
		if ok && nseg == sg.ID {
			candidates = append(candidates, nrid.Page)
		}
	}
	for i := len(sg.Pages) - 1; i >= 0 && len(candidates) < 4; i-- {
		pg := sg.Pages[i]
		if len(candidates) > 0 && candidates[0] == pg {
			continue
		}
		candidates = append(candidates, pg)
	}
	for _, pg := range candidates {
		p, err := s.pool.Fetch(pg)
		if err != nil {
			return err
		}
		slot, ierr := p.Insert(rec)
		if ierr == nil {
			s.pool.Unpin(pg, true)
			s.setDir(id, RID{Page: pg, Slot: slot}, sg.ID)
			return nil
		}
		s.pool.Unpin(pg, false)
		if !errors.Is(ierr, ErrPageFull) {
			return ierr
		}
	}
	// No room anywhere tried: extend the segment.
	p, err := s.pool.NewPage()
	if err != nil {
		return err
	}
	slot, ierr := p.Insert(rec)
	pg := p.ID
	s.pool.Unpin(pg, true)
	if ierr != nil {
		return ierr
	}
	s.mu.Lock()
	sg.Pages = append(sg.Pages, pg)
	s.mu.Unlock()
	s.setDir(id, RID{Page: pg, Slot: slot}, sg.ID)
	return nil
}

func (s *Store) setDir(id uid.UID, rid RID, seg SegmentID) {
	s.mu.Lock()
	s.dir[id] = rid
	s.segOf[id] = seg
	s.mu.Unlock()
}

// Get returns a copy of the record for id.
func (s *Store) Get(id uid.UID) ([]byte, error) {
	s.mu.RLock()
	sgid, ok := s.segOf[id]
	latch := s.latches[sgid]
	preRID := s.dir[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	if s.heat != nil && !s.pool.Contains(preRID.Page) {
		// Cold read: the page must come off the device. Attribute the miss
		// to the composite unit the object belongs to — this is the access
		// signal usage-driven placement and the reclusterer act on. Runs
		// before the latch acquisition because rootOf takes the engine read
		// latch, and engine→segment is the established lock order (the
		// write-through hook holds the engine latch when it calls Put).
		// Best-effort by nature: the page may relocate before the latched
		// re-read below, slightly over- or under-counting a unit.
		if root := s.rootOf(id); !root.IsNil() {
			s.heat.Touch(UnitHeatKey(root))
		}
	}
	latch.RLock()
	defer latch.RUnlock()
	// Re-read under the latch: the record may have relocated (or been
	// deleted) between the lookup and the latch acquisition.
	s.mu.RLock()
	rid, ok := s.dir[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	p, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return nil, err
	}
	rec, err := p.Read(rid.Slot)
	if err != nil {
		s.pool.Unpin(rid.Page, false)
		return nil, err
	}
	out := append([]byte(nil), rec...)
	s.pool.Unpin(rid.Page, false)
	return out, nil
}

// Delete removes the record for id.
func (s *Store) Delete(id uid.UID) error {
	s.mu.RLock()
	sgid, ok := s.segOf[id]
	latch := s.latches[sgid]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	latch.Lock()
	defer latch.Unlock()
	s.mu.RLock()
	rid, ok := s.dir[id]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%v: %w", id, ErrNotFound)
	}
	p, err := s.pool.Fetch(rid.Page)
	if err != nil {
		return err
	}
	derr := p.Delete(rid.Slot)
	s.pool.Unpin(rid.Page, derr == nil)
	if derr != nil {
		return derr
	}
	s.mu.Lock()
	delete(s.dir, id)
	delete(s.segOf, id)
	s.mu.Unlock()
	return nil
}

// UIDs returns every stored UID in sorted order.
func (s *Store) UIDs() []uid.UID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]uid.UID, 0, len(s.dir))
	for id := range s.dir {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ScanSegment calls fn for every object in the segment, in UID order. fn
// receives a copy of the record.
func (s *Store) ScanSegment(seg SegmentID, fn func(id uid.UID, rec []byte) error) error {
	s.mu.RLock()
	var ids []uid.UID
	for id, sg := range s.segOf {
		if sg == seg {
			ids = append(ids, id)
		}
	}
	s.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		rec, err := s.Get(id)
		if err != nil {
			if errors.Is(err, ErrNotFound) {
				continue // deleted concurrently
			}
			return err
		}
		if err := fn(id, rec); err != nil {
			return err
		}
	}
	return nil
}

// SegmentName returns the name a segment was created under. The
// reclusterer logs move targets by name (numeric IDs are not stable
// across recovery).
func (s *Store) SegmentName(seg SegmentID) (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sg, ok := s.segs[seg]
	if !ok {
		return "", false
	}
	return sg.Name, true
}

// CheckPlacement verifies the physical invariant migrations must
// preserve: every directory entry reads back from its recorded location,
// and the total number of live slots across all segment pages equals the
// directory size — i.e. every object is readable from exactly one
// location, with no stale duplicate left behind by a half-finished move.
// Intended for tests and the sim harness's quiescent checks; it takes
// every segment latch shared, so call it only when writers are idle.
func (s *Store) CheckPlacement() error {
	s.mu.RLock()
	segIDs := make([]SegmentID, 0, len(s.segs))
	for id := range s.segs {
		segIDs = append(segIDs, id)
	}
	s.mu.RUnlock()
	sort.Slice(segIDs, func(i, j int) bool { return segIDs[i] < segIDs[j] })
	var liveSlots int
	for _, sgid := range segIDs {
		s.mu.RLock()
		latch := s.latches[sgid]
		sg := s.segs[sgid]
		pages := append([]PageID(nil), sg.Pages...)
		s.mu.RUnlock()
		latch.RLock()
		for _, pg := range pages {
			p, err := s.pool.Fetch(pg)
			if err != nil {
				latch.RUnlock()
				return fmt.Errorf("storage: checkplacement: segment %d page %d: %w", sgid, pg, err)
			}
			liveSlots += p.NumRecords()
			s.pool.Unpin(pg, false)
		}
		latch.RUnlock()
	}
	s.mu.RLock()
	ids := make([]uid.UID, 0, len(s.dir))
	for id := range s.dir {
		ids = append(ids, id)
	}
	dirLen := len(s.dir)
	s.mu.RUnlock()
	if liveSlots != dirLen {
		return fmt.Errorf("storage: checkplacement: %d live slots but %d directory entries (stale duplicate or lost record)", liveSlots, dirLen)
	}
	for _, id := range ids {
		if _, err := s.Get(id); err != nil {
			return fmt.Errorf("storage: checkplacement: %v unreadable: %w", id, err)
		}
	}
	return nil
}

// meta is the serialized form of the store's directory and segment table.
type meta struct {
	NextSeg  SegmentID   `json:"next_seg"`
	Segments []segment   `json:"segments"`
	Objects  []metaEntry `json:"objects"`
}

type metaEntry struct {
	Class  uint32    `json:"c"`
	Serial uint64    `json:"s"`
	Seg    SegmentID `json:"g"`
	Page   PageID    `json:"p"`
	Slot   int       `json:"l"`
}

// SaveMeta serializes the segment table and object directory. Combined
// with BufferPool.FlushAll this checkpoints the store.
func (s *Store) SaveMeta(w io.Writer) error {
	s.mu.RLock()
	m := meta{NextSeg: s.nextSeg}
	for _, sg := range s.segs {
		m.Segments = append(m.Segments, *sg)
	}
	sort.Slice(m.Segments, func(i, j int) bool { return m.Segments[i].ID < m.Segments[j].ID })
	for id, rid := range s.dir {
		m.Objects = append(m.Objects, metaEntry{
			Class: uint32(id.Class), Serial: id.Serial,
			Seg: s.segOf[id], Page: rid.Page, Slot: rid.Slot,
		})
	}
	s.mu.RUnlock()
	sort.Slice(m.Objects, func(i, j int) bool {
		a, b := m.Objects[i], m.Objects[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Serial < b.Serial
	})
	return json.NewEncoder(w).Encode(&m)
}

// LoadMeta restores the segment table and directory saved by SaveMeta.
func (s *Store) LoadMeta(r io.Reader) error {
	var m meta
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return fmt.Errorf("storage: load meta: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSeg = m.NextSeg
	s.segs = make(map[SegmentID]*segment, len(m.Segments))
	s.latches = make(map[SegmentID]*sync.RWMutex, len(m.Segments))
	s.segByName = make(map[string]SegmentID, len(m.Segments))
	for i := range m.Segments {
		sg := m.Segments[i]
		s.segs[sg.ID] = &sg
		s.latches[sg.ID] = &sync.RWMutex{}
		s.segByName[sg.Name] = sg.ID
	}
	s.dir = make(map[uid.UID]RID, len(m.Objects))
	s.segOf = make(map[uid.UID]SegmentID, len(m.Objects))
	for _, e := range m.Objects {
		id := uid.UID{Class: uid.ClassID(e.Class), Serial: e.Serial}
		s.dir[id] = RID{Page: e.Page, Slot: e.Slot}
		s.segOf[id] = e.Seg
	}
	return nil
}
