package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/uid"
)

// WALOp distinguishes write-ahead-log record kinds.
type WALOp byte

// WAL operations. OpBegin/OpCommit/OpAbort carry only a transaction ID
// and delimit transactional record groups: replay buffers the records of
// a transaction and applies them only when its OpCommit is seen, so a
// crash mid-transaction (including mid-cascade) never replays a partial
// effect.
const (
	OpPut    WALOp = 1 // upsert of an object record
	OpDelete WALOp = 2 // removal of an object
	OpBegin  WALOp = 3 // first record of a transaction (marker)
	OpCommit WALOp = 4 // transaction committed; buffered records apply
	OpAbort  WALOp = 5 // transaction aborted; buffered records discard
	// OpMove records a physical relocation by the reclusterer: UID moves
	// into the segment named by Data, clustered next to Near. Seg carries
	// the segment's numeric ID at log time, but replay resolves the
	// segment BY NAME (recreating it if needed): move targets are usually
	// created after the last checkpoint, so their numeric IDs are not
	// stable across recovery. Moves are always auto-commit (Txn 0) — the
	// reclusterer holds the §7 unit-root X lock, so a move can never
	// interleave with an uncommitted transaction touching the same unit,
	// and replaying each move at its log position lands every object in
	// exactly one location no matter where a crash truncates the log.
	OpMove WALOp = 6
	// OpPrepare is the 2PC vote record of a cross-shard transaction,
	// written to every PARTICIPANT shard's log (never the coordinator's)
	// and fsynced before the coordinator's OpCommit — the commit point —
	// is appended. Data carries the coordinator's shard index as a
	// uvarint. Replay treats a prepared transaction without a local
	// OpCommit/OpAbort as in-doubt: its fate is whatever the coordinator
	// shard's log decided (commit if the coordinator logged OpCommit for
	// the same transaction, presumed abort otherwise).
	OpPrepare WALOp = 7
)

// EncodePrepareData encodes the coordinator shard index carried by an
// OpPrepare record's Data field.
func EncodePrepareData(coord int) []byte {
	return binary.AppendUvarint(nil, uint64(coord))
}

// DecodePrepareData decodes an OpPrepare record's coordinator shard index.
func DecodePrepareData(data []byte) (int, error) {
	c, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, ErrCorruptWAL
	}
	return int(c), nil
}

// WALRecord is one logical change. Txn tags the record with the
// transaction that produced it (0 = auto-commit: the record is its own
// transaction and applies immediately on replay). For OpPut, Seg and
// Near carry the placement request so replay reproduces clustering
// decisions; OpDelete records Seg too (the segment the object lived in)
// while Near stays Nil — the clustering hint is only defined for the
// creating write.
type WALRecord struct {
	Op   WALOp
	Txn  uint64
	UID  uid.UID
	Seg  SegmentID
	Near uid.UID
	Data []byte
}

// ErrCorruptWAL reports a checksum failure in the middle of the log (a
// torn tail is tolerated silently).
var ErrCorruptWAL = errors.New("storage: corrupt WAL record")

// MaxWALPayload bounds the declared payload length of a frame. Object
// records are limited by MaxRecord (one slotted page), so any frame
// claiming more than this is garbage from a torn header, not data — and
// trusting the raw u32 would allocate up to 4 GiB during replay.
const MaxWALPayload = MaxRecord + 64

// WAL is an append-only, checksummed write-ahead log. Frame layout:
//
//	len(u32 LE) crc(u32 LE of payload) payload
//	payload := op(1) txn(uvarint) uid seg(uvarint) nearUID dataLen(uvarint) data
type WAL struct {
	mu   sync.Mutex
	f    *os.File
	path string
	o    walObs

	// prof is the ambient per-operation cost sink (AttachProf): appended
	// frames are attributed to it while attached.
	prof atomic.Pointer[obs.ProfCtx]
}

// AttachProf attributes WAL appends to p until detached (nil).
func (w *WAL) AttachProf(p *obs.ProfCtx) { w.prof.Store(p) }

// OpenWAL opens (creating if needed) the log at path, positioned for
// appending.
func OpenWAL(path string) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open wal: %w", err)
	}
	w := &WAL{f: f, path: path}
	w.SetObservability(obs.NewRegistry())
	return w, nil
}

func appendUvarintUID(dst []byte, u uid.UID) []byte {
	dst = binary.AppendUvarint(dst, uint64(u.Class))
	return binary.AppendUvarint(dst, u.Serial)
}

func readUvarintUID(b []byte) (uid.UID, []byte, error) {
	c, n := binary.Uvarint(b)
	if n <= 0 {
		return uid.Nil, nil, ErrCorruptWAL
	}
	b = b[n:]
	s, n := binary.Uvarint(b)
	if n <= 0 {
		return uid.Nil, nil, ErrCorruptWAL
	}
	return uid.UID{Class: uid.ClassID(c), Serial: s}, b[n:], nil
}

func encodeWALPayload(rec WALRecord) []byte {
	p := make([]byte, 0, 24+len(rec.Data))
	p = append(p, byte(rec.Op))
	p = binary.AppendUvarint(p, rec.Txn)
	p = appendUvarintUID(p, rec.UID)
	p = binary.AppendUvarint(p, uint64(rec.Seg))
	p = appendUvarintUID(p, rec.Near)
	p = binary.AppendUvarint(p, uint64(len(rec.Data)))
	return append(p, rec.Data...)
}

func decodeWALPayload(p []byte) (WALRecord, error) {
	var rec WALRecord
	if len(p) < 1 {
		return rec, ErrCorruptWAL
	}
	rec.Op = WALOp(p[0])
	p = p[1:]
	tx, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, ErrCorruptWAL
	}
	rec.Txn = tx
	p = p[n:]
	var err error
	rec.UID, p, err = readUvarintUID(p)
	if err != nil {
		return rec, err
	}
	seg, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, ErrCorruptWAL
	}
	rec.Seg = SegmentID(seg)
	p = p[n:]
	rec.Near, p, err = readUvarintUID(p)
	if err != nil {
		return rec, err
	}
	dl, n := binary.Uvarint(p)
	if n <= 0 {
		return rec, ErrCorruptWAL
	}
	p = p[n:]
	if uint64(len(p)) != dl {
		return rec, ErrCorruptWAL
	}
	rec.Data = append([]byte(nil), p...)
	return rec, nil
}

// Append writes rec to the log. It does not sync; call Sync at commit
// boundaries.
func (w *WAL) Append(rec WALRecord) error {
	payload := encodeWALPayload(rec)
	if len(payload) > MaxWALPayload {
		return fmt.Errorf("storage: wal record too big (%d bytes)", len(payload))
	}
	frame := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:], crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("storage: wal append: %w", err)
	}
	w.o.appends.Inc()
	w.o.appendBytes.Add(uint64(len(frame)))
	w.prof.Load().WALAppend(len(frame))
	if tr := w.o.tr; tr.Active() {
		tr.Point(0, "wal.append", obs.F("uid", rec.UID), obs.F("op", rec.Op), obs.F("bytes", len(frame)))
	}
	return nil
}

// Sync flushes the log to stable storage. The fsync is always timed —
// it is orders of magnitude above the instrumentation cost — and feeds
// the latency histogram and the slow log.
//
// Sync deliberately does not hold the append mutex across the fsync:
// appends issued while a sync is in flight must proceed (they belong to
// the next group-commit batch), and fsync concurrent with write on one
// file descriptor is safe — the sync covers at least every byte written
// before it was issued, which is exactly the batch it seals.
func (w *WAL) Sync() error {
	start := time.Now()
	err := w.f.Sync()
	dur := time.Since(start)
	w.o.fsyncs.Inc()
	w.o.fsyncNs.Observe(int64(dur))
	if w.o.slow.Active() {
		w.o.slow.Observe("wal.fsync", dur, w.path)
	}
	if tr := w.o.tr; tr.Active() {
		tr.Point(0, "wal.fsync", obs.F("ns", int64(dur)))
	}
	return err
}

// Truncate discards all log contents (after a checkpoint).
func (w *WAL) Truncate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("storage: wal truncate: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("storage: wal seek: %w", err)
	}
	return nil
}

// Close closes the log file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// ReplayWAL reads the log at path, invoking fn for every intact record in
// order. Any malformed data at the tail of the log — an incomplete frame,
// an absurd length, a checksum mismatch, or a payload that fails to
// decode — ends replay without error, matching crash-at-append semantics:
// the final frame may have been half-written when power was lost. The
// same damage followed by more frames cannot come from a torn append, so
// mid-log corruption still returns ErrCorruptWAL.
func ReplayWAL(path string, fn func(WALRecord) error) error {
	return ReplayWALFrames(path, func(rec WALRecord, _, _ int64) error {
		return fn(rec)
	})
}

// ReplayWALFrames is ReplayWAL with frame byte offsets: fn additionally
// receives the [start, end) range each record's frame occupies in the
// file. Crash-point tests and segment-aware tooling use the offsets to
// truncate the log between two specific records of one transaction.
func ReplayWALFrames(path string, fn func(rec WALRecord, start, end int64) error) error {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("storage: open wal for replay: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storage: stat wal: %w", err)
	}
	size := st.Size()
	var off int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn tail
			}
			return fmt.Errorf("storage: wal read: %w", err)
		}
		l := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if l > MaxWALPayload {
			// A garbage length gives no way to find the next frame
			// boundary, so nothing past this point is recoverable; treat
			// it like a torn tail rather than allocating l bytes.
			return nil
		}
		payload := make([]byte, l)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil // torn tail
			}
			return fmt.Errorf("storage: wal read: %w", err)
		}
		frameEnd := off + 8 + int64(l)
		if crc32.ChecksumIEEE(payload) != crc {
			if frameEnd >= size {
				return nil // torn final record
			}
			return ErrCorruptWAL
		}
		rec, err := decodeWALPayload(payload)
		if err != nil {
			if frameEnd >= size {
				return nil // torn final record
			}
			return err
		}
		if err := fn(rec, off, frameEnd); err != nil {
			return err
		}
		off = frameEnd
	}
}
