package storage

import (
	"errors"
	"fmt"
	"os"
	"sync"
)

// Device is a persistent array of pages. Implementations must be safe for
// concurrent use.
type Device interface {
	// ReadPage fills p.Data with the page's stored contents and sets p.ID.
	ReadPage(id PageID, p *Page) error
	// WritePage persists p.Data under p.ID.
	WritePage(p *Page) error
	// Allocate reserves a fresh page and returns its ID. The page contents
	// are undefined until written.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Sync flushes any buffered writes to stable storage.
	Sync() error
	// Close releases the device.
	Close() error
}

// ErrBadPage is returned when a page ID is out of range.
var ErrBadPage = errors.New("storage: bad page id")

// MemDevice is an in-memory Device, used by tests and benches and as the
// default substrate when no path is configured.
type MemDevice struct {
	mu    sync.RWMutex
	pages [][]byte // index 0 unused (page ids start at 1)
}

// NewMemDevice returns an empty in-memory device.
func NewMemDevice() *MemDevice {
	return &MemDevice{pages: make([][]byte, 1)}
}

// ReadPage implements Device.
func (d *MemDevice) ReadPage(id PageID, p *Page) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if id == InvalidPage || int(id) >= len(d.pages) {
		return fmt.Errorf("read %d: %w", id, ErrBadPage)
	}
	copy(p.Data[:], d.pages[id])
	p.ID = id
	return nil
}

// WritePage implements Device.
func (d *MemDevice) WritePage(p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p.ID == InvalidPage || int(p.ID) >= len(d.pages) {
		return fmt.Errorf("write %d: %w", p.ID, ErrBadPage)
	}
	if d.pages[p.ID] == nil {
		d.pages[p.ID] = make([]byte, PageSize)
	}
	copy(d.pages[p.ID], p.Data[:])
	return nil
}

// Allocate implements Device.
func (d *MemDevice) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := PageID(len(d.pages))
	d.pages = append(d.pages, make([]byte, PageSize))
	return id, nil
}

// NumPages implements Device.
func (d *MemDevice) NumPages() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.pages) - 1
}

// Sync implements Device.
func (d *MemDevice) Sync() error { return nil }

// Close implements Device.
func (d *MemDevice) Close() error { return nil }

// FileDevice stores pages in a single file: page i lives at offset
// (i-1)*PageSize.
type FileDevice struct {
	mu   sync.Mutex
	f    *os.File
	next PageID
}

// OpenFileDevice opens (creating if necessary) a file-backed device.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open device: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: stat device: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("storage: device size %d not page aligned", st.Size())
	}
	return &FileDevice{f: f, next: PageID(st.Size()/PageSize) + 1}, nil
}

func (d *FileDevice) offset(id PageID) int64 { return int64(id-1) * PageSize }

// ReadPage implements Device.
func (d *FileDevice) ReadPage(id PageID, p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if id == InvalidPage || id >= d.next {
		return fmt.Errorf("read %d: %w", id, ErrBadPage)
	}
	if _, err := d.f.ReadAt(p.Data[:], d.offset(id)); err != nil {
		return fmt.Errorf("storage: read page %d: %w", id, err)
	}
	p.ID = id
	return nil
}

// WritePage implements Device.
func (d *FileDevice) WritePage(p *Page) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if p.ID == InvalidPage || p.ID >= d.next {
		return fmt.Errorf("write %d: %w", p.ID, ErrBadPage)
	}
	if _, err := d.f.WriteAt(p.Data[:], d.offset(p.ID)); err != nil {
		return fmt.Errorf("storage: write page %d: %w", p.ID, err)
	}
	return nil
}

// Allocate implements Device.
func (d *FileDevice) Allocate() (PageID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.next
	d.next++
	// Extend the file so reads of the fresh page succeed.
	var zero [PageSize]byte
	if _, err := d.f.WriteAt(zero[:], d.offset(id)); err != nil {
		d.next--
		return InvalidPage, fmt.Errorf("storage: extend device: %w", err)
	}
	return id, nil
}

// NumPages implements Device.
func (d *FileDevice) NumPages() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int(d.next) - 1
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }
