package storage

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/uid"
)

// Placement decides where a newly created object's record lands. The
// engine resolves each write to a clustering context — the §2.3 first
// parent (near) and the composite unit root the object belongs to — and
// the policy turns that context into the neighbor hint Store.Put clusters
// against (uid.Nil requests plain segment append). The transformed hint
// is what the WAL records, so replay reproduces placement decisions
// without consulting the policy.
//
// Three competing policies implement the bake-off the paper argues only
// qualitatively:
//
//   - first-parent: the paper's §2.3 choice — cluster a new object with
//     its first composite parent, so a top-down hierarchy traversal
//     touches contiguous pages.
//   - class: ignore composite structure entirely; records append into
//     their class segment in creation order (the baseline every OODB
//     clustering study measures against).
//   - usage: DSTC/OPCF spirit — consult per-unit access heat
//     (obs.UnitHeat, fed by buffer-pool miss attribution and write
//     activity); members of hot units cluster against their unit root,
//     cold units take class placement and wait for the background
//     reclusterer to earn contiguity.
type Placement interface {
	// Name returns the policy's selector string.
	Name() string
	// Hint maps the clustering context of one write to the Store.Put
	// neighbor hint. id is the object being placed, near its §2.3 first
	// parent (Nil when parentless or not newly created), root the unit
	// root the engine resolved for placement keys.
	Hint(id uid.UID, near, root uid.UID) uid.UID
}

// Policy selector strings accepted by NewPlacement and db.Options.
const (
	PlacementFirstParent = "first-parent"
	PlacementClass       = "class"
	PlacementUsage       = "usage"
)

// NewPlacement resolves a policy selector. The empty string selects
// first-parent (the paper's choice and the historical behavior). heat is
// only consulted by the usage policy; hotMin is the per-unit heat at
// which usage starts clustering (<=0 selects the default).
func NewPlacement(name string, heat *obs.UnitHeat, hotMin uint64) (Placement, error) {
	switch name {
	case "", PlacementFirstParent:
		return firstParentPlacement{}, nil
	case PlacementClass:
		return classPlacement{}, nil
	case PlacementUsage:
		if hotMin == 0 {
			hotMin = DefaultHotMisses
		}
		return &usagePlacement{heat: heat, hotMin: hotMin}, nil
	default:
		return nil, fmt.Errorf("storage: unknown placement policy %q (want %s|%s|%s)",
			name, PlacementFirstParent, PlacementClass, PlacementUsage)
	}
}

// DefaultHotMisses is the per-unit heat threshold at which the usage
// policy clusters eagerly and the reclusterer migrates (overridable via
// db.Options.ReclusterHotMisses).
const DefaultHotMisses = 16

type firstParentPlacement struct{}

func (firstParentPlacement) Name() string { return PlacementFirstParent }
func (firstParentPlacement) Hint(_ uid.UID, near, _ uid.UID) uid.UID {
	return near
}

type classPlacement struct{}

func (classPlacement) Name() string { return PlacementClass }
func (classPlacement) Hint(_, _, _ uid.UID) uid.UID {
	return uid.Nil
}

type usagePlacement struct {
	heat   *obs.UnitHeat
	hotMin uint64
}

func (*usagePlacement) Name() string { return PlacementUsage }

// Hint clusters a member of a demonstrably hot unit with its unit root —
// the reclusterer's target layout, applied eagerly to new members so a
// migrated unit stays contiguous as it grows. Cold units get class
// placement: usage-driven clustering spends no locality effort until the
// access pattern proves the unit worth it.
func (u *usagePlacement) Hint(id uid.UID, near, root uid.UID) uid.UID {
	if root.IsNil() || root == id {
		return uid.Nil
	}
	if u.heat.Load(UnitHeatKey(root)) >= u.hotMin {
		return root
	}
	return uid.Nil
}

// UnitHeatKey maps a unit root UID to its obs heat key.
func UnitHeatKey(root uid.UID) obs.UnitKey {
	return obs.UnitKey{Class: uint32(root.Class), Serial: root.Serial}
}
