package storage

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/obs"
	"repro/internal/uid"
)

func TestNewPlacementSelectors(t *testing.T) {
	for name, want := range map[string]string{
		"":                   PlacementFirstParent,
		PlacementFirstParent: PlacementFirstParent,
		PlacementClass:       PlacementClass,
		PlacementUsage:       PlacementUsage,
	} {
		p, err := NewPlacement(name, nil, 0)
		if err != nil {
			t.Fatalf("%q: %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("%q resolved to %q, want %q", name, p.Name(), want)
		}
	}
	if _, err := NewPlacement("bogus", nil, 0); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPlacementHints(t *testing.T) {
	id, parent, root := u(3, 9), u(2, 5), u(1, 1)

	fp, _ := NewPlacement(PlacementFirstParent, nil, 0)
	if got := fp.Hint(id, parent, root); got != parent {
		t.Fatalf("first-parent hint = %v, want %v", got, parent)
	}

	cl, _ := NewPlacement(PlacementClass, nil, 0)
	if got := cl.Hint(id, parent, root); !got.IsNil() {
		t.Fatalf("class hint = %v, want Nil", got)
	}

	heat := obs.NewUnitHeat(nil, nil)
	us, _ := NewPlacement(PlacementUsage, heat, 3)
	if got := us.Hint(id, parent, root); !got.IsNil() {
		t.Fatalf("usage hint for cold unit = %v, want Nil", got)
	}
	for i := 0; i < 3; i++ {
		heat.Touch(UnitHeatKey(root))
	}
	if got := us.Hint(id, parent, root); got != root {
		t.Fatalf("usage hint for hot unit = %v, want %v", got, root)
	}
	// The root itself and parentless objects never self-cluster.
	if got := us.Hint(root, uid.Nil, root); !got.IsNil() {
		t.Fatalf("usage hint for root = %v, want Nil", got)
	}
	if got := us.Hint(id, uid.Nil, uid.Nil); !got.IsNil() {
		t.Fatalf("usage hint without root = %v, want Nil", got)
	}
}

func TestUnitHeatDecayAndHot(t *testing.T) {
	h := obs.NewUnitHeat(nil, nil)
	a, b := obs.UnitKey{Class: 1, Serial: 1}, obs.UnitKey{Class: 1, Serial: 2}
	for i := 0; i < 8; i++ {
		h.Touch(a)
	}
	h.Touch(b)
	if hot := h.Hot(4, 0); len(hot) != 1 || hot[0] != a {
		t.Fatalf("Hot(4) = %v", hot)
	}
	h.Decay() // a: 4, b: dropped
	if h.Load(a) != 4 || h.Len() != 1 {
		t.Fatalf("after decay: a=%d len=%d", h.Load(a), h.Len())
	}
	h.Forget(a)
	if h.Len() != 0 {
		t.Fatal("Forget left residue")
	}
	// Nil receiver is inert everywhere.
	var nilHeat *obs.UnitHeat
	nilHeat.Touch(a)
	nilHeat.Decay()
	if nilHeat.Load(a) != 0 || nilHeat.Hot(1, 0) != nil || nilHeat.Len() != 0 {
		t.Fatal("nil UnitHeat not inert")
	}
}

func TestStoreMoveAcrossSegments(t *testing.T) {
	s := newTestStore(t, 16)
	segA, _ := s.CreateSegment("a")
	segHot, _ := s.CreateSegment("hot")
	root, child := u(1, 1), u(1, 2)
	if err := s.Put(segA, root, []byte("root"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(segA, child, []byte("child"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Move(segHot, root, uid.Nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Move(segHot, child, root); err != nil {
		t.Fatal(err)
	}
	for _, id := range []uid.UID{root, child} {
		if sg, _ := s.SegmentOf(id); sg != segHot {
			t.Fatalf("%v in segment %d, want %d", id, sg, segHot)
		}
	}
	// Clustered: the chained move lands the child on the root's page.
	rp, _ := s.PageOf(root)
	cp, _ := s.PageOf(child)
	if rp != cp {
		t.Fatalf("root on page %d, child on page %d — not clustered", rp, cp)
	}
	if got, _ := s.Get(root); string(got) != "root" {
		t.Fatalf("root reads %q after move", got)
	}
	if got, _ := s.Get(child); string(got) != "child" {
		t.Fatalf("child reads %q after move", got)
	}
	if err := s.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
	// Updates now route to the hot segment even when the caller names the
	// class segment.
	if err := s.Put(segA, child, []byte("child2"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if sg, _ := s.SegmentOf(child); sg != segHot {
		t.Fatal("update pulled migrated object back")
	}
	if err := s.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMoveWithinSegment(t *testing.T) {
	s := newTestStore(t, 16)
	seg, _ := s.CreateSegment("a")
	// Fill so a and b land on different pages, then move b next to a.
	a := u(1, 1)
	if err := s.Put(seg, a, bytes.Repeat([]byte("A"), 1500), uid.Nil); err != nil {
		t.Fatal(err)
	}
	var b uid.UID
	for i := uint64(2); ; i++ {
		id := u(1, i)
		if err := s.Put(seg, id, bytes.Repeat([]byte("B"), 1500), uid.Nil); err != nil {
			t.Fatal(err)
		}
		pa, _ := s.PageOf(a)
		pb, _ := s.PageOf(id)
		if pa != pb {
			b = id
			break
		}
	}
	if err := s.Move(seg, b, uid.Nil); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(b); len(got) != 1500 {
		t.Fatalf("b reads %d bytes after same-segment move", len(got))
	}
	if err := s.CheckPlacement(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreMoveErrors(t *testing.T) {
	s := newTestStore(t, 8)
	seg, _ := s.CreateSegment("a")
	if err := s.Move(seg, u(1, 99), uid.Nil); !errors.Is(err, ErrNotFound) {
		t.Fatalf("move of missing object: %v", err)
	}
	id := u(1, 1)
	if err := s.Put(seg, id, []byte("x"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Move(SegmentID(42), id, uid.Nil); !errors.Is(err, ErrNoSegment) {
		t.Fatalf("move to missing segment: %v", err)
	}
	if err := s.Move(seg, uid.Nil, uid.Nil); err == nil {
		t.Fatal("move of nil uid succeeded")
	}
}

func TestStoreHeatAttribution(t *testing.T) {
	// A 1-page pool forces every alternating read to miss; each miss must
	// charge the unit root resolved by the rootOf callback.
	dev := NewMemDevice()
	s := NewStore(NewBufferPool(dev, 1))
	heat := obs.NewUnitHeat(nil, nil)
	root := u(1, 1)
	s.SetHeat(heat, func(uid.UID) uid.UID { return root })
	segA, _ := s.CreateSegment("a")
	segB, _ := s.CreateSegment("b")
	a, b := u(1, 2), u(2, 1)
	if err := s.Put(segA, a, []byte("a"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(segB, b, []byte("b"), uid.Nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := s.Get(a); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(b); err != nil {
			t.Fatal(err)
		}
	}
	if got := heat.Load(UnitHeatKey(root)); got < 4 {
		t.Fatalf("heat after thrashing reads = %d, want >= 4", got)
	}
}
