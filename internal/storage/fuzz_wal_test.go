package storage

import (
	"bytes"
	"testing"

	"repro/internal/uid"
)

// FuzzDecodeWALPayload checks that decodeWALPayload never panics on
// arbitrary input and that accepted payloads survive a re-encode/decode
// round trip. (encode(decode(b)) == b does not hold for non-minimal
// uvarints, so the property is stated on the decoded record.)
func FuzzDecodeWALPayload(f *testing.F) {
	for _, rec := range walTestRecords() {
		f.Add(encodeWALPayload(rec))
	}
	f.Add(encodeWALPayload(WALRecord{Op: OpPut, UID: uid.UID{Class: 1<<32 - 1, Serial: 1<<63 - 1}, Seg: 9, Data: nil}))
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{1, 0x80}) // truncated uvarint
	f.Add([]byte{1, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 1}) // overlong uvarint
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := decodeWALPayload(b)
		if err != nil {
			return
		}
		re := encodeWALPayload(rec)
		rec2, err := decodeWALPayload(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v (payload %x)", err, b)
		}
		if !recordsEqualF(rec, rec2) {
			t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
		}
	})
}

func recordsEqualF(a, b WALRecord) bool {
	return a.Op == b.Op && a.Txn == b.Txn && a.UID == b.UID && a.Seg == b.Seg && a.Near == b.Near &&
		bytes.Equal(a.Data, b.Data)
}
